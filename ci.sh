#!/bin/sh
# Tier-1 verification: build everything, then run the full test suite.
# Usage: ./ci.sh   (from the repository root; requires the opam switch
# described in README.md to be active)
set -eu

dune build
dune runtest

# Robustness smoke: run a tiny sweep (2 programs x 12 quick configs x
# 2 techs = 48 use cases) with two injected faults -- one case raises,
# one stalls past the 1s per-case deadline -- and check the engine
# degrades exactly those two cases to structured outcomes instead of
# aborting the sweep or hanging.
smoke_err=$(mktemp)
trap 'rm -f "$smoke_err"' EXIT

status=0
UCP_FAULT='fft1:k2:45nm:lru=raise,crc:k2:32nm:lru=stall:30' \
  dune exec --no-build bin/ucp.exe -- experiment \
  --programs fft1,crc --timeout 1 --jobs 2 \
  >/dev/null 2>"$smoke_err" || status=$?

if [ "$status" -ne 3 ]; then
  echo "ci: fault smoke: expected exit status 3 (failed cases), got $status" >&2
  cat "$smoke_err" >&2
  exit 1
fi
for pat in \
  'cases: 46 ok, 1 failed, 1 timed out, 0 invariant violations' \
  'fft1:k2:45nm:lru: failed:.*Injected' \
  'crc:k2:32nm:lru: timed out'
do
  if ! grep -q "$pat" "$smoke_err"; then
    echo "ci: fault smoke: expected output matching '$pat'" >&2
    cat "$smoke_err" >&2
    exit 1
  fi
done
echo "ci: fault-injection smoke passed"

# Multi-policy smoke: 2 programs x 2 configs x 1 tech x 3 policies =
# 12 use cases with a fault injected on the FIFO slice only.  Checks
# the policy axis end to end: the grid triples, the per-policy outcome
# lines appear on stderr, and the fault hits exactly the FIFO case.
status=0
UCP_FAULT='fft1:k2:45nm:fifo=raise' \
  dune exec --no-build bin/ucp.exe -- experiment \
  --programs fft1,crc --configs k2,k5 --techs 45nm \
  --policies lru,fifo,plru --jobs 2 \
  >/dev/null 2>"$smoke_err" || status=$?

if [ "$status" -ne 3 ]; then
  echo "ci: policy smoke: expected exit status 3 (failed case), got $status" >&2
  cat "$smoke_err" >&2
  exit 1
fi
for pat in \
  'cases: 11 ok, 1 failed, 0 timed out, 0 invariant violations' \
  'fft1:k2:45nm:fifo: failed:.*Injected' \
  'policy lru *4 ok, 0 failed' \
  'policy fifo *3 ok, 1 failed' \
  'policy plru *4 ok, 0 failed'
do
  if ! grep -q "$pat" "$smoke_err"; then
    echo "ci: policy smoke: expected output matching '$pat'" >&2
    cat "$smoke_err" >&2
    exit 1
  fi
done
echo "ci: multi-policy smoke passed"

# Certification smoke: the same tiny grid under --audit full must
# certify every case (exit 0, zero invariant violations, an audited
# count covering the whole grid).
status=0
dune exec --no-build bin/ucp.exe -- experiment \
  --programs fft1,crc --configs k2,k5 --techs 45nm \
  --audit full --jobs 2 \
  >/dev/null 2>"$smoke_err" || status=$?

if [ "$status" -ne 0 ]; then
  echo "ci: audit smoke: expected exit status 0 (clean audited sweep), got $status" >&2
  cat "$smoke_err" >&2
  exit 1
fi
for pat in \
  'cases: 4 ok, 0 failed, 0 timed out, 0 invariant violations' \
  'audited: 4 cases certified (20 checks'
do
  if ! grep -q "$pat" "$smoke_err"; then
    echo "ci: audit smoke: expected output matching '$pat'" >&2
    cat "$smoke_err" >&2
    exit 1
  fi
done
echo "ci: certification audit smoke passed"

# Negative certification smoke: corrupt one case's certified claim and
# require the audit to catch it -- the case must be demoted to an
# invariant violation naming the failed obligation, and the sweep must
# exit 3.
status=0
UCP_FAULT='fft1:k2:45nm:lru=corrupt-cert' \
  dune exec --no-build bin/ucp.exe -- experiment \
  --programs fft1,crc --configs k2,k5 --techs 45nm \
  --audit full --jobs 2 \
  >/dev/null 2>"$smoke_err" || status=$?

if [ "$status" -ne 3 ]; then
  echo "ci: corrupt-cert smoke: expected exit status 3 (audit rejection), got $status" >&2
  cat "$smoke_err" >&2
  exit 1
fi
for pat in \
  'cases: 3 ok, 0 failed, 0 timed out, 1 invariant violations' \
  'fft1:k2:45nm:lru: invariant violation: audit: optimizer-tau-after'
do
  if ! grep -q "$pat" "$smoke_err"; then
    echo "ci: corrupt-cert smoke: expected output matching '$pat'" >&2
    cat "$smoke_err" >&2
    exit 1
  fi
done
echo "ci: corrupt-cert audit smoke passed"

# Observability smoke: trace a tiny audited sweep (2 programs x 1
# config x 1 tech = 2 cases per binary stage) and check the trace is
# well-formed JSON carrying spans from every pipeline stage, that
# `ucp trace` can read it back, that the simplex pivot total derived
# from the trace matches the simplex_pivots_total counter on the JSONL
# summary line, and that instrumentation never changes the per-record
# output: a traced sweep's record lines must be byte-identical to an
# untraced run's.
obs_dir=$(mktemp -d)
trap 'rm -f "$smoke_err"; rm -rf "$obs_dir"' EXIT

dune exec --no-build bin/ucp.exe -- experiment \
  --programs fft1,crc --configs k2,k5 --techs 45nm \
  --audit full --jobs 2 \
  --trace "$obs_dir/trace.json" --sweep-out "$obs_dir/traced.jsonl" \
  >/dev/null 2>"$smoke_err" || {
  echo "ci: obs smoke: traced sweep failed" >&2
  cat "$smoke_err" >&2
  exit 1
}
# byte-equality pair: audit off, because an audited record carries its
# own audit wall-clock (audit_s), which differs between any two runs
dune exec --no-build bin/ucp.exe -- experiment \
  --programs fft1,crc --configs k2,k5 --techs 45nm --jobs 2 \
  --trace "$obs_dir/trace2.json" --sweep-out "$obs_dir/traced2.jsonl" \
  >/dev/null 2>"$smoke_err" || {
  echo "ci: obs smoke: traced unaudited sweep failed" >&2
  cat "$smoke_err" >&2
  exit 1
}
dune exec --no-build bin/ucp.exe -- experiment \
  --programs fft1,crc --configs k2,k5 --techs 45nm --jobs 2 \
  --sweep-out "$obs_dir/plain.jsonl" \
  >/dev/null 2>"$smoke_err" || {
  echo "ci: obs smoke: untraced sweep failed" >&2
  cat "$smoke_err" >&2
  exit 1
}

# spans from all instrumented layers must be present
for span in case analysis optimize simulate audit \
  optimizer-round fixpoint-pass simplex audit-obligation
do
  if ! grep -q "\"name\":\"$span\"" "$obs_dir/trace.json"; then
    echo "ci: obs smoke: trace has no '$span' span" >&2
    exit 1
  fi
done

# `ucp trace` strictly parses the file (well-formedness check) and
# summarizes it
if ! dune exec --no-build bin/ucp.exe -- trace "$obs_dir/trace.json" \
  >"$obs_dir/trace.txt" 2>&1; then
  echo "ci: obs smoke: 'ucp trace' failed on the recorded trace" >&2
  cat "$obs_dir/trace.txt" >&2
  exit 1
fi

# the pivot total summed from trace spans must equal the metrics
# counter embedded in the JSONL summary line
pivots_trace=$(sed -n 's/.*simplex\.pivots=\([0-9][0-9]*\).*/\1/p' "$obs_dir/trace.txt")
pivots_metric=$(sed -n 's/.*"simplex_pivots_total":\([0-9][0-9]*\).*/\1/p' "$obs_dir/traced.jsonl")
if [ -z "$pivots_trace" ] || [ "$pivots_trace" != "$pivots_metric" ]; then
  echo "ci: obs smoke: simplex pivots disagree: trace='$pivots_trace' metric='$pivots_metric'" >&2
  exit 1
fi

# record lines must be byte-identical traced vs untraced (only the
# summary line may differ, by its "metrics" object)
grep -v '"summary"' "$obs_dir/traced2.jsonl" >"$obs_dir/traced.records"
grep -v '"summary"' "$obs_dir/plain.jsonl" >"$obs_dir/plain.records"
if ! cmp -s "$obs_dir/traced.records" "$obs_dir/plain.records"; then
  echo "ci: obs smoke: tracing changed the per-record JSONL output" >&2
  diff "$obs_dir/traced.records" "$obs_dir/plain.records" >&2 || true
  exit 1
fi
echo "ci: observability smoke passed"
