#!/bin/sh
# Tier-1 verification: build everything, then run the full test suite.
# Usage: ./ci.sh   (from the repository root; requires the opam switch
# described in README.md to be active)
set -eu

dune build
dune runtest
