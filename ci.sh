#!/bin/sh
# Tier-1 verification: build everything, then run the full test suite.
# Usage: ./ci.sh   (from the repository root; requires the opam switch
# described in README.md to be active)
set -eu

dune build
dune runtest

# Robustness smoke: run a tiny sweep (2 programs x 12 quick configs x
# 2 techs = 48 use cases) with two injected faults -- one case raises,
# one stalls past the 1s per-case deadline -- and check the engine
# degrades exactly those two cases to structured outcomes instead of
# aborting the sweep or hanging.
smoke_err=$(mktemp)
trap 'rm -f "$smoke_err"' EXIT

status=0
UCP_FAULT='fft1:k2:45nm:lru=raise,crc:k2:32nm:lru=stall:30' \
  dune exec --no-build bin/ucp.exe -- experiment \
  --programs fft1,crc --timeout 1 --jobs 2 \
  >/dev/null 2>"$smoke_err" || status=$?

if [ "$status" -ne 3 ]; then
  echo "ci: fault smoke: expected exit status 3 (failed cases), got $status" >&2
  cat "$smoke_err" >&2
  exit 1
fi
for pat in \
  'cases: 46 ok, 1 failed, 1 timed out, 0 invariant violations' \
  'fft1:k2:45nm:lru: failed:.*Injected' \
  'crc:k2:32nm:lru: timed out'
do
  if ! grep -q "$pat" "$smoke_err"; then
    echo "ci: fault smoke: expected output matching '$pat'" >&2
    cat "$smoke_err" >&2
    exit 1
  fi
done
echo "ci: fault-injection smoke passed"

# Multi-policy smoke: 2 programs x 2 configs x 1 tech x 3 policies =
# 12 use cases with a fault injected on the FIFO slice only.  Checks
# the policy axis end to end: the grid triples, the per-policy outcome
# lines appear on stderr, and the fault hits exactly the FIFO case.
status=0
UCP_FAULT='fft1:k2:45nm:fifo=raise' \
  dune exec --no-build bin/ucp.exe -- experiment \
  --programs fft1,crc --configs k2,k5 --techs 45nm \
  --policies lru,fifo,plru --jobs 2 \
  >/dev/null 2>"$smoke_err" || status=$?

if [ "$status" -ne 3 ]; then
  echo "ci: policy smoke: expected exit status 3 (failed case), got $status" >&2
  cat "$smoke_err" >&2
  exit 1
fi
for pat in \
  'cases: 11 ok, 1 failed, 0 timed out, 0 invariant violations' \
  'fft1:k2:45nm:fifo: failed:.*Injected' \
  'policy lru *4 ok, 0 failed' \
  'policy fifo *3 ok, 1 failed' \
  'policy plru *4 ok, 0 failed'
do
  if ! grep -q "$pat" "$smoke_err"; then
    echo "ci: policy smoke: expected output matching '$pat'" >&2
    cat "$smoke_err" >&2
    exit 1
  fi
done
echo "ci: multi-policy smoke passed"

# Certification smoke: the same tiny grid under --audit full must
# certify every case (exit 0, zero invariant violations, an audited
# count covering the whole grid).
status=0
dune exec --no-build bin/ucp.exe -- experiment \
  --programs fft1,crc --configs k2,k5 --techs 45nm \
  --audit full --jobs 2 \
  >/dev/null 2>"$smoke_err" || status=$?

if [ "$status" -ne 0 ]; then
  echo "ci: audit smoke: expected exit status 0 (clean audited sweep), got $status" >&2
  cat "$smoke_err" >&2
  exit 1
fi
for pat in \
  'cases: 4 ok, 0 failed, 0 timed out, 0 invariant violations' \
  'audited: 4 cases certified (20 checks'
do
  if ! grep -q "$pat" "$smoke_err"; then
    echo "ci: audit smoke: expected output matching '$pat'" >&2
    cat "$smoke_err" >&2
    exit 1
  fi
done
echo "ci: certification audit smoke passed"

# Negative certification smoke: corrupt one case's certified claim and
# require the audit to catch it -- the case must be demoted to an
# invariant violation naming the failed obligation, and the sweep must
# exit 3.
status=0
UCP_FAULT='fft1:k2:45nm:lru=corrupt-cert' \
  dune exec --no-build bin/ucp.exe -- experiment \
  --programs fft1,crc --configs k2,k5 --techs 45nm \
  --audit full --jobs 2 \
  >/dev/null 2>"$smoke_err" || status=$?

if [ "$status" -ne 3 ]; then
  echo "ci: corrupt-cert smoke: expected exit status 3 (audit rejection), got $status" >&2
  cat "$smoke_err" >&2
  exit 1
fi
for pat in \
  'cases: 3 ok, 0 failed, 0 timed out, 1 invariant violations' \
  'fft1:k2:45nm:lru: invariant violation: audit: optimizer-tau-after'
do
  if ! grep -q "$pat" "$smoke_err"; then
    echo "ci: corrupt-cert smoke: expected output matching '$pat'" >&2
    cat "$smoke_err" >&2
    exit 1
  fi
done
echo "ci: corrupt-cert audit smoke passed"

# Observability smoke: trace a tiny audited sweep (2 programs x 1
# config x 1 tech = 2 cases per binary stage) and check the trace is
# well-formed JSON carrying spans from every pipeline stage, that
# `ucp trace` can read it back, that the fixpoint-pass span count in
# the trace matches the fixpoint_iterations_total counter on the JSONL
# summary line, and that instrumentation never changes the per-record
# output: a traced sweep's record lines must be byte-identical to an
# untraced run's.
obs_dir=$(mktemp -d)
trap 'rm -f "$smoke_err"; rm -rf "$obs_dir"' EXIT

dune exec --no-build bin/ucp.exe -- experiment \
  --programs fft1,crc --configs k2,k5 --techs 45nm \
  --audit full --jobs 2 \
  --trace "$obs_dir/trace.json" --sweep-out "$obs_dir/traced.jsonl" \
  >/dev/null 2>"$smoke_err" || {
  echo "ci: obs smoke: traced sweep failed" >&2
  cat "$smoke_err" >&2
  exit 1
}
# byte-equality pair: audit off, because an audited record carries its
# own audit wall-clock (audit_s), which differs between any two runs
dune exec --no-build bin/ucp.exe -- experiment \
  --programs fft1,crc --configs k2,k5 --techs 45nm --jobs 2 \
  --trace "$obs_dir/trace2.json" --sweep-out "$obs_dir/traced2.jsonl" \
  >/dev/null 2>"$smoke_err" || {
  echo "ci: obs smoke: traced unaudited sweep failed" >&2
  cat "$smoke_err" >&2
  exit 1
}
dune exec --no-build bin/ucp.exe -- experiment \
  --programs fft1,crc --configs k2,k5 --techs 45nm --jobs 2 \
  --sweep-out "$obs_dir/plain.jsonl" \
  >/dev/null 2>"$smoke_err" || {
  echo "ci: obs smoke: untraced sweep failed" >&2
  cat "$smoke_err" >&2
  exit 1
}

# spans from all instrumented layers must be present
for span in case analysis optimize simulate audit \
  optimizer-round fixpoint-pass audit-obligation
do
  if ! grep -q "\"name\":\"$span\"" "$obs_dir/trace.json"; then
    echo "ci: obs smoke: trace has no '$span' span" >&2
    exit 1
  fi
done

# the audit fast path certifies without a solver: a clean audited sweep
# must record no simplex span at all
if grep -q '"name":"simplex"' "$obs_dir/trace.json"; then
  echo "ci: obs smoke: audited sweep ran the simplex (fast path regressed)" >&2
  exit 1
fi

# `ucp trace` strictly parses the file (well-formedness check) and
# summarizes it
if ! dune exec --no-build bin/ucp.exe -- trace "$obs_dir/trace.json" \
  >"$obs_dir/trace.txt" 2>&1; then
  echo "ci: obs smoke: 'ucp trace' failed on the recorded trace" >&2
  cat "$obs_dir/trace.txt" >&2
  exit 1
fi

# the fixpoint-pass span count must equal the metrics counter embedded
# in the JSONL summary line (one span per pass, one counted pass each)
fp_trace=$(grep -o '"name":"fixpoint-pass"' "$obs_dir/trace.json" | wc -l)
fp_metric=$(sed -n 's/.*"fixpoint_iterations_total":\([0-9][0-9]*\).*/\1/p' "$obs_dir/traced.jsonl")
if [ -z "$fp_metric" ] || [ "$fp_trace" -eq 0 ] || [ "$fp_trace" != "$fp_metric" ]; then
  echo "ci: obs smoke: fixpoint passes disagree: trace='$fp_trace' metric='$fp_metric'" >&2
  exit 1
fi

# record lines must be byte-identical traced vs untraced (only the
# summary line may differ, by its "metrics" object)
grep -v '"summary"' "$obs_dir/traced2.jsonl" >"$obs_dir/traced.records"
grep -v '"summary"' "$obs_dir/plain.jsonl" >"$obs_dir/plain.records"
if ! cmp -s "$obs_dir/traced.records" "$obs_dir/plain.records"; then
  echo "ci: obs smoke: tracing changed the per-record JSONL output" >&2
  diff "$obs_dir/traced.records" "$obs_dir/plain.records" >&2 || true
  exit 1
fi
echo "ci: observability smoke passed"

# Audit-speed smoke: full certification must ride along nearly free.
# The certificate checks are linear passes (no re-solve), so on a
# 24-case grid the audited wall stays within 3x of the unaudited one
# (plus a small absolute slack against timer noise on fast machines),
# and auditing must not perturb the measurements: the audited records,
# with the audit verdict fields stripped, are byte-identical to the
# unaudited run's.
speed_dir=$(mktemp -d)
trap 'rm -f "$smoke_err"; rm -rf "$obs_dir" "$speed_dir"' EXIT

dune exec --no-build bin/ucp.exe -- experiment \
  --programs fft1,crc,st,fdct --configs k2,k5,k17 --jobs 2 \
  --sweep-out "$speed_dir/plain.jsonl" \
  >/dev/null 2>"$smoke_err" || {
  echo "ci: audit-speed smoke: unaudited sweep failed" >&2
  cat "$smoke_err" >&2
  exit 1
}
dune exec --no-build bin/ucp.exe -- experiment \
  --programs fft1,crc,st,fdct --configs k2,k5,k17 --jobs 2 \
  --audit full --sweep-out "$speed_dir/audited.jsonl" \
  >/dev/null 2>"$smoke_err" || {
  echo "ci: audit-speed smoke: audited sweep failed" >&2
  cat "$smoke_err" >&2
  exit 1
}

wall_plain=$(sed -n 's/.*"wall_s":\([0-9.]*\).*/\1/p' "$speed_dir/plain.jsonl")
wall_audited=$(sed -n 's/.*"wall_s":\([0-9.]*\).*/\1/p' "$speed_dir/audited.jsonl")
if ! awk -v a="$wall_audited" -v p="$wall_plain" \
  'BEGIN { exit !(a <= 3 * p + 0.25) }'; then
  echo "ci: audit-speed smoke: audited wall ${wall_audited}s exceeds 3x unaudited ${wall_plain}s" >&2
  exit 1
fi

grep -v '"summary"' "$speed_dir/audited.jsonl" \
  | sed 's/,"audit_checks":[0-9]*,"audit_s":[0-9.]*//' \
  >"$speed_dir/audited.records"
grep -v '"summary"' "$speed_dir/plain.jsonl" >"$speed_dir/plain.records"
if ! cmp -s "$speed_dir/audited.records" "$speed_dir/plain.records"; then
  echo "ci: audit-speed smoke: auditing changed the per-record JSONL output" >&2
  diff "$speed_dir/audited.records" "$speed_dir/plain.records" >&2 || true
  exit 1
fi
echo "ci: audit-speed smoke passed (audited ${wall_audited}s vs unaudited ${wall_plain}s)"
