#!/bin/sh
# Tier-1 verification: build everything, then run the full test suite.
# Usage: ./ci.sh   (from the repository root; requires the opam switch
# described in README.md to be active)
set -eu

dune build
dune runtest

# Robustness smoke: run a tiny sweep (2 programs x 12 quick configs x
# 2 techs = 48 use cases) with two injected faults -- one case raises,
# one stalls past the 1s per-case deadline -- and check the engine
# degrades exactly those two cases to structured outcomes instead of
# aborting the sweep or hanging.
smoke_err=$(mktemp)
trap 'rm -f "$smoke_err"' EXIT

status=0
UCP_FAULT='fft1:k2:45nm:lru=raise,crc:k2:32nm:lru=stall:30' \
  dune exec --no-build bin/ucp.exe -- experiment \
  --programs fft1,crc --timeout 1 --jobs 2 \
  >/dev/null 2>"$smoke_err" || status=$?

if [ "$status" -ne 3 ]; then
  echo "ci: fault smoke: expected exit status 3 (failed cases), got $status" >&2
  cat "$smoke_err" >&2
  exit 1
fi
for pat in \
  'cases: 46 ok, 1 failed, 1 timed out, 0 invariant violations' \
  'fft1:k2:45nm:lru: failed:.*Injected' \
  'crc:k2:32nm:lru: timed out'
do
  if ! grep -q "$pat" "$smoke_err"; then
    echo "ci: fault smoke: expected output matching '$pat'" >&2
    cat "$smoke_err" >&2
    exit 1
  fi
done
echo "ci: fault-injection smoke passed"

# Multi-policy smoke: 2 programs x 2 configs x 1 tech x 3 policies =
# 12 use cases with a fault injected on the FIFO slice only.  Checks
# the policy axis end to end: the grid triples, the per-policy outcome
# lines appear on stderr, and the fault hits exactly the FIFO case.
status=0
UCP_FAULT='fft1:k2:45nm:fifo=raise' \
  dune exec --no-build bin/ucp.exe -- experiment \
  --programs fft1,crc --configs k2,k5 --techs 45nm \
  --policies lru,fifo,plru --jobs 2 \
  >/dev/null 2>"$smoke_err" || status=$?

if [ "$status" -ne 3 ]; then
  echo "ci: policy smoke: expected exit status 3 (failed case), got $status" >&2
  cat "$smoke_err" >&2
  exit 1
fi
for pat in \
  'cases: 11 ok, 1 failed, 0 timed out, 0 invariant violations' \
  'fft1:k2:45nm:fifo: failed:.*Injected' \
  'policy lru *4 ok, 0 failed' \
  'policy fifo *3 ok, 1 failed' \
  'policy plru *4 ok, 0 failed'
do
  if ! grep -q "$pat" "$smoke_err"; then
    echo "ci: policy smoke: expected output matching '$pat'" >&2
    cat "$smoke_err" >&2
    exit 1
  fi
done
echo "ci: multi-policy smoke passed"

# Certification smoke: the same tiny grid under --audit full must
# certify every case (exit 0, zero invariant violations, an audited
# count covering the whole grid at 7 checks per case: the 5 base
# obligations plus the two refine obligations of the default
# --refine nc).
status=0
dune exec --no-build bin/ucp.exe -- experiment \
  --programs fft1,crc --configs k2,k5 --techs 45nm \
  --audit full --jobs 2 \
  >/dev/null 2>"$smoke_err" || status=$?

if [ "$status" -ne 0 ]; then
  echo "ci: audit smoke: expected exit status 0 (clean audited sweep), got $status" >&2
  cat "$smoke_err" >&2
  exit 1
fi
for pat in \
  'cases: 4 ok, 0 failed, 0 timed out, 0 invariant violations' \
  'audited: 4 cases certified (28 checks'
do
  if ! grep -q "$pat" "$smoke_err"; then
    echo "ci: audit smoke: expected output matching '$pat'" >&2
    cat "$smoke_err" >&2
    exit 1
  fi
done
echo "ci: certification audit smoke passed"

# Negative certification smoke: corrupt one case's certified claim and
# require the audit to catch it -- the case must be demoted to an
# invariant violation naming the failed obligation, and the sweep must
# exit 3.
status=0
UCP_FAULT='fft1:k2:45nm:lru=corrupt-cert' \
  dune exec --no-build bin/ucp.exe -- experiment \
  --programs fft1,crc --configs k2,k5 --techs 45nm \
  --audit full --jobs 2 \
  >/dev/null 2>"$smoke_err" || status=$?

if [ "$status" -ne 3 ]; then
  echo "ci: corrupt-cert smoke: expected exit status 3 (audit rejection), got $status" >&2
  cat "$smoke_err" >&2
  exit 1
fi
for pat in \
  'cases: 3 ok, 0 failed, 0 timed out, 1 invariant violations' \
  'fft1:k2:45nm:lru: invariant violation: audit: optimizer-tau-after'
do
  if ! grep -q "$pat" "$smoke_err"; then
    echo "ci: corrupt-cert smoke: expected output matching '$pat'" >&2
    cat "$smoke_err" >&2
    exit 1
  fi
done
echo "ci: corrupt-cert audit smoke passed"

# Observability smoke: trace a tiny audited sweep (2 programs x 1
# config x 1 tech = 2 cases per binary stage) and check the trace is
# well-formed JSON carrying spans from every pipeline stage, that
# `ucp trace` can read it back, that the fixpoint-pass span count in
# the trace matches the fixpoint_iterations_total counter on the JSONL
# summary line, and that instrumentation never changes the per-record
# output: a traced sweep's record lines must be byte-identical to an
# untraced run's.
obs_dir=$(mktemp -d)
trap 'rm -f "$smoke_err"; rm -rf "$obs_dir"' EXIT

dune exec --no-build bin/ucp.exe -- experiment \
  --programs fft1,crc --configs k2,k5 --techs 45nm \
  --audit full --jobs 2 \
  --trace "$obs_dir/trace.json" --sweep-out "$obs_dir/traced.jsonl" \
  >/dev/null 2>"$smoke_err" || {
  echo "ci: obs smoke: traced sweep failed" >&2
  cat "$smoke_err" >&2
  exit 1
}
# byte-equality pair: audit off, because an audited record carries its
# own audit wall-clock (audit_s), which differs between any two runs
dune exec --no-build bin/ucp.exe -- experiment \
  --programs fft1,crc --configs k2,k5 --techs 45nm --jobs 2 \
  --trace "$obs_dir/trace2.json" --sweep-out "$obs_dir/traced2.jsonl" \
  >/dev/null 2>"$smoke_err" || {
  echo "ci: obs smoke: traced unaudited sweep failed" >&2
  cat "$smoke_err" >&2
  exit 1
}
dune exec --no-build bin/ucp.exe -- experiment \
  --programs fft1,crc --configs k2,k5 --techs 45nm --jobs 2 \
  --sweep-out "$obs_dir/plain.jsonl" \
  >/dev/null 2>"$smoke_err" || {
  echo "ci: obs smoke: untraced sweep failed" >&2
  cat "$smoke_err" >&2
  exit 1
}

# spans from all instrumented layers must be present
for span in case analysis optimize simulate audit \
  optimizer-round fixpoint-pass audit-obligation
do
  if ! grep -q "\"name\":\"$span\"" "$obs_dir/trace.json"; then
    echo "ci: obs smoke: trace has no '$span' span" >&2
    exit 1
  fi
done

# the audit fast path certifies without a solver: a clean audited sweep
# must record no simplex span at all
if grep -q '"name":"simplex"' "$obs_dir/trace.json"; then
  echo "ci: obs smoke: audited sweep ran the simplex (fast path regressed)" >&2
  exit 1
fi

# `ucp trace` strictly parses the file (well-formedness check) and
# summarizes it
if ! dune exec --no-build bin/ucp.exe -- trace "$obs_dir/trace.json" \
  >"$obs_dir/trace.txt" 2>&1; then
  echo "ci: obs smoke: 'ucp trace' failed on the recorded trace" >&2
  cat "$obs_dir/trace.txt" >&2
  exit 1
fi

# the fixpoint-pass span count must equal the metrics counter embedded
# in the JSONL summary line (one span per pass, one counted pass each)
fp_trace=$(grep -o '"name":"fixpoint-pass"' "$obs_dir/trace.json" | wc -l)
fp_metric=$(sed -n 's/.*"fixpoint_iterations_total":\([0-9][0-9]*\).*/\1/p' "$obs_dir/traced.jsonl")
if [ -z "$fp_metric" ] || [ "$fp_trace" -eq 0 ] || [ "$fp_trace" != "$fp_metric" ]; then
  echo "ci: obs smoke: fixpoint passes disagree: trace='$fp_trace' metric='$fp_metric'" >&2
  exit 1
fi

# record lines must be byte-identical traced vs untraced (only the
# summary line may differ, by its "metrics" object)
grep -v '"summary"' "$obs_dir/traced2.jsonl" >"$obs_dir/traced.records"
grep -v '"summary"' "$obs_dir/plain.jsonl" >"$obs_dir/plain.records"
if ! cmp -s "$obs_dir/traced.records" "$obs_dir/plain.records"; then
  echo "ci: obs smoke: tracing changed the per-record JSONL output" >&2
  diff "$obs_dir/traced.records" "$obs_dir/plain.records" >&2 || true
  exit 1
fi
echo "ci: observability smoke passed"

# Audit-speed smoke: full certification must ride along nearly free.
# The certificate checks are linear passes (no re-solve), so on a
# 24-case grid the audited wall stays within 3x of the unaudited one
# (plus a small absolute slack against timer noise on fast machines),
# and auditing must not perturb the measurements: the audited records,
# with the audit verdict fields stripped, are byte-identical to the
# unaudited run's.
speed_dir=$(mktemp -d)
trap 'rm -f "$smoke_err"; rm -rf "$obs_dir" "$speed_dir"' EXIT

dune exec --no-build bin/ucp.exe -- experiment \
  --programs fft1,crc,st,fdct --configs k2,k5,k17 --jobs 2 \
  --sweep-out "$speed_dir/plain.jsonl" \
  >/dev/null 2>"$smoke_err" || {
  echo "ci: audit-speed smoke: unaudited sweep failed" >&2
  cat "$smoke_err" >&2
  exit 1
}
dune exec --no-build bin/ucp.exe -- experiment \
  --programs fft1,crc,st,fdct --configs k2,k5,k17 --jobs 2 \
  --audit full --sweep-out "$speed_dir/audited.jsonl" \
  >/dev/null 2>"$smoke_err" || {
  echo "ci: audit-speed smoke: audited sweep failed" >&2
  cat "$smoke_err" >&2
  exit 1
}

wall_plain=$(sed -n 's/.*"wall_s":\([0-9.]*\).*/\1/p' "$speed_dir/plain.jsonl")
wall_audited=$(sed -n 's/.*"wall_s":\([0-9.]*\).*/\1/p' "$speed_dir/audited.jsonl")
if ! awk -v a="$wall_audited" -v p="$wall_plain" \
  'BEGIN { exit !(a <= 3 * p + 0.25) }'; then
  echo "ci: audit-speed smoke: audited wall ${wall_audited}s exceeds 3x unaudited ${wall_plain}s" >&2
  exit 1
fi

grep -v '"summary"' "$speed_dir/audited.jsonl" \
  | sed 's/,"audit_checks":[0-9]*,"audit_s":[0-9.]*//' \
  >"$speed_dir/audited.records"
grep -v '"summary"' "$speed_dir/plain.jsonl" >"$speed_dir/plain.records"
if ! cmp -s "$speed_dir/audited.records" "$speed_dir/plain.records"; then
  echo "ci: audit-speed smoke: auditing changed the per-record JSONL output" >&2
  diff "$speed_dir/audited.records" "$speed_dir/plain.records" >&2 || true
  exit 1
fi
echo "ci: audit-speed smoke passed (audited ${wall_audited}s vs unaudited ${wall_plain}s)"

# Refinement smoke: the exact-refinement axis end to end.  A small
# audited sweep under --refine nc must certify every case (the two
# refine obligations ride along), reclaim at least one NC slot, and
# stay record-comparable with --refine off: the refined record lines,
# with the additive refine_* fields (and the audit verdict fields)
# stripped, are byte-identical to an unrefined sweep's -- the base
# fields always carry the unrefined figures.
refine_dir=$(mktemp -d)
trap 'rm -f "$smoke_err"; rm -rf "$obs_dir" "$speed_dir" "$refine_dir"' EXIT

status=0
dune exec --no-build bin/ucp.exe -- experiment \
  --programs fft1,crc --configs k2,k5 --techs 45nm \
  --refine nc --audit full --jobs 2 \
  --sweep-out "$refine_dir/nc.jsonl" \
  >/dev/null 2>"$smoke_err" || status=$?
if [ "$status" -ne 0 ]; then
  echo "ci: refine smoke: expected exit 0 from the refined audited sweep, got $status" >&2
  cat "$smoke_err" >&2
  exit 1
fi

# refinement must actually reclaim NC slots somewhere on the grid
if ! grep -q '"refine_ah_gained":[1-9]' "$refine_dir/nc.jsonl" \
  && ! grep -q '"refine_am_gained":[1-9]' "$refine_dir/nc.jsonl"; then
  echo "ci: refine smoke: no case reclaimed a single NC slot" >&2
  exit 1
fi

dune exec --no-build bin/ucp.exe -- experiment \
  --programs fft1,crc --configs k2,k5 --techs 45nm \
  --refine off --jobs 2 --sweep-out "$refine_dir/off.jsonl" \
  >/dev/null 2>"$smoke_err" || {
  echo "ci: refine smoke: unrefined sweep failed" >&2
  cat "$smoke_err" >&2
  exit 1
}
grep -v '"summary"' "$refine_dir/nc.jsonl" \
  | sed -E 's/,"refine_[a-z_]*":("[^"]*"|[0-9-]+|true|false|null)//g' \
  | sed 's/,"audit_checks":[0-9]*,"audit_s":[0-9.]*//' \
  >"$refine_dir/nc.records"
grep -v '"summary"' "$refine_dir/off.jsonl" >"$refine_dir/off.records"
if ! cmp -s "$refine_dir/nc.records" "$refine_dir/off.records"; then
  echo "ci: refine smoke: refinement changed the base record fields" >&2
  diff "$refine_dir/nc.records" "$refine_dir/off.records" >&2 || true
  exit 1
fi
echo "ci: refinement smoke passed"

# Serve smoke: the analysis daemon end to end.  Start `ucp serve` with
# two faults armed -- the worker domain evaluating fft1:k2:45nm:lru is
# killed mid-request (one-shot), and crc:k5:45nm:lru's store entry is
# scribbled after persisting (one-shot) -- then drive it with `ucp
# query` and require: the killed request is retried to success on a
# respawned worker; the repeated query is a memory-cache hit with the
# identical bytes; the warm answer is byte-identical to the batch
# sweep's JSONL record for the same case; the corrupt store entry is
# quarantined and transparently recomputed; --health reports >=1
# worker restart and >=1 quarantined entry; kill -9 plus restart
# recovers every computed case from the store alone; and a graceful
# shutdown exits 0.
serve_dir=$(mktemp -d)
trap 'rm -f "$smoke_err"; rm -rf "$obs_dir" "$speed_dir" "$refine_dir" "$serve_dir"' EXIT
UCP="./_build/default/bin/ucp.exe"
SOCK="$serve_dir/ucp.sock"
STORE="$serve_dir/store"

# batch reference for the byte-identity check (single-case sweep)
"$UCP" experiment --programs fft1 --configs k2 --techs 45nm --jobs 1 \
  --sweep-out "$serve_dir/batch.jsonl" >/dev/null 2>"$smoke_err" || {
  echo "ci: serve smoke: batch reference sweep failed" >&2
  cat "$smoke_err" >&2
  exit 1
}
grep -v '"summary"' "$serve_dir/batch.jsonl" >"$serve_dir/batch.record"

UCP_FAULT='fft1:k2:45nm:lru=kill-worker,crc:k5:45nm:lru=corrupt-store' \
  "$UCP" serve --socket "$SOCK" --store "$STORE" -j 2 --cache 1 \
  2>"$serve_dir/serve1.err" &
serve_pid=$!

# cold query: the worker dies under it; the client's backoff retry
# must get a real answer from the respawned worker
"$UCP" query --socket "$SOCK" fft1:k2:45nm:lru \
  >"$serve_dir/cold.json" 2>"$serve_dir/q1.err" || {
  echo "ci: serve smoke: cold query failed (kill-worker not survived)" >&2
  cat "$serve_dir/q1.err" "$serve_dir/serve1.err" >&2
  exit 1
}
grep -q 'answered from computed' "$serve_dir/q1.err" || {
  echo "ci: serve smoke: cold query was not computed" >&2
  cat "$serve_dir/q1.err" >&2
  exit 1
}

# repeated query: memory-cache hit, identical bytes
"$UCP" query --socket "$SOCK" fft1:k2:45nm:lru \
  >"$serve_dir/warm.json" 2>"$serve_dir/q2.err"
grep -q 'answered from memory' "$serve_dir/q2.err" || {
  echo "ci: serve smoke: repeated query missed the memory cache" >&2
  cat "$serve_dir/q2.err" >&2
  exit 1
}
cmp -s "$serve_dir/cold.json" "$serve_dir/warm.json" || {
  echo "ci: serve smoke: warm answer differs from cold answer" >&2
  exit 1
}

# the daemon's answer must be byte-identical to the batch JSONL record
cmp -s "$serve_dir/warm.json" "$serve_dir/batch.record" || {
  echo "ci: serve smoke: served record differs from batch sweep record" >&2
  diff "$serve_dir/warm.json" "$serve_dir/batch.record" >&2 || true
  exit 1
}

# corrupt-store case: computed, persisted, then scribbled on disk.
# Evict it from the 1-entry memory cache, re-query: the store read
# must detect the bad checksum, quarantine the entry and recompute.
"$UCP" query --socket "$SOCK" crc:k5:45nm:lru \
  >"$serve_dir/crc1.json" 2>/dev/null
"$UCP" query --socket "$SOCK" fft1:k2:45nm:lru >/dev/null 2>&1  # evict crc
"$UCP" query --socket "$SOCK" crc:k5:45nm:lru \
  >"$serve_dir/crc2.json" 2>"$serve_dir/q3.err"
grep -q 'answered from computed' "$serve_dir/q3.err" || {
  echo "ci: serve smoke: corrupt store entry was not recomputed" >&2
  cat "$serve_dir/q3.err" >&2
  exit 1
}
cmp -s "$serve_dir/crc1.json" "$serve_dir/crc2.json" || {
  echo "ci: serve smoke: recomputed answer differs after quarantine" >&2
  exit 1
}
ls "$STORE"/*.quarantine >/dev/null 2>&1 || {
  echo "ci: serve smoke: no quarantined entry on disk" >&2
  exit 1
}

# health must carry the robustness counters
"$UCP" query --socket "$SOCK" --health >"$serve_dir/health.txt" 2>/dev/null
for counter in worker_restarts store_quarantined; do
  n=$(sed -n "s/^$counter=\([0-9][0-9]*\)$/\1/p" "$serve_dir/health.txt")
  if [ -z "$n" ] || [ "$n" -lt 1 ]; then
    echo "ci: serve smoke: health $counter='$n', expected >= 1" >&2
    cat "$serve_dir/health.txt" >&2
    exit 1
  fi
done

# crash-only recovery: kill -9, restart on the same store, and the
# previously computed case answers from disk with the same bytes
kill -9 "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
"$UCP" serve --socket "$SOCK" --store "$STORE" -j 2 --cache 4 \
  2>"$serve_dir/serve2.err" &
serve_pid=$!
"$UCP" query --socket "$SOCK" fft1:k2:45nm:lru \
  >"$serve_dir/restart.json" 2>"$serve_dir/q4.err" || {
  echo "ci: serve smoke: query after kill -9 restart failed" >&2
  cat "$serve_dir/q4.err" "$serve_dir/serve2.err" >&2
  exit 1
}
grep -q 'answered from store' "$serve_dir/q4.err" || {
  echo "ci: serve smoke: restarted daemon did not answer from the store" >&2
  cat "$serve_dir/q4.err" >&2
  exit 1
}
cmp -s "$serve_dir/restart.json" "$serve_dir/batch.record" || {
  echo "ci: serve smoke: post-restart answer differs from batch record" >&2
  exit 1
}

# graceful shutdown: drain and exit 0
"$UCP" query --socket "$SOCK" --shutdown >/dev/null 2>&1
status=0
wait "$serve_pid" || status=$?
if [ "$status" -ne 0 ]; then
  echo "ci: serve smoke: graceful shutdown exited $status, expected 0" >&2
  cat "$serve_dir/serve2.err" >&2
  exit 1
fi
echo "ci: serve smoke passed"

# Telemetry smoke: the daemon's service-grade telemetry end to end.
# One daemon run with full telemetry armed and a one-shot
# stall-request fault: the Prometheus exposition must parse (ucp top
# consumes it) and carry the per-tier latency histograms; the stalled
# request must land in the slow-query log under the *client's* trace
# id; and the exported Chrome trace must carry that id too.  Then two
# identically seeded runs against fresh stores must produce
# byte-identical access logs once the two wall-clock fields (ts,
# latency_s) are stripped.  Finally the perf-regression gate: a fresh
# serve-latency trajectory passes against the checked-in BENCH_10.json
# baseline, an armed stall makes the same gate fail, and ucp
# bench-check renders the same verdicts standalone.
tel_dir=$(mktemp -d)
trap 'rm -f "$smoke_err"; rm -rf "$obs_dir" "$speed_dir" "$refine_dir" "$serve_dir" "$tel_dir"' EXIT
TSOCK="$tel_dir/ucp.sock"

UCP_FAULT='crc:k2:45nm:lru=stall-request:1.5' \
  "$UCP" serve --socket "$TSOCK" --store "$tel_dir/store1" -j 1 --cache 1 \
  --access-log "$tel_dir/access1.jsonl" --slow-log "$tel_dir/slow.jsonl" \
  --slow-threshold 1.0 --trace "$tel_dir/trace.json" \
  2>"$tel_dir/serve1.err" &
tel_pid=$!
"$UCP" query --socket "$TSOCK" --seed 5 \
  crc:k2:45nm:lru fft1:k2:45nm:lru crc:k2:45nm:lru \
  >/dev/null 2>"$tel_dir/q1.err" || {
  echo "ci: telemetry smoke: seeded query mix failed" >&2
  cat "$tel_dir/q1.err" "$tel_dir/serve1.err" >&2
  exit 1
}
"$UCP" query --socket "$TSOCK" --metrics >"$tel_dir/metrics.txt" 2>/dev/null || {
  echo "ci: telemetry smoke: metrics query failed" >&2
  exit 1
}
grep -q '# TYPE serve_latency_s histogram' "$tel_dir/metrics.txt" || {
  echo "ci: telemetry smoke: exposition lacks the latency histogram family" >&2
  cat "$tel_dir/metrics.txt" >&2
  exit 1
}
for tier in cache store cold shed; do
  grep -q "serve_latency_s_bucket{tier=\"$tier\",le=\"+Inf\"}" "$tel_dir/metrics.txt" || {
    echo "ci: telemetry smoke: no $tier tier in the exposition" >&2
    exit 1
  }
done
# ucp top parses the exposition back; a render/parse drift would fail here
"$UCP" top --socket "$TSOCK" --iterations 1 >"$tel_dir/top.txt" 2>&1 || {
  echo "ci: telemetry smoke: ucp top could not parse the exposition" >&2
  cat "$tel_dir/top.txt" >&2
  exit 1
}
grep -q '^cold' "$tel_dir/top.txt" || {
  echo "ci: telemetry smoke: ucp top shows no cold tier row" >&2
  cat "$tel_dir/top.txt" >&2
  exit 1
}
"$UCP" query --socket "$TSOCK" --shutdown >/dev/null 2>&1
wait "$tel_pid" || {
  echo "ci: telemetry smoke: daemon exited non-zero" >&2
  cat "$tel_dir/serve1.err" >&2
  exit 1
}

# the stalled request must be in the slow log under the id the CLIENT
# assigned (echoed on the query's stderr as trace=...)
stalled_tid=$(sed -n 's/.*crc:k2:45nm:lru answered from computed trace=\([0-9a-f]*\)$/\1/p' \
  "$tel_dir/q1.err" | head -n 1)
if [ -z "$stalled_tid" ]; then
  echo "ci: telemetry smoke: no echoed trace id on the query stderr" >&2
  cat "$tel_dir/q1.err" >&2
  exit 1
fi
grep -q "\"trace_id\":\"$stalled_tid\"" "$tel_dir/slow.jsonl" || {
  echo "ci: telemetry smoke: stalled request not in the slow log under $stalled_tid" >&2
  cat "$tel_dir/slow.jsonl" >&2
  exit 1
}
grep -q "\"trace_id\":\"$stalled_tid\"" "$tel_dir/trace.json" || {
  echo "ci: telemetry smoke: client trace id missing from the Chrome trace" >&2
  exit 1
}

# determinism: two identically seeded runs, fresh store each, must
# write byte-identical access logs modulo the wall-clock fields
for n in 2 3; do
  "$UCP" serve --socket "$TSOCK" --store "$tel_dir/store$n" -j 1 --cache 1 \
    --access-log "$tel_dir/access$n.jsonl" 2>"$tel_dir/serve$n.err" &
  tel_pid=$!
  "$UCP" query --socket "$TSOCK" --seed 5 \
    crc:k2:45nm:lru fft1:k2:45nm:lru crc:k2:45nm:lru \
    >/dev/null 2>&1 || {
    echo "ci: telemetry smoke: run $n query mix failed" >&2
    cat "$tel_dir/serve$n.err" >&2
    exit 1
  }
  "$UCP" query --socket "$TSOCK" --shutdown >/dev/null 2>&1
  wait "$tel_pid" || true
  sed -E 's/"ts":[^,]+,//; s/"latency_s":[^,]+,//' "$tel_dir/access$n.jsonl" \
    >"$tel_dir/access$n.stripped"
done
cmp -s "$tel_dir/access2.stripped" "$tel_dir/access3.stripped" || {
  echo "ci: telemetry smoke: identically seeded runs wrote different access logs" >&2
  diff "$tel_dir/access2.stripped" "$tel_dir/access3.stripped" >&2 || true
  exit 1
}

# perf-regression gate, positive: a fresh serve-latency trajectory is
# inside the tolerance band of the checked-in baseline
BENCH="./_build/default/bench/main.exe"
UCP_BENCH10_OUT="$tel_dir/b10.json" \
  "$BENCH" --serve-trajectory --baseline BENCH_10.json \
  >"$tel_dir/gate_ok.out" 2>&1 || {
  echo "ci: telemetry smoke: serve trajectory regressed against BENCH_10.json" >&2
  cat "$tel_dir/gate_ok.out" >&2
  exit 1
}
grep -q 'gate passed' "$tel_dir/gate_ok.out" || {
  echo "ci: telemetry smoke: gate ran but reported no verdicts" >&2
  cat "$tel_dir/gate_ok.out" >&2
  exit 1
}
# negative: an armed stall on a mix case must trip the gate (exit 5)
status=0
UCP_FAULT='crc:k1:45nm:lru=stall-request:4' UCP_BENCH10_OUT="$tel_dir/b10s.json" \
  "$BENCH" --serve-trajectory --baseline BENCH_10.json \
  >"$tel_dir/gate_bad.out" 2>&1 || status=$?
if [ "$status" -ne 5 ]; then
  echo "ci: telemetry smoke: stalled trajectory exited $status, expected 5" >&2
  cat "$tel_dir/gate_bad.out" >&2
  exit 1
fi
grep -q 'REGRESS' "$tel_dir/gate_bad.out" || {
  echo "ci: telemetry smoke: failing gate printed no REGRESS verdict" >&2
  cat "$tel_dir/gate_bad.out" >&2
  exit 1
}
# ucp bench-check reproduces both verdicts from the written files
"$UCP" bench-check --baseline BENCH_10.json --current "$tel_dir/b10.json" \
  >/dev/null 2>&1 || {
  echo "ci: telemetry smoke: bench-check failed the clean trajectory" >&2
  exit 1
}
status=0
"$UCP" bench-check --baseline BENCH_10.json --current "$tel_dir/b10s.json" \
  >/dev/null 2>&1 || status=$?
if [ "$status" -ne 5 ]; then
  echo "ci: telemetry smoke: bench-check exited $status on the stalled run, expected 5" >&2
  exit 1
fi
echo "ci: telemetry smoke passed"

# Fuzzing smoke: a fixed-seed differential campaign must come back
# clean and record-for-record deterministic; the checked-in reproducer
# corpus must replay green; and injected corruptions must be caught,
# shrunk and deposited as replayable reproducers -- with a tampered
# entry proving the replay comparison actually bites.
fuzz_dir=$(mktemp -d)
trap 'rm -f "$smoke_err"; rm -rf "$obs_dir" "$speed_dir" "$refine_dir" "$serve_dir" "$tel_dir" "$fuzz_dir"' EXIT

# fixed seed, zero findings (exit 0), and a rerun is byte-identical
# modulo the summary line (the only line carrying wall-clock)
"$UCP" fuzz --seed 1 --count 60 --timeout 30 -j 2 \
  --out "$fuzz_dir/a.jsonl" 2>"$fuzz_dir/a.err" || {
  echo "ci: fuzz smoke: fixed-seed campaign exited non-zero" >&2
  cat "$fuzz_dir/a.err" >&2
  exit 1
}
"$UCP" fuzz --seed 1 --count 60 --timeout 30 -j 2 \
  --out "$fuzz_dir/b.jsonl" 2>/dev/null || {
  echo "ci: fuzz smoke: same-seed rerun exited non-zero" >&2
  exit 1
}
grep -v '"fuzz_summary"' "$fuzz_dir/a.jsonl" >"$fuzz_dir/a.records"
grep -v '"fuzz_summary"' "$fuzz_dir/b.jsonl" >"$fuzz_dir/b.records"
cmp -s "$fuzz_dir/a.records" "$fuzz_dir/b.records" || {
  echo "ci: fuzz smoke: same-seed reruns differ record for record" >&2
  exit 1
}

# the checked-in reproducers pin past escapes: every fault entry must
# still be caught with the same normalized signature
"$UCP" fuzz --replay corpus >/dev/null 2>"$fuzz_dir/replay.err" || {
  echo "ci: fuzz smoke: checked-in corpus replay failed" >&2
  cat "$fuzz_dir/replay.err" >&2
  exit 1
}

# negative smoke: chaos legs inject corrupt-cert / corrupt-refine and
# the audit must catch (or prove no-op) every one; each catch is
# shrunk, deposited, and replays green from the fresh corpus
"$UCP" fuzz --seed 3 --count 10 --chaos 8 --corpus "$fuzz_dir/corpus" \
  --out "$fuzz_dir/c.jsonl" 2>"$fuzz_dir/c.err" || {
  echo "ci: fuzz smoke: chaos campaign exited non-zero" >&2
  cat "$fuzz_dir/c.err" >&2
  exit 1
}
grep -q '"verdict":"caught:' "$fuzz_dir/c.jsonl" || {
  echo "ci: fuzz smoke: no chaos leg reported a caught injection" >&2
  cat "$fuzz_dir/c.jsonl" >&2
  exit 1
}
if grep -q '"verdict":"escaped:' "$fuzz_dir/c.jsonl"; then
  echo "ci: fuzz smoke: an injected corruption escaped the audit" >&2
  exit 1
fi
ls "$fuzz_dir/corpus"/*.json >/dev/null 2>&1 || {
  echo "ci: fuzz smoke: chaos catch deposited no reproducer" >&2
  exit 1
}
"$UCP" fuzz --replay "$fuzz_dir/corpus" >/dev/null 2>"$fuzz_dir/replay2.err" || {
  echo "ci: fuzz smoke: fresh reproducers do not replay" >&2
  cat "$fuzz_dir/replay2.err" >&2
  exit 1
}

# tamper with a stored signature: replay must notice and exit 1,
# proving the pin actually compares rather than rubber-stamping
mkdir "$fuzz_dir/tampered"
first=$(ls "$fuzz_dir/corpus"/*.json | head -n 1)
sed 's/"signature":"audit:/"signature":"audit:TAMPERED /' "$first" \
  >"$fuzz_dir/tampered/entry.json"
status=0
"$UCP" fuzz --replay "$fuzz_dir/tampered" \
  >/dev/null 2>"$fuzz_dir/tamper.err" || status=$?
if [ "$status" -ne 1 ]; then
  echo "ci: fuzz smoke: tampered replay exited $status, expected 1" >&2
  cat "$fuzz_dir/tamper.err" >&2
  exit 1
fi
grep -q 'signature mismatch' "$fuzz_dir/tamper.err" || {
  echo "ci: fuzz smoke: tampered replay did not report the mismatch" >&2
  cat "$fuzz_dir/tamper.err" >&2
  exit 1
}
echo "ci: fuzz smoke passed"
