(* End-to-end integration tests: the whole pipeline on real suite
   programs under paper configurations, checking the guarantees that
   hold per use case and pinning a few regression values so behaviour
   changes are caught deliberately. *)

module Config = Ucp_cache.Config
module Tech = Ucp_energy.Tech
module Pipeline = Ucp_core.Pipeline
module Wcet = Ucp_wcet.Wcet
module Analysis = Ucp_wcet.Analysis
module Optimizer = Ucp_prefetch.Optimizer
module Simulator = Ucp_sim.Simulator

let use_cases =
  [
    ("fft1", "k2");
    ("crc", "k1");
    ("ndes", "k8");
    ("st", "k14");
    ("janne_complex", "k3");
    ("qsort_exam", "k2");
    ("edn", "k9");
    ("minver", "k7");
  ]

let lookup (name, kid) =
  (name, Ucp_workloads.Suite.find name, List.assoc kid Config.paper_configs)

let test_theorem1_everywhere () =
  List.iter
    (fun uc ->
      let name, program, config = lookup uc in
      List.iter
        (fun tech ->
          let r = Pipeline.optimize program config tech in
          Alcotest.(check bool)
            (Printf.sprintf "%s %s" name tech.Tech.label)
            true
            (r.Optimizer.tau_after <= r.Optimizer.tau_before))
        Tech.all)
    use_cases

let test_acet_within_wcet_everywhere () =
  List.iter
    (fun uc ->
      let name, program, config = lookup uc in
      let tech = Tech.nm45 in
      let m = Pipeline.measure program config tech in
      Alcotest.(check bool) (name ^ " original") true (m.Pipeline.acet <= m.Pipeline.tau);
      let r = Pipeline.optimize program config tech in
      let m' = Pipeline.measure r.Optimizer.program config tech in
      Alcotest.(check bool) (name ^ " optimized") true (m'.Pipeline.acet <= m'.Pipeline.tau))
    use_cases

let test_optimized_binaries_run_to_completion () =
  List.iter
    (fun uc ->
      let name, program, config = lookup uc in
      let r = Pipeline.optimize program config Tech.nm32 in
      List.iter
        (fun seed ->
          let s =
            Simulator.run ~seed r.Optimizer.program config
              (Pipeline.model config Tech.nm32)
          in
          Alcotest.(check bool) (name ^ " runs") true (s.Simulator.executed > 0))
        [ 1; 2; 3 ])
    use_cases

let test_instruction_overhead_bounded () =
  (* the default budget keeps the dynamic overhead near 5% everywhere *)
  List.iter
    (fun uc ->
      let name, program, config = lookup uc in
      let tech = Tech.nm45 in
      let r = Pipeline.optimize program config tech in
      let model = Pipeline.model config tech in
      let base = Simulator.run program config model in
      let opt = Simulator.run r.Optimizer.program config model in
      let ratio = float_of_int opt.Simulator.executed /. float_of_int base.Simulator.executed in
      Alcotest.(check bool)
        (Printf.sprintf "%s overhead %.3f" name ratio)
        true (ratio <= 1.12))
    use_cases

let test_prefetch_equivalence_everywhere () =
  List.iter
    (fun uc ->
      let name, program, config = lookup uc in
      let r = Pipeline.optimize program config Tech.nm45 in
      Alcotest.(check bool) name true
        (Ucp_isa.Program.prefetch_equivalent program r.Optimizer.program))
    use_cases

(* regression pins: catching silent behaviour drift of the whole stack;
   update the expected values deliberately when the model changes *)
let test_regression_pins () =
  let program = Ucp_workloads.Suite.find "fft1" in
  let config = List.assoc "k2" Config.paper_configs in
  let m = Pipeline.measure ~seed:42 program config Tech.nm45 in
  Alcotest.(check bool) "fft1 tau stable band" true
    (m.Pipeline.tau > 15_000 && m.Pipeline.tau < 40_000);
  Alcotest.(check bool) "fft1 acet below tau" true (m.Pipeline.acet < m.Pipeline.tau);
  let cmp = Pipeline.compare_optimized ~seed:42 program config Tech.nm45 in
  Alcotest.(check bool) "fft1 improves at k2" true
    (cmp.Pipeline.optimized.Pipeline.tau < cmp.Pipeline.original.Pipeline.tau);
  let same = Pipeline.measure ~seed:42 program config Tech.nm45 in
  Alcotest.(check int) "measurement is reproducible" m.Pipeline.acet same.Pipeline.acet

(* The four geometries where the residual prefetch-stall charge used to
   ignore iteration back edges in its distance-to-use BFS: a prefetch
   whose use sits across a loop back edge was credited with the short
   intra-lap distance, under-charging the residual and letting the
   simulated ACET exceed the certified bound (fdct's demotions under
   --audit full).  Pinned end-to-end: the cases must evaluate, certify
   and satisfy every soundness invariant. *)
let test_fdct_residual_pins () =
  let module Experiments = Ucp_core.Experiments in
  let program = Ucp_workloads.Suite.find "fdct" in
  List.iter
    (fun (kid, tech) ->
      let label = Printf.sprintf "fdct:%s:%s" kid tech.Tech.label in
      let config = List.assoc kid Config.paper_configs in
      let case =
        {
          Experiments.case_program_name = "fdct";
          case_program = program;
          case_config_id = kid;
          case_config = config;
          case_tech = tech;
          case_policy = Ucp_policy.Lru;
        }
      in
      let r =
        Experiments.run_case ~audit:true ~model:(Pipeline.model config tech) case
      in
      (match Experiments.check_invariants r with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s violates invariants: %s" label msg);
      match r.Experiments.audit with
      | Pipeline.Audited _ -> ()
      | Pipeline.Not_audited -> Alcotest.failf "%s was not audited" label
      | Pipeline.Audit_skipped reason ->
        Alcotest.failf "%s audit skipped: %s" label reason)
    [
      ("k17", Tech.nm45);
      ("k17", Tech.nm32);
      ("k18", Tech.nm45);
      ("k18", Tech.nm32);
    ]

let test_technology_ordering () =
  (* 32 nm: faster clock but leakier; the energy of the same run must
     reflect the leakage increase *)
  let program = Ucp_workloads.Suite.find "st" in
  let config = List.assoc "k14" Config.paper_configs in
  let m45 = Pipeline.measure program config Tech.nm45 in
  let m32 = Pipeline.measure program config Tech.nm32 in
  Alcotest.(check bool) "32nm costs more energy here" true
    (m32.Pipeline.energy_pj > m45.Pipeline.energy_pj);
  Alcotest.(check bool) "32nm has a larger wcet (bigger miss gap)" true
    (m32.Pipeline.tau >= m45.Pipeline.tau)

let test_downsizing_energy_story () =
  (* Figure 5's direction on one use case: the optimized binary on a
     half-size cache consumes less energy than the original on full *)
  let program = Ucp_workloads.Suite.find "st" in
  let tech = Tech.nm32 in
  let full = Config.make ~assoc:2 ~block_bytes:16 ~capacity:8192 in
  let original = Pipeline.measure program full tech in
  match Config.half_capacity full with
  | None -> Alcotest.fail "half config must exist"
  | Some half ->
    let r = Pipeline.optimize program half tech in
    let m = Pipeline.measure r.Optimizer.program half tech in
    Alcotest.(check bool) "half-size cache + prefetching saves energy" true
      (m.Pipeline.energy_pj < original.Pipeline.energy_pj)

let () =
  Alcotest.run "integration"
    [
      ( "guarantees",
        [
          Alcotest.test_case "Theorem 1 everywhere" `Quick test_theorem1_everywhere;
          Alcotest.test_case "ACET within WCET" `Quick test_acet_within_wcet_everywhere;
          Alcotest.test_case "optimized binaries run" `Quick
            test_optimized_binaries_run_to_completion;
          Alcotest.test_case "overhead bounded" `Quick test_instruction_overhead_bounded;
          Alcotest.test_case "prefetch equivalence" `Quick
            test_prefetch_equivalence_everywhere;
        ] );
      ( "model",
        [
          Alcotest.test_case "regression pins" `Quick test_regression_pins;
          Alcotest.test_case "fdct residual-stall pins" `Quick
            test_fdct_residual_pins;
          Alcotest.test_case "technology ordering" `Quick test_technology_ordering;
          Alcotest.test_case "downsizing energy" `Quick test_downsizing_energy_story;
        ] );
    ]
