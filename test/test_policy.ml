(* Tests for Ucp_policy: the replacement-policy subsystem.

   The centrepiece is the per-policy soundness cross-validation the
   ISSUE asks for: run the abstract classification and the concrete
   simulator over workload-suite programs under the same policy and
   check that no always-hit slot ever misses and no always-miss slot
   ever hits.  Around it, concrete-semantics units for FIFO (hits do
   not reorder) and tree-PLRU (invalid-first fill, bit-driven victim),
   and the string round-trips the CLI relies on. *)

module Policy = Ucp_policy
module Config = Ucp_cache.Config
module Concrete = Ucp_cache.Concrete
module Wcet = Ucp_wcet.Wcet
module Analysis = Ucp_wcet.Analysis
module Classification = Ucp_wcet.Classification
module Simulator = Ucp_sim.Simulator
module Vivu = Ucp_cfg.Vivu
module Program = Ucp_isa.Program

let model = Ucp_testlib.tiny_model

(* ------------------------------------------------------------------ *)
(* identifiers *)

let test_string_roundtrip () =
  List.iter
    (fun p ->
      match Policy.of_string (Policy.to_string p) with
      | Ok p' -> Alcotest.(check bool) (Policy.to_string p) true (p = p')
      | Error msg -> Alcotest.fail msg)
    Policy.all;
  Alcotest.(check bool) "case-insensitive" true
    (Policy.of_string "PLRU" = Ok Policy.Plru);
  Alcotest.(check bool) "pseudo-lru alias" true
    (Policy.of_string "pseudo-lru" = Ok Policy.Plru);
  Alcotest.(check bool) "unknown rejected" true
    (match Policy.of_string "rand" with Error _ -> true | Ok _ -> false)

let test_assoc_checks () =
  List.iter (fun a -> Policy.check_assoc Policy.Plru ~assoc:a) [ 1; 2; 4; 8 ];
  Alcotest.(check bool) "plru rejects assoc 3" true
    (try
       Policy.check_assoc Policy.Plru ~assoc:3;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check int) "plru must assoc 4" 3 (Policy.plru_must_assoc 4);
  Alcotest.(check int) "plru must assoc 8" 4 (Policy.plru_must_assoc 8);
  Alcotest.(check int) "plru must assoc 1" 1 (Policy.plru_must_assoc 1)

(* ------------------------------------------------------------------ *)
(* concrete semantics *)

(* one set of associativity [assoc] *)
let one_set_config ~assoc = Config.make ~assoc ~block_bytes:16 ~capacity:(16 * assoc)

let test_fifo_hit_does_not_reorder () =
  let config = one_set_config ~assoc:2 in
  let fifo = Concrete.create ~policy:Concrete.Fifo config in
  ignore (Concrete.access fifo 0);
  ignore (Concrete.access fifo 1);
  Alcotest.(check bool) "re-access of 0 hits" true (Concrete.access fifo 0 = Concrete.Hit);
  (* 0 is still the oldest insertion, so the next miss evicts it... *)
  (match Concrete.access fifo 2 with
  | Concrete.Miss (Some v) -> Alcotest.(check int) "fifo evicts first-in" 0 v
  | _ -> Alcotest.fail "expected an evicting miss");
  (* ...whereas LRU would have protected the re-accessed block *)
  let lru = Concrete.create ~policy:Concrete.Lru config in
  ignore (Concrete.access lru 0);
  ignore (Concrete.access lru 1);
  ignore (Concrete.access lru 0);
  match Concrete.access lru 2 with
  | Concrete.Miss (Some v) -> Alcotest.(check int) "lru evicts least-recent" 1 v
  | _ -> Alcotest.fail "expected an evicting miss"

let test_fifo_fill_is_insertion_only () =
  let config = one_set_config ~assoc:2 in
  let c = Concrete.create ~policy:Concrete.Fifo config in
  ignore (Concrete.access c 0);
  ignore (Concrete.access c 1);
  (* filling a resident block must not refresh its insertion position *)
  Alcotest.(check bool) "fill of resident evicts nothing" true
    (Concrete.fill c 0 = None);
  match Concrete.access c 2 with
  | Concrete.Miss (Some v) -> Alcotest.(check int) "0 still first-in" 0 v
  | _ -> Alcotest.fail "expected an evicting miss"

let test_plru_fill_and_victims () =
  let config = one_set_config ~assoc:4 in
  let c = Concrete.create ~policy:Concrete.Plru config in
  (* invalid ways fill first, in way order *)
  List.iter
    (fun mb ->
      match Concrete.access c mb with
      | Concrete.Miss None -> ()
      | _ -> Alcotest.fail "cold fills must not evict")
    [ 0; 1; 2; 3 ];
  Alcotest.(check (list int)) "all resident" [ 0; 1; 2; 3 ] (Concrete.contents c);
  (* after touching ways 0..3 in order the tree points back at way 0 *)
  (match Concrete.access c 4 with
  | Concrete.Miss (Some v) -> Alcotest.(check int) "classic PLRU victim" 0 v
  | _ -> Alcotest.fail "expected an evicting miss");
  (* the bits now shield way 0's half; the next victim is in the other *)
  match Concrete.access c 5 with
  | Concrete.Miss (Some v) -> Alcotest.(check int) "second victim" 2 v
  | _ -> Alcotest.fail "expected an evicting miss"

let test_plru_hit_protects () =
  let config = one_set_config ~assoc:4 in
  let c = Concrete.create ~policy:Concrete.Plru config in
  List.iter (fun mb -> ignore (Concrete.access c mb)) [ 0; 1; 2; 3 ];
  (* re-touch 0: the tree must point away from it again *)
  Alcotest.(check bool) "hit" true (Concrete.access c 0 = Concrete.Hit);
  match Concrete.access c 4 with
  | Concrete.Miss (Some v) ->
    Alcotest.(check bool) "re-touched block survives" true (v <> 0);
    Alcotest.(check bool) "0 resident" true (Concrete.contains c 0)
  | _ -> Alcotest.fail "expected an evicting miss"

(* ------------------------------------------------------------------ *)
(* abstract domains: small algebraic checks *)

let test_join_leq_laws () =
  List.iter
    (fun pid ->
      let (module P : Policy.POLICY) = Policy.find pid in
      let assoc = 4 in
      let touch kind st mb hint = P.aset_update kind ~assoc ~hint st mb in
      List.iter
        (fun kind ->
          let a =
            List.fold_left
              (fun st mb -> touch kind st mb Policy.Miss)
              [] [ 0; 1; 2 ]
          in
          let b =
            List.fold_left
              (fun st mb -> touch kind st mb Policy.Miss)
              [] [ 2; 3 ]
          in
          let j = P.aset_join kind a b in
          Alcotest.(check bool)
            (Printf.sprintf "%s %s: join is an upper bound (left)" P.name
               (match kind with Policy.Must -> "must" | Policy.May -> "may"))
            true
            (P.aset_leq kind a j);
          Alcotest.(check bool)
            (Printf.sprintf "%s: join upper bound (right)" P.name)
            true
            (P.aset_leq kind b j);
          Alcotest.(check bool)
            (Printf.sprintf "%s: leq reflexive" P.name)
            true (P.aset_leq kind a a))
        [ Policy.Must; Policy.May ])
    Policy.all

(* ------------------------------------------------------------------ *)
(* the soundness cross-validation (satellite 2) *)

(* Per static slot (memory block of the fetch is context-independent,
   but the classification is per VIVU context): meet the classifications
   over every expanded context of the slot.  Only a slot that is
   always-hit in *every* context may claim "never misses", and only one
   that is always-miss everywhere may claim "never hits" — the concrete
   trace does not know which context it is in. *)
let meet_classifications analysis program =
  let vivu = Analysis.vivu analysis in
  let tbl = Hashtbl.create 997 in
  for node = 0 to Vivu.node_count vivu - 1 do
    let nd = Vivu.node vivu node in
    let b = nd.Vivu.block in
    for pos = 0 to Program.slots program b - 1 do
      let c = Analysis.classif analysis ~node ~pos in
      match Hashtbl.find_opt tbl (b, pos) with
      | None -> Hashtbl.replace tbl (b, pos) c
      | Some prev ->
        if prev <> c then
          Hashtbl.replace tbl (b, pos) Classification.Not_classified
    done
  done;
  tbl

let cross_validate ~policy ~seed program config =
  let w = Wcet.compute ~with_may:true ~policy program config model in
  let tbl = meet_classifications w.Wcet.analysis program in
  let violations = ref [] in
  let on_fetch ~block ~pos ~hit =
    match Hashtbl.find_opt tbl (block, pos) with
    | Some Classification.Always_hit when not hit ->
      violations := Printf.sprintf "AH slot (%d,%d) missed" block pos :: !violations
    | Some Classification.Always_miss when hit ->
      violations := Printf.sprintf "AM slot (%d,%d) hit" block pos :: !violations
    | _ -> ()
  in
  ignore (Simulator.run ~seed ~policy ~on_fetch program config model);
  !violations

let suite_slice =
  (* small programs keep the three-policy sweep fast; the slice still
     spans loops, nests and branchy control flow *)
  lazy
    (List.filteri (fun i _ -> i mod 4 = 0) Ucp_workloads.Suite.all
    |> List.filter (fun (_, p) -> Program.total_slots p < 600))

let soundness_configs =
  [
    Config.make ~assoc:2 ~block_bytes:16 ~capacity:256;
    Config.make ~assoc:4 ~block_bytes:16 ~capacity:512;
  ]

let test_soundness policy () =
  List.iter
    (fun (name, program) ->
      List.iter
        (fun config ->
          List.iter
            (fun seed ->
              match cross_validate ~policy ~seed program config with
              | [] -> ()
              | v ->
                Alcotest.fail
                  (Printf.sprintf "%s under %s @%s seed %d: %s" name
                     (Policy.to_string policy) (Config.id config) seed
                     (String.concat "; " v)))
            [ 1; 42 ])
        soundness_configs)
    (Lazy.force suite_slice)

(* the optimizer inserts prefetches and re-analyzes under the policy;
   the optimized binary must still never contradict its classification *)
let test_soundness_optimized policy () =
  let program = Ucp_workloads.Suite.find "fft1" in
  let config = Config.make ~assoc:2 ~block_bytes:16 ~capacity:256 in
  let r = Ucp_prefetch.Optimizer.optimize ~policy program config model in
  match cross_validate ~policy ~seed:7 r.Ucp_prefetch.Optimizer.program config with
  | [] -> ()
  | v ->
    Alcotest.fail
      (Printf.sprintf "optimized fft1 under %s: %s" (Policy.to_string policy)
         (String.concat "; " v))

(* FIFO's extra conservatism must never *gain* classified slots relative
   to what a definite outcome would allow: sanity-check that the three
   policies classify a shared workload without crashing and report
   plausible counter totals *)
let test_classification_counts () =
  let program = Ucp_workloads.Suite.find "crc" in
  let config = Config.make ~assoc:2 ~block_bytes:16 ~capacity:256 in
  List.iter
    (fun policy ->
      let w = Wcet.compute ~with_may:true ~policy program config model in
      let ah, am, nc = Analysis.classification_counts w.Wcet.analysis in
      Alcotest.(check bool)
        (Printf.sprintf "%s: counters cover the graph" (Policy.to_string policy))
        true
        (ah >= 0 && am >= 0 && nc >= 0 && ah + am + nc > 0))
    Policy.all

let () =
  Alcotest.run "ucp_policy"
    [
      ( "identifiers",
        [
          Alcotest.test_case "string round-trip" `Quick test_string_roundtrip;
          Alcotest.test_case "associativity checks" `Quick test_assoc_checks;
        ] );
      ( "concrete",
        [
          Alcotest.test_case "fifo hits do not reorder" `Quick
            test_fifo_hit_does_not_reorder;
          Alcotest.test_case "fifo fill is insertion-only" `Quick
            test_fifo_fill_is_insertion_only;
          Alcotest.test_case "plru fill and victims" `Quick test_plru_fill_and_victims;
          Alcotest.test_case "plru hit protects" `Quick test_plru_hit_protects;
        ] );
      ( "abstract",
        [
          Alcotest.test_case "join/leq laws" `Quick test_join_leq_laws;
          Alcotest.test_case "classification counts" `Quick
            test_classification_counts;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "lru: analysis vs simulator" `Slow (test_soundness Policy.Lru);
          Alcotest.test_case "fifo: analysis vs simulator" `Slow
            (test_soundness Policy.Fifo);
          Alcotest.test_case "plru: analysis vs simulator" `Slow
            (test_soundness Policy.Plru);
          Alcotest.test_case "lru: optimized binary" `Quick
            (test_soundness_optimized Policy.Lru);
          Alcotest.test_case "fifo: optimized binary" `Quick
            (test_soundness_optimized Policy.Fifo);
          Alcotest.test_case "plru: optimized binary" `Quick
            (test_soundness_optimized Policy.Plru);
        ] );
    ]
