(* Mutation tests for the Ucp_verify certification layer.

   A checker earns its keep by what it rejects: each test here takes a
   genuine artifact (an analysis, an optimizer result), verifies it
   certifies, then perturbs one claim and requires the checker to fail
   naming the violated obligation. *)

module Verify = Ucp_verify
module Wcet = Ucp_wcet.Wcet
module Optimizer = Ucp_prefetch.Optimizer
module Config = Ucp_cache.Config
module Tech = Ucp_energy.Tech
module Cacti = Ucp_energy.Cacti

let k2 = Config.make ~assoc:2 ~block_bytes:16 ~capacity:256

(* one full pipeline artifact set: original analysis, optimizer result,
   optimized analysis — computed once per (program, policy) and shared
   across the tests below *)
let setup =
  let cache = Hashtbl.create 4 in
  fun ?(policy = Ucp_policy.Lru) name ->
    match Hashtbl.find_opt cache (name, policy) with
    | Some v -> v
    | None ->
      let program = Ucp_workloads.Suite.find name in
      let model = Cacti.model k2 Tech.nm45 in
      let w0 = Wcet.compute ~with_may:true ~policy program k2 model in
      let r = Optimizer.optimize ~initial:w0 program k2 model in
      let w1 =
        Wcet.compute ~with_may:true ~policy r.Optimizer.program k2 model
      in
      Hashtbl.replace cache (name, policy) (w0, r, w1);
      (w0, r, w1)

let expect_obligation name obligation = function
  | Error msg ->
    let n = String.length obligation in
    Alcotest.(check bool)
      (Printf.sprintf "%s names %s (got %S)" name obligation msg)
      true
      (String.length msg >= n && String.sub msg 0 n = obligation)
  | Ok _ -> Alcotest.failf "%s: corrupted artifact accepted" name

(* ------------------------------------------------------------------ *)
(* audit modes *)

let test_mode_parsing () =
  Alcotest.(check bool) "off" true (Verify.mode_of_string "off" = Ok Verify.Off);
  Alcotest.(check bool) "full" true
    (Verify.mode_of_string "full" = Ok Verify.Full);
  Alcotest.(check bool) "sample:4" true
    (Verify.mode_of_string "sample:4" = Ok (Verify.Sample 4));
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (s ^ " rejected") true
        (Result.is_error (Verify.mode_of_string s)))
    [ "sample:0"; "sample:-1"; "sample:x"; "sample:"; "bogus"; "" ];
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Verify.mode_to_string m ^ " round-trips")
        true
        (Verify.mode_of_string (Verify.mode_to_string m) = Ok m))
    [ Verify.Off; Verify.Full; Verify.Sample 7 ]

let test_mode_selection () =
  let ids = List.init 50 (fun i -> Printf.sprintf "case-%d:k%d:45nm:lru" i i) in
  Alcotest.(check bool) "Off selects nothing" true
    (List.for_all (fun id -> not (Verify.selects Verify.Off id)) ids);
  Alcotest.(check bool) "Full selects everything" true
    (List.for_all (Verify.selects Verify.Full) ids);
  Alcotest.(check bool) "Sample 1 selects everything" true
    (List.for_all (Verify.selects (Verify.Sample 1)) ids);
  let picked = List.filter (Verify.selects (Verify.Sample 4)) ids in
  Alcotest.(check bool) "Sample 4 is a strict sample" true
    (picked <> [] && List.length picked < List.length ids);
  (* deterministic: the same ids are selected on a re-run (resume) *)
  Alcotest.(check bool) "Sample selection is stable" true
    (List.equal String.equal picked
       (List.filter (Verify.selects (Verify.Sample 4)) ids))

(* ------------------------------------------------------------------ *)
(* the full audit on genuine artifacts *)

let test_audit_case_passes () =
  List.iter
    (fun policy ->
      let w0, r, w1 = setup ~policy "fft1" in
      match Verify.audit_case ~original:w0 ~optimized:w1 r with
      | Ok (Verify.Certified { checks; seconds }) ->
        Alcotest.(check int)
          (Ucp_policy.to_string policy ^ " checks")
          5 checks;
        Alcotest.(check bool) "non-negative cost" true (seconds >= 0.0)
      | Ok (Verify.Skipped { reason }) ->
        Alcotest.failf "%s: plain analysis skipped: %s"
          (Ucp_policy.to_string policy) reason
      | Error msg ->
        Alcotest.failf "%s: audit failed: %s" (Ucp_policy.to_string policy) msg)
    [ Ucp_policy.Lru; Ucp_policy.Fifo; Ucp_policy.Plru ]

let test_audit_case_corrupt_hook () =
  let w0, r, w1 = setup "fft1" in
  expect_obligation "corrupt hook" "optimizer-tau-after"
    (Verify.audit_case ~corrupt:true ~original:w0 ~optimized:w1 r)

(* ------------------------------------------------------------------ *)
(* IPET fast path: the flow certificate must carry genuine cases
   without a solver, and tampered bounds must die on the linear
   cross-checks before any fallback *)

let test_ipet_fastpath_fires () =
  Ucp_obs.Metrics.enable ();
  Fun.protect ~finally:Ucp_obs.Metrics.disable (fun () ->
      Ucp_obs.Metrics.reset ();
      List.iter
        (fun name ->
          let w0, _, w1 = setup name in
          List.iter
            (fun (label, w) ->
              match Verify.certify_ipet w with
              | Ok () -> ()
              | Error msg -> Alcotest.failf "%s/%s: %s" name label msg)
            [ ("original", w0); ("optimized", w1) ])
        [ "fft1"; "st"; "fdct" ];
      let count k =
        match Ucp_obs.Metrics.find k with
        | Some (Ucp_obs.Metrics.Counter n) -> n
        | _ -> 0
      in
      Alcotest.(check int)
        "every certification took the fast path" 6
        (count "audit_ipet_fastpath_total");
      Alcotest.(check int) "no solver fallback" 0
        (count "audit_ipet_slowpath_total"))

let test_ipet_tau_mutation () =
  let w0, _, _ = setup "fft1" in
  List.iter
    (fun d ->
      match Verify.certify_ipet { w0 with Wcet.tau = w0.Wcet.tau + d } with
      | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "tampered tau (%+d) names the cross-check (got %S)" d msg)
          true
          (String.length msg >= 5 && String.sub msg 0 5 = "ipet-")
      | Ok () -> Alcotest.failf "tampered tau (%+d) accepted" d)
    [ 1; -1 ]

(* ------------------------------------------------------------------ *)
(* witness replay mutations *)

let test_witness_replay_passes () =
  List.iter
    (fun policy ->
      let w0, _, w1 = setup ~policy "fft1" in
      List.iter
        (fun (label, w) ->
          match Verify.replay_witness w with
          | Ok () -> ()
          | Error msg ->
            Alcotest.failf "%s/%s: %s" (Ucp_policy.to_string policy) label msg)
        [ ("original", w0); ("optimized", w1) ])
    [ Ucp_policy.Lru; Ucp_policy.Fifo; Ucp_policy.Plru ]

let test_witness_tau_mutation () =
  let w0, _, _ = setup "fft1" in
  expect_obligation "inflated tau" "witness-tau"
    (Verify.replay_witness { w0 with Wcet.tau = w0.Wcet.tau + 1 })

let test_witness_path_mutation () =
  let w0, _, _ = setup "fft1" in
  let n = Array.length w0.Wcet.path in
  expect_obligation "truncated path" "witness-path"
    (Verify.replay_witness { w0 with Wcet.path = Array.sub w0.Wcet.path 0 (n - 1) });
  expect_obligation "empty path" "witness-path"
    (Verify.replay_witness { w0 with Wcet.path = [||] })

let test_witness_counts_mutation () =
  let w0, _, _ = setup "fft1" in
  let n_w = Array.copy w0.Wcet.n_w in
  n_w.(w0.Wcet.path.(0)) <- n_w.(w0.Wcet.path.(0)) + 1;
  expect_obligation "inflated multiplicity" "witness-"
    (Verify.replay_witness { w0 with Wcet.n_w })

(* ------------------------------------------------------------------ *)
(* optimizer audit-trail mutations (on a case that actually inserts) *)

let test_audit_trail_passes () =
  let w0, r, w1 = setup "st" in
  Alcotest.(check bool) "st@k2 inserts prefetches" true
    (r.Optimizer.insertions <> []);
  match Verify.audit_trail ~original:w0 ~optimized:w1 r with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_trail_tau_after_mutation () =
  let w0, r, w1 = setup "st" in
  expect_obligation "inflated tau_after" "optimizer-tau-after"
    (Verify.audit_trail ~original:w0 ~optimized:w1
       { r with Optimizer.tau_after = r.Optimizer.tau_after + 1 })

let test_trail_tau_before_mutation () =
  let w0, r, w1 = setup "st" in
  expect_obligation "deflated tau_before" "optimizer-tau-before"
    (Verify.audit_trail ~original:w0 ~optimized:w1
       { r with Optimizer.tau_before = r.Optimizer.tau_before - 1 })

let test_trail_round_mutation () =
  let w0, r, w1 = setup "st" in
  match r.Optimizer.trail with
  | [] -> Alcotest.fail "expected a non-empty trail"
  | round :: rest ->
    (* breaking one round's claimed tau breaks the chained Eq. 5-9
       acceptance conditions or the endpoint equalities *)
    let forged =
      { round with Optimizer.round_tau_after = round.Optimizer.round_tau_before + 1 }
    in
    let res =
      Verify.audit_trail ~original:w0 ~optimized:w1
        { r with Optimizer.trail = forged :: rest }
    in
    Alcotest.(check bool) "forged round rejected" true (Result.is_error res)

let test_trail_materialization_mutation () =
  let w0, r, _ = setup "st" in
  (* claim the insertions but hand over the original program: the
     recorded prefetches are not materialized in it *)
  let res =
    Verify.audit_trail ~original:w0 ~optimized:w0
      { r with Optimizer.program = r.Optimizer.original }
  in
  Alcotest.(check bool) "unmaterialized insertions rejected" true
    (Result.is_error res)

let () =
  Alcotest.run "ucp_verify"
    [
      ( "modes",
        [
          Alcotest.test_case "parsing" `Quick test_mode_parsing;
          Alcotest.test_case "selection" `Quick test_mode_selection;
        ] );
      ( "audit",
        [
          Alcotest.test_case "passes on genuine cases" `Quick
            test_audit_case_passes;
          Alcotest.test_case "corrupt hook must fail" `Quick
            test_audit_case_corrupt_hook;
        ] );
      ( "ipet",
        [
          Alcotest.test_case "fast path carries genuine cases" `Quick
            test_ipet_fastpath_fires;
          Alcotest.test_case "tampered tau rejected" `Quick
            test_ipet_tau_mutation;
        ] );
      ( "witness",
        [
          Alcotest.test_case "replay passes (all policies)" `Quick
            test_witness_replay_passes;
          Alcotest.test_case "inflated tau rejected" `Quick
            test_witness_tau_mutation;
          Alcotest.test_case "mutated path rejected" `Quick
            test_witness_path_mutation;
          Alcotest.test_case "mutated counts rejected" `Quick
            test_witness_counts_mutation;
        ] );
      ( "trail",
        [
          Alcotest.test_case "passes on a prefetching case" `Quick
            test_audit_trail_passes;
          Alcotest.test_case "inflated tau_after rejected" `Quick
            test_trail_tau_after_mutation;
          Alcotest.test_case "deflated tau_before rejected" `Quick
            test_trail_tau_before_mutation;
          Alcotest.test_case "forged round rejected" `Quick
            test_trail_round_mutation;
          Alcotest.test_case "unmaterialized insertions rejected" `Quick
            test_trail_materialization_mutation;
        ] );
    ]
