(* Tests for Ucp_refine: the exact classification refinement and the
   quantitative non-LRU bounds (ISSUE 8).

   The centrepiece is the per-policy soundness cross-validation: every
   slot the exploration reclassifies to always-hit / always-miss is
   checked against the concrete simulator under the same policy — a
   refined AH slot must never miss, a refined AM slot must never hit.
   Around it: budget-exhaustion determinism (a starved exploration
   degrades to Genuinely_unknown, identically on every run, and stays
   sound), the checkpoint-fingerprint refine axis (journals swept under
   different modes never mix), the lossless record round-trip of the
   refine summary, the corrupt-refine fault being caught by the audit's
   digest recomputation, and QCheck properties for the concrete
   competitiveness inequalities behind {!Ucp_refine.Quantitative}. *)

module Mode = Ucp_refine.Mode
module Explore = Ucp_refine.Explore
module Quantitative = Ucp_refine.Quantitative
module Policy = Ucp_policy
module Config = Ucp_cache.Config
module Concrete = Ucp_cache.Concrete
module Wcet = Ucp_wcet.Wcet
module Analysis = Ucp_wcet.Analysis
module Classification = Ucp_wcet.Classification
module Simulator = Ucp_sim.Simulator
module Vivu = Ucp_cfg.Vivu
module Program = Ucp_isa.Program
module Suite = Ucp_workloads.Suite
module Tech = Ucp_energy.Tech
module Pipeline = Ucp_core.Pipeline
module Checkpoint = Ucp_core.Checkpoint
module Experiments = Ucp_core.Experiments
module Outcome = Ucp_core.Outcome

let model = Ucp_testlib.tiny_model
let paper_config id = List.assoc id Config.paper_configs

(* The bench grid's configurations, so the NC populations the
   refinement feeds on here match BENCH_8.json. *)
let test_configs = [ paper_config "k2"; paper_config "k5" ]
let test_programs = [ "fft1"; "crc" ]

(* ------------------------------------------------------------------ *)
(* mode identifiers *)

let test_mode_roundtrip () =
  List.iter
    (fun m ->
      match Mode.of_string (Mode.to_string m) with
      | Ok m' -> Alcotest.(check bool) (Mode.to_string m) true (m = m')
      | Error msg -> Alcotest.fail msg)
    Mode.all;
  Alcotest.(check bool) "case-insensitive" true (Mode.of_string "NC" = Ok Mode.Nc);
  Alcotest.(check bool) "unknown rejected" true
    (match Mode.of_string "some" with Error _ -> true | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* refined-classification soundness vs the concrete simulator *)

(* Meet the classifications over every VIVU context of a static slot,
   exactly as in test_policy: the concrete trace does not know which
   context it is in, so only a slot that is AH (resp. AM) in every
   context may claim it never misses (resp. never hits). *)
let meet_classifications analysis program =
  let vivu = Analysis.vivu analysis in
  let tbl = Hashtbl.create 997 in
  for node = 0 to Vivu.node_count vivu - 1 do
    let nd = Vivu.node vivu node in
    let b = nd.Vivu.block in
    for pos = 0 to Program.slots program b - 1 do
      let c = Analysis.classif analysis ~node ~pos in
      match Hashtbl.find_opt tbl (b, pos) with
      | None -> Hashtbl.replace tbl (b, pos) c
      | Some prev ->
        if prev <> c then
          Hashtbl.replace tbl (b, pos) Classification.Not_classified
    done
  done;
  tbl

let refined_violations ~policy ~seed program config (w' : Wcet.t) =
  let tbl = meet_classifications w'.Wcet.analysis program in
  let violations = ref [] in
  let on_fetch ~block ~pos ~hit =
    match Hashtbl.find_opt tbl (block, pos) with
    | Some Classification.Always_hit when not hit ->
      violations :=
        Printf.sprintf "refined AH slot (%d,%d) missed" block pos :: !violations
    | Some Classification.Always_miss when hit ->
      violations :=
        Printf.sprintf "refined AM slot (%d,%d) hit" block pos :: !violations
    | _ -> ()
  in
  ignore (Simulator.run ~seed ~policy ~on_fetch program config model);
  !violations

let check_summary_arithmetic name (s : Explore.summary) w =
  Alcotest.(check int)
    (name ^ ": nc_after = nc_before - gained")
    (s.Explore.s_nc_before - s.Explore.s_ah_gained - s.Explore.s_am_gained)
    s.Explore.s_nc_after;
  Alcotest.(check bool)
    (name ^ ": refined tau never above the abstract tau")
    true
    (s.Explore.s_tau <= Wcet.tau_with_residual w)

let test_refined_soundness policy () =
  List.iter
    (fun name ->
      let program = Suite.find name in
      List.iter
        (fun config ->
          let w = Wcet.compute ~with_may:true ~policy program config model in
          match Explore.run ~mode:Mode.Nc w with
          | None ->
            Alcotest.fail
              (Printf.sprintf "%s: refinement skipped a plain program" name)
          | Some (s, w') ->
            check_summary_arithmetic name s w;
            Alcotest.(check int)
              (name ^ ": refined tau matches refined wcet")
              s.Explore.s_tau
              (Wcet.tau_with_residual w');
            List.iter
              (fun seed ->
                match refined_violations ~policy ~seed program config w' with
                | [] -> ()
                | v ->
                  Alcotest.fail
                    (Printf.sprintf "%s under %s @%s seed %d: %s" name
                       (Policy.to_string policy) (Config.id config) seed
                       (String.concat "; " v)))
              [ 1; 42 ])
        test_configs)
    test_programs

(* The bench grid reclaims NC under every policy; make sure the test
   grid exercises reclassification rather than vacuously passing. *)
let test_strict_reduction () =
  let reduced =
    List.filter
      (fun policy ->
        List.exists
          (fun name ->
            let program = Suite.find name in
            List.exists
              (fun config ->
                let w =
                  Wcet.compute ~with_may:true ~policy program config model
                in
                match Explore.run ~mode:Mode.Nc w with
                | None -> false
                | Some (s, _) ->
                  s.Explore.s_nc_before > 0
                  && s.Explore.s_nc_after < s.Explore.s_nc_before)
              test_configs)
          test_programs)
      Policy.all
  in
  Alcotest.(check bool)
    (Printf.sprintf "NC strictly reduced for >= 2 policies (got %d: %s)"
       (List.length reduced)
       (String.concat "," (List.map Policy.to_string reduced)))
    true
    (List.length reduced >= 2)

(* Full mode explores every reference and cross-checks the abstract
   classification; on these workloads it must agree, not raise. *)
let test_full_mode_agrees () =
  let program = Suite.find "crc" in
  let config = paper_config "k2" in
  List.iter
    (fun policy ->
      let w = Wcet.compute ~with_may:true ~policy program config model in
      match Explore.run ~mode:Mode.Full w with
      | None -> Alcotest.fail "full refinement skipped a plain program"
      | Some (s, _) ->
        Alcotest.(check bool)
          (Policy.to_string policy ^ ": full mode reports its mode")
          true
          (s.Explore.s_mode = Mode.Full)
      | exception Explore.Unsound msg ->
        Alcotest.fail ("full cross-check contradiction: " ^ msg))
    Policy.all

(* ------------------------------------------------------------------ *)
(* budget exhaustion: deterministic, degraded, still sound *)

let test_budget_exhaustion () =
  let budget_hit = ref false in
  List.iter
    (fun policy ->
      let program = Suite.find "fft1" in
      let config = paper_config "k2" in
      let w = Wcet.compute ~with_may:true ~policy program config model in
      let run () = Explore.run ~budget:2 ~mode:Mode.Nc w in
      match (run (), run ()) with
      | Some (s1, w1), Some (s2, _) ->
        Alcotest.(check bool)
          (Policy.to_string policy ^ ": starved summaries identical")
          true (s1 = s2);
        Alcotest.(check string)
          (Policy.to_string policy ^ ": starved digests identical")
          s1.Explore.s_digest s2.Explore.s_digest;
        check_summary_arithmetic (Policy.to_string policy) s1 w;
        if s1.Explore.s_budget_hit then budget_hit := true;
        List.iter
          (fun seed ->
            match refined_violations ~policy ~seed program config w1 with
            | [] -> ()
            | v ->
              Alcotest.fail
                (Printf.sprintf "starved refinement unsound under %s: %s"
                   (Policy.to_string policy)
                   (String.concat "; " v)))
          [ 1; 42 ]
      | None, None -> Alcotest.fail "refinement skipped a plain program"
      | _ -> Alcotest.fail "budgeted exploration is nondeterministic")
    Policy.all;
  Alcotest.(check bool) "a 2-state budget actually starves some set" true
    !budget_hit

(* ------------------------------------------------------------------ *)
(* checkpoint fingerprint: the refine mode is part of the grid identity *)

let test_fingerprint_refine_axis () =
  let programs = [ ("fft1", Suite.find "fft1") ] in
  let configs = [ ("k2", paper_config "k2") ] in
  let techs = [ Tech.nm45 ] in
  let fp m = Checkpoint.fingerprint ~refine:m ~programs ~configs ~techs () in
  Alcotest.(check bool) "nc <> off" true (fp Mode.Nc <> fp Mode.Off);
  Alcotest.(check bool) "full <> nc" true (fp Mode.Full <> fp Mode.Nc);
  Alcotest.(check bool) "full <> off" true (fp Mode.Full <> fp Mode.Off);
  Alcotest.(check string) "deterministic" (fp Mode.Nc) (fp Mode.Nc);
  Alcotest.(check string) "default mode is off" (fp Mode.Off)
    (Checkpoint.fingerprint ~programs ~configs ~techs ());
  (* a journal swept under nc must be rejected when resumed under off *)
  let path = Filename.temp_file "ucp_refine_ckpt" ".jsonl" in
  let j = Checkpoint.start ~path ~fingerprint:(fp Mode.Nc) ~resume:false in
  Checkpoint.close j;
  (match Checkpoint.start ~path ~fingerprint:(fp Mode.Off) ~resume:true with
  | exception Failure _ -> ()
  | j ->
    Checkpoint.close j;
    Sys.remove path;
    Alcotest.fail "journal with a different refine mode was accepted");
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* record round-trip: the refine summary survives the journal losslessly *)

let test_record_roundtrip () =
  let program = Suite.find "crc" in
  let config = paper_config "k2" in
  let cmp =
    Pipeline.compare_optimized ~policy:Policy.Fifo ~refine:Mode.Nc program
      config Tech.nm45
  in
  Alcotest.(check bool) "original measurement carries a summary" true
    (cmp.Pipeline.original.Pipeline.refine <> None);
  let r =
    {
      Experiments.program_name = "crc";
      config_id = "k2";
      config;
      tech = Tech.nm45;
      policy = Policy.Fifo;
      original = cmp.Pipeline.original;
      optimized = cmp.Pipeline.optimized;
      prefetches = cmp.Pipeline.prefetches;
      rejected = cmp.Pipeline.rejected;
      audit = cmp.Pipeline.audit;
    }
  in
  match Checkpoint.parse_line (Checkpoint.record_line ~id:"crc:k2:45nm:fifo" r) with
  | None -> Alcotest.fail "record line did not parse back"
  | Some (id, r') ->
    Alcotest.(check string) "id" "crc:k2:45nm:fifo" id;
    Alcotest.(check bool) "original refine summary round-trips" true
      (r'.Experiments.original.Pipeline.refine
      = r.Experiments.original.Pipeline.refine);
    Alcotest.(check bool) "optimized refine summary round-trips" true
      (r'.Experiments.optimized.Pipeline.refine
      = r.Experiments.optimized.Pipeline.refine)

(* ------------------------------------------------------------------ *)
(* corrupt-refine: the audit's digest recomputation must catch the lie *)

let test_corrupt_refine_caught () =
  (* pick a case whose exploration leaves something not proven
     always-hit, so the fault has a reference to lie about *)
  let case =
    List.find_map
      (fun policy ->
        List.find_map
          (fun name ->
            let program = Suite.find name in
            List.find_map
              (fun config ->
                let w =
                  Wcet.compute ~with_may:true ~policy program config model
                in
                match Explore.run ~mode:Mode.Nc w with
                | Some (s, _)
                  when s.Explore.s_am_gained + s.Explore.s_nc_after > 0 ->
                  Some (policy, program, config)
                | _ -> None)
              test_configs)
          test_programs)
      Policy.all
  in
  match case with
  | None -> Alcotest.fail "no candidate case with a corruptible reference"
  | Some (policy, program, config) -> (
    match
      Pipeline.compare_optimized ~policy ~audit:true ~refine:Mode.Nc
        ~corrupt_refine:true program config Tech.nm45
    with
    | exception Outcome.Invariant msg ->
      Alcotest.(check bool)
        ("violation names the refine obligation: " ^ msg)
        true
        (Ucp_testlib.contains ~substring:"refine-original" msg)
    | _ -> Alcotest.fail "corrupt-refine slipped past the audit")

(* ------------------------------------------------------------------ *)
(* quantitative bounds *)

(* The analysis-level bound holds on the simulated run. *)
let test_quant_bounds_run () =
  List.iter
    (fun policy ->
      let program = Suite.find "crc" in
      let config = paper_config "k2" in
      let m =
        Pipeline.measure ~policy ~refine:Mode.Nc program config Tech.nm45
      in
      match m.Pipeline.refine with
      | None -> Alcotest.fail "no refine summary"
      | Some s -> (
        match (policy, s.Explore.s_quant) with
        | Policy.Lru, Some _ -> Alcotest.fail "LRU has no competitiveness bound"
        | Policy.Lru, None -> ()
        | _, None ->
          Alcotest.fail
            (Policy.to_string policy ^ ": expected a quantitative bound")
        | _, Some b ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: demand misses %d <= quant bound %d"
               (Policy.to_string policy) m.Pipeline.demand_misses b)
            true
            (m.Pipeline.demand_misses <= b)))
    Policy.all

(* Concrete Sleator-Tarjan inequality behind the FIFO triple:
   misses_FIFO(k) <= k * misses_LRU(k) + k per touched set, from cold
   caches, on arbitrary demand-access sequences. *)
let count_misses policy config trace =
  let c = Concrete.create ~policy config in
  List.fold_left
    (fun acc mb ->
      match Concrete.access c mb with
      | Concrete.Hit -> acc
      | Concrete.Miss _ -> acc + 1)
    0 trace

let distinct_sets config trace =
  let seen = Hashtbl.create 8 in
  List.iter (fun mb -> Hashtbl.replace seen (Config.set_of_mem_block config mb) ()) trace;
  Hashtbl.length seen

let prop_fifo_competitive =
  QCheck2.Test.make
    ~name:"fifo misses <= k * lru misses + k per touched set" ~count:300
    QCheck2.Gen.(pair Ucp_testlib.gen_config Ucp_testlib.gen_access_sequence)
    (fun (config, trace) ->
      let k = config.Config.assoc in
      let fifo = count_misses Concrete.Fifo config trace in
      let lru = count_misses Concrete.Lru config trace in
      fifo <= (k * lru) + (k * distinct_sets config trace))

(* Reineke/Grund inequality behind the PLRU triple: every PLRU(k) miss
   is an LRU(log2 k + 1) miss — same set count, reference associativity
   log2 k + 1, ratio 1, no additive term. *)
let prop_plru_competitive =
  QCheck2.Test.make
    ~name:"plru misses <= lru misses at the must associativity" ~count:300
    QCheck2.Gen.(pair Ucp_testlib.gen_config Ucp_testlib.gen_access_sequence)
    (fun (config, trace) ->
      let k = config.Config.assoc in
      let va = Policy.plru_must_assoc k in
      let ref_config =
        Config.make ~assoc:va ~block_bytes:config.Config.block_bytes
          ~capacity:(va * config.Config.block_bytes * config.Config.sets)
      in
      let plru = count_misses Concrete.Plru config trace in
      let lru = count_misses Concrete.Lru ref_config trace in
      plru <= lru)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "refine"
    [
      ( "mode",
        [ Alcotest.test_case "string round-trip" `Quick test_mode_roundtrip ] );
      ( "soundness",
        List.map
          (fun policy ->
            Alcotest.test_case
              ("refined classification sound under " ^ Policy.to_string policy)
              `Slow
              (test_refined_soundness policy))
          Policy.all
        @ [
            Alcotest.test_case "NC strictly reduced for >= 2 policies" `Slow
              test_strict_reduction;
            Alcotest.test_case "full mode agrees with the abstraction" `Slow
              test_full_mode_agrees;
          ] );
      ( "budget",
        [
          Alcotest.test_case "starved exploration: deterministic and sound"
            `Slow test_budget_exhaustion;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "fingerprint has a refine axis" `Quick
            test_fingerprint_refine_axis;
          Alcotest.test_case "refine summary round-trips the journal" `Slow
            test_record_roundtrip;
        ] );
      ( "audit",
        [
          Alcotest.test_case "corrupt-refine is caught" `Slow
            test_corrupt_refine_caught;
        ] );
      ( "quantitative",
        [
          Alcotest.test_case "analysis bound holds on the simulated run" `Slow
            test_quant_bounds_run;
          QCheck_alcotest.to_alcotest prop_fifo_competitive;
          QCheck_alcotest.to_alcotest prop_plru_competitive;
        ] );
    ]
