(* Tests for Ucp_wcet: classification, WCET path analysis, IPET
   agreement, and the soundness of the bound against the trace
   simulator. *)

module Program = Ucp_isa.Program
module Config = Ucp_cache.Config
module Cacti = Ucp_energy.Cacti
module Wcet = Ucp_wcet.Wcet
module Analysis = Ucp_wcet.Analysis
module Ipet = Ucp_wcet.Ipet
module Classification = Ucp_wcet.Classification
module Simulator = Ucp_sim.Simulator
module Dsl = Ucp_workloads.Dsl

let model = Ucp_testlib.tiny_model
let config = Config.make ~assoc:2 ~block_bytes:16 ~capacity:64

(* ------------------------------------------------------------------ *)
(* classification on crafted programs *)

let test_straightline_classification () =
  (* 8 instructions, 4 per block: the first slot of each block is a cold
     miss, the rest always hit *)
  let p = Dsl.compile ~name:"line" [ Dsl.compute 7 ] in
  let w = Wcet.compute p config model in
  let refs = Wcet.path_refs w in
  Array.iteri
    (fun i (node, pos) ->
      let cls = Analysis.classif w.Wcet.analysis ~node ~pos in
      let expected_miss = i mod 4 = 0 in
      Alcotest.(check bool)
        (Printf.sprintf "slot %d" i)
        expected_miss
        (Classification.is_wcet_miss cls))
    refs

let test_loop_steady_state_hits () =
  (* a small loop fits in the cache: rest-context slots are all hits *)
  let p = Dsl.compile ~name:"l" [ Dsl.loop 8 [ Dsl.compute 6 ] ] in
  let w = Wcet.compute p config model in
  let vivu = Analysis.vivu w.Wcet.analysis in
  let rest_nodes =
    List.filter
      (fun id ->
        match List.rev (Ucp_cfg.Vivu.node vivu id).Ucp_cfg.Vivu.ctx with
        | (_, Ucp_cfg.Vivu.Rest) :: _ -> true
        | _ -> false)
      (List.init (Ucp_cfg.Vivu.node_count vivu) (fun i -> i))
  in
  Alcotest.(check bool) "has rest nodes" true (rest_nodes <> []);
  List.iter
    (fun node ->
      let nd = Ucp_cfg.Vivu.node vivu node in
      for pos = 0 to Program.slots (Ucp_cfg.Vivu.program vivu) nd.Ucp_cfg.Vivu.block - 1 do
        Alcotest.(check bool) "rest slot hits" false
          (Classification.is_wcet_miss (Analysis.classif w.Wcet.analysis ~node ~pos))
      done)
    rest_nodes

let test_thrashing_loop_misses () =
  (* a loop body far larger than the cache: rest slots at block starts miss *)
  let p = Dsl.compile ~name:"big" [ Dsl.loop 4 [ Dsl.compute 100 ] ] in
  let w = Wcet.compute p config model in
  Alcotest.(check bool) "many WCET misses" true (Wcet.wcet_misses w > 50)

let test_tau_formula_straightline () =
  (* straight line: tau = hits * 1 + misses * (1 + penalty) *)
  let p = Dsl.compile ~name:"line" [ Dsl.compute 7 ] in
  let w = Wcet.compute p config model in
  let refs = Array.length (Wcet.path_refs w) in
  let misses = Wcet.wcet_misses w in
  Alcotest.(check int) "tau formula" (refs + (misses * model.Cacti.miss_penalty)) w.Wcet.tau

let test_path_refs_order () =
  let p = Dsl.compile ~name:"l" [ Dsl.compute 2; Dsl.loop 3 [ Dsl.compute 2 ]; Dsl.compute 1 ] in
  let w = Wcet.compute p config model in
  let refs = Wcet.path_refs w in
  Alcotest.(check bool) "nonempty" true (Array.length refs > 0);
  (* within one node, slots are consecutive from 0 *)
  let _, first_pos = refs.(0) in
  Alcotest.(check int) "starts at slot 0" 0 first_pos

let test_miss_penalty_monotone () =
  let p = Dsl.compile ~name:"m" [ Dsl.loop 4 [ Dsl.compute 30 ] ] in
  let w_small = Wcet.compute p config { model with Cacti.miss_penalty = 4 } in
  let w_big = Wcet.compute p config { model with Cacti.miss_penalty = 40 } in
  Alcotest.(check bool) "penalty monotone" true (w_big.Wcet.tau >= w_small.Wcet.tau)

let test_cache_size_monotone_on_suite_case () =
  let p = Ucp_workloads.Suite.find "st" in
  let small = Config.make ~assoc:2 ~block_bytes:16 ~capacity:256 in
  let big = Config.make ~assoc:2 ~block_bytes:16 ~capacity:8192 in
  let w_small = Wcet.compute p small model in
  let w_big = Wcet.compute p big model in
  Alcotest.(check bool) "bigger cache never hurts here" true
    (w_big.Wcet.tau <= w_small.Wcet.tau)

let test_with_may_same_tau () =
  let p = Dsl.compile ~name:"x" [ Dsl.loop 5 [ Dsl.compute 20 ] ] in
  let w1 = Wcet.compute ~with_may:true p config model in
  let w2 = Wcet.compute ~with_may:false p config model in
  Alcotest.(check int) "tau identical without may" w1.Wcet.tau w2.Wcet.tau

(* ------------------------------------------------------------------ *)
(* residual stall for unchecked prefetches *)

let test_hw_next_line_analysis () =
  (* next-N-line-always abstract semantics [22]: on straight-line code
     the sequential prefetcher hides every interior block boundary, so
     the WCET drops accordingly *)
  let p = Dsl.compile ~name:"nl" [ Dsl.compute 39 ] in
  let w0 = Wcet.compute p config model in
  let w1 = Wcet.compute ~hw_next_n:1 p config model in
  Alcotest.(check bool) "next-line lowers the bound" true (w1.Wcet.tau < w0.Wcet.tau);
  (* only the first block's cold miss remains *)
  Alcotest.(check int) "one cold miss" 1 (Wcet.wcet_misses w1)

let test_hw_next_n_monotone () =
  let p = Ucp_workloads.Suite.find "crc" in
  let w0 = Wcet.compute p config model in
  let w1 = Wcet.compute ~hw_next_n:1 p config model in
  let w2 = Wcet.compute ~hw_next_n:2 p config model in
  ignore w2;
  Alcotest.(check bool) "hw prefetch never raises the bound on this case" true
    (w1.Wcet.tau <= w0.Wcet.tau)

let test_residual_stall () =
  (* prefetch immediately before its use: the latency cannot be hidden *)
  let p = Dsl.compile ~name:"r" [ Dsl.compute 9 ] in
  (* target the last instruction, insert just before it *)
  let target_uid = 8 in
  let p', _ = Program.insert_prefetch p ~block:0 ~pos:8 ~target_uid in
  let w = Wcet.compute p' config model in
  Alcotest.(check bool) "residual positive for back-to-back prefetch" true
    (Wcet.residual_prefetch_stall w >= 0);
  Alcotest.(check int) "tau_with_residual adds it"
    (w.Wcet.tau + Wcet.residual_prefetch_stall w)
    (Wcet.tau_with_residual w)

(* ------------------------------------------------------------------ *)
(* IPET agreement *)

let test_ipet_agrees_simple () =
  let p = Dsl.compile ~name:"i" [ Dsl.compute 3; Dsl.loop 4 [ Dsl.compute 5 ]; Dsl.compute 2 ] in
  let w = Wcet.compute p config model in
  Alcotest.(check bool) "ILP = longest path" true (Ipet.agrees_with_longest_path w)

let test_ipet_agrees_conditional () =
  let p =
    Dsl.compile ~name:"c"
      [ Dsl.loop 3 [ Dsl.compute 2; Dsl.if_ [ Dsl.compute 6 ] [ Dsl.compute 2 ]; Dsl.compute 1 ] ]
  in
  let w = Wcet.compute p config model in
  Alcotest.(check bool) "ILP = longest path" true (Ipet.agrees_with_longest_path w)

let test_cfg_ipet_upper_bound () =
  let p =
    Dsl.compile ~name:"cf"
      [ Dsl.compute 3; Dsl.loop 5 [ Dsl.compute 4; Dsl.if_ [ Dsl.compute 5 ] [ Dsl.compute 1 ] ]; Dsl.compute 2 ]
  in
  let w = Wcet.compute p config model in
  let cfg_r = Ipet.solve_cfg w in
  Alcotest.(check bool) "block-level IPET bounds the context-sensitive tau" true
    (cfg_r.Ipet.tau >= w.Wcet.tau);
  (* the entry block executes exactly once in the optimum *)
  Alcotest.(check int) "entry count" 1 cfg_r.Ipet.counts.(0)

let prop_cfg_ipet_upper_bound =
  QCheck2.Test.make ~name:"CFG-level IPET is an upper bound of tau_w" ~count:40
    ~print:Ucp_testlib.print_program Ucp_testlib.gen_program (fun p ->
      let w = Wcet.compute p config model in
      (Ipet.solve_cfg w).Ipet.tau >= w.Wcet.tau)

let prop_ipet_agreement =
  QCheck2.Test.make ~name:"IPET ILP equals the longest-path tau" ~count:60
    ~print:Ucp_testlib.print_program Ucp_testlib.gen_program (fun p ->
      let w = Wcet.compute p config model in
      Ipet.agrees_with_longest_path w)

(* ------------------------------------------------------------------ *)
(* soundness against the simulator *)

let prop_sim_within_wcet =
  QCheck2.Test.make ~name:"simulated memory time never exceeds tau_w" ~count:120
    ~print:(fun (p, seed) -> Printf.sprintf "%s seed=%d" (Ucp_testlib.print_program p) seed)
    QCheck2.Gen.(pair Ucp_testlib.gen_program (int_bound 1000))
    (fun (p, seed) ->
      let w = Wcet.compute p config model in
      let stats = Simulator.run ~seed p config model in
      Simulator.acet stats <= w.Wcet.tau)

let prop_sim_misses_within_bound =
  QCheck2.Test.make ~name:"simulated misses never exceed the analysis bound" ~count:120
    ~print:(fun (p, seed) -> Printf.sprintf "%s seed=%d" (Ucp_testlib.print_program p) seed)
    QCheck2.Gen.(pair Ucp_testlib.gen_program (int_bound 1000))
    (fun (p, seed) ->
      let w = Wcet.compute p config model in
      let stats = Simulator.run ~seed p config model in
      stats.Simulator.counts.Ucp_energy.Account.misses
      <= Analysis.miss_count_bound w.Wcet.analysis)

let prop_sim_within_wcet_across_configs =
  QCheck2.Test.make ~name:"soundness across random configurations" ~count:100
    ~print:(fun (p, c) -> Ucp_testlib.print_program p ^ " @ " ^ Ucp_testlib.print_config c)
    QCheck2.Gen.(pair Ucp_testlib.gen_program Ucp_testlib.gen_config)
    (fun (p, c) ->
      let w = Wcet.compute p c model in
      let stats = Simulator.run p c model in
      Simulator.acet stats <= w.Wcet.tau)

(* ------------------------------------------------------------------ *)
(* witness replay: the certification layer must accept every genuine
   analysis — the WCET path is a real execution whose replayed cost
   stays within tau_w, under each replacement policy *)

let test_witness_replay_policies () =
  let p = Ucp_workloads.Suite.find "crc" in
  let c = Config.make ~assoc:2 ~block_bytes:16 ~capacity:256 in
  List.iter
    (fun policy ->
      let w = Wcet.compute ~with_may:true ~policy p c model in
      match Ucp_verify.replay_witness w with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: %s" (Ucp_policy.to_string policy) msg)
    [ Ucp_policy.Lru; Ucp_policy.Fifo; Ucp_policy.Plru ]

let prop_witness_replay =
  QCheck2.Test.make ~name:"witness replay certifies random programs (all policies)"
    ~count:60 ~print:Ucp_testlib.print_program Ucp_testlib.gen_program (fun p ->
      List.for_all
        (fun policy ->
          let w = Wcet.compute ~with_may:true ~policy p config model in
          Result.is_ok (Ucp_verify.replay_witness w))
        [ Ucp_policy.Lru; Ucp_policy.Fifo; Ucp_policy.Plru ])

let () =
  Alcotest.run "ucp_wcet"
    [
      ( "classification",
        [
          Alcotest.test_case "straight line" `Quick test_straightline_classification;
          Alcotest.test_case "loop steady state" `Quick test_loop_steady_state_hits;
          Alcotest.test_case "thrashing loop" `Quick test_thrashing_loop_misses;
          Alcotest.test_case "with/without may" `Quick test_with_may_same_tau;
        ] );
      ( "wcet",
        [
          Alcotest.test_case "tau formula" `Quick test_tau_formula_straightline;
          Alcotest.test_case "path refs order" `Quick test_path_refs_order;
          Alcotest.test_case "penalty monotone" `Quick test_miss_penalty_monotone;
          Alcotest.test_case "cache size monotone" `Quick
            test_cache_size_monotone_on_suite_case;
          Alcotest.test_case "residual stall" `Quick test_residual_stall;
          Alcotest.test_case "hw next-line analysis" `Quick test_hw_next_line_analysis;
          Alcotest.test_case "hw next-n monotone" `Quick test_hw_next_n_monotone;
        ] );
      ( "ipet",
        [
          Alcotest.test_case "simple agreement" `Quick test_ipet_agrees_simple;
          Alcotest.test_case "conditional agreement" `Quick test_ipet_agrees_conditional;
          Alcotest.test_case "cfg-level upper bound" `Quick test_cfg_ipet_upper_bound;
          QCheck_alcotest.to_alcotest prop_ipet_agreement;
          QCheck_alcotest.to_alcotest prop_cfg_ipet_upper_bound;
        ] );
      ( "soundness",
        [
          QCheck_alcotest.to_alcotest prop_sim_within_wcet;
          QCheck_alcotest.to_alcotest prop_sim_misses_within_bound;
          QCheck_alcotest.to_alcotest prop_sim_within_wcet_across_configs;
        ] );
      ( "witness",
        [
          Alcotest.test_case "replay on a suite case" `Quick
            test_witness_replay_policies;
          QCheck_alcotest.to_alcotest prop_witness_replay;
        ] );
    ]
