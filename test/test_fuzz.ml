(* Tests for the generative differential fuzzing harness: the seeded
   program generator, signature normalization, the deterministic
   shrinker (determinism, validity, 1-minimality), the oracles on clean
   and corrupted runs, the corpus round-trip + replay, and whole-
   campaign determinism. *)

module Dsl = Ucp_workloads.Dsl
module Generate = Ucp_workloads.Generate
module Config = Ucp_cache.Config
module Tech = Ucp_energy.Tech
module Experiments = Ucp_core.Experiments
module Oracle = Ucp_fuzz.Oracle
module Shrink = Ucp_fuzz.Shrink
module Corpus = Ucp_fuzz.Corpus
module Campaign = Ucp_fuzz.Campaign
module Mode = Ucp_refine.Mode

let temp_dir prefix =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir d 0o755;
  d

let rm_rf dir =
  let rec walk p =
    if Sys.is_directory p then (
      Array.iter (fun n -> walk (Filename.concat p n)) (Sys.readdir p);
      Unix.rmdir p)
    else Sys.remove p
  in
  try walk dir with Sys_error _ | Unix.Unix_error _ -> ()

let k2 = List.assoc "k2" Config.paper_configs

let target ?(policy = Ucp_policy.Lru) ?(cls = "m") seed =
  Oracle.of_gen ~seed ~cls ~policy ~config_id:"k2" ~config:k2 ~tech:Tech.nm45

(* ------------------------------------------------------------------ *)
(* generator *)

let test_generator_validates () =
  List.iter
    (fun (cls, _) ->
      for seed = 0 to 30 do
        let body, procs = Generate.stmts ~seed ~cls in
        (match Dsl.validate ~procs body with
        | Ok () -> ()
        | Error msg ->
          Alcotest.failf "gen-%s-%d rejected by validate: %s" cls seed msg);
        (* a validated program compiles without raising *)
        ignore (Generate.program ~seed ~cls)
      done)
    Generate.classes

let test_generator_deterministic () =
  List.iter
    (fun (cls, _) ->
      for seed = 0 to 10 do
        Alcotest.(check bool)
          (Printf.sprintf "gen-%s-%d stable" cls seed)
          true
          (Generate.stmts ~seed ~cls = Generate.stmts ~seed ~cls)
      done)
    Generate.classes

let test_generator_names () =
  Alcotest.(check (option (pair int string)))
    "roundtrip" (Some (42, "m"))
    (Generate.parse_name (Generate.name ~seed:42 ~cls:"m"));
  Alcotest.(check (option (pair int string))) "suite name" None (Generate.parse_name "fft1");
  Alcotest.(check (option (pair int string)))
    "unknown class" None (Generate.parse_name "gen-x-3");
  Alcotest.(check (option (pair int string)))
    "negative seed" None (Generate.parse_name "gen-s--3");
  (* ':' is the case-id separator and must never appear *)
  List.iter
    (fun (cls, _) ->
      Alcotest.(check bool) "no colon" false
        (String.contains (Generate.name ~seed:123 ~cls) ':'))
    Generate.classes

let test_generator_distinct_seeds () =
  (* different seeds should overwhelmingly draw different programs *)
  let distinct = Hashtbl.create 64 in
  for seed = 0 to 49 do
    Hashtbl.replace distinct (Generate.stmts ~seed ~cls:"m") ()
  done;
  Alcotest.(check bool) "at least 45/50 distinct" true (Hashtbl.length distinct >= 45)

(* ------------------------------------------------------------------ *)
(* signatures *)

let test_normalize () =
  Alcotest.(check string)
    "digit runs collapse" "slot (#,#) missed"
    (Oracle.normalize "slot (14,3) missed");
  Alcotest.(check string)
    "same bug same signature"
    (Oracle.normalize "slot (7,1) missed")
    (Oracle.normalize "slot (14,3) missed");
  Alcotest.(check string)
    "long hex collapses" "digest # vs #"
    (Oracle.normalize "digest 4c2f00ab9d vs f00dfeed11");
  Alcotest.(check string)
    "short words survive" "cafe beef decode"
    (Oracle.normalize "cafe beef decode");
  Alcotest.(check bool) "truncated" true
    (String.length (Oracle.normalize (String.make 500 'x')) <= 160)

(* ------------------------------------------------------------------ *)
(* shrinker *)

let rec has_big_loop stmts =
  List.exists
    (function
      | Dsl.Loop { trips; body; _ } -> trips >= 2 || has_big_loop body
      | Dsl.If (_, t, e) -> has_big_loop t || has_big_loop e
      | Dsl.Far b -> has_big_loop b
      | Dsl.Compute _ | Dsl.Call _ -> false)
    stmts

let pred ((body, procs) : Shrink.prog) =
  has_big_loop body || List.exists (fun (_, b) -> has_big_loop b) procs

let find_shrinkable () =
  let rec go seed =
    if seed > 200 then Alcotest.fail "no generated program has a trips>=2 loop"
    else
      let p = Generate.stmts ~seed ~cls:"m" in
      if pred p && Shrink.size p > 5 then p else go (seed + 1)
  in
  go 0

let test_shrink_deterministic_and_minimal () =
  let p = find_shrinkable () in
  let r1, steps1 = Shrink.run ~still_fails:pred p in
  let r2, steps2 = Shrink.run ~still_fails:pred p in
  Alcotest.(check bool) "deterministic result" true (r1 = r2);
  Alcotest.(check int) "deterministic steps" steps1 steps2;
  Alcotest.(check bool) "still fails" true (pred r1);
  Alcotest.(check bool) "shrank" true (Shrink.size r1 < Shrink.size p);
  let body, procs = r1 in
  (match Dsl.validate ~procs body with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "shrunk program invalid: %s" msg);
  (* 1-minimality: no single-step reduction still satisfies the
     predicate *)
  Alcotest.(check bool) "1-minimal" true
    (Seq.for_all (fun cand -> not (pred cand)) (Shrink.candidates r1));
  (* the minimum for "contains a trips>=2 loop" is exactly one loop of
     one compute *)
  Alcotest.(check int) "minimal size" 2 (Shrink.size r1)

let test_shrink_candidates_validate () =
  for seed = 0 to 15 do
    let p = Generate.stmts ~seed ~cls:"m" in
    Seq.iter
      (fun (body, procs) ->
        match Dsl.validate ~procs body with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "seed %d candidate invalid: %s" seed msg)
      (Shrink.candidates p)
  done

let test_shrink_noop_when_nothing_fails () =
  let p = Generate.stmts ~seed:3 ~cls:"s" in
  let r, steps = Shrink.run ~still_fails:(fun _ -> false) p in
  Alcotest.(check bool) "unchanged" true (r = p);
  Alcotest.(check int) "no steps" 0 steps

(* ------------------------------------------------------------------ *)
(* oracles *)

let test_oracles_pass_on_clean_tree () =
  List.iter
    (fun policy ->
      let t = target ~policy 11 in
      (match Oracle.classification t with
      | Oracle.Pass -> ()
      | Oracle.Finding f -> Alcotest.failf "classification: %s" f.Oracle.f_detail
      | Oracle.Caught _ -> Alcotest.fail "classification: phantom Caught");
      (match Oracle.endtoend t with
      | Oracle.Pass -> ()
      | Oracle.Finding f -> Alcotest.failf "endtoend: %s" f.Oracle.f_detail
      | Oracle.Caught _ -> Alcotest.fail "endtoend: phantom Caught");
      match Oracle.refine_full t with
      | Oracle.Pass, exhausted -> Alcotest.(check bool) "exhausted >= 0" true (exhausted >= 0)
      | Oracle.Finding f, _ -> Alcotest.failf "refine_full: %s" f.Oracle.f_detail
      | Oracle.Caught _, _ -> Alcotest.fail "refine_full: phantom Caught")
    Ucp_policy.all

let test_corrupt_cert_caught_and_shrinks () =
  let t = target 17 in
  match Oracle.endtoend ~fault:Oracle.Corrupt_cert t with
  | Oracle.Pass -> Alcotest.fail "corrupt-cert escaped the audit"
  | Oracle.Finding f -> Alcotest.failf "corrupt-cert mis-reported: %s" f.Oracle.f_detail
  | Oracle.Caught f ->
    Alcotest.(check bool) "audit oracle" true (f.Oracle.f_oracle = "audit");
    (* the catch shrinks like any finding: same signature must keep
       reproducing on candidates *)
    let still_caught cand =
      match Oracle.endtoend ~fault:Oracle.Corrupt_cert (Oracle.with_prog t cand) with
      | Oracle.Caught f' -> f'.Oracle.f_signature = f.Oracle.f_signature
      | _ -> false
    in
    let shrunk, _steps = Shrink.run ~max_steps:50 ~still_fails:still_caught (Oracle.prog t) in
    Alcotest.(check bool) "shrunk reproduces" true (still_caught shrunk);
    Alcotest.(check bool) "no growth" true (Shrink.size shrunk <= Shrink.size (Oracle.prog t))

let test_corrupt_refine_caught_or_noop () =
  (* whatever the draw, the verdict must never be Finding: either the
     audit catches the lie or the lie had nothing to corrupt *)
  for seed = 0 to 5 do
    let t = target ~policy:Ucp_policy.Fifo seed in
    match Oracle.endtoend ~fault:Oracle.Corrupt_refine t with
    | Oracle.Caught f ->
      Alcotest.(check bool) "names the refine obligation" true
        (Ucp_testlib.contains ~substring:"refine" f.Oracle.f_detail)
    | Oracle.Pass -> ()
    | Oracle.Finding f -> Alcotest.failf "seed %d escaped: %s" seed f.Oracle.f_detail
  done

(* ------------------------------------------------------------------ *)
(* corpus *)

let sample_entry () =
  let t = target 17 in
  match Oracle.endtoend ~fault:Oracle.Corrupt_cert t with
  | Oracle.Caught f ->
    Corpus.of_finding ~seed:17 ~cls:"m" ~fault:(Some Oracle.Corrupt_cert)
      ~shrunk:(Oracle.prog t) ~shrink_steps:0 t f
  | _ -> Alcotest.fail "corrupt-cert not caught"

let test_corpus_roundtrip () =
  let e = sample_entry () in
  (match Corpus.of_line (Corpus.to_line e) with
  | Ok e' -> Alcotest.(check bool) "line roundtrip" true (e = e')
  | Error msg -> Alcotest.failf "of_line: %s" msg);
  let dir = temp_dir "ucp-corpus" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let path = Corpus.save ~dir e in
      Alcotest.(check (list string)) "listed" [ path ] (Corpus.list ~dir);
      (* idempotent: same entry, same file *)
      let path2 = Corpus.save ~dir e in
      Alcotest.(check string) "stable path" path path2;
      Alcotest.(check (list string)) "still one entry" [ path ] (Corpus.list ~dir);
      match Corpus.load path with
      | Ok e' -> Alcotest.(check bool) "file roundtrip" true (e = e')
      | Error msg -> Alcotest.failf "load: %s" msg)

let test_corpus_replay () =
  let e = sample_entry () in
  (match Corpus.replay e with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "replay of a caught fault: %s" msg);
  (* a clean-bug entry that does not reproduce on a sound tree must
     fail replay — that is the fixed-regression direction of the pin *)
  let stale = { e with e_fault = None; e_oracle = "classification" } in
  match Corpus.replay stale with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "phantom clean finding reproduced"

let test_corpus_rejects_garbage () =
  (match Corpus.of_line "not json at all" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parsed garbage");
  match Corpus.of_line "{\"seed\":1}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parsed incomplete entry"

(* ------------------------------------------------------------------ *)
(* campaign *)

let small_config =
  {
    Campaign.default with
    Campaign.c_count = 6;
    c_seed = 42;
    c_jobs = Some 2;
    c_timeout = Some 60.;
    c_refine_full_every = 3;
  }

let run_campaign cfg =
  let lines = ref [] in
  let s = Campaign.run ~emit:(fun l -> lines := l :: !lines) cfg in
  (s, List.rev !lines)

let test_campaign_clean_and_deterministic () =
  let s1, lines1 = run_campaign small_config in
  let _s2, lines2 = run_campaign small_config in
  Alcotest.(check bool) "clean" true (Campaign.clean s1);
  Alcotest.(check int) "all cases ran" 6 s1.Campaign.s_cases;
  Alcotest.(check int) "all passed" 6 s1.Campaign.s_pass;
  (* record-for-record identical, summary line (wall clock) excluded *)
  let strip lines =
    List.filter
      (fun l -> not (Ucp_testlib.contains ~substring:"fuzz_summary" l))
      lines
  in
  Alcotest.(check (list string)) "replay identical" (strip lines1) (strip lines2)

let test_campaign_chaos_catches () =
  let cfg = { small_config with Campaign.c_count = 2; c_chaos = 2 } in
  let dir = temp_dir "ucp-fuzz-corpus" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let s, _ = run_campaign { cfg with Campaign.c_corpus = Some dir } in
      Alcotest.(check bool) "clean (catches are not findings)" true (Campaign.clean s);
      Alcotest.(check int) "no escapes" 0 s.Campaign.s_escaped;
      Alcotest.(check bool) "corrupt-cert caught" true (s.Campaign.s_caught >= 1);
      (* each deposited reproducer replays green *)
      Alcotest.(check bool) "deposited" true (s.Campaign.s_corpus <> []);
      let ok, failures = Campaign.replay_corpus ~dir () in
      Alcotest.(check int) "replay count" (List.length (Corpus.list ~dir)) ok;
      Alcotest.(check (list (pair string string))) "replay green" [] failures)

(* ------------------------------------------------------------------ *)
(* daemon identity *)

let test_serve_identity () =
  let dir = temp_dir "ucp-fuzz-serve" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let socket = Filename.concat dir "s.sock" in
      let scfg =
        Ucp_serve.Server.default_config ~socket ~store_dir:(Filename.concat dir "store")
      in
      let th = Thread.create (fun () -> Ucp_serve.Server.run ~signals:false scfg) () in
      Fun.protect
        ~finally:(fun () ->
          ignore
            (Ucp_serve.Client.query ~retries:4 ~socket Ucp_serve.Protocol.Shutdown);
          Thread.join th)
        (fun () ->
          let t = target 23 in
          match Oracle.serve_identity ~refine:Mode.Nc ~socket t with
          | Oracle.Pass -> ()
          | Oracle.Finding f -> Alcotest.failf "daemon differs: %s" f.Oracle.f_detail
          | Oracle.Caught _ -> Alcotest.fail "phantom Caught"))

let () =
  Alcotest.run "ucp_fuzz"
    [
      ( "generator",
        [
          Alcotest.test_case "always validates" `Quick test_generator_validates;
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "names" `Quick test_generator_names;
          Alcotest.test_case "distinct seeds" `Quick test_generator_distinct_seeds;
        ] );
      ( "signatures",
        [ Alcotest.test_case "normalize" `Quick test_normalize ] );
      ( "shrink",
        [
          Alcotest.test_case "deterministic + 1-minimal" `Quick
            test_shrink_deterministic_and_minimal;
          Alcotest.test_case "candidates validate" `Quick
            test_shrink_candidates_validate;
          Alcotest.test_case "no-op without failure" `Quick
            test_shrink_noop_when_nothing_fails;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "pass on clean tree" `Quick test_oracles_pass_on_clean_tree;
          Alcotest.test_case "corrupt-cert caught + shrinks" `Quick
            test_corrupt_cert_caught_and_shrinks;
          Alcotest.test_case "corrupt-refine caught or no-op" `Quick
            test_corrupt_refine_caught_or_noop;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "roundtrip" `Quick test_corpus_roundtrip;
          Alcotest.test_case "replay" `Quick test_corpus_replay;
          Alcotest.test_case "rejects garbage" `Quick test_corpus_rejects_garbage;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "clean + deterministic" `Quick
            test_campaign_clean_and_deterministic;
          Alcotest.test_case "chaos catches + corpus replays" `Quick
            test_campaign_chaos_catches;
        ] );
      ( "serve",
        [ Alcotest.test_case "batch-daemon identity" `Quick test_serve_identity ] );
    ]
