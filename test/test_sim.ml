(* Tests for Ucp_sim: deterministic execution, branch models, timing
   and event accounting, the prefetch port, locked mode, and hardware
   prefetchers. *)

module Program = Ucp_isa.Program
module Config = Ucp_cache.Config
module Cacti = Ucp_energy.Cacti
module Account = Ucp_energy.Account
module Simulator = Ucp_sim.Simulator
module Hw = Ucp_sim.Hw_prefetch
module Dsl = Ucp_workloads.Dsl

let model = Ucp_testlib.tiny_model
let config = Config.make ~assoc:2 ~block_bytes:16 ~capacity:64

(* ------------------------------------------------------------------ *)
(* basic execution *)

let test_straightline_exact_counts () =
  let p = Dsl.compile ~name:"line" [ Dsl.compute 7 ] in
  (* 7 compute + 1 return = 8 instructions = 2 memory blocks *)
  let s = Simulator.run p config model in
  Alcotest.(check int) "executed" 8 s.Simulator.executed;
  Alcotest.(check int) "fetches" 8 s.Simulator.counts.Account.fetches;
  Alcotest.(check int) "misses = block count" 2 s.Simulator.counts.Account.misses;
  Alcotest.(check int) "cycles" (8 + (2 * model.Cacti.miss_penalty))
    (Simulator.acet s)

let test_loop_trip_counts () =
  let p = Dsl.compile ~name:"loop" [ Dsl.loop 5 [ Dsl.compute 3 ] ] in
  (* per iteration: 3 compute + 1 latch cond; plus 1 return *)
  let s = Simulator.run p config model in
  Alcotest.(check int) "executed" ((5 * 4) + 1) s.Simulator.executed

let test_nested_loop_trip_counts () =
  let p = Dsl.compile ~name:"nest" [ Dsl.loop 3 [ Dsl.loop 4 [ Dsl.compute 1 ] ] ] in
  (* inner: 4*(1+1) per outer iteration; outer latch: 1 per iteration; return *)
  let s = Simulator.run p config model in
  Alcotest.(check int) "executed" ((3 * ((4 * 2) + 1)) + 1) s.Simulator.executed

let test_determinism () =
  let p = Ucp_workloads.Suite.find "qurt" in
  let a = Simulator.run ~seed:5 p config model in
  let b = Simulator.run ~seed:5 p config model in
  Alcotest.(check int) "same cycles" (Simulator.acet a) (Simulator.acet b);
  Alcotest.(check int) "same misses" a.Simulator.counts.Account.misses
    b.Simulator.counts.Account.misses

let test_seed_changes_bernoulli_paths () =
  let p =
    Dsl.compile ~name:"b"
      [ Dsl.loop 50 [ Dsl.if_ ~p:0.5 [ Dsl.compute 9 ] [ Dsl.compute 1 ] ] ]
  in
  let a = Simulator.run ~seed:1 p config model in
  let b = Simulator.run ~seed:2 p config model in
  Alcotest.(check bool) "different paths" true
    (a.Simulator.executed <> b.Simulator.executed)

let test_every_model_alternates () =
  (* if_every 2: taken on the first of every 2 executions *)
  let p =
    Dsl.compile ~name:"e" [ Dsl.loop 10 [ Dsl.if_every 2 [ Dsl.compute 5 ] [ Dsl.compute 1 ] ] ]
  in
  let s = Simulator.run p config model in
  (* 5 taken (5 instrs + jump) and 5 not (1 instr, fallthrough join) *)
  let expected = 10 * 2 (* cond+latch *) + (5 * 6) + (5 * 1) + 1 in
  Alcotest.(check int) "alternation" expected s.Simulator.executed

let test_max_steps_guard () =
  let p =
    Program.make ~name:"inf" ~entry:0
      [|
        {
          Program.spec_body = 1;
          spec_term =
            Program.S_cond
              { taken = 0; fallthrough = 1; model = Ucp_isa.Branch_model.Always_taken };
          spec_bound = Some 10;
        };
        { Program.spec_body = 0; spec_term = Program.S_return; spec_bound = None };
      |]
  in
  Alcotest.(check bool) "diverging branch detected" true
    (try
       ignore (Simulator.run ~max_steps:1000 p config model);
       false
     with Failure _ -> true)

(* ------------------------------------------------------------------ *)
(* software prefetch port *)

let test_effective_prefetch_hides_latency () =
  (* prefetch the last block early; a cache large enough to hold the
     whole program keeps the prefetched block alive until its use *)
  let roomy = Config.make ~assoc:2 ~block_bytes:16 ~capacity:256 in
  let p = Dsl.compile ~name:"pf" [ Dsl.compute 20 ] in
  let last_uid = 19 in
  let base = Simulator.run p roomy model in
  let p', _ = Program.insert_prefetch p ~block:0 ~pos:0 ~target_uid:last_uid in
  let s = Simulator.run p' roomy model in
  Alcotest.(check int) "one prefetch executed" 1 s.Simulator.executed_prefetches;
  Alcotest.(check int) "one dram read moved to the port" 1
    s.Simulator.counts.Account.prefetch_dram_reads;
  Alcotest.(check int) "one fewer demand miss"
    (base.Simulator.counts.Account.misses - 1)
    s.Simulator.counts.Account.misses;
  Alcotest.(check bool) "cycles improved" true (Simulator.acet s < Simulator.acet base)

let test_late_prefetch_stalls () =
  (* issue a prefetch for the instruction at a memory-block boundary
     from the slot just before it: zero slots elapse between issue and
     use, so the demand access stalls for the full latency (but never
     more than a genuine miss would) *)
  let p = Dsl.compile ~name:"late" [ Dsl.compute 30 ] in
  let layout = Ucp_isa.Layout.make p ~block_bytes:16 in
  let boundary_pos =
    let found = ref None in
    for pos = 1 to 29 do
      if
        !found = None
        && Ucp_isa.Layout.mem_block layout ~block:0 ~pos
           <> Ucp_isa.Layout.mem_block layout ~block:0 ~pos:(pos - 1)
      then found := Some pos
    done;
    Option.get !found
  in
  let target_uid = (Program.slot_instr p ~block:0 ~pos:boundary_pos).Ucp_isa.Instr.uid in
  let p', _ = Program.insert_prefetch p ~block:0 ~pos:boundary_pos ~target_uid in
  let s = Simulator.run p' config model in
  Alcotest.(check int) "stalls for the full latency"
    model.Cacti.prefetch_latency s.Simulator.late_prefetch_stall_cycles;
  Alcotest.(check bool) "still cheaper than a miss" true
    (s.Simulator.late_prefetch_stall_cycles <= model.Cacti.miss_penalty)

let test_prefetch_of_resident_block_is_free () =
  let p = Dsl.compile ~name:"res" [ Dsl.compute 6 ] in
  (* target the first instruction: its block is resident by then *)
  let p', _ = Program.insert_prefetch p ~block:0 ~pos:3 ~target_uid:0 in
  let s = Simulator.run p' config model in
  Alcotest.(check int) "no dram read" 0 s.Simulator.counts.Account.prefetch_dram_reads

(* ------------------------------------------------------------------ *)
(* locked mode *)

let test_locked_mode () =
  let p = Dsl.compile ~name:"lk" [ Dsl.loop 10 [ Dsl.compute 7 ] ] in
  let layout = Ucp_isa.Layout.make p ~block_bytes:16 in
  let blocks = Ucp_isa.Layout.mem_block_ids layout in
  (* everything locked: all hits *)
  let s_all = Simulator.run ~locked:blocks p config model in
  Alcotest.(check int) "all hit" 0 s_all.Simulator.counts.Account.misses;
  (* nothing locked: all misses *)
  let s_none = Simulator.run ~locked:[] p config model in
  Alcotest.(check int) "all miss" s_none.Simulator.counts.Account.fetches
    s_none.Simulator.counts.Account.misses

(* ------------------------------------------------------------------ *)
(* hardware prefetchers *)

let test_next_line_helps_streaming () =
  let p = Dsl.compile ~name:"stream" [ Dsl.compute 200 ] in
  let base = Simulator.run p config model in
  let s = Simulator.run ~hw:(Hw.next_line_always ()) p config model in
  Alcotest.(check bool) "fewer demand misses" true
    (s.Simulator.counts.Account.misses < base.Simulator.counts.Account.misses);
  Alcotest.(check bool) "hw issued prefetches" true (s.Simulator.hw_issued > 0)

let test_next_line_tagged_issues_once_per_block () =
  let p = Dsl.compile ~name:"tag" [ Dsl.loop 5 [ Dsl.compute 7 ] ] in
  let s = Simulator.run ~hw:(Hw.next_line_tagged ()) p config model in
  (* the loop touches the same blocks every iteration: the tag bit
     limits issues to roughly one per distinct block *)
  let layout = Ucp_isa.Layout.make p ~block_bytes:16 in
  Alcotest.(check bool) "bounded issues" true
    (s.Simulator.hw_issued <= Ucp_isa.Layout.code_mem_blocks layout + 1)

let test_rpt_learns_branch_target () =
  let p =
    Dsl.compile ~name:"rpt" [ Dsl.loop 20 [ Dsl.compute 2; Dsl.Far [ Dsl.compute 6 ] ] ]
  in
  let s =
    Simulator.run ~hw:(Hw.target_rpt ~size:16 ~block_bytes:16) p config model
  in
  ignore s.Simulator.hw_issued;
  (* conditional latch is the only Cond; rpt learns its target after the
     first taken execution *)
  Alcotest.(check bool) "rpt runs" true (s.Simulator.executed > 0)

let test_next_n_line_deeper_coverage () =
  let p = Dsl.compile ~name:"n2" [ Dsl.compute 200 ] in
  let one = Simulator.run ~hw:(Hw.next_n_line 1) p config model in
  let two = Simulator.run ~hw:(Hw.next_n_line 2) p config model in
  Alcotest.(check bool) "deeper prefetch, no more misses on streaming" true
    (two.Simulator.counts.Account.misses <= one.Simulator.counts.Account.misses)

let test_wrong_path_issues_both () =
  (* wrong-path prefetches both target and fall-through once the RPT
     has learned the branch *)
  let p =
    Dsl.compile ~name:"wp" [ Dsl.loop 20 [ Dsl.compute 2; Dsl.if_ ~p:0.5 [ Dsl.compute 5 ] [ Dsl.compute 4 ] ] ]
  in
  let rpt = Simulator.run ~hw:(Hw.target_rpt ~size:16 ~block_bytes:16) p config model in
  let wp = Simulator.run ~hw:(Hw.wrong_path ~size:16 ~block_bytes:16) p config model in
  Alcotest.(check bool) "wrong-path issues at least as many" true
    (wp.Simulator.hw_issued >= rpt.Simulator.hw_issued)

let test_locked_ignores_software_prefetch () =
  let p = Dsl.compile ~name:"lp" [ Dsl.compute 8 ] in
  let p', _ = Program.insert_prefetch p ~block:0 ~pos:0 ~target_uid:7 in
  let s = Simulator.run ~locked:[] p' config model in
  Alcotest.(check int) "no prefetch traffic under locking" 0
    s.Simulator.counts.Account.prefetch_dram_reads

let test_bernoulli_statistics () =
  let p =
    Dsl.compile ~name:"bern"
      [ Dsl.loop 400 [ Dsl.if_ ~p:0.25 [ Dsl.compute 3 ] [ Dsl.compute 1 ] ] ]
  in
  let s = Simulator.run ~seed:7 p config model in
  (* executed = 400*(cond) + taken*(3+jump) + not*(1) + latch... just
     check the mix lands between the all-taken and never-taken extremes *)
  let never = 400 * 2 + (400 * 1) + 1 in
  let always = 400 * 2 + (400 * 4) + 1 in
  Alcotest.(check bool) "within extremes" true
    (s.Simulator.executed > never && s.Simulator.executed < always)

let prop_hw_prefetch_never_increases_misses_on_straightline =
  QCheck2.Test.make ~name:"next-line never hurts pure streaming" ~count:50
    QCheck2.Gen.(int_range 20 300)
    (fun n ->
      let p = Dsl.compile ~name:"s" [ Dsl.compute n ] in
      let base = Simulator.run p config model in
      let s = Simulator.run ~hw:(Hw.next_line_always ()) p config model in
      s.Simulator.counts.Account.misses <= base.Simulator.counts.Account.misses)

let test_fifo_policy_runs () =
  let p = Ucp_workloads.Suite.find "crc" in
  let lru = Simulator.run p config model in
  let fifo = Simulator.run ~policy:Ucp_cache.Concrete.Fifo p config model in
  Alcotest.(check int) "same instruction stream" lru.Simulator.executed fifo.Simulator.executed;
  Alcotest.(check bool) "fifo not better than lru here" true
    (fifo.Simulator.counts.Account.misses >= lru.Simulator.counts.Account.misses)

(* ------------------------------------------------------------------ *)
(* branch oracle: the witness-replay hook overrides every conditional *)

let test_branch_oracle_forces_path () =
  (* a single conditional, no loop latch: a constant oracle picks one
     arm without ever consulting the seeded branch model *)
  let p =
    Dsl.compile ~name:"bo" [ Dsl.if_ ~p:0.5 [ Dsl.compute 9 ] [ Dsl.compute 1 ] ]
  in
  let forced decision =
    Simulator.run ~branch_oracle:(fun _block -> decision) p config model
  in
  let all_taken = forced true and none_taken = forced false in
  (* the then-branch is 9 instructions, the else-branch 1: forcing the
     oracle must change the instruction stream deterministically *)
  Alcotest.(check bool) "taken path is longer" true
    (all_taken.Simulator.executed > none_taken.Simulator.executed);
  (* the oracle overrides the seeded Bernoulli model entirely: any two
     seeds agree once the oracle decides *)
  let again = forced true in
  Alcotest.(check int) "oracle makes the run deterministic"
    all_taken.Simulator.executed again.Simulator.executed

let test_witness_replay_certifies () =
  (* the full replay check, on the simulator's own test config: the
     analysis witness drives the simulator and the bound holds, for
     each policy *)
  let p =
    Dsl.compile ~name:"wr"
      [ Dsl.compute 3; Dsl.loop 6 [ Dsl.if_ [ Dsl.compute 5 ] [ Dsl.compute 2 ] ] ]
  in
  List.iter
    (fun policy ->
      let w = Ucp_wcet.Wcet.compute ~with_may:true ~policy p config model in
      match Ucp_verify.replay_witness w with
      | Ok () -> ()
      | Error msg ->
        Alcotest.failf "%s: %s" (Ucp_policy.to_string policy) msg)
    [ Ucp_policy.Lru; Ucp_policy.Fifo; Ucp_policy.Plru ]

let prop_cycles_consistent =
  QCheck2.Test.make ~name:"cycle count >= executed instructions" ~count:150
    ~print:Ucp_testlib.print_program Ucp_testlib.gen_program (fun p ->
      let s = Simulator.run p config model in
      Simulator.acet s >= s.Simulator.executed)

let prop_counts_add_up =
  QCheck2.Test.make ~name:"hits + misses = fetches" ~count:150
    ~print:Ucp_testlib.print_program Ucp_testlib.gen_program (fun p ->
      let s = Simulator.run p config model in
      s.Simulator.counts.Account.hits + s.Simulator.counts.Account.misses
      = s.Simulator.counts.Account.fetches)

let () =
  Alcotest.run "ucp_sim"
    [
      ( "execution",
        [
          Alcotest.test_case "straightline counts" `Quick test_straightline_exact_counts;
          Alcotest.test_case "loop trips" `Quick test_loop_trip_counts;
          Alcotest.test_case "nested trips" `Quick test_nested_loop_trip_counts;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_bernoulli_paths;
          Alcotest.test_case "every-k model" `Quick test_every_model_alternates;
          Alcotest.test_case "max steps" `Quick test_max_steps_guard;
        ] );
      ( "prefetch port",
        [
          Alcotest.test_case "effective prefetch" `Quick
            test_effective_prefetch_hides_latency;
          Alcotest.test_case "late prefetch" `Quick test_late_prefetch_stalls;
          Alcotest.test_case "resident target" `Quick
            test_prefetch_of_resident_block_is_free;
        ] );
      ("locked", [ Alcotest.test_case "locked mode" `Quick test_locked_mode ]);
      ( "hardware",
        [
          Alcotest.test_case "next-line streaming" `Quick test_next_line_helps_streaming;
          Alcotest.test_case "tagged" `Quick test_next_line_tagged_issues_once_per_block;
          Alcotest.test_case "rpt" `Quick test_rpt_learns_branch_target;
          Alcotest.test_case "next-n deeper" `Quick test_next_n_line_deeper_coverage;
          Alcotest.test_case "wrong-path" `Quick test_wrong_path_issues_both;
          Alcotest.test_case "locked ignores sw prefetch" `Quick
            test_locked_ignores_software_prefetch;
          Alcotest.test_case "bernoulli statistics" `Quick test_bernoulli_statistics;
          QCheck_alcotest.to_alcotest prop_hw_prefetch_never_increases_misses_on_straightline;
        ] );
      ( "policy",
        [ Alcotest.test_case "fifo runs" `Quick test_fifo_policy_runs ] );
      ( "witness",
        [
          Alcotest.test_case "branch oracle" `Quick test_branch_oracle_forces_path;
          Alcotest.test_case "replay certifies" `Quick test_witness_replay_certifies;
        ] );
      ( "invariants",
        [
          QCheck_alcotest.to_alcotest prop_cycles_consistent;
          QCheck_alcotest.to_alcotest prop_counts_add_up;
        ] );
    ]
