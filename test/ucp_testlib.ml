(* Shared generators and helpers for the test suites. *)

module Dsl = Ucp_workloads.Dsl
module Config = Ucp_cache.Config
module Cacti = Ucp_energy.Cacti

(* A small timing/energy model with a short prefetch latency so tiny
   generated programs still have room for effective prefetches. *)
let tiny_model =
  {
    Cacti.read_pj = 5.0;
    fill_pj = 8.0;
    leak_pj_per_cycle = 2.0;
    dram_read_pj = 100.0;
    dram_leak_pj_per_cycle = 10.0;
    hit_cycles = 1;
    miss_penalty = 6;
    prefetch_latency = 3;
  }

(* ------------------------------------------------------------------ *)
(* Random structured programs via the DSL.  Sizes are kept small so
   property tests stay fast; the generator exercises sequences,
   conditionals, loops (bounded), and far regions. *)

let gen_stmts =
  let open QCheck2.Gen in
  let compute = map (fun n -> Dsl.compute (1 + n)) (int_bound 12) in
  let rec stmts depth budget =
    if budget <= 0 then return []
    else
      let* len = int_range 1 3 in
      let* items = list_repeat len (stmt depth (budget / len)) in
      return items
  and stmt depth budget =
    if depth = 0 || budget <= 1 then compute
    else
      frequency
        [
          (4, compute);
          ( 2,
            let* p = float_range 0.2 0.8 in
            let* t = stmts (depth - 1) (budget / 2) in
            let* e = stmts (depth - 1) (budget / 2) in
            return (Dsl.if_ ~p t e) );
          ( 2,
            let* trips = int_range 1 6 in
            let* slack = int_bound 2 in
            let* body = stmts (depth - 1) (budget / 2) in
            let body = if body = [] then [ Dsl.compute 1 ] else body in
            return (Dsl.loop ~bound:(trips + slack) trips body) );
          ( 1,
            let* body = stmts (depth - 1) (budget / 2) in
            let body = if body = [] then [ Dsl.compute 2 ] else body in
            return (Dsl.Far body) );
        ]
  in
  let open QCheck2.Gen in
  let* depth = int_range 1 3 in
  let* budget = int_range 4 24 in
  let* body = stmts depth budget in
  return (if body = [] then [ Dsl.compute 3 ] else body)

let gen_program =
  QCheck2.Gen.map (fun stmts -> Dsl.compile ~name:"gen" stmts) gen_stmts

let gen_config =
  let open QCheck2.Gen in
  let* assoc = oneofl [ 1; 2; 4 ] in
  let* block_bytes = oneofl [ 8; 16; 32 ] in
  let* sets_log = int_range 0 4 in
  let capacity = assoc * block_bytes * (1 lsl sets_log) in
  return (Config.make ~assoc ~block_bytes ~capacity)

let gen_access_sequence =
  (* memory-block ids in a small universe to force conflicts *)
  QCheck2.Gen.(list_size (int_range 1 60) (int_bound 12))

(* Pretty-printers for counterexample reporting *)
let print_program p = Format.asprintf "%a" Ucp_isa.Program.pp p
let print_config c = Config.id c

(* Substring check for asserting on error/exception messages. *)
let contains ~substring s =
  let n = String.length substring and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = substring || go (i + 1)) in
  n = 0 || go 0
