(* Unit and property tests for Ucp_util: deterministic RNG, statistics,
   table rendering, cooperative deadlines, LRU map, retry backoff,
   CRC-32. *)

module Rng = Ucp_util.Rng
module Stats = Ucp_util.Stats
module Table = Ucp_util.Table
module Deadline = Ucp_util.Deadline
module Lru = Ucp_util.Lru
module Backoff = Ucp_util.Backoff
module Crc32 = Ucp_util.Crc32

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true
    (Rng.next_int64 a <> Rng.next_int64 b)

let test_rng_int_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_rng_int_rejects_bad_bound () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_float_range () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let x = Rng.float rng 2.5 in
    Alcotest.(check bool) "in range" true (x >= 0.0 && x < 2.5)
  done

let test_rng_copy_independent () =
  let a = Rng.create 9 in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next_int64 a)
    (Rng.next_int64 b)

let test_rng_split () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  (* both remain usable and produce different streams *)
  Alcotest.(check bool) "split streams differ" true
    (Rng.next_int64 a <> Rng.next_int64 b)

let test_rng_int_unbiased_frequency () =
  (* rejection sampling: every residue of a small bound is equally
     likely; with 30_000 draws over bound 3 each bucket expects 10_000,
     so +-6% is > 10 sigma slack *)
  let rng = Rng.create 13 in
  let counts = Array.make 3 0 in
  let n = 30_000 in
  for _ = 1 to n do
    let x = Rng.int rng 3 in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "bucket near n/3" true (c > 9_400 && c < 10_600))
    counts

let test_rng_int_bound_one () =
  let rng = Rng.create 17 in
  for _ = 1 to 100 do
    Alcotest.(check int) "bound 1 is always 0" 0 (Rng.int rng 1)
  done

let test_rng_bernoulli_frequency () =
  let rng = Rng.create 21 in
  let hits = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "frequency near 0.3" true (freq > 0.27 && freq < 0.33)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_mean () = check_float "mean" 2.5 (Stats.mean [ 1.0; 2.0; 3.0; 4.0 ])
let test_mean_empty () = Alcotest.(check bool) "nan" true (Float.is_nan (Stats.mean []))

let test_geomean () = check_float "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ])

let test_geomean_rejects_nonpositive () =
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Stats.geomean: nonpositive sample") (fun () ->
      ignore (Stats.geomean [ 1.0; 0.0 ]))

let test_stddev () =
  check_float "stddev of {2,4}" 1.0 (Stats.stddev [ 2.0; 4.0 ]);
  check_float "stddev of alternating" 1.0 (Stats.stddev [ 1.0; 3.0; 1.0; 3.0 ]);
  check_float "stddev of constant" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ])

let test_percentile () =
  let xs = [ 5.0; 1.0; 3.0; 2.0; 4.0 ] in
  check_float "median" 3.0 (Stats.percentile 50.0 xs);
  check_float "min" 1.0 (Stats.percentile 0.0 xs);
  check_float "max" 5.0 (Stats.percentile 100.0 xs)

(* pin the documented nearest-rank behavior at the edges *)
let test_percentile_singleton () =
  List.iter
    (fun p -> check_float "singleton" 7.0 (Stats.percentile p [ 7.0 ]))
    [ 0.0; 1.0; 50.0; 99.0; 100.0 ]

let test_percentile_no_interpolation () =
  (* even length: the median is the lower middle sample, not 2.5 *)
  let xs = [ 1.0; 2.0; 3.0; 4.0 ] in
  check_float "lower middle" 2.0 (Stats.percentile 50.0 xs);
  (* nearest rank: any positive p maps to a sample, never between *)
  check_float "p=10 is min" 1.0 (Stats.percentile 10.0 xs);
  check_float "p=75 is 3rd" 3.0 (Stats.percentile 75.0 xs);
  check_float "p=76 is 4th" 4.0 (Stats.percentile 76.0 xs)

let test_percentile_empty () =
  Alcotest.(check bool) "nan" true (Float.is_nan (Stats.percentile 50.0 []))

(* pin the documented population (not sample) deviation *)
let test_stddev_population () =
  check_float "population of {1,2,3,4}"
    (sqrt 1.25) (* sample deviation would be sqrt (5/3) *)
    (Stats.stddev [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "singleton" 0.0 (Stats.stddev [ 42.0 ]);
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (Stats.stddev []))

let test_fraction_below () =
  check_float "fraction" 0.4 (Stats.fraction_below 3.0 [ 1.0; 2.0; 3.0; 4.0; 5.0 ])

let test_summary () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check int) "n" 4 s.Stats.n;
  check_float "min" 1.0 s.Stats.min;
  check_float "max" 4.0 s.Stats.max;
  check_float "mean" 2.5 s.Stats.mean

let prop_mean_bounds =
  QCheck2.Test.make ~name:"mean between min and max" ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (float_range (-100.) 100.))
    (fun xs ->
      let m = Stats.mean xs in
      m >= Stats.minimum xs -. 1e-9 && m <= Stats.maximum xs +. 1e-9)

let prop_geomean_le_mean =
  QCheck2.Test.make ~name:"geometric mean <= arithmetic mean" ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (float_range 0.001 100.))
    (fun xs -> Stats.geomean xs <= Stats.mean xs +. 1e-9)

let prop_percentile_monotone =
  QCheck2.Test.make ~name:"percentiles are monotone" ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (float_range (-50.) 50.))
    (fun xs ->
      Stats.percentile 25.0 xs <= Stats.percentile 50.0 xs
      && Stats.percentile 50.0 xs <= Stats.percentile 75.0 xs)

(* ------------------------------------------------------------------ *)
(* Table *)

let test_table_render () =
  let t = Table.create [ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333"; "4" ];
  let s = Table.render t in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0 && String.sub s 0 1 = "a");
  Alcotest.(check bool) "contains data" true
    (String.length (String.concat "" (String.split_on_char '3' s))
    < String.length s)

let test_table_ragged_rows () =
  let t = Table.create [ "a"; "b"; "c" ] in
  Table.add_row t [ "1" ];
  Table.add_row t [ "1"; "2"; "3"; "4" ];
  (* must not raise *)
  ignore (Table.render t)

let test_cells () =
  Alcotest.(check string) "pct" "11.2%" (Table.cell_pct 0.112);
  Alcotest.(check string) "float" "0.5000" (Table.cell_f 0.5)

(* ------------------------------------------------------------------ *)
(* Deadline *)

let test_deadline_unexpired () =
  let d = Deadline.after 60.0 in
  Alcotest.(check bool) "not expired" false (Deadline.expired d);
  Alcotest.(check bool) "remaining positive" true (Deadline.remaining d > 0.0);
  (* neither form raises while the deadline is in the future *)
  Deadline.check (Some d);
  Deadline.check None

let test_deadline_expiry () =
  let d = Deadline.after 0.002 in
  Unix.sleepf 0.01;
  Alcotest.(check bool) "expired" true (Deadline.expired d);
  Alcotest.(check bool) "remaining negative" true (Deadline.remaining d < 0.0);
  Alcotest.check_raises "check raises" Deadline.Deadline_exceeded (fun () ->
      Deadline.check (Some d))

let test_deadline_rejects_bad_secs () =
  List.iter
    (fun secs ->
      Alcotest.(check bool)
        (Printf.sprintf "after %f rejected" secs)
        true
        (try
           ignore (Deadline.after secs);
           false
         with Invalid_argument _ -> true))
    [ 0.0; -1.0; Float.nan; Float.infinity ]

(* ------------------------------------------------------------------ *)
(* Lru *)

let test_lru_basic () =
  let m = Lru.create ~capacity:2 in
  Lru.add m "a" 1;
  Lru.add m "b" 2;
  Alcotest.(check (option int)) "find a" (Some 1) (Lru.find m "a");
  (* a is now MRU; adding c evicts b *)
  Lru.add m "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Lru.find m "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Lru.find m "a");
  Alcotest.(check int) "evictions" 1 (Lru.evictions m);
  Alcotest.(check int) "length" 2 (Lru.length m)

let test_lru_zero_capacity () =
  let m = Lru.create ~capacity:0 in
  Lru.add m "a" 1;
  Alcotest.(check (option int)) "disabled cache misses" None (Lru.find m "a");
  Alcotest.(check int) "empty" 0 (Lru.length m)

let test_lru_rejects_negative () =
  Alcotest.check_raises "capacity -1"
    (Invalid_argument "Lru.create: capacity must be non-negative") (fun () ->
      ignore (Lru.create ~capacity:(-1)))

let test_lru_peek_does_not_promote () =
  let m = Lru.create ~capacity:2 in
  Lru.add m "a" 1;
  Lru.add m "b" 2;
  Alcotest.(check (option int)) "peek a" (Some 1) (Lru.peek m "a");
  (* a was NOT promoted, so it is still the LRU entry *)
  Lru.add m "c" 3;
  Alcotest.(check bool) "a evicted" false (Lru.mem m "a");
  Alcotest.(check bool) "b kept" true (Lru.mem m "b")

(* executable naive model: an assoc list in MRU-first order, trimmed to
   capacity — the qcheck oracle for the intrusive-list implementation *)
module Model = struct
  type t = { cap : int; mutable entries : (int * int) list }

  let create cap = { cap; entries = [] }

  let find m k =
    match List.assoc_opt k m.entries with
    | None -> None
    | Some v ->
      m.entries <- (k, v) :: List.remove_assoc k m.entries;
      Some v

  let add m k v =
    if m.cap > 0 then begin
      let without = List.remove_assoc k m.entries in
      let trimmed =
        if List.mem_assoc k m.entries || List.length without < m.cap then without
        else List.filteri (fun i _ -> i < m.cap - 1) without
      in
      m.entries <- (k, v) :: trimmed
    end

  let remove m k = m.entries <- List.remove_assoc k m.entries
end

type lru_op = Add of int * int | Find of int | Remove of int

let lru_op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun k v -> Add (k, v)) (int_bound 12) (int_bound 1000));
        (3, map (fun k -> Find k) (int_bound 12));
        (1, map (fun k -> Remove k) (int_bound 12));
      ])

let lru_op_print = function
  | Add (k, v) -> Printf.sprintf "add %d %d" k v
  | Find k -> Printf.sprintf "find %d" k
  | Remove k -> Printf.sprintf "remove %d" k

let prop_lru_matches_model =
  QCheck.Test.make ~count:500 ~name:"lru agrees with naive model"
    QCheck.(
      pair (int_range 0 6)
        (list_of_size Gen.(int_range 0 60) (make ~print:lru_op_print lru_op_gen)))
    (fun (cap, ops) ->
      let m = Lru.create ~capacity:cap in
      let model = Model.create cap in
      List.iter
        (fun op ->
          match op with
          | Add (k, v) ->
            Lru.add m k v;
            Model.add model k v
          | Find k ->
            if Lru.find m k <> Model.find model k then
              QCheck.Test.fail_report "find disagrees with model"
          | Remove k ->
            Lru.remove m k;
            Model.remove model k)
        ops;
      (* full-state check: same entries in the same recency order *)
      Lru.to_list m = model.Model.entries
      && Lru.length m = List.length model.Model.entries
      && Lru.length m <= max cap 0)

(* ------------------------------------------------------------------ *)
(* Backoff *)

let test_backoff_deterministic () =
  let mk () = Backoff.create ~base:0.05 ~cap:5.0 (Rng.create 42) in
  let a = mk () and b = mk () in
  for _ = 1 to 50 do
    check_float "same schedule" (Backoff.next a) (Backoff.next b)
  done;
  Alcotest.(check int) "attempts counted" 50 (Backoff.attempts a)

let test_backoff_bounds () =
  let b = Backoff.create ~base:0.1 ~cap:2.0 (Rng.create 7) in
  let prev = ref 0.1 in
  for _ = 1 to 200 do
    let d = Backoff.next b in
    Alcotest.(check bool) "within [base, cap]" true (d >= 0.1 && d <= 2.0);
    (* decorrelated jitter: next delay < 3 * previous (or capped) *)
    Alcotest.(check bool) "decorrelated" true (d <= Float.max (3.0 *. !prev) 0.1 +. 1e-9);
    prev := d
  done

let test_backoff_reset () =
  let rng = Rng.create 9 in
  let b = Backoff.create ~base:0.05 ~cap:5.0 rng in
  for _ = 1 to 10 do
    ignore (Backoff.next b)
  done;
  Backoff.reset b;
  Alcotest.(check int) "attempts reset" 0 (Backoff.attempts b);
  let d = Backoff.next b in
  (* first post-reset delay is drawn from the fresh interval [base, 3*base) *)
  Alcotest.(check bool) "fresh interval" true (d >= 0.05 && d < 0.15)

let test_backoff_rejects_bad_params () =
  List.iter
    (fun (base, cap) ->
      Alcotest.(check bool)
        (Printf.sprintf "base %g cap %g rejected" base cap)
        true
        (try
           ignore (Backoff.create ~base ~cap (Rng.create 1));
           false
         with Invalid_argument _ -> true))
    [ (0.0, 1.0); (-1.0, 1.0); (2.0, 1.0); (Float.nan, 1.0); (0.1, Float.infinity) ]

(* ------------------------------------------------------------------ *)
(* Crc32 *)

let test_crc32_vector () =
  (* the standard CRC-32 check value *)
  Alcotest.(check string) "123456789" "cbf43926"
    (Crc32.to_hex (Crc32.string "123456789"));
  Alcotest.(check string) "empty" "00000000" (Crc32.to_hex (Crc32.string ""))

let prop_crc32_update_concat =
  QCheck.Test.make ~count:300 ~name:"crc32 update composes over concatenation"
    QCheck.(pair printable_string printable_string)
    (fun (a, b) -> Crc32.update (Crc32.string a) b = Crc32.string (a ^ b))

let prop_crc32_detects_flip =
  QCheck.Test.make ~count:300 ~name:"crc32 detects any single bit flip"
    QCheck.(pair (string_of_size Gen.(int_range 1 64)) (pair small_nat small_nat))
    (fun (s, (i, bit)) ->
      let i = i mod String.length s and bit = bit mod 8 in
      let b = Bytes.of_string s in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
      Crc32.string (Bytes.to_string b) <> Crc32.string s)

let () =
  Alcotest.run "ucp_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int bad bound" `Quick test_rng_int_rejects_bad_bound;
          Alcotest.test_case "int unbiased" `Quick test_rng_int_unbiased_frequency;
          Alcotest.test_case "int bound one" `Quick test_rng_int_bound_one;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "copy" `Quick test_rng_copy_independent;
          Alcotest.test_case "split" `Quick test_rng_split;
          Alcotest.test_case "bernoulli" `Quick test_rng_bernoulli_frequency;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "mean empty" `Quick test_mean_empty;
          Alcotest.test_case "geomean" `Quick test_geomean;
          Alcotest.test_case "geomean nonpositive" `Quick test_geomean_rejects_nonpositive;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "percentile singleton" `Quick test_percentile_singleton;
          Alcotest.test_case "percentile nearest-rank" `Quick test_percentile_no_interpolation;
          Alcotest.test_case "percentile empty" `Quick test_percentile_empty;
          Alcotest.test_case "stddev population" `Quick test_stddev_population;
          Alcotest.test_case "fraction below" `Quick test_fraction_below;
          Alcotest.test_case "summary" `Quick test_summary;
          QCheck_alcotest.to_alcotest prop_mean_bounds;
          QCheck_alcotest.to_alcotest prop_geomean_le_mean;
          QCheck_alcotest.to_alcotest prop_percentile_monotone;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "ragged rows" `Quick test_table_ragged_rows;
          Alcotest.test_case "cells" `Quick test_cells;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "unexpired" `Quick test_deadline_unexpired;
          Alcotest.test_case "expiry" `Quick test_deadline_expiry;
          Alcotest.test_case "rejects bad seconds" `Quick test_deadline_rejects_bad_secs;
        ] );
      ( "lru",
        [
          Alcotest.test_case "basic eviction" `Quick test_lru_basic;
          Alcotest.test_case "zero capacity" `Quick test_lru_zero_capacity;
          Alcotest.test_case "rejects negative" `Quick test_lru_rejects_negative;
          Alcotest.test_case "peek does not promote" `Quick test_lru_peek_does_not_promote;
          QCheck_alcotest.to_alcotest prop_lru_matches_model;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "deterministic in the seed" `Quick test_backoff_deterministic;
          Alcotest.test_case "bounds" `Quick test_backoff_bounds;
          Alcotest.test_case "reset" `Quick test_backoff_reset;
          Alcotest.test_case "rejects bad params" `Quick test_backoff_rejects_bad_params;
        ] );
      ( "crc32",
        [
          Alcotest.test_case "check vector" `Quick test_crc32_vector;
          QCheck_alcotest.to_alcotest prop_crc32_update_concat;
          QCheck_alcotest.to_alcotest prop_crc32_detects_flip;
        ] );
    ]
