(* Tests for Ucp_obs: span nesting and per-domain buffers, the metrics
   registry under multi-domain contention, trace-file round-trip through
   the strict JSON parser, and the zero-output guarantee when disabled.

   Trace and Metrics are process-global, so every test puts the flags
   back the way it found them (off) and metrics tests reset the
   registry before counting. *)

module Trace = Ucp_obs.Trace
module Metrics = Ucp_obs.Metrics
module Log = Ucp_obs.Log
module Ctx = Ucp_obs.Ctx
module Expo = Ucp_obs.Expo

let with_tmp_file f =
  let path = Filename.temp_file "ucp_obs_test" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* ------------------------------------------------------------------ *)
(* tracing *)

let test_span_nesting () =
  Trace.start ();
  let r =
    Trace.with_span ~name:"outer" (fun () ->
        Trace.with_span ~name:"mid" (fun () ->
            Trace.with_span ~name:"leaf" (fun () -> 41))
        + 1)
  in
  Trace.stop ();
  Alcotest.(check int) "body result" 42 r;
  let spans = Trace.spans () in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  let by_name n = List.find (fun s -> s.Trace.span_name = n) spans in
  let outer = by_name "outer" and mid = by_name "mid" and leaf = by_name "leaf" in
  Alcotest.(check int) "outer depth" 0 outer.Trace.depth;
  Alcotest.(check int) "mid depth" 1 mid.Trace.depth;
  Alcotest.(check int) "leaf depth" 2 leaf.Trace.depth;
  Alcotest.(check bool) "same domain" true
    (outer.Trace.tid = mid.Trace.tid && mid.Trace.tid = leaf.Trace.tid);
  (* children are contained in their parents, timewise *)
  let inside child parent =
    child.Trace.ts_us >= parent.Trace.ts_us
    && child.Trace.ts_us +. child.Trace.dur_us
       <= parent.Trace.ts_us +. parent.Trace.dur_us +. 1.0 (* clock slack *)
  in
  Alcotest.(check bool) "mid inside outer" true (inside mid outer);
  Alcotest.(check bool) "leaf inside mid" true (inside leaf mid)

let test_span_recorded_on_raise () =
  Trace.start ();
  (try
     Trace.with_span ~name:"boom" (fun () -> failwith "boom")
   with Failure _ -> ());
  Trace.stop ();
  Alcotest.(check (list string)) "span survives the raise" [ "boom" ]
    (List.map (fun s -> s.Trace.span_name) (Trace.spans ()))

let test_set_arg () =
  Trace.start ();
  Trace.with_span ~name:"work" ~args:[ ("static", Trace.Str "yes") ] (fun () ->
      Trace.set_arg "pivots" (Trace.Int 1);
      (* overwrite must replace, not duplicate *)
      Trace.set_arg "pivots" (Trace.Int 17));
  Trace.stop ();
  match Trace.spans () with
  | [ s ] ->
    Alcotest.(check int) "two args" 2 (List.length s.Trace.args);
    Alcotest.(check bool) "pivots overwritten" true
      (List.assoc "pivots" s.Trace.args = Trace.Int 17);
    Alcotest.(check bool) "static arg kept" true
      (List.assoc "static" s.Trace.args = Trace.Str "yes")
  | spans -> Alcotest.failf "expected exactly one span, got %d" (List.length spans)

let test_spans_across_domains () =
  let domains = 4 and per_domain = 25 in
  Trace.start ();
  let ds =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              Trace.with_span ~name:"outer"
                ~args:[ ("domain", Trace.Int d) ]
                (fun () -> Trace.with_span ~name:"inner" (fun () -> ignore i))
            done))
  in
  List.iter Domain.join ds;
  Trace.stop ();
  let spans = Trace.spans () in
  Alcotest.(check int) "span count" (domains * per_domain * 2) (List.length spans);
  let tids =
    List.sort_uniq compare (List.map (fun s -> s.Trace.tid) spans)
  in
  Alcotest.(check int) "one tid per domain" domains (List.length tids);
  (* nesting holds within each domain: every inner span is depth 1 *)
  List.iter
    (fun s ->
      Alcotest.(check int)
        (s.Trace.span_name ^ " depth")
        (if s.Trace.span_name = "inner" then 1 else 0)
        s.Trace.depth)
    spans;
  List.iter (fun s -> Alcotest.(check bool) "dur >= 0" true (s.Trace.dur_us >= 0.0)) spans

let test_trace_round_trip () =
  Trace.start ();
  Trace.with_span ~name:"alpha"
    ~args:[ ("n", Trace.Int 42); ("x", Trace.Float 2.5); ("s", Trace.Str "he\"y\n") ]
    (fun () -> Trace.with_span ~name:"beta" (fun () -> ()));
  Trace.stop ();
  let written = Trace.spans () in
  with_tmp_file (fun path ->
      Trace.export path;
      match Trace.parse_file path with
      | Error msg -> Alcotest.failf "parse_file: %s" msg
      | Ok parsed ->
        Alcotest.(check int) "span count" (List.length written) (List.length parsed);
        List.iter2
          (fun (w : Trace.span) (p : Trace.span) ->
            Alcotest.(check string) "name" w.Trace.span_name p.Trace.span_name;
            Alcotest.(check int) "tid" w.Trace.tid p.Trace.tid;
            Alcotest.(check (float 1e-3)) "ts" w.Trace.ts_us p.Trace.ts_us;
            Alcotest.(check (float 1e-3)) "dur" w.Trace.dur_us p.Trace.dur_us;
            Alcotest.(check bool) "args" true (w.Trace.args = p.Trace.args))
          written parsed)

let test_trace_parse_rejects_garbage () =
  with_tmp_file (fun path ->
      let oc = open_out path in
      output_string oc "{\"traceEvents\": [{\"name\": \"x\"}]}";
      close_out oc;
      match Trace.parse_file path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "accepted an event with no ph/ts/dur/tid");
  with_tmp_file (fun path ->
      let oc = open_out path in
      output_string oc "{\"events\": []}";
      close_out oc;
      match Trace.parse_file path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "accepted a file without traceEvents")

(* ------------------------------------------------------------------ *)
(* trace contexts *)

let test_ctx_determinism_and_hex () =
  let a = Ctx.derive ~seed:42 ~index:0 in
  let a' = Ctx.derive ~seed:42 ~index:0 in
  Alcotest.(check string) "derive is deterministic" (Ctx.trace_hex a)
    (Ctx.trace_hex a');
  let b = Ctx.derive ~seed:42 ~index:1 in
  Alcotest.(check bool) "indices give distinct traces" true
    (Ctx.trace_hex a <> Ctx.trace_hex b);
  let h = Ctx.trace_hex a in
  Alcotest.(check int) "16 hex chars" 16 (String.length h);
  (match Ctx.of_hex h with
  | Some id -> Alcotest.(check string) "hex round-trip" h (Ctx.to_hex id)
  | None -> Alcotest.fail "own hex does not parse back");
  (* ids with the top bit set (negative as int64) must round-trip too *)
  (match Ctx.of_hex "ffeeddccbbaa9988" with
  | Some id ->
    Alcotest.(check string) "top-bit id round-trips" "ffeeddccbbaa9988"
      (Ctx.to_hex id)
  | None -> Alcotest.fail "top-bit hex rejected");
  List.iter
    (fun s ->
      match Ctx.of_hex s with
      | None -> ()
      | Some _ -> Alcotest.failf "accepted malformed trace id %S" s)
    [
      "";
      "0123456789abcde" (* 15 chars *);
      "0123456789abcdef0" (* 17 chars *);
      "0123456789ABCDEF" (* uppercase *);
      "0123456789abcdeg" (* non-hex *);
      " 123456789abcdef" (* space *);
    ]

let test_ctx_ambient_restore () =
  Alcotest.(check bool) "no ambient ctx at rest" true (Ctx.current () = None);
  let outer = Ctx.derive ~seed:1 ~index:0 in
  let inner = Ctx.child outer in
  Ctx.with_ctx outer (fun () ->
      (match Ctx.current () with
      | Some c ->
        Alcotest.(check string) "outer visible" (Ctx.trace_hex outer)
          (Ctx.trace_hex c)
      | None -> Alcotest.fail "ambient ctx lost");
      Ctx.with_ctx inner (fun () ->
          match Ctx.current () with
          | Some c ->
            Alcotest.(check string) "child keeps the trace id"
              (Ctx.trace_hex outer) (Ctx.trace_hex c);
            Alcotest.(check string) "child gets its own span id"
              (Ctx.span_hex inner) (Ctx.span_hex c)
          | None -> Alcotest.fail "ambient ctx lost in child");
      match Ctx.current () with
      | Some c ->
        Alcotest.(check string) "outer restored after child"
          (Ctx.span_hex outer) (Ctx.span_hex c)
      | None -> Alcotest.fail "ambient ctx not restored");
  Alcotest.(check bool) "cleared after with_ctx" true (Ctx.current () = None);
  (try Ctx.with_ctx outer (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "cleared after a raise" true (Ctx.current () = None)

let test_span_carries_trace_id () =
  Trace.start ();
  let c = Ctx.derive ~seed:9 ~index:0 in
  Ctx.with_ctx c (fun () -> Trace.with_span ~name:"tagged" (fun () -> ()));
  Trace.with_span ~name:"untagged" (fun () -> ());
  Trace.stop ();
  let spans = Trace.spans () in
  let tagged = List.find (fun s -> s.Trace.span_name = "tagged") spans in
  let untagged = List.find (fun s -> s.Trace.span_name = "untagged") spans in
  Alcotest.(check bool) "ambient trace id stamped on the span" true
    (List.assoc_opt "trace_id" tagged.Trace.args
    = Some (Trace.Str (Ctx.trace_hex c)));
  Alcotest.(check bool) "no ambient ctx, no trace_id arg" true
    (List.assoc_opt "trace_id" untagged.Trace.args = None)

let test_trace_ring_bounded () =
  let saved = Trace.capacity () in
  Fun.protect
    ~finally:(fun () -> Trace.set_capacity saved)
    (fun () ->
      Trace.set_capacity 8;
      Trace.start ();
      for i = 0 to 19 do
        Trace.with_span ~name:(Printf.sprintf "s%d" i) (fun () -> ())
      done;
      Trace.stop ();
      let spans = Trace.spans () in
      Alcotest.(check int) "ring keeps exactly capacity spans" 8
        (List.length spans);
      Alcotest.(check int) "overwrites counted as drops" 12 (Trace.dropped ());
      Alcotest.(check (list string)) "newest spans survive, oldest-first"
        (List.init 8 (fun i -> Printf.sprintf "s%d" (i + 12)))
        (List.map (fun s -> s.Trace.span_name) spans);
      (* a fresh start resets both the ring and the drop count *)
      Trace.start ();
      Trace.stop ();
      Alcotest.(check int) "drop count reset" 0 (Trace.dropped ());
      Alcotest.(check int) "ring reset" 0 (List.length (Trace.spans ())))

(* ------------------------------------------------------------------ *)
(* metrics *)

let test_metrics_contention () =
  let domains = 4 and iters = 10_000 in
  Metrics.enable ();
  Metrics.reset ();
  let c = Metrics.counter "obs_test_total" in
  let fc = Metrics.fcounter "obs_test_fsum" in
  let h = Metrics.histogram "obs_test_hist" ~buckets:[| 1.0; 2.0; 3.0 |] in
  let ds =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            for i = 1 to iters do
              Metrics.incr c;
              Metrics.fadd fc 1.0;
              (* observations cycle the three finite buckets plus the
                 overflow bucket, [iters/4] each *)
              Metrics.observe h (float_of_int (1 + (i mod 4)))
            done))
  in
  List.iter Domain.join ds;
  Metrics.disable ();
  let expected = domains * iters in
  (match Metrics.find "obs_test_total" with
  | Some (Metrics.Counter n) -> Alcotest.(check int) "exact counter" expected n
  | _ -> Alcotest.fail "counter missing");
  (match Metrics.find "obs_test_fsum" with
  | Some (Metrics.Fcounter x) ->
    (* sums of 1.0 up to 40000 are exactly representable *)
    Alcotest.(check (float 0.0)) "exact fcounter" (float_of_int expected) x
  | _ -> Alcotest.fail "fcounter missing");
  match Metrics.find "obs_test_hist" with
  | Some (Metrics.Histogram { counts; sum; count; _ }) ->
    Alcotest.(check int) "observation count" expected count;
    Alcotest.(check (array int)) "no torn buckets"
      (Array.make 4 (expected / 4))
      counts;
    Alcotest.(check (float 1e-6)) "sum"
      (float_of_int (domains * iters / 4 * (1 + 2 + 3 + 4)))
      sum
  | _ -> Alcotest.fail "histogram missing"

let test_metrics_kind_clash () =
  Metrics.reset ();
  ignore (Metrics.counter "obs_test_kind");
  Alcotest.check_raises "re-register as gauge"
    (Invalid_argument "Metrics: obs_test_kind is already registered as a counter")
    (fun () -> ignore (Metrics.gauge "obs_test_kind"))

let test_metrics_idempotent_registration () =
  Metrics.enable ();
  Metrics.reset ();
  let a = Metrics.counter "obs_test_same" in
  let b = Metrics.counter "obs_test_same" in
  Metrics.add a 2;
  Metrics.add b 3;
  Metrics.disable ();
  match Metrics.find "obs_test_same" with
  | Some (Metrics.Counter 5) -> ()
  | v ->
    Alcotest.failf "expected one shared counter at 5, got %s"
      (match v with Some (Metrics.Counter n) -> string_of_int n | _ -> "none")

let test_histogram_bucket_edges () =
  Metrics.enable ();
  Metrics.reset ();
  let h = Metrics.histogram "obs_test_edges" ~buckets:[| 0.5; 1.0; 2.0 |] in
  (* inclusive upper bounds, Prometheus [le] semantics: an observation
     at exactly a bound lands in that bound's bucket, anything past the
     last bound lands in the overflow bucket *)
  List.iter (Metrics.observe h) [ 0.5; 1.0; 2.0; 0.49; 2.00001; 1000.0 ];
  Metrics.disable ();
  match Metrics.find "obs_test_edges" with
  | Some (Metrics.Histogram { bounds; counts; count; _ }) ->
    Alcotest.(check int) "observation count" 6 count;
    Alcotest.(check (array int)) "per-bucket counts" [| 2; 1; 1; 2 |] counts;
    Alcotest.(check (array (float 0.0))) "bounds kept" [| 0.5; 1.0; 2.0 |] bounds
  | _ -> Alcotest.fail "histogram missing"

(* ------------------------------------------------------------------ *)
(* Prometheus exposition *)

let golden_dump =
  [
    ("requests_total", Metrics.Counter 3);
    ("queue_depth", Metrics.Gauge 2.0);
    ( "serve_latency_s{tier=\"cache\"}",
      Metrics.Histogram
        { bounds = [| 0.5; 1.0 |]; counts = [| 2; 1; 1 |]; sum = 2.75; count = 4 } );
    ( "serve_latency_s{tier=\"cold\"}",
      Metrics.Histogram
        { bounds = [| 0.5; 1.0 |]; counts = [| 0; 0; 0 |]; sum = 0.0; count = 0 } );
  ]

let golden_text =
  String.concat "\n"
    [
      "# TYPE requests_total counter";
      "requests_total 3";
      "# TYPE queue_depth gauge";
      "queue_depth 2";
      "# TYPE serve_latency_s histogram";
      "serve_latency_s_bucket{tier=\"cache\",le=\"0.5\"} 2";
      "serve_latency_s_bucket{tier=\"cache\",le=\"1\"} 3";
      "serve_latency_s_bucket{tier=\"cache\",le=\"+Inf\"} 4";
      "serve_latency_s_sum{tier=\"cache\"} 2.75";
      "serve_latency_s_count{tier=\"cache\"} 4";
      "serve_latency_s_bucket{tier=\"cold\",le=\"0.5\"} 0";
      "serve_latency_s_bucket{tier=\"cold\",le=\"1\"} 0";
      "serve_latency_s_bucket{tier=\"cold\",le=\"+Inf\"} 0";
      "serve_latency_s_sum{tier=\"cold\"} 0";
      "serve_latency_s_count{tier=\"cold\"} 0";
      "";
    ]

let test_expo_golden () =
  Alcotest.(check string) "byte-exact exposition" golden_text
    (Expo.render golden_dump)

let test_expo_parse_roundtrip () =
  match Expo.parse golden_text with
  | Error e -> Alcotest.fail ("golden text does not parse: " ^ e)
  | Ok samples -> (
    Alcotest.(check int) "sample count (TYPE lines skipped)" 12
      (List.length samples);
    match Expo.histograms samples with
    | [ cache; cold ] ->
      Alcotest.(check (list (pair string string)))
        "cache labels" [ ("tier", "cache") ] cache.Expo.h_labels;
      Alcotest.(check (array int)) "de-cumulated buckets" [| 2; 1; 1 |]
        cache.Expo.h_counts;
      Alcotest.(check (float 0.0)) "sum" 2.75 cache.Expo.h_sum;
      Alcotest.(check int) "count" 4 cache.Expo.h_count;
      Alcotest.(check int) "cold empty" 0 cold.Expo.h_count
    | hs -> Alcotest.failf "expected 2 histograms, got %d" (List.length hs))

let test_expo_quantile () =
  let bounds = [| 0.5; 1.0; 2.0 |] in
  let counts = [| 2; 5; 2; 1 |] in
  let q = Expo.quantile ~bounds ~counts in
  Alcotest.(check (float 0.0)) "p50 hits the second bucket" 1.0 (q 0.5);
  Alcotest.(check (float 0.0)) "p90 hits the third bucket" 2.0 (q 0.9);
  Alcotest.(check bool) "p100 lands in overflow" true (q 1.0 = Float.infinity);
  Alcotest.(check bool) "empty histogram is NaN" true
    (Float.is_nan (Expo.quantile ~bounds ~counts:[| 0; 0; 0; 0 |] 0.5))

(* ------------------------------------------------------------------ *)
(* zero output when disabled *)

let test_disabled_emits_nothing () =
  Trace.start ();
  Trace.stop ();
  (* both flags off: instrumented code must run and record nothing *)
  Alcotest.(check bool) "trace disabled" false (Trace.enabled ());
  Alcotest.(check bool) "metrics disabled" false (Metrics.enabled ());
  let r = Trace.with_span ~name:"ghost" (fun () -> 7) in
  Trace.set_arg "k" (Trace.Int 1);
  Alcotest.(check int) "body still runs" 7 r;
  Alcotest.(check int) "no spans recorded" 0 (List.length (Trace.spans ()));
  Metrics.reset ();
  let c = Metrics.counter "obs_test_ghost" in
  Metrics.add c 5;
  Metrics.incr c;
  (match Metrics.find "obs_test_ghost" with
  | Some (Metrics.Counter 0) -> ()
  | _ -> Alcotest.fail "disabled counter must stay at 0");
  let h = Metrics.histogram "obs_test_ghost_h" ~buckets:[| 1.0 |] in
  Metrics.observe h 0.5;
  match Metrics.find "obs_test_ghost_h" with
  | Some (Metrics.Histogram { count = 0; sum = 0.0; _ }) -> ()
  | _ -> Alcotest.fail "disabled histogram must stay empty"

let test_disabled_jsonl_unchanged () =
  (* the machine-readable summary only gains a "metrics" field when a
     dump is passed; an empty/absent dump leaves the line untouched *)
  let base =
    Ucp_core.Report.sweep_jsonl ~wall_s:1.0 ~jobs:1
      ~timings:(Ucp_core.Pipeline.fresh_timings ())
      []
  in
  let with_empty =
    Ucp_core.Report.sweep_jsonl ~wall_s:1.0 ~jobs:1
      ~timings:(Ucp_core.Pipeline.fresh_timings ())
      ~metrics:[] []
  in
  Alcotest.(check string) "empty dump adds nothing" base with_empty;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "no metrics field" false (contains base "\"metrics\"")

(* ------------------------------------------------------------------ *)
(* log levels *)

let test_log_levels () =
  let saved = Log.level () in
  Fun.protect
    ~finally:(fun () -> Log.set_level saved)
    (fun () ->
      Log.set_level Log.Debug;
      Alcotest.(check bool) "debug enables info" true (Log.enabled Log.Info);
      Log.set_level Log.Warn;
      Alcotest.(check bool) "warn disables info" false (Log.enabled Log.Info);
      Log.set_level Log.Quiet;
      Alcotest.(check bool) "quiet disables error" false (Log.enabled Log.Error));
  (match Log.level_of_string "info" with
  | Ok Log.Info -> ()
  | _ -> Alcotest.fail "level_of_string info");
  match Log.level_of_string "loud" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a bogus level"

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "recorded on raise" `Quick test_span_recorded_on_raise;
          Alcotest.test_case "set_arg" `Quick test_set_arg;
          Alcotest.test_case "across domains" `Quick test_spans_across_domains;
          Alcotest.test_case "round trip" `Quick test_trace_round_trip;
          Alcotest.test_case "parse rejects garbage" `Quick
            test_trace_parse_rejects_garbage;
        ] );
      ( "ctx",
        [
          Alcotest.test_case "determinism and hex round-trip" `Quick
            test_ctx_determinism_and_hex;
          Alcotest.test_case "ambient save/restore" `Quick
            test_ctx_ambient_restore;
          Alcotest.test_case "spans carry the ambient trace id" `Quick
            test_span_carries_trace_id;
          Alcotest.test_case "span ring is bounded" `Quick
            test_trace_ring_bounded;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "4-domain contention" `Quick test_metrics_contention;
          Alcotest.test_case "kind clash" `Quick test_metrics_kind_clash;
          Alcotest.test_case "idempotent registration" `Quick
            test_metrics_idempotent_registration;
          Alcotest.test_case "bucket edge semantics" `Quick
            test_histogram_bucket_edges;
        ] );
      ( "expo",
        [
          Alcotest.test_case "golden render" `Quick test_expo_golden;
          Alcotest.test_case "parse round-trip" `Quick test_expo_parse_roundtrip;
          Alcotest.test_case "nearest-rank quantiles" `Quick test_expo_quantile;
        ] );
      ( "disabled",
        [
          Alcotest.test_case "emits nothing" `Quick test_disabled_emits_nothing;
          Alcotest.test_case "jsonl unchanged" `Quick test_disabled_jsonl_unchanged;
        ] );
      ("log", [ Alcotest.test_case "levels" `Quick test_log_levels ]);
    ]
