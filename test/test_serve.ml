(* Tests for the analysis service: protocol framing/serialization
   (round-trip + fuzz), the self-healing result store, and the daemon
   itself run in-process on a temp socket and exercised through the
   retrying client. *)

module P = Ucp_serve.Protocol
module Store = Ucp_serve.Store
module Server = Ucp_serve.Server
module Client = Ucp_serve.Client
module Fault = Ucp_core.Fault

let with_faults faults f =
  List.iter (fun (id, mode) -> Fault.set id mode) faults;
  Fun.protect ~finally:Fault.clear f

let temp_dir prefix =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir d 0o755;
  d

let rm_rf dir =
  let rec walk p =
    if Sys.is_directory p then (
      Array.iter (fun n -> walk (Filename.concat p n)) (Sys.readdir p);
      Unix.rmdir p)
    else Sys.remove p
  in
  try walk dir with Sys_error _ | Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Protocol: framing                                                   *)
(* ------------------------------------------------------------------ *)

let test_frame_roundtrip () =
  let payloads = [ ""; "x"; "{\"v\":1}"; String.make 4096 'z'; "a\nb\nc" ] in
  List.iter
    (fun p ->
      match P.unframe (P.frame p) with
      | P.Frame (got, rest) ->
        Alcotest.(check string) "payload" p got;
        Alcotest.(check string) "no tail" "" rest
      | P.Incomplete -> Alcotest.fail "framed payload decoded Incomplete"
      | P.Malformed m -> Alcotest.fail ("framed payload Malformed: " ^ m))
    payloads;
  (* two frames back to back: the tail carries the second *)
  (match P.unframe (P.frame "one" ^ P.frame "two") with
  | P.Frame ("one", rest) -> (
    match P.unframe rest with
    | P.Frame ("two", "") -> ()
    | _ -> Alcotest.fail "second frame lost")
  | _ -> Alcotest.fail "first frame lost")

let test_frame_rejects_oversize () =
  Alcotest.check_raises "oversize frame"
    (Invalid_argument "Protocol.frame: payload exceeds max_frame") (fun () ->
      ignore (P.frame (String.make (P.max_frame + 1) 'a')))

let test_unframe_incomplete () =
  let f = P.frame "hello incremental decoder" in
  for i = 0 to String.length f - 1 do
    match P.unframe (String.sub f 0 i) with
    | P.Incomplete -> ()
    | P.Frame _ -> Alcotest.fail (Printf.sprintf "prefix %d decoded a frame" i)
    | P.Malformed m ->
      Alcotest.fail (Printf.sprintf "prefix %d Malformed: %s" i m)
  done

let test_unframe_malformed () =
  let malformed =
    [
      "hello\nworld\n" (* non-digit length line *);
      "-3\nabc\n" (* negative *);
      "12x\n" (* digits then junk *);
      "999999999999\n" (* over max_frame *);
      "3\nabcX" (* wrong frame terminator *);
      "\n\n" (* empty length line *);
      "0123456789\n" (* length line longer than max_header *);
    ]
  in
  List.iter
    (fun s ->
      match P.unframe s with
      | P.Malformed _ -> ()
      | P.Incomplete -> Alcotest.fail (Printf.sprintf "%S: Incomplete" s)
      | P.Frame _ -> Alcotest.fail (Printf.sprintf "%S: decoded a frame" s))
    malformed

(* Fuzz: unframe must never raise, whatever bytes arrive. *)
let prop_unframe_total =
  QCheck2.Test.make ~count:500 ~name:"unframe total on arbitrary bytes"
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_bound 64))
    (fun s ->
      match P.unframe s with
      | P.Frame (p, rest) ->
        String.length p + String.length rest <= String.length s
      | P.Incomplete | P.Malformed _ -> true)

let prop_frame_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"frame/unframe round-trip"
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_bound 256))
    (fun p ->
      match P.unframe (P.frame p) with
      | P.Frame (got, "") -> String.equal got p
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Protocol: message serialization                                     *)
(* ------------------------------------------------------------------ *)

let gen_id =
  QCheck2.Gen.(
    let seg = string_size ~gen:(char_range 'a''z') (int_range 1 6) in
    map
      (fun (a, (b, (c, d))) -> String.concat ":" [ a; b; c; d ])
      (pair seg (pair seg (pair seg seg))))

let gen_text =
  QCheck2.Gen.(string_size ~gen:(char_range ' ' '~') (int_bound 40))

(* exactly 16 lowercase hex chars — the only shape the wire accepts *)
let gen_trace_id =
  QCheck2.Gen.(
    map
      (fun ds -> String.concat "" (List.map (Printf.sprintf "%x") ds))
      (list_size (return 16) (int_bound 15)))

let gen_request =
  QCheck2.Gen.(
    oneof
      [
        map2
          (fun id trace_id -> P.Case { id; trace_id })
          gen_id (option gen_trace_id);
        return P.Health;
        return P.Metrics;
        return P.Shutdown;
      ])

let gen_response =
  QCheck2.Gen.(
    let source = oneofl [ P.Memory; P.Store; P.Computed ] in
    (* exact binary fractions so float round-trip is bit-identical *)
    let delay = map (fun n -> float_of_int n /. 16.) (int_bound 512) in
    let trace = option gen_trace_id in
    let gen_health =
      map2
        (fun counters (gauges, hists) ->
          P.Health_stats { P.counters; gauges; hists })
        (small_list (pair gen_text (int_bound 10_000)))
        (pair
           (small_list (pair gen_text delay))
           (small_list
              (map2
                 (fun k (c, s) -> (k, { P.hs_count = c; hs_sum = s }))
                 gen_text
                 (pair (int_bound 1000) delay))))
    in
    oneof
      [
        map2
          (fun (id, src) (json, trace_id) ->
            P.Record { id; source = src; json; trace_id })
          (pair gen_id source) (pair gen_text trace);
        gen_health;
        map (fun text -> P.Metrics_text text) gen_text;
        map2
          (fun (after_s, reason) trace_id ->
            P.Retry { after_s; reason; trace_id })
          (pair delay gen_text) trace;
        map2
          (fun (retryable, message) trace_id ->
            P.Failed { retryable; message; trace_id })
          (pair bool gen_text) trace;
        return P.Bye;
      ])

let prop_request_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"request serialization round-trip"
    gen_request (fun r ->
      match P.request_of_string (P.request_to_string r) with
      | Ok r' -> r' = r
      | Error _ -> false)

let prop_response_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"response serialization round-trip"
    gen_response (fun r ->
      match P.response_of_string (P.response_to_string r) with
      | Ok r' -> r' = r
      | Error _ -> false)

(* Garbage never parses as a message; decoding must never raise. *)
let prop_decode_total =
  QCheck2.Test.make ~count:500 ~name:"decode total on arbitrary bytes"
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_bound 48))
    (fun s ->
      (match P.request_of_string s with Ok _ | Error _ -> true)
      && match P.response_of_string s with Ok _ | Error _ -> true)

let test_decode_rejects_wrong_version () =
  (match P.request_of_string "{\"v\":2,\"req\":\"health\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted future protocol version");
  match P.response_of_string "{\"v\":0,\"resp\":\"bye\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted version 0"

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

let test_store_roundtrip () =
  let dir = temp_dir "ucp-store" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let s = Store.open_ ~dir in
      let key = "00aa11bb" and line = "{\"program\":\"fft1\",\"tau\":42}" in
      Alcotest.(check (option string)) "miss before put" None (Store.find s ~key);
      Store.put s ~id:"fft1:k1:45nm:lru" ~key line;
      Alcotest.(check (option string))
        "hit after put" (Some line) (Store.find s ~key);
      (* a fresh handle on the same directory sees the entry: the store
         is the only persistent state, so this is restart recovery *)
      let s2 = Store.open_ ~dir in
      Alcotest.(check (option string))
        "hit after reopen" (Some line)
        (Store.find s2 ~key))

let test_store_corruption_quarantined () =
  let dir = temp_dir "ucp-store" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let s = Store.open_ ~dir in
      let key = "feedc0de" and line = "{\"program\":\"crc\",\"tau\":7}" in
      Store.put s ~id:"crc:k1:45nm:lru" ~key line;
      (* flip one payload byte on disk behind the store's back *)
      let p = Filename.concat dir (key ^ ".rec") in
      let fd = Unix.openfile p [ Unix.O_WRONLY ] 0 in
      ignore (Unix.lseek fd 12 Unix.SEEK_SET);
      ignore (Unix.write_substring fd "X" 0 1);
      Unix.close fd;
      Alcotest.(check (option string))
        "corrupt entry is a miss" None (Store.find s ~key);
      Alcotest.(check int) "quarantined" 1 (Store.quarantined s);
      Alcotest.(check bool)
        "bytes kept for post-mortem" true
        (Sys.file_exists (p ^ ".quarantine"));
      (* self-healing: re-put and the entry serves again *)
      Store.put s ~id:"crc:k1:45nm:lru" ~key line;
      Alcotest.(check (option string))
        "healed" (Some line) (Store.find s ~key))

let test_store_fault_hook () =
  let dir = temp_dir "ucp-store" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      with_faults
        [ ("fft1:k1:45nm:lru", Fault.Corrupt_store) ]
        (fun () ->
          let s = Store.open_ ~dir in
          let key = "0badf00d" and line = "{\"program\":\"fft1\"}" in
          Store.put s ~id:"fft1:k1:45nm:lru" ~key line;
          Alcotest.(check int)
            "hook scribbled the entry" 1
            (Store.corruptions_injected s);
          Alcotest.(check (option string))
            "scribbled entry quarantined" None (Store.find s ~key);
          Alcotest.(check int) "quarantined" 1 (Store.quarantined s);
          (* the hook is one-shot: the re-put persists cleanly *)
          Store.put s ~id:"fft1:k1:45nm:lru" ~key line;
          Alcotest.(check (option string))
            "second put survives" (Some line) (Store.find s ~key)))

let test_store_sweeps_tmp () =
  let dir = temp_dir "ucp-store" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let stale = Filename.concat dir "entry.rec.tmp.1234" in
      let oc = open_out stale in
      output_string oc "torn write";
      close_out oc;
      ignore (Store.open_ ~dir);
      Alcotest.(check bool)
        "stale temp file swept" false (Sys.file_exists stale))

(* ------------------------------------------------------------------ *)
(* Daemon in-process                                                   *)
(* ------------------------------------------------------------------ *)

let sock_counter = ref 0

let fresh_socket () =
  incr sock_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "ucp-t%d-%d.sock" (Unix.getpid ()) !sock_counter)

let start_server cfg =
  Thread.create (fun () -> Server.run ~signals:false cfg) ()

let stop_server ~socket thread =
  (match Client.query ~socket P.Shutdown with
  | Ok P.Bye -> ()
  | Ok _ | Error _ -> ());
  Thread.join thread

let query_record ~socket id =
  match Client.query ~socket (P.Case { id; trace_id = None }) with
  | Ok (P.Record { id = rid; source; json; _ }) ->
    Alcotest.(check string) "record id" id rid;
    (source, json)
  | Ok _ -> Alcotest.fail "expected a record"
  | Error e -> Alcotest.fail ("query failed: " ^ e)

let health ~socket =
  match Client.query ~socket P.Health with
  | Ok (P.Health_stats h) -> h
  | Ok _ -> Alcotest.fail "expected health stats"
  | Error e -> Alcotest.fail ("health failed: " ^ e)

let stat (h : P.health) name =
  match List.assoc_opt name h.P.counters with
  | Some v -> v
  | None -> Alcotest.fail ("health stat missing: " ^ name)

let source_name = function
  | P.Memory -> "memory"
  | P.Store -> "store"
  | P.Computed -> "computed"

let check_source what expected got =
  Alcotest.(check string) what (source_name expected) (source_name got)

let test_server_cache_tiers () =
  let socket = fresh_socket () and dir = temp_dir "ucp-serve" in
  let id = "crc:k1:45nm:lru" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let cfg = Server.default_config ~socket ~store_dir:dir in
      let th = start_server { cfg with jobs = 1 } in
      let src1, json1 = query_record ~socket id in
      check_source "cold query computes" P.Computed src1;
      let src2, json2 = query_record ~socket id in
      check_source "warm query hits memory" P.Memory src2;
      Alcotest.(check string) "identical answer" json1 json2;
      stop_server ~socket th;
      (* restart on the same store: the memory cache is gone but the
         on-disk store answers — crash-only recovery *)
      let th = start_server { cfg with jobs = 1 } in
      let src3, json3 = query_record ~socket id in
      check_source "restart answers from store" P.Store src3;
      Alcotest.(check string) "byte-identical across restart" json1 json3;
      stop_server ~socket th)

let test_server_kill_worker_retry () =
  let socket = fresh_socket () and dir = temp_dir "ucp-serve" in
  let id = "crc:k1:45nm:lru" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      with_faults
        [ (id, Fault.Kill_worker) ]
        (fun () ->
          let cfg = Server.default_config ~socket ~store_dir:dir in
          let th = start_server { cfg with jobs = 1 } in
          (* first attempt kills the worker domain; the request slot is
             filled with a retryable error, the pool respawns, and the
             client's retry gets a real answer *)
          let src, _ = query_record ~socket id in
          check_source "retry recomputes" P.Computed src;
          let kvs = health ~socket in
          Alcotest.(check bool)
            "worker restart recorded" true
            (stat kvs "worker_restarts" >= 1);
          stop_server ~socket th))

let test_server_corrupt_store_heals () =
  let socket = fresh_socket () and dir = temp_dir "ucp-serve" in
  let id = "crc:k1:45nm:lru" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      with_faults
        [ (id, Fault.Corrupt_store) ]
        (fun () ->
          let cfg = Server.default_config ~socket ~store_dir:dir in
          (* cache_capacity 0 disables the memory tier, forcing the
             second query through the (scribbled) store entry *)
          let th = start_server { cfg with jobs = 1; cache_capacity = 0 } in
          let src1, json1 = query_record ~socket id in
          check_source "cold query computes" P.Computed src1;
          let src2, json2 = query_record ~socket id in
          check_source "corrupt entry recomputed" P.Computed src2;
          Alcotest.(check string) "identical after healing" json1 json2;
          let kvs = health ~socket in
          Alcotest.(check bool)
            "quarantine recorded" true
            (stat kvs "store_quarantined" >= 1);
          Alcotest.(check int)
            "injection recorded" 1
            (stat kvs "store_corruptions_injected");
          (* healed: with the cache off, the third query is a store hit *)
          let src3, _ = query_record ~socket id in
          check_source "healed entry serves" P.Store src3;
          stop_server ~socket th))

let test_server_rejects_unknown_case () =
  let socket = fresh_socket () and dir = temp_dir "ucp-serve" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let cfg = Server.default_config ~socket ~store_dir:dir in
      let th = start_server { cfg with jobs = 1 } in
      (match Client.query ~socket (P.Case { id = "no-such-case"; trace_id = None }) with
      | Ok (P.Failed { retryable; _ }) ->
        Alcotest.(check bool) "not retryable" false retryable
      | Ok _ -> Alcotest.fail "unknown case answered"
      | Error e -> Alcotest.fail ("transport error: " ^ e));
      stop_server ~socket th)

(* Telemetry surface of the daemon: a client-assigned trace id is
   echoed on the answer, an unmarked request still gets a well-formed
   server-derived id, the Metrics query serves parseable Prometheus
   text with all four per-tier latency histograms, and the health reply
   carries the histogram {count,sum} summaries (the instruments the old
   counter-only reply silently dropped). *)
let test_server_trace_echo_and_metrics () =
  let socket = fresh_socket () and dir = temp_dir "ucp-serve" in
  let id = "crc:k1:45nm:lru" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let cfg = Server.default_config ~socket ~store_dir:dir in
      let th = start_server { cfg with jobs = 1 } in
      let trace = "00decafc0ffee042" in
      (match Client.query ~socket (P.Case { id; trace_id = Some trace }) with
      | Ok (P.Record { trace_id; _ }) ->
        Alcotest.(check (option string))
          "client trace id echoed" (Some trace) trace_id
      | Ok _ -> Alcotest.fail "expected a record"
      | Error e -> Alcotest.fail ("query failed: " ^ e));
      (match Client.query ~socket (P.Case { id; trace_id = None }) with
      | Ok (P.Record { trace_id = Some t; _ }) ->
        Alcotest.(check bool)
          "derived trace id well-formed" true (P.valid_trace_id t)
      | Ok (P.Record { trace_id = None; _ }) ->
        Alcotest.fail "no trace id assigned to an unmarked request"
      | Ok _ -> Alcotest.fail "expected a record"
      | Error e -> Alcotest.fail ("query failed: " ^ e));
      (match Client.query ~socket P.Metrics with
      | Ok (P.Metrics_text text) -> (
        match Ucp_obs.Expo.parse text with
        | Error e -> Alcotest.fail ("exposition does not parse: " ^ e)
        | Ok samples ->
          let tiers =
            List.filter_map
              (fun (h : Ucp_obs.Expo.hist) ->
                if h.Ucp_obs.Expo.h_base = "serve_latency_s" then
                  List.assoc_opt "tier" h.Ucp_obs.Expo.h_labels
                else None)
              (Ucp_obs.Expo.histograms samples)
          in
          List.iter
            (fun t ->
              Alcotest.(check bool) (t ^ " tier exposed") true (List.mem t tiers))
            [ "cache"; "store"; "cold"; "shed" ])
      | Ok _ -> Alcotest.fail "expected metrics text"
      | Error e -> Alcotest.fail ("metrics failed: " ^ e));
      let h = health ~socket in
      Alcotest.(check bool)
        "latency histogram summarized in health" true
        (List.mem_assoc "serve_latency_s{tier=\"cold\"}" h.P.hists);
      (match List.assoc_opt "serve_latency_s{tier=\"cold\"}" h.P.hists with
      | Some { P.hs_count; _ } ->
        Alcotest.(check bool) "cold tier observed" true (hs_count >= 1)
      | None -> ());
      stop_server ~socket th)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "ucp_serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "frame rejects oversize" `Quick
            test_frame_rejects_oversize;
          Alcotest.test_case "unframe incomplete prefixes" `Quick
            test_unframe_incomplete;
          Alcotest.test_case "unframe malformed streams" `Quick
            test_unframe_malformed;
          Alcotest.test_case "decode rejects wrong version" `Quick
            test_decode_rejects_wrong_version;
          q prop_unframe_total;
          q prop_frame_roundtrip;
          q prop_request_roundtrip;
          q prop_response_roundtrip;
          q prop_decode_total;
        ] );
      ( "store",
        [
          Alcotest.test_case "put/find round-trip" `Quick test_store_roundtrip;
          Alcotest.test_case "corruption quarantined" `Quick
            test_store_corruption_quarantined;
          Alcotest.test_case "corrupt-store fault hook" `Quick
            test_store_fault_hook;
          Alcotest.test_case "open sweeps temp files" `Quick
            test_store_sweeps_tmp;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "cache tiers and restart recovery" `Slow
            test_server_cache_tiers;
          Alcotest.test_case "kill-worker retried to success" `Slow
            test_server_kill_worker_retry;
          Alcotest.test_case "corrupt store heals" `Slow
            test_server_corrupt_store_heals;
          Alcotest.test_case "unknown case is a clean failure" `Quick
            test_server_rejects_unknown_case;
          Alcotest.test_case "trace echo, metrics text, health hists" `Slow
            test_server_trace_echo_and_metrics;
        ] );
    ]
