(* Tests for Ucp_core: the pipeline façade, the experiment sweep, and
   the figure aggregations. *)

module Config = Ucp_cache.Config
module Tech = Ucp_energy.Tech
module Pipeline = Ucp_core.Pipeline
module Experiments = Ucp_core.Experiments
module Report = Ucp_core.Report

let program = Ucp_workloads.Suite.find "fft1"
let config = Config.make ~assoc:2 ~block_bytes:16 ~capacity:256

let test_measure_consistency () =
  let m = Pipeline.measure program config Tech.nm45 in
  Alcotest.(check bool) "tau positive" true (m.Pipeline.tau > 0);
  Alcotest.(check bool) "acet within wcet" true (m.Pipeline.acet <= m.Pipeline.tau);
  Alcotest.(check bool) "energy positive" true (m.Pipeline.energy_pj > 0.0);
  Alcotest.(check bool) "miss rate sane" true
    (m.Pipeline.miss_rate >= 0.0 && m.Pipeline.miss_rate <= 1.0)

let test_measure_deterministic () =
  let a = Pipeline.measure ~seed:3 program config Tech.nm45 in
  let b = Pipeline.measure ~seed:3 program config Tech.nm45 in
  Alcotest.(check int) "same acet" a.Pipeline.acet b.Pipeline.acet

let test_compare_optimized_guarantee () =
  let cmp = Pipeline.compare_optimized program config Tech.nm45 in
  Alcotest.(check bool) "Theorem 1 via the facade" true
    (cmp.Pipeline.optimized.Pipeline.tau <= cmp.Pipeline.original.Pipeline.tau)

(* small synthetic sweep for the aggregation functions *)
let small_records =
  lazy
    (Experiments.sweep
       ~programs:[ ("fft1", Ucp_workloads.Suite.find "fft1"); ("crc", Ucp_workloads.Suite.find "crc") ]
       ~configs:
         [
           ("a", Config.make ~assoc:2 ~block_bytes:16 ~capacity:256);
           ("b", Config.make ~assoc:2 ~block_bytes:16 ~capacity:512);
           ("c", Config.make ~assoc:2 ~block_bytes:16 ~capacity:1024);
         ]
       ~techs:[ Tech.nm45; Tech.nm32 ] ())

let test_sweep_cardinality () =
  Alcotest.(check int) "2 x 3 x 2 records" 12 (List.length (Lazy.force small_records))

let test_figure3_rows () =
  let rows = Experiments.figure3 (Lazy.force small_records) in
  Alcotest.(check int) "one row per capacity" 3 (List.length rows);
  List.iter
    (fun (r : Experiments.size_row) ->
      Alcotest.(check int) "cases per size" 4 r.Experiments.cases;
      Alcotest.(check bool) "wcet improvement sane" true
        (r.Experiments.wcet_improvement >= -0.001 && r.Experiments.wcet_improvement <= 1.0))
    rows

let test_figure4_rows () =
  let rows = Experiments.figure4 (Lazy.force small_records) in
  List.iter
    (fun (r : Experiments.miss_row) ->
      Alcotest.(check bool) "miss after <= before (on average)" true
        (r.Experiments.miss_after <= r.Experiments.miss_before +. 1e-9))
    rows

let test_figure5_join () =
  let rows = Experiments.figure5 (Lazy.force small_records) in
  (* halves exist for 512 and 1024; quarters for 1024 only *)
  let halves = List.filter (fun (r : Experiments.downsize_row) -> r.Experiments.factor = 2) rows in
  let quarters = List.filter (fun (r : Experiments.downsize_row) -> r.Experiments.factor = 4) rows in
  Alcotest.(check int) "half rows" 2 (List.length halves);
  Alcotest.(check int) "quarter rows" 1 (List.length quarters);
  List.iter
    (fun (r : Experiments.downsize_row) ->
      Alcotest.(check int) "cases joined" 4 r.Experiments.cases)
    rows

let test_figure7_theorem1 () =
  let s = Experiments.figure7 (Lazy.force small_records) in
  Alcotest.(check bool) "no 32nm case grew" true s.Experiments.all_non_increasing;
  Alcotest.(check int) "only 32nm cases" 6 (List.length s.Experiments.ratios)

let test_figure8_rows () =
  let rows = Experiments.figure8 (Lazy.force small_records) in
  List.iter
    (fun (r : Experiments.exec_row) ->
      Alcotest.(check bool) "ratio >= 1" true (r.Experiments.exec_ratio >= 1.0 -. 1e-9);
      Alcotest.(check bool) "max >= avg" true
        (r.Experiments.max_ratio >= r.Experiments.exec_ratio -. 1e-9))
    rows

let test_tables () =
  Alcotest.(check int) "table1 has 37 rows" 37 (List.length (Experiments.table1 ()));
  Alcotest.(check int) "table2 has 36 rows" 36 (List.length (Experiments.table2 ()))

let test_report_rendering () =
  let records = Lazy.force small_records in
  List.iter
    (fun s -> Alcotest.(check bool) "non-empty" true (String.length s > 40))
    [
      Report.table1 ();
      Report.table2 ();
      Report.figure3 records;
      Report.figure4 records;
      Report.figure5 records;
      Report.figure7 records;
      Report.figure8 records;
      Report.headline records;
    ]

let test_quick_configs_subset () =
  List.iter
    (fun (id, c) ->
      Alcotest.(check bool) (id ^ " in table 2") true
        (List.exists (fun (_, c') -> Config.equal c c') Experiments.default_configs))
    Experiments.quick_configs

(* ------------------------------------------------------------------ *)
(* the parallel sweep engine *)

module Parallel = Ucp_core.Parallel

let test_parallel_map_order () =
  let items = Array.init 100 (fun i -> i) in
  let out = Parallel.map ~jobs:4 ~chunk:3 (fun i -> i * i) items in
  Alcotest.(check (array int)) "input order" (Array.map (fun i -> i * i) items) out

let test_parallel_map_empty () =
  Alcotest.(check (array int)) "empty" [||] (Parallel.map ~jobs:2 (fun i -> i) [||])

let test_parallel_map_exception () =
  Alcotest.check_raises "first failure re-raised" (Failure "boom") (fun () ->
      ignore
        (Parallel.map ~jobs:2 ~chunk:1
           (fun i -> if i = 5 then failwith "boom" else i)
           (Array.init 10 (fun i -> i))))

let test_parallel_map_progress () =
  let total_items = 20 in
  let seen = ref [] in
  let out =
    Parallel.map ~jobs:3 ~chunk:4
      ~progress:(fun ~done_ ~total ->
        Alcotest.(check int) "total" total_items total;
        seen := done_ :: !seen)
      (fun i -> i)
      (Array.init total_items (fun i -> i))
  in
  Alcotest.(check int) "all results" total_items (Array.length out);
  let seen = List.rev !seen in
  Alcotest.(check bool) "strictly increasing" true
    (List.for_all2 ( < ) (0 :: List.filteri (fun i _ -> i < List.length seen - 1) seen) seen);
  Alcotest.(check int) "last reports total" total_items
    (List.nth seen (List.length seen - 1))

let test_pool_rejects_bad_jobs () =
  Alcotest.check_raises "jobs 0" (Invalid_argument "Parallel.create: jobs must be positive")
    (fun () -> ignore (Parallel.create ~jobs:0 ()))

(* the ISSUE's headline guarantee: the parallel engine's records are
   identical, record for record, to the sequential sweep's — on a slice
   of the quick-config grid kept small enough for CI *)
let det_programs =
  [ ("fft1", Ucp_workloads.Suite.find "fft1"); ("crc", Ucp_workloads.Suite.find "crc") ]

let det_sequential =
  lazy (Experiments.sweep ~programs:det_programs ~configs:Experiments.quick_configs ())

let check_sweep_equal jobs =
  let seq = Lazy.force det_sequential in
  let par =
    Parallel.sweep ~programs:det_programs ~configs:Experiments.quick_configs ~jobs ()
  in
  Alcotest.(check int) "cardinality" (List.length seq)
    (List.length par.Parallel.records);
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "record %d identical (%s@%s)" i a.Experiments.program_name
           a.Experiments.config_id)
        true (a = b))
    (List.combine seq par.Parallel.records);
  Alcotest.(check bool) "wall time measured" true (par.Parallel.wall_s >= 0.0);
  Alcotest.(check bool) "stage timers populated" true
    (Ucp_core.Pipeline.total_timings par.Parallel.timings > 0.0);
  Alcotest.(check int) "case count" (List.length seq) par.Parallel.cases

let test_parallel_sweep_deterministic () = check_sweep_equal 4
let test_parallel_sweep_single_worker () = check_sweep_equal 1

(* ------------------------------------------------------------------ *)
(* robustness: per-case isolation, deadlines, fault injection,
   checkpoint/resume *)

module Outcome = Ucp_core.Outcome
module Fault = Ucp_core.Fault
module Checkpoint = Ucp_core.Checkpoint
module Deadline = Ucp_util.Deadline

let with_env name value f =
  let old = Sys.getenv_opt name in
  Unix.putenv name value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv name (Option.value old ~default:""))
    f

let test_default_jobs_env () =
  with_env "UCP_JOBS" "3" (fun () ->
      Alcotest.(check int) "UCP_JOBS=3" 3 (Parallel.default_jobs ()));
  with_env "UCP_JOBS" " 5 " (fun () ->
      Alcotest.(check int) "whitespace trimmed" 5 (Parallel.default_jobs ()));
  with_env "UCP_JOBS" "" (fun () ->
      Alcotest.(check bool) "empty falls back to default" true
        (Parallel.default_jobs () >= 1));
  List.iter
    (fun bad ->
      with_env "UCP_JOBS" bad (fun () ->
          Alcotest.(check bool)
            (Printf.sprintf "UCP_JOBS=%s rejected" bad)
            true
            (try
               ignore (Parallel.default_jobs ());
               false
             with Invalid_argument _ -> true)))
    [ "abc"; "0"; "-2"; "1.5" ]

let test_try_map_outcomes () =
  let out =
    Parallel.try_map ~jobs:2 ~chunk:1
      (fun i ->
        if i = 1 then failwith "kaboom"
        else if i = 2 then raise Deadline.Deadline_exceeded
        else if i = 3 then raise (Outcome.Invariant "tau grew")
        else i * 10)
      (Array.init 5 Fun.id)
  in
  Alcotest.(check int) "all elements accounted for" 5 (Array.length out);
  (match out.(0) with
  | Outcome.Ok 0 -> ()
  | _ -> Alcotest.fail "element 0 should be Ok 0");
  (match out.(1) with
  | Outcome.Failed { exn_text; _ } ->
    Alcotest.(check bool) "exception text preserved" true
      (String.length exn_text > 0
      && Ucp_testlib.contains ~substring:"kaboom" exn_text)
  | _ -> Alcotest.fail "element 1 should be Failed");
  (match out.(2) with
  | Outcome.Timed_out -> ()
  | _ -> Alcotest.fail "element 2 should be Timed_out");
  (match out.(3) with
  | Outcome.Invariant_violation "tau grew" -> ()
  | _ -> Alcotest.fail "element 3 should be Invariant_violation");
  match out.(4) with
  | Outcome.Ok 40 -> ()
  | _ -> Alcotest.fail "element 4 should be Ok 40"

let test_try_map_empty () =
  Alcotest.(check int) "empty input" 0
    (Array.length (Parallel.try_map ~jobs:2 (fun i -> i) [||]))

let test_map_progress_exception_contained () =
  (* a raising progress callback must not void the computed results *)
  let calls = ref 0 in
  let out =
    Parallel.map ~jobs:2 ~chunk:2
      ~progress:(fun ~done_:_ ~total:_ ->
        incr calls;
        failwith "progress boom")
      (fun i -> i + 1)
      (Array.init 12 (fun i -> i))
  in
  Alcotest.(check (array int)) "results intact"
    (Array.init 12 (fun i -> i + 1))
    out;
  Alcotest.(check int) "callback disabled after first raise" 1 !calls

(* a deliberately tiny grid so the fault-injection sweeps stay fast *)
let tiny_grid () =
  let programs =
    [ ("fft1", Ucp_workloads.Suite.find "fft1"); ("crc", Ucp_workloads.Suite.find "crc") ]
  in
  let configs = [ ("a", Config.make ~assoc:2 ~block_bytes:16 ~capacity:256) ] in
  let techs = [ Tech.nm45 ] in
  (programs, configs, techs)

let with_faults faults f =
  List.iter (fun (id, mode) -> Fault.set id mode) faults;
  Fun.protect ~finally:Fault.clear f

let test_sweep_isolates_crashed_case () =
  let programs, configs, techs = tiny_grid () in
  with_faults
    [ ("fft1:a:45nm:lru", Fault.Raise) ]
    (fun () ->
      let s = Parallel.sweep ~programs ~configs ~techs ~jobs:2 () in
      Alcotest.(check int) "grid size" 2 s.Parallel.cases;
      Alcotest.(check int) "one record survives" 1 (List.length s.Parallel.records);
      Alcotest.(check int) "one failure" 1 (List.length s.Parallel.failures);
      (match s.Parallel.results with
      | [ ("fft1:a:45nm:lru", Outcome.Failed { exn_text; backtrace = _ }); ("crc:a:45nm:lru", Outcome.Ok r) ]
        ->
        Alcotest.(check bool) "injected exception text" true
          (Ucp_testlib.contains ~substring:"fft1:a:45nm:lru" exn_text);
        Alcotest.(check string) "surviving record is crc" "crc"
          r.Experiments.program_name
      | _ -> Alcotest.fail "expected [fft1 Failed; crc Ok] in input order"))

let test_sweep_times_out_stalled_case () =
  let programs, configs, techs = tiny_grid () in
  with_faults
    [ ("crc:a:45nm:lru", Fault.Stall 30.0) ]
    (fun () ->
      let t0 = Unix.gettimeofday () in
      let s = Parallel.sweep ~programs ~configs ~techs ~jobs:2 ~timeout:0.3 () in
      Alcotest.(check bool) "stall cut short by the deadline" true
        (Unix.gettimeofday () -. t0 < 10.0);
      match s.Parallel.results with
      | [ (_, Outcome.Ok _); ("crc:a:45nm:lru", Outcome.Timed_out) ] -> ()
      | _ -> Alcotest.fail "expected [fft1 Ok; crc Timed_out]")

let test_sweep_demotes_invariant_violation () =
  let programs, configs, techs = tiny_grid () in
  with_faults
    [ ("fft1:a:45nm:lru", Fault.Corrupt_tau 1_000_000) ]
    (fun () ->
      let s = Parallel.sweep ~programs ~configs ~techs ~jobs:2 () in
      match s.Parallel.results with
      | [ ("fft1:a:45nm:lru", Outcome.Invariant_violation msg); (_, Outcome.Ok _) ] ->
        Alcotest.(check bool) "names Theorem 1" true
          (Ucp_testlib.contains ~substring:"Theorem 1" msg);
        Alcotest.(check int) "corrupt record not reported" 1
          (List.length s.Parallel.records)
      | _ -> Alcotest.fail "expected [fft1 Invariant_violation; crc Ok]")

(* certification audit threaded through the sweep: every record of an
   audited run carries a verdict, un-audited runs stay Not_audited *)
let test_sweep_audit_full () =
  let programs, configs, techs = tiny_grid () in
  let s =
    Parallel.sweep ~programs ~configs ~techs ~jobs:2 ~audit:Ucp_verify.Full ()
  in
  Alcotest.(check int) "audited grid is clean" 2 (List.length s.Parallel.records);
  List.iter
    (fun r ->
      match r.Experiments.audit with
      | Pipeline.Audited { checks; seconds } ->
        (* 5 base obligations + 2 refine obligations (sweeps refine by
           default) *)
        Alcotest.(check int) "seven obligations per case" 7 checks;
        Alcotest.(check bool) "non-negative audit cost" true (seconds >= 0.0)
      | Pipeline.Audit_skipped reason ->
        Alcotest.failf "plain case skipped: %s" reason
      | Pipeline.Not_audited -> Alcotest.fail "audited sweep left a record unaudited")
    s.Parallel.records;
  let s0 = Parallel.sweep ~programs ~configs ~techs ~jobs:2 () in
  List.iter
    (fun r ->
      Alcotest.(check bool) "default sweep is not audited" true
        (r.Experiments.audit = Pipeline.Not_audited))
    s0.Parallel.records

(* a corrupt-cert fault must be caught by the audit and demoted to an
   invariant violation naming the failed obligation *)
let test_sweep_audit_demotes_corrupt_cert () =
  let programs, configs, techs = tiny_grid () in
  with_faults
    [ ("fft1:a:45nm:lru", Fault.Corrupt_cert) ]
    (fun () ->
      let s =
        Parallel.sweep ~programs ~configs ~techs ~jobs:2
          ~audit:Ucp_verify.Full ()
      in
      match s.Parallel.results with
      | [ ("fft1:a:45nm:lru", Outcome.Invariant_violation msg); (_, Outcome.Ok _) ] ->
        Alcotest.(check bool) "names the audit obligation" true
          (Ucp_testlib.contains ~substring:"audit: optimizer-tau-after" msg);
        Alcotest.(check int) "corrupt record not reported" 1
          (List.length s.Parallel.records)
      | _ -> Alcotest.fail "expected [fft1 Invariant_violation; crc Ok]")

(* a corrupt-cert fault without the audit passes silently: the fault
   only perturbs the certificate, not the measurements *)
let test_sweep_corrupt_cert_needs_audit () =
  let programs, configs, techs = tiny_grid () in
  with_faults
    [ ("fft1:a:45nm:lru", Fault.Corrupt_cert) ]
    (fun () ->
      let s = Parallel.sweep ~programs ~configs ~techs ~jobs:2 () in
      Alcotest.(check int) "un-audited sweep misses the corruption" 2
        (List.length s.Parallel.records))

(* worker-death handling: a task whose exception escapes per-task
   isolation (a Fault.Killed_worker) kills its domain; the pool must
   never hang on it — it either fails wait with a structured error or
   (under ~respawn) replaces the domain and carries on *)
let test_pool_worker_death_fails_wait () =
  let pool = Parallel.create ~jobs:2 () in
  Fun.protect
    ~finally:(fun () -> Parallel.shutdown pool)
    (fun () ->
      Parallel.submit pool (fun () -> raise (Fault.Killed_worker "boom"));
      Alcotest.(check bool) "wait raises Worker_died instead of hanging" true
        (try
           Parallel.wait pool;
           false
         with Parallel.Worker_died _ -> true))

let test_pool_respawn_replaces_dead_worker () =
  let pool = Parallel.create ~respawn:true ~jobs:1 () in
  Fun.protect
    ~finally:(fun () -> Parallel.shutdown pool)
    (fun () ->
      let hit = Atomic.make 0 in
      Parallel.submit pool (fun () -> raise (Fault.Killed_worker "boom"));
      Parallel.submit pool (fun () -> Atomic.incr hit);
      (* the queued task outlives the killed domain: the replacement
         runs it and wait returns normally *)
      Parallel.wait pool;
      Alcotest.(check int) "replacement ran the queued task" 1 (Atomic.get hit);
      Alcotest.(check int) "one restart recorded" 1 (Parallel.restarts pool))

let test_sweep_survives_killed_worker () =
  let programs, configs, techs = tiny_grid () in
  with_faults
    [ ("fft1:a:45nm:lru", Fault.Kill_worker) ]
    (fun () ->
      let s = Parallel.sweep ~programs ~configs ~techs ~jobs:2 ~chunk:1 () in
      Alcotest.(check int) "one worker replaced" 1 s.Parallel.worker_restarts;
      match s.Parallel.results with
      | [ ("fft1:a:45nm:lru", Outcome.Failed { exn_text; _ }); (_, Outcome.Ok r) ] ->
        Alcotest.(check bool) "lost case is structured, not an assert" true
          (Ucp_testlib.contains ~substring:"worker domain died" exn_text);
        Alcotest.(check string) "other case unaffected" "crc"
          r.Experiments.program_name
      | _ -> Alcotest.fail "expected [fft1 Failed (lost with its domain); crc Ok]")

(* durability: an acknowledged journal append (and every write_atomic)
   must reach fsync, not just the kernel page cache *)
let test_checkpoint_writes_are_fsynced () =
  let programs, configs, techs = tiny_grid () in
  let path = Filename.temp_file "ucp_sync" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let fingerprint = Checkpoint.fingerprint ~programs ~configs ~techs () in
      let before = Checkpoint.synced_writes () in
      let j = Checkpoint.start ~path ~fingerprint ~resume:false in
      Fun.protect
        ~finally:(fun () -> Checkpoint.close j)
        (fun () ->
          Alcotest.(check bool) "header is synced" true
            (Checkpoint.synced_writes () > before);
          let r =
            match Experiments.sweep ~programs ~configs ~techs () with
            | r :: _ -> r
            | [] -> Alcotest.fail "tiny grid produced no record"
          in
          let mid = Checkpoint.synced_writes () in
          Checkpoint.record j ~id:"fft1:a:45nm:lru" r;
          Alcotest.(check bool) "record syncs before returning" true
            (Checkpoint.synced_writes () > mid));
      let before_wa = Checkpoint.synced_writes () in
      Checkpoint.write_atomic ~path "replacement contents\n";
      Alcotest.(check bool) "write_atomic syncs before rename" true
        (Checkpoint.synced_writes () > before_wa))

let test_sweep_rejects_bad_timeout () =
  Alcotest.(check bool) "timeout 0 rejected" true
    (try
       ignore (Parallel.sweep ~timeout:0.0 ());
       false
     with Invalid_argument _ -> true)

let test_fault_env_parsing () =
  with_env "UCP_FAULT" "x=raise, y=stall:0.5 ,z=corrupt:42" (fun () ->
      Fun.protect ~finally:Fault.clear (fun () ->
          Fault.load_env ();
          (match Fault.find "x" with
          | Some Fault.Raise -> ()
          | _ -> Alcotest.fail "x should be Raise");
          (match Fault.find "y" with
          | Some (Fault.Stall s) -> Alcotest.(check (float 1e-9)) "stall secs" 0.5 s
          | _ -> Alcotest.fail "y should be Stall");
          (match Fault.find "z" with
          | Some (Fault.Corrupt_tau 42) -> ()
          | _ -> Alcotest.fail "z should be Corrupt_tau 42")));
  with_env "UCP_FAULT" "w=corrupt-cert" (fun () ->
      Fun.protect ~finally:Fault.clear (fun () ->
          Fault.load_env ();
          (match Fault.find "w" with
          | Some Fault.Corrupt_cert -> ()
          | _ -> Alcotest.fail "w should be Corrupt_cert");
          Alcotest.(check bool) "corrupt_cert fires for w" true
            (Fault.corrupt_cert "w");
          Alcotest.(check bool) "corrupt_cert quiet elsewhere" false
            (Fault.corrupt_cert "v")));
  List.iter
    (fun bad ->
      with_env "UCP_FAULT" bad (fun () ->
          Fun.protect ~finally:Fault.clear (fun () ->
              Alcotest.(check bool)
                (Printf.sprintf "UCP_FAULT=%s rejected" bad)
                true
                (try
                   Fault.load_env ();
                   false
                 with Invalid_argument _ -> true))))
    [ "noequals"; "=raise"; "x=explode"; "x=stall:fast" ]

let test_checkpoint_record_roundtrip () =
  let programs, configs, techs = tiny_grid () in
  let s = Parallel.sweep ~programs ~configs ~techs ~jobs:1 () in
  List.iter
    (fun (id, o) ->
      match o with
      | Outcome.Ok r -> (
        let line = Checkpoint.record_line ~id r in
        match Checkpoint.parse_line line with
        | Some (id', r') ->
          Alcotest.(check string) "id round-trips" id id';
          Alcotest.(check bool) "record round-trips bit for bit" true (r = r')
        | None -> Alcotest.fail "record_line should parse back")
      | _ -> Alcotest.fail "tiny grid should be fault-free")
    s.Parallel.results;
  (* audited records round-trip with their verdict; a journal written
     before the audit fields existed still parses (as Not_audited) *)
  let sa =
    Parallel.sweep ~programs ~configs ~techs ~jobs:1 ~audit:Ucp_verify.Full ()
  in
  List.iter
    (fun (id, o) ->
      match o with
      | Outcome.Ok r -> (
        Alcotest.(check bool) "audited sweep record carries a verdict" true
          (r.Experiments.audit <> Pipeline.Not_audited);
        match Checkpoint.parse_line (Checkpoint.record_line ~id r) with
        | Some (_, r') ->
          Alcotest.(check bool) "audited record round-trips bit for bit" true
            (r = r')
        | None -> Alcotest.fail "audited record_line should parse back")
      | _ -> Alcotest.fail "audited tiny grid should be fault-free")
    sa.Parallel.results;
  Alcotest.(check bool) "malformed line rejected" true
    (Checkpoint.parse_line "{\"case\":\"tr" = None)

let test_sweep_checkpoint_resume () =
  let programs, configs, techs =
    let programs, _, techs = tiny_grid () in
    ( programs,
      [
        ("a", Config.make ~assoc:2 ~block_bytes:16 ~capacity:256);
        ("b", Config.make ~assoc:2 ~block_bytes:16 ~capacity:512);
      ],
      techs )
  in
  let path = Filename.temp_file "ucp_ckpt" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (* reference: an uninterrupted run *)
      let full = Parallel.sweep ~programs ~configs ~techs ~jobs:1 () in
      (* a complete checkpointed run, then simulate a crash by keeping
         only the header, the first two record lines and a torn final
         line *)
      let s0 =
        Parallel.sweep ~programs ~configs ~techs ~jobs:1 ~checkpoint:path ()
      in
      Alcotest.(check int) "checkpointed run is clean" 0
        (List.length s0.Parallel.failures);
      let lines =
        String.split_on_char '\n' (In_channel.with_open_text path In_channel.input_all)
        |> List.filter (fun l -> l <> "")
      in
      Alcotest.(check int) "header + one line per case" 5 (List.length lines);
      let journaled =
        match lines with
        | header :: r1 :: r2 :: _ ->
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc
                (String.concat "\n" [ header; r1; r2; {|{"case":"tr|} ]));
          List.filter_map Checkpoint.parse_line [ r1; r2 ] |> List.map fst
        | _ -> Alcotest.fail "journal too short"
      in
      Alcotest.(check int) "two journaled cases" 2 (List.length journaled);
      (* prove the journaled cases are skipped, not re-run: rig them to
         crash if executed *)
      with_faults
        (List.map (fun id -> (id, Fault.Raise)) journaled)
        (fun () ->
          let s1 =
            Parallel.sweep ~programs ~configs ~techs ~jobs:1 ~checkpoint:path
              ~resume:true ()
          in
          Alcotest.(check int) "two cases replayed" 2 s1.Parallel.resumed;
          Alcotest.(check int) "no failures on resume" 0
            (List.length s1.Parallel.failures);
          Alcotest.(check bool) "resumed records identical to uninterrupted run"
            true
            (s1.Parallel.records = full.Parallel.records)))

let test_sweep_checkpoint_fingerprint_mismatch () =
  let programs, configs, techs = tiny_grid () in
  let path = Filename.temp_file "ucp_ckpt" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      ignore (Parallel.sweep ~programs ~configs ~techs ~jobs:1 ~checkpoint:path ());
      let other_configs =
        [ ("a", Config.make ~assoc:4 ~block_bytes:32 ~capacity:1024) ]
      in
      Alcotest.(check bool) "mismatched grid rejected" true
        (try
           ignore
             (Parallel.sweep ~programs ~configs:other_configs ~techs ~jobs:1
                ~checkpoint:path ~resume:true ());
           false
         with Failure msg -> Ucp_testlib.contains ~substring:"fingerprint" msg))

(* the policy axis in the journal: case ids carry the policy suffix,
   records round-trip with their policy, and an LRU-only journal cannot
   seed a multi-policy grid *)
let test_checkpoint_policy_roundtrip () =
  let programs, configs, techs = tiny_grid () in
  let s =
    Parallel.sweep ~programs ~configs ~techs ~policies:[ Ucp_policy.Fifo ]
      ~jobs:1 ()
  in
  Alcotest.(check int) "fifo grid evaluated" 2 (List.length s.Parallel.records);
  List.iter
    (fun (id, o) ->
      match o with
      | Outcome.Ok r -> (
        Alcotest.(check bool) "id carries the policy suffix" true
          (Ucp_testlib.contains ~substring:":fifo" id);
        match Checkpoint.parse_line (Checkpoint.record_line ~id r) with
        | Some (id', r') ->
          Alcotest.(check string) "id round-trips" id id';
          Alcotest.(check bool) "policy survives the journal" true
            (r'.Experiments.policy = Ucp_policy.Fifo);
          Alcotest.(check bool) "record round-trips bit for bit" true (r = r')
        | None -> Alcotest.fail "record_line should parse back")
      | _ -> Alcotest.fail "fifo grid should be fault-free")
    s.Parallel.results

let test_checkpoint_policy_fingerprint_mismatch () =
  let programs, configs, techs = tiny_grid () in
  let path = Filename.temp_file "ucp_ckpt" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (* an LRU-only journal from a completed default sweep ... *)
      ignore (Parallel.sweep ~programs ~configs ~techs ~jobs:1 ~checkpoint:path ());
      (* ... must be rejected when resuming a multi-policy grid *)
      Alcotest.(check bool) "LRU journal rejected for multi-policy grid" true
        (try
           ignore
             (Parallel.sweep ~programs ~configs ~techs
                ~policies:[ Ucp_policy.Lru; Ucp_policy.Fifo; Ucp_policy.Plru ]
                ~jobs:1 ~checkpoint:path ~resume:true ());
           false
         with Failure msg -> Ucp_testlib.contains ~substring:"fingerprint" msg))

let test_experiments_ratio_degenerate () =
  Alcotest.(check bool) "zero denominator is None" true
    (Experiments.ratio 5 0 = None);
  Alcotest.(check bool) "defined ratio" true (Experiments.ratio 1 2 = Some 0.5);
  Alcotest.(check bool) "zero float denominator is None" true
    (Experiments.fratio 5.0 0.0 = None);
  Alcotest.(check bool) "defined float ratio" true
    (Experiments.fratio 1.0 4.0 = Some 0.25)

(* ------------------------------------------------------------------ *)
(* perf-regression gate *)

module Bench_gate = Ucp_core.Bench_gate

let gate_json s =
  match Ucp_util.Json.parse s with
  | Ok j -> j
  | Error msg -> Alcotest.failf "gate fixture does not parse: %s" msg

let test_bench_gate_band () =
  let baseline =
    gate_json
      {|{"wall_s":1.0,"cases":10,"tiers":[{"p99_s":0.1,"count":5},{"p99_s":0.2,"count":7}]}|}
  in
  (* identical numbers pass *)
  let o = Bench_gate.compare_json ~baseline ~current:baseline () in
  Alcotest.(check bool) "identical passes" true o.Bench_gate.passed;
  Alcotest.(check int) "three gated leaves" 3 o.Bench_gate.gated;
  (* just inside the band: cur = base*factor + slack *)
  let inside =
    gate_json
      {|{"wall_s":3.25,"cases":99,"tiers":[{"p99_s":0.55,"count":0},{"p99_s":0.85,"count":0}]}|}
  in
  let o = Bench_gate.compare_json ~baseline ~current:inside () in
  Alcotest.(check bool) "band edge passes (counts not gated)" true
    o.Bench_gate.passed;
  (* one leaf past the band fails, and the verdict names it *)
  let regressed =
    gate_json
      {|{"wall_s":1.0,"cases":10,"tiers":[{"p99_s":0.1,"count":5},{"p99_s":5.0,"count":7}]}|}
  in
  let o = Bench_gate.compare_json ~baseline ~current:regressed () in
  Alcotest.(check bool) "regression fails" false o.Bench_gate.passed;
  (match
     List.find_opt (fun v -> not v.Bench_gate.v_ok) o.Bench_gate.verdicts
   with
  | Some v ->
    Alcotest.(check string) "regressed path" "tiers[1].p99_s" v.Bench_gate.v_path
  | None -> Alcotest.fail "no failing verdict reported");
  (* a tighter factor flags what the default band tolerates *)
  let drifted = gate_json {|{"wall_s":2.0}|} in
  let loose =
    Bench_gate.compare_json ~baseline:(gate_json {|{"wall_s":1.0}|})
      ~current:drifted ()
  in
  Alcotest.(check bool) "2x inside default band" true loose.Bench_gate.passed;
  let tight =
    Bench_gate.compare_json ~factor:1.1 ~slack:0.0
      ~baseline:(gate_json {|{"wall_s":1.0}|})
      ~current:drifted ()
  in
  Alcotest.(check bool) "2x outside factor 1.1" false tight.Bench_gate.passed

let test_bench_gate_structure () =
  (* additive fields on either side are skipped, not regressions; and a
     document with no time-like leaves gates nothing *)
  let o =
    Bench_gate.compare_json
      ~baseline:(gate_json {|{"wall_s":1.0,"old_s":9.9}|})
      ~current:(gate_json {|{"wall_s":1.0,"new_s":9.9}|})
      ()
  in
  Alcotest.(check int) "only the common leaf gated" 1 o.Bench_gate.gated;
  Alcotest.(check bool) "passes" true o.Bench_gate.passed;
  let o =
    Bench_gate.compare_json
      ~baseline:(gate_json {|{"cases":10,"name":"x"}|})
      ~current:(gate_json {|{"cases":99,"name":"y"}|})
      ()
  in
  Alcotest.(check int) "nothing time-like" 0 o.Bench_gate.gated;
  Alcotest.(check bool) "vacuously passes" true o.Bench_gate.passed;
  (* ratio is gated by name even without the _s suffix *)
  let o =
    Bench_gate.compare_json
      ~baseline:(gate_json {|{"ratio":1.0}|})
      ~current:(gate_json {|{"ratio":10.0}|})
      ()
  in
  Alcotest.(check bool) "ratio regression caught" false o.Bench_gate.passed;
  Alcotest.check_raises "bad factor rejected"
    (Invalid_argument "Bench_gate: factor must be a positive number") (fun () ->
      ignore
        (Bench_gate.compare_json ~factor:0.0
           ~baseline:(gate_json {|{}|})
           ~current:(gate_json {|{}|})
           ()))

let () =
  Alcotest.run "ucp_core"
    [
      ( "pipeline",
        [
          Alcotest.test_case "measure consistency" `Quick test_measure_consistency;
          Alcotest.test_case "measure deterministic" `Quick test_measure_deterministic;
          Alcotest.test_case "compare guarantee" `Quick test_compare_optimized_guarantee;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "sweep cardinality" `Quick test_sweep_cardinality;
          Alcotest.test_case "figure 3" `Quick test_figure3_rows;
          Alcotest.test_case "figure 4" `Quick test_figure4_rows;
          Alcotest.test_case "figure 5" `Quick test_figure5_join;
          Alcotest.test_case "figure 7" `Quick test_figure7_theorem1;
          Alcotest.test_case "figure 8" `Quick test_figure8_rows;
          Alcotest.test_case "tables" `Quick test_tables;
          Alcotest.test_case "quick configs" `Quick test_quick_configs_subset;
        ] );
      ("report", [ Alcotest.test_case "rendering" `Quick test_report_rendering ]);
      ( "parallel",
        [
          Alcotest.test_case "map preserves order" `Quick test_parallel_map_order;
          Alcotest.test_case "map empty" `Quick test_parallel_map_empty;
          Alcotest.test_case "map propagates exceptions" `Quick test_parallel_map_exception;
          Alcotest.test_case "map progress" `Quick test_parallel_map_progress;
          Alcotest.test_case "pool rejects jobs<1" `Quick test_pool_rejects_bad_jobs;
          Alcotest.test_case "sweep deterministic (jobs 4)" `Quick
            test_parallel_sweep_deterministic;
          Alcotest.test_case "sweep degenerate pool (jobs 1)" `Quick
            test_parallel_sweep_single_worker;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "UCP_JOBS parsing" `Quick test_default_jobs_env;
          Alcotest.test_case "try_map outcomes" `Quick test_try_map_outcomes;
          Alcotest.test_case "try_map empty" `Quick test_try_map_empty;
          Alcotest.test_case "progress exception contained" `Quick
            test_map_progress_exception_contained;
          Alcotest.test_case "sweep isolates crashed case" `Quick
            test_sweep_isolates_crashed_case;
          Alcotest.test_case "sweep times out stalled case" `Quick
            test_sweep_times_out_stalled_case;
          Alcotest.test_case "sweep demotes invariant violation" `Quick
            test_sweep_demotes_invariant_violation;
          Alcotest.test_case "sweep audit certifies every record" `Quick
            test_sweep_audit_full;
          Alcotest.test_case "sweep audit demotes corrupt certificate" `Quick
            test_sweep_audit_demotes_corrupt_cert;
          Alcotest.test_case "corrupt certificate needs the audit" `Quick
            test_sweep_corrupt_cert_needs_audit;
          Alcotest.test_case "worker death fails wait" `Quick
            test_pool_worker_death_fails_wait;
          Alcotest.test_case "respawn replaces dead worker" `Quick
            test_pool_respawn_replaces_dead_worker;
          Alcotest.test_case "sweep survives killed worker" `Quick
            test_sweep_survives_killed_worker;
          Alcotest.test_case "checkpoint writes are fsynced" `Quick
            test_checkpoint_writes_are_fsynced;
          Alcotest.test_case "sweep rejects bad timeout" `Quick
            test_sweep_rejects_bad_timeout;
          Alcotest.test_case "UCP_FAULT parsing" `Quick test_fault_env_parsing;
          Alcotest.test_case "checkpoint line round-trip" `Quick
            test_checkpoint_record_roundtrip;
          Alcotest.test_case "checkpoint resume skips journaled cases" `Quick
            test_sweep_checkpoint_resume;
          Alcotest.test_case "checkpoint fingerprint mismatch" `Quick
            test_sweep_checkpoint_fingerprint_mismatch;
          Alcotest.test_case "checkpoint policy round-trip" `Quick
            test_checkpoint_policy_roundtrip;
          Alcotest.test_case "checkpoint rejects LRU journal for multi-policy grid"
            `Quick test_checkpoint_policy_fingerprint_mismatch;
          Alcotest.test_case "degenerate ratios" `Quick
            test_experiments_ratio_degenerate;
        ] );
      ( "bench-gate",
        [
          Alcotest.test_case "tolerance band" `Quick test_bench_gate_band;
          Alcotest.test_case "structural walk" `Quick test_bench_gate_structure;
        ] );
    ]
