(* Tests for Ucp_core: the pipeline façade, the experiment sweep, and
   the figure aggregations. *)

module Config = Ucp_cache.Config
module Tech = Ucp_energy.Tech
module Pipeline = Ucp_core.Pipeline
module Experiments = Ucp_core.Experiments
module Report = Ucp_core.Report

let program = Ucp_workloads.Suite.find "fft1"
let config = Config.make ~assoc:2 ~block_bytes:16 ~capacity:256

let test_measure_consistency () =
  let m = Pipeline.measure program config Tech.nm45 in
  Alcotest.(check bool) "tau positive" true (m.Pipeline.tau > 0);
  Alcotest.(check bool) "acet within wcet" true (m.Pipeline.acet <= m.Pipeline.tau);
  Alcotest.(check bool) "energy positive" true (m.Pipeline.energy_pj > 0.0);
  Alcotest.(check bool) "miss rate sane" true
    (m.Pipeline.miss_rate >= 0.0 && m.Pipeline.miss_rate <= 1.0)

let test_measure_deterministic () =
  let a = Pipeline.measure ~seed:3 program config Tech.nm45 in
  let b = Pipeline.measure ~seed:3 program config Tech.nm45 in
  Alcotest.(check int) "same acet" a.Pipeline.acet b.Pipeline.acet

let test_compare_optimized_guarantee () =
  let cmp = Pipeline.compare_optimized program config Tech.nm45 in
  Alcotest.(check bool) "Theorem 1 via the facade" true
    (cmp.Pipeline.optimized.Pipeline.tau <= cmp.Pipeline.original.Pipeline.tau)

(* small synthetic sweep for the aggregation functions *)
let small_records =
  lazy
    (Experiments.sweep
       ~programs:[ ("fft1", Ucp_workloads.Suite.find "fft1"); ("crc", Ucp_workloads.Suite.find "crc") ]
       ~configs:
         [
           ("a", Config.make ~assoc:2 ~block_bytes:16 ~capacity:256);
           ("b", Config.make ~assoc:2 ~block_bytes:16 ~capacity:512);
           ("c", Config.make ~assoc:2 ~block_bytes:16 ~capacity:1024);
         ]
       ~techs:[ Tech.nm45; Tech.nm32 ] ())

let test_sweep_cardinality () =
  Alcotest.(check int) "2 x 3 x 2 records" 12 (List.length (Lazy.force small_records))

let test_figure3_rows () =
  let rows = Experiments.figure3 (Lazy.force small_records) in
  Alcotest.(check int) "one row per capacity" 3 (List.length rows);
  List.iter
    (fun (r : Experiments.size_row) ->
      Alcotest.(check int) "cases per size" 4 r.Experiments.cases;
      Alcotest.(check bool) "wcet improvement sane" true
        (r.Experiments.wcet_improvement >= -0.001 && r.Experiments.wcet_improvement <= 1.0))
    rows

let test_figure4_rows () =
  let rows = Experiments.figure4 (Lazy.force small_records) in
  List.iter
    (fun (r : Experiments.miss_row) ->
      Alcotest.(check bool) "miss after <= before (on average)" true
        (r.Experiments.miss_after <= r.Experiments.miss_before +. 1e-9))
    rows

let test_figure5_join () =
  let rows = Experiments.figure5 (Lazy.force small_records) in
  (* halves exist for 512 and 1024; quarters for 1024 only *)
  let halves = List.filter (fun (r : Experiments.downsize_row) -> r.Experiments.factor = 2) rows in
  let quarters = List.filter (fun (r : Experiments.downsize_row) -> r.Experiments.factor = 4) rows in
  Alcotest.(check int) "half rows" 2 (List.length halves);
  Alcotest.(check int) "quarter rows" 1 (List.length quarters);
  List.iter
    (fun (r : Experiments.downsize_row) ->
      Alcotest.(check int) "cases joined" 4 r.Experiments.cases)
    rows

let test_figure7_theorem1 () =
  let s = Experiments.figure7 (Lazy.force small_records) in
  Alcotest.(check bool) "no 32nm case grew" true s.Experiments.all_non_increasing;
  Alcotest.(check int) "only 32nm cases" 6 (List.length s.Experiments.ratios)

let test_figure8_rows () =
  let rows = Experiments.figure8 (Lazy.force small_records) in
  List.iter
    (fun (r : Experiments.exec_row) ->
      Alcotest.(check bool) "ratio >= 1" true (r.Experiments.exec_ratio >= 1.0 -. 1e-9);
      Alcotest.(check bool) "max >= avg" true
        (r.Experiments.max_ratio >= r.Experiments.exec_ratio -. 1e-9))
    rows

let test_tables () =
  Alcotest.(check int) "table1 has 37 rows" 37 (List.length (Experiments.table1 ()));
  Alcotest.(check int) "table2 has 36 rows" 36 (List.length (Experiments.table2 ()))

let test_report_rendering () =
  let records = Lazy.force small_records in
  List.iter
    (fun s -> Alcotest.(check bool) "non-empty" true (String.length s > 40))
    [
      Report.table1 ();
      Report.table2 ();
      Report.figure3 records;
      Report.figure4 records;
      Report.figure5 records;
      Report.figure7 records;
      Report.figure8 records;
      Report.headline records;
    ]

let test_quick_configs_subset () =
  List.iter
    (fun (id, c) ->
      Alcotest.(check bool) (id ^ " in table 2") true
        (List.exists (fun (_, c') -> Config.equal c c') Experiments.default_configs))
    Experiments.quick_configs

(* ------------------------------------------------------------------ *)
(* the parallel sweep engine *)

module Parallel = Ucp_core.Parallel

let test_parallel_map_order () =
  let items = Array.init 100 (fun i -> i) in
  let out = Parallel.map ~jobs:4 ~chunk:3 (fun i -> i * i) items in
  Alcotest.(check (array int)) "input order" (Array.map (fun i -> i * i) items) out

let test_parallel_map_empty () =
  Alcotest.(check (array int)) "empty" [||] (Parallel.map ~jobs:2 (fun i -> i) [||])

let test_parallel_map_exception () =
  Alcotest.check_raises "first failure re-raised" (Failure "boom") (fun () ->
      ignore
        (Parallel.map ~jobs:2 ~chunk:1
           (fun i -> if i = 5 then failwith "boom" else i)
           (Array.init 10 (fun i -> i))))

let test_parallel_map_progress () =
  let total_items = 20 in
  let seen = ref [] in
  let out =
    Parallel.map ~jobs:3 ~chunk:4
      ~progress:(fun ~done_ ~total ->
        Alcotest.(check int) "total" total_items total;
        seen := done_ :: !seen)
      (fun i -> i)
      (Array.init total_items (fun i -> i))
  in
  Alcotest.(check int) "all results" total_items (Array.length out);
  let seen = List.rev !seen in
  Alcotest.(check bool) "strictly increasing" true
    (List.for_all2 ( < ) (0 :: List.filteri (fun i _ -> i < List.length seen - 1) seen) seen);
  Alcotest.(check int) "last reports total" total_items
    (List.nth seen (List.length seen - 1))

let test_pool_rejects_bad_jobs () =
  Alcotest.check_raises "jobs 0" (Invalid_argument "Parallel.create: jobs must be positive")
    (fun () -> ignore (Parallel.create ~jobs:0))

(* the ISSUE's headline guarantee: the parallel engine's records are
   identical, record for record, to the sequential sweep's — on a slice
   of the quick-config grid kept small enough for CI *)
let det_programs =
  [ ("fft1", Ucp_workloads.Suite.find "fft1"); ("crc", Ucp_workloads.Suite.find "crc") ]

let det_sequential =
  lazy (Experiments.sweep ~programs:det_programs ~configs:Experiments.quick_configs ())

let check_sweep_equal jobs =
  let seq = Lazy.force det_sequential in
  let par =
    Parallel.sweep ~programs:det_programs ~configs:Experiments.quick_configs ~jobs ()
  in
  Alcotest.(check int) "cardinality" (List.length seq)
    (List.length par.Parallel.records);
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "record %d identical (%s@%s)" i a.Experiments.program_name
           a.Experiments.config_id)
        true (a = b))
    (List.combine seq par.Parallel.records);
  Alcotest.(check bool) "wall time measured" true (par.Parallel.wall_s >= 0.0);
  Alcotest.(check bool) "stage timers populated" true
    (Ucp_core.Pipeline.total_timings par.Parallel.timings > 0.0);
  Alcotest.(check int) "case count" (List.length seq) par.Parallel.cases

let test_parallel_sweep_deterministic () = check_sweep_equal 4
let test_parallel_sweep_single_worker () = check_sweep_equal 1

let () =
  Alcotest.run "ucp_core"
    [
      ( "pipeline",
        [
          Alcotest.test_case "measure consistency" `Quick test_measure_consistency;
          Alcotest.test_case "measure deterministic" `Quick test_measure_deterministic;
          Alcotest.test_case "compare guarantee" `Quick test_compare_optimized_guarantee;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "sweep cardinality" `Quick test_sweep_cardinality;
          Alcotest.test_case "figure 3" `Quick test_figure3_rows;
          Alcotest.test_case "figure 4" `Quick test_figure4_rows;
          Alcotest.test_case "figure 5" `Quick test_figure5_join;
          Alcotest.test_case "figure 7" `Quick test_figure7_theorem1;
          Alcotest.test_case "figure 8" `Quick test_figure8_rows;
          Alcotest.test_case "tables" `Quick test_tables;
          Alcotest.test_case "quick configs" `Quick test_quick_configs_subset;
        ] );
      ("report", [ Alcotest.test_case "rendering" `Quick test_report_rendering ]);
      ( "parallel",
        [
          Alcotest.test_case "map preserves order" `Quick test_parallel_map_order;
          Alcotest.test_case "map empty" `Quick test_parallel_map_empty;
          Alcotest.test_case "map propagates exceptions" `Quick test_parallel_map_exception;
          Alcotest.test_case "map progress" `Quick test_parallel_map_progress;
          Alcotest.test_case "pool rejects jobs<1" `Quick test_pool_rejects_bad_jobs;
          Alcotest.test_case "sweep deterministic (jobs 4)" `Quick
            test_parallel_sweep_deterministic;
          Alcotest.test_case "sweep degenerate pool (jobs 1)" `Quick
            test_parallel_sweep_single_worker;
        ] );
    ]
