(* Tests for Ucp_lp: exact rationals, the two-phase simplex, and the
   branch & bound ILP. *)

module Q = Ucp_lp.Rational
module Simplex = Ucp_lp.Simplex
module Ilp = Ucp_lp.Ilp

let q a b = Q.make a b
let qi = Q.of_int

let q_testable =
  Alcotest.testable (fun ppf v -> Q.pp ppf v) Q.equal

(* ------------------------------------------------------------------ *)
(* Rational *)

let test_normalization () =
  Alcotest.check q_testable "reduce" (q 1 2) (q 2 4);
  Alcotest.check q_testable "sign in numerator" (q (-1) 2) (q 1 (-2));
  Alcotest.check q_testable "zero" Q.zero (q 0 17)

let test_arithmetic () =
  Alcotest.check q_testable "add" (q 5 6) (Q.add (q 1 2) (q 1 3));
  Alcotest.check q_testable "sub" (q 1 6) (Q.sub (q 1 2) (q 1 3));
  Alcotest.check q_testable "mul" (q 1 6) (Q.mul (q 1 2) (q 1 3));
  Alcotest.check q_testable "div" (q 3 2) (Q.div (q 1 2) (q 1 3))

let test_compare () =
  Alcotest.(check int) "lt" (-1) (Q.compare (q 1 3) (q 1 2));
  Alcotest.(check int) "eq" 0 (Q.compare (q 2 4) (q 1 2));
  Alcotest.(check bool) "min" true (Q.equal (q 1 3) (Q.min (q 1 3) (q 1 2)))

let test_floor_ceil () =
  Alcotest.(check int) "floor positive" 1 (Q.floor (q 3 2));
  Alcotest.(check int) "floor negative" (-2) (Q.floor (q (-3) 2));
  Alcotest.(check int) "ceil positive" 2 (Q.ceil (q 3 2));
  Alcotest.(check int) "ceil negative" (-1) (Q.ceil (q (-3) 2));
  Alcotest.(check int) "floor integer" 4 (Q.floor (qi 4))

let test_division_by_zero () =
  Alcotest.check_raises "make 1 0" Division_by_zero (fun () -> ignore (q 1 0));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Q.div Q.one Q.zero))

let test_to_int_exn () =
  Alcotest.(check int) "integer" 7 (Q.to_int_exn (qi 7));
  Alcotest.(check bool) "fraction raises" true
    (try
       ignore (Q.to_int_exn (q 1 2));
       false
     with Invalid_argument _ -> true)

let test_overflow_detected () =
  Alcotest.check_raises "mul overflow" Q.Overflow (fun () ->
      ignore (Q.mul (qi max_int) (qi 3)))

let gen_small_q =
  QCheck2.Gen.(
    let* n = int_range (-50) 50 in
    let* d = int_range 1 20 in
    return (q n d))

let prop_add_commutative =
  QCheck2.Test.make ~name:"addition commutes" ~count:300
    QCheck2.Gen.(pair gen_small_q gen_small_q)
    (fun (a, b) -> Q.equal (Q.add a b) (Q.add b a))

let prop_mul_distributes =
  QCheck2.Test.make ~name:"multiplication distributes over addition" ~count:300
    QCheck2.Gen.(triple gen_small_q gen_small_q gen_small_q)
    (fun (a, b, c) -> Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c)))

let prop_floor_le =
  QCheck2.Test.make ~name:"floor(x) <= x < floor(x)+1" ~count:300 gen_small_q (fun x ->
      Q.compare (qi (Q.floor x)) x <= 0 && Q.compare x (qi (Q.floor x + 1)) < 0)

(* ------------------------------------------------------------------ *)
(* Simplex *)

let solve_max num_vars objective constraints =
  Simplex.maximize { Simplex.num_vars; objective; constraints }

let test_simplex_basic () =
  (* max x + y st x <= 4, y <= 3 -> 7 at (4,3) *)
  match
    solve_max 2 [| Q.one; Q.one |]
      [
        ([| Q.one; Q.zero |], Simplex.Le, qi 4);
        ([| Q.zero; Q.one |], Simplex.Le, qi 3);
      ]
  with
  | Simplex.Optimal { value; assignment; _ } ->
    Alcotest.check q_testable "value" (qi 7) value;
    Alcotest.check q_testable "x" (qi 4) assignment.(0);
    Alcotest.check q_testable "y" (qi 3) assignment.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_fractional_optimum () =
  (* max 3x + 2y st x + y <= 4, x + 3y <= 6 -> x=4,y=0 value 12?
     check: x+y<=4 binds; 3x+2y max at vertex (4,0)=12 or (3,1)=11 -> 12 *)
  match
    solve_max 2 [| qi 3; qi 2 |]
      [
        ([| Q.one; Q.one |], Simplex.Le, qi 4);
        ([| Q.one; qi 3 |], Simplex.Le, qi 6);
      ]
  with
  | Simplex.Optimal { value; _ } -> Alcotest.check q_testable "value" (qi 12) value
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_equality_and_ge () =
  (* max x st x + y = 5, x >= 2, y >= 1  -> x = 4 *)
  match
    solve_max 2 [| Q.one; Q.zero |]
      [
        ([| Q.one; Q.one |], Simplex.Eq, qi 5);
        ([| Q.one; Q.zero |], Simplex.Ge, qi 2);
        ([| Q.zero; Q.one |], Simplex.Ge, qi 1);
      ]
  with
  | Simplex.Optimal { value; _ } -> Alcotest.check q_testable "value" (qi 4) value
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_infeasible () =
  match
    solve_max 1 [| Q.one |]
      [
        ([| Q.one |], Simplex.Ge, qi 5);
        ([| Q.one |], Simplex.Le, qi 2);
      ]
  with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_simplex_unbounded () =
  match solve_max 1 [| Q.one |] [ ([| Q.one |], Simplex.Ge, qi 0) ] with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_simplex_negative_rhs () =
  (* constraint written with a negative rhs: -x <= -3 means x >= 3 *)
  match
    solve_max 1 [| Q.neg Q.one |] [ ([| Q.neg Q.one |], Simplex.Le, qi (-3)) ]
  with
  | Simplex.Optimal { value; _ } -> Alcotest.check q_testable "value" (qi (-3)) value
  | _ -> Alcotest.fail "expected optimal"

let test_minimize () =
  match
    Simplex.minimize
      {
        Simplex.num_vars = 1;
        objective = [| Q.one |];
        constraints = [ ([| Q.one |], Simplex.Ge, qi 2) ];
      }
  with
  | Simplex.Optimal { value; _ } -> Alcotest.check q_testable "value" (qi 2) value
  | _ -> Alcotest.fail "expected optimal"

(* random LPs: verify the reported optimum dominates random feasible
   points of a box-constrained problem *)
let prop_simplex_dominates_feasible_points =
  let gen =
    QCheck2.Gen.(
      let* n = int_range 1 4 in
      let* c = array_repeat n (map Q.of_int (int_range (-5) 5)) in
      let* bounds = array_repeat n (map Q.of_int (int_range 0 6)) in
      return (n, c, bounds))
  in
  QCheck2.Test.make ~name:"simplex optimum dominates box corners" ~count:200 gen
    (fun (n, c, bounds) ->
      let constraints =
        List.init n (fun j ->
            let row = Array.make n Q.zero in
            row.(j) <- Q.one;
            (row, Simplex.Le, bounds.(j)))
      in
      match Simplex.maximize { Simplex.num_vars = n; objective = c; constraints } with
      | Simplex.Optimal { value; _ } ->
        (* optimum of a box problem: sum over j of max(0, c_j) * bound_j *)
        let expected =
          Array.to_list (Array.mapi (fun j cj -> if Q.sign cj > 0 then Q.mul cj bounds.(j) else Q.zero) c)
          |> List.fold_left Q.add Q.zero
        in
        Q.equal value expected
      | _ -> false)

let test_simplex_degenerate_redundant () =
  (* duplicated and redundant rows must not confuse the pivoting *)
  match
    solve_max 2 [| Q.one; Q.one |]
      [
        ([| Q.one; Q.zero |], Simplex.Le, qi 3);
        ([| Q.one; Q.zero |], Simplex.Le, qi 3);
        ([| Q.one; Q.zero |], Simplex.Le, qi 5);
        ([| Q.zero; Q.one |], Simplex.Le, qi 2);
        ([| Q.one; Q.one |], Simplex.Le, qi 10);
      ]
  with
  | Simplex.Optimal { value; _ } -> Alcotest.check q_testable "value" (qi 5) value
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_equality_only () =
  (* fully determined system: x = 2, y = 3 *)
  match
    solve_max 2 [| Q.one; Q.neg Q.one |]
      [
        ([| Q.one; Q.zero |], Simplex.Eq, qi 2);
        ([| Q.zero; Q.one |], Simplex.Eq, qi 3);
      ]
  with
  | Simplex.Optimal { value; assignment; _ } ->
    Alcotest.check q_testable "value" (qi (-1)) value;
    Alcotest.check q_testable "x" (qi 2) assignment.(0);
    Alcotest.check q_testable "y" (qi 3) assignment.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_rational_helpers () =
  Alcotest.check q_testable "abs" (q 1 2) (Q.abs (q (-1) 2));
  Alcotest.(check int) "sign neg" (-1) (Q.sign (q (-3) 7));
  Alcotest.(check int) "sign zero" 0 (Q.sign Q.zero);
  Alcotest.(check bool) "max" true (Q.equal (q 1 2) (Q.max (q 1 3) (q 1 2)));
  Alcotest.(check bool) "is_integer" true (Q.is_integer (qi 9));
  Alcotest.(check bool) "not integer" false (Q.is_integer (q 9 2));
  Alcotest.(check (float 1e-12)) "to_float" 0.5 (Q.to_float (q 1 2))

(* ------------------------------------------------------------------ *)
(* Ilp *)

let test_ilp_rounds_down () =
  (* max x st 2x <= 5 -> LP 2.5, ILP 2 *)
  match
    Ilp.maximize
      {
        Simplex.num_vars = 1;
        objective = [| Q.one |];
        constraints = [ ([| qi 2 |], Simplex.Le, qi 5) ];
      }
  with
  | Ilp.Optimal { value; assignment } ->
    Alcotest.check q_testable "value" (qi 2) value;
    Alcotest.(check int) "x" 2 assignment.(0)
  | _ -> Alcotest.fail "expected optimal"

let test_ilp_knapsack () =
  (* max 5x + 4y st 6x + 5y <= 10, x,y in Z+ -> x=1,y=0 value 5?
     options: (1,0)=5; (0,2)=8. 5*0+4*2=8 with 10<=10 -> 8 *)
  match
    Ilp.maximize
      {
        Simplex.num_vars = 2;
        objective = [| qi 5; qi 4 |];
        constraints = [ ([| qi 6; qi 5 |], Simplex.Le, qi 10) ];
      }
  with
  | Ilp.Optimal { value; _ } -> Alcotest.check q_testable "knapsack" (qi 8) value
  | _ -> Alcotest.fail "expected optimal"

let test_ilp_infeasible () =
  (* 2x = 3 has no integer (or rational-with-x-integral) solution *)
  match
    Ilp.maximize
      {
        Simplex.num_vars = 1;
        objective = [| Q.one |];
        constraints =
          [ ([| qi 2 |], Simplex.Eq, qi 3) ];
      }
  with
  | Ilp.Infeasible -> ()
  | Ilp.Optimal { value; _ } -> Alcotest.failf "expected infeasible, got %s" (Format.asprintf "%a" Q.pp value)
  | Ilp.Unbounded -> Alcotest.fail "expected infeasible, got unbounded"

let test_ilp_deadline () =
  (* an already-expired deadline aborts the branch & bound at its first
     node with Deadline_exceeded, not a wrong answer *)
  let d = Ucp_util.Deadline.after 0.001 in
  Unix.sleepf 0.01;
  Alcotest.check_raises "expired deadline raises"
    Ucp_util.Deadline.Deadline_exceeded (fun () ->
      ignore
        (Ilp.maximize ~deadline:d
           {
             Simplex.num_vars = 2;
             objective = [| qi 5; qi 4 |];
             constraints = [ ([| qi 6; qi 5 |], Simplex.Le, qi 10) ];
           }))

let prop_ilp_below_lp =
  let gen =
    QCheck2.Gen.(
      let* n = int_range 1 3 in
      let* c = array_repeat n (map Q.of_int (int_range 0 5)) in
      let* rows = int_range 1 3 in
      let* constraints =
        list_repeat rows
          (let* coeffs = array_repeat n (map Q.of_int (int_range 0 4)) in
           let* rhs = map Q.of_int (int_range 1 12) in
           return (coeffs, Simplex.Le, rhs))
      in
      return { Simplex.num_vars = n; objective = c; constraints })
  in
  QCheck2.Test.make ~name:"ILP optimum <= LP relaxation" ~count:150 gen (fun p ->
      match (Ilp.maximize p, Simplex.maximize p) with
      | Ilp.Optimal { value = vi; _ }, Simplex.Optimal { value = vl; _ } ->
        Q.compare vi vl <= 0
      | Ilp.Infeasible, Simplex.Infeasible -> true
      | Ilp.Unbounded, Simplex.Unbounded -> true
      | Ilp.Optimal _, Simplex.Unbounded -> true
      | _, _ -> false)

let prop_ilp_assignment_feasible =
  let gen =
    QCheck2.Gen.(
      let* n = int_range 1 3 in
      let* c = array_repeat n (map Q.of_int (int_range (-3) 5)) in
      let* rows = int_range 1 3 in
      let* constraints =
        list_repeat rows
          (let* coeffs = array_repeat n (map Q.of_int (int_range 0 4)) in
           let* rhs = map Q.of_int (int_range 0 12) in
           return (coeffs, Simplex.Le, rhs))
      in
      return { Simplex.num_vars = n; objective = c; constraints })
  in
  QCheck2.Test.make ~name:"ILP assignment satisfies all constraints" ~count:150 gen
    (fun p ->
      match Ilp.maximize p with
      | Ilp.Optimal { assignment; _ } ->
        List.for_all
          (fun (coeffs, op, rhs) ->
            let lhs =
              Array.to_list (Array.mapi (fun j c -> Q.mul c (Q.of_int assignment.(j))) coeffs)
              |> List.fold_left Q.add Q.zero
            in
            match op with
            | Simplex.Le -> Q.compare lhs rhs <= 0
            | Simplex.Ge -> Q.compare lhs rhs >= 0
            | Simplex.Eq -> Q.equal lhs rhs)
          p.Simplex.constraints
        && Array.for_all (fun x -> x >= 0) assignment
      | Ilp.Infeasible | Ilp.Unbounded -> true)

(* ------------------------------------------------------------------ *)
(* certification: every Optimal answer carries a dual certificate the
   independent checker must accept, and corrupted certificates must be
   rejected *)

module Verify = Ucp_verify

let certify ?minimize p = function
  | Simplex.Optimal sol -> (
    match Verify.certify_lp ?minimize p sol with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "certificate rejected: %s" msg)
  | _ -> Alcotest.fail "expected optimal"

let test_certificates_known () =
  let p1 =
    {
      Simplex.num_vars = 2;
      objective = [| Q.one; Q.one |];
      constraints =
        [
          ([| Q.one; Q.zero |], Simplex.Le, qi 4);
          ([| Q.zero; Q.one |], Simplex.Le, qi 3);
        ];
    }
  in
  certify p1 (Simplex.maximize p1);
  let p2 =
    {
      Simplex.num_vars = 2;
      objective = [| Q.one; Q.zero |];
      constraints =
        [
          ([| Q.one; Q.one |], Simplex.Eq, qi 5);
          ([| Q.one; Q.zero |], Simplex.Ge, qi 2);
          ([| Q.zero; Q.one |], Simplex.Ge, qi 1);
        ];
    }
  in
  certify p2 (Simplex.maximize p2);
  (* a negative rhs flips the row during normalization; the extracted
     dual must be flipped back *)
  let p3 =
    {
      Simplex.num_vars = 1;
      objective = [| Q.neg Q.one |];
      constraints = [ ([| Q.neg Q.one |], Simplex.Le, qi (-3)) ];
    }
  in
  certify p3 (Simplex.maximize p3);
  let p4 =
    {
      Simplex.num_vars = 1;
      objective = [| Q.one |];
      constraints = [ ([| Q.one |], Simplex.Ge, qi 2) ];
    }
  in
  certify ~minimize:true p4 (Simplex.minimize p4)

let test_corrupted_certificates_rejected () =
  let p =
    {
      Simplex.num_vars = 2;
      objective = [| qi 3; qi 2 |];
      constraints =
        [
          ([| Q.one; Q.one |], Simplex.Le, qi 4);
          ([| Q.one; qi 3 |], Simplex.Le, qi 6);
        ];
    }
  in
  match Simplex.maximize p with
  | Simplex.Optimal sol ->
    let reject field mutated =
      match Verify.certify_lp p mutated with
      | Error msg ->
        Alcotest.(check bool)
          (field ^ " names an lp obligation")
          true
          (String.length msg >= 3 && String.sub msg 0 3 = "lp-")
      | Ok () -> Alcotest.failf "corrupted %s accepted" field
    in
    reject "dual"
      { sol with Simplex.dual = Array.map (fun y -> Q.add y Q.one) sol.Simplex.dual };
    reject "value" { sol with Simplex.value = Q.add sol.Simplex.value Q.one };
    reject "assignment"
      {
        sol with
        Simplex.assignment =
          Array.map (fun x -> Q.add x Q.one) sol.Simplex.assignment;
      }
  | _ -> Alcotest.fail "expected optimal"

(* general LPs: mixed operators, signed coefficients and rhs — the
   outcome may be optimal, infeasible or unbounded, and every optimal
   answer must certify *)
let gen_general_lp =
  QCheck2.Gen.(
    let* n = int_range 1 4 in
    let* c = array_repeat n (map Q.of_int (int_range (-5) 5)) in
    let* rows = int_range 1 4 in
    let* constraints =
      list_repeat rows
        (let* coeffs = array_repeat n (map Q.of_int (int_range (-4) 4)) in
         let* op = oneofl [ Simplex.Le; Simplex.Ge; Simplex.Eq ] in
         let* rhs = map Q.of_int (int_range (-10) 12) in
         return (coeffs, op, rhs))
    in
    return { Simplex.num_vars = n; objective = c; constraints })

let prop_lp_certified =
  QCheck2.Test.make ~name:"every optimal maximize answer certifies" ~count:300
    gen_general_lp (fun p ->
      match Simplex.maximize p with
      | Simplex.Optimal sol -> Result.is_ok (Verify.certify_lp p sol)
      | Simplex.Infeasible | Simplex.Unbounded -> true)

let prop_lp_minimize_certified =
  QCheck2.Test.make ~name:"every optimal minimize answer certifies" ~count:300
    gen_general_lp (fun p ->
      match Simplex.minimize p with
      | Simplex.Optimal sol -> Result.is_ok (Verify.certify_lp ~minimize:true p sol)
      | Simplex.Infeasible | Simplex.Unbounded -> true)

let prop_ilp_certified =
  QCheck2.Test.make ~name:"every optimal ILP answer certifies" ~count:150
    gen_general_lp (fun p ->
      (* a general random LP can legitimately spend hours of
         exact-rational pivoting inside the default 100k-node budget
         (node cost grows with branching depth); a node cap plus a
         per-instance deadline keeps the run bounded, and aborted
         instances are skipped below either way *)
      match
        Ilp.maximize ~max_nodes:2_000 ~deadline:(Ucp_util.Deadline.after 2.0) p
      with
      | Ilp.Optimal { value; assignment } ->
        Result.is_ok (Verify.certify_ilp p ~value ~assignment)
      | Ilp.Infeasible | Ilp.Unbounded -> true
      | exception Ilp.Node_budget_exhausted _ -> true
      | exception Ucp_util.Deadline.Deadline_exceeded -> true)

let test_node_budget_exhausted () =
  (* the knapsack relaxation is fractional, so branch & bound needs at
     least one node: a zero budget must raise, not return a wrong answer *)
  let p =
    {
      Simplex.num_vars = 2;
      objective = [| qi 5; qi 4 |];
      constraints = [ ([| qi 6; qi 5 |], Simplex.Le, qi 10) ];
    }
  in
  (try
     ignore (Ilp.maximize ~max_nodes:0 p);
     Alcotest.fail "expected Node_budget_exhausted"
   with Ilp.Node_budget_exhausted n ->
     Alcotest.(check bool) "node count positive" true (n >= 1));
  let printed = Printexc.to_string (Ilp.Node_budget_exhausted 7) in
  Alcotest.(check bool) "registered printer" true
    (printed = "Ilp.Node_budget_exhausted: 7 branch-and-bound nodes")

let () =
  Alcotest.run "ucp_lp"
    [
      ( "rational",
        [
          Alcotest.test_case "normalization" `Quick test_normalization;
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "floor/ceil" `Quick test_floor_ceil;
          Alcotest.test_case "division by zero" `Quick test_division_by_zero;
          Alcotest.test_case "to_int_exn" `Quick test_to_int_exn;
          Alcotest.test_case "overflow" `Quick test_overflow_detected;
          Alcotest.test_case "helpers" `Quick test_rational_helpers;
          QCheck_alcotest.to_alcotest prop_add_commutative;
          QCheck_alcotest.to_alcotest prop_mul_distributes;
          QCheck_alcotest.to_alcotest prop_floor_le;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "basic" `Quick test_simplex_basic;
          Alcotest.test_case "vertex optimum" `Quick test_simplex_fractional_optimum;
          Alcotest.test_case "equality + ge" `Quick test_simplex_equality_and_ge;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "negative rhs" `Quick test_simplex_negative_rhs;
          Alcotest.test_case "minimize" `Quick test_minimize;
          Alcotest.test_case "degenerate/redundant" `Quick test_simplex_degenerate_redundant;
          Alcotest.test_case "equality only" `Quick test_simplex_equality_only;
          QCheck_alcotest.to_alcotest prop_simplex_dominates_feasible_points;
        ] );
      ( "ilp",
        [
          Alcotest.test_case "rounds down" `Quick test_ilp_rounds_down;
          Alcotest.test_case "knapsack" `Quick test_ilp_knapsack;
          Alcotest.test_case "infeasible" `Quick test_ilp_infeasible;
          Alcotest.test_case "deadline" `Quick test_ilp_deadline;
          Alcotest.test_case "node budget" `Quick test_node_budget_exhausted;
          QCheck_alcotest.to_alcotest prop_ilp_below_lp;
          QCheck_alcotest.to_alcotest prop_ilp_assignment_feasible;
        ] );
      ( "certification",
        [
          Alcotest.test_case "known problems certify" `Quick test_certificates_known;
          Alcotest.test_case "corrupted certificates rejected" `Quick
            test_corrupted_certificates_rejected;
          QCheck_alcotest.to_alcotest prop_lp_certified;
          QCheck_alcotest.to_alcotest prop_lp_minimize_certified;
          QCheck_alcotest.to_alcotest prop_ilp_certified;
        ] );
    ]
