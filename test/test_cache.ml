(* Tests for Ucp_cache: configurations, the concrete LRU cache, and the
   abstract must/may domains — including the soundness sandwich
   (must ⊆ concrete ⊆ may) on random access sequences. *)

module Config = Ucp_cache.Config
module Concrete = Ucp_cache.Concrete
module Abstract = Ucp_cache.Abstract

let cfg ?(assoc = 2) ?(block = 16) ?(cap = 64) () =
  Config.make ~assoc ~block_bytes:block ~capacity:cap

(* ------------------------------------------------------------------ *)
(* Config *)

let test_config_derivation () =
  let c = cfg ~assoc:2 ~block:16 ~cap:256 () in
  Alcotest.(check int) "sets" 8 c.Config.sets

let test_config_validation () =
  Alcotest.(check bool) "capacity mismatch" true
    (try
       ignore (Config.make ~assoc:2 ~block_bytes:16 ~capacity:100);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "block not multiple of 4" true
    (try
       ignore (Config.make ~assoc:1 ~block_bytes:10 ~capacity:100);
       false
     with Invalid_argument _ -> true)

let test_paper_configs () =
  Alcotest.(check int) "36 configurations" 36 (List.length Config.paper_configs);
  let k1 = List.assoc "k1" Config.paper_configs in
  Alcotest.(check int) "k1 assoc" 1 k1.Config.assoc;
  Alcotest.(check int) "k1 block" 16 k1.Config.block_bytes;
  Alcotest.(check int) "k1 capacity" 256 k1.Config.capacity;
  let k36 = List.assoc "k36" Config.paper_configs in
  Alcotest.(check int) "k36 assoc" 4 k36.Config.assoc;
  Alcotest.(check int) "k36 block" 32 k36.Config.block_bytes;
  Alcotest.(check int) "k36 capacity" 8192 k36.Config.capacity

let test_scaled_capacity () =
  let c = cfg ~assoc:2 ~block:16 ~cap:256 () in
  (match Config.half_capacity c with
  | Some h -> Alcotest.(check int) "half" 128 h.Config.capacity
  | None -> Alcotest.fail "half should exist");
  let tiny = cfg ~assoc:2 ~block:16 ~cap:32 () in
  Alcotest.(check bool) "no half below one set" true (Config.half_capacity tiny = None)

(* ------------------------------------------------------------------ *)
(* Concrete *)

let test_lru_eviction_order () =
  (* one set, two ways *)
  let c = Concrete.create (cfg ~assoc:2 ~block:16 ~cap:32 ()) in
  Alcotest.(check bool) "miss 1" true (Concrete.access c 0 = Concrete.Miss None);
  Alcotest.(check bool) "miss 2" true (Concrete.access c 1 = Concrete.Miss None);
  Alcotest.(check bool) "hit refreshes" true (Concrete.access c 0 = Concrete.Hit);
  (* now LRU is 1 *)
  Alcotest.(check bool) "evicts LRU" true (Concrete.access c 2 = Concrete.Miss (Some 1));
  Alcotest.(check (list int)) "contents" [ 0; 2 ] (Concrete.contents c)

let test_set_isolation () =
  let c = Concrete.create (cfg ~assoc:1 ~block:16 ~cap:32 ()) in
  ignore (Concrete.access c 0);
  ignore (Concrete.access c 1);
  Alcotest.(check bool) "different sets coexist" true
    (Concrete.contains c 0 && Concrete.contains c 1)

let test_fill_refresh () =
  let c = Concrete.create (cfg ~assoc:2 ~block:16 ~cap:32 ()) in
  ignore (Concrete.access c 0);
  ignore (Concrete.access c 1);
  ignore (Concrete.fill c 0);
  (* 0 is MRU again; inserting 2 must evict 1 *)
  Alcotest.(check bool) "fill refreshed recency" true
    (Concrete.access c 2 = Concrete.Miss (Some 1))

let test_age_tracking () =
  let c = Concrete.create (cfg ~assoc:4 ~block:16 ~cap:64 ()) in
  ignore (Concrete.access c 0);
  ignore (Concrete.access c 4);
  ignore (Concrete.access c 8);
  Alcotest.(check (option int)) "age of most recent" (Some 0) (Concrete.age c 8);
  Alcotest.(check (option int)) "age of oldest" (Some 2) (Concrete.age c 0);
  Alcotest.(check (option int)) "absent" None (Concrete.age c 12)

let test_copy_independent () =
  let c = Concrete.create (cfg ()) in
  ignore (Concrete.access c 0);
  let d = Concrete.copy c in
  ignore (Concrete.access d 4);
  Alcotest.(check bool) "copy does not leak back" false (Concrete.contains c 4)

(* ------------------------------------------------------------------ *)
(* Abstract: unit behaviour *)

let test_must_update_basics () =
  let config = cfg ~assoc:2 ~block:16 ~cap:32 () in
  let m = Abstract.empty config Abstract.Must in
  let m = Abstract.update m 0 in
  let m = Abstract.update m 2 in
  Alcotest.(check (option int)) "recent age 0" (Some 0) (Abstract.age m 2);
  Alcotest.(check (option int)) "older age 1" (Some 1) (Abstract.age m 0);
  let m = Abstract.update m 4 in
  Alcotest.(check bool) "evicted from must" false (Abstract.contains m 0)

let test_must_join_intersects () =
  let config = cfg ~assoc:2 ~block:16 ~cap:32 () in
  let a = Abstract.update (Abstract.empty config Abstract.Must) 0 in
  let b = Abstract.update (Abstract.empty config Abstract.Must) 2 in
  let j = Abstract.join a b in
  Alcotest.(check bool) "intersection empty" true (Abstract.blocks j = [])

let test_must_join_max_age () =
  let config = cfg ~assoc:2 ~block:16 ~cap:32 () in
  let a = Abstract.update (Abstract.empty config Abstract.Must) 0 in
  (* in b, 0 is older *)
  let b =
    Abstract.update (Abstract.update (Abstract.empty config Abstract.Must) 0) 2
  in
  let j = Abstract.join a b in
  Alcotest.(check (option int)) "max age kept" (Some 1) (Abstract.age j 0)

let test_may_join_unions () =
  let config = cfg ~assoc:2 ~block:16 ~cap:32 () in
  let a = Abstract.update (Abstract.empty config Abstract.May) 0 in
  let b = Abstract.update (Abstract.empty config Abstract.May) 2 in
  let j = Abstract.join a b in
  Alcotest.(check (list int)) "union" [ 0; 2 ] (Abstract.blocks j)

let test_victims () =
  let config = cfg ~assoc:2 ~block:16 ~cap:32 () in
  let m = Abstract.update (Abstract.update (Abstract.empty config Abstract.Must) 0) 2 in
  Alcotest.(check (list int)) "victim is the oldest" [ 0 ] (Abstract.victims m 4);
  Alcotest.(check (list int)) "no victim on refresh" [] (Abstract.victims m 2)

let test_join_kind_mismatch () =
  let config = cfg () in
  Alcotest.(check bool) "kind mismatch raises" true
    (try
       ignore
         (Abstract.join
            (Abstract.empty config Abstract.Must)
            (Abstract.empty config Abstract.May));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Persistence *)

module Persistence = Ucp_cache.Persistence

let test_persistence_small_scope () =
  (* two blocks in a 2-way set: both persistent *)
  let config = cfg ~assoc:2 ~block:16 ~cap:32 () in
  Alcotest.(check (list int)) "both persist" [ 0; 2 ]
    (Persistence.analyze_scope config [ 0; 2; 0; 2 ])

let test_persistence_overflow () =
  (* three blocks cycling through a 2-way set: none persistent *)
  let config = cfg ~assoc:2 ~block:16 ~cap:32 () in
  Alcotest.(check (list int)) "none persist" []
    (Persistence.analyze_scope config [ 0; 2; 4 ])

let test_persistence_disjoint_sets () =
  (* blocks in different sets never conflict *)
  let config = cfg ~assoc:1 ~block:16 ~cap:32 () in
  Alcotest.(check (list int)) "both persist" [ 0; 1 ]
    (Persistence.analyze_scope config [ 0; 1; 0; 1 ])

let test_persistence_update_saturates () =
  let config = cfg ~assoc:2 ~block:16 ~cap:32 () in
  let st = List.fold_left Persistence.update (Persistence.empty config) [ 0; 2; 4 ] in
  (* 0 was pushed past the associativity: seen but not persistent *)
  Alcotest.(check bool) "0 seen" true (List.mem 0 (Persistence.seen st));
  Alcotest.(check bool) "0 not persistent" false (Persistence.is_persistent st 0);
  Alcotest.(check bool) "4 persistent" true (Persistence.is_persistent st 4)

(* soundness: a block reported persistent for a scope trace misses at
   most once when the concrete cache loops over that trace *)
let prop_persistent_blocks_miss_once =
  QCheck2.Test.make ~name:"persistent blocks miss at most once over repeated scopes"
    ~count:300
    QCheck2.Gen.(pair Ucp_testlib.gen_config Ucp_testlib.gen_access_sequence)
    (fun (config, trace) ->
      let persistent = Persistence.analyze_scope config trace in
      let c = Concrete.create config in
      let misses = Hashtbl.create 8 in
      for _ = 1 to 4 do
        List.iter
          (fun mb ->
            match Concrete.access c mb with
            | Concrete.Hit -> ()
            | Concrete.Miss _ ->
              Hashtbl.replace misses mb (1 + (try Hashtbl.find misses mb with Not_found -> 0)))
          trace
      done;
      List.for_all
        (fun mb -> (try Hashtbl.find misses mb with Not_found -> 0) <= 1)
        persistent)

(* ------------------------------------------------------------------ *)
(* FIFO policy *)

let test_fifo_no_reorder_on_hit () =
  let c = Concrete.create ~policy:Concrete.Fifo (cfg ~assoc:2 ~block:16 ~cap:32 ()) in
  ignore (Concrete.access c 0);
  ignore (Concrete.access c 2);
  ignore (Concrete.access c 0);
  (* under FIFO the hit on 0 did not refresh it: 0 is still the oldest *)
  Alcotest.(check bool) "evicts first-in" true (Concrete.access c 4 = Concrete.Miss (Some 0))

let test_lru_vs_fifo_divergence () =
  let seq = [ 0; 2; 0; 4; 0; 2 ] in
  let run policy =
    let c = Concrete.create ~policy (cfg ~assoc:2 ~block:16 ~cap:32 ()) in
    List.map (fun mb -> Concrete.access c mb = Concrete.Hit) seq
  in
  Alcotest.(check bool) "policies diverge on this trace" true
    (run Concrete.Lru <> run Concrete.Fifo)

let prop_fifo_hits_subset_size =
  QCheck2.Test.make ~name:"fifo keeps at most assoc blocks per set" ~count:200
    QCheck2.Gen.(pair Ucp_testlib.gen_config Ucp_testlib.gen_access_sequence)
    (fun (config, seq) ->
      let c = Concrete.create ~policy:Concrete.Fifo config in
      List.iter (fun mb -> ignore (Concrete.access c mb)) seq;
      let ok = ref true in
      for s = 0 to config.Config.sets - 1 do
        if List.length (Concrete.resident_in_set c s) > config.Config.assoc then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Abstract vs Concrete: soundness properties *)

let run_concrete config seq =
  let c = Concrete.create config in
  List.iter (fun mb -> ignore (Concrete.access c mb)) seq;
  c

let run_abstract config kind seq =
  List.fold_left Abstract.update (Abstract.empty config kind) seq

let prop_must_sound =
  QCheck2.Test.make ~name:"must state is a subset of the concrete cache" ~count:400
    QCheck2.Gen.(pair Ucp_testlib.gen_config Ucp_testlib.gen_access_sequence)
    (fun (config, seq) ->
      let c = run_concrete config seq in
      let m = run_abstract config Abstract.Must seq in
      List.for_all (fun mb -> Concrete.contains c mb) (Abstract.blocks m))

let prop_may_complete =
  QCheck2.Test.make ~name:"concrete cache is a subset of the may state" ~count:400
    QCheck2.Gen.(pair Ucp_testlib.gen_config Ucp_testlib.gen_access_sequence)
    (fun (config, seq) ->
      let c = run_concrete config seq in
      let m = run_abstract config Abstract.May seq in
      List.for_all (fun mb -> Abstract.contains m mb) (Concrete.contents c))

let prop_must_age_upper_bound =
  QCheck2.Test.make ~name:"must ages bound concrete ages from above" ~count:400
    QCheck2.Gen.(pair Ucp_testlib.gen_config Ucp_testlib.gen_access_sequence)
    (fun (config, seq) ->
      let c = run_concrete config seq in
      let m = run_abstract config Abstract.Must seq in
      List.for_all
        (fun mb ->
          match (Concrete.age c mb, Abstract.age m mb) with
          | Some concrete, Some bound -> concrete <= bound
          | None, Some _ -> false
          | _, None -> true)
        (Abstract.blocks m))

(* Join soundness: the join over-approximates both inputs in the right
   direction (must: subset of both; may: superset of both). *)
let prop_join_direction =
  QCheck2.Test.make ~name:"join keeps must below and may above its inputs" ~count:300
    QCheck2.Gen.(
      triple Ucp_testlib.gen_config Ucp_testlib.gen_access_sequence
        Ucp_testlib.gen_access_sequence)
    (fun (config, s1, s2) ->
      let must1 = run_abstract config Abstract.Must s1 in
      let must2 = run_abstract config Abstract.Must s2 in
      let mj = Abstract.join must1 must2 in
      let may1 = run_abstract config Abstract.May s1 in
      let may2 = run_abstract config Abstract.May s2 in
      let yj = Abstract.join may1 may2 in
      List.for_all
        (fun mb -> Abstract.contains must1 mb && Abstract.contains must2 mb)
        (Abstract.blocks mj)
      && List.for_all (fun mb -> Abstract.contains yj mb) (Abstract.blocks may1)
      && List.for_all (fun mb -> Abstract.contains yj mb) (Abstract.blocks may2))

(* A must-hit prediction must be a concrete hit for any continuation:
   classify before an access using the must state, then check the
   concrete outcome. *)
let prop_must_hits_are_hits =
  QCheck2.Test.make ~name:"must-predicted hits are concrete hits" ~count:400
    QCheck2.Gen.(pair Ucp_testlib.gen_config Ucp_testlib.gen_access_sequence)
    (fun (config, seq) ->
      let c = Concrete.create config in
      let m = ref (Abstract.empty config Abstract.Must) in
      List.for_all
        (fun mb ->
          let predicted_hit = Abstract.contains !m mb in
          let actual = Concrete.access c mb in
          m := Abstract.update !m mb;
          (not predicted_hit) || actual = Concrete.Hit)
        seq)

let prop_may_misses_are_misses =
  QCheck2.Test.make ~name:"may-predicted misses are concrete misses" ~count:400
    QCheck2.Gen.(pair Ucp_testlib.gen_config Ucp_testlib.gen_access_sequence)
    (fun (config, seq) ->
      let c = Concrete.create config in
      let m = ref (Abstract.empty config Abstract.May) in
      List.for_all
        (fun mb ->
          let predicted_miss = not (Abstract.contains !m mb) in
          let actual = Concrete.access c mb in
          m := Abstract.update !m mb;
          (not predicted_miss) || actual <> Concrete.Hit)
        seq)

(* ------------------------------------------------------------------ *)
(* Policy-parametric soundness: the same walk, under each policy's
   domains with the hint feedback the analysis uses — the access's own
   classification (must-hit / may-miss / unknown) is fed back into the
   abstract update, exactly as Analysis.transfer does. *)

let prop_policy_walk_sound policy =
  let pname = Ucp_policy.to_string policy in
  QCheck2.Test.make
    ~name:(pname ^ ": hint-driven must/may walk is sound vs concrete")
    ~count:400
    QCheck2.Gen.(pair Ucp_testlib.gen_config Ucp_testlib.gen_access_sequence)
    (fun (config, seq) ->
      let c = Concrete.create ~policy config in
      let must = ref (Abstract.empty ~policy config Abstract.Must) in
      let may = ref (Abstract.empty ~policy config Abstract.May) in
      let sound = ref true in
      List.iter
        (fun mb ->
          let predicted_hit = Abstract.contains !must mb in
          let predicted_miss = not (Abstract.contains !may mb) in
          let hint =
            if predicted_hit then Ucp_policy.Hit
            else if predicted_miss then Ucp_policy.Miss
            else Ucp_policy.Unknown
          in
          let actual = Concrete.access c mb in
          must := Abstract.update ~hint !must mb;
          may := Abstract.update ~hint !may mb;
          if predicted_hit && actual <> Concrete.Hit then sound := false;
          if predicted_miss && actual = Concrete.Hit then sound := false)
        seq;
      (* the sandwich must also hold in the final state *)
      !sound
      && List.for_all (fun mb -> Concrete.contains c mb) (Abstract.blocks !must)
      && List.for_all (fun mb -> Abstract.contains !may mb) (Concrete.contents c))

let prop_policy_fill_sound policy =
  let pname = Ucp_policy.to_string policy in
  QCheck2.Test.make
    ~name:(pname ^ ": prefetch fills stay sound vs concrete")
    ~count:300
    QCheck2.Gen.(
      triple Ucp_testlib.gen_config Ucp_testlib.gen_access_sequence
        (list_size (int_range 1 20) (int_bound 12)))
    (fun (config, seq, fills) ->
      (* interleave demand accesses and prefetch fills; the abstract
         fill transfer must keep the sandwich *)
      let c = Concrete.create ~policy config in
      let must = ref (Abstract.empty ~policy config Abstract.Must) in
      let may = ref (Abstract.empty ~policy config Abstract.May) in
      let hint_for mb =
        if Abstract.contains !must mb then Ucp_policy.Hit
        else if not (Abstract.contains !may mb) then Ucp_policy.Miss
        else Ucp_policy.Unknown
      in
      List.iteri
        (fun i mb ->
          if i mod 3 = 2 && fills <> [] then begin
            let fb = List.nth fills (i mod List.length fills) in
            let fhint = hint_for fb in
            ignore (Concrete.fill c fb);
            must := Abstract.fill ~hint:fhint !must fb;
            may := Abstract.fill ~hint:fhint !may fb
          end;
          let hint = hint_for mb in
          ignore (Concrete.access c mb);
          must := Abstract.update ~hint !must mb;
          may := Abstract.update ~hint !may mb)
        seq;
      List.for_all (fun mb -> Concrete.contains c mb) (Abstract.blocks !must)
      && List.for_all (fun mb -> Abstract.contains !may mb) (Concrete.contents c))

(* ------------------------------------------------------------------ *)
(* Representation equivalence: the flat age-vector domains must be
   observationally identical to the functional reference — same
   membership, ages, victims, joins and ordering after any interleaving
   of updates and fills under any hints.  Blocks are shifted up to a
   layout-like anchor so the dense [base] offset translation is on the
   path. *)

let prop_flat_equiv policy =
  let pname = Ucp_policy.to_string policy in
  let shift = 1 lsl 20 in
  let universe = 14 in
  QCheck2.Test.make
    ~name:(pname ^ ": flat age vectors match the functional domains")
    ~count:400
    QCheck2.Gen.(
      triple Ucp_testlib.gen_config Ucp_testlib.gen_access_sequence
        Ucp_testlib.gen_access_sequence)
    (fun (config, s1, s2) ->
      let s1 = List.map (( + ) shift) s1 and s2 = List.map (( + ) shift) s2 in
      let agree func flat =
        Abstract.blocks func = Abstract.blocks flat
        && List.for_all
             (fun idx ->
               let mb = shift + idx in
               Abstract.age func mb = Abstract.age flat mb
               && Abstract.contains func mb = Abstract.contains flat mb)
             (List.init universe Fun.id)
      in
      let hints = [| Ucp_policy.Hit; Ucp_policy.Miss; Ucp_policy.Unknown |] in
      let walk kind seq =
        let step i (func, flat) mb =
          let hint = hints.(i mod 3) in
          let sorted l = List.sort compare l in
          if
            sorted (Abstract.victims ~hint func mb)
            <> sorted (Abstract.victims ~hint flat mb)
          then failwith "victims diverge";
          let f = if i mod 2 = 0 then Abstract.update else Abstract.fill in
          let func = f ~hint func mb and flat = f ~hint flat mb in
          if not (agree func flat) then failwith "states diverge";
          (func, flat)
        in
        List.fold_left
          (fun (i, st) mb -> (i + 1, step i st mb))
          ( 0,
            ( Abstract.empty ~policy config kind,
              Abstract.empty_flat ~policy ~base:shift ~universe config kind ) )
          seq
        |> snd
      in
      List.for_all
        (fun kind ->
          let func1, flat1 = walk kind s1 in
          let func2, flat2 = walk kind s2 in
          agree (Abstract.join func1 func2) (Abstract.join flat1 flat2)
          && Abstract.leq func1 func2 = Abstract.leq flat1 flat2
          && Abstract.leq func2 func1 = Abstract.leq flat2 flat1)
        [ Abstract.Must; Abstract.May ])

(* the destructive hot-loop variants are the same functions *)
let prop_flat_inplace_equiv policy =
  let pname = Ucp_policy.to_string policy in
  let shift = 1 lsl 20 in
  let universe = 14 in
  QCheck2.Test.make
    ~name:(pname ^ ": in-place updates match the persistent ones")
    ~count:300
    QCheck2.Gen.(pair Ucp_testlib.gen_config Ucp_testlib.gen_access_sequence)
    (fun (config, seq) ->
      let seq = List.map (( + ) shift) seq in
      let hints = [| Ucp_policy.Hit; Ucp_policy.Miss; Ucp_policy.Unknown |] in
      List.for_all
        (fun kind ->
          List.for_all
            (fun mk ->
              let pure = ref (mk kind) in
              let ip = Abstract.copy (mk kind) in
              List.iteri
                (fun i mb ->
                  let hint = hints.(i mod 3) in
                  if i mod 2 = 0 then begin
                    pure := Abstract.update ~hint !pure mb;
                    Abstract.update_ip ~hint ip mb
                  end
                  else begin
                    pure := Abstract.fill ~hint !pure mb;
                    Abstract.fill_ip ~hint ip mb
                  end)
                seq;
              Abstract.equal !pure ip)
            [
              Abstract.empty ~policy config;
              Abstract.empty_flat ~policy ~base:shift ~universe config;
            ])
        [ Abstract.Must; Abstract.May ])

let () =
  Alcotest.run "ucp_cache"
    [
      ( "config",
        [
          Alcotest.test_case "derivation" `Quick test_config_derivation;
          Alcotest.test_case "validation" `Quick test_config_validation;
          Alcotest.test_case "paper configs" `Quick test_paper_configs;
          Alcotest.test_case "scaled capacity" `Quick test_scaled_capacity;
        ] );
      ( "concrete",
        [
          Alcotest.test_case "lru eviction" `Quick test_lru_eviction_order;
          Alcotest.test_case "set isolation" `Quick test_set_isolation;
          Alcotest.test_case "fill refresh" `Quick test_fill_refresh;
          Alcotest.test_case "age tracking" `Quick test_age_tracking;
          Alcotest.test_case "copy" `Quick test_copy_independent;
        ] );
      ( "abstract",
        [
          Alcotest.test_case "must update" `Quick test_must_update_basics;
          Alcotest.test_case "must join intersects" `Quick test_must_join_intersects;
          Alcotest.test_case "must join max age" `Quick test_must_join_max_age;
          Alcotest.test_case "may join unions" `Quick test_may_join_unions;
          Alcotest.test_case "victims" `Quick test_victims;
          Alcotest.test_case "kind mismatch" `Quick test_join_kind_mismatch;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "small scope" `Quick test_persistence_small_scope;
          Alcotest.test_case "overflow" `Quick test_persistence_overflow;
          Alcotest.test_case "disjoint sets" `Quick test_persistence_disjoint_sets;
          Alcotest.test_case "saturation" `Quick test_persistence_update_saturates;
          QCheck_alcotest.to_alcotest prop_persistent_blocks_miss_once;
        ] );
      ( "fifo",
        [
          Alcotest.test_case "no reorder on hit" `Quick test_fifo_no_reorder_on_hit;
          Alcotest.test_case "lru/fifo diverge" `Quick test_lru_vs_fifo_divergence;
          QCheck_alcotest.to_alcotest prop_fifo_hits_subset_size;
        ] );
      ( "soundness",
        [
          QCheck_alcotest.to_alcotest prop_must_sound;
          QCheck_alcotest.to_alcotest prop_may_complete;
          QCheck_alcotest.to_alcotest prop_must_age_upper_bound;
          QCheck_alcotest.to_alcotest prop_join_direction;
          QCheck_alcotest.to_alcotest prop_must_hits_are_hits;
          QCheck_alcotest.to_alcotest prop_may_misses_are_misses;
        ] );
      ( "policies",
        List.concat_map
          (fun policy ->
            [
              QCheck_alcotest.to_alcotest (prop_policy_walk_sound policy);
              QCheck_alcotest.to_alcotest (prop_policy_fill_sound policy);
            ])
          Ucp_policy.all );
      ( "domains",
        List.concat_map
          (fun policy ->
            [
              QCheck_alcotest.to_alcotest (prop_flat_equiv policy);
              QCheck_alcotest.to_alcotest (prop_flat_inplace_equiv policy);
            ])
          Ucp_policy.all );
    ]
