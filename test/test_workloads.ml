(* Tests for Ucp_workloads: the DSL compiler details and the health of
   all 37 suite programs. *)

module Program = Ucp_isa.Program
module Cfgraph = Ucp_cfg.Cfgraph
module Loops = Ucp_cfg.Loops
module Vivu = Ucp_cfg.Vivu
module Suite = Ucp_workloads.Suite
module Dsl = Ucp_workloads.Dsl

(* ------------------------------------------------------------------ *)
(* Dsl details *)

let test_sequence_merges_into_one_block () =
  let p = Dsl.compile ~name:"seq" [ Dsl.compute 2; Dsl.compute 3 ] in
  Alcotest.(check int) "one block" 1 (Program.block_count p);
  Alcotest.(check int) "body + return" 6 (Program.total_slots p)

let test_if_structure () =
  let p = Dsl.compile ~name:"if" [ Dsl.if_ [ Dsl.compute 1 ] [ Dsl.compute 2 ] ] in
  (* entry, then, else, join *)
  Alcotest.(check int) "four blocks" 4 (Program.block_count p);
  Cfgraph.check_all_reachable p

let test_loop_structure () =
  let p = Dsl.compile ~name:"lp" [ Dsl.loop 3 [ Dsl.compute 2 ] ] in
  let f = Loops.analyze p in
  Alcotest.(check int) "one loop" 1 (Array.length f.Loops.loops);
  Alcotest.(check int) "bound defaults to trips" 3 f.Loops.loops.(0).Loops.bound

let test_empty_loop_rejected () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Dsl.compile ~name:"e" [ Dsl.loop 3 [] ]);
       false
     with Invalid_argument _ -> true)

let test_unknown_proc_rejected () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Dsl.compile ~name:"u" [ Dsl.call "nope" ]);
       false
     with Invalid_argument _ -> true)

let test_negative_compute_rejected () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Dsl.compile ~name:"n" [ Dsl.compute (-1) ]);
       false
     with Invalid_argument _ -> true)

let test_far_call_structure () =
  let p =
    Dsl.compile ~name:"fc" ~procs:[ ("f", [ Dsl.compute 3 ]) ]
      [ Dsl.compute 1; Dsl.far_call "f"; Dsl.compute 1 ]
  in
  Cfgraph.check_all_reachable p;
  (* the far body must be at the address-space end: its block id is
     maximal among blocks with instructions *)
  let layout = Ucp_isa.Layout.make p ~block_bytes:16 in
  ignore layout;
  Alcotest.(check bool) "compiles and is reachable" true (Program.block_count p >= 3)

let test_nested_far () =
  let p = Dsl.compile ~name:"nf" [ Dsl.Far [ Dsl.compute 1; Dsl.Far [ Dsl.compute 2 ] ] ] in
  Cfgraph.check_all_reachable p;
  ignore (Loops.analyze p)

(* ------------------------------------------------------------------ *)
(* validate / serialization / random generator *)

let test_validate_mirrors_compile () =
  (* validate's verdict and compile's behaviour must agree *)
  let accepted = [ Dsl.compute 2; Dsl.loop 3 [ Dsl.compute 1 ] ] in
  Alcotest.(check bool) "accepted validates" true
    (Result.is_ok (Dsl.validate accepted));
  List.iter
    (fun (label, stmts) ->
      Alcotest.(check bool) (label ^ " rejected") true
        (Result.is_error (Dsl.validate stmts));
      Alcotest.(check bool) (label ^ " compile raises") true
        (try
           ignore (Dsl.compile ~name:"x" stmts);
           false
         with Invalid_argument _ -> true))
    [
      ("empty loop", [ Dsl.loop 3 [] ]);
      ("negative compute", [ Dsl.compute (-1) ]);
      ("unknown proc", [ Dsl.call "nope" ]);
      ("trips over bound", [ Dsl.Loop { bound = 2; trips = 3; body = [ Dsl.compute 1 ] } ]);
    ]

let test_validate_rejects_recursion () =
  let procs = [ ("a", [ Dsl.call "b" ]); ("b", [ Dsl.call "a" ]) ] in
  Alcotest.(check bool) "mutual recursion rejected" true
    (Result.is_error (Dsl.validate ~procs [ Dsl.call "a" ]))

let prop_to_string_parse_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"to_string/parse roundtrip"
    Ucp_testlib.gen_stmts (fun stmts ->
      match Dsl.parse (Dsl.to_string stmts) with
      | Ok (body, []) -> body = stmts
      | Ok _ | Error _ -> false)

let test_roundtrip_with_procs_and_bernoulli () =
  (* hex-float rendering keeps Bernoulli probabilities bit-exact,
     including ones with no short decimal form *)
  let body =
    [
      Dsl.if_ ~p:0.1 [ Dsl.compute 1 ] [];
      Dsl.if_ ~p:(1.0 /. 3.0) [ Dsl.far_call "f" ] [ Dsl.compute 2 ];
      Dsl.If (Ucp_isa.Branch_model.Every 3, [ Dsl.compute 1 ], []);
    ]
  in
  let procs = [ ("f", [ Dsl.loop ~bound:5 3 [ Dsl.compute 4 ] ]) ] in
  match Dsl.parse (Dsl.to_string ~procs body) with
  | Ok (body', procs') ->
    Alcotest.(check bool) "body bit-exact" true (body = body');
    Alcotest.(check bool) "procs bit-exact" true (procs = procs')
  | Error msg -> Alcotest.failf "parse: %s" msg

let test_generated_programs_compile () =
  (* the fuzzing generator's output is validated by construction, and a
     validated program must compile and analyze without raising *)
  List.iter
    (fun (cls, _) ->
      for seed = 0 to 20 do
        let body, procs = Ucp_workloads.Generate.stmts ~seed ~cls in
        (match Dsl.validate ~procs body with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "gen-%s-%d: %s" cls seed msg);
        let p = Ucp_workloads.Generate.program ~seed ~cls in
        Cfgraph.check_all_reachable p;
        ignore (Loops.analyze p);
        ignore (Vivu.expand p)
      done)
    Ucp_workloads.Generate.classes

let test_generated_programs_roundtrip () =
  List.iter
    (fun (cls, _) ->
      for seed = 0 to 20 do
        let body, procs = Ucp_workloads.Generate.stmts ~seed ~cls in
        match Dsl.parse (Dsl.to_string ~procs body) with
        | Ok (body', procs') ->
          if body <> body' || procs <> procs' then
            Alcotest.failf "gen-%s-%d does not roundtrip" cls seed
        | Error msg -> Alcotest.failf "gen-%s-%d: %s" cls seed msg
      done)
    Ucp_workloads.Generate.classes

(* ------------------------------------------------------------------ *)
(* Suite health *)

let test_suite_has_37 () = Alcotest.(check int) "37 programs" 37 (List.length Suite.all)

let test_paper_ids () =
  Alcotest.(check string) "p1" "p1" (Suite.paper_id "adpcm");
  Alcotest.(check string) "p37" "p37" (Suite.paper_id "ud");
  Alcotest.(check bool) "unknown raises" true
    (try
       ignore (Suite.paper_id "nope");
       false
     with Not_found -> true)

let test_find () =
  Alcotest.(check string) "find returns the right program" "crc"
    (Program.name (Suite.find "crc"))

let test_all_wellformed () =
  List.iter
    (fun (name, p) ->
      Alcotest.(check string) "name matches" name (Program.name p);
      Cfgraph.check_all_reachable p;
      ignore (Loops.analyze p);
      ignore (Vivu.expand p))
    Suite.all

let test_all_simulate_and_terminate () =
  let config = Ucp_cache.Config.make ~assoc:2 ~block_bytes:16 ~capacity:1024 in
  let model = Ucp_testlib.tiny_model in
  List.iter
    (fun (name, p) ->
      let s = Ucp_sim.Simulator.run p config model in
      Alcotest.(check bool) (name ^ " runs") true (s.Ucp_sim.Simulator.executed > 0))
    Suite.all

let test_size_ladder () =
  (* the suite must populate all three size classes so every cache size
     has in-band programs *)
  let classes = List.map (fun (_, p) -> Suite.size_class p) Suite.all in
  List.iter
    (fun cls ->
      Alcotest.(check bool) (cls ^ " populated") true (List.mem cls classes))
    [ "small"; "medium"; "large" ]

let test_deterministic_construction () =
  (* suite programs are values; find twice returns equal structures *)
  let a = Suite.find "fft1" and b = Suite.find "fft1" in
  Alcotest.(check int) "same slots" (Program.total_slots a) (Program.total_slots b)

let () =
  Alcotest.run "ucp_workloads"
    [
      ( "dsl",
        [
          Alcotest.test_case "sequence" `Quick test_sequence_merges_into_one_block;
          Alcotest.test_case "if" `Quick test_if_structure;
          Alcotest.test_case "loop" `Quick test_loop_structure;
          Alcotest.test_case "empty loop" `Quick test_empty_loop_rejected;
          Alcotest.test_case "unknown proc" `Quick test_unknown_proc_rejected;
          Alcotest.test_case "negative compute" `Quick test_negative_compute_rejected;
          Alcotest.test_case "far call" `Quick test_far_call_structure;
          Alcotest.test_case "nested far" `Quick test_nested_far;
        ] );
      ( "validate+serialize",
        [
          Alcotest.test_case "validate mirrors compile" `Quick
            test_validate_mirrors_compile;
          Alcotest.test_case "recursion rejected" `Quick test_validate_rejects_recursion;
          QCheck_alcotest.to_alcotest prop_to_string_parse_roundtrip;
          Alcotest.test_case "procs + bernoulli bit-exact" `Quick
            test_roundtrip_with_procs_and_bernoulli;
          Alcotest.test_case "generated programs compile" `Quick
            test_generated_programs_compile;
          Alcotest.test_case "generated programs roundtrip" `Quick
            test_generated_programs_roundtrip;
        ] );
      ( "suite",
        [
          Alcotest.test_case "37 programs" `Quick test_suite_has_37;
          Alcotest.test_case "paper ids" `Quick test_paper_ids;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "all well-formed" `Quick test_all_wellformed;
          Alcotest.test_case "all simulate" `Quick test_all_simulate_and_terminate;
          Alcotest.test_case "size ladder" `Quick test_size_ladder;
          Alcotest.test_case "deterministic" `Quick test_deterministic_construction;
        ] );
    ]
