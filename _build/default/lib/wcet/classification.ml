type t =
  | Always_hit
  | Always_miss
  | Not_classified

let is_wcet_miss = function
  | Always_hit -> false
  | Always_miss | Not_classified -> true

let to_string = function
  | Always_hit -> "AH"
  | Always_miss -> "AM"
  | Not_classified -> "NC"

let pp ppf t = Format.pp_print_string ppf (to_string t)
