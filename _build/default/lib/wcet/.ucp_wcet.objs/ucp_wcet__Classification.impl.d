lib/wcet/classification.ml: Format
