lib/wcet/ipet.mli: Wcet
