lib/wcet/classification.mli: Format
