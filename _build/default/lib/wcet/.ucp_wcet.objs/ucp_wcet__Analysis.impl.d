lib/wcet/analysis.ml: Array Classification List Printf Ucp_cache Ucp_cfg Ucp_isa
