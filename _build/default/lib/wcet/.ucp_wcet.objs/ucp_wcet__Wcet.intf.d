lib/wcet/wcet.mli: Analysis Ucp_cache Ucp_cfg Ucp_energy Ucp_isa
