lib/wcet/analysis.mli: Classification Ucp_cache Ucp_cfg Ucp_isa
