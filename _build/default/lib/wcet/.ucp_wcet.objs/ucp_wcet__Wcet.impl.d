lib/wcet/wcet.ml: Analysis Array Classification Hashtbl List Ucp_cache Ucp_cfg Ucp_energy Ucp_isa
