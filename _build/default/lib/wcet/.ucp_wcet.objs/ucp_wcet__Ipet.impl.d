lib/wcet/ipet.ml: Analysis Array List Ucp_cfg Ucp_isa Ucp_lp Wcet
