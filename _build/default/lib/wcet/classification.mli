(** Hit/miss classification of instruction references, the output of
    cache-aware WCET analysis [8, 21]. *)

type t =
  | Always_hit  (** proven cached by must analysis *)
  | Always_miss  (** proven absent by may analysis *)
  | Not_classified  (** neither; treated as a miss in WCET bounds *)

val is_wcet_miss : t -> bool
(** Does the WCET bound charge the miss penalty for this reference? *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
