lib/cfg/dominators.ml: Array Cfgraph List Ucp_isa
