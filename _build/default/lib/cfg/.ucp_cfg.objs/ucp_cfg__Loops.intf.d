lib/cfg/loops.mli: Ucp_isa
