lib/cfg/cfgraph.mli: Ucp_isa
