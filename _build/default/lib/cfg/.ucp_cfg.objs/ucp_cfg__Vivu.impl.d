lib/cfg/vivu.ml: Array Format Hashtbl List Loops Printf Queue Ucp_isa
