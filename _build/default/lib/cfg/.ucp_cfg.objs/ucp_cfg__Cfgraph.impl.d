lib/cfg/cfgraph.ml: Array List Printf Ucp_isa
