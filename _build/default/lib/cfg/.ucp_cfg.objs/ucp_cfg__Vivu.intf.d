lib/cfg/vivu.mli: Format Loops Ucp_isa
