lib/cfg/loops.ml: Array Cfgraph Dominators Hashtbl List Option Printf Ucp_isa
