lib/cfg/dominators.mli: Ucp_isa
