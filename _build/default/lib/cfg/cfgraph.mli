(** Basic graph traversals over a program's control-flow graph.

    Blocks are the vertices; {!Ucp_isa.Program.successors} defines the
    edges.  Blocks unreachable from the entry are ignored by every
    traversal (and rejected by {!check_all_reachable}). *)

val predecessors : Ucp_isa.Program.t -> int list array
(** [predecessors p] maps each block id to its predecessor ids. *)

val reverse_postorder : Ucp_isa.Program.t -> int array
(** Reverse postorder of the blocks reachable from the entry; the entry
    comes first.  A classic iteration order for forward dataflow. *)

val postorder_index : Ucp_isa.Program.t -> int array
(** [postorder_index p] maps each reachable block to its postorder
    number; unreachable blocks map to [-1]. *)

val reachable : Ucp_isa.Program.t -> bool array
(** Which blocks are reachable from the entry. *)

val check_all_reachable : Ucp_isa.Program.t -> unit
(** @raise Invalid_argument if some block is unreachable — workload
    programs are required to be fully connected. *)

val exits : Ucp_isa.Program.t -> int list
(** Blocks terminating in [Return], in ascending id order. *)
