module Program = Ucp_isa.Program

type t = { entry : int; idom : int array; po_index : int array }

(* Cooper, Harvey, Kennedy: "A Simple, Fast Dominance Algorithm". *)
let compute p =
  Cfgraph.check_all_reachable p;
  let n = Program.block_count p in
  let entry = Program.entry p in
  let rpo = Cfgraph.reverse_postorder p in
  let po_index = Cfgraph.postorder_index p in
  let preds = Cfgraph.predecessors p in
  let idom = Array.make n (-1) in
  idom.(entry) <- entry;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while po_index.(!a) < po_index.(!b) do
        a := idom.(!a)
      done;
      while po_index.(!b) < po_index.(!a) do
        b := idom.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> entry then begin
          let new_idom =
            List.fold_left
              (fun acc pred ->
                if idom.(pred) = -1 then acc
                else
                  match acc with None -> Some pred | Some a -> Some (intersect pred a))
              None preds.(b)
          in
          match new_idom with
          | None -> ()
          | Some d ->
            if idom.(b) <> d then begin
              idom.(b) <- d;
              changed := true
            end
        end)
      rpo
  done;
  { entry; idom; po_index }

let idom t b = t.idom.(b)

let dominates t a b =
  let rec walk x =
    if x = a then true else if x = t.entry then a = t.entry else walk t.idom.(x)
  in
  walk b

let dominator_chain t b =
  let rec up x acc = if x = t.entry then x :: acc else up t.idom.(x) (x :: acc) in
  List.rev (up b [])
