(** Natural-loop detection and the loop nesting forest.

    The VIVU transformation and loop-bound accounting require the CFG to
    be {e reducible}: every cycle is a natural loop entered through its
    header.  Loop headers must carry a bound
    ({!Ucp_isa.Program.block.loop_bound}). *)

type loop = {
  index : int;  (** position in {!forest.loops} *)
  header : int;  (** header block id *)
  body : bool array;  (** membership per block id, header included *)
  back_edges : (int * int) list;  (** latch -> header edges *)
  parent : int option;  (** enclosing loop's index *)
  depth : int;  (** 1 for outermost loops *)
  bound : int;  (** maximum iterations per entry *)
}

type forest = {
  loops : loop array;  (** sorted outermost-first (by depth, then header) *)
  innermost : int option array;  (** innermost loop of each block *)
}

val analyze : Ucp_isa.Program.t -> forest
(** Detect loops.
    @raise Invalid_argument if the CFG is irreducible, if a loop header
    lacks a bound, or if a non-header block carries one. *)

val loops_of_block : forest -> int -> loop list
(** Loops containing a block, outermost first. *)

val is_back_edge : forest -> int -> int -> bool
(** [is_back_edge f u v]: is the edge [u -> v] a loop back edge? *)

val max_depth : forest -> int
(** Deepest nesting level (0 when the program is loop-free). *)
