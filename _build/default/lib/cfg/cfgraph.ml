module Program = Ucp_isa.Program

let predecessors p =
  let n = Program.block_count p in
  let preds = Array.make n [] in
  for id = 0 to n - 1 do
    List.iter (fun s -> preds.(s) <- id :: preds.(s)) (Program.successors p id)
  done;
  Array.map List.rev preds

let postorder p =
  let n = Program.block_count p in
  let visited = Array.make n false in
  let order = ref [] in
  (* Explicit stack with a phase marker to avoid deep recursion on long
     block chains. *)
  let rec visit id =
    if not visited.(id) then begin
      visited.(id) <- true;
      List.iter visit (Program.successors p id);
      order := id :: !order
    end
  in
  visit (Program.entry p);
  (* [order] is built head-first, so it already holds reverse postorder. *)
  (!order, visited)

let reverse_postorder p =
  let rpo, _ = postorder p in
  Array.of_list rpo

let postorder_index p =
  let rpo, _ = postorder p in
  let n = Program.block_count p in
  let idx = Array.make n (-1) in
  let count = List.length rpo in
  List.iteri (fun i id -> idx.(id) <- count - 1 - i) rpo;
  idx

let reachable p =
  let _, visited = postorder p in
  visited

let check_all_reachable p =
  let visited = reachable p in
  Array.iteri
    (fun id ok ->
      if not ok then
        invalid_arg
          (Printf.sprintf "Cfgraph: block %d of %s is unreachable" id (Program.name p)))
    visited

let exits p =
  let n = Program.block_count p in
  let acc = ref [] in
  for id = n - 1 downto 0 do
    match (Program.block p id).Program.term with
    | Program.Return _ -> acc := id :: !acc
    | Program.Fallthrough _ | Program.Jump _ | Program.Cond _ -> ()
  done;
  !acc
