module Program = Ucp_isa.Program

type loop = {
  index : int;
  header : int;
  body : bool array;
  back_edges : (int * int) list;
  parent : int option;
  depth : int;
  bound : int;
}

type forest = {
  loops : loop array;
  innermost : int option array;
}

let analyze p =
  let n = Program.block_count p in
  let dom = Dominators.compute p in
  let preds = Cfgraph.predecessors p in
  let po_index = Cfgraph.postorder_index p in
  (* Classify edges; a retreating edge that is not a back edge makes the
     graph irreducible. *)
  let back_edges = Hashtbl.create 8 in
  for u = 0 to n - 1 do
    List.iter
      (fun v ->
        if po_index.(v) >= po_index.(u) then
          (* v appears before u in reverse postorder: retreating edge *)
          if Dominators.dominates dom v u then begin
            let prev = try Hashtbl.find back_edges v with Not_found -> [] in
            Hashtbl.replace back_edges v ((u, v) :: prev)
          end
          else
            invalid_arg
              (Printf.sprintf "Loops: irreducible CFG in %s (retreating edge %d->%d)"
                 (Program.name p) u v))
      (Program.successors p u)
  done;
  (* Natural loop of each header: backward closure from the latches. *)
  let headers = Hashtbl.fold (fun h _ acc -> h :: acc) back_edges [] |> List.sort compare in
  let mk_body header latches =
    let body = Array.make n false in
    body.(header) <- true;
    let rec visit b =
      if not body.(b) then begin
        body.(b) <- true;
        List.iter visit preds.(b)
      end
    in
    List.iter visit latches;
    body
  in
  let proto =
    List.map
      (fun h ->
        let edges = Hashtbl.find back_edges h in
        let latches = List.map fst edges in
        (h, mk_body h latches, edges))
      headers
  in
  (* Bounds: headers must carry one; other blocks must not. *)
  for b = 0 to n - 1 do
    let is_header = List.exists (fun (h, _, _) -> h = b) proto in
    match ((Program.block p b).Program.loop_bound, is_header) with
    | None, true ->
      invalid_arg
        (Printf.sprintf "Loops: header %d of %s lacks a loop bound" b (Program.name p))
    | Some _, false ->
      invalid_arg
        (Printf.sprintf "Loops: non-header block %d of %s carries a loop bound" b
           (Program.name p))
    | Some _, true | None, false -> ()
  done;
  let size body = Array.fold_left (fun acc x -> if x then acc + 1 else acc) 0 body in
  (* Parent = smallest strictly-enclosing loop. *)
  let arr = Array.of_list proto in
  let count = Array.length arr in
  let encloses i j =
    (* loop i encloses loop j (strictly)? *)
    let _, bi, _ = arr.(i) and hj, bj, _ = arr.(j) in
    i <> j && bi.(hj) && size bi > size bj
  in
  let parent_of j =
    let best = ref None in
    for i = 0 to count - 1 do
      if encloses i j then
        match !best with
        | None -> best := Some i
        | Some b ->
          let _, bb, _ = arr.(b) and _, bi, _ = arr.(i) in
          if size bi < size bb then best := Some i
    done;
    !best
  in
  let parents = Array.init count parent_of in
  let rec depth_of j = match parents.(j) with None -> 1 | Some i -> 1 + depth_of i in
  let loops =
    Array.init count (fun i ->
        let header, body, back_edges = arr.(i) in
        let bound =
          match (Program.block p header).Program.loop_bound with
          | Some bound -> bound
          | None -> assert false
        in
        {
          index = i;
          header;
          body;
          back_edges;
          parent = parents.(i);
          depth = depth_of i;
          bound;
        })
  in
  (* Sort outermost-first and remap indices. *)
  let order = Array.init count (fun i -> i) in
  Array.sort
    (fun a b ->
      match compare loops.(a).depth loops.(b).depth with
      | 0 -> compare loops.(a).header loops.(b).header
      | c -> c)
    order;
  let remap = Array.make count 0 in
  Array.iteri (fun pos old -> remap.(old) <- pos) order;
  let loops =
    Array.init count (fun pos ->
        let l = loops.(order.(pos)) in
        { l with index = pos; parent = Option.map (fun pi -> remap.(pi)) l.parent })
  in
  let innermost = Array.make n None in
  Array.iter
    (fun l ->
      Array.iteri
        (fun b inside ->
          if inside then
            match innermost.(b) with
            | None -> innermost.(b) <- Some l.index
            | Some other -> if loops.(other).depth < l.depth then innermost.(b) <- Some l.index)
        l.body)
    loops;
  { loops; innermost }

let loops_of_block f b =
  let rec chain idx acc =
    let l = f.loops.(idx) in
    match l.parent with None -> l :: acc | Some parent -> chain parent (l :: acc)
  in
  match f.innermost.(b) with None -> [] | Some idx -> chain idx []

let is_back_edge f u v =
  Array.exists (fun l -> List.exists (fun (a, b) -> a = u && b = v) l.back_edges) f.loops

let max_depth f = Array.fold_left (fun acc l -> max acc l.depth) 0 f.loops
