(** Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.

    Needed to identify back edges and natural loops, which in turn drive
    the VIVU transformation and loop-bound bookkeeping of WCET analysis. *)

type t

val compute : Ucp_isa.Program.t -> t
(** Immediate dominators of all blocks reachable from the entry.
    @raise Invalid_argument if some block is unreachable. *)

val idom : t -> int -> int
(** Immediate dominator of a block; the entry is its own idominator. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b]: does [a] dominate [b] (reflexively)? *)

val dominator_chain : t -> int -> int list
(** Dominators of a block from the block itself up to the entry. *)
