type kind =
  | Compute
  | Prefetch of int

type t = { uid : int; kind : kind }

let compute ~uid = { uid; kind = Compute }

let prefetch ~uid ~target = { uid; kind = Prefetch target }

let is_prefetch t = match t.kind with Prefetch _ -> true | Compute -> false

let bytes = 4

let pp ppf t =
  match t.kind with
  | Compute -> Format.fprintf ppf "i%d" t.uid
  | Prefetch target -> Format.fprintf ppf "pf(i%d)@i%d" target t.uid

let equal a b = a.uid = b.uid && a.kind = b.kind
