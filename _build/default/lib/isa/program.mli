(** Programs: arrays of basic blocks over the mini-RISC ISA.

    A program is a CFG skeleton: blocks hold straight-line instruction
    bodies and end in a terminator.  Terminators that transfer control
    explicitly (jump, conditional branch, return) occupy one instruction
    slot of their own; a plain fall-through occupies none, matching how
    compilers lay out code.

    Programs are immutable; the optimizer derives new, prefetch-extended
    programs with {!insert_prefetch} ("prefetch-equivalent" programs in
    the paper's Definition 5). *)

type terminator =
  | Fallthrough of int  (** control continues at the given block, no instruction emitted *)
  | Jump of { uid : int; target : int }  (** unconditional jump *)
  | Cond of {
      uid : int;
      taken : int;
      fallthrough : int;
      model : Branch_model.t;
    }  (** conditional branch; [model] drives the trace simulator *)
  | Return of { uid : int }  (** program exit *)

type block = {
  body : Instr.t array;
  term : terminator;
  loop_bound : int option;
      (** maximum iterations when this block heads a natural loop;
          mandatory for WCET analysis of loops *)
}

type t

(** Block descriptions fed to {!make}; uids are assigned automatically
    and all body instructions start as {!Instr.Compute}. *)
type spec = {
  spec_body : int;  (** number of body instructions *)
  spec_term : spec_term;
  spec_bound : int option;  (** loop bound if the block heads a loop *)
}

and spec_term =
  | S_fallthrough of int
  | S_jump of int
  | S_cond of { taken : int; fallthrough : int; model : Branch_model.t }
  | S_return

val make : name:string -> entry:int -> spec array -> t
(** Build and validate a program.
    @raise Invalid_argument on dangling block ids, nonpositive loop
    bounds or body sizes, or an out-of-range entry. *)

val name : t -> string
val entry : t -> int
val block_count : t -> int

val block : t -> int -> block
(** @raise Invalid_argument on out-of-range id. *)

val successors : t -> int -> int list
(** Successor block ids of a block (empty for returns). *)

val slots : t -> int -> int
(** Number of instruction slots of a block: body plus one for an
    explicit terminator. *)

val total_slots : t -> int
(** Static instruction count of the whole program. *)

val slot_instr : t -> block:int -> pos:int -> Instr.t
(** The instruction at slot [pos] of [block]; [pos = body length]
    addresses the explicit terminator.
    @raise Invalid_argument if the slot does not exist. *)

val term_uid : t -> int -> int option
(** Uid of the block's terminator instruction, if it occupies a slot. *)

val insert_prefetch : t -> block:int -> pos:int -> target_uid:int -> t * int
(** [insert_prefetch p ~block ~pos ~target_uid] returns a program with a
    prefetch for the memory block of [target_uid] inserted before body
    position [pos] ([pos] = body length inserts just before the
    terminator), together with the fresh uid of the new instruction.
    @raise Invalid_argument on bad coordinates or unknown target uid. *)

val remove_uid : t -> int -> t
(** Remove the (prefetch) instruction with the given uid — the
    optimizer's rollback path.
    @raise Invalid_argument if the uid names a terminator or is absent. *)

val find_uid : t -> int -> (int * int) option
(** [find_uid p uid] locates an instruction as [(block, pos)]. *)

val prefetch_count : t -> int
(** Number of prefetch instructions in the program. *)

val prefetch_equivalent : t -> t -> bool
(** Definition 5: indistinguishable except for prefetch instructions
    (same blocks, terminators, bounds, and non-prefetch bodies). *)

val iter_slots : t -> (block:int -> pos:int -> instr:Instr.t -> unit) -> unit
(** Iterate over every instruction slot in block order. *)

val pp : Format.formatter -> t -> unit
(** Multi-line listing of the program. *)
