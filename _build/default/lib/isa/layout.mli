(** End-anchored address layout and memory-block mapping.

    Blocks are laid out consecutively in block-id order.  The layout is
    anchored at the {e end} of the program: the final instruction always
    occupies the slot just below [end_addr].  Inserting an instruction
    therefore relocates every instruction {e before} the insertion point
    (their addresses drop by 4) and leaves everything after it in place
    — exactly the relocation discipline behind the paper's [rcost]
    (Equation 8), where only "references preceding r{_i} in the address
    space" move. *)

type t

val end_addr : int
(** The fixed anchor address (a multiple of every supported memory-block
    size). *)

val make : Program.t -> block_bytes:int -> t
(** Compute the layout of a program for a given memory-block size.
    @raise Invalid_argument if [block_bytes] is not a positive multiple
    of {!Instr.bytes}. *)

val program : t -> Program.t
val block_bytes : t -> int
val items_per_block : t -> int
(** Instructions per memory block ([block_bytes / 4]). *)

val addr : t -> block:int -> pos:int -> int
(** Byte address of an instruction slot.
    @raise Invalid_argument on a nonexistent slot. *)

val mem_block : t -> block:int -> pos:int -> int
(** [S(r)]: id of the memory block holding the slot. *)

val mem_block_of_addr : t -> int -> int
(** Memory block id of a byte address. *)

val addr_of_uid : t -> int -> int option
(** Address of the instruction with the given uid, if present. *)

val mem_block_of_uid : t -> int -> int option
(** [S(r)] looked up by uid. *)

val first_slot_of_mem_block : t -> int -> (int * int) option
(** [R(s)]: the [(block, pos)] of the lowest-addressed instruction
    stored in memory block [s], or [None] if [s] holds no code. *)

val slots_of_mem_block : t -> int -> (int * int) list
(** All instruction slots residing in a memory block, in address order. *)

val mem_block_ids : t -> int list
(** All memory blocks containing at least one instruction, ascending. *)

val code_mem_blocks : t -> int
(** Number of distinct memory blocks occupied by the program. *)
