(** Deterministic behaviour of conditional branches for the trace
    simulator (the paper's ACET side).

    WCET analysis never looks at these models — it explores all paths —
    but the GEM5-substitute simulator needs a concrete, reproducible
    outcome for every dynamic execution of a branch. *)

type t =
  | Always_taken  (** the branch is taken on every execution *)
  | Never_taken  (** the branch falls through on every execution *)
  | Every of int
      (** [Every k]: taken on executions 0..k-2 of every window of [k],
          not taken on the k-th.  This is the natural model for a loop
          back-branch of a loop that iterates [k] times per entry. *)
  | Bernoulli of float
      (** [Bernoulli p]: taken with probability [p], drawn from the
          simulator's seeded generator. *)

val trips : int -> t
(** [trips n] models the exit test of a loop that runs [n] iterations
    each time it is entered (the header test is evaluated [n] times and
    succeeds [n - 1] times).
    @raise Invalid_argument if [n < 1]. *)

val pp : Format.formatter -> t -> unit
(** Short rendering, e.g. ["every 8"]. *)
