type terminator =
  | Fallthrough of int
  | Jump of { uid : int; target : int }
  | Cond of {
      uid : int;
      taken : int;
      fallthrough : int;
      model : Branch_model.t;
    }
  | Return of { uid : int }

type block = {
  body : Instr.t array;
  term : terminator;
  loop_bound : int option;
}

type t = {
  name : string;
  entry : int;
  blocks : block array;
  next_uid : int;
}

type spec = {
  spec_body : int;
  spec_term : spec_term;
  spec_bound : int option;
}

and spec_term =
  | S_fallthrough of int
  | S_jump of int
  | S_cond of { taken : int; fallthrough : int; model : Branch_model.t }
  | S_return

let name t = t.name
let entry t = t.entry
let block_count t = Array.length t.blocks

let block t id =
  if id < 0 || id >= Array.length t.blocks then
    invalid_arg (Printf.sprintf "Program.block: id %d out of range" id);
  t.blocks.(id)

let successors t id =
  match (block t id).term with
  | Fallthrough target | Jump { target; _ } -> [ target ]
  | Cond { taken; fallthrough; _ } ->
    if taken = fallthrough then [ taken ] else [ taken; fallthrough ]
  | Return _ -> []

let term_slots = function
  | Fallthrough _ -> 0
  | Jump _ | Cond _ | Return _ -> 1

let slots t id =
  let b = block t id in
  Array.length b.body + term_slots b.term

let total_slots t =
  Array.fold_left (fun acc b -> acc + Array.length b.body + term_slots b.term) 0 t.blocks

let term_uid t id =
  match (block t id).term with
  | Fallthrough _ -> None
  | Jump { uid; _ } | Cond { uid; _ } | Return { uid } -> Some uid

let slot_instr t ~block:id ~pos =
  let b = block t id in
  let n = Array.length b.body in
  if pos >= 0 && pos < n then b.body.(pos)
  else if pos = n && term_slots b.term = 1 then
    match b.term with
    | Jump { uid; _ } | Cond { uid; _ } | Return { uid } -> Instr.compute ~uid
    | Fallthrough _ -> assert false
  else
    invalid_arg (Printf.sprintf "Program.slot_instr: block %d has no slot %d" id pos)

let validate ~name ~entry blocks =
  let n = Array.length blocks in
  if entry < 0 || entry >= n then
    invalid_arg (Printf.sprintf "Program %s: entry %d out of range" name entry);
  Array.iteri
    (fun id b ->
      let check_target what target =
        if target < 0 || target >= n then
          invalid_arg
            (Printf.sprintf "Program %s: block %d %s target %d out of range" name id
               what target)
      in
      (match b.term with
      | Fallthrough target -> check_target "fallthrough" target
      | Jump { target; _ } -> check_target "jump" target
      | Cond { taken; fallthrough; _ } ->
        check_target "taken" taken;
        check_target "fallthrough" fallthrough
      | Return _ -> ());
      match b.loop_bound with
      | Some bound when bound < 1 ->
        invalid_arg
          (Printf.sprintf "Program %s: block %d has nonpositive loop bound" name id)
      | Some _ | None -> ())
    blocks

let make ~name ~entry specs =
  let next_uid = ref 0 in
  let fresh () =
    let uid = !next_uid in
    incr next_uid;
    uid
  in
  let build_block spec =
    if spec.spec_body < 0 then
      invalid_arg (Printf.sprintf "Program %s: negative body size" name);
    let body = Array.init spec.spec_body (fun _ -> Instr.compute ~uid:(fresh ())) in
    let term =
      match spec.spec_term with
      | S_fallthrough target -> Fallthrough target
      | S_jump target -> Jump { uid = fresh (); target }
      | S_cond { taken; fallthrough; model } ->
        Cond { uid = fresh (); taken; fallthrough; model }
      | S_return -> Return { uid = fresh () }
    in
    { body; term; loop_bound = spec.spec_bound }
  in
  let blocks = Array.map build_block specs in
  validate ~name ~entry blocks;
  { name; entry; blocks; next_uid = !next_uid }

let find_uid t uid =
  let found = ref None in
  Array.iteri
    (fun id b ->
      if !found = None then begin
        Array.iteri (fun pos i -> if i.Instr.uid = uid then found := Some (id, pos)) b.body;
        if !found = None && term_slots b.term = 1 then
          match b.term with
          | Jump { uid = u; _ } | Cond { uid = u; _ } | Return { uid = u } ->
            if u = uid then found := Some (id, Array.length b.body)
          | Fallthrough _ -> ()
      end)
    t.blocks;
  !found

let insert_prefetch t ~block:id ~pos ~target_uid =
  if id < 0 || id >= Array.length t.blocks then
    invalid_arg (Printf.sprintf "Program.insert_prefetch: block %d out of range" id);
  let b = t.blocks.(id) in
  let n = Array.length b.body in
  if pos < 0 || pos > n then
    invalid_arg (Printf.sprintf "Program.insert_prefetch: pos %d out of range" pos);
  (match find_uid t target_uid with
  | Some _ -> ()
  | None ->
    invalid_arg (Printf.sprintf "Program.insert_prefetch: unknown target uid %d" target_uid));
  let uid = t.next_uid in
  let pf = Instr.prefetch ~uid ~target:target_uid in
  let body =
    Array.init (n + 1) (fun i ->
        if i < pos then b.body.(i) else if i = pos then pf else b.body.(i - 1))
  in
  let blocks = Array.copy t.blocks in
  blocks.(id) <- { b with body };
  ({ t with blocks; next_uid = uid + 1 }, uid)

let remove_uid t uid =
  match find_uid t uid with
  | None -> invalid_arg (Printf.sprintf "Program.remove_uid: unknown uid %d" uid)
  | Some (id, pos) ->
    let b = t.blocks.(id) in
    let n = Array.length b.body in
    if pos >= n then
      invalid_arg (Printf.sprintf "Program.remove_uid: uid %d is a terminator" uid);
    let body = Array.init (n - 1) (fun i -> if i < pos then b.body.(i) else b.body.(i + 1)) in
    let blocks = Array.copy t.blocks in
    blocks.(id) <- { b with body };
    { t with blocks }

let prefetch_count t =
  Array.fold_left
    (fun acc b ->
      acc + Array.fold_left (fun c i -> if Instr.is_prefetch i then c + 1 else c) 0 b.body)
    0 t.blocks

let strip_prefetches_body body =
  Array.of_list
    (List.filter (fun i -> not (Instr.is_prefetch i)) (Array.to_list body))

let same_term a b =
  match (a, b) with
  | Fallthrough x, Fallthrough y -> x = y
  | Jump { target = x; _ }, Jump { target = y; _ } -> x = y
  | ( Cond { taken = t1; fallthrough = f1; model = m1; _ },
      Cond { taken = t2; fallthrough = f2; model = m2; _ } ) ->
    t1 = t2 && f1 = f2 && m1 = m2
  | Return _, Return _ -> true
  | (Fallthrough _ | Jump _ | Cond _ | Return _), _ -> false

let prefetch_equivalent a b =
  a.entry = b.entry
  && Array.length a.blocks = Array.length b.blocks
  && Array.for_all2
       (fun ba bb ->
         same_term ba.term bb.term
         && ba.loop_bound = bb.loop_bound
         && Array.length (strip_prefetches_body ba.body)
            = Array.length (strip_prefetches_body bb.body))
       a.blocks b.blocks

let iter_slots t f =
  Array.iteri
    (fun id b ->
      Array.iteri (fun pos instr -> f ~block:id ~pos ~instr) b.body;
      if term_slots b.term = 1 then
        f ~block:id ~pos:(Array.length b.body)
          ~instr:(slot_instr t ~block:id ~pos:(Array.length b.body)))
    t.blocks

let pp_term ppf = function
  | Fallthrough target -> Format.fprintf ppf "fall b%d" target
  | Jump { target; uid } -> Format.fprintf ppf "jump b%d (i%d)" target uid
  | Cond { taken; fallthrough; model; uid } ->
    Format.fprintf ppf "cond b%d/b%d [%a] (i%d)" taken fallthrough Branch_model.pp model
      uid
  | Return { uid } -> Format.fprintf ppf "return (i%d)" uid

let pp ppf t =
  Format.fprintf ppf "@[<v>program %s (entry b%d)@," t.name t.entry;
  Array.iteri
    (fun id b ->
      Format.fprintf ppf "b%d%s: " id
        (match b.loop_bound with
        | Some bound -> Printf.sprintf " (loop<=%d)" bound
        | None -> "");
      Array.iter (fun i -> Format.fprintf ppf "%a " Instr.pp i) b.body;
      Format.fprintf ppf "| %a@," pp_term b.term)
    t.blocks;
  Format.fprintf ppf "@]"
