type t =
  | Always_taken
  | Never_taken
  | Every of int
  | Bernoulli of float

let trips n =
  if n < 1 then invalid_arg "Branch_model.trips: need at least one iteration";
  Every n

let pp ppf = function
  | Always_taken -> Format.pp_print_string ppf "always"
  | Never_taken -> Format.pp_print_string ppf "never"
  | Every k -> Format.fprintf ppf "every %d" k
  | Bernoulli p -> Format.fprintf ppf "p=%.2f" p
