type t = {
  program : Program.t;
  block_bytes : int;
  base : int;  (* address of global slot 0 *)
  starts : int array;  (* global slot index of each block's first slot *)
  total : int;
  by_block : (int, (int * int) list) Hashtbl.t;  (* mem block -> slots, reversed *)
}

let end_addr = 1 lsl 24

let make program ~block_bytes =
  if block_bytes <= 0 || block_bytes mod Instr.bytes <> 0 then
    invalid_arg "Layout.make: block_bytes must be a positive multiple of 4";
  if end_addr mod block_bytes <> 0 then
    invalid_arg "Layout.make: block_bytes must divide the anchor address";
  let n = Program.block_count program in
  let starts = Array.make n 0 in
  let total = ref 0 in
  for id = 0 to n - 1 do
    starts.(id) <- !total;
    total := !total + Program.slots program id
  done;
  let total = !total in
  let base = end_addr - (Instr.bytes * total) in
  let by_block = Hashtbl.create 64 in
  let t = { program; block_bytes; base; starts; total; by_block } in
  Program.iter_slots program (fun ~block ~pos ~instr:_ ->
      let a = base + (Instr.bytes * (starts.(block) + pos)) in
      let mb = a / block_bytes in
      let prev = try Hashtbl.find by_block mb with Not_found -> [] in
      Hashtbl.replace by_block mb ((block, pos) :: prev));
  t

let program t = t.program
let block_bytes t = t.block_bytes
let items_per_block t = t.block_bytes / Instr.bytes

let addr t ~block ~pos =
  let slot_count = Program.slots t.program block in
  if pos < 0 || pos >= slot_count then
    invalid_arg (Printf.sprintf "Layout.addr: block %d has no slot %d" block pos);
  t.base + (Instr.bytes * (t.starts.(block) + pos))

let mem_block_of_addr t a = a / t.block_bytes

let mem_block t ~block ~pos = mem_block_of_addr t (addr t ~block ~pos)

let addr_of_uid t uid =
  match Program.find_uid t.program uid with
  | None -> None
  | Some (block, pos) -> Some (addr t ~block ~pos)

let mem_block_of_uid t uid =
  match addr_of_uid t uid with None -> None | Some a -> Some (mem_block_of_addr t a)

let slots_of_mem_block t mb =
  match Hashtbl.find_opt t.by_block mb with
  | None -> []
  | Some slots -> List.rev slots

let first_slot_of_mem_block t mb =
  match slots_of_mem_block t mb with [] -> None | slot :: _ -> Some slot

let mem_block_ids t =
  Hashtbl.fold (fun mb _ acc -> mb :: acc) t.by_block [] |> List.sort compare

let code_mem_blocks t = Hashtbl.length t.by_block
