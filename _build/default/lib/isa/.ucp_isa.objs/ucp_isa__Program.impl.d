lib/isa/program.ml: Array Branch_model Format Instr List Printf
