lib/isa/layout.ml: Array Hashtbl Instr List Printf Program
