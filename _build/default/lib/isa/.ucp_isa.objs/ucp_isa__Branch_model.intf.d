lib/isa/branch_model.mli: Format
