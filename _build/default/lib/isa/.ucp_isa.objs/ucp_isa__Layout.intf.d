lib/isa/layout.mli: Program
