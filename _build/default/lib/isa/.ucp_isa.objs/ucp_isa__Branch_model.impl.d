lib/isa/branch_model.ml: Format
