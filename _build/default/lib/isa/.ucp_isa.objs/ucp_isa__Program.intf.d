lib/isa/program.mli: Branch_model Format Instr
