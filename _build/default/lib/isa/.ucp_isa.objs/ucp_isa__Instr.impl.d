lib/isa/instr.ml: Format
