(** Instructions of the mini-RISC machine.

    Every instruction occupies one 4-byte slot in the address space.
    Instructions carry a unique identifier [uid] that survives address
    relocation: when the optimizer inserts a prefetch, addresses of
    earlier instructions change but uids do not, so prefetch targets
    and analysis results can be tracked across program versions. *)

type kind =
  | Compute  (** any ordinary instruction: ALU op, load, store, ... *)
  | Prefetch of int
      (** [Prefetch target_uid] loads the memory block containing the
          instruction identified by [target_uid] through the cache's
          non-blocking port.  The processor does not stall. *)

type t = { uid : int; kind : kind }

val compute : uid:int -> t
(** An ordinary instruction. *)

val prefetch : uid:int -> target:int -> t
(** A software-prefetch instruction aimed at the block of [target]. *)

val is_prefetch : t -> bool
(** [true] iff the instruction is a {!Prefetch}. *)

val bytes : int
(** Size of every instruction: 4 bytes. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering, e.g. ["i17"] or ["pf(i3)@i17"]. *)

val equal : t -> t -> bool
(** Structural equality. *)
