(** Energy accounting for a simulated run: turns event counts into the
    memory system's energy breakdown (the quantity the paper optimizes). *)

type counts = {
  fetches : int;  (** instruction fetches (cache lookups) *)
  hits : int;
  misses : int;  (** demand misses (each triggers a DRAM read + fill) *)
  prefetch_dram_reads : int;
      (** prefetches that actually went to DRAM (block was absent) *)
  prefetch_fills : int;  (** blocks installed by prefetches *)
  cycles : int;  (** total execution cycles including stalls *)
}

val zero : counts
val add : counts -> counts -> counts

type breakdown = {
  cache_dynamic_pj : float;
  dram_dynamic_pj : float;
  static_pj : float;
  total_pj : float;
}

val energy : Cacti.t -> counts -> breakdown
(** Evaluate the breakdown under a cache/technology model. *)

val pp_breakdown : Format.formatter -> breakdown -> unit
