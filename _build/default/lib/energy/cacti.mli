(** Mini-CACTI: analytic cache energy/latency model.

    Replaces the CACTI 6.5 tables of the paper's setup (Supplement S.4)
    with power-law scalings that preserve CACTI's orderings: per-access
    energy grows with capacity, associativity and block size; leakage
    power grows linearly with capacity and steeply with technology
    scaling; DRAM accesses dwarf cache accesses. *)

type t = {
  read_pj : float;  (** energy of one cache lookup (tag + data) *)
  fill_pj : float;  (** energy of writing one block into the cache *)
  leak_pj_per_cycle : float;  (** cache array leakage per processor cycle *)
  dram_read_pj : float;  (** energy of one level-two block read *)
  dram_leak_pj_per_cycle : float;  (** background power of the level-two memory *)
  hit_cycles : int;  (** cache hit latency *)
  miss_penalty : int;  (** extra cycles of a demand miss *)
  prefetch_latency : int;  (** Λ: cycles until a prefetched block is usable *)
}

val model : Ucp_cache.Config.t -> Tech.t -> t
(** Evaluate the model for a cache configuration and technology. *)

val pp : Format.formatter -> t -> unit
