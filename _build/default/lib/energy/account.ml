type counts = {
  fetches : int;
  hits : int;
  misses : int;
  prefetch_dram_reads : int;
  prefetch_fills : int;
  cycles : int;
}

let zero =
  { fetches = 0; hits = 0; misses = 0; prefetch_dram_reads = 0; prefetch_fills = 0; cycles = 0 }

let add a b =
  {
    fetches = a.fetches + b.fetches;
    hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    prefetch_dram_reads = a.prefetch_dram_reads + b.prefetch_dram_reads;
    prefetch_fills = a.prefetch_fills + b.prefetch_fills;
    cycles = a.cycles + b.cycles;
  }

type breakdown = {
  cache_dynamic_pj : float;
  dram_dynamic_pj : float;
  static_pj : float;
  total_pj : float;
}

let energy (m : Cacti.t) c =
  let f = float_of_int in
  let cache_dynamic_pj =
    (f c.fetches *. m.Cacti.read_pj)
    +. (f (c.misses + c.prefetch_fills) *. m.Cacti.fill_pj)
  in
  let dram_dynamic_pj = f (c.misses + c.prefetch_dram_reads) *. m.Cacti.dram_read_pj in
  let static_pj =
    f c.cycles *. (m.Cacti.leak_pj_per_cycle +. m.Cacti.dram_leak_pj_per_cycle)
  in
  { cache_dynamic_pj; dram_dynamic_pj; static_pj; total_pj = cache_dynamic_pj +. dram_dynamic_pj +. static_pj }

let pp_breakdown ppf b =
  Format.fprintf ppf "cache=%.0fpJ dram=%.0fpJ static=%.0fpJ total=%.0fpJ"
    b.cache_dynamic_pj b.dram_dynamic_pj b.static_pj b.total_pj
