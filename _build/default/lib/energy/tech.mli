(** Process-technology parameters (the paper targets 45 nm and 32 nm).

    The scaling captures the qualitative CMOS trends the paper's
    argument rests on: newer nodes have cheaper dynamic switching but
    markedly higher leakage, and a faster clock widens the cycle gap to
    DRAM.  Absolute values are synthetic; all experiments report ratios
    (see DESIGN.md, substitutions). *)

type node = Nm45 | Nm32

type t = {
  node : node;
  label : string;  (** ["45nm"] or ["32nm"] *)
  cycle_ns : float;  (** processor cycle time *)
  dram_latency_cycles : int;
      (** level-two (DRAM) access latency in cycles — this is both the
          cache miss penalty and the prefetch latency Λ (Definition 4) *)
  dyn_scale : float;  (** multiplier on cache dynamic energy *)
  leak_scale : float;  (** multiplier on cache leakage power *)
}

val nm45 : t
val nm32 : t

val all : t list
(** Both technologies, 45 nm first. *)

val of_node : node -> t
val pp : Format.formatter -> t -> unit
