type node = Nm45 | Nm32

type t = {
  node : node;
  label : string;
  cycle_ns : float;
  dram_latency_cycles : int;
  dyn_scale : float;
  leak_scale : float;
}

let nm45 =
  {
    node = Nm45;
    label = "45nm";
    cycle_ns = 1.0;
    dram_latency_cycles = 24;
    dyn_scale = 1.0;
    leak_scale = 1.0;
  }

let nm32 =
  {
    node = Nm32;
    label = "32nm";
    cycle_ns = 0.8;
    dram_latency_cycles = 30;
    dyn_scale = 0.72;
    leak_scale = 1.85;
  }

let all = [ nm45; nm32 ]

let of_node = function Nm45 -> nm45 | Nm32 -> nm32

let pp ppf t = Format.pp_print_string ppf t.label
