type t = {
  read_pj : float;
  fill_pj : float;
  leak_pj_per_cycle : float;
  dram_read_pj : float;
  dram_leak_pj_per_cycle : float;
  hit_cycles : int;
  miss_penalty : int;
  prefetch_latency : int;
}

let model (config : Ucp_cache.Config.t) (tech : Tech.t) =
  let capacity = float_of_int config.Ucp_cache.Config.capacity in
  let assoc = float_of_int config.Ucp_cache.Config.assoc in
  let block = float_of_int config.Ucp_cache.Config.block_bytes in
  (* Dynamic read energy: sub-linear in capacity (bitline/wordline
     growth), extra way-reads with associativity, wider output with
     block size. *)
  let read_pj =
    tech.Tech.dyn_scale
    *. 6.0
    *. ((capacity /. 256.0) ** 0.35)
    *. (1.0 +. (0.15 *. (assoc -. 1.0)))
    *. ((block /. 16.0) ** 0.15)
  in
  let fill_pj = tech.Tech.dyn_scale *. 10.0 *. (block /. 16.0) in
  (* Leakage: proportional to the number of bits. *)
  let leak_pj_per_cycle = tech.Tech.leak_scale *. 0.02 *. capacity in
  (* Off-chip DRAM: activation plus per-byte transfer; not scaled by the
     processor's technology node. *)
  let dram_read_pj = 60.0 +. (3.5 *. block) in
  let dram_leak_pj_per_cycle = 25.0 in
  {
    read_pj;
    fill_pj;
    leak_pj_per_cycle;
    dram_read_pj;
    dram_leak_pj_per_cycle;
    hit_cycles = 1;
    miss_penalty = tech.Tech.dram_latency_cycles;
    prefetch_latency = tech.Tech.dram_latency_cycles;
  }

let pp ppf t =
  Format.fprintf ppf
    "read=%.1fpJ fill=%.1fpJ leak=%.3fpJ/cy dram=%.1fpJ miss=%dcy lambda=%dcy"
    t.read_pj t.fill_pj t.leak_pj_per_cycle t.dram_read_pj t.miss_penalty
    t.prefetch_latency
