lib/energy/cacti.mli: Format Tech Ucp_cache
