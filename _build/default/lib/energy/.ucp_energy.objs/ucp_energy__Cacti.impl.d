lib/energy/cacti.ml: Format Tech Ucp_cache
