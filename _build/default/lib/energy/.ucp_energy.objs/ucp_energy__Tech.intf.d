lib/energy/tech.mli: Format
