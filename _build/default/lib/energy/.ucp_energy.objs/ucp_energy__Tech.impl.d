lib/energy/tech.ml: Format
