lib/energy/account.mli: Cacti Format
