lib/energy/account.ml: Cacti Format
