let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> nan
  | xs ->
    let log_sum =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.geomean: nonpositive sample";
          acc +. log x)
        0.0 xs
    in
    exp (log_sum /. float_of_int (List.length xs))

let stddev = function
  | [] -> nan
  | xs ->
    let m = mean xs in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (sq /. float_of_int (List.length xs))

let minimum = function [] -> nan | x :: xs -> List.fold_left min x xs
let maximum = function [] -> nan | x :: xs -> List.fold_left max x xs

let sorted xs = List.sort compare xs

let percentile p = function
  | [] -> nan
  | xs ->
    let arr = Array.of_list (sorted xs) in
    let n = Array.length arr in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let idx = max 0 (min (n - 1) (rank - 1)) in
    arr.(idx)

let fraction_below x = function
  | [] -> nan
  | xs ->
    let below = List.length (List.filter (fun v -> v < x) xs) in
    float_of_int below /. float_of_int (List.length xs)

type summary = {
  n : int;
  mean : float;
  geomean : float;
  stddev : float;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  max : float;
}

let summarize xs =
  {
    n = List.length xs;
    mean = mean xs;
    geomean = (try geomean xs with Invalid_argument _ -> nan);
    stddev = stddev xs;
    min = minimum xs;
    p25 = percentile 25.0 xs;
    median = percentile 50.0 xs;
    p75 = percentile 75.0 xs;
    max = maximum xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.4f geo=%.4f sd=%.4f min=%.4f p25=%.4f med=%.4f p75=%.4f max=%.4f"
    s.n s.mean s.geomean s.stddev s.min s.p25 s.median s.p75 s.max
