type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let pad r =
    let len = List.length r in
    if len >= ncols then r else r @ List.init (ncols - len) (fun _ -> "")
  in
  let all = List.map pad all in
  let widths = Array.make ncols 0 in
  let note_widths row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter note_widths all;
  let buf = Buffer.create 256 in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  (match all with
  | header :: data ->
    emit_row header;
    let total = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
    Buffer.add_string buf (String.make total '-');
    Buffer.add_char buf '\n';
    List.iter emit_row data
  | [] -> ());
  Buffer.contents buf

let print t = print_string (render t)

let cell_f x = Printf.sprintf "%.4f" x

let cell_pct x = Printf.sprintf "%.1f%%" (100.0 *. x)
