(** Plain-text table rendering for benchmark and experiment reports. *)

type t
(** A table under construction: a header row plus data rows. *)

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a data row.  Rows shorter than the header are padded with
    empty cells; longer rows extend the column count. *)

val render : t -> string
(** Render with aligned columns and a separator under the header. *)

val print : t -> unit
(** [print t] writes [render t] to standard output. *)

val cell_f : float -> string
(** Format a float cell with four significant decimals. *)

val cell_pct : float -> string
(** Format a ratio as a percentage cell, e.g. [0.112] -> ["11.2%"]. *)
