lib/util/stats.ml: Array Format List
