lib/util/table.mli:
