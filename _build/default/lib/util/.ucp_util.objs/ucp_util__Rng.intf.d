lib/util/rng.mli:
