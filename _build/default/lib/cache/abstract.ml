type kind = Must | May

(* Per set: association list (memory block, age bound), sorted by block
   id.  Ages range over [0, assoc); entries reaching [assoc] are evicted
   from the abstract state. *)
type t = {
  config : Config.t;
  kind : kind;
  sets : (int * int) list array;
}

let empty config kind = { config; kind; sets = Array.make config.Config.sets [] }

let kind t = t.kind
let config t = t.config

let set_idx t mb = Config.set_of_mem_block t.config mb

(* The abstract LRU update is the same formula for must and may: the
   accessed block moves to age 0 and every block with an age bound
   strictly below the accessed block's old bound (or the associativity,
   if absent) ages by one; entries reaching the associativity are
   dropped.  The two analyses differ in their join and interpretation. *)
let update_set ~assoc entries mb =
  let old_age = try List.assoc mb entries with Not_found -> assoc in
  let aged =
    List.filter_map
      (fun (x, a) ->
        if x = mb then None
        else
          let a' = if a < old_age then a + 1 else a in
          if a' >= assoc then None else Some (x, a'))
      entries
  in
  List.sort compare ((mb, 0) :: aged)

let apply t mb =
  let s = set_idx t mb in
  let sets = Array.copy t.sets in
  sets.(s) <- update_set ~assoc:t.config.Config.assoc sets.(s) mb;
  { t with sets }

let update t mb = apply t mb
let fill t mb = apply t mb

let join a b =
  if a.kind <> b.kind then invalid_arg "Abstract.join: kind mismatch";
  if not (Config.equal a.config b.config) then
    invalid_arg "Abstract.join: configuration mismatch";
  let join_set ea eb =
    match a.kind with
    | Must ->
      (* intersection, maximal age *)
      List.filter_map
        (fun (x, age_a) ->
          match List.assoc_opt x eb with
          | Some age_b -> Some (x, max age_a age_b)
          | None -> None)
        ea
      |> List.sort compare
    | May ->
      (* union, minimal age *)
      let from_a =
        List.map
          (fun (x, age_a) ->
            match List.assoc_opt x eb with
            | Some age_b -> (x, min age_a age_b)
            | None -> (x, age_a))
          ea
      in
      let only_b = List.filter (fun (x, _) -> not (List.mem_assoc x ea)) eb in
      List.sort compare (from_a @ only_b)
  in
  { a with sets = Array.init (Array.length a.sets) (fun i -> join_set a.sets.(i) b.sets.(i)) }

let contains t mb = List.mem_assoc mb t.sets.(set_idx t mb)

let age t mb = List.assoc_opt mb t.sets.(set_idx t mb)

let blocks t =
  Array.to_list t.sets |> List.concat |> List.map fst |> List.sort compare

let victims t mb =
  let before = t.sets.(set_idx t mb) in
  let after = update_set ~assoc:t.config.Config.assoc before mb in
  List.filter_map
    (fun (x, _) -> if x <> mb && not (List.mem_assoc x after) then Some x else None)
    before

let equal a b =
  a.kind = b.kind && Config.equal a.config b.config && a.sets = b.sets

let pp ppf t =
  Format.fprintf ppf "@[<v>%s cache:@,"
    (match t.kind with Must -> "must" | May -> "may");
  Array.iteri
    (fun i entries ->
      if entries <> [] then begin
        Format.fprintf ppf "  set %d:" i;
        List.iter (fun (mb, a) -> Format.fprintf ppf " s%d@%d" mb a) entries;
        Format.pp_print_cut ppf ()
      end)
    t.sets;
  Format.fprintf ppf "@]"
