(** Concrete set-associative cache (Section 3.1's [c : L -> S]).

    Mutable; used by the trace simulator and as the ground truth against
    which the abstract domains are property-tested.  The replacement
    policy defaults to LRU (the paper's platform); FIFO is provided for
    robustness ablations — the abstract analyses model LRU only. *)

type t

type policy = Lru | Fifo

type outcome =
  | Hit
  | Miss of int option
      (** the block brought in caused the eviction of the given block,
          if the set was full *)

val create : ?policy:policy -> Config.t -> t
(** Empty (all-invalid) cache. *)

val policy : t -> policy

val copy : t -> t

val access : t -> int -> outcome
(** [access t mb] references memory block [mb]: on a hit the block
    becomes most recently used; on a miss it is inserted as MRU,
    evicting the LRU block of its set when full. *)

val fill : t -> int -> int option
(** [fill t mb] inserts [mb] as MRU without counting as a demand access
    (a completed prefetch); returns the evicted block, if any.  Filling
    a resident block just refreshes its recency. *)

val contains : t -> int -> bool
(** Is the memory block currently cached? *)

val age : t -> int -> int option
(** Replacement age of a cached block within its set; 0 = most recently
    used (LRU) or most recently inserted (FIFO). *)

val contents : t -> int list
(** All resident memory blocks, ascending. *)

val resident_in_set : t -> int -> int list
(** Blocks of one set, youngest first. *)

val config : t -> Config.t
