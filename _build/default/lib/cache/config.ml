type t = { assoc : int; block_bytes : int; capacity : int; sets : int }

let make ~assoc ~block_bytes ~capacity =
  if assoc <= 0 || block_bytes <= 0 || capacity <= 0 then
    invalid_arg "Config.make: parameters must be positive";
  if block_bytes mod Ucp_isa.Instr.bytes <> 0 then
    invalid_arg "Config.make: block size must be a multiple of the instruction size";
  if capacity mod (assoc * block_bytes) <> 0 then
    invalid_arg "Config.make: capacity must be a multiple of assoc * block_bytes";
  { assoc; block_bytes; capacity; sets = capacity / (assoc * block_bytes) }

let set_of_mem_block t mb =
  let s = mb mod t.sets in
  if s < 0 then s + t.sets else s

let paper_configs =
  let capacities = [ 256; 512; 1024; 2048; 4096; 8192 ] in
  let blocks = [ 16; 32 ] in
  let assocs = [ 1; 2; 4 ] in
  let i = ref 0 in
  List.concat_map
    (fun capacity ->
      List.concat_map
        (fun block_bytes ->
          List.map
            (fun assoc ->
              incr i;
              (Printf.sprintf "k%d" !i, make ~assoc ~block_bytes ~capacity))
            assocs)
        blocks)
    capacities

let id t = Printf.sprintf "(%d,%d,%d)" t.assoc t.block_bytes t.capacity

let scaled_capacity t factor =
  let capacity = t.capacity / factor in
  if capacity >= t.assoc * t.block_bytes && capacity mod (t.assoc * t.block_bytes) = 0
  then Some (make ~assoc:t.assoc ~block_bytes:t.block_bytes ~capacity)
  else None

let half_capacity t = scaled_capacity t 2
let quarter_capacity t = scaled_capacity t 4

let pp ppf t = Format.pp_print_string ppf (id t)

let equal a b = a = b
