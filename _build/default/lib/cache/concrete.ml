type policy = Lru | Fifo

type t = {
  config : Config.t;
  policy : policy;
  sets : int list array;  (* per set: resident memory blocks, youngest first *)
}

type outcome =
  | Hit
  | Miss of int option

let create ?(policy = Lru) config =
  { config; policy; sets = Array.make config.Config.sets [] }

let policy t = t.policy

let copy t = { t with sets = Array.copy t.sets }

let set_idx t mb = Config.set_of_mem_block t.config mb

(* Insert [mb] as the youngest block of its set; under FIFO a resident
   block keeps its position (no reordering on hit). *)
let insert_front t mb =
  let s = set_idx t mb in
  let resident = List.mem mb t.sets.(s) in
  if resident then begin
    (match t.policy with
    | Lru ->
      let without = List.filter (fun x -> x <> mb) t.sets.(s) in
      t.sets.(s) <- mb :: without
    | Fifo -> ());
    (true, None)
  end
  else if List.length t.sets.(s) < t.config.Config.assoc then begin
    t.sets.(s) <- mb :: t.sets.(s);
    (false, None)
  end
  else begin
    (* evict the oldest block (last element) *)
    let rec split_last acc = function
      | [] -> assert false
      | [ last ] -> (List.rev acc, last)
      | x :: tl -> split_last (x :: acc) tl
    in
    let kept, victim = split_last [] t.sets.(s) in
    t.sets.(s) <- mb :: kept;
    (false, Some victim)
  end

let access t mb =
  match insert_front t mb with
  | true, _ -> Hit
  | false, victim -> Miss victim

let fill t mb =
  match insert_front t mb with
  | _, victim -> victim

let contains t mb = List.mem mb t.sets.(set_idx t mb)

let age t mb =
  let rec find i = function
    | [] -> None
    | x :: tl -> if x = mb then Some i else find (i + 1) tl
  in
  find 0 t.sets.(set_idx t mb)

let contents t =
  Array.to_list t.sets |> List.concat |> List.sort compare

let resident_in_set t s = t.sets.(s)

let config t = t.config
