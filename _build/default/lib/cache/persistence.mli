(** Persistence analysis (the third classical domain of Ferdinand's
    framework [8], alongside must and may).

    A memory block is {e persistent} within a scope if, once loaded, it
    can never be evicted again while the scope executes: every access
    after the first is then a guaranteed hit, and the WCET charges at
    most one miss per scope entry ("first miss" classification).

    The domain tracks an {e upper bound} on each block's age like the
    must analysis, but instead of dropping a block whose bound reaches
    the associativity it parks it at a virtual top age ⊤ — "may have
    been evicted at some point".  A block is persistent iff it is below
    ⊤ at the fixpoint of the whole scope.

    This repository's WCET analysis gets the same precision from the
    VIVU First/Rest contexts (a Rest-context must-hit is exactly a
    first-miss pattern), so persistence ships as a self-contained
    refinement with its own soundness tests rather than being wired
    into the default pipeline. *)

type t

val empty : Config.t -> t
(** Nothing seen yet: every block is trivially persistent so far. *)

val update : t -> int -> t
(** Abstract LRU update; ages that would cross the associativity park
    the block at ⊤ instead of evicting it. *)

val join : t -> t -> t
(** Union with maximal age (⊤ absorbs). *)

val is_persistent : t -> int -> bool
(** Has the block been seen and never (potentially) evicted? *)

val seen : t -> int list
(** All blocks the scope has referenced, ascending. *)

val persistent_blocks : t -> int list
(** The blocks classified persistent, ascending. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val analyze_scope : Config.t -> int list -> int list
(** [analyze_scope config trace] runs the analysis over one scope body
    given as a reference sequence (as if the scope looped over it) and
    returns the persistent blocks: the fixpoint of
    [update*(join empty .)] over arbitrarily many iterations of the
    body. *)
