(** Instruction-cache configurations.

    The paper's experiments sweep 36 configurations (Table 2), denoted
    [k = (a, b, c)]: associativity [a], block (line) size [b] bytes,
    capacity [c] bytes. *)

type t = private {
  assoc : int;  (** ways per set *)
  block_bytes : int;  (** bytes per cache block / memory block *)
  capacity : int;  (** total bytes *)
  sets : int;  (** derived: [capacity / (assoc * block_bytes)] *)
}

val make : assoc:int -> block_bytes:int -> capacity:int -> t
(** @raise Invalid_argument unless all parameters are positive,
    [block_bytes] is a multiple of the instruction size, and
    [assoc * block_bytes] divides [capacity]. *)

val set_of_mem_block : t -> int -> int
(** Cache set index of a memory block (modulo mapping). *)

val paper_configs : (string * t) list
(** The 36 configurations of Table 2, labelled ["k1"] .. ["k36"]. *)

val id : t -> string
(** Short label, e.g. ["(2,16,1024)"]. *)

val half_capacity : t -> t option
(** Same associativity and block size with capacity halved, when that
    still yields at least one set (used by the Figure 5 experiment). *)

val quarter_capacity : t -> t option
(** Capacity divided by four, when valid. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
