(** Abstract cache states for LRU must/may analysis (Ferdinand-style,
    the classical semantics the paper reuses from [8, 21]).

    A state maps each resident memory block to an {e age bound}:

    - {b Must}: the age is an {e upper} bound — the block is guaranteed
      to be cached with at most that age.  Join is intersection with
      maximal ages.  A reference to a block present in the must state is
      an {e always-hit}.
    - {b May}: the age is a {e lower} bound — the block might be cached,
      never younger than that age.  Join is union with minimal ages.  A
      reference to a block absent from the may state is an
      {e always-miss}.

    States are immutable; [update] implements the abstract LRU update
    Û, and [fill] the prefetch-extended semantics in which a block is
    installed as most recently used without a demand access (as in the
    prefetching extension of the abstract semantics [22]). *)

type kind = Must | May

type t

val empty : Config.t -> kind -> t
(** Cold cache: nothing resident.  For must analysis this is also the
    sound "no guarantees" element used at unknown program points. *)

val kind : t -> kind
val config : t -> Config.t

val update : t -> int -> t
(** Abstract LRU update for a demand reference to a memory block. *)

val fill : t -> int -> t
(** Abstract effect of a completed prefetch of a memory block: same
    aging as {!update} (the block lands as MRU either way). *)

val join : t -> t -> t
(** Must: intersection/max-age.  May: union/min-age.
    @raise Invalid_argument when kinds or configurations differ. *)

val contains : t -> int -> bool
(** Membership in the abstract state (guaranteed for must, possible for
    may). *)

val age : t -> int -> int option
(** Age bound of a block, if resident. *)

val blocks : t -> int list
(** Resident blocks, ascending (the paper's [B(ĉ)], Definition 9). *)

val victims : t -> int -> int list
(** [victims t mb] lists the blocks that [update t mb] removes from the
    state — for must analysis, the references that lose their cached
    guarantee.  This implements the replacement detection of Property 3
    that drives prefetch-candidate discovery. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
