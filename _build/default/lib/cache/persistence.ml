(* Ages run over 0 .. assoc-1 plus a virtual top (= assoc) meaning "may
   have been evicted".  Per set: association list sorted by block. *)

type t = {
  config : Config.t;
  sets : (int * int) list array;
}

let top config = config.Config.assoc

let empty config = { config; sets = Array.make config.Config.sets [] }

let set_idx t mb = Config.set_of_mem_block t.config mb

(* Like the must update, but saturating at ⊤ instead of evicting. *)
let update_set ~top entries mb =
  let old_age = try List.assoc mb entries with Not_found -> top in
  let aged =
    List.filter_map
      (fun (x, a) ->
        if x = mb then None
        else
          let a' = if a < old_age then min top (a + 1) else a in
          Some (x, a'))
      entries
  in
  List.sort compare ((mb, 0) :: aged)

let update t mb =
  let s = set_idx t mb in
  let sets = Array.copy t.sets in
  sets.(s) <- update_set ~top:(top t.config) sets.(s) mb;
  { t with sets }

let join a b =
  if not (Config.equal a.config b.config) then
    invalid_arg "Persistence.join: configuration mismatch";
  let join_set ea eb =
    let from_a =
      List.map
        (fun (x, age_a) ->
          match List.assoc_opt x eb with
          | Some age_b -> (x, max age_a age_b)
          | None -> (x, age_a))
        ea
    in
    let only_b = List.filter (fun (x, _) -> not (List.mem_assoc x ea)) eb in
    List.sort compare (from_a @ only_b)
  in
  { a with sets = Array.init (Array.length a.sets) (fun i -> join_set a.sets.(i) b.sets.(i)) }

let age t mb = List.assoc_opt mb t.sets.(set_idx t mb)

let is_persistent t mb =
  match age t mb with Some a -> a < top t.config | None -> false

let seen t =
  Array.to_list t.sets |> List.concat |> List.map fst |> List.sort compare

let persistent_blocks t = List.filter (is_persistent t) (seen t)

let equal a b = Config.equal a.config b.config && a.sets = b.sets

let pp ppf t =
  Format.fprintf ppf "@[<v>persistence:@,";
  Array.iteri
    (fun i entries ->
      if entries <> [] then begin
        Format.fprintf ppf "  set %d:" i;
        List.iter
          (fun (mb, a) ->
            if a >= top t.config then Format.fprintf ppf " s%d@T" mb
            else Format.fprintf ppf " s%d@%d" mb a)
          entries;
        Format.pp_print_cut ppf ()
      end)
    t.sets;
  Format.fprintf ppf "@]"

(* A block is persistent when, in the steady state of the scope, every
   access to it finds it below ⊤ (so only the very first access of the
   whole scope can miss).  The steady state is the fixpoint of "one more
   body iteration joined with what we had"; the verdicts are collected
   by replaying the body once from that fixpoint and checking each
   access point. *)
let analyze_scope config trace =
  let body state = List.fold_left update state trace in
  let rec fix state =
    let state' = join state (body state) in
    if equal state state' then state else fix state'
  in
  let steady = fix (body (empty config)) in
  let ok = Hashtbl.create 8 in
  let state = ref steady in
  List.iter
    (fun mb ->
      let below_top =
        match age !state mb with Some a -> a < top config | None -> false
      in
      let prev = try Hashtbl.find ok mb with Not_found -> true in
      Hashtbl.replace ok mb (prev && below_top);
      state := update !state mb)
    trace;
  Hashtbl.fold (fun mb good acc -> if good then mb :: acc else acc) ok []
  |> List.sort compare
