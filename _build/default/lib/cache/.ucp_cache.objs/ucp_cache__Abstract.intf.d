lib/cache/abstract.mli: Config Format
