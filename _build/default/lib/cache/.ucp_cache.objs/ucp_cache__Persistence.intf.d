lib/cache/persistence.mli: Config Format
