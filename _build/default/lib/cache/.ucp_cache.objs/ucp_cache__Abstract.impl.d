lib/cache/abstract.ml: Array Config Format List
