lib/cache/config.ml: Format List Printf Ucp_isa
