lib/cache/persistence.ml: Array Config Format Hashtbl List
