(** Comparison baselines from the paper's related-work section.

    {b BB-start software prefetching} [5]: for every reference the
    analysis predicts to miss, a prefetch of its block is inserted at
    the {e beginning of the basic block} containing it.  The paper's
    criticism — "the distance between them might be insufficient to hide
    the latency" — shows up as a positive
    {!Ucp_wcet.Wcet.residual_prefetch_stall}.

    {b Static cache locking} [4, 14]: the cache is preloaded with a
    fixed content chosen to minimize the WCET and never updated.
    Predictable by construction, but every access outside the locked
    content pays the full DRAM penalty — the energy-vs-predictability
    trade-off the paper sets out to avoid. *)

val bb_start :
  Ucp_isa.Program.t -> Ucp_cache.Config.t -> Ucp_energy.Cacti.t -> Ucp_isa.Program.t
(** Insert BB-start prefetches for every predicted miss (one per basic
    block and memory block).  No effectiveness or profitability check.
    Evaluate its WCET with {!Ucp_wcet.Wcet.tau_with_residual}. *)

type locking = {
  locked_blocks : int list;  (** memory blocks resident in the locked cache *)
  tau_locked : int;  (** WCET memory contribution under locking *)
}

val lock_greedy :
  Ucp_isa.Program.t -> Ucp_cache.Config.t -> Ucp_energy.Cacti.t -> locking
(** Greedy WCET-oriented content selection: per cache set, lock the
    [assoc] memory blocks with the largest worst-case access counts. *)

val wcet_locked :
  Ucp_isa.Program.t ->
  Ucp_cache.Config.t ->
  Ucp_energy.Cacti.t ->
  locked:int list ->
  int
(** WCET memory contribution when exactly [locked] is cached. *)

(** {b Hybrid locking + prefetching} ([16, 2] — the combination the
    paper's perspectives section sets out to study): lock [ways] ways
    of every set with the WCET-heaviest content, leave the remaining
    ways as a normal unlocked cache, and run the paper's prefetch
    optimization on what is left. *)
type hybrid = {
  hybrid_program : Ucp_isa.Program.t;  (** the prefetch-optimized binary *)
  hybrid_pinned : int list;  (** blocks resident in the locked ways *)
  hybrid_config : Ucp_cache.Config.t;  (** geometry of the unlocked ways *)
  hybrid_tau : int;  (** WCET memory contribution of the result *)
}

val lock_hybrid :
  ways:int ->
  Ucp_isa.Program.t ->
  Ucp_cache.Config.t ->
  Ucp_energy.Cacti.t ->
  hybrid
(** @raise Invalid_argument unless [0 < ways < assoc].  Evaluate the
    result's ACET with
    [Simulator.run ~pinned:hybrid_pinned ~cache_config:hybrid_config]. *)
