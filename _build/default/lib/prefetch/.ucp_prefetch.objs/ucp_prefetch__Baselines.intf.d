lib/prefetch/baselines.mli: Ucp_cache Ucp_energy Ucp_isa
