lib/prefetch/optimizer.mli: Ucp_cache Ucp_energy Ucp_isa Ucp_wcet
