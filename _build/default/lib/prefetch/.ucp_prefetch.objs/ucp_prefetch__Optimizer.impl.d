lib/prefetch/optimizer.ml: Array Hashtbl List Ucp_cache Ucp_cfg Ucp_energy Ucp_isa Ucp_wcet
