lib/prefetch/baselines.ml: Array Hashtbl List Optimizer Ucp_cache Ucp_cfg Ucp_energy Ucp_isa Ucp_wcet
