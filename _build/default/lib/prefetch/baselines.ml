module Program = Ucp_isa.Program
module Layout = Ucp_isa.Layout
module Vivu = Ucp_cfg.Vivu
module Config = Ucp_cache.Config
module Analysis = Ucp_wcet.Analysis
module Wcet = Ucp_wcet.Wcet
module Classification = Ucp_wcet.Classification

let bb_start program config model =
  let w = Wcet.compute program config model in
  let analysis = w.Wcet.analysis in
  let vivu = Analysis.vivu analysis in
  (* For every block: the distinct memory blocks some slot of some
     instance misses on, represented by the uid of the first missing
     slot (uids survive the relocation the insertions cause). *)
  let wanted : (int, (int * int) list) Hashtbl.t = Hashtbl.create 32 in
  for node_id = 0 to Vivu.node_count vivu - 1 do
    let nd = Vivu.node vivu node_id in
    let block = nd.Vivu.block in
    let n_slots = Program.slots program block in
    for pos = 0 to n_slots - 1 do
      if Classification.is_wcet_miss (Analysis.classif analysis ~node:node_id ~pos)
      then begin
        let mb = Analysis.slot_mem_block analysis ~node:node_id ~pos in
        let instr = Program.slot_instr program ~block ~pos in
        let existing = try Hashtbl.find wanted block with Not_found -> [] in
        if not (List.mem_assoc mb existing) then
          Hashtbl.replace wanted block ((mb, instr.Ucp_isa.Instr.uid) :: existing)
      end
    done
  done;
  Hashtbl.fold (fun block targets acc -> (block, List.rev targets) :: acc) wanted []
  |> List.sort compare
  |> List.fold_left
       (fun p (block, targets) ->
         List.fold_left
           (fun p (_mb, target_uid) ->
             let p, _uid = Program.insert_prefetch p ~block ~pos:0 ~target_uid in
             p)
           p targets)
       program

type locking = {
  locked_blocks : int list;
  tau_locked : int;
}

let wcet_locked program config model ~locked =
  let layout = Layout.make program ~block_bytes:config.Config.block_bytes in
  let vivu = Vivu.expand program in
  let is_locked =
    let tbl = Hashtbl.create 16 in
    List.iter (fun mb -> Hashtbl.replace tbl mb ()) locked;
    fun mb -> Hashtbl.mem tbl mb
  in
  let hit = model.Ucp_energy.Cacti.hit_cycles in
  let miss = hit + model.Ucp_energy.Cacti.miss_penalty in
  let node_cycles =
    Array.init (Vivu.node_count vivu) (fun node_id ->
        let nd = Vivu.node vivu node_id in
        let block = nd.Vivu.block in
        let n_slots = Program.slots program block in
        let total = ref 0 in
        for pos = 0 to n_slots - 1 do
          let mb = Layout.mem_block layout ~block ~pos in
          total := !total + (if is_locked mb then hit else miss)
        done;
        !total)
  in
  let tau, _path = Wcet.longest_path vivu ~node_cycles in
  tau

let lock_greedy program config model =
  let layout = Layout.make program ~block_bytes:config.Config.block_bytes in
  let vivu = Vivu.expand program in
  (* Worst-case access weight of every memory block. *)
  let weight : (int, int) Hashtbl.t = Hashtbl.create 64 in
  for node_id = 0 to Vivu.node_count vivu - 1 do
    let nd = Vivu.node vivu node_id in
    let block = nd.Vivu.block in
    let mult = Vivu.mult vivu node_id in
    for pos = 0 to Program.slots program block - 1 do
      let mb = Layout.mem_block layout ~block ~pos in
      let prev = try Hashtbl.find weight mb with Not_found -> 0 in
      Hashtbl.replace weight mb (prev + mult)
    done
  done;
  (* Per set, keep the [assoc] heaviest blocks. *)
  let per_set : (int, (int * int) list) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun mb wgt ->
      let s = Config.set_of_mem_block config mb in
      let prev = try Hashtbl.find per_set s with Not_found -> [] in
      Hashtbl.replace per_set s ((wgt, mb) :: prev))
    weight;
  let locked_blocks =
    Hashtbl.fold
      (fun _set entries acc ->
        let sorted = List.sort (fun a b -> compare b a) entries in
        let rec take n = function
          | [] -> []
          | (_, mb) :: tl -> if n = 0 then [] else mb :: take (n - 1) tl
        in
        take config.Config.assoc sorted @ acc)
      per_set []
    |> List.sort compare
  in
  { locked_blocks; tau_locked = wcet_locked program config model ~locked:locked_blocks }


type hybrid = {
  hybrid_program : Program.t;
  hybrid_pinned : int list;
  hybrid_config : Config.t;
  hybrid_tau : int;
}

(* Per-set top-[ways] blocks by worst-case access weight — the same
   greedy content selection as [lock_greedy], restricted to the locked
   ways. *)
let select_pinned program config ~ways =
  let layout = Layout.make program ~block_bytes:config.Config.block_bytes in
  let vivu = Vivu.expand program in
  let weight : (int, int) Hashtbl.t = Hashtbl.create 64 in
  for node_id = 0 to Vivu.node_count vivu - 1 do
    let nd = Vivu.node vivu node_id in
    let block = nd.Vivu.block in
    let mult = Vivu.mult vivu node_id in
    for pos = 0 to Program.slots program block - 1 do
      let mb = Layout.mem_block layout ~block ~pos in
      let prev = try Hashtbl.find weight mb with Not_found -> 0 in
      Hashtbl.replace weight mb (prev + mult)
    done
  done;
  let per_set : (int, (int * int) list) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun mb wgt ->
      let s = Config.set_of_mem_block config mb in
      let prev = try Hashtbl.find per_set s with Not_found -> [] in
      Hashtbl.replace per_set s ((wgt, mb) :: prev))
    weight;
  Hashtbl.fold
    (fun _set entries acc ->
      let sorted = List.sort (fun a b -> compare b a) entries in
      let rec take n = function
        | [] -> []
        | (_, mb) :: tl -> if n = 0 then [] else mb :: take (n - 1) tl
      in
      take ways sorted @ acc)
    per_set []
  |> List.sort compare

let lock_hybrid ~ways program config model =
  if ways <= 0 || ways >= config.Config.assoc then
    invalid_arg "Baselines.lock_hybrid: need 0 < ways < associativity";
  let pinned_blocks = select_pinned program config ~ways in
  let pinned =
    let tbl = Hashtbl.create 16 in
    List.iter (fun mb -> Hashtbl.replace tbl mb ()) pinned_blocks;
    fun mb -> Hashtbl.mem tbl mb
  in
  (* the unlocked ways form a cache with the same set count *)
  let unlocked_assoc = config.Config.assoc - ways in
  let hybrid_config =
    Config.make ~assoc:unlocked_assoc ~block_bytes:config.Config.block_bytes
      ~capacity:(unlocked_assoc * config.Config.block_bytes * config.Config.sets)
  in
  let r = Optimizer.optimize ~pinned program hybrid_config model in
  {
    hybrid_program = r.Optimizer.program;
    hybrid_pinned = pinned_blocks;
    hybrid_config;
    hybrid_tau = r.Optimizer.tau_after;
  }
