lib/core/experiments.ml: List Option Pipeline Ucp_cache Ucp_energy Ucp_isa Ucp_util Ucp_workloads
