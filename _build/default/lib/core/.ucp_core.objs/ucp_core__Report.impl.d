lib/core/report.ml: Buffer Experiments Format List Printf String Ucp_cache Ucp_util Ucp_workloads
