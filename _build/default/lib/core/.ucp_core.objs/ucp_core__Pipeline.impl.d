lib/core/pipeline.ml: List Ucp_cache Ucp_energy Ucp_prefetch Ucp_sim Ucp_wcet
