lib/core/report.mli: Experiments
