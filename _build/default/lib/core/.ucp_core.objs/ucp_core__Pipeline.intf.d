lib/core/pipeline.mli: Ucp_cache Ucp_energy Ucp_isa Ucp_prefetch
