lib/core/experiments.mli: Pipeline Ucp_cache Ucp_energy Ucp_isa Ucp_util
