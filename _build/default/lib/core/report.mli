(** Plain-text rendering of the experiment results — the rows/series the
    paper's tables and figures report. *)

val table1 : unit -> string
(** Table 1: program identification. *)

val table2 : unit -> string
(** Table 2: cache configurations k1..k36. *)

val figure3 : Experiments.record list -> string
(** Figure 3: average ACET / energy / WCET improvement per cache size. *)

val figure4 : Experiments.record list -> string
(** Figure 4: average miss rate before/after per cache size. *)

val figure5 : Experiments.record list -> string
(** Figure 5: optimized on 1/2 and 1/4 capacity vs original. *)

val figure7 : Experiments.record list -> string
(** Figure 7: per-use-case WCET ratio distribution at 32 nm. *)

val figure8 : Experiments.record list -> string
(** Figure 8: executed-instruction ratios. *)

val headline : Experiments.record list -> string
(** The abstract's three numbers for this run: average reductions of
    energy, ACET and WCET. *)

val all : Experiments.record list -> string
(** Every table and figure, concatenated. *)
