module Config = Ucp_cache.Config
module Tech = Ucp_energy.Tech
module Cacti = Ucp_energy.Cacti
module Account = Ucp_energy.Account
module Wcet = Ucp_wcet.Wcet
module Analysis = Ucp_wcet.Analysis
module Simulator = Ucp_sim.Simulator
module Optimizer = Ucp_prefetch.Optimizer

type measurement = {
  tau : int;
  acet : int;
  energy_pj : float;
  miss_rate : float;
  executed : int;
  wcet_miss_bound : int;
}

let model config tech = Cacti.model config tech

let measure ?(seed = 42) program config tech =
  let m = model config tech in
  let w = Wcet.compute ~with_may:false program config m in
  let stats = Simulator.run ~seed program config m in
  let breakdown = Account.energy m stats.Simulator.counts in
  {
    tau = Wcet.tau_with_residual w;
    acet = Simulator.acet stats;
    energy_pj = breakdown.Account.total_pj;
    miss_rate = stats.Simulator.miss_rate;
    executed = stats.Simulator.executed;
    wcet_miss_bound = Analysis.miss_count_bound w.Wcet.analysis;
  }

let optimize program config tech =
  Optimizer.optimize program config (model config tech)

type comparison = {
  original : measurement;
  optimized : measurement;
  prefetches : int;
  rejected : int;
}

let compare_optimized ?(seed = 42) program config tech =
  let result = optimize program config tech in
  let original = measure ~seed program config tech in
  let optimized = measure ~seed result.Optimizer.program config tech in
  {
    original;
    optimized;
    prefetches = List.length result.Optimizer.insertions;
    rejected = result.Optimizer.rejected;
  }
