(** The public façade: one-call access to the paper's tool flow.

    A {e use case} is a triple (program, cache configuration, process
    technology), as in Supplement S.4.  [measure] evaluates a program
    under a use case — WCET analysis for τ{_w}, trace simulation for
    ACET/miss rate, the mini-CACTI model for energy — and [optimize]
    derives the prefetch-optimized, prefetch-equivalent binary. *)

type measurement = {
  tau : int;  (** memory contribution to the WCET, cycles *)
  acet : int;  (** memory contribution to the ACET, cycles *)
  energy_pj : float;  (** memory-system energy of the simulated run *)
  miss_rate : float;  (** demand miss rate of the simulated run *)
  executed : int;  (** dynamically executed instructions *)
  wcet_miss_bound : int;  (** the analysis' bound on demand misses *)
}

val model :
  Ucp_cache.Config.t -> Ucp_energy.Tech.t -> Ucp_energy.Cacti.t
(** The timing/energy model of a use case. *)

val measure :
  ?seed:int ->
  Ucp_isa.Program.t ->
  Ucp_cache.Config.t ->
  Ucp_energy.Tech.t ->
  measurement
(** Analyze and simulate one program under one use case. *)

val optimize :
  Ucp_isa.Program.t ->
  Ucp_cache.Config.t ->
  Ucp_energy.Tech.t ->
  Ucp_prefetch.Optimizer.result
(** The paper's optimization for this use case. *)

type comparison = {
  original : measurement;
  optimized : measurement;
  prefetches : int;  (** accepted prefetch insertions *)
  rejected : int;  (** candidates rolled back by the safety net *)
}

val compare_optimized :
  ?seed:int ->
  Ucp_isa.Program.t ->
  Ucp_cache.Config.t ->
  Ucp_energy.Tech.t ->
  comparison
(** Optimize and evaluate both versions under the same use case.
    Theorem 1 materializes as
    [optimized.tau <= original.tau]. *)
