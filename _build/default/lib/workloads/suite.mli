(** The 37-program workload suite (Table 1 of the paper).

    The paper evaluates on the Mälardalen WCET benchmark compiled to
    ARMv7.  No C toolchain for the mini-RISC exists here, so each
    program is hand-modeled in the {!Dsl}: same name, and a control-flow
    skeleton mirroring the original's documented structure (loop nests,
    bounds, branchiness, code size class).  The instruction-cache
    behaviour the technique exercises depends only on those features
    (see DESIGN.md, substitutions). *)

val all : (string * Ucp_isa.Program.t) list
(** All 37 programs, in the paper's Table 1 order (["adpcm"] = p1 ...). *)

val find : string -> Ucp_isa.Program.t
(** @raise Not_found for unknown names. *)

val names : string list
(** The 37 names. *)

val paper_id : string -> string
(** ["adpcm"] -> ["p1"] etc.
    @raise Not_found for unknown names. *)

val size_class : Ucp_isa.Program.t -> string
(** ["small"] (< 150 slots), ["medium"] (< 700) or ["large"]. *)
