module Program = Ucp_isa.Program
module Branch_model = Ucp_isa.Branch_model

type stmt =
  | Compute of int
  | If of Branch_model.t * stmt list * stmt list
  | Loop of { bound : int; trips : int; body : stmt list }
  | Call of string
  | Far of stmt list

let compute n = Compute n
let if_ ?(p = 0.5) then_ else_ = If (Branch_model.Bernoulli p, then_, else_)
let if_every k then_ else_ = If (Branch_model.Every k, then_, else_)

let loop ?bound trips body =
  let bound = match bound with Some b -> b | None -> trips in
  Loop { bound; trips; body }

let call name = Call name
let far_call name = Far [ Call name ]

(* Block under construction; terminators are patched in as the
   structure unfolds. *)
type bterm =
  | T_fall of int
  | T_jump of int
  | T_cond of { taken : int; fallthrough : int; model : Branch_model.t }
  | T_return

type bblock = {
  mutable body : int;
  mutable term : bterm option;
  mutable bound : int option;
  far : bool;  (* lay this block out after the main region *)
}

type builder = {
  blocks : (int, bblock) Hashtbl.t;
  mutable count : int;
  mutable cur : int;
  mutable far_depth : int;
  procs : (string * stmt list) list;
  name : string;
}

let new_block b =
  let id = b.count in
  b.count <- b.count + 1;
  Hashtbl.replace b.blocks id
    { body = 0; term = None; bound = None; far = b.far_depth > 0 };
  id

let block b id = Hashtbl.find b.blocks id

let emit b n =
  if n < 0 then invalid_arg (Printf.sprintf "Dsl(%s): negative Compute" b.name);
  let blk = block b b.cur in
  blk.body <- blk.body + n

let finish b term =
  let blk = block b b.cur in
  assert (blk.term = None);
  blk.term <- Some term

let rec compile_stmts b stack stmts = List.iter (compile_stmt b stack) stmts

and compile_stmt b stack = function
  | Compute n -> emit b n
  | If (model, then_, else_) ->
    let then_b = new_block b in
    let else_b = new_block b in
    finish b (T_cond { taken = then_b; fallthrough = else_b; model });
    b.cur <- then_b;
    compile_stmts b stack then_;
    let then_end = b.cur in
    b.cur <- else_b;
    compile_stmts b stack else_;
    let else_end = b.cur in
    let join_b = new_block b in
    b.cur <- then_end;
    finish b (T_jump join_b);
    b.cur <- else_end;
    finish b (T_fall join_b);
    b.cur <- join_b
  | Loop { bound; trips; body } ->
    if body = [] then invalid_arg (Printf.sprintf "Dsl(%s): empty loop body" b.name);
    if trips < 1 then invalid_arg (Printf.sprintf "Dsl(%s): loop needs >= 1 trip" b.name);
    if trips > bound then
      invalid_arg (Printf.sprintf "Dsl(%s): loop trips exceed its bound" b.name);
    let head = new_block b in
    finish b (T_fall head);
    (block b head).bound <- Some bound;
    b.cur <- head;
    compile_stmts b stack body;
    let after = new_block b in
    finish b
      (T_cond { taken = head; fallthrough = after; model = Branch_model.trips trips });
    b.cur <- after
  | Far body ->
    let far_entry =
      (b.far_depth <- b.far_depth + 1;
       let id = new_block b in
       b.far_depth <- b.far_depth - 1;
       id)
    in
    finish b (T_jump far_entry);
    b.cur <- far_entry;
    b.far_depth <- b.far_depth + 1;
    compile_stmts b stack body;
    b.far_depth <- b.far_depth - 1;
    let back = new_block b in
    finish b (T_jump back);
    b.cur <- back
  | Call name ->
    if List.mem name stack then
      invalid_arg (Printf.sprintf "Dsl(%s): recursive call of %s" b.name name);
    let body =
      match List.assoc_opt name b.procs with
      | Some body -> body
      | None -> invalid_arg (Printf.sprintf "Dsl(%s): unknown procedure %s" b.name name)
    in
    compile_stmts b (name :: stack) body

let compile ?(procs = []) ~name stmts =
  let b =
    { blocks = Hashtbl.create 32; count = 0; cur = 0; far_depth = 0; procs; name }
  in
  let entry = new_block b in
  b.cur <- entry;
  compile_stmts b [] stmts;
  finish b T_return;
  (* Block ids determine the address layout, so place far-marked blocks
     after the whole main region: stable permutation + target remap. *)
  let order =
    let near = ref [] and far = ref [] in
    for id = b.count - 1 downto 0 do
      if (block b id).far then far := id :: !far else near := id :: !near
    done;
    Array.of_list (!near @ !far)
  in
  let remap = Array.make b.count 0 in
  Array.iteri (fun new_id old_id -> remap.(old_id) <- new_id) order;
  let specs =
    Array.map
      (fun old_id ->
        let blk = block b old_id in
        let spec_term =
          match blk.term with
          | None -> assert false
          | Some (T_fall target) -> Program.S_fallthrough remap.(target)
          | Some (T_jump target) -> Program.S_jump remap.(target)
          | Some (T_cond { taken; fallthrough; model }) ->
            Program.S_cond
              { taken = remap.(taken); fallthrough = remap.(fallthrough); model }
          | Some T_return -> Program.S_return
        in
        { Program.spec_body = blk.body; spec_term; spec_bound = blk.bound })
      order
  in
  Program.make ~name ~entry:remap.(entry) specs
