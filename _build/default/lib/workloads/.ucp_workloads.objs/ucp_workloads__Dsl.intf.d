lib/workloads/dsl.mli: Ucp_isa
