lib/workloads/dsl.ml: Array Hashtbl List Printf Ucp_isa
