lib/workloads/suite.mli: Ucp_isa
