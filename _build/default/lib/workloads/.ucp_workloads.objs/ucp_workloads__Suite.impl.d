lib/workloads/suite.ml: Dsl List Printf Ucp_isa
