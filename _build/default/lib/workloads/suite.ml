open Dsl

(* Each builder mirrors the documented control structure of its
   Mälardalen namesake: loop nests and bounds, branch density, and code
   size class.  Straight-line work is abstracted into [compute]
   payloads.  Recursive originals (fac, fibcall, recursion) are modeled
   as bounded loops over the recursion depth, as WCET analyses of the
   suite commonly do after inlining/flattening. *)

(* ADPCM encoder/decoder: sample loop around quantization if-trees and a
   short predictor-update loop. *)
let adpcm =
  let quantize =
    [
      compute 64;
      if_ ~p:0.5 [ compute 52 ] [ compute 44 ];
      if_ ~p:0.7 [ compute 38; if_ ~p:0.5 [ compute 30 ] [ compute 22 ] ] [ compute 46 ];
    ]
  in
  let predictor = [ compute 56; if_ ~p:0.5 [ compute 24 ] [ compute 20 ]; compute 40 ] in
  compile ~name:"adpcm"
    ~procs:[ ("quantize", quantize); ("predictor", predictor) ]
    [
      compute 40;
      loop 64
        [
          compute 76;
          far_call "quantize";
          loop 8 [ compute 18 ];
          if_ ~p:0.5 [ compute 84 ] [ compute 70 ];
          far_call "predictor";
          compute 68;
          far_call "quantize";
          compute 58;
        ];
      compute 20;
    ]

(* Binary search over 15 elements: a short loop with a three-way test. *)
let bs =
  compile ~name:"bs"
    [
      compute 8;
      loop 4 ~bound:5
        [ compute 6; if_ ~p:0.5 [ compute 4 ] [ compute 5 ]; compute 3 ];
      compute 4;
    ]

(* Bubble sort of 100 elements: the classic quadratic double loop with a
   data-dependent swap. *)
let bsort100 =
  compile ~name:"bsort100"
    [
      compute 10;
      loop 50
        [ compute 4; loop 50 [ compute 5; if_ ~p:0.4 [ compute 6 ] [ compute 1 ] ] ];
      compute 4;
    ]

(* Counts non-negative numbers in a 10x10 matrix. *)
let cnt =
  compile ~name:"cnt"
    [
      compute 12;
      loop 10
        [ compute 3; loop 10 [ compute 8; if_ ~p:0.5 [ compute 5 ] [ compute 4 ] ] ];
      compute 8;
    ]

(* LZW-style compression: a long input loop over hash-probe if/else
   chains. *)
let compress =
  let probe = [ compute 60; if_ ~p:0.5 [ compute 44 ] [ compute 38 ] ] in
  compile ~name:"compress"
    ~procs:[ ("probe", probe) ]
    [
      compute 30;
      loop 128
        [
          compute 64;
          if_ ~p:0.6
            [ far_call "probe"; compute 48 ]
            [ compute 88; if_ ~p:0.65 [ compute 52 ] [ compute 34 ] ];
          compute 58;
        ];
      compute 12;
    ]

(* cover: a loop over three big switch statements (modeled as chains of
   rarely-taken tests). *)
let cover =
  let case n = if_every n [ compute 14 ] [ compute 6 ] in
  compile ~name:"cover"
    [
      compute 8;
      loop 20
        [
          compute 12;
          case 3; case 4; case 5; case 6; case 7; case 8; case 9; case 10;
          compute 12;
          case 3; case 5; case 7; case 9; case 11; case 13;
          compute 12;
          case 2; case 4; case 8; case 16; case 6; case 12;
          compute 12;
        ];
      compute 6;
    ]

(* CRC over 256 message bytes with a bit-test branch per byte. *)
let crc =
  let update = [ compute 22; if_ ~p:0.5 [ compute 12 ] [ compute 9 ] ] in
  compile ~name:"crc"
    ~procs:[ ("update", update) ]
    [
      compute 16;
      loop 256 [ compute 14; far_call "update"; compute 9 ];
      compute 8;
    ]

(* Duff's device: an unrolled copy loop with a large straight body. *)
let duff =
  compile ~name:"duff"
    [ compute 12; loop 16 [ compute 320 ]; compute 6 ]

(* edn: a sequence of DSP kernels (FIR, latsynth, iir, ...) - several
   independent loop nests executed back to back. *)
let edn =
  let mac = [ compute 24 ] in
  compile ~name:"edn"
    ~procs:[ ("mac", mac) ]
    [
      compute 16;
      loop 8
        [
          compute 30;
          loop 10 [ compute 22; loop 4 [ compute 9; far_call "mac" ] ];
          compute 70;
          loop 6 [ compute 48 ];
          compute 66;
          loop 8 [ compute 18; far_call "mac" ];
          compute 62;
          loop 8 [ compute 32; if_ ~p:0.5 [ compute 14 ] [ compute 10 ] ];
          compute 58;
        ];
      compute 6;
    ]

(* Exponential integral: outer series loop with an inner product loop. *)
let expint =
  compile ~name:"expint"
    [
      compute 14;
      loop 40
        [
          compute 16;
          loop 10 ~bound:12 [ compute 8 ];
          if_ ~p:0.75 [ compute 15; compute 9 ] [ compute 11 ];
          compute 12;
        ];
      compute 6;
    ]

(* Factorial, recursion depth 12, flattened to a loop. *)
let fac = compile ~name:"fac" [ compute 6; loop 12 [ compute 8 ]; compute 4 ]

(* Forward DCT: two large straight-line passes per block row. *)
let fdct =
  compile ~name:"fdct"
    [ compute 10; loop 8 [ compute 300 ]; loop 8 [ compute 280 ]; compute 8 ]

(* 1024-point FFT: butterfly triple nest plus a twiddle procedure. *)
let fft1 =
  let twiddle = [ compute 16; if_ ~p:0.5 [ compute 8 ] [ compute 6 ] ] in
  compile ~name:"fft1"
    ~procs:[ ("twiddle", twiddle) ]
    [
      compute 24;
      loop 8
        [
          compute 8;
          loop 16 [ compute 12; far_call "twiddle"; compute 14 ];
          compute 6;
        ];
      loop 32 [ compute 10 ];
      compute 10;
    ]

(* Fibonacci by iteration (the original is a recursive call chain). *)
let fibcall = compile ~name:"fibcall" [ compute 5; loop 30 [ compute 6 ]; compute 3 ]

(* FIR filter over 64 samples with a 16-tap inner product. *)
let fir =
  let dot = [ compute 12 ] in
  compile ~name:"fir"
    ~procs:[ ("dot", dot) ]
    [
      compute 12;
      loop 64 [ compute 13; loop 4 [ compute 6; far_call "dot" ]; compute 11 ];
      compute 5;
    ]

(* icall: indirect handler dispatch, modeled as a selection tree over
   four inlined handlers. *)
let icall =
  let handler n = [ compute (60 + (3 * n)); if_ ~p:0.5 [ compute 22 ] [ compute 16 ] ] in
  compile ~name:"icall"
    ~procs:
      [
        ("h0", handler 0); ("h1", handler 3); ("h2", handler 6); ("h3", handler 9);
      ]
    [
      compute 10;
      loop 32
        [
          compute 18;
          if_ ~p:0.25
            [ far_call "h0" ]
            [ if_ ~p:0.33 [ far_call "h1" ] [ if_ ~p:0.5 [ far_call "h2" ] [ far_call "h3" ] ] ];
          compute 15;
        ];
      compute 5;
    ]

(* Insertion sort of 10 elements. *)
let insertsort =
  compile ~name:"insertsort"
    [
      compute 8;
      loop 10 [ compute 5; loop 6 ~bound:10 [ compute 7; if_ ~p:0.5 [ compute 3 ] [ compute 2 ] ] ];
      compute 4;
    ]

(* janne_complex: two nested while loops whose bounds interact. *)
let janne_complex =
  compile ~name:"janne_complex"
    [
      compute 8;
      loop 15
        [
          compute 21;
          loop 12 ~bound:16
            [ compute 12; if_ ~p:0.65 [ compute 13; if_ ~p:0.5 [ compute 8 ] [ compute 7 ] ] [ compute 9 ] ];
          if_ ~p:0.5 [ compute 16 ] [ compute 12 ];
          compute 10;
        ];
      compute 6;
    ]

(* JPEG integer DCT: loop over big straight-line slices. *)
let jfdctint =
  compile ~name:"jfdctint"
    [
      compute 12;
      loop 6
        [ compute 10; loop 4 [ compute 240 ]; compute 8; loop 4 [ compute 225 ] ];
      compute 10;
    ]

(* LCD digit decoding: a small loop over a 10-case switch. *)
let lcdnum =
  let case n = if_every n [ compute 4 ] [ compute 2 ] in
  compile ~name:"lcdnum"
    [
      compute 5;
      loop 10 [ compute 3; case 2; case 3; case 4; case 5; case 6; compute 2 ];
      compute 3;
    ]

(* LMS adaptive filter: sample loop with filter and update inner loops. *)
let lms =
  let tap = [ compute 120 ] in
  let update = [ compute 150; if_ ~p:0.5 [ compute 56 ] [ compute 48 ] ] in
  compile ~name:"lms"
    ~procs:[ ("tap", tap); ("update", update) ]
    [
      compute 16;
      loop 64
        [
          compute 160;
          loop 4 [ compute 66; far_call "tap" ];
          if_ ~p:0.5 [ compute 132 ] [ compute 112 ];
          loop 4 [ compute 80; far_call "update" ];
          compute 150;
        ];
      compute 8;
    ]

(* loop3: a long sequence of simple counted loops. *)
let loop3 =
  let seg = loop 10 [ compute 64 ] in
  compile ~name:"loop3"
    [
      compute 6;
      loop 6
        [
          seg; compute 48; seg; compute 48; seg; compute 48; seg; compute 48;
          seg; compute 48; seg; compute 48; seg; compute 48; seg; compute 48;
          seg; compute 48; seg; compute 48; seg; compute 48; seg;
        ];
      compute 6;
    ]

(* LU decomposition of a 6x6 system: triangular triple nest. *)
let ludcmp =
  let pivot = [ compute 16; if_ ~p:0.6 [ compute 8 ] [ compute 6 ] ] in
  compile ~name:"ludcmp"
    ~procs:[ ("pivot", pivot) ]
    [
      compute 14;
      loop 6
        [
          compute 14;
          loop 6 [ compute 12; loop 6 [ compute 9 ] ];
          far_call "pivot";
          compute 12;
        ];
      loop 6 [ compute 14; loop 6 [ compute 10 ] ];
      compute 8;
    ]

(* 12x12 integer matrix multiplication. *)
let matmult =
  compile ~name:"matmult"
    [
      compute 10;
      loop 12 [ compute 4; loop 12 [ compute 4; loop 12 [ compute 8 ]; compute 3 ] ];
      compute 5;
    ]

(* Matrix inversion with pivoting conditionals. *)
let minver =
  let row_elim = [ compute 20; if_ ~p:0.5 [ compute 7 ] [ compute 6 ] ] in
  compile ~name:"minver"
    ~procs:[ ("row_elim", row_elim) ]
    [
      compute 16;
      loop 6
        [
          compute 18;
          if_ ~p:0.5 [ compute 15 ] [ compute 12 ];
          loop 6 [ compute 12; far_call "row_elim" ];
          loop 6 [ compute 13 ];
          compute 10;
        ];
      compute 10;
    ]

(* ndes: 16 cipher rounds (modeled as 32 iterations of S-box work). *)
let ndes =
  let round = [ compute 48; if_ ~p:0.5 [ compute 20 ] [ compute 17 ]; compute 30 ] in
  compile ~name:"ndes"
    ~procs:[ ("round", round) ]
    [
      compute 20;
      loop 32 [ compute 26; far_call "round"; compute 22; far_call "round"; compute 18 ];
      compute 12;
    ]

(* ns: search in a 4-dimensional 5x5x5x5 array. *)
let ns =
  compile ~name:"ns"
    [
      compute 8;
      loop 5
        [ compute 2; loop 5 [ compute 2; loop 5 [ compute 2; loop 5 [ compute 6; if_ ~p:0.1 [ compute 4 ] [ compute 1 ] ] ] ] ];
      compute 4;
    ]

(* nsichneu: the suite's giant - a Petri-net simulation of hundreds of
   sequential guarded updates, iterated twice. *)
let nsichneu =
  let seg p = if_ ~p [ compute 13; compute 6 ] [ compute 5 ] in
  let body =
    let rec build n acc =
      if n = 0 then List.rev acc
      else
        build (n - 1)
          (seg (if n mod 3 = 0 then 0.5 else if n mod 3 = 1 then 0.65 else 0.8)
          :: compute 5 :: acc)
    in
    build 88 []
  in
  compile ~name:"nsichneu" [ compute 10; loop 4 (compute 6 :: body); compute 6 ]

(* Prime sieve over 50 candidates with a trial-division inner loop. *)
let prime =
  let divides = [ compute 9; if_ ~p:0.55 [ compute 5 ] [ compute 4 ] ] in
  compile ~name:"prime"
    ~procs:[ ("divides", divides) ]
    [
      compute 8;
      loop 50
        [ compute 12; loop 6 ~bound:8 [ compute 7; far_call "divides" ]; compute 9 ];
      compute 4;
    ]

(* Quicksort on 20 elements: partition loops with data-driven branches. *)
let qsort_exam =
  let cmp = [ compute 11; if_ ~p:0.5 [ compute 6 ] [ compute 5 ] ] in
  compile ~name:"qsort_exam"
    ~procs:[ ("cmp", cmp) ]
    [
      compute 12;
      loop 20
        [
          compute 14;
          loop 6 ~bound:10 [ compute 8; far_call "cmp" ];
          loop 5 ~bound:10 [ compute 9; if_ ~p:0.5 [ compute 6 ] [ compute 7 ] ];
          if_ ~p:0.5 [ compute 14 ] [ compute 11 ];
          compute 8;
        ];
      compute 6;
    ]

(* Square-root computation of quadratic roots (qurt). *)
let qurt =
  let sqrt_proc = [ compute 18; loop 12 [ compute 16 ]; compute 12 ] in
  compile ~name:"qurt"
    ~procs:[ ("sqrt", sqrt_proc) ]
    [
      compute 14;
      loop 20 [ compute 8; far_call "sqrt"; if_ ~p:0.5 [ compute 7 ] [ compute 5 ]; compute 4 ];
      compute 6;
    ]

(* recursion: Ackermann-flavoured mutual recursion flattened to a
   bounded loop over the call depth. *)
let recursion =
  compile ~name:"recursion"
    [ compute 6; loop 25 [ compute 9; if_ ~p:0.5 [ compute 5 ] [ compute 4 ] ]; compute 4 ]

(* select: selection of the k-th smallest element (partition loops). *)
let select =
  let part = [ compute 10; if_ ~p:0.5 [ compute 5 ] [ compute 4 ] ] in
  compile ~name:"select"
    ~procs:[ ("part", part) ]
    [
      compute 10;
      loop 15
        [
          compute 16;
          loop 10 ~bound:12 [ compute 9; far_call "part" ];
          if_ ~p:0.6 [ compute 17 ] [ compute 12 ];
          compute 9;
        ];
      compute 5;
    ]

(* Integer square root by Newton iteration. *)
let sqrt_bench =
  compile ~name:"sqrt"
    [
      compute 8;
      loop 19 [ compute 28; if_ ~p:0.5 [ compute 12 ] [ compute 9 ]; compute 14 ];
      compute 4;
    ]

(* st: statistics pipeline - sum, mean, variance, correlation loops over
   two 50-element arrays. *)
let st =
  let acc = [ compute 40 ] in
  compile ~name:"st"
    ~procs:[ ("acc", acc) ]
    [
      compute 10;
      loop 8
        [
          compute 170;
          loop 10 [ compute 38; far_call "acc" ];
          compute 180;
          loop 10 [ compute 48; far_call "acc" ];
          compute 172;
          loop 10 [ compute 82 ];
          compute 168;
          loop 10 [ compute 64; if_ ~p:0.5 [ compute 24 ] [ compute 20 ] ];
          compute 160;
        ];
      compute 8;
    ]

(* statemate: generated statechart code - a shallow loop over many
   guarded transition blocks. *)
let statemate =
  let trans p =
    if_ ~p
      [ compute 16; far_call "action"; if_ ~p:0.5 [ compute 12 ] [ compute 10 ] ]
      [ compute 7 ]
  in
  let body =
    let rec build n acc =
      if n = 0 then List.rev acc
      else build (n - 1) (trans (0.45 +. (0.1 *. float_of_int (n mod 5))) :: compute 4 :: acc)
    in
    build 30 []
  in
  compile ~name:"statemate"
    ~procs:[ ("action", [ compute 10; if_ ~p:0.5 [ compute 4 ] [ compute 3 ] ]) ]
    [ compute 12; loop 8 (compute 8 :: body); compute 6 ]

(* ud: LU-based linear system solve, two triangular nests. *)
let ud =
  let solve_row = [ compute 13 ] in
  compile ~name:"ud"
    ~procs:[ ("solve_row", solve_row) ]
    [
      compute 12;
      loop 8 [ compute 12; loop 8 [ compute 8; far_call "solve_row" ] ];
      compute 5;
      loop 8 [ compute 11; loop 8 [ compute 9 ]; if_ ~p:0.5 [ compute 8 ] [ compute 7 ] ];
      compute 6;
    ]

let all =
  [
    ("adpcm", adpcm);
    ("bs", bs);
    ("bsort100", bsort100);
    ("cnt", cnt);
    ("compress", compress);
    ("cover", cover);
    ("crc", crc);
    ("duff", duff);
    ("edn", edn);
    ("expint", expint);
    ("fac", fac);
    ("fdct", fdct);
    ("fft1", fft1);
    ("fibcall", fibcall);
    ("fir", fir);
    ("icall", icall);
    ("insertsort", insertsort);
    ("janne_complex", janne_complex);
    ("jfdctint", jfdctint);
    ("lcdnum", lcdnum);
    ("lms", lms);
    ("loop3", loop3);
    ("ludcmp", ludcmp);
    ("matmult", matmult);
    ("minver", minver);
    ("ndes", ndes);
    ("ns", ns);
    ("nsichneu", nsichneu);
    ("prime", prime);
    ("qsort_exam", qsort_exam);
    ("qurt", qurt);
    ("recursion", recursion);
    ("select", select);
    ("sqrt", sqrt_bench);
    ("st", st);
    ("statemate", statemate);
    ("ud", ud);
  ]

let find name = List.assoc name all

let names = List.map fst all

let paper_id name =
  let rec index i = function
    | [] -> raise Not_found
    | (n, _) :: tl -> if n = name then i else index (i + 1) tl
  in
  Printf.sprintf "p%d" (1 + index 0 all)

let size_class program =
  let slots = Ucp_isa.Program.total_slots program in
  if slots < 150 then "small" else if slots < 700 then "medium" else "large"
