lib/sim/simulator.ml: Array Hashtbl Hw_prefetch List Printf Ucp_cache Ucp_energy Ucp_isa Ucp_util
