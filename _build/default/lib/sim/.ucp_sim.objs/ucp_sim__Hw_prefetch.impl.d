lib/sim/hw_prefetch.ml: Array Hashtbl List Printf Ucp_isa
