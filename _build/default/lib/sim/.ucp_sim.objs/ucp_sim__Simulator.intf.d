lib/sim/simulator.mli: Hw_prefetch Ucp_cache Ucp_energy Ucp_isa
