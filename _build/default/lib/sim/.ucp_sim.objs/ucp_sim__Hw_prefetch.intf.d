lib/sim/hw_prefetch.mli:
