type fetch_info = {
  mem_block : int;
  hit : bool;
  is_branch : bool;
  branch_addr : int;
  target_addr : int option;
  taken : bool option;
}

type t = { name : string; observe : fetch_info -> int list }

let name t = t.name
let observe t info = t.observe info

let none () = { name = "none"; observe = (fun _ -> []) }

let next_line_always () =
  { name = "next-line-always"; observe = (fun info -> [ info.mem_block + 1 ]) }

let next_line_on_miss () =
  {
    name = "next-line-on-miss";
    observe = (fun info -> if info.hit then [] else [ info.mem_block + 1 ]);
  }

let next_line_tagged () =
  let touched = Hashtbl.create 64 in
  {
    name = "next-line-tagged";
    observe =
      (fun info ->
        if Hashtbl.mem touched info.mem_block then []
        else begin
          Hashtbl.replace touched info.mem_block ();
          [ info.mem_block + 1 ]
        end);
  }

let next_n_line n =
  {
    name = Printf.sprintf "next-%d-line" n;
    observe =
      (fun info ->
        if info.hit then []
        else List.init n (fun i -> info.mem_block + 1 + i));
  }

(* A direct-mapped reference prediction table: branch address -> last
   taken-target address. *)
let make_rpt ~both ~size ~block_bytes =
  let table = Array.make size None in
  let slot addr = addr / Ucp_isa.Instr.bytes mod size in
  let observe info =
    if not info.is_branch then []
    else begin
      let s = slot info.branch_addr in
      let predictions =
        match table.(s) with
        | Some (tag, target) when tag = info.branch_addr ->
          let target_block = target / block_bytes in
          if both then [ target_block; (info.branch_addr / block_bytes) + 1 ]
          else [ target_block ]
        | Some _ | None -> []
      in
      (match (info.taken, info.target_addr) with
      | Some true, Some target -> table.(s) <- Some (info.branch_addr, target)
      | _, _ -> ());
      predictions
    end
  in
  observe

let target_rpt ~size ~block_bytes =
  { name = "target-rpt"; observe = make_rpt ~both:false ~size ~block_bytes }

let wrong_path ~size ~block_bytes =
  { name = "wrong-path"; observe = make_rpt ~both:true ~size ~block_bytes }

let all_schemes ~block_bytes =
  [
    ("none", none);
    ("next-line-always", next_line_always);
    ("next-line-on-miss", next_line_on_miss);
    ("next-line-tagged", next_line_tagged);
    ("next-2-line", fun () -> next_n_line 2);
    ("target-rpt", fun () -> target_rpt ~size:64 ~block_bytes);
    ("wrong-path", fun () -> wrong_path ~size:64 ~block_bytes);
  ]
