(** Hardware prefetcher interface for the trace simulator, plus the
    classic schemes the paper's related-work section surveys
    (Section 2): sequential next-line / next-N-line prefetching [18],
    target prefetching with a reference prediction table [19], and
    wrong-path prefetching [13].

    A hardware prefetcher observes every fetch and returns memory blocks
    to load through the non-blocking port.  Unlike software prefetching
    it costs no instruction slot, but every issued load consumes DRAM
    energy even when useless (the energy-inefficiency the paper
    motivates avoiding). *)

type fetch_info = {
  mem_block : int;  (** block of the fetched instruction *)
  hit : bool;
  is_branch : bool;  (** conditional branch slot *)
  branch_addr : int;  (** address of the fetched instruction *)
  target_addr : int option;  (** branch-target address, for branches *)
  taken : bool option;  (** outcome, for branches *)
}

type t
(** A (possibly stateful) hardware prefetcher instance. *)

val name : t -> string

val observe : t -> fetch_info -> int list
(** Blocks to prefetch in response to one fetch. *)

val none : unit -> t
(** No hardware prefetching (the paper's default platform). *)

val next_line_always : unit -> t
(** Prefetch block [b+1] on every reference to block [b]. *)

val next_line_on_miss : unit -> t
(** Prefetch [b+1] only when the reference to [b] missed. *)

val next_line_tagged : unit -> t
(** Prefetch [b+1] on the first reference to [b] since it was filled
    (one-bit tag per block, unbounded table for simplicity). *)

val next_n_line : int -> t
(** [next_n_line n]: prefetch blocks [b+1 .. b+n] on a miss on [b]. *)

val target_rpt : size:int -> block_bytes:int -> t
(** Target prefetching [19]: a direct-mapped reference prediction table
    of [size] entries maps a branch address to its last taken-target
    address; matching fetches prefetch the predicted target's block. *)

val wrong_path : size:int -> block_bytes:int -> t
(** Wrong-path prefetching [13]: like {!target_rpt} but prefetches both
    the recorded target and the fall-through block on a match. *)

val all_schemes : block_bytes:int -> (string * (unit -> t)) list
(** Fresh constructors for every scheme (for sweep experiments). *)
