(** Exact rational arithmetic over native integers.

    The simplex solver needs exact pivoting to avoid the tolerance
    tuning of floating-point implementations.  Numerators and
    denominators are OCaml [int]s kept reduced by gcd; arithmetic that
    would overflow raises {!Overflow} instead of silently wrapping.
    IPET instances have tiny coefficients (block times and loop bounds),
    so overflow is a defensive guard rather than an expected event. *)

type t
(** A reduced fraction with positive denominator. *)

exception Overflow
(** Raised when a result does not fit in a native [int]. *)

val make : int -> int -> t
(** [make num den].  @raise Division_by_zero if [den = 0]. *)

val of_int : int -> t
val zero : t
val one : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero on division by {!zero}. *)

val neg : t -> t
val abs : t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val min : t -> t -> t
val max : t -> t -> t

val is_integer : t -> bool
val floor : t -> int
val ceil : t -> int
val to_float : t -> float
val to_int_exn : t -> int
(** @raise Invalid_argument if the value is not an integer. *)

val pp : Format.formatter -> t -> unit
