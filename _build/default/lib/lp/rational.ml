type t = { num : int; den : int }

exception Overflow

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let checked_mul a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / a <> b then raise Overflow else p

let checked_add a b =
  let s = a + b in
  if (a >= 0 && b >= 0 && s < 0) || (a < 0 && b < 0 && s >= 0) then raise Overflow
  else s

let normalize num den =
  if den = 0 then raise Division_by_zero;
  if num = 0 then { num = 0; den = 1 }
  else
    let s = if den < 0 then -1 else 1 in
    let num = num * s and den = den * s in
    let g = abs (gcd num den) in
    { num = num / g; den = den / g }

let make num den = normalize num den
let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1

let num t = t.num
let den t = t.den

let add a b =
  let g = abs (gcd a.den b.den) in
  let da = a.den / g and db = b.den / g in
  normalize (checked_add (checked_mul a.num db) (checked_mul b.num da)) (checked_mul a.den db)

let neg a = { a with num = -a.num }

let sub a b = add a (neg b)

let mul a b =
  (* cross-reduce before multiplying to delay overflow *)
  let g1 = abs (gcd a.num b.den) and g2 = abs (gcd b.num a.den) in
  let g1 = if g1 = 0 then 1 else g1 and g2 = if g2 = 0 then 1 else g2 in
  normalize (checked_mul (a.num / g1) (b.num / g2)) (checked_mul (a.den / g2) (b.den / g1))

let div a b =
  if b.num = 0 then raise Division_by_zero;
  mul a { num = b.den; den = b.num } |> fun r -> normalize r.num r.den

let abs a = { a with num = Stdlib.abs a.num }

let compare a b =
  (* a.num/a.den ? b.num/b.den ; exact via cross multiplication *)
  compare (checked_mul a.num b.den) (checked_mul b.num a.den)

let equal a b = a.num = b.num && a.den = b.den

let sign a = Stdlib.compare a.num 0

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let is_integer a = a.den = 1

let floor a =
  if a.num >= 0 then a.num / a.den
  else
    let q = a.num / a.den in
    if a.num mod a.den = 0 then q else q - 1

let ceil a = -floor (neg a)

let to_float a = float_of_int a.num /. float_of_int a.den

let to_int_exn a =
  if a.den <> 1 then invalid_arg "Rational.to_int_exn: not an integer" else a.num

let pp ppf a =
  if a.den = 1 then Format.pp_print_int ppf a.num
  else Format.fprintf ppf "%d/%d" a.num a.den
