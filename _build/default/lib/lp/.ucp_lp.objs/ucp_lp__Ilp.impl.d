lib/lp/ilp.ml: Array Rational Simplex
