lib/lp/simplex.mli: Rational
