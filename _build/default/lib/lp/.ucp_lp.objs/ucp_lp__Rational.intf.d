lib/lp/rational.mli: Format
