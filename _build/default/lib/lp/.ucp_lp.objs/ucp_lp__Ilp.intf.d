lib/lp/ilp.mli: Rational Simplex
