lib/lp/rational.ml: Format Stdlib
