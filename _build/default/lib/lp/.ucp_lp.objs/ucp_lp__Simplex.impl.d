lib/lp/simplex.ml: Array List Rational
