(* Tests for Ucp_isa: instructions, programs, and the end-anchored
   layout with its relocation discipline. *)

module Instr = Ucp_isa.Instr
module Program = Ucp_isa.Program
module Layout = Ucp_isa.Layout
module Branch_model = Ucp_isa.Branch_model

let straightline n =
  Program.make ~name:"line" ~entry:0
    [| { Program.spec_body = n; spec_term = Program.S_return; spec_bound = None } |]

let diamond () =
  Program.make ~name:"diamond" ~entry:0
    [|
      {
        Program.spec_body = 2;
        spec_term =
          Program.S_cond
            { taken = 1; fallthrough = 2; model = Branch_model.Bernoulli 0.5 };
        spec_bound = None;
      };
      { Program.spec_body = 3; spec_term = Program.S_jump 3; spec_bound = None };
      { Program.spec_body = 1; spec_term = Program.S_fallthrough 3; spec_bound = None };
      { Program.spec_body = 2; spec_term = Program.S_return; spec_bound = None };
    |]

(* ------------------------------------------------------------------ *)
(* Instr *)

let test_instr_kinds () =
  let c = Instr.compute ~uid:1 in
  let p = Instr.prefetch ~uid:2 ~target:1 in
  Alcotest.(check bool) "compute is not prefetch" false (Instr.is_prefetch c);
  Alcotest.(check bool) "prefetch is prefetch" true (Instr.is_prefetch p);
  Alcotest.(check int) "4 bytes" 4 Instr.bytes

(* ------------------------------------------------------------------ *)
(* Program *)

let test_make_validates_entry () =
  Alcotest.(check bool) "bad entry rejected" true
    (try
       ignore
         (Program.make ~name:"x" ~entry:5
            [| { Program.spec_body = 1; spec_term = Program.S_return; spec_bound = None } |]);
       false
     with Invalid_argument _ -> true)

let test_make_validates_targets () =
  Alcotest.(check bool) "dangling jump rejected" true
    (try
       ignore
         (Program.make ~name:"x" ~entry:0
            [| { Program.spec_body = 1; spec_term = Program.S_jump 9; spec_bound = None } |]);
       false
     with Invalid_argument _ -> true)

let test_make_validates_bounds () =
  Alcotest.(check bool) "nonpositive bound rejected" true
    (try
       ignore
         (Program.make ~name:"x" ~entry:0
            [| { Program.spec_body = 1; spec_term = Program.S_return; spec_bound = Some 0 } |]);
       false
     with Invalid_argument _ -> true)

let test_slots_counting () =
  let p = diamond () in
  Alcotest.(check int) "cond block: body + terminator" 3 (Program.slots p 0);
  Alcotest.(check int) "jump block" 4 (Program.slots p 1);
  Alcotest.(check int) "fallthrough has no slot" 1 (Program.slots p 2);
  Alcotest.(check int) "return block" 3 (Program.slots p 3);
  Alcotest.(check int) "total" 11 (Program.total_slots p)

let test_successors () =
  let p = diamond () in
  Alcotest.(check (list int)) "cond" [ 1; 2 ] (Program.successors p 0);
  Alcotest.(check (list int)) "jump" [ 3 ] (Program.successors p 1);
  Alcotest.(check (list int)) "fall" [ 3 ] (Program.successors p 2);
  Alcotest.(check (list int)) "return" [] (Program.successors p 3)

let test_uids_unique () =
  let p = diamond () in
  let seen = Hashtbl.create 16 in
  Program.iter_slots p (fun ~block:_ ~pos:_ ~instr ->
      Alcotest.(check bool) "unique uid" false (Hashtbl.mem seen instr.Instr.uid);
      Hashtbl.replace seen instr.Instr.uid ());
  Alcotest.(check int) "all slots visited" (Program.total_slots p) (Hashtbl.length seen)

let test_find_uid () =
  let p = straightline 5 in
  (match Program.find_uid p 3 with
  | Some (0, 3) -> ()
  | Some (b, i) -> Alcotest.failf "found at (%d,%d)" b i
  | None -> Alcotest.fail "not found");
  Alcotest.(check bool) "absent uid" true (Program.find_uid p 999 = None)

let test_insert_and_remove_prefetch () =
  let p = straightline 5 in
  let p', uid = Program.insert_prefetch p ~block:0 ~pos:2 ~target_uid:4 in
  Alcotest.(check int) "one more slot" (Program.total_slots p + 1) (Program.total_slots p');
  Alcotest.(check int) "one prefetch" 1 (Program.prefetch_count p');
  Alcotest.(check bool) "prefetch equivalent" true (Program.prefetch_equivalent p p');
  (match Program.find_uid p' uid with
  | Some (0, 2) -> ()
  | _ -> Alcotest.fail "prefetch not where expected");
  let p'' = Program.remove_uid p' uid in
  Alcotest.(check int) "slot count restored" (Program.total_slots p)
    (Program.total_slots p'');
  Alcotest.(check int) "no prefetch" 0 (Program.prefetch_count p'')

let test_insert_rejects_bad_target () =
  let p = straightline 3 in
  Alcotest.(check bool) "unknown target rejected" true
    (try
       ignore (Program.insert_prefetch p ~block:0 ~pos:0 ~target_uid:77);
       false
     with Invalid_argument _ -> true)

let test_remove_rejects_terminator () =
  let p = straightline 2 in
  let term_uid = Option.get (Program.term_uid p 0) in
  Alcotest.(check bool) "terminator not removable" true
    (try
       ignore (Program.remove_uid p term_uid);
       false
     with Invalid_argument _ -> true)

let test_prefetch_equivalent_negative () =
  let a = straightline 4 and b = straightline 5 in
  Alcotest.(check bool) "different programs" false (Program.prefetch_equivalent a b)

(* ------------------------------------------------------------------ *)
(* Layout *)

let test_layout_end_anchored () =
  let p = straightline 6 in
  let l = Layout.make p ~block_bytes:16 in
  let last = Program.total_slots p - 1 in
  Alcotest.(check int) "last slot below anchor" (Layout.end_addr - 4)
    (Layout.addr l ~block:0 ~pos:last)

let test_layout_contiguous () =
  let p = diamond () in
  let l = Layout.make p ~block_bytes:16 in
  (* addresses increase by 4 per slot in block order *)
  let prev = ref None in
  Program.iter_slots p (fun ~block ~pos ~instr:_ ->
      let a = Layout.addr l ~block ~pos in
      (match !prev with
      | Some a0 -> Alcotest.(check int) "step 4" (a0 + 4) a
      | None -> ());
      prev := Some a)

let test_layout_insertion_keeps_suffix () =
  let p = straightline 8 in
  let l = Layout.make p ~block_bytes:16 in
  let addr_of_uid uid = Option.get (Layout.addr_of_uid l uid) in
  let before = List.map addr_of_uid [ 5; 6; 7; 8 ] in
  let p', _ = Program.insert_prefetch p ~block:0 ~pos:5 ~target_uid:7 in
  let l' = Layout.make p' ~block_bytes:16 in
  let after = List.map (fun u -> Option.get (Layout.addr_of_uid l' u)) [ 5; 6; 7; 8 ] in
  Alcotest.(check (list int)) "suffix addresses unchanged" before after;
  (* the prefix shifted down by one instruction *)
  Alcotest.(check int) "prefix shifted" (addr_of_uid 0 - 4)
    (Option.get (Layout.addr_of_uid l' 0))

let test_layout_mem_block_mapping () =
  let p = straightline 8 in
  let l = Layout.make p ~block_bytes:16 in
  Program.iter_slots p (fun ~block ~pos ~instr:_ ->
      let a = Layout.addr l ~block ~pos in
      Alcotest.(check int) "S(r) = addr / bs" (a / 16) (Layout.mem_block l ~block ~pos))

let test_layout_first_slot_of_block () =
  let p = straightline 8 in
  let l = Layout.make p ~block_bytes:16 in
  List.iter
    (fun mb ->
      match Layout.first_slot_of_mem_block l mb with
      | None -> Alcotest.fail "listed block without slots"
      | Some (b, pos) ->
        let a = Layout.addr l ~block:b ~pos in
        List.iter
          (fun (b', pos') ->
            Alcotest.(check bool) "first has smallest address" true
              (Layout.addr l ~block:b' ~pos:pos' >= a))
          (Layout.slots_of_mem_block l mb))
    (Layout.mem_block_ids l)

let test_layout_rejects_bad_block_size () =
  let p = straightline 3 in
  Alcotest.(check bool) "block size multiple of 4" true
    (try
       ignore (Layout.make p ~block_bytes:6);
       false
     with Invalid_argument _ -> true)

(* property: layout occupies ceil(total*4/bs) or that +1 memory blocks *)
let prop_layout_block_count =
  QCheck2.Test.make ~name:"code spans a sane number of memory blocks" ~count:100
    ~print:Ucp_testlib.print_program Ucp_testlib.gen_program (fun p ->
      let l = Layout.make p ~block_bytes:16 in
      let bytes = 4 * Ucp_isa.Program.total_slots p in
      let min_blocks = (bytes + 15) / 16 in
      let n = Layout.code_mem_blocks l in
      n = min_blocks || n = min_blocks + 1)

let prop_uid_addresses_unique =
  QCheck2.Test.make ~name:"every slot has a distinct address" ~count:100
    ~print:Ucp_testlib.print_program Ucp_testlib.gen_program (fun p ->
      let l = Layout.make p ~block_bytes:16 in
      let addrs = ref [] in
      Ucp_isa.Program.iter_slots p (fun ~block ~pos ~instr:_ ->
          addrs := Layout.addr l ~block ~pos :: !addrs);
      let sorted = List.sort_uniq compare !addrs in
      List.length sorted = List.length !addrs)

let () =
  Alcotest.run "ucp_isa"
    [
      ("instr", [ Alcotest.test_case "kinds" `Quick test_instr_kinds ]);
      ( "program",
        [
          Alcotest.test_case "validates entry" `Quick test_make_validates_entry;
          Alcotest.test_case "validates targets" `Quick test_make_validates_targets;
          Alcotest.test_case "validates bounds" `Quick test_make_validates_bounds;
          Alcotest.test_case "slot counting" `Quick test_slots_counting;
          Alcotest.test_case "successors" `Quick test_successors;
          Alcotest.test_case "uids unique" `Quick test_uids_unique;
          Alcotest.test_case "find uid" `Quick test_find_uid;
          Alcotest.test_case "insert/remove prefetch" `Quick test_insert_and_remove_prefetch;
          Alcotest.test_case "insert bad target" `Quick test_insert_rejects_bad_target;
          Alcotest.test_case "remove terminator" `Quick test_remove_rejects_terminator;
          Alcotest.test_case "prefetch-equivalent negative" `Quick
            test_prefetch_equivalent_negative;
        ] );
      ( "layout",
        [
          Alcotest.test_case "end anchored" `Quick test_layout_end_anchored;
          Alcotest.test_case "contiguous" `Quick test_layout_contiguous;
          Alcotest.test_case "insertion keeps suffix" `Quick
            test_layout_insertion_keeps_suffix;
          Alcotest.test_case "mem block mapping" `Quick test_layout_mem_block_mapping;
          Alcotest.test_case "first slot of block" `Quick test_layout_first_slot_of_block;
          Alcotest.test_case "bad block size" `Quick test_layout_rejects_bad_block_size;
          QCheck_alcotest.to_alcotest prop_layout_block_count;
          QCheck_alcotest.to_alcotest prop_uid_addresses_unique;
        ] );
    ]
