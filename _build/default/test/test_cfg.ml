(* Tests for Ucp_cfg: traversals, dominators, natural loops, and the
   VIVU expansion. *)

module Program = Ucp_isa.Program
module Branch_model = Ucp_isa.Branch_model
module Cfgraph = Ucp_cfg.Cfgraph
module Dominators = Ucp_cfg.Dominators
module Loops = Ucp_cfg.Loops
module Vivu = Ucp_cfg.Vivu
module Dsl = Ucp_workloads.Dsl

let cond ~taken ~fallthrough =
  Program.S_cond { taken; fallthrough; model = Branch_model.Bernoulli 0.5 }

let block ?bound n term = { Program.spec_body = n; spec_term = term; spec_bound = bound }

(* entry -> loop header(bound 4) -> body -> latch(back/exit) -> exit *)
let simple_loop =
  Program.make ~name:"loop" ~entry:0
    [|
      block 2 (Program.S_fallthrough 1);
      block 3 ~bound:4 (cond ~taken:1 ~fallthrough:2);
      block 1 Program.S_return;
    |]

let nested_loops =
  Program.make ~name:"nested" ~entry:0
    [|
      block 1 (Program.S_fallthrough 1);
      (* outer header *)
      block 1 ~bound:3 (Program.S_fallthrough 2);
      (* inner header/latch *)
      block 2 ~bound:5 (cond ~taken:2 ~fallthrough:3);
      (* outer latch *)
      block 1 (cond ~taken:1 ~fallthrough:4);
      block 1 Program.S_return;
    |]

let diamond =
  Program.make ~name:"diamond" ~entry:0
    [|
      block 1 (cond ~taken:1 ~fallthrough:2);
      block 2 (Program.S_jump 3);
      block 3 (Program.S_fallthrough 3);
      block 1 Program.S_return;
    |]

(* ------------------------------------------------------------------ *)
(* Cfgraph *)

let test_predecessors () =
  let preds = Cfgraph.predecessors diamond in
  Alcotest.(check (list int)) "entry has none" [] preds.(0);
  Alcotest.(check (list int)) "join has both" [ 1; 2 ] (List.sort compare preds.(3))

let test_rpo_starts_at_entry () =
  let rpo = Cfgraph.reverse_postorder diamond in
  Alcotest.(check int) "entry first" 0 rpo.(0);
  Alcotest.(check int) "all blocks" 4 (Array.length rpo)

let test_unreachable_detected () =
  let p =
    Program.make ~name:"unreach" ~entry:0
      [| block 1 Program.S_return; block 1 Program.S_return |]
  in
  Alcotest.(check bool) "raises" true
    (try
       Cfgraph.check_all_reachable p;
       false
     with Invalid_argument _ -> true)

let test_exits () =
  Alcotest.(check (list int)) "exit blocks" [ 2 ] (Cfgraph.exits simple_loop)

(* ------------------------------------------------------------------ *)
(* Dominators *)

let test_dominators_diamond () =
  let d = Dominators.compute diamond in
  Alcotest.(check int) "idom of join is entry" 0 (Dominators.idom d 3);
  Alcotest.(check bool) "entry dominates all" true (Dominators.dominates d 0 3);
  Alcotest.(check bool) "branch arm does not dominate join" false
    (Dominators.dominates d 1 3);
  Alcotest.(check bool) "reflexive" true (Dominators.dominates d 2 2)

let test_dominator_chain () =
  let d = Dominators.compute simple_loop in
  Alcotest.(check (list int)) "chain from exit" [ 2; 1; 0 ] (Dominators.dominator_chain d 2)

(* ------------------------------------------------------------------ *)
(* Loops *)

let test_simple_loop_detected () =
  let f = Loops.analyze simple_loop in
  Alcotest.(check int) "one loop" 1 (Array.length f.Loops.loops);
  let l = f.Loops.loops.(0) in
  Alcotest.(check int) "header" 1 l.Loops.header;
  Alcotest.(check int) "bound" 4 l.Loops.bound;
  Alcotest.(check int) "depth" 1 l.Loops.depth;
  Alcotest.(check bool) "body contains header" true l.Loops.body.(1);
  Alcotest.(check bool) "body excludes exit" false l.Loops.body.(2)

let test_nested_loops_detected () =
  let f = Loops.analyze nested_loops in
  Alcotest.(check int) "two loops" 2 (Array.length f.Loops.loops);
  Alcotest.(check int) "max depth" 2 (Loops.max_depth f);
  let outer = f.Loops.loops.(0) and inner = f.Loops.loops.(1) in
  Alcotest.(check int) "outer first" 1 outer.Loops.depth;
  Alcotest.(check int) "inner depth" 2 inner.Loops.depth;
  Alcotest.(check (option int)) "inner parent" (Some 0) inner.Loops.parent;
  Alcotest.(check bool) "outer contains inner header" true
    outer.Loops.body.(inner.Loops.header)

let test_loops_of_block_ordering () =
  let f = Loops.analyze nested_loops in
  match Loops.loops_of_block f 2 with
  | [ outer; inner ] ->
    Alcotest.(check bool) "outermost first" true (outer.Loops.depth < inner.Loops.depth)
  | l -> Alcotest.failf "expected 2 loops, got %d" (List.length l)

let test_missing_bound_rejected () =
  let p =
    Program.make ~name:"nobound" ~entry:0
      [| block 1 (Program.S_fallthrough 1); block 2 (cond ~taken:1 ~fallthrough:2); block 1 Program.S_return |]
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Loops.analyze p);
       false
     with Invalid_argument _ -> true)

let test_spurious_bound_rejected () =
  let p =
    Program.make ~name:"spurious" ~entry:0
      [| block 1 ~bound:3 Program.S_return |]
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Loops.analyze p);
       false
     with Invalid_argument _ -> true)

let test_irreducible_rejected () =
  (* two blocks jumping into each other's middle: entry branches to both *)
  let p =
    Program.make ~name:"irr" ~entry:0
      [|
        block 1 (cond ~taken:1 ~fallthrough:2);
        block 1 ~bound:2 (cond ~taken:2 ~fallthrough:3);
        block 1 ~bound:2 (cond ~taken:1 ~fallthrough:3);
        block 1 Program.S_return;
      |]
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Loops.analyze p);
       false
     with Invalid_argument _ -> true)

let test_back_edge_query () =
  let f = Loops.analyze simple_loop in
  Alcotest.(check bool) "1->1 is back edge" true (Loops.is_back_edge f 1 1);
  Alcotest.(check bool) "0->1 is not" false (Loops.is_back_edge f 0 1)

let multi_latch =
  (* a loop whose header is reached by two distinct back edges *)
  Program.make ~name:"twolatch" ~entry:0
    [|
      block 1 (Program.S_fallthrough 1);
      block 1 ~bound:6 (cond ~taken:2 ~fallthrough:3);
      block 1 (cond ~taken:1 ~fallthrough:4);
      (* latch A or exit path *)
      block 1 (cond ~taken:1 ~fallthrough:4);
      (* latch B or exit *)
      block 1 Program.S_return;
    |]

let test_multi_latch_loop () =
  let f = Loops.analyze multi_latch in
  Alcotest.(check int) "one loop" 1 (Array.length f.Loops.loops);
  Alcotest.(check int) "two back edges" 2
    (List.length f.Loops.loops.(0).Loops.back_edges);
  (* VIVU still expands it into an acyclic DAG *)
  let v = Vivu.expand multi_latch in
  Alcotest.(check bool) "expanded" true (Vivu.node_count v > 5)

(* ------------------------------------------------------------------ *)
(* Vivu *)

let test_vivu_straightline_identity () =
  let p =
    Program.make ~name:"line" ~entry:0 [| block 4 Program.S_return |]
  in
  let v = Vivu.expand p in
  Alcotest.(check int) "one node" 1 (Vivu.node_count v);
  Alcotest.(check int) "mult 1" 1 (Vivu.mult v 0)

let test_vivu_loop_contexts () =
  let v = Vivu.expand simple_loop in
  (* entry, header First, header Rest, exit *)
  Alcotest.(check int) "four nodes" 4 (Vivu.node_count v);
  let first = Option.get (Vivu.find v ~block:1 ~ctx:[ (0, Vivu.First) ]) in
  let rest = Option.get (Vivu.find v ~block:1 ~ctx:[ (0, Vivu.Rest) ]) in
  Alcotest.(check int) "first runs once" 1 (Vivu.mult v first);
  Alcotest.(check int) "rest runs bound-1" 3 (Vivu.mult v rest);
  (* the rest header is fed by an iteration edge *)
  Alcotest.(check bool) "rest has iter pred" true (Vivu.iter_pred v rest <> []);
  Alcotest.(check bool) "first has no iter pred" true (Vivu.iter_pred v first = [])

let test_vivu_nested_mult () =
  let v = Vivu.expand nested_loops in
  let inner_rest_in_outer_rest =
    Option.get (Vivu.find v ~block:2 ~ctx:[ (0, Vivu.Rest); (1, Vivu.Rest) ])
  in
  (* outer bound 3, inner bound 5: (3-1) * (5-1) = 8 *)
  Alcotest.(check int) "nested multiplicity" 8 (Vivu.mult v inner_rest_in_outer_rest)

let test_vivu_topo_is_topological () =
  let v = Vivu.expand nested_loops in
  let order = Array.make (Vivu.node_count v) 0 in
  Array.iteri (fun i id -> order.(id) <- i) (Vivu.topo v);
  for id = 0 to Vivu.node_count v - 1 do
    List.iter
      (fun s ->
        Alcotest.(check bool) "edge goes forward" true (order.(id) < order.(s)))
      (Vivu.dag_succ v id)
  done

let test_vivu_instances_of_block () =
  let v = Vivu.expand simple_loop in
  Alcotest.(check int) "header has two instances" 2
    (List.length (Vivu.instances_of_block v 1));
  Alcotest.(check int) "entry has one" 1 (List.length (Vivu.instances_of_block v 0))

let test_vivu_pp_node () =
  let v = Vivu.expand simple_loop in
  let rendered = Format.asprintf "%a" (Vivu.pp_node v) (Vivu.entry v) in
  Alcotest.(check bool) "renders" true (String.length rendered > 0)

let test_vivu_exit_nodes () =
  let v = Vivu.expand simple_loop in
  Alcotest.(check int) "one exit instance" 1 (List.length (Vivu.exit_nodes v))

let prop_vivu_invariants =
  QCheck2.Test.make ~name:"vivu: acyclic, multiplicities, iter edges target rest headers"
    ~count:100 ~print:Ucp_testlib.print_program Ucp_testlib.gen_program (fun p ->
      let v = Vivu.expand p in
      let n = Vivu.node_count v in
      let order = Array.make n 0 in
      Array.iteri (fun i id -> order.(id) <- i) (Vivu.topo v);
      let topo_ok = ref true in
      for id = 0 to n - 1 do
        List.iter (fun s -> if order.(id) >= order.(s) then topo_ok := false) (Vivu.dag_succ v id)
      done;
      let mult_ok = ref true in
      for id = 0 to n - 1 do
        if Vivu.mult v id < 0 then mult_ok := false
      done;
      let iter_ok = ref true in
      for id = 0 to n - 1 do
        if Vivu.iter_pred v id <> [] then begin
          let nd = Vivu.node v id in
          match List.rev nd.Vivu.ctx with
          | (_, Vivu.Rest) :: _ -> ()
          | _ -> iter_ok := false
        end
      done;
      !topo_ok && !mult_ok && !iter_ok)

(* ------------------------------------------------------------------ *)
(* Dsl compilation structure *)

let test_dsl_far_blocks_last () =
  let p = Dsl.compile ~name:"far" [ Dsl.compute 2; Dsl.Far [ Dsl.compute 3 ]; Dsl.compute 1 ] in
  (* the far body's block must be laid out after every near block;
     detect it as the block reached by the first jump *)
  Cfgraph.check_all_reachable p;
  let far_entry =
    match (Program.block p (Program.entry p)).Program.term with
    | Program.Jump { target; _ } -> target
    | _ -> Alcotest.fail "entry should jump to the far body"
  in
  Alcotest.(check int) "far body last" (Program.block_count p - 1) far_entry

let test_dsl_loop_bounds () =
  let p = Dsl.compile ~name:"l" [ Dsl.loop ~bound:9 5 [ Dsl.compute 2 ] ] in
  let f = Loops.analyze p in
  Alcotest.(check int) "bound carried" 9 f.Loops.loops.(0).Loops.bound

let test_dsl_rejects_bad_trips () =
  Alcotest.(check bool) "trips > bound rejected" true
    (try
       ignore (Dsl.compile ~name:"x" [ Dsl.loop ~bound:2 5 [ Dsl.compute 1 ] ]);
       false
     with Invalid_argument _ -> true)

let test_dsl_rejects_recursion () =
  Alcotest.(check bool) "recursive call rejected" true
    (try
       ignore
         (Dsl.compile ~name:"x" ~procs:[ ("f", [ Dsl.call "f" ]) ] [ Dsl.call "f" ]);
       false
     with Invalid_argument _ -> true)

let prop_dsl_programs_wellformed =
  QCheck2.Test.make ~name:"generated programs are reachable and reducible" ~count:150
    ~print:Ucp_testlib.print_program Ucp_testlib.gen_program (fun p ->
      Cfgraph.check_all_reachable p;
      ignore (Loops.analyze p);
      true)

let () =
  Alcotest.run "ucp_cfg"
    [
      ( "cfgraph",
        [
          Alcotest.test_case "predecessors" `Quick test_predecessors;
          Alcotest.test_case "rpo" `Quick test_rpo_starts_at_entry;
          Alcotest.test_case "unreachable" `Quick test_unreachable_detected;
          Alcotest.test_case "exits" `Quick test_exits;
        ] );
      ( "dominators",
        [
          Alcotest.test_case "diamond" `Quick test_dominators_diamond;
          Alcotest.test_case "chain" `Quick test_dominator_chain;
        ] );
      ( "loops",
        [
          Alcotest.test_case "simple loop" `Quick test_simple_loop_detected;
          Alcotest.test_case "nested loops" `Quick test_nested_loops_detected;
          Alcotest.test_case "loops_of_block order" `Quick test_loops_of_block_ordering;
          Alcotest.test_case "missing bound" `Quick test_missing_bound_rejected;
          Alcotest.test_case "spurious bound" `Quick test_spurious_bound_rejected;
          Alcotest.test_case "irreducible" `Quick test_irreducible_rejected;
          Alcotest.test_case "back edge query" `Quick test_back_edge_query;
          Alcotest.test_case "multi-latch loop" `Quick test_multi_latch_loop;
        ] );
      ( "vivu",
        [
          Alcotest.test_case "straight line" `Quick test_vivu_straightline_identity;
          Alcotest.test_case "loop contexts" `Quick test_vivu_loop_contexts;
          Alcotest.test_case "nested mult" `Quick test_vivu_nested_mult;
          Alcotest.test_case "topological" `Quick test_vivu_topo_is_topological;
          Alcotest.test_case "exit nodes" `Quick test_vivu_exit_nodes;
          Alcotest.test_case "instances of block" `Quick test_vivu_instances_of_block;
          Alcotest.test_case "pp node" `Quick test_vivu_pp_node;
          QCheck_alcotest.to_alcotest prop_vivu_invariants;
        ] );
      ( "dsl",
        [
          Alcotest.test_case "far blocks last" `Quick test_dsl_far_blocks_last;
          Alcotest.test_case "loop bounds" `Quick test_dsl_loop_bounds;
          Alcotest.test_case "bad trips" `Quick test_dsl_rejects_bad_trips;
          Alcotest.test_case "recursion" `Quick test_dsl_rejects_recursion;
          QCheck_alcotest.to_alcotest prop_dsl_programs_wellformed;
        ] );
    ]
