(* Tests for Ucp_energy: the technology table, the mini-CACTI scaling
   laws, and the energy accounting. *)

module Config = Ucp_cache.Config
module Tech = Ucp_energy.Tech
module Cacti = Ucp_energy.Cacti
module Account = Ucp_energy.Account

let cfg ~assoc ~block ~cap = Config.make ~assoc ~block_bytes:block ~capacity:cap

let test_tech_table () =
  Alcotest.(check int) "two technologies" 2 (List.length Tech.all);
  Alcotest.(check bool) "32nm leakier" true
    (Tech.nm32.Tech.leak_scale > Tech.nm45.Tech.leak_scale);
  Alcotest.(check bool) "32nm cheaper switching" true
    (Tech.nm32.Tech.dyn_scale < Tech.nm45.Tech.dyn_scale);
  Alcotest.(check bool) "32nm faster clock" true
    (Tech.nm32.Tech.cycle_ns < Tech.nm45.Tech.cycle_ns);
  Alcotest.(check bool) "32nm larger miss gap" true
    (Tech.nm32.Tech.dram_latency_cycles > Tech.nm45.Tech.dram_latency_cycles)

let test_cacti_capacity_scaling () =
  let small = Cacti.model (cfg ~assoc:2 ~block:16 ~cap:256) Tech.nm45 in
  let big = Cacti.model (cfg ~assoc:2 ~block:16 ~cap:8192) Tech.nm45 in
  Alcotest.(check bool) "read energy grows with capacity" true
    (big.Cacti.read_pj > small.Cacti.read_pj);
  Alcotest.(check bool) "leakage grows with capacity" true
    (big.Cacti.leak_pj_per_cycle > small.Cacti.leak_pj_per_cycle)

let test_cacti_assoc_scaling () =
  let dm = Cacti.model (cfg ~assoc:1 ~block:16 ~cap:1024) Tech.nm45 in
  let sa = Cacti.model (cfg ~assoc:4 ~block:16 ~cap:1024) Tech.nm45 in
  Alcotest.(check bool) "associativity costs energy" true (sa.Cacti.read_pj > dm.Cacti.read_pj)

let test_cacti_block_scaling () =
  let narrow = Cacti.model (cfg ~assoc:2 ~block:16 ~cap:1024) Tech.nm45 in
  let wide = Cacti.model (cfg ~assoc:2 ~block:32 ~cap:1024) Tech.nm45 in
  Alcotest.(check bool) "wider fills cost more" true (wide.Cacti.fill_pj > narrow.Cacti.fill_pj);
  Alcotest.(check bool) "wider dram reads cost more" true
    (wide.Cacti.dram_read_pj > narrow.Cacti.dram_read_pj)

let test_cacti_tech_scaling () =
  let c = cfg ~assoc:2 ~block:16 ~cap:1024 in
  let m45 = Cacti.model c Tech.nm45 and m32 = Cacti.model c Tech.nm32 in
  Alcotest.(check bool) "32nm leaks more" true
    (m32.Cacti.leak_pj_per_cycle > m45.Cacti.leak_pj_per_cycle);
  Alcotest.(check bool) "32nm reads cheaper" true (m32.Cacti.read_pj < m45.Cacti.read_pj);
  Alcotest.(check bool) "dram dwarfs cache" true (m45.Cacti.dram_read_pj > 5.0 *. m45.Cacti.read_pj)

let test_lambda_equals_penalty () =
  let m = Cacti.model (cfg ~assoc:2 ~block:16 ~cap:1024) Tech.nm45 in
  Alcotest.(check int) "prefetch latency = miss penalty" m.Cacti.miss_penalty
    m.Cacti.prefetch_latency

let test_account_zero () =
  let m = Cacti.model (cfg ~assoc:2 ~block:16 ~cap:1024) Tech.nm45 in
  let b = Account.energy m Account.zero in
  Alcotest.(check (float 1e-9)) "zero counts, zero energy" 0.0 b.Account.total_pj

let test_account_add () =
  let a = { Account.fetches = 1; hits = 1; misses = 0; prefetch_dram_reads = 2; prefetch_fills = 3; cycles = 4 } in
  let b = Account.add a a in
  Alcotest.(check int) "fetches" 2 b.Account.fetches;
  Alcotest.(check int) "cycles" 8 b.Account.cycles

let test_account_composition () =
  let m = Cacti.model (cfg ~assoc:2 ~block:16 ~cap:1024) Tech.nm45 in
  let counts =
    { Account.fetches = 100; hits = 90; misses = 10; prefetch_dram_reads = 5; prefetch_fills = 5; cycles = 400 }
  in
  let b = Account.energy m counts in
  Alcotest.(check (float 1e-6)) "total is the sum"
    (b.Account.cache_dynamic_pj +. b.Account.dram_dynamic_pj +. b.Account.static_pj)
    b.Account.total_pj;
  Alcotest.(check bool) "all parts positive" true
    (b.Account.cache_dynamic_pj > 0.0 && b.Account.dram_dynamic_pj > 0.0 && b.Account.static_pj > 0.0)

let test_account_monotone_in_misses () =
  let m = Cacti.model (cfg ~assoc:2 ~block:16 ~cap:1024) Tech.nm45 in
  let base =
    { Account.fetches = 100; hits = 95; misses = 5; prefetch_dram_reads = 0; prefetch_fills = 0; cycles = 300 }
  in
  let worse = { base with Account.hits = 80; misses = 20 } in
  Alcotest.(check bool) "more misses, more energy" true
    ((Account.energy m worse).Account.total_pj > (Account.energy m base).Account.total_pj)

let prop_energy_nonnegative =
  QCheck2.Test.make ~name:"energy is nonnegative" ~count:200
    QCheck2.Gen.(
      let* f = int_bound 10000 in
      let* miss = int_bound f in
      let* pf = int_bound 100 in
      let* cyc = int_bound 100000 in
      return
        { Account.fetches = f; hits = f - miss; misses = miss; prefetch_dram_reads = pf;
          prefetch_fills = pf; cycles = cyc })
    (fun counts ->
      let m = Cacti.model (cfg ~assoc:2 ~block:16 ~cap:1024) Tech.nm32 in
      (Account.energy m counts).Account.total_pj >= 0.0)

let () =
  Alcotest.run "ucp_energy"
    [
      ( "tech",
        [ Alcotest.test_case "table" `Quick test_tech_table ] );
      ( "cacti",
        [
          Alcotest.test_case "capacity scaling" `Quick test_cacti_capacity_scaling;
          Alcotest.test_case "assoc scaling" `Quick test_cacti_assoc_scaling;
          Alcotest.test_case "block scaling" `Quick test_cacti_block_scaling;
          Alcotest.test_case "tech scaling" `Quick test_cacti_tech_scaling;
          Alcotest.test_case "lambda" `Quick test_lambda_equals_penalty;
        ] );
      ( "account",
        [
          Alcotest.test_case "zero" `Quick test_account_zero;
          Alcotest.test_case "add" `Quick test_account_add;
          Alcotest.test_case "composition" `Quick test_account_composition;
          Alcotest.test_case "monotone in misses" `Quick test_account_monotone_in_misses;
          QCheck_alcotest.to_alcotest prop_energy_nonnegative;
        ] );
    ]
