(* Tests for Ucp_prefetch: the optimizer's guarantees (Theorem 1 and
   prefetch equivalence), candidate discovery, the placement modes, and
   the baselines. *)

module Program = Ucp_isa.Program
module Config = Ucp_cache.Config
module Cacti = Ucp_energy.Cacti
module Wcet = Ucp_wcet.Wcet
module Analysis = Ucp_wcet.Analysis
module Optimizer = Ucp_prefetch.Optimizer
module Baselines = Ucp_prefetch.Baselines
module Simulator = Ucp_sim.Simulator
module Dsl = Ucp_workloads.Dsl

let model = Ucp_testlib.tiny_model
let config = Config.make ~assoc:2 ~block_bytes:16 ~capacity:64

(* a program with a known prefetchable pattern: main loop calling an
   out-of-line routine that evicts the caller's blocks *)
let conflict_program =
  Dsl.compile ~name:"conflict"
    [ Dsl.loop 10 [ Dsl.compute 4; Dsl.Far [ Dsl.compute 6 ]; Dsl.compute 3 ] ]

(* ------------------------------------------------------------------ *)
(* optimizer guarantees *)

let test_theorem1_on_conflict_program () =
  let r = Optimizer.optimize conflict_program config model in
  Alcotest.(check bool) "tau does not grow" true
    (r.Optimizer.tau_after <= r.Optimizer.tau_before);
  Alcotest.(check bool) "prefetch equivalent" true
    (Program.prefetch_equivalent conflict_program r.Optimizer.program)

let test_optimizer_improves_conflict_program () =
  (* the two profitable prefetches only pay off together (each alone
     shifts a block boundary); a loose budget lets the batch through *)
  let r = Optimizer.optimize ~overhead_budget:0.25 conflict_program config model in
  Alcotest.(check bool) "inserts something" true (r.Optimizer.insertions <> []);
  Alcotest.(check bool) "tau strictly improves" true
    (r.Optimizer.tau_after < r.Optimizer.tau_before)

let test_optimizer_noop_when_fitting () =
  (* the whole program fits in a big cache: nothing to do *)
  let big = Config.make ~assoc:2 ~block_bytes:16 ~capacity:8192 in
  let r = Optimizer.optimize conflict_program big model in
  Alcotest.(check int) "no insertions" 0 (List.length r.Optimizer.insertions);
  Alcotest.(check int) "tau unchanged" r.Optimizer.tau_before r.Optimizer.tau_after

let test_insertion_metadata_consistent () =
  let r = Optimizer.optimize ~overhead_budget:0.25 conflict_program config model in
  List.iter
    (fun (ins : Optimizer.insertion) ->
      Alcotest.(check bool) "per-step tau non-increase" true
        (ins.Optimizer.tau_after <= ins.Optimizer.tau_before);
      (* the inserted uid exists in the final program *)
      Alcotest.(check bool) "prefetch uid present" true
        (Program.find_uid r.Optimizer.program ins.Optimizer.prefetch_uid <> None))
    r.Optimizer.insertions

let test_max_insertions_respected () =
  let r = Optimizer.optimize ~max_insertions:1 conflict_program config model in
  Alcotest.(check bool) "at most..." true (List.length r.Optimizer.insertions <= 1)

let test_overhead_budget_zero_blocks_everything () =
  let r = Optimizer.optimize ~overhead_budget:0.0 conflict_program config model in
  (* the floor of 16 dynamic executions still allows tiny insertions;
     a zero budget must keep the overhead at or below that floor *)
  Alcotest.(check bool) "tiny budget, few insertions" true
    (List.length r.Optimizer.insertions <= 16)

let test_placement_modes_both_safe () =
  List.iter
    (fun placement ->
      let r = Optimizer.optimize ~placement conflict_program config model in
      Alcotest.(check bool) "safe" true (r.Optimizer.tau_after <= r.Optimizer.tau_before))
    [ Optimizer.At_eviction; Optimizer.Latest_effective ]

let test_discover_candidates_shape () =
  let w = Wcet.compute ~with_may:false conflict_program config model in
  let cands = Optimizer.discover w in
  List.iter
    (fun c ->
      Alcotest.(check bool) "gain positive" true (c.Optimizer.cand_gain > 0);
      Alcotest.(check bool) "cost positive" true (c.Optimizer.cand_cost > 0);
      Alcotest.(check bool) "target uid exists" true
        (Program.find_uid conflict_program c.Optimizer.cand_target_uid <> None))
    cands

(* property: Theorem 1 + prefetch equivalence on random programs and
   configurations *)
let prop_theorem1 =
  QCheck2.Test.make ~name:"Theorem 1 on random programs/configs" ~count:60
    ~print:(fun (p, c) -> Ucp_testlib.print_program p ^ " @ " ^ Ucp_testlib.print_config c)
    QCheck2.Gen.(pair Ucp_testlib.gen_program Ucp_testlib.gen_config)
    (fun (p, c) ->
      let r = Optimizer.optimize p c model in
      r.Optimizer.tau_after <= r.Optimizer.tau_before
      && Program.prefetch_equivalent p r.Optimizer.program)

(* property: the optimized program still respects the WCET bound in
   simulation (soundness survives optimization) *)
let prop_optimized_sim_within_wcet =
  QCheck2.Test.make ~name:"optimized binaries stay within tau_with_residual" ~count:40
    ~print:(fun (p, seed) -> Printf.sprintf "%s seed=%d" (Ucp_testlib.print_program p) seed)
    QCheck2.Gen.(pair Ucp_testlib.gen_program (int_bound 100))
    (fun (p, seed) ->
      let r = Optimizer.optimize p config model in
      let w = Wcet.compute ~with_may:false r.Optimizer.program config model in
      let stats = Simulator.run ~seed r.Optimizer.program config model in
      Simulator.acet stats <= Wcet.tau_with_residual w)

(* property: the analysis miss bound of the optimized program never
   exceeds the original's (Condition 2 in aggregate) *)
let prop_miss_bound_non_increase =
  QCheck2.Test.make ~name:"optimization never increases the final tau bound" ~count:50
    ~print:Ucp_testlib.print_program Ucp_testlib.gen_program (fun p ->
      let r = Optimizer.optimize p config model in
      let w0 = Wcet.compute ~with_may:false p config model in
      let w1 = Wcet.compute ~with_may:false r.Optimizer.program config model in
      Wcet.tau_with_residual w1 <= Wcet.tau_with_residual w0)

let test_optimizer_deterministic () =
  let a = Optimizer.optimize conflict_program config model in
  let b = Optimizer.optimize conflict_program config model in
  Alcotest.(check int) "same insertions" (List.length a.Optimizer.insertions)
    (List.length b.Optimizer.insertions);
  Alcotest.(check int) "same tau" a.Optimizer.tau_after b.Optimizer.tau_after

(* ------------------------------------------------------------------ *)
(* baselines *)

let test_bb_start_inserts () =
  let p = Baselines.bb_start conflict_program config model in
  Alcotest.(check bool) "adds prefetches" true (Program.prefetch_count p > 0);
  Alcotest.(check bool) "prefetch equivalent" true
    (Program.prefetch_equivalent conflict_program p)

let test_bb_start_prefetches_at_block_start () =
  let p = Baselines.bb_start conflict_program config model in
  (* in every block, prefetches only appear as a prefix of the body *)
  for b = 0 to Program.block_count p - 1 do
    let body = (Program.block p b).Program.body in
    let seen_compute = ref false in
    Array.iter
      (fun i ->
        if Ucp_isa.Instr.is_prefetch i then
          Alcotest.(check bool) "prefix only" false !seen_compute
        else seen_compute := true)
      body
  done

let test_lock_greedy_respects_geometry () =
  let lock = Baselines.lock_greedy conflict_program config model in
  (* at most [assoc] locked blocks per set *)
  let per_set = Hashtbl.create 8 in
  List.iter
    (fun mb ->
      let s = Config.set_of_mem_block config mb in
      Hashtbl.replace per_set s (1 + try Hashtbl.find per_set s with Not_found -> 0))
    lock.Baselines.locked_blocks;
  Hashtbl.iter
    (fun _ n -> Alcotest.(check bool) "within assoc" true (n <= config.Config.assoc))
    per_set

let test_wcet_locked_extremes () =
  let layout = Ucp_isa.Layout.make conflict_program ~block_bytes:16 in
  let all = Ucp_isa.Layout.mem_block_ids layout in
  let tau_all = Baselines.wcet_locked conflict_program config model ~locked:all in
  let tau_none = Baselines.wcet_locked conflict_program config model ~locked:[] in
  Alcotest.(check bool) "all-locked is all hits" true (tau_all < tau_none);
  (* all-locked tau equals the WCET-path reference count *)
  let w = Wcet.compute conflict_program config model in
  let refs = Array.length (Wcet.path_refs w) in
  let path_instrs =
    (* tau with everything hitting = weighted path instruction count *)
    Array.fold_left
      (fun acc nid ->
        let nd = Ucp_cfg.Vivu.node (Analysis.vivu w.Wcet.analysis) nid in
        acc
        + w.Wcet.n_w.(nid)
          * Program.slots conflict_program nd.Ucp_cfg.Vivu.block)
      0 w.Wcet.path
  in
  ignore refs;
  Alcotest.(check int) "all-locked tau" path_instrs tau_all

let test_lock_greedy_beats_empty_lock () =
  let lock = Baselines.lock_greedy conflict_program config model in
  let tau_none = Baselines.wcet_locked conflict_program config model ~locked:[] in
  Alcotest.(check bool) "greedy content helps" true (lock.Baselines.tau_locked <= tau_none)

let test_hybrid_locking () =
  let h = Baselines.lock_hybrid ~ways:1 conflict_program config model in
  (* geometry: one way locked, one way left *)
  Alcotest.(check int) "unlocked assoc" 1 h.Baselines.hybrid_config.Config.assoc;
  Alcotest.(check int) "same sets" config.Config.sets
    h.Baselines.hybrid_config.Config.sets;
  (* at most [ways] pinned blocks per set *)
  let per_set = Hashtbl.create 8 in
  List.iter
    (fun mb ->
      let s = Config.set_of_mem_block config mb in
      Hashtbl.replace per_set s (1 + (try Hashtbl.find per_set s with Not_found -> 0)))
    h.Baselines.hybrid_pinned;
  Hashtbl.iter (fun _ n -> Alcotest.(check bool) "<= ways" true (n <= 1)) per_set;
  (* pinned fetches never miss in simulation *)
  let stats =
    Simulator.run ~pinned:h.Baselines.hybrid_pinned
      ~cache_config:h.Baselines.hybrid_config h.Baselines.hybrid_program config model
  in
  Alcotest.(check bool) "hybrid runs" true (stats.Simulator.executed > 0);
  (* the hybrid WCET is at least as good as full locking of one way
     with nothing else (sanity: it has strictly more machinery) *)
  Alcotest.(check bool) "tau positive" true (h.Baselines.hybrid_tau > 0)

let test_hybrid_rejects_bad_ways () =
  Alcotest.(check bool) "ways = assoc rejected" true
    (try
       ignore (Baselines.lock_hybrid ~ways:config.Config.assoc conflict_program config model);
       false
     with Invalid_argument _ -> true)

let prop_bb_start_safe_bound =
  QCheck2.Test.make ~name:"bb-start WCET bound stays sound in simulation" ~count:40
    ~print:Ucp_testlib.print_program Ucp_testlib.gen_program (fun p ->
      let bb = Baselines.bb_start p config model in
      let w = Wcet.compute ~with_may:false bb config model in
      let stats = Simulator.run bb config model in
      Simulator.acet stats <= Wcet.tau_with_residual w)

let () =
  Alcotest.run "ucp_prefetch"
    [
      ( "optimizer",
        [
          Alcotest.test_case "theorem 1" `Quick test_theorem1_on_conflict_program;
          Alcotest.test_case "improves conflicts" `Quick
            test_optimizer_improves_conflict_program;
          Alcotest.test_case "noop when fitting" `Quick test_optimizer_noop_when_fitting;
          Alcotest.test_case "insertion metadata" `Quick test_insertion_metadata_consistent;
          Alcotest.test_case "max insertions" `Quick test_max_insertions_respected;
          Alcotest.test_case "overhead budget" `Quick
            test_overhead_budget_zero_blocks_everything;
          Alcotest.test_case "placement modes" `Quick test_placement_modes_both_safe;
          Alcotest.test_case "candidate shape" `Quick test_discover_candidates_shape;
          Alcotest.test_case "deterministic" `Quick test_optimizer_deterministic;
          QCheck_alcotest.to_alcotest prop_theorem1;
          QCheck_alcotest.to_alcotest prop_optimized_sim_within_wcet;
          QCheck_alcotest.to_alcotest prop_miss_bound_non_increase;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "bb-start inserts" `Quick test_bb_start_inserts;
          Alcotest.test_case "bb-start placement" `Quick
            test_bb_start_prefetches_at_block_start;
          Alcotest.test_case "lock geometry" `Quick test_lock_greedy_respects_geometry;
          Alcotest.test_case "locked extremes" `Quick test_wcet_locked_extremes;
          Alcotest.test_case "greedy lock helps" `Quick test_lock_greedy_beats_empty_lock;
          Alcotest.test_case "hybrid locking" `Quick test_hybrid_locking;
          Alcotest.test_case "hybrid bad ways" `Quick test_hybrid_rejects_bad_ways;
          QCheck_alcotest.to_alcotest prop_bb_start_safe_bound;
        ] );
    ]
