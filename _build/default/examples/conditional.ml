(* Figure 2: conditional execution and the path-focused join.

   At a control-flow confluence the classical join function intersects
   the incoming cache states; the optimizer's join J_SE instead follows
   the state of the WCET-path predecessor (Algorithm 2).  This example
   shows the difference: a diamond whose heavy arm (the WCET path)
   evicts a block that the light arm preserves.  Candidate discovery
   walks the heavy arm's state, finds the replacement, and places the
   prefetch so the later use hits on every path.

     dune exec examples/conditional.exe *)

module Config = Ucp_cache.Config
module Cacti = Ucp_energy.Cacti
module Abstract = Ucp_cache.Abstract
module Wcet = Ucp_wcet.Wcet
module Analysis = Ucp_wcet.Analysis
module Optimizer = Ucp_prefetch.Optimizer
open Ucp_workloads.Dsl

let model =
  {
    Cacti.read_pj = 5.0;
    fill_pj = 8.0;
    leak_pj_per_cycle = 2.0;
    dram_read_pj = 100.0;
    dram_leak_pj_per_cycle = 10.0;
    hit_cycles = 1;
    miss_penalty = 4;
    prefetch_latency = 2;
  }

let () =
  (* prologue loads a block; the heavy arm is long enough to evict it;
     the light arm is short; the epilogue re-reads the prologue's
     addresses through a loop back to make reuse visible *)
  let program =
    compile ~name:"figure2"
      [
        loop 4
          [
            compute 2;
            if_ ~p:0.5 [ Far [ compute 6 ] ] [ compute 1 ];
            compute 2;
          ];
      ]
  in
  let config = Config.make ~assoc:2 ~block_bytes:8 ~capacity:16 in
  let w = Wcet.compute program config model in
  Printf.printf "original tau_w = %d\n" w.Wcet.tau;
  Printf.printf "WCET path visits %d expanded nodes\n" (Array.length w.Wcet.path);
  (* show the two in-states that the classical join would intersect *)
  let vivu = Analysis.vivu w.Wcet.analysis in
  Array.iteri
    (fun id _ ->
      let preds = Ucp_cfg.Vivu.dag_pred vivu id in
      if List.length preds > 1 then begin
        Format.printf "join at node %a: classical must-join of %d predecessors = %a@."
          (Ucp_cfg.Vivu.pp_node vivu) id (List.length preds) Abstract.pp
          (Analysis.in_must w.Wcet.analysis id)
      end)
    (Array.of_list (List.init (Ucp_cfg.Vivu.node_count vivu) (fun i -> i)));
  let r = Optimizer.optimize program config model in
  Printf.printf "\ninserted %d prefetch(es); tau_w %d -> %d (%.1f%%)\n"
    (List.length r.Optimizer.insertions)
    r.Optimizer.tau_before r.Optimizer.tau_after
    (100.0
    *. (1.0 -. (float_of_int r.Optimizer.tau_after /. float_of_int r.Optimizer.tau_before)));
  assert (r.Optimizer.tau_after <= r.Optimizer.tau_before)
