(* Figure 6 (Supplement S.3): how loops are handled via VIVU.

   The cyclic CFG's back edge is broken and the loop body instantiated
   twice — a First context (first iteration per entry) and a Rest
   context (all later iterations).  The example shows the expanded
   nodes, their execution multiplicities, and how classifications
   differ between contexts: cold misses live in First, loop-carried
   hits are proven in Rest.

     dune exec examples/loops.exe *)

module Config = Ucp_cache.Config
module Vivu = Ucp_cfg.Vivu
module Wcet = Ucp_wcet.Wcet
module Analysis = Ucp_wcet.Analysis
open Ucp_workloads.Dsl

let () =
  let program =
    compile ~name:"figure6" [ compute 2; loop 8 [ compute 6; Far [ compute 5 ] ]; compute 2 ]
  in
  let config = Config.make ~assoc:2 ~block_bytes:8 ~capacity:32 in
  let model = Ucp_energy.Cacti.model config Ucp_energy.Tech.nm45 in
  let vivu = Vivu.expand program in
  Printf.printf "%d basic blocks expanded into %d VIVU nodes\n"
    (Ucp_isa.Program.block_count program)
    (Vivu.node_count vivu);
  for id = 0 to Vivu.node_count vivu - 1 do
    Format.printf "  %a  mult=%d  dag_succ=[%s]\n%!" (Vivu.pp_node vivu) id
      (Vivu.mult vivu id)
      (String.concat ";" (List.map string_of_int (Vivu.dag_succ vivu id)))
  done;
  let w = Wcet.compute program config model in
  Printf.printf "\nclassification per context (AH hits proven only in Rest):\n";
  for id = 0 to Vivu.node_count vivu - 1 do
    let nd = Vivu.node vivu id in
    let slots = Ucp_isa.Program.slots program nd.Vivu.block in
    if slots > 0 then begin
      Format.printf "  %a: " (Vivu.pp_node vivu) id;
      for pos = 0 to slots - 1 do
        Format.printf "%s "
          (Ucp_wcet.Classification.to_string (Analysis.classif w.Wcet.analysis ~node:id ~pos))
      done;
      Format.printf "@."
    end
  done;
  Printf.printf "\ntau_w = %d; WCET path length = %d nodes\n" w.Wcet.tau
    (Array.length w.Wcet.path);
  (* cross-check against the IPET/ILP reference *)
  let ipet = Ucp_wcet.Ipet.solve w in
  Printf.printf "IPET ILP tau_w = %d (agrees: %b)\n" ipet.Ucp_wcet.Ipet.tau
    (ipet.Ucp_wcet.Ipet.tau = w.Wcet.tau)
