(* Figure 1: the reverse analysis on a straight-line flow.

   The paper's first worked example: all references map to the same
   cache line of a 2-way LRU cache with 2 items per block.  A short
   main sequence calls an out-of-line routine whose blocks evict the
   caller's block; on return, the caller's next block access misses.
   The reverse sweep detects the replacement (Property 3) and inserts a
   prefetch inside the routine, turning the return-side miss into a hit
   without touching the WCET.

     dune exec examples/straightline.exe *)

module Config = Ucp_cache.Config
module Cacti = Ucp_energy.Cacti
module Wcet = Ucp_wcet.Wcet
module Analysis = Ucp_wcet.Analysis
module Optimizer = Ucp_prefetch.Optimizer
open Ucp_workloads.Dsl

(* a tiny model so Λ fits inside the example's few instructions *)
let model =
  {
    Cacti.read_pj = 5.0;
    fill_pj = 8.0;
    leak_pj_per_cycle = 2.0;
    dram_read_pj = 100.0;
    dram_leak_pj_per_cycle = 10.0;
    hit_cycles = 1;
    miss_penalty = 4;
    prefetch_latency = 2;
  }

let dump_path label w =
  let analysis = w.Wcet.analysis in
  Printf.printf "%s: tau_w = %d\n" label w.Wcet.tau;
  Array.iter
    (fun (node, pos) ->
      let mb = Analysis.slot_mem_block analysis ~node ~pos in
      Printf.printf "  node %d slot %d  block s%d  %s\n" node pos (mb mod 100)
        (Ucp_wcet.Classification.to_string (Analysis.classif analysis ~node ~pos)))
    (Wcet.path_refs w)

let () =
  (* main: 1 instruction, call an out-of-line routine (4 instructions),
     then 3 more; one cache set of 2 ways with 2 instructions per block *)
  let program =
    compile ~name:"figure1" [ compute 1; Far [ compute 4 ]; compute 3 ]
  in
  let config = Config.make ~assoc:2 ~block_bytes:8 ~capacity:16 in
  let w = Wcet.compute program config model in
  dump_path "original" w;
  let cands = Optimizer.discover w in
  Printf.printf "\ncandidates found by the reverse sweep: %d\n" (List.length cands);
  List.iter
    (fun c ->
      Printf.printf
        "  prefetch block s%d before uid %d (use at path position %d, gain %d)\n"
        (c.Optimizer.cand_target_block mod 100)
        c.Optimizer.cand_before_uid c.Optimizer.cand_use_position c.Optimizer.cand_gain)
    cands;
  let r = Optimizer.optimize program config model in
  Printf.printf "\ninserted %d prefetch(es); tau_w %d -> %d\n"
    (List.length r.Optimizer.insertions)
    r.Optimizer.tau_before r.Optimizer.tau_after;
  let w' = Wcet.compute r.Optimizer.program config model in
  dump_path "\noptimized" w';
  assert (r.Optimizer.tau_after <= r.Optimizer.tau_before)
