(* Figure 5's scenario on a single program: trade cache capacity for
   prefetching.

   The optimized binary runs on caches of 1/2 and 1/4 the capacity and
   is compared against the unoptimized binary on the full-size cache.
   Where the ACET ratio stays at or below 1.0 the smaller (cheaper,
   less leaky) cache sustains the original performance — the energy
   argument of the paper's Section 5.

     dune exec examples/downsizing.exe *)

module Config = Ucp_cache.Config
module Tech = Ucp_energy.Tech
module Pipeline = Ucp_core.Pipeline
module Optimizer = Ucp_prefetch.Optimizer

let () =
  let program = Ucp_workloads.Suite.find "st" in
  let tech = Tech.nm32 in
  let full = Config.make ~assoc:2 ~block_bytes:16 ~capacity:8192 in
  let original = Pipeline.measure program full tech in
  Printf.printf "original on %s: acet=%d energy=%.0f pJ tau=%d\n" (Config.id full)
    original.Pipeline.acet original.Pipeline.energy_pj original.Pipeline.tau;
  List.iter
    (fun factor ->
      match
        if factor = 2 then Config.half_capacity full else Config.quarter_capacity full
      with
      | None -> ()
      | Some small ->
        let r = Pipeline.optimize program small tech in
        let m = Pipeline.measure r.Optimizer.program small tech in
        Printf.printf
          "optimized on %s (1/%d): acet=%d (x%.3f) energy=%.0f pJ (x%.3f) tau=%d (x%.3f)\n"
          (Config.id small) factor m.Pipeline.acet
          (float_of_int m.Pipeline.acet /. float_of_int original.Pipeline.acet)
          m.Pipeline.energy_pj
          (m.Pipeline.energy_pj /. original.Pipeline.energy_pj)
          m.Pipeline.tau
          (float_of_int m.Pipeline.tau /. float_of_int original.Pipeline.tau))
    [ 2; 4 ]
