(* Quickstart: the whole tool flow on one use case.

   Pick a benchmark, a cache configuration and a technology; run the
   cache-aware WCET analysis, the paper's prefetch optimization, and the
   trace simulator on both binaries; print the before/after picture.

     dune exec examples/quickstart.exe *)

module Config = Ucp_cache.Config
module Tech = Ucp_energy.Tech
module Pipeline = Ucp_core.Pipeline

let () =
  let program = Ucp_workloads.Suite.find "fft1" in
  let config = Config.make ~assoc:2 ~block_bytes:16 ~capacity:256 in
  let tech = Tech.nm45 in
  Printf.printf "use case: %s on %s at %s\n\n" (Ucp_isa.Program.name program)
    (Config.id config) tech.Tech.label;
  let cmp = Pipeline.compare_optimized program config tech in
  let show label (m : Pipeline.measurement) =
    Printf.printf "%-10s tau_w=%6d  acet=%6d  miss=%5.2f%%  energy=%8.0f pJ  instrs=%d\n"
      label m.Pipeline.tau m.Pipeline.acet
      (100.0 *. m.Pipeline.miss_rate)
      m.Pipeline.energy_pj m.Pipeline.executed
  in
  show "original" cmp.Pipeline.original;
  show "optimized" cmp.Pipeline.optimized;
  Printf.printf "\nprefetches inserted: %d (rolled back: %d)\n" cmp.Pipeline.prefetches
    cmp.Pipeline.rejected;
  let ratio f =
    float_of_int (f cmp.Pipeline.optimized) /. float_of_int (f cmp.Pipeline.original)
  in
  Printf.printf "WCET ratio %.3f | ACET ratio %.3f | energy ratio %.3f\n"
    (ratio (fun m -> m.Pipeline.tau))
    (ratio (fun m -> m.Pipeline.acet))
    (cmp.Pipeline.optimized.Pipeline.energy_pj
    /. cmp.Pipeline.original.Pipeline.energy_pj);
  assert (cmp.Pipeline.optimized.Pipeline.tau <= cmp.Pipeline.original.Pipeline.tau);
  print_endline "\nTheorem 1 holds: the optimized WCET did not increase."
