(* Related-work shoot-out on one use case (Section 2's survey):
   on-demand fetching, the paper's optimizer, the latest-effective
   streaming ablation, the BB-start software prefetcher of [5], static
   cache locking [4,14], and the classic hardware schemes [18,19,13].

     dune exec examples/baselines_demo.exe *)

module Config = Ucp_cache.Config
module Tech = Ucp_energy.Tech
module Wcet = Ucp_wcet.Wcet
module Optimizer = Ucp_prefetch.Optimizer
module Baselines = Ucp_prefetch.Baselines
module Simulator = Ucp_sim.Simulator
module Account = Ucp_energy.Account
module Table = Ucp_util.Table

let () =
  let program = Ucp_workloads.Suite.find "fft1" in
  let config = Config.make ~assoc:2 ~block_bytes:16 ~capacity:256 in
  let tech = Tech.nm32 in
  let model = Ucp_core.Pipeline.model config tech in
  Printf.printf "use case: %s on %s at %s\n\n" (Ucp_isa.Program.name program)
    (Config.id config) tech.Tech.label;
  let t = Table.create [ "scheme"; "wcet"; "acet"; "miss"; "energy (pJ)" ] in
  let row name wcet stats =
    let b = Account.energy model stats.Simulator.counts in
    Table.add_row t
      [
        name;
        (match wcet with Some x -> string_of_int x | None -> "n/a");
        string_of_int (Simulator.acet stats);
        Printf.sprintf "%.2f%%" (100.0 *. stats.Simulator.miss_rate);
        Printf.sprintf "%.0f" b.Account.total_pj;
      ]
  in
  let wcet_of p = Wcet.tau_with_residual (Wcet.compute ~with_may:false p config model) in
  row "on-demand" (Some (wcet_of program)) (Simulator.run program config model);
  let opt = (Optimizer.optimize program config model).Optimizer.program in
  row "this paper" (Some (wcet_of opt)) (Simulator.run opt config model);
  let streaming =
    (Optimizer.optimize ~placement:Optimizer.Latest_effective program config model)
      .Optimizer.program
  in
  row "latest-effective" (Some (wcet_of streaming)) (Simulator.run streaming config model);
  let bb = Baselines.bb_start program config model in
  row "bb-start [5]" (Some (wcet_of bb)) (Simulator.run bb config model);
  let lock = Baselines.lock_greedy program config model in
  row "locked [4,14]"
    (Some lock.Baselines.tau_locked)
    (Simulator.run ~locked:lock.Baselines.locked_blocks program config model);
  List.iter
    (fun (name, mk) ->
      if name <> "none" then
        row ("hw " ^ name) None (Simulator.run ~hw:(mk ()) program config model))
    (Ucp_sim.Hw_prefetch.all_schemes ~block_bytes:config.Config.block_bytes);
  Table.print t
