examples/custom_program.ml: List Printf Ucp_cache Ucp_core Ucp_energy Ucp_isa Ucp_prefetch Ucp_workloads
