examples/baselines_demo.ml: List Printf Ucp_cache Ucp_core Ucp_energy Ucp_isa Ucp_prefetch Ucp_sim Ucp_util Ucp_wcet Ucp_workloads
