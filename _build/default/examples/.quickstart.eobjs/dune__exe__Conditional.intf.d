examples/conditional.mli:
