examples/quickstart.mli:
