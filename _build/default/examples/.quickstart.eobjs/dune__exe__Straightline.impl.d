examples/straightline.ml: Array List Printf Ucp_cache Ucp_energy Ucp_prefetch Ucp_wcet Ucp_workloads
