examples/downsizing.mli:
