examples/downsizing.ml: List Printf Ucp_cache Ucp_core Ucp_energy Ucp_prefetch Ucp_workloads
