examples/conditional.ml: Array Format List Printf Ucp_cache Ucp_cfg Ucp_energy Ucp_prefetch Ucp_wcet Ucp_workloads
