examples/straightline.mli:
