examples/loops.ml: Array Format List Printf String Ucp_cache Ucp_cfg Ucp_energy Ucp_isa Ucp_wcet Ucp_workloads
