examples/loops.mli:
