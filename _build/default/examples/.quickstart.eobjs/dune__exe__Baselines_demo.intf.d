examples/baselines_demo.mli:
