examples/custom_program.mli:
