examples/quickstart.ml: Printf Ucp_cache Ucp_core Ucp_energy Ucp_isa Ucp_workloads
