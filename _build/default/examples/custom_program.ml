(* Bring your own program: the adoption path for downstream users.

   Write a workload in the structured DSL (sequences, conditionals,
   bounded loops, out-of-line routines), pick a cache and a technology,
   and run the entire tool flow — analysis, optimization, simulation —
   exactly as the built-in suite does.

     dune exec examples/custom_program.exe *)

module Config = Ucp_cache.Config
module Tech = Ucp_energy.Tech
module Pipeline = Ucp_core.Pipeline
module Optimizer = Ucp_prefetch.Optimizer
open Ucp_workloads.Dsl

(* A little sensor-fusion control task: read three channels, run a
   filter routine per channel, act on a mode switch, log once in a
   while.  Loops carry both the concrete trip count (simulation) and a
   WCET bound. *)
let my_task =
  let filter = [ compute 24; if_ ~p:0.7 [ compute 12 ] [ compute 9 ]; compute 14 ] in
  let log_entry = [ compute 30 ] in
  compile ~name:"sensor_fusion"
    ~procs:[ ("filter", filter); ("log", log_entry) ]
    [
      compute 20;
      loop 50 ~bound:64
        [
          compute 10;
          far_call "filter";
          compute 8;
          far_call "filter";
          compute 8;
          far_call "filter";
          if_every 8 [ compute 6 ] [ far_call "log" ];
          compute 12;
        ];
      compute 10;
    ]

let () =
  let config = Config.make ~assoc:2 ~block_bytes:16 ~capacity:256 in
  let tech = Tech.nm32 in
  Printf.printf "custom task: %d basic blocks, %d instructions\n"
    (Ucp_isa.Program.block_count my_task)
    (Ucp_isa.Program.total_slots my_task);
  let cmp = Pipeline.compare_optimized my_task config tech in
  Printf.printf "WCET  %d -> %d cycles\n" cmp.Pipeline.original.Pipeline.tau
    cmp.Pipeline.optimized.Pipeline.tau;
  Printf.printf "ACET  %d -> %d cycles\n" cmp.Pipeline.original.Pipeline.acet
    cmp.Pipeline.optimized.Pipeline.acet;
  Printf.printf "energy %.0f -> %.0f pJ\n" cmp.Pipeline.original.Pipeline.energy_pj
    cmp.Pipeline.optimized.Pipeline.energy_pj;
  Printf.printf "prefetches inserted: %d\n" cmp.Pipeline.prefetches;
  assert (cmp.Pipeline.optimized.Pipeline.tau <= cmp.Pipeline.original.Pipeline.tau);
  (* inspect where they landed *)
  let r = Pipeline.optimize my_task config tech in
  List.iteri
    (fun i (ins : Optimizer.insertion) ->
      Printf.printf "  #%d prefetch uid %d -> block of uid %d (gain %d)\n" i
        ins.Optimizer.prefetch_uid ins.Optimizer.target_uid ins.Optimizer.est_gain)
    r.Optimizer.insertions
