(* Benchmark & reproduction harness.

   Two parts, both in this executable:

   1. Reproduction: regenerates the rows/series of every table and
      figure of the paper's evaluation (Tables 1-2, Figures 3, 4, 5, 7,
      8), plus the ablation tables DESIGN.md calls out (placement
      discipline, overhead budget, baselines).  The sweep defaults to a
      12-configuration subset; set UCP_FULL=1 for the paper's full
      36-configuration, 2664-use-case setup.

   2. Micro-benchmarks: one Bechamel Test.make per pipeline stage and
      per reproduced table/figure, measuring the cost of regenerating
      each from swept records.

     dune exec bench/main.exe             # subset sweep + benchmarks
     UCP_FULL=1 dune exec bench/main.exe  # the full paper sweep

   The sweep runs on the Ucp_core.Parallel domain pool; set UCP_JOBS=N
   or pass --jobs N to size it.  A machine-readable per-use-case
   summary (JSON lines, see Report.sweep_jsonl) is written to
   bench_sweep.jsonl, or to $UCP_SWEEP_OUT if set. *)

module Config = Ucp_cache.Config
module Tech = Ucp_energy.Tech
module Experiments = Ucp_core.Experiments
module Parallel = Ucp_core.Parallel
module Report = Ucp_core.Report
module Pipeline = Ucp_core.Pipeline
module Optimizer = Ucp_prefetch.Optimizer
module Wcet = Ucp_wcet.Wcet
module Simulator = Ucp_sim.Simulator
module Table = Ucp_util.Table

let full = Sys.getenv_opt "UCP_FULL" = Some "1"

(* monotonic wall-clock seconds: under a domain pool, CPU time
   (Sys.time) sums across cores and overstates elapsed time *)
let wall_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let argv_opt name =
  (* --name V / --name=V on the command line *)
  let flag = "--" ^ name and prefix = "--" ^ name ^ "=" in
  let plen = String.length prefix in
  let rec scan = function
    | [] -> None
    | a :: v :: _ when a = flag -> Some v
    | a :: tl ->
      if String.length a >= plen && String.sub a 0 plen = prefix then
        Some (String.sub a plen (String.length a - plen))
      else scan tl
  in
  scan (Array.to_list Sys.argv)

let jobs =
  (* --jobs N on the command line wins over UCP_JOBS *)
  match Option.bind (argv_opt "jobs") int_of_string_opt with
  | Some j when j >= 1 -> j
  | Some _ -> prerr_endline "bench: --jobs: expected a positive integer"; exit 124
  | None -> (
    try Parallel.default_jobs ()
    with Invalid_argument msg ->
      prerr_endline ("bench: " ^ msg);
      exit 124)

let policies =
  (* --policies lru,fifo,plru multiplies the sweep grid (default lru) *)
  match argv_opt "policies" with
  | None -> [ Ucp_policy.Lru ]
  | Some s ->
    List.map
      (fun name ->
        match Ucp_policy.of_string name with
        | Ok p -> p
        | Error msg ->
          prerr_endline ("bench: --policies: " ^ msg);
          exit 124)
      (String.split_on_char ',' s)

let timeout =
  (* --timeout SECS on the command line wins over UCP_CASE_TIMEOUT *)
  let spec =
    match argv_opt "timeout" with
    | Some _ as v -> v
    | None -> (
      match Sys.getenv_opt "UCP_CASE_TIMEOUT" with Some "" -> None | v -> v)
  in
  match spec with
  | None -> None
  | Some s -> (
    match float_of_string_opt s with
    | Some t when t > 0.0 -> Some t
    | Some _ | None ->
      prerr_endline ("bench: timeout " ^ s ^ ": expected positive seconds");
      exit 124)

let audit =
  (* --audit off|sample:N|full on the command line wins over UCP_AUDIT *)
  let spec =
    match argv_opt "audit" with
    | Some _ as v -> v
    | None -> ( match Sys.getenv_opt "UCP_AUDIT" with Some "" -> None | v -> v)
  in
  match spec with
  | None -> Ucp_verify.Off
  | Some s -> (
    match Ucp_verify.mode_of_string s with
    | Ok m -> m
    | Error msg ->
      prerr_endline ("bench: --audit: " ^ msg);
      exit 124)

let trace_path =
  (* --trace FILE on the command line wins over UCP_TRACE *)
  match argv_opt "trace" with
  | Some _ as v -> v
  | None -> ( match Sys.getenv_opt "UCP_TRACE" with Some "" -> None | v -> v)

let heartbeat =
  (* --heartbeat SECS on the command line wins over UCP_HEARTBEAT *)
  let spec =
    match argv_opt "heartbeat" with
    | Some _ as v -> v
    | None -> (
      match Sys.getenv_opt "UCP_HEARTBEAT" with Some "" -> None | v -> v)
  in
  match spec with
  | None -> None
  | Some s -> (
    match float_of_string_opt s with
    | Some t when t > 0.0 -> Some t
    | Some _ | None ->
      prerr_endline ("bench: heartbeat " ^ s ^ ": expected positive seconds");
      exit 124)

(* tracing implies metrics so the exported spans and the counter table
   describe the same run *)
let metrics_on = trace_path <> None || Sys.getenv_opt "UCP_METRICS" = Some "1"

(* ------------------------------------------------------------------ *)
(* part 1: reproduction *)

let ablation_placement records_configs =
  let t =
    Table.create
      [ "use case"; "discipline"; "prefetches"; "WCET ratio"; "ACET ratio"; "exec ratio" ]
  in
  List.iter
    (fun (name, config, tech) ->
      let program = Ucp_workloads.Suite.find name in
      let model = Pipeline.model config tech in
      let base = Simulator.run program config model in
      List.iter
        (fun (label, placement, budget) ->
          let r = Optimizer.optimize ~placement ?overhead_budget:budget program config model in
          let s = Simulator.run r.Optimizer.program config model in
          Table.add_row t
            [
              Printf.sprintf "%s@%s" name (Config.id config);
              label;
              string_of_int (List.length r.Optimizer.insertions);
              Table.cell_f
                (float_of_int r.Optimizer.tau_after /. float_of_int r.Optimizer.tau_before);
              Table.cell_f
                (float_of_int (Simulator.acet s) /. float_of_int (Simulator.acet base));
              Table.cell_f
                (float_of_int s.Simulator.executed /. float_of_int base.Simulator.executed);
            ])
        [
          ("at-eviction (paper)", Optimizer.At_eviction, None);
          ("latest-effective", Optimizer.Latest_effective, None);
          ("at-eviction, no budget", Optimizer.At_eviction, Some 1000.0);
        ])
    records_configs;
  "== Ablation: insertion discipline and overhead budget ==\n" ^ Table.render t

let baseline_table () =
  let t =
    Table.create [ "use case"; "scheme"; "WCET ratio"; "ACET ratio"; "energy ratio"; "miss after" ]
  in
  List.iter
    (fun (name, config, tech) ->
      let program = Ucp_workloads.Suite.find name in
      let model = Pipeline.model config tech in
      let base_stats = Simulator.run program config model in
      let base_b = Ucp_energy.Account.energy model base_stats.Simulator.counts in
      let base_wcet =
        Wcet.tau_with_residual (Wcet.compute ~with_may:false program config model)
      in
      let row label wcet stats =
        let b = Ucp_energy.Account.energy model stats.Simulator.counts in
        Table.add_row t
          [
            Printf.sprintf "%s@%s" name (Config.id config);
            label;
            (match wcet with
            | Some x -> Table.cell_f (float_of_int x /. float_of_int base_wcet)
            | None -> "n/a");
            Table.cell_f
              (float_of_int (Simulator.acet stats) /. float_of_int (Simulator.acet base_stats));
            Table.cell_f (b.Ucp_energy.Account.total_pj /. base_b.Ucp_energy.Account.total_pj);
            Printf.sprintf "%.2f%%" (100.0 *. stats.Simulator.miss_rate);
          ]
      in
      let wcet_of p = Wcet.tau_with_residual (Wcet.compute ~with_may:false p config model) in
      let opt = (Optimizer.optimize program config model).Optimizer.program in
      row "this paper" (Some (wcet_of opt)) (Simulator.run opt config model);
      let bb = Ucp_prefetch.Baselines.bb_start program config model in
      row "bb-start [5]" (Some (wcet_of bb)) (Simulator.run bb config model);
      let lock = Ucp_prefetch.Baselines.lock_greedy program config model in
      row "locked [4,14]"
        (Some lock.Ucp_prefetch.Baselines.tau_locked)
        (Simulator.run ~locked:lock.Ucp_prefetch.Baselines.locked_blocks program config model);
      (if config.Config.assoc > 1 then
         let h = Ucp_prefetch.Baselines.lock_hybrid ~ways:1 program config model in
         row "hybrid lock+prefetch [16,2]"
           (Some h.Ucp_prefetch.Baselines.hybrid_tau)
           (Simulator.run ~pinned:h.Ucp_prefetch.Baselines.hybrid_pinned
              ~cache_config:h.Ucp_prefetch.Baselines.hybrid_config
              h.Ucp_prefetch.Baselines.hybrid_program config model));
      List.iter
        (fun (hw_name, mk) ->
          if hw_name <> "none" then
            row ("hw " ^ hw_name) None (Simulator.run ~hw:(mk ()) program config model))
        (Ucp_sim.Hw_prefetch.all_schemes ~block_bytes:config.Config.block_bytes))
    [
      ("fft1", Config.make ~assoc:2 ~block_bytes:16 ~capacity:256, Tech.nm32);
      ("st", Config.make ~assoc:2 ~block_bytes:16 ~capacity:1024, Tech.nm32);
    ];
  "== Baseline comparison (ratios vs on-demand fetching) ==\n" ^ Table.render t

let summary_path =
  match Sys.getenv_opt "UCP_SWEEP_OUT" with
  | Some p when p <> "" -> p
  | Some _ | None -> "bench_sweep.jsonl"

let reproduce () =
  let configs = if full then Experiments.default_configs else Experiments.quick_configs in
  Printf.printf
    "reproduction sweep: %d programs x %d configs x 2 techs x %d policies = %d use cases%s\n%!"
    (List.length Ucp_workloads.Suite.all)
    (List.length configs) (List.length policies)
    (List.length Ucp_workloads.Suite.all * List.length configs * 2
    * List.length policies)
    (if full then " (full paper setup)" else " (quick subset; UCP_FULL=1 for all 36)");
  (match audit with
  | Ucp_verify.Off -> ()
  | m -> Printf.printf "  certification audit: %s\n%!" (Ucp_verify.mode_to_string m));
  (* per-policy progress line: completion, throughput and run-rate ETA,
     refreshed every 16 cases (progress now arrives per case) *)
  let make_progress () =
    let t_start = wall_s () in
    fun ~done_ ~total ->
      if done_ = total || done_ mod 16 = 0 then begin
        let elapsed = wall_s () -. t_start in
        let rate = if elapsed > 0.0 then float_of_int done_ /. elapsed else 0.0 in
        let eta =
          if rate > 0.0 then
            Printf.sprintf "%.0fs" (float_of_int (total - done_) /. rate)
          else "?"
        in
        Printf.eprintf "\r[sweep] %d/%d | %.1f case/s | elapsed %.0fs | eta %s%!"
          done_ total rate elapsed eta
      end
  in
  (* probe before the (minutes-long) sweep so a bad UCP_SWEEP_OUT path
     fails immediately instead of discarding the finished run; the real
     write below is atomic (temp + rename), so the previous summary is
     never left half-overwritten *)
  (try close_out (open_out_gen [ Open_append; Open_creat ] 0o644 summary_path)
   with Sys_error msg ->
     prerr_endline ("bench: " ^ msg);
     exit 1);
  (match trace_path with
  | None -> ()
  | Some path -> (
    try close_out (open_out_gen [ Open_append; Open_creat ] 0o644 path)
    with Sys_error msg ->
      prerr_endline ("bench: " ^ msg);
      exit 1));
  if metrics_on then Ucp_obs.Metrics.enable ();
  if trace_path <> None then Ucp_obs.Trace.start ();
  let t0 = wall_s () in
  (* one sweep per policy so each slice's wall time is observable on its
     own; the concatenation covers the same grid as a single
     multi-policy sweep, in policy-major order *)
  let sweeps =
    List.map
      (fun p ->
        let tp = wall_s () in
        let s =
          Parallel.sweep ~configs ~policies:[ p ] ~audit ~jobs
            ~progress:(make_progress ()) ?heartbeat ?timeout ()
        in
        Printf.eprintf "\r%!";
        Printf.printf "  policy %-5s %d use cases in %.1fs wall\n%!"
          (Ucp_policy.to_string p) s.Parallel.cases (wall_s () -. tp);
        if metrics_on then
          print_string (Report.worker_table ~wall_s:s.Parallel.wall_s s.Parallel.workers);
        s)
      policies
  in
  Ucp_obs.Trace.stop ();
  (match trace_path with
  | None -> ()
  | Some path ->
    Ucp_obs.Trace.export path;
    Printf.printf "trace written to %s (%d spans)\n%!" path
      (List.length (Ucp_obs.Trace.spans ())));
  let records = List.concat_map (fun s -> s.Parallel.records) sweeps in
  let results = List.concat_map (fun s -> s.Parallel.results) sweeps in
  let failures = List.concat_map (fun s -> s.Parallel.failures) sweeps in
  let some = List.hd sweeps in
  let tm = Pipeline.fresh_timings () in
  List.iter (fun s -> Pipeline.add_timings tm s.Parallel.timings) sweeps;
  let sweep_wall =
    List.fold_left (fun acc s -> acc +. s.Parallel.wall_s) 0.0 sweeps
  in
  Printf.printf "sweep finished in %.1fs wall on %d worker%s\n"
    (wall_s () -. t0) some.Parallel.jobs (if some.Parallel.jobs = 1 then "" else "s");
  print_string
    (Report.stage_table
       (List.map2
          (fun p (s : Parallel.sweep) ->
            (Ucp_policy.to_string p, s.Parallel.timings))
          policies sweeps
       @ (if List.length policies > 1 then [ ("total", tm) ] else [])));
  print_newline ();
  if failures <> [] then begin
    print_string (Report.outcome_summary results);
    if List.length policies > 1 then
      print_string (Report.policy_outcome_summary ~policies results)
  end;
  let metrics_dump = if metrics_on then Ucp_obs.Metrics.dump () else [] in
  if metrics_dump <> [] then print_string (Report.metrics_table metrics_dump);
  Ucp_core.Checkpoint.write_atomic ~path:summary_path
    (Report.sweep_jsonl ~wall_s:sweep_wall ~jobs:some.Parallel.jobs ~timings:tm
       ~outcomes:results
       ?metrics:(if metrics_dump = [] then None else Some metrics_dump)
       records);
  (* keep the identity guard and the micro-benchmarks out of the
     reported counters *)
  if metrics_on then Ucp_obs.Metrics.disable ();
  Printf.printf "per-use-case summary written to %s (%d records + summary line)\n\n%!"
    summary_path (List.length records);
  print_string (Report.all records);
  print_newline ();
  print_string
    (ablation_placement
       [
         ("fft1", Config.make ~assoc:2 ~block_bytes:16 ~capacity:256, Tech.nm45);
         ("st", Config.make ~assoc:2 ~block_bytes:16 ~capacity:1024, Tech.nm45);
         ("nsichneu", Config.make ~assoc:4 ~block_bytes:16 ~capacity:2048, Tech.nm32);
       ]);
  print_newline ();
  print_string (baseline_table ());
  records

(* The policy refactor must not perturb the default engine: on an
   LRU-only sub-grid the parallel sweep's Report.record_json stream has
   to match the sequential reference engine byte for byte. *)
let lru_identity_guard () =
  let programs =
    List.map (fun n -> (n, Ucp_workloads.Suite.find n)) [ "fft1"; "crc" ]
  in
  let configs =
    match Experiments.quick_configs with a :: b :: _ -> [ a; b ] | l -> l
  in
  let techs = [ Tech.nm45 ] in
  let seq =
    List.map Report.record_json (Experiments.sweep ~programs ~configs ~techs ())
  in
  let par =
    List.map Report.record_json
      (Parallel.sweep ~programs ~configs ~techs ~jobs ()).Parallel.records
  in
  if seq <> par then begin
    prerr_endline
      "bench: LRU identity guard FAILED: parallel sweep records differ from \
       the sequential engine";
    exit 1
  end;
  Printf.printf
    "LRU identity guard: %d records byte-identical (parallel vs sequential)\n%!"
    (List.length seq)

(* Audit-cost trajectory: the ci.sh smoke grid swept unaudited and
   under --audit full, recorded in the tracked BENCH_6.json so future
   changes can see certification-cost drift.  With the certificate
   fast path the audit is linear checks only, so the ratio must stay
   small; ci.sh enforces <= 3x on the same grid. *)
let audit_speed_trajectory () =
  let names = [ "fft1"; "crc"; "st"; "fdct" ] in
  let programs = List.map (fun n -> (n, Ucp_workloads.Suite.find n)) names in
  let configs =
    List.filter (fun (id, _) -> List.mem id [ "k2"; "k5"; "k17" ]) Config.paper_configs
  in
  let run audit =
    let s = Parallel.sweep ~programs ~configs ~audit ~jobs () in
    if s.Parallel.failures <> [] then begin
      prerr_endline "bench: audit trajectory: sweep had failing cases";
      exit 1
    end;
    s
  in
  let plain = run Ucp_verify.Off in
  let audited = run Ucp_verify.Full in
  let ratio = audited.Parallel.wall_s /. Float.max 1e-9 plain.Parallel.wall_s in
  let path =
    match Sys.getenv_opt "UCP_BENCH_OUT" with
    | Some p when p <> "" -> p
    | Some _ | None -> "BENCH_6.json"
  in
  Ucp_core.Checkpoint.write_atomic ~path
    (Printf.sprintf
       {|{"bench":"audit-speed","grid":"%s x k2,k5,k17 x 2 techs","cases":%d,"jobs":%d,"wall_unaudited_s":%.3f,"wall_audited_s":%.3f,"ratio":%.2f}|}
       (String.concat "," names) audited.Parallel.cases audited.Parallel.jobs
       plain.Parallel.wall_s audited.Parallel.wall_s ratio
    ^ "\n");
  Printf.printf
    "audit-speed trajectory: %d cases, unaudited %.2fs vs audited %.2fs (%.2fx) -> %s\n%!"
    audited.Parallel.cases plain.Parallel.wall_s audited.Parallel.wall_s ratio path;
  path

(* Refinement-precision trajectory: the ci.sh smoke grid swept across
   all three replacement policies with --refine nc, recorded in the
   tracked BENCH_8.json so future changes can see precision drift.
   The exact exploration must strictly reduce the not-classified slot
   count for at least two of the three policies on this grid — the
   refinement's reason to exist. *)
let refine_precision_trajectory () =
  let names = [ "fft1"; "crc"; "st"; "fdct" ] in
  let programs = List.map (fun n -> (n, Ucp_workloads.Suite.find n)) names in
  let configs =
    List.filter (fun (id, _) -> List.mem id [ "k2"; "k5"; "k17" ]) Config.paper_configs
  in
  let all_policies = [ Ucp_policy.Lru; Ucp_policy.Fifo; Ucp_policy.Plru ] in
  let s =
    Parallel.sweep ~programs ~configs ~policies:all_policies
      ~refine:Ucp_refine.Mode.Nc ~jobs ()
  in
  if s.Parallel.failures <> [] then begin
    prerr_endline "bench: refine trajectory: sweep had failing cases";
    exit 1
  end;
  let rows = Experiments.refine_precision s.Parallel.records in
  let delta_pct (r : Experiments.refine_row) =
    if r.Experiments.rr_tau = 0 then 0.0
    else
      100.0
      *. float_of_int (r.Experiments.rr_tau - r.Experiments.rr_tau_refined)
      /. float_of_int r.Experiments.rr_tau
  in
  let row_json (r : Experiments.refine_row) =
    Printf.sprintf
      {|{"policy":"%s","cases":%d,"nc_before":%d,"nc_after":%d,"ah_gained":%d,"am_gained":%d,"wcet_delta_pct":%.4f,"quant_cases":%d,"budget_hits":%d}|}
      (Ucp_policy.to_string r.Experiments.rr_policy)
      r.Experiments.rr_cases r.Experiments.rr_nc_before
      r.Experiments.rr_nc_after r.Experiments.rr_ah_gained
      r.Experiments.rr_am_gained (delta_pct r) r.Experiments.rr_quant_cases
      r.Experiments.rr_budget_hits
  in
  let path =
    match Sys.getenv_opt "UCP_BENCH8_OUT" with
    | Some p when p <> "" -> p
    | Some _ | None -> "BENCH_8.json"
  in
  Ucp_core.Checkpoint.write_atomic ~path
    (Printf.sprintf
       {|{"bench":"refine-precision","grid":"%s x k2,k5,k17 x 2 techs x lru,fifo,plru","cases":%d,"jobs":%d,"wall_s":%.3f,"policies":[%s]}|}
       (String.concat "," names) s.Parallel.cases s.Parallel.jobs
       s.Parallel.wall_s
       (String.concat "," (List.map row_json rows))
    ^ "\n");
  print_string (Report.refinement s.Parallel.records);
  List.iter
    (fun (r : Experiments.refine_row) ->
      Printf.printf
        "refine-precision %-5s NC %d -> %d (+%d AH, +%d AM), WCET bound -%.2f%%\n"
        (Ucp_policy.to_string r.Experiments.rr_policy)
        r.Experiments.rr_nc_before r.Experiments.rr_nc_after
        r.Experiments.rr_ah_gained r.Experiments.rr_am_gained (delta_pct r))
    rows;
  let strictly_reduced =
    List.length
      (List.filter
         (fun (r : Experiments.refine_row) ->
           r.Experiments.rr_nc_after < r.Experiments.rr_nc_before)
         rows)
  in
  if strictly_reduced < 2 then begin
    Printf.eprintf
      "bench: refine trajectory FAILED: NC strictly reduced for only %d of %d \
       policies\n"
      strictly_reduced (List.length rows);
    exit 1
  end;
  Printf.printf
    "refine-precision trajectory: NC strictly reduced for %d/%d policies -> %s\n%!"
    strictly_reduced (List.length rows) path;
  path

(* Service-latency trajectory: an in-process daemon on a temp socket
   answers a deterministic seeded query mix sized so every serving tier
   populates — two distinct cases against a 1-entry LRU cache give cold
   computes on first contact, memory hits on the immediate re-ask, and
   store hits every time the other case has just evicted the cache.
   Per-tier p50/p95/p99 are then read straight from the
   serve_latency_s{tier=...} histograms (the same registry the daemon's
   Metrics query exposes) and recorded in the tracked BENCH_10.json —
   the baseline --baseline / ucp bench-check gate against.  Every
   request carries a client trace id derived from a fixed seed, and the
   leg honours UCP_FAULT, so CI can arm a stall-request fault on one of
   the case ids and prove the gate actually trips. *)
let serve_latency_trajectory () =
  let module Server = Ucp_serve.Server in
  let module Client = Ucp_serve.Client in
  let module P = Ucp_serve.Protocol in
  let module Ctx = Ucp_obs.Ctx in
  let module Metrics = Ucp_obs.Metrics in
  let module Expo = Ucp_obs.Expo in
  (try Ucp_core.Fault.load_env ()
   with Invalid_argument msg ->
     prerr_endline ("bench: " ^ msg);
     exit 124);
  let pid = Unix.getpid () in
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ucp-bench-%d.sock" pid)
  in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ucp-bench-store-%d" pid)
  in
  let rec rm_rf path =
    match Unix.lstat path with
    | exception Unix.Unix_error _ -> ()
    | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
    | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  in
  let cfg =
    {
      (Server.default_config ~socket ~store_dir:dir) with
      Server.jobs = 1;
      cache_capacity = 1;
      trace_seed = 7;
    }
  in
  let th = Thread.create (fun () -> Server.run ~signals:false cfg) () in
  let t0 = wall_s () in
  let seed = 42 in
  let index = ref 0 in
  let ids = [ "crc:k1:45nm:lru"; "fft1:k1:45nm:lru" ] in
  let ask id =
    let ctx = Ctx.derive ~seed ~index:!index in
    incr index;
    match Client.query ~socket (P.Case { id; trace_id = Some (Ctx.trace_hex ctx) }) with
    | Ok (P.Record _) -> ()
    | Ok _ ->
      prerr_endline "bench: serve trajectory: unexpected response";
      exit 1
    | Error e ->
      prerr_endline ("bench: serve trajectory: query failed: " ^ e);
      exit 1
  in
  let rounds = 12 in
  for _ = 1 to rounds do
    List.iter
      (fun id ->
        ask id;
        ask id)
      ids
  done;
  (match Client.query ~socket P.Shutdown with Ok _ | Error _ -> ());
  Thread.join th;
  rm_rf dir;
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let wall = wall_s () -. t0 in
  let tier_stats tier =
    match Metrics.find (Printf.sprintf "serve_latency_s{tier=%S}" tier) with
    | Some (Metrics.Histogram { bounds; counts; sum; count }) ->
      let q p =
        let v = Expo.quantile ~bounds ~counts p in
        if Float.is_finite v then v
        else if count = 0 then 0.0
          (* quantile landed in the overflow bucket: report a finite
             stand-in past the last bound so the JSON stays valid and
             the gate sees the regression *)
        else 2.0 *. bounds.(Array.length bounds - 1)
      in
      (count, sum, q 0.50, q 0.95, q 0.99)
    | Some _ | None -> (0, 0.0, 0.0, 0.0, 0.0)
  in
  let tiers = [ "cache"; "store"; "cold"; "shed" ] in
  let tier_json tier =
    let count, sum, p50, p95, p99 = tier_stats tier in
    Printf.sprintf
      {|{"tier":"%s","count":%d,"sum_s":%.6f,"p50_s":%.6f,"p95_s":%.6f,"p99_s":%.6f}|}
      tier count sum p50 p95 p99
  in
  let path =
    match Sys.getenv_opt "UCP_BENCH10_OUT" with
    | Some p when p <> "" -> p
    | Some _ | None -> "BENCH_10.json"
  in
  Ucp_core.Checkpoint.write_atomic ~path
    (Printf.sprintf
       {|{"bench":"serve-latency","mix":"%d rounds x 2 cases x 2 asks, cache_capacity 1","requests":%d,"wall_s":%.3f,"tiers":[%s]}|}
       rounds !index wall
       (String.concat "," (List.map tier_json tiers))
    ^ "\n");
  List.iter
    (fun tier ->
      let count, _, p50, p95, p99 = tier_stats tier in
      Printf.printf
        "serve-latency %-5s %4d requests  p50 %.6fs  p95 %.6fs  p99 %.6fs\n"
        tier count p50 p95 p99)
    tiers;
  Printf.printf "serve-latency trajectory: %d requests in %.2fs -> %s\n%!"
    !index wall path;
  path

(* --baseline FILE: gate the freshly written trajectory against a
   checked-in baseline (the Bench_gate tolerance band) and exit nonzero
   on regression.  Pairs with whichever trajectory leg ran: the
   standalone --*-trajectory flags gate their own output; a full run
   gates the serve-latency trajectory. *)
let apply_baseline ~current =
  match argv_opt "baseline" with
  | None -> ()
  | Some baseline -> (
    match Ucp_core.Bench_gate.compare_files ~baseline ~current () with
    | Error msg ->
      prerr_endline ("bench: --baseline: " ^ msg);
      exit 124
    | Ok o ->
      print_string (Ucp_core.Bench_gate.render o);
      if not o.Ucp_core.Bench_gate.passed then begin
        Printf.eprintf "bench: perf-regression gate FAILED against %s\n%!"
          baseline;
        exit 5
      end)

(* ------------------------------------------------------------------ *)
(* part 2: Bechamel micro-benchmarks *)

let micro_benchmarks records =
  let open Bechamel in
  let program = Ucp_workloads.Suite.find "ndes" in
  let config = Config.make ~assoc:2 ~block_bytes:16 ~capacity:512 in
  let model = Pipeline.model config Tech.nm45 in
  let wcet = Wcet.compute ~with_may:false program config model in
  let staged f = Staged.stage f in
  let tests =
    [
      Test.make ~name:"table1" (staged (fun () -> ignore (Report.table1 ())));
      Test.make ~name:"table2" (staged (fun () -> ignore (Report.table2 ())));
      Test.make ~name:"figure3" (staged (fun () -> ignore (Experiments.figure3 records)));
      Test.make ~name:"figure4" (staged (fun () -> ignore (Experiments.figure4 records)));
      Test.make ~name:"figure5" (staged (fun () -> ignore (Experiments.figure5 records)));
      Test.make ~name:"figure7" (staged (fun () -> ignore (Experiments.figure7 records)));
      Test.make ~name:"figure8" (staged (fun () -> ignore (Experiments.figure8 records)));
      Test.make ~name:"vivu-expand"
        (staged (fun () -> ignore (Ucp_cfg.Vivu.expand program)));
      Test.make ~name:"wcet-analysis"
        (staged (fun () -> ignore (Wcet.compute ~with_may:false program config model)));
      Test.make ~name:"ipet-ilp" (staged (fun () -> ignore (Ucp_wcet.Ipet.solve wcet)));
      Test.make ~name:"optimize"
        (staged (fun () -> ignore (Optimizer.optimize program config model)));
      Test.make ~name:"simulate"
        (staged (fun () -> ignore (Simulator.run program config model)));
    ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.4) ~kde:(Some 500) ()
  in
  print_endline "\n== Micro-benchmarks (monotonic clock) ==";
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances test
        |> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                          ~predictors:[| Measure.run |])
             Toolkit.Instance.monotonic_clock
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-16s %12.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "  %-16s (no estimate)\n" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* optional fuzzing throughput leg: UCP_FUZZ=N runs an N-case
   differential campaign (seed 1, the ucp fuzz defaults) on the same
   domain pool and reports cases/s, so generator and oracle cost
   regressions show up next to the sweep numbers *)

let fuzz_throughput () =
  match Sys.getenv_opt "UCP_FUZZ" with
  | None | Some "" -> ()
  | Some spec -> (
    match int_of_string_opt spec with
    | Some n when n > 0 ->
      let module Campaign = Ucp_fuzz.Campaign in
      let t0 = wall_s () in
      let s = Campaign.run { Campaign.default with Campaign.c_count = n } in
      let dt = Float.max 1e-9 (wall_s () -. t0) in
      Printf.printf
        "\n== Fuzzing throughput (UCP_FUZZ=%d) ==\n\
        \  %d cases in %.1f s (%.1f cases/s): %d pass, %d findings, %d timeouts, %d failed\n"
        n s.Campaign.s_cases dt
        (float_of_int s.Campaign.s_cases /. dt)
        s.Campaign.s_pass s.Campaign.s_findings s.Campaign.s_timeouts
        s.Campaign.s_failed;
      if not (Campaign.clean s) then
        print_endline "  WARNING: campaign not clean -- run ucp fuzz to triage"
    | Some _ | None ->
      prerr_endline ("bench: UCP_FUZZ=" ^ spec ^ ": expected a positive case count");
      exit 124)

let () =
  (* --audit-trajectory: regenerate BENCH_6.json alone, without the
     minutes-long reproduction sweep *)
  if Array.exists (( = ) "--audit-trajectory") Sys.argv then begin
    apply_baseline ~current:(audit_speed_trajectory ());
    exit 0
  end;
  (* --refine-trajectory: regenerate BENCH_8.json alone *)
  if Array.exists (( = ) "--refine-trajectory") Sys.argv then begin
    apply_baseline ~current:(refine_precision_trajectory ());
    exit 0
  end;
  (* --serve-trajectory: regenerate the BENCH_10.json service-latency
     baseline alone, without the minutes-long reproduction sweep *)
  if Array.exists (( = ) "--serve-trajectory") Sys.argv then begin
    apply_baseline ~current:(serve_latency_trajectory ());
    exit 0
  end;
  let records = reproduce () in
  print_newline ();
  lru_identity_guard ();
  ignore (audit_speed_trajectory ());
  ignore (refine_precision_trajectory ());
  apply_baseline ~current:(serve_latency_trajectory ());
  micro_benchmarks records;
  fuzz_throughput ();
  print_endline "\nbench: done"
