(** Two-phase primal simplex over exact rationals.

    Solves  maximize cᵀx  subject to linear constraints and x ≥ 0.
    Bland's anti-cycling rule guarantees termination; exact arithmetic
    makes the optimality test free of tolerances.  Problem sizes here
    (IPET flow problems) are tens to a few hundred variables. *)

type op = Le | Ge | Eq

type problem = {
  num_vars : int;
  objective : Rational.t array;  (** length [num_vars] *)
  constraints : (Rational.t array * op * Rational.t) list;
      (** rows [(coeffs, op, rhs)]; [coeffs] has length [num_vars] *)
}

type solution = {
  value : Rational.t;
  assignment : Rational.t array;  (** length [num_vars] *)
  dual : Rational.t array;
      (** LP duality certificate: one multiplier per constraint row, in
          the order of [constraints].  For [maximize], a correct dual
          satisfies the sign conditions (y_i ≥ 0 for [Le] rows,
          y_i ≤ 0 for [Ge] rows, free for [Eq]), dual feasibility
          (Aᵀy ≥ c componentwise) and strong duality
          (bᵀy = [value] = cᵀx) — all checkable in exact rationals by
          {!Ucp_verify.certify_lp}.  [minimize] negates the duals, so
          the mirrored conditions hold (y_i ≤ 0 for [Le], y_i ≥ 0 for
          [Ge], Aᵀy ≤ c, bᵀy = value). *)
}

type outcome =
  | Optimal of solution
  | Infeasible
  | Unbounded

val maximize : ?deadline:Ucp_util.Deadline.t -> problem -> outcome
(** @raise Invalid_argument on dimension mismatches.
    @raise Ucp_util.Deadline.Deadline_exceeded if [?deadline] passes
    while pivoting (checked every few dozen pivots). *)

val minimize : ?deadline:Ucp_util.Deadline.t -> problem -> outcome
(** Convenience wrapper: negates the objective. *)

val check_certificate :
  ?minimize:bool -> problem -> solution -> (unit, string) result
(** Verify a stored primal/dual certificate directly: primal
    feasibility, dual sign conditions, dual feasibility (Aᵀy ≥ c) and
    strong duality (cᵀx = value = bᵀy), all in exact rationals — linear
    passes over the problem data, no pivots.  [~minimize] checks the
    mirrored conditions {!minimize} produces.  On failure the error
    names the violated obligation ([lp-shape], [lp-primal-feasible],
    [lp-dual-sign], [lp-dual-feasible], [lp-strong-duality]) and the
    offending numbers. *)
