module Q = Rational

type outcome =
  | Optimal of { value : Q.t; assignment : int array }
  | Infeasible
  | Unbounded

exception Node_budget_exhausted of int

let () =
  Printexc.register_printer (function
    | Node_budget_exhausted n ->
      Some (Printf.sprintf "Ilp.Node_budget_exhausted: %d branch-and-bound nodes" n)
    | _ -> None)

let fractional_var assignment =
  let n = Array.length assignment in
  let rec find j =
    if j >= n then None
    else if not (Q.is_integer assignment.(j)) then Some j
    else find (j + 1)
  in
  find 0

let bound_row num_vars j q op =
  let coeffs = Array.make num_vars Q.zero in
  coeffs.(j) <- Q.one;
  (coeffs, op, q)

let nodes_total = lazy (Ucp_obs.Metrics.counter "ilp_nodes_total")

let maximize ?deadline ?(max_nodes = 100_000) (problem : Simplex.problem) =
  Ucp_obs.Trace.with_span ~name:"ilp" (fun () ->
  let nodes = ref 0 in
  let incumbent = ref None in
  let better value =
    match !incumbent with
    | None -> true
    | Some (best, _) -> Q.compare value best > 0
  in
  let rec explore extra =
    incr nodes;
    if !nodes > max_nodes then raise (Node_budget_exhausted !nodes);
    Ucp_util.Deadline.check deadline;
    let p = { problem with Simplex.constraints = problem.Simplex.constraints @ extra } in
    match Simplex.maximize ?deadline p with
    | Simplex.Infeasible -> `Done
    | Simplex.Unbounded -> `Unbounded
    | Simplex.Optimal { value; assignment; _ } ->
      if not (better value) then `Done
      else begin
        match fractional_var assignment with
        | None ->
          let ints = Array.map Q.to_int_exn assignment in
          incumbent := Some (value, ints);
          `Done
        | Some j ->
          let v = assignment.(j) in
          let le = bound_row problem.Simplex.num_vars j (Q.of_int (Q.floor v)) Simplex.Le in
          let ge = bound_row problem.Simplex.num_vars j (Q.of_int (Q.ceil v)) Simplex.Ge in
          (match explore (le :: extra) with
          | `Unbounded -> `Unbounded
          | `Done -> explore (ge :: extra))
      end
  in
  (* As in Simplex.maximize: record the node count even when the node
     budget or a deadline aborts the search. *)
  Fun.protect
    ~finally:(fun () ->
      Ucp_obs.Trace.set_arg "nodes" (Ucp_obs.Trace.Int !nodes);
      Ucp_obs.Metrics.add (Lazy.force nodes_total) !nodes)
    (fun () ->
      match explore [] with
      | `Unbounded -> Unbounded
      | `Done -> (
        match !incumbent with
        | Some (value, assignment) -> Optimal { value; assignment }
        | None -> Infeasible)))
