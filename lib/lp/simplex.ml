module Q = Rational

type op = Le | Ge | Eq

type problem = {
  num_vars : int;
  objective : Q.t array;
  constraints : (Q.t array * op * Q.t) list;
}

type solution = { value : Q.t; assignment : Q.t array; dual : Q.t array }

type outcome =
  | Optimal of solution
  | Infeasible
  | Unbounded

type tableau = {
  rows : Q.t array array;  (* m x (cols + 1); last column is the rhs *)
  basis : int array;  (* basic variable of each row *)
  cols : int;  (* number of variable columns *)
}

let pivot t z ~row ~col =
  let piv = t.rows.(row).(col) in
  assert (Q.sign piv <> 0);
  let r = t.rows.(row) in
  for j = 0 to t.cols do
    r.(j) <- Q.div r.(j) piv
  done;
  let eliminate target =
    let f = target.(col) in
    if Q.sign f <> 0 then
      for j = 0 to t.cols do
        target.(j) <- Q.sub target.(j) (Q.mul f r.(j))
      done
  in
  Array.iteri (fun i row_i -> if i <> row then eliminate row_i) t.rows;
  eliminate z;
  t.basis.(row) <- col

(* How many pivots between deadline checks: a pivot over a few hundred
   columns of rationals costs microseconds, so 64 bounds the overrun to
   well under a millisecond while keeping the clock off the hot path. *)
let pivots_per_deadline_check = 64

(* Bland's rule: entering column = lowest-index eligible column with a
   positive reduced cost; leaving row = lexicographically by minimum
   ratio then lowest basic-variable index. *)
let run ?deadline ~pivots t z ~allowed =
  let m = Array.length t.rows in
  let rec step () =
    incr pivots;
    if !pivots mod pivots_per_deadline_check = 0 then
      Ucp_util.Deadline.check deadline;
    let entering = ref (-1) in
    (try
       for j = 0 to t.cols - 1 do
         if allowed j && Q.sign z.(j) > 0 then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering = -1 then `Optimal
    else begin
      let col = !entering in
      let best = ref None in
      for i = 0 to m - 1 do
        let a = t.rows.(i).(col) in
        if Q.sign a > 0 then begin
          let ratio = Q.div t.rows.(i).(t.cols) a in
          match !best with
          | None -> best := Some (ratio, i)
          | Some (r, bi) ->
            let c = Q.compare ratio r in
            if c < 0 || (c = 0 && t.basis.(i) < t.basis.(bi)) then best := Some (ratio, i)
        end
      done;
      match !best with
      | None -> `Unbounded
      | Some (_, row) ->
        pivot t z ~row ~col;
        step ()
    end
  in
  step ()

let build problem =
  let n = problem.num_vars in
  if Array.length problem.objective <> n then
    invalid_arg "Simplex: objective length mismatch";
  List.iter
    (fun (coeffs, _, _) ->
      if Array.length coeffs <> n then invalid_arg "Simplex: constraint length mismatch")
    problem.constraints;
  (* Normalize rows to nonnegative rhs, remembering which rows were
     negated so dual values can be mapped back to the original rows. *)
  let rows =
    List.map
      (fun (coeffs, op, rhs) ->
        if Q.sign rhs < 0 then
          ( Array.map Q.neg coeffs,
            (match op with Le -> Ge | Ge -> Le | Eq -> Eq),
            Q.neg rhs,
            true )
        else (Array.copy coeffs, op, rhs, false))
      problem.constraints
  in
  let m = List.length rows in
  let n_slack = List.length (List.filter (fun (_, op, _, _) -> op <> Eq) rows) in
  let n_art = List.length (List.filter (fun (_, op, _, _) -> op <> Le) rows) in
  let cols = n + n_slack + n_art in
  let art_start = n + n_slack in
  let tab = Array.init m (fun _ -> Array.make (cols + 1) Q.zero) in
  let basis = Array.make m (-1) in
  (* Per original constraint: the column whose constraint-matrix column
     is exactly the unit vector e_i (the Le slack, or the artificial for
     Ge/Eq rows), plus whether normalization negated the row.  The
     phase-2 reduced cost of that column is -y_i for the simplex
     multipliers y = c_B B^-1, which is exactly the dual solution. *)
  let dual_cols = Array.make m (-1, false) in
  let slack = ref n and art = ref art_start in
  List.iteri
    (fun i (coeffs, op, rhs, flipped) ->
      Array.blit coeffs 0 tab.(i) 0 n;
      tab.(i).(cols) <- rhs;
      (match op with
      | Le ->
        tab.(i).(!slack) <- Q.one;
        basis.(i) <- !slack;
        dual_cols.(i) <- (!slack, flipped);
        incr slack
      | Ge ->
        tab.(i).(!slack) <- Q.neg Q.one;
        incr slack;
        tab.(i).(!art) <- Q.one;
        basis.(i) <- !art;
        dual_cols.(i) <- (!art, flipped);
        incr art
      | Eq ->
        tab.(i).(!art) <- Q.one;
        basis.(i) <- !art;
        dual_cols.(i) <- (!art, flipped);
        incr art))
    rows;
  ({ rows = tab; basis; cols }, art_start, dual_cols)

(* Reduced-cost row for objective [c] (over variable columns) given the
   current basis: z = c - sum over rows of c_basic * row.  The cell
   z.(cols) then holds minus the objective value. *)
let make_z t c =
  let z = Array.make (t.cols + 1) Q.zero in
  Array.blit c 0 z 0 (Array.length c);
  Array.iteri
    (fun i b ->
      let cb = if b < Array.length c then c.(b) else Q.zero in
      if Q.sign cb <> 0 then
        for j = 0 to t.cols do
          z.(j) <- Q.sub z.(j) (Q.mul cb t.rows.(i).(j))
        done)
    t.basis;
  z

let pivots_total = lazy (Ucp_obs.Metrics.counter "simplex_pivots_total")

let maximize ?deadline problem =
  Ucp_obs.Trace.with_span ~name:"simplex" (fun () ->
      let pivots = ref 0 in
      (* Record the pivot count even when a deadline fires mid-solve, so
         the metric and the trace args agree under timeouts too. *)
      Fun.protect
        ~finally:(fun () ->
          Ucp_obs.Trace.set_arg "pivots" (Ucp_obs.Trace.Int !pivots);
          Ucp_obs.Metrics.add (Lazy.force pivots_total) !pivots)
        (fun () ->
          let t, art_start, dual_cols = build problem in
          let m = Array.length t.rows in
          (* Phase 1: maximize -(sum of artificials). *)
          let phase1_obj = Array.make t.cols Q.zero in
          for j = art_start to t.cols - 1 do
            phase1_obj.(j) <- Q.neg Q.one
          done;
          let z1 = make_z t phase1_obj in
          (match run ?deadline ~pivots t z1 ~allowed:(fun _ -> true) with
          | `Unbounded -> assert false (* phase-1 objective is bounded above by 0 *)
          | `Optimal -> ());
          let phase1_value = Q.neg z1.(t.cols) in
          if Q.sign phase1_value < 0 then Infeasible
          else begin
            (* Drive any remaining (zero-valued) artificials out of the basis
               where possible; rows where it is impossible are redundant. *)
            for i = 0 to m - 1 do
              if t.basis.(i) >= art_start then begin
                let j = ref 0 and found = ref false in
                while (not !found) && !j < art_start do
                  if Q.sign t.rows.(i).(!j) <> 0 then found := true else incr j
                done;
                if !found then pivot t (Array.make (t.cols + 1) Q.zero) ~row:i ~col:!j
              end
            done;
            (* Phase 2: the real objective; artificial columns may not enter. *)
            let phase2_obj = Array.make t.cols Q.zero in
            Array.blit problem.objective 0 phase2_obj 0 problem.num_vars;
            let z2 = make_z t phase2_obj in
            match run ?deadline ~pivots t z2 ~allowed:(fun j -> j < art_start) with
            | `Unbounded -> Unbounded
            | `Optimal ->
              let assignment = Array.make problem.num_vars Q.zero in
              Array.iteri
                (fun i b ->
                  if b < problem.num_vars then assignment.(b) <- t.rows.(i).(t.cols))
                t.basis;
              (* Dual solution: y_i = -z2 at row i's unit column (see [build]);
                 rows negated during normalization negate back. *)
              let dual =
                Array.map
                  (fun (col, flipped) ->
                    let y = Q.neg z2.(col) in
                    if flipped then Q.neg y else y)
                  dual_cols
              in
              Optimal { value = Q.neg z2.(t.cols); assignment; dual }
          end))

let minimize ?deadline problem =
  let neg = { problem with objective = Array.map Q.neg problem.objective } in
  match maximize ?deadline neg with
  | Optimal { value; assignment; dual } ->
    Optimal { value = Q.neg value; assignment; dual = Array.map Q.neg dual }
  | (Infeasible | Unbounded) as o -> o

(* ------------------------------------------------------------------ *)
(* Direct certificate checking: the stored primal/dual pair is verified
   by linear passes over the problem data — no pivots, no re-solve.
   This is the trusted half of the audit's LP fast path; [maximize] /
   [minimize] only ever act as untrusted certificate producers. *)

let ( let* ) = Result.bind

let cert_fail obligation fmt =
  Printf.ksprintf (fun s -> Error (obligation ^ ": " ^ s)) fmt

let q_to_string v = Format.asprintf "%a" Q.pp v

let dot coeffs x =
  let acc = ref Q.zero in
  Array.iteri (fun j c -> acc := Q.add !acc (Q.mul c x.(j))) coeffs;
  !acc

let check_certificate ?(minimize = false) problem (sol : solution) =
  (* A minimization answer is the negated-objective maximization answer
     with value and duals negated back; undo that and check the
     canonical maximize conditions. *)
  let problem, sol =
    if minimize then
      ( { problem with objective = Array.map Q.neg problem.objective },
        { sol with value = Q.neg sol.value; dual = Array.map Q.neg sol.dual } )
    else (problem, sol)
  in
  let { value; assignment; dual } = sol in
  let n = problem.num_vars in
  let rows = Array.of_list problem.constraints in
  let m = Array.length rows in
  let* () =
    if Array.length assignment <> n then
      cert_fail "lp-shape" "assignment has %d entries, want %d"
        (Array.length assignment) n
    else if Array.length dual <> m then
      cert_fail "lp-shape" "dual has %d entries, want %d rows" (Array.length dual) m
    else Ok ()
  in
  (* Primal feasibility: x >= 0 and every row satisfied, exactly. *)
  let* () =
    let bad = ref None in
    Array.iteri (fun j x -> if !bad = None && Q.sign x < 0 then bad := Some j) assignment;
    match !bad with
    | Some j ->
      cert_fail "lp-primal-feasible" "x_%d = %s < 0" j (q_to_string assignment.(j))
    | None ->
      let row_err = ref None in
      Array.iteri
        (fun i (coeffs, op, rhs) ->
          if !row_err = None then begin
            let lhs = dot coeffs assignment in
            let ok =
              match op with
              | Le -> Q.compare lhs rhs <= 0
              | Ge -> Q.compare lhs rhs >= 0
              | Eq -> Q.equal lhs rhs
            in
            if not ok then row_err := Some (i, lhs, rhs)
          end)
        rows;
      (match !row_err with
      | Some (i, lhs, rhs) ->
        cert_fail "lp-primal-feasible" "row %d violated: lhs %s vs rhs %s" i
          (q_to_string lhs) (q_to_string rhs)
      | None -> Ok ())
  in
  (* Dual sign conditions: y_i >= 0 for Le rows, y_i <= 0 for Ge rows,
     free for Eq rows. *)
  let* () =
    let bad = ref None in
    Array.iteri
      (fun i (_, op, _) ->
        if !bad = None then
          match op with
          | Le when Q.sign dual.(i) < 0 -> bad := Some (i, ">=")
          | Ge when Q.sign dual.(i) > 0 -> bad := Some (i, "<=")
          | _ -> ())
      rows;
    match !bad with
    | Some (i, want) ->
      cert_fail "lp-dual-sign" "y_%d = %s violates y %s 0" i (q_to_string dual.(i)) want
    | None -> Ok ()
  in
  (* Dual feasibility: (A^T y)_j >= c_j for every variable. *)
  let* () =
    let bad = ref None in
    for j = 0 to n - 1 do
      if !bad = None then begin
        let aty = ref Q.zero in
        Array.iteri (fun i (coeffs, _, _) -> aty := Q.add !aty (Q.mul coeffs.(j) dual.(i))) rows;
        if Q.compare !aty problem.objective.(j) < 0 then bad := Some (j, !aty)
      end
    done;
    match !bad with
    | Some (j, aty) ->
      cert_fail "lp-dual-feasible" "(A^T y)_%d = %s < c_%d = %s" j (q_to_string aty) j
        (q_to_string problem.objective.(j))
    | None -> Ok ()
  in
  (* Strong duality: c^T x = value = b^T y, closing the sandwich
     c^T x <= value <= b^T y from both sides. *)
  let cx = dot problem.objective assignment in
  let by =
    let acc = ref Q.zero in
    Array.iteri (fun i (_, _, rhs) -> acc := Q.add !acc (Q.mul rhs dual.(i))) rows;
    !acc
  in
  if not (Q.equal cx value) then
    cert_fail "lp-strong-duality" "c^T x = %s but claimed value = %s" (q_to_string cx)
      (q_to_string value)
  else if not (Q.equal by value) then
    cert_fail "lp-strong-duality" "b^T y = %s but claimed value = %s" (q_to_string by)
      (q_to_string value)
  else Ok ()
