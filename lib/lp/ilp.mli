(** Integer linear programming by branch & bound on {!Simplex}.

    All variables are constrained to nonnegative integers, which is
    exactly the IPET setting (basic-block and edge execution counts). *)

type outcome =
  | Optimal of { value : Rational.t; assignment : int array }
  | Infeasible
  | Unbounded

exception Node_budget_exhausted of int
(** Raised when branch & bound explores more than [max_nodes] nodes.
    Carries the node count.  A printer is registered, so sweep failure
    records show ["Ilp.Node_budget_exhausted: N branch-and-bound
    nodes"] instead of a generic crash text.  IPET instances are
    near-integral network flows, so hitting the budget indicates a
    malformed model rather than a hard instance. *)

val maximize :
  ?deadline:Ucp_util.Deadline.t -> ?max_nodes:int -> Simplex.problem -> outcome
(** Solve, exploring at most [max_nodes] branch-and-bound nodes
    (default [100_000]).
    @raise Node_budget_exhausted if the node budget is exhausted.
    @raise Ucp_util.Deadline.Deadline_exceeded if [?deadline] passes
    (checked per node and inside every LP solve). *)
