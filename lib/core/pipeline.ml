module Config = Ucp_cache.Config
module Tech = Ucp_energy.Tech
module Cacti = Ucp_energy.Cacti
module Account = Ucp_energy.Account
module Wcet = Ucp_wcet.Wcet
module Analysis = Ucp_wcet.Analysis
module Simulator = Ucp_sim.Simulator
module Optimizer = Ucp_prefetch.Optimizer
module Refine = Ucp_refine.Explore
module Refine_mode = Ucp_refine.Mode

type measurement = {
  tau : int;
  acet : int;
  energy_pj : float;
  miss_rate : float;
  executed : int;
  demand_misses : int;
  wcet_miss_bound : int;
  ah : int;
  am : int;
  nc : int;
  refine : Refine.summary option;
      (* additive: the base bounds above are always the unrefined ones
         (so refined and unrefined record streams stay comparable and
         the optimizer trail's endpoints keep matching); the refined
         tau / miss bound / classification counts ride along here *)
}

type timings = {
  mutable analysis_s : float;
  mutable refine_s : float;
  mutable optimize_s : float;
  mutable simulate_s : float;
  mutable audit_s : float;
}

let fresh_timings () =
  {
    analysis_s = 0.0;
    refine_s = 0.0;
    optimize_s = 0.0;
    simulate_s = 0.0;
    audit_s = 0.0;
  }

let add_timings acc t =
  acc.analysis_s <- acc.analysis_s +. t.analysis_s;
  acc.refine_s <- acc.refine_s +. t.refine_s;
  acc.optimize_s <- acc.optimize_s +. t.optimize_s;
  acc.simulate_s <- acc.simulate_s +. t.simulate_s;
  acc.audit_s <- acc.audit_s +. t.audit_s

let total_timings t =
  t.analysis_s +. t.refine_s +. t.optimize_s +. t.simulate_s +. t.audit_s

(* accumulate the wall-clock cost of [f] into one stage of [tm], and
   record the stage as a trace span (span recording is independent of
   whether a timings accumulator was supplied) *)
let timed ~name tm add f =
  let f () = Ucp_obs.Trace.with_span ~name f in
  match tm with
  | None -> f ()
  | Some tm ->
    let t0 = Unix.gettimeofday () in
    let r = f () in
    add tm (Unix.gettimeofday () -. t0);
    r

let on_analysis tm d = tm.analysis_s <- tm.analysis_s +. d
let on_refine tm d = tm.refine_s <- tm.refine_s +. d
let on_optimize tm d = tm.optimize_s <- tm.optimize_s +. d
let on_simulate tm d = tm.simulate_s <- tm.simulate_s +. d
let on_audit tm d = tm.audit_s <- tm.audit_s +. d

let model config tech = Cacti.model config tech

let measure ?deadline ?(seed = 42) ?model:mdl ?wcet ?timed:tm
    ?(policy = Ucp_policy.Lru) ?(refine = Refine_mode.Off)
    ?(corrupt_refine = false) program config tech =
  let m = match mdl with Some m -> m | None -> model config tech in
  (* The may analysis is on so the measurement carries real always-miss
     counts; tau and the miss bound are unaffected (always-miss and
     not-classified are charged identically in the WCET scenario). *)
  let w =
    match wcet with
    | Some w -> w
    | None ->
      timed ~name:"analysis" tm on_analysis (fun () ->
          Wcet.compute ?deadline ~with_may:true ~policy program config m)
  in
  let refined =
    match refine with
    | Refine_mode.Off -> None
    | mode ->
      timed ~name:"refine" tm on_refine (fun () ->
          Refine.run ?deadline ~corrupt:corrupt_refine ~mode w)
  in
  let stats =
    timed ~name:"simulate" tm on_simulate (fun () -> Simulator.run ~seed ~policy program config m)
  in
  let breakdown = Account.energy m stats.Simulator.counts in
  let ah, am, nc = Analysis.classification_counts w.Wcet.analysis in
  {
    tau = Wcet.tau_with_residual w;
    acet = Simulator.acet stats;
    energy_pj = breakdown.Account.total_pj;
    miss_rate = stats.Simulator.miss_rate;
    executed = stats.Simulator.executed;
    demand_misses = stats.Simulator.counts.Account.misses;
    wcet_miss_bound = Analysis.miss_count_bound w.Wcet.analysis;
    ah;
    am;
    nc;
    refine = Option.map fst refined;
  }

let optimize ?model:mdl ?policy program config tech =
  let m = match mdl with Some m -> m | None -> model config tech in
  Ucp_obs.Trace.with_span ~name:"optimize" (fun () ->
      Optimizer.optimize ?policy program config m)

type audit =
  | Not_audited
  | Audited of { checks : int; seconds : float }
  | Audit_skipped of string

type comparison = {
  original : measurement;
  optimized : measurement;
  prefetches : int;
  rejected : int;
  audit : audit;
}

type audit_input = {
  ai_original : Wcet.t;
  ai_optimized : Wcet.t;
  ai_result : Optimizer.result;
  ai_corrupt : bool;
  ai_seed : int;
  ai_refine : Refine_mode.t;
  ai_refine_original : Refine.summary option;
  ai_refine_optimized : Refine.summary option;
}

let finish_audit ?deadline ?timed:tm input =
  let v =
    Ucp_obs.Trace.with_span ~name:"audit" (fun () ->
        Ucp_verify.audit_case ?deadline ~seed:input.ai_seed
          ~corrupt:input.ai_corrupt
          ~refine:
            (input.ai_refine, input.ai_refine_original, input.ai_refine_optimized)
          ~original:input.ai_original ~optimized:input.ai_optimized
          input.ai_result)
  in
  match v with
  | Ok verdict ->
    (* The audit stage of [timed] accumulates the verdict's own
       per-obligation intervals — the same measurements that feed the
       [audit_seconds_total] metrics fcounter — not a second ad-hoc
       clock around this call, so traced and untraced runs put
       identical audit numbers on the summary line. *)
    Option.iter (fun tm -> on_audit tm (Ucp_verify.verdict_seconds verdict)) tm;
    (match verdict with
    | Ucp_verify.Certified { checks; seconds } -> Audited { checks; seconds }
    | Ucp_verify.Skipped { reason } -> Audit_skipped reason)
  | Error msg -> raise (Outcome.Invariant ("audit: " ^ msg))

let prepare ?deadline ?(seed = 42) ?model:mdl ?timed:tm
    ?(policy = Ucp_policy.Lru) ?analysis0 ?(audit = false)
    ?(corrupt_cert = false) ?(refine = Refine_mode.Off)
    ?(corrupt_refine = false) program config tech =
  let m = match mdl with Some m -> m | None -> model config tech in
  (* The original program's cache-aware analysis is the most expensive
     shared artifact of a use case: compute it once and hand it to both
     the optimizer (which otherwise recomputes it as its starting
     fixpoint) and the original-program measurement — or reuse a
     [?analysis0] memoized by the sweep across the technology axis
     (the abstract interpretation never looks at the timing model).
     The may analysis is on for the sake of the measurement's
     classification counters; the optimizer's own re-analyses stay
     may-free where the policy allows it. *)
  let w0 =
    timed ~name:"analysis" tm on_analysis (fun () ->
        match analysis0 with
        | Some a -> Wcet.of_analysis a m
        | None -> Wcet.compute ?deadline ~with_may:true ~policy program config m)
  in
  let result =
    timed ~name:"optimize" tm on_optimize (fun () ->
        Optimizer.optimize ?deadline ~initial:w0 program config m)
  in
  (* The optimized program's measurement analysis, computed explicitly
     so the audit can reuse it as its independent "after" artifact. *)
  let w1 =
    timed ~name:"analysis" tm on_analysis (fun () ->
        Wcet.compute ?deadline ~with_may:true ~policy result.Optimizer.program
          config m)
  in
  (* the corrupt-refine fault targets the original side only: one
     unsound reclassification is enough for the audit to have to
     catch, and the optimized side stays an honest control *)
  let original =
    measure ?deadline ~seed ~model:m ~wcet:w0 ?timed:tm ~policy ~refine
      ~corrupt_refine program config tech
  in
  let optimized =
    measure ?deadline ~seed ~model:m ~wcet:w1 ?timed:tm ~policy ~refine
      result.Optimizer.program config tech
  in
  let cmp =
    {
      original;
      optimized;
      prefetches = List.length result.Optimizer.insertions;
      rejected = result.Optimizer.rejected;
      audit = Not_audited;
    }
  in
  let obligation =
    if not audit then None
    else
      Some
        {
          ai_original = w0;
          ai_optimized = w1;
          ai_result = result;
          ai_corrupt = corrupt_cert;
          ai_seed = seed;
          ai_refine = refine;
          ai_refine_original = original.refine;
          ai_refine_optimized = optimized.refine;
        }
  in
  (cmp, obligation)

let compare_optimized ?deadline ?seed ?model:mdl ?timed:tm ?policy ?analysis0
    ?audit ?corrupt_cert ?refine ?corrupt_refine program config tech =
  let cmp, obligation =
    prepare ?deadline ?seed ?model:mdl ?timed:tm ?policy ?analysis0 ?audit
      ?corrupt_cert ?refine ?corrupt_refine program config tech
  in
  match obligation with
  | None -> cmp
  | Some input -> { cmp with audit = finish_audit ?deadline ?timed:tm input }
