(** Perf-regression gate over the checked-in [BENCH_*.json] trajectory
    files: compares a current benchmark document against a baseline and
    fails when a {e time-like} number left the tolerance band.

    The walk is structural (objects by key, arrays by index; keys
    missing on either side are skipped, so additive fields are not
    regressions).  A numeric leaf is gated when its field name ends in
    [_s] or is [ratio]; it passes iff
    [current <= baseline * factor + slack].  Counts and precision
    numbers ([cases], [wcet_delta_pct], ...) are never gated.  The
    default band ([factor] {!default_factor}, [slack] {!default_slack}
    seconds) is deliberately wide: the gate flags order-of-magnitude
    regressions on arbitrary CI hardware, not timing noise. *)

type verdict = {
  v_path : string;  (** dotted path of the leaf, e.g. [tiers[0].p99_s] *)
  v_base : float;
  v_cur : float;
  v_limit : float;  (** [base * factor + slack] *)
  v_ok : bool;
}

type outcome = {
  verdicts : verdict list;  (** gated leaves, document order *)
  passed : bool;  (** no gated leaf regressed *)
  gated : int;
}

val default_factor : float
(** 3.0 *)

val default_slack : float
(** 0.25 s *)

val time_like : string -> bool
(** Is this field name gated? ([_s] suffix or [ratio].) *)

val compare_json :
  ?factor:float ->
  ?slack:float ->
  baseline:Ucp_util.Json.t ->
  current:Ucp_util.Json.t ->
  unit ->
  outcome
(** @raise Invalid_argument on a non-positive [factor] or negative
    [slack]. *)

val compare_files :
  ?factor:float ->
  ?slack:float ->
  baseline:string ->
  current:string ->
  unit ->
  (outcome, string) result
(** [Error] on an unreadable or unparseable file. *)

val render : outcome -> string
(** Human-readable verdict table plus a one-line summary. *)
