(* Perf-regression gate over the checked-in BENCH_*.json trajectory
   files.

   The comparison is structural: objects are walked by key, arrays by
   index, and every {e time-like} numeric leaf present in both
   documents is gated — a leaf passes iff

     current <= baseline * factor + slack

   Time-like means the field name ends in [_s] (wall clocks,
   latency quantiles) or is [ratio] (audited/unaudited overhead).
   Everything else (case counts, precision deltas like
   [wcet_delta_pct], NC counts) is informational: those numbers moving
   is the point of the work, not a regression.  The band is generous on
   purpose — the gate runs on whatever hardware CI lands on, so it
   catches order-of-magnitude regressions (a quadratic slip, an
   accidental sleep), not 10% noise. *)

module Json = Ucp_util.Json

type verdict = {
  v_path : string;  (* dotted path of the leaf, e.g. tiers[0].p99_s *)
  v_base : float;
  v_cur : float;
  v_limit : float;  (* base * factor + slack *)
  v_ok : bool;
}

type outcome = {
  verdicts : verdict list;  (* gated leaves, document order *)
  passed : bool;  (* no gated leaf regressed *)
  gated : int;  (* = List.length verdicts *)
}

let default_factor = 3.0
let default_slack = 0.25

let time_like name =
  let n = String.length name in
  name = "ratio" || (n > 2 && String.sub name (n - 2) 2 = "_s")

let rec walk ~factor ~slack path name base cur acc =
  match (base, cur) with
  | Json.Obj bkvs, Json.Obj ckvs ->
    (* keys present in both; additive fields are not regressions *)
    List.fold_left
      (fun acc (k, bv) ->
        match List.assoc_opt k ckvs with
        | None -> acc
        | Some cv ->
          let path = if path = "" then k else path ^ "." ^ k in
          walk ~factor ~slack path k bv cv acc)
      acc bkvs
  | Json.Arr bs, Json.Arr cs ->
    let rec go i acc = function
      | [], _ | _, [] -> acc
      | b :: bs, c :: cs ->
        go (i + 1)
          (walk ~factor ~slack (Printf.sprintf "%s[%d]" path i) name b c acc)
          (bs, cs)
    in
    go 0 acc (bs, cs)
  | Json.Num b, Json.Num c when time_like name ->
    let v_limit = (b *. factor) +. slack in
    { v_path = path; v_base = b; v_cur = c; v_limit; v_ok = c <= v_limit } :: acc
  | _ -> acc

let compare_json ?(factor = default_factor) ?(slack = default_slack) ~baseline
    ~current () =
  if (not (Float.is_finite factor)) || factor <= 0.0 then
    invalid_arg "Bench_gate: factor must be a positive number";
  if (not (Float.is_finite slack)) || slack < 0.0 then
    invalid_arg "Bench_gate: slack must be a non-negative number";
  let verdicts = List.rev (walk ~factor ~slack "" "" baseline current []) in
  {
    verdicts;
    passed = List.for_all (fun v -> v.v_ok) verdicts;
    gated = List.length verdicts;
  }

let read_json path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let len = in_channel_length ic in
    let src = really_input_string ic len in
    close_in ic;
    (match Json.parse src with
    | Ok j -> Ok j
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

let compare_files ?factor ?slack ~baseline ~current () =
  match (read_json baseline, read_json current) with
  | Error msg, _ | _, Error msg -> Error msg
  | Ok b, Ok c -> Ok (compare_json ?factor ?slack ~baseline:b ~current:c ())

let render o =
  let buf = Buffer.create 512 in
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "%-6s %-28s base %10.4f  current %10.4f  limit %10.4f\n"
           (if v.v_ok then "ok" else "REGRESS")
           v.v_path v.v_base v.v_cur v.v_limit))
    o.verdicts;
  Buffer.add_string buf
    (if o.gated = 0 then "no gated (time-like) fields in common: nothing to check\n"
     else if o.passed then
       Printf.sprintf "gate passed: %d time-like fields within band\n" o.gated
     else
       Printf.sprintf "gate FAILED: %d of %d time-like fields regressed\n"
         (List.length (List.filter (fun v -> not v.v_ok) o.verdicts))
         o.gated);
  Buffer.contents buf
