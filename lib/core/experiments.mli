(** The paper's evaluation (Section 5 + Supplement S.5): sweeps over
    programs × cache configurations × technologies, and the aggregation
    behind every table and figure.

    One {!record} per use case carries everything each figure needs, so
    the expensive sweep runs once and the figures are cheap folds. *)

type record = {
  program_name : string;
  config_id : string;  (** Table 2 label, e.g. ["k17"] *)
  config : Ucp_cache.Config.t;
  tech : Ucp_energy.Tech.t;
  policy : Ucp_policy.id;  (** replacement policy of the case *)
  original : Pipeline.measurement;
  optimized : Pipeline.measurement;
  prefetches : int;
  rejected : int;
  audit : Pipeline.audit;  (** certification verdict (see {!Ucp_verify}) *)
}

val sweep :
  ?programs:(string * Ucp_isa.Program.t) list ->
  ?configs:(string * Ucp_cache.Config.t) list ->
  ?techs:Ucp_energy.Tech.t list ->
  ?policies:Ucp_policy.id list ->
  ?refine:Ucp_refine.Mode.t ->
  ?progress:(string -> unit) ->
  unit ->
  record list
(** Run every use case sequentially (defaults: all 37 programs × 36
    configurations × 2 technologies = 2664 cases under LRU, the paper's
    full setup; [?policies] (default [[Lru]]) multiplies the grid by a
    replacement-policy axis).  [?refine] (default [Nc] — sweeps refine
    by default; the base record fields stay unrefined so record streams
    remain comparable across modes) runs the exact classification
    refinement per case.  {!Parallel.sweep} runs the same grid on
    a domain pool and produces record-for-record identical results. *)

(** {2 The use-case grid}

    Shared between this sequential driver and {!Parallel}: the grid is
    materialized in deterministic program-major order (programs, then
    configurations, then technologies, then policies — the record
    order [sweep] returns; with the default LRU-only axis this is
    exactly the seed's order), and both engines evaluate a case
    through the same {!run_case}. *)

type case = {
  case_program_name : string;
  case_program : Ucp_isa.Program.t;
  case_config_id : string;
  case_config : Ucp_cache.Config.t;
  case_tech : Ucp_energy.Tech.t;
  case_policy : Ucp_policy.id;
}

val cases :
  ?policies:Ucp_policy.id list ->
  programs:(string * Ucp_isa.Program.t) list ->
  configs:(string * Ucp_cache.Config.t) list ->
  techs:Ucp_energy.Tech.t list ->
  unit ->
  case array
(** The full cross product, in sweep order ([?policies] default
    [[Lru]], the innermost axis). *)

val case_id : case -> string
(** Stable identity of a use case across runs and processes:
    ["<program>:<config id>:<tech label>:<policy>"], e.g.
    ["fft1:k14:45nm:lru"].  Checkpoint journals and fault injection are
    keyed on it. *)

val model_table :
  (string * Ucp_cache.Config.t) list ->
  Ucp_energy.Tech.t list ->
  (Ucp_cache.Config.t * Ucp_energy.Tech.t, Ucp_energy.Cacti.t) Hashtbl.t
(** One CACTI model per (configuration, technology) pair — computed up
    front so a 2664-case sweep derives 72 models instead of 2664, and
    so worker domains only ever read the table. *)

(** A sweep-wide memo of original-program analyses, keyed
    ["<program>:<config id>:<policy>"].  The cache-aware fixpoint never
    reads the CACTI timing model, so the technology axis of the grid
    shares one analysis per key.  Thread-safe (mutex-guarded lookups;
    misses compute outside the lock, racing workers may duplicate but
    never block). *)
module Analysis_memo : sig
  type t

  val create : unit -> t
end

val eval_case :
  ?deadline:Ucp_util.Deadline.t ->
  ?timed:Pipeline.timings ->
  ?memo:Analysis_memo.t ->
  ?audit:bool ->
  ?corrupt_cert:bool ->
  ?refine:Ucp_refine.Mode.t ->
  ?corrupt_refine:bool ->
  model:Ucp_energy.Cacti.t ->
  case ->
  record * Pipeline.audit_input option
(** Evaluate one use case without discharging its audit: the record
    carries [Not_audited] and, under [?audit:true], the deferred
    obligation is returned for {!Pipeline.finish_audit} — the parallel
    sweep schedules it as its own work item.  [?memo] shares
    original-program analyses across the technology axis. *)

val run_case :
  ?deadline:Ucp_util.Deadline.t ->
  ?timed:Pipeline.timings ->
  ?memo:Analysis_memo.t ->
  ?audit:bool ->
  ?corrupt_cert:bool ->
  ?refine:Ucp_refine.Mode.t ->
  ?corrupt_refine:bool ->
  model:Ucp_energy.Cacti.t ->
  case ->
  record
(** Evaluate one use case ([model] must be the case's entry from
    {!model_table}).  [?deadline] bounds the analysis/optimizer stages
    (see {!Pipeline.compare_optimized}).  [?audit] runs the
    {!Ucp_verify} certification on the case; [?corrupt_cert] injects
    the certificate corruption the audit must catch; [?refine] (default
    [Off]) runs the exact classification refinement on both sides and
    [?corrupt_refine] injects the [corrupt-refine] fault (all default
    false/[Off]).  {!eval_case} followed by {!Pipeline.finish_audit}. *)

val check_invariants : record -> (unit, string) result
(** Runtime guard over the paper's soundness claims: Theorem 1
    ([optimized.tau <= original.tau]) and, per measurement, the
    simulated run staying under its analysis bounds ([acet <= tau],
    [demand_misses <= wcet_miss_bound]) — plus, when the measurement
    carries a refinement summary, the refined bounds sandwiched the
    same way ([acet <= s_tau <= tau],
    [demand_misses <= s_miss_bound], and [demand_misses] under the
    quantitative bound when one exists).  [Error msg] describes every
    violated invariant; the parallel sweep turns it into an
    [Invariant_violation] outcome instead of a record. *)

val ratio : int -> int -> float option
(** [ratio num den] is [None] when [den = 0] — degenerate cases are
    dropped from the figure averages and counted, not silently folded
    in as a neutral 1.0. *)

val fratio : float -> float -> float option
(** Float variant of {!ratio}. *)

val default_configs : (string * Ucp_cache.Config.t) list
(** Table 2. *)

val quick_configs : (string * Ucp_cache.Config.t) list
(** A 12-configuration subset (both block sizes, associativities 2 and
    4, capacities 256/1024/4096) for fast runs. *)

(** Per-cache-size averages of the improvement ratios (Figure 3 plots
    [1 - optimized/original] for ACET and energy; WCET shown alongside).
    [degenerate] counts zero-denominator ratios that had to be dropped
    from the averages (they are no longer silently treated as 1.0). *)
type size_row = {
  capacity : int;
  acet_improvement : float;
  energy_improvement : float;
  wcet_improvement : float;
  cases : int;
  degenerate : int;
}

val figure3 : record list -> size_row list

(** Figure 4: average miss rates before and after, per cache size. *)
type miss_row = {
  capacity : int;
  miss_before : float;
  miss_after : float;
  cases : int;
}

val figure4 : record list -> miss_row list

(** Figure 5: the optimized program running on a cache of half / quarter
    capacity versus the original on the full capacity.  Rows are joined
    across the sweep's records (the smaller configuration must be part
    of the sweep). *)
type downsize_row = {
  capacity : int;  (** capacity of the original's cache *)
  factor : int;  (** 2 or 4 *)
  acet_ratio : float;  (** optimized@c/factor vs original@c *)
  energy_ratio : float;
  wcet_ratio : float;
  cases : int;
  degenerate : int;  (** zero-denominator ratios dropped from the means *)
}

val figure5 : record list -> downsize_row list

(** Figure 7: per-use-case WCET ratio at 32 nm. *)
type wcet_scatter = {
  ratios : (string * string * float) list;  (** program, config, ratio *)
  summary : Ucp_util.Stats.summary;
  all_non_increasing : bool;  (** Theorem 1 across the sweep *)
  degenerate : int;  (** 32nm cases with a zero original tau, excluded *)
}

val figure7 : record list -> wcet_scatter

(** Figure 8: average executed-instruction ratio per cache size. *)
type exec_row = {
  capacity : int;
  exec_ratio : float;
  max_ratio : float;
  cases : int;
  degenerate : int;  (** zero-denominator ratios dropped from the means *)
}

val figure8 : record list -> exec_row list

(** Per-policy classification-precision counters: static instruction
    slots of the expanded graphs classified always-hit / always-miss /
    not-classified, summed over a policy's records, for the original
    and the optimized program. *)
type policy_row = {
  row_policy : Ucp_policy.id;
  row_cases : int;
  row_prefetches : int;  (** accepted insertions summed over the cases *)
  row_ah : int;  (** original-program slots classified always-hit *)
  row_am : int;
  row_nc : int;
  row_ah_opt : int;  (** optimized-program counterparts *)
  row_am_opt : int;
  row_nc_opt : int;
}

val policy_precision : record list -> policy_row list
(** One row per policy present in the records, in {!Ucp_policy.all}
    order. *)

(** Per-policy refinement-precision counters, aggregated over the
    original side of every record that carries a refine summary:
    not-classified slots before/after the exact refinement, the
    reclassification split, the unrefined vs refined WCET-bound sums
    (their ratio is the reclaimed-slack fraction), how many cases
    additionally carry a quantitative non-LRU miss bound, and how many
    explorations hit the state budget. *)
type refine_row = {
  rr_policy : Ucp_policy.id;
  rr_cases : int;  (** records whose original side carries a summary *)
  rr_nc_before : int;
  rr_nc_after : int;
  rr_ah_gained : int;
  rr_am_gained : int;
  rr_tau : int;  (** sum of unrefined original taus over [rr_cases] *)
  rr_tau_refined : int;  (** sum of refined original taus *)
  rr_quant_cases : int;  (** cases carrying a quantitative miss bound *)
  rr_budget_hits : int;  (** cases where the exploration hit its budget *)
}

val refine_precision : record list -> refine_row list
(** One row per policy with refined records, in {!Ucp_policy.all}
    order; an empty list when the sweep ran with refinement off. *)

val table1 : unit -> (string * string * int) list
(** Program id, name, static slots (Table 1 + size info). *)

val table2 : unit -> (string * Ucp_cache.Config.t) list
(** Table 2 verbatim. *)
