module Config = Ucp_cache.Config
module Tech = Ucp_energy.Tech

(* v3: the grid fingerprint covers the refine mode and measurements
   carry the (additive) refine_* fields *)
let format_version = 3

(* ------------------------------------------------------------------ *)
(* minimal JSON: just enough to round-trip our own journal lines *)

type json =
  | Null
  | Bool of bool
  | Num of string  (* raw token: keeps ints exact and floats lossless *)
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Malformed of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Malformed (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
        | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
        | Some 'u' ->
          if !pos + 4 >= n then fail "truncated \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          let code =
            match int_of_string_opt ("0x" ^ hex) with
            | Some c -> c
            | None -> fail "bad \\u escape"
          in
          (* our writer only \u-escapes ASCII control characters *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else Buffer.add_char buf '?';
          pos := !pos + 5;
          go ()
        | _ -> fail "bad escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    Num (String.sub s start (!pos - start))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected , or } in object"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); Arr [] end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ] in array"
        in
        elements []
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* [None] when the key is absent: journals written before the audit
   fields existed stay readable (format_version is unchanged — the
   fields are additive) *)
let opt_field obj key =
  match obj with
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> raise (Malformed "expected an object")

let field obj key =
  match obj with
  | Obj kvs -> (
    match List.assoc_opt key kvs with
    | Some v -> v
    | None -> raise (Malformed ("missing field " ^ key)))
  | _ -> raise (Malformed "expected an object")

let to_int = function
  | Num raw -> (
    match int_of_string_opt raw with
    | Some i -> i
    | None -> raise (Malformed ("not an integer: " ^ raw)))
  | _ -> raise (Malformed "expected a number")

let to_float = function
  | Num raw -> (
    match float_of_string_opt raw with
    | Some f -> f
    | None -> raise (Malformed ("not a number: " ^ raw)))
  | _ -> raise (Malformed "expected a number")

let to_string = function
  | Str s -> s
  | _ -> raise (Malformed "expected a string")

(* ------------------------------------------------------------------ *)
(* journal lines *)

(* %.17g round-trips any finite double exactly *)
let flt f = Printf.sprintf "%.17g" f

(* the refine fields sit flat and last inside the measurement object,
   so a refined record stream differs from an unrefined one only by a
   strippable suffix per measurement (the ci byte-identity check
   depends on this) *)
let refine_json (s : Ucp_refine.Explore.summary option) =
  match s with
  | None -> ""
  | Some s ->
    let open Ucp_refine.Explore in
    Printf.sprintf
      {|,"refine_mode":%s,"refine_nc_before":%d,"refine_nc":%d,"refine_ah_gained":%d,"refine_am_gained":%d,"refine_tau":%d,"refine_miss_bound":%d,"refine_quant":%s,"refine_states":%d,"refine_budget_hit":%b,"refine_budget_exhausted":%d,"refine_digest":%s|}
      (Report.json_string (Ucp_refine.Mode.to_string s.s_mode))
      s.s_nc_before s.s_nc_after s.s_ah_gained s.s_am_gained s.s_tau
      s.s_miss_bound
      (match s.s_quant with None -> "null" | Some q -> string_of_int q)
      s.s_states s.s_budget_hit s.s_budget_exhausted
      (Report.json_string s.s_digest)

let refine_of_json j : Ucp_refine.Explore.summary option =
  match opt_field j "refine_mode" with
  | None -> None
  | Some mode ->
    let s_mode =
      match Ucp_refine.Mode.of_string (to_string mode) with
      | Ok m -> m
      | Error msg -> raise (Malformed msg)
    in
    Some
      {
        Ucp_refine.Explore.s_mode;
        s_nc_before = to_int (field j "refine_nc_before");
        s_nc_after = to_int (field j "refine_nc");
        s_ah_gained = to_int (field j "refine_ah_gained");
        s_am_gained = to_int (field j "refine_am_gained");
        s_tau = to_int (field j "refine_tau");
        s_miss_bound = to_int (field j "refine_miss_bound");
        s_quant =
          (match field j "refine_quant" with Null -> None | v -> Some (to_int v));
        s_states = to_int (field j "refine_states");
        s_budget_hit =
          (match field j "refine_budget_hit" with
          | Bool b -> b
          | _ -> raise (Malformed "refine_budget_hit: expected a bool"));
        (* additive: absent in journals written before the demotion
           count existed *)
        s_budget_exhausted =
          (match opt_field j "refine_budget_exhausted" with
          | Some v -> to_int v
          | None -> 0);
        s_digest = to_string (field j "refine_digest");
      }

let measurement_json (m : Pipeline.measurement) =
  Printf.sprintf
    {|{"tau":%d,"acet":%d,"energy_pj":%s,"miss_rate":%s,"executed":%d,"demand_misses":%d,"wcet_miss_bound":%d,"ah":%d,"am":%d,"nc":%d%s}|}
    m.Pipeline.tau m.Pipeline.acet (flt m.Pipeline.energy_pj)
    (flt m.Pipeline.miss_rate) m.Pipeline.executed m.Pipeline.demand_misses
    m.Pipeline.wcet_miss_bound m.Pipeline.ah m.Pipeline.am m.Pipeline.nc
    (refine_json m.Pipeline.refine)

let measurement_of_json j : Pipeline.measurement =
  {
    Pipeline.tau = to_int (field j "tau");
    acet = to_int (field j "acet");
    energy_pj = to_float (field j "energy_pj");
    miss_rate = to_float (field j "miss_rate");
    executed = to_int (field j "executed");
    demand_misses = to_int (field j "demand_misses");
    wcet_miss_bound = to_int (field j "wcet_miss_bound");
    ah = to_int (field j "ah");
    am = to_int (field j "am");
    nc = to_int (field j "nc");
    refine = refine_of_json j;
  }

let audit_json (a : Pipeline.audit) =
  match a with
  | Pipeline.Not_audited -> ""
  | Pipeline.Audited { checks; seconds } ->
    Printf.sprintf {|,"audit_checks":%d,"audit_s":%s|} checks (flt seconds)
  | Pipeline.Audit_skipped reason ->
    Printf.sprintf {|,"audit_skipped":%s|} (Report.json_string reason)

let audit_of_json j : Pipeline.audit =
  match opt_field j "audit_checks" with
  | Some checks ->
    let seconds =
      match opt_field j "audit_s" with Some s -> to_float s | None -> 0.0
    in
    Pipeline.Audited { checks = to_int checks; seconds }
  | None -> (
    match opt_field j "audit_skipped" with
    | Some reason -> Pipeline.Audit_skipped (to_string reason)
    | None -> Pipeline.Not_audited)

let record_line ~id (r : Experiments.record) =
  Printf.sprintf
    {|{"case":%s,"program":%s,"config_id":%s,"assoc":%d,"block_bytes":%d,"capacity":%d,"tech":%s,"policy":%s,"prefetches":%d,"rejected":%d%s%s,"original":%s,"optimized":%s}|}
    (Report.json_string id)
    (Report.json_string r.Experiments.program_name)
    (Report.json_string r.Experiments.config_id)
    r.Experiments.config.Config.assoc r.Experiments.config.Config.block_bytes
    r.Experiments.config.Config.capacity
    (Report.json_string r.Experiments.tech.Tech.label)
    (Report.json_string (Ucp_policy.to_string r.Experiments.policy))
    r.Experiments.prefetches r.Experiments.rejected
    (* additive generator provenance, recomputed from the program name
       (so a resume rewrite reproduces it byte for byte) *)
    (Report.gen_json r.Experiments.program_name)
    (audit_json r.Experiments.audit)
    (measurement_json r.Experiments.original)
    (measurement_json r.Experiments.optimized)

let tech_of_label label =
  match List.find_opt (fun t -> t.Tech.label = label) Tech.all with
  | Some t -> t
  | None -> raise (Malformed ("unknown technology " ^ label))

let policy_of_name name =
  match Ucp_policy.of_string name with
  | Ok p -> p
  | Error msg -> raise (Malformed msg)

let parse_line line =
  match parse line with
  | exception Malformed _ -> None
  | j -> (
    try
      let id = to_string (field j "case") in
      let record =
        {
          Experiments.program_name = to_string (field j "program");
          config_id = to_string (field j "config_id");
          config =
            Config.make
              ~assoc:(to_int (field j "assoc"))
              ~block_bytes:(to_int (field j "block_bytes"))
              ~capacity:(to_int (field j "capacity"));
          tech = tech_of_label (to_string (field j "tech"));
          policy = policy_of_name (to_string (field j "policy"));
          original = measurement_of_json (field j "original");
          optimized = measurement_of_json (field j "optimized");
          prefetches = to_int (field j "prefetches");
          rejected = to_int (field j "rejected");
          audit = audit_of_json j;
        }
      in
      Some (id, record)
    with Malformed _ | Invalid_argument _ -> None)

(* ------------------------------------------------------------------ *)
(* grid fingerprint *)

let fingerprint ?(policies = [ Ucp_policy.Lru ])
    ?(refine = Ucp_refine.Mode.Off) ~programs ~configs ~techs () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "ucp-checkpoint-v%d\n" format_version);
  List.iter
    (fun (name, p) ->
      Buffer.add_string buf
        (Printf.sprintf "p %s %d\n" name (Ucp_isa.Program.total_slots p)))
    programs;
  List.iter
    (fun (id, (c : Config.t)) ->
      Buffer.add_string buf
        (Printf.sprintf "k %s %d %d %d\n" id c.Config.assoc c.Config.block_bytes
           c.Config.capacity))
    configs;
  List.iter
    (fun (t : Tech.t) -> Buffer.add_string buf (Printf.sprintf "t %s\n" t.Tech.label))
    techs;
  List.iter
    (fun p ->
      Buffer.add_string buf (Printf.sprintf "y %s\n" (Ucp_policy.to_string p)))
    policies;
  Buffer.add_string buf
    (Printf.sprintf "r %s\n" (Ucp_refine.Mode.to_string refine));
  Digest.to_hex (Digest.string (Buffer.contents buf))

let header_line fingerprint =
  Printf.sprintf {|{"ucp_checkpoint":%d,"fingerprint":%s}|} format_version
    (Report.json_string fingerprint)

(* ------------------------------------------------------------------ *)
(* journal lifecycle *)

type t = {
  oc : out_channel;
  lock : Mutex.t;
  loaded : (string, Experiments.record) Hashtbl.t;
}

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let replay path ~fingerprint tbl =
  match read_lines path with
  | [] | (exception Sys_error _) -> ()
  | header :: rest ->
    (match parse header with
    | exception Malformed _ ->
      failwith (Printf.sprintf "Checkpoint.start: %s: unreadable journal header" path)
    | j ->
      let v = try to_int (field j "ucp_checkpoint") with Malformed _ -> -1 in
      if v <> format_version then
        failwith
          (Printf.sprintf "Checkpoint.start: %s: unsupported journal version" path);
      let fp = try to_string (field j "fingerprint") with Malformed _ -> "" in
      if fp <> fingerprint then
        failwith
          (Printf.sprintf
             "Checkpoint.start: %s: sweep fingerprint mismatch (journal %s, grid %s) \
              — the checkpoint belongs to a different suite/config/tech grid"
             path fp fingerprint));
    let n = List.length rest in
    List.iteri
      (fun i line ->
        match parse_line line with
        | Some (id, record) -> Hashtbl.replace tbl id record
        | None ->
          (* a torn final line is the expected crash artifact; anything
             malformed earlier means real corruption *)
          if i < n - 1 then
            failwith
              (Printf.sprintf "Checkpoint.start: %s: corrupt journal line %d" path
                 (i + 2)))
      rest

(* durability: [flush] alone hands the bytes to the kernel page cache,
   where a power cut (as opposed to a mere process crash) can still eat
   them — every acknowledged journal write is fsynced to the device.
   The counter exists so a test can pin the sync-before-ack ordering. *)
let synced = Atomic.make 0

let synced_writes () = Atomic.get synced

let fsync_out oc =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc);
  Atomic.incr synced

(* a rename is only durable once the parent directory's entry is on
   disk; without this fsync the file can vanish across a power cut even
   though the rename "succeeded" *)
let fsync_dir path =
  let dir = Filename.dirname path in
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        (* some filesystems refuse fsync on a directory fd; losing the
           belt-and-braces sync there is not an error *)
        try
          Unix.fsync fd;
          Atomic.incr synced
        with Unix.Unix_error _ -> ())

let start ~path ~fingerprint ~resume =
  let loaded = Hashtbl.create 97 in
  if resume && Sys.file_exists path then begin
    replay path ~fingerprint loaded;
    (* rewrite the journal from what survived replay: this drops a torn
       trailing line instead of appending after it *)
    let oc = open_out path in
    output_string oc (header_line fingerprint);
    output_char oc '\n';
    Hashtbl.iter
      (fun id record ->
        output_string oc (record_line ~id record);
        output_char oc '\n')
      loaded;
    fsync_out oc;
    { oc; lock = Mutex.create (); loaded }
  end
  else begin
    let oc = open_out path in
    output_string oc (header_line fingerprint);
    output_char oc '\n';
    fsync_out oc;
    { oc; lock = Mutex.create (); loaded }
  end

let completed t = t.loaded

let record t ~id record =
  let line = record_line ~id record in
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      output_string t.oc line;
      output_char t.oc '\n';
      fsync_out t.oc)

let close t = close_out_noerr t.oc

let write_atomic ~path content =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out tmp in
  (match
     output_string oc content;
     fsync_out oc
   with
  | () -> close_out oc
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  Sys.rename tmp path;
  fsync_dir path
