(** Multicore sweep engine: a fixed-size [Domain] worker pool with a
    chunked work queue (mutex + condition variable, standard library
    only) evaluating the paper's use-case grid in parallel.

    Every use case is an independent (program, configuration,
    technology, replacement policy) tuple, so the sweep is
    embarrassingly parallel; the
    engine writes each result at its input index and therefore returns
    records in deterministic input order — record-for-record identical
    to the sequential {!Experiments.sweep} — regardless of worker
    scheduling.

    The sweep is fault-tolerant: a use case that raises, overruns its
    deadline or produces an invariant-violating record is demoted to a
    structured {!Outcome.t} on that case alone while the remaining
    cases run to completion, and an optional JSONL checkpoint journal
    makes an interrupted sweep resumable (see {!Checkpoint}). *)

val default_jobs : unit -> int
(** Worker count: [UCP_JOBS] if set and non-empty (a positive integer,
    anything else raises [Invalid_argument]), otherwise
    [Domain.recommended_domain_count ()]. *)

(** {2 Worker pool}

    A small general-purpose pool, exposed for tests and future callers
    that want to parallelize something other than the sweep. *)

type pool

exception Worker_died of string
(** A worker domain terminated outside task isolation (e.g. a
    {!Fault.Killed_worker} hook, or a crash in the pool machinery
    itself).  Raised by {!wait} on a non-respawning pool, or when every
    worker has died with tasks still queued — instead of hanging on a
    queue that can never drain. *)

val create : ?respawn:bool -> jobs:int -> unit -> pool
(** Spawn [jobs] worker domains blocked on the queue.  With
    [~respawn:true] (default [false]) a worker domain that dies outside
    task isolation is replaced by a fresh domain (the in-flight task is
    lost and accounted for, {!restarts} and the
    [worker_restarts_total] metric are bumped); without it the death
    poisons the pool and {!wait} raises {!Worker_died}.
    @raise Invalid_argument if [jobs < 1]. *)

val restarts : pool -> int
(** Number of worker domains replaced so far (0 unless [~respawn]). *)

val submit : ?weight:int -> pool -> (unit -> unit) -> unit
(** Enqueue a task; returns immediately.  [?weight] (default 1) is the
    number of work items the task stands for, counted in that worker's
    {!Telemetry.worker_stat.cases}.
    @raise Invalid_argument on a pool that was shut down. *)

val worker_stats : pool -> Telemetry.worker_stat array
(** Snapshot of every worker's telemetry; stats are committed when a
    task finishes, so call after {!wait} for complete numbers. *)

val wait : pool -> unit
(** Block until every submitted task has finished.  If any task raised,
    re-raises the first such exception with the backtrace captured at
    the original raise site (the remaining tasks still run).  Never
    hangs on worker death: a died worker on a non-respawning pool (or a
    pool whose every worker died) surfaces as {!Worker_died}. *)

val shutdown : pool -> unit
(** Reject further submissions, let queued tasks drain, and join the
    worker domains.  Idempotent. *)

val map :
  ?jobs:int ->
  ?chunk:int ->
  ?progress:(done_:int -> total:int -> unit) ->
  ?telemetry:(Telemetry.worker_stat array -> unit) ->
  ('a -> 'b) ->
  'a array ->
  'b array
(** [map f items] applies [f] to every element on a fresh pool of
    [?jobs] (default {!default_jobs}) workers and returns the results
    in input order.  Work is handed out in contiguous chunks of
    [?chunk] elements (default: enough for ~4 chunks per worker).
    [?progress] is invoked after {e each finished element} with the
    number of elements completed so far; calls are serialized under a
    dedicated lock and [done_] is strictly increasing, but they arrive
    on worker domains — callbacks must not assume the main domain.  A
    raising progress callback does not void the results: the first
    exception disables further callbacks (with a {!Ucp_obs.Log.warn})
    and the map completes normally.  [?telemetry] receives the final
    per-worker {!Telemetry.worker_stat} snapshot once every task has drained
    (an empty array for an empty input).  If [f] raises, the first
    exception is re-raised after the pool drains, with its original
    backtrace. *)

val try_map :
  ?jobs:int ->
  ?chunk:int ->
  ?progress:(done_:int -> total:int -> unit) ->
  ?telemetry:(Telemetry.worker_stat array -> unit) ->
  ('a -> 'b) ->
  'a array ->
  'b Outcome.t array
(** Like {!map}, but isolates failures per element instead of aborting
    the whole map: an element where [f] raises yields
    [Outcome.Failed] (with exception text and backtrace),
    [Ucp_util.Deadline.Deadline_exceeded] yields [Outcome.Timed_out],
    and {!Outcome.Invariant} yields [Outcome.Invariant_violation];
    every other element still yields [Outcome.Ok]. *)

(** {2 The parallel sweep} *)

type sweep = {
  records : Experiments.record list;
      (** successfully evaluated records in input order; on a
          fault-free grid, byte-identical to {!Experiments.sweep} *)
  results : (string * Experiments.record Outcome.t) list;
      (** one outcome per use case in input order, keyed by
          {!Experiments.case_id} *)
  failures : (string * Experiments.record Outcome.t) list;
      (** the non-[Ok] subset of [results], input order *)
  resumed : int;
      (** cases replayed from the checkpoint journal instead of being
          re-evaluated (0 unless resuming) *)
  wall_s : float;  (** elapsed wall-clock time of the whole sweep *)
  timings : Pipeline.timings;
      (** per-stage wall-clock time summed over all workers; stages
          running concurrently each count their own elapsed time, so
          under [jobs = n] the sum exceeds [wall_s] up to a factor of
          [n] *)
  jobs : int;  (** worker count actually used *)
  cases : int;  (** number of use cases in the grid *)
  workers : Telemetry.worker_stat array;
      (** per-worker busy time and case counts ([cases] there counts
          evaluated cases only — resumed cases ran no task); empty when
          every case was replayed from the journal *)
  worker_restarts : int;
      (** worker domains that died mid-sweep and were replaced (the
          sweep pool runs with [~respawn:true]); cases lost with a dead
          domain surface in [failures] as [Outcome.Failed] *)
}

val sweep :
  ?programs:(string * Ucp_isa.Program.t) list ->
  ?configs:(string * Ucp_cache.Config.t) list ->
  ?techs:Ucp_energy.Tech.t list ->
  ?policies:Ucp_policy.id list ->
  ?audit:Ucp_verify.mode ->
  ?refine:Ucp_refine.Mode.t ->
  ?jobs:int ->
  ?chunk:int ->
  ?progress:(done_:int -> total:int -> unit) ->
  ?heartbeat:float ->
  ?timeout:float ->
  ?checkpoint:string ->
  ?resume:bool ->
  unit ->
  sweep
(** Evaluate the use-case grid (defaults: the paper's full 2664-case
    setup under LRU; [?policies] (default [[Lru]]) multiplies the grid
    by a replacement-policy axis and is part of the checkpoint
    fingerprint, so resuming an LRU-only journal against a
    multi-policy grid is rejected) on a worker pool.  The CACTI model is computed once per
    (configuration, technology) pair up front; a sweep-wide
    {!Experiments.Analysis_memo} shares each original-program analysis
    across the technology axis (the fixpoint never reads the timing
    model), and within each use case it is further shared between the
    optimizer and the original measurement (see
    {!Pipeline.compare_optimized}).

    Fault tolerance: each case is evaluated in isolation and its
    failure — an exception, a blown [?timeout] (a per-case cooperative
    deadline in seconds, checked inside the ILP/simplex pivots and the
    analysis/optimizer fixpoints), or a record that fails
    {!Experiments.check_invariants} (e.g. Theorem 1: the optimized
    WCET bound must not exceed the original) — is recorded in
    [results]/[failures] while every other case still completes.

    Certification: [?audit] (default [Off]) runs the {!Ucp_verify}
    audit on every case ([Full]) or a deterministic 1-in-N sample keyed
    by case id ([Sample N], stable across resume).  Each audit runs as
    its own pool work item after its case's evaluation (with a fresh
    per-case deadline — queue wait is not execution); the record is
    finalized (fault hooks, invariant guard, checkpoint journal) only
    once the verdict is in.  An audited case whose certificate fails
    any obligation is demoted to [Invariant_violation] with the
    obligation named; audited records carry their verdict and cost in
    {!Experiments.record.audit} and the audit wall-clock lands in
    [timings].  A [Fault.Corrupt_cert] hook arms the
    certificate-corruption path on its case, which must then fail its
    audit.

    Refinement: [?refine] (default [Nc] — parallel sweeps refine by
    default, matching {!Experiments.sweep}) runs the focused exact
    classification refinement per case ({!Ucp_refine.Explore}); the
    mode is part of the checkpoint fingerprint, so resuming a journal
    swept under a different refine mode is rejected.  Audited refined
    cases carry the two extra refine obligations, and a
    [Fault.Corrupt_refine] hook (one-shot) arms the unsound-
    reclassification path on its case, which must then fail its
    audit.

    Checkpointing: with [?checkpoint:path] every sound finished record
    is appended to a JSONL journal and flushed; with [resume:true] a
    journal left by an interrupted sweep over the {e same} grid
    (enforced by fingerprint) is replayed first and the journaled
    cases are skipped, so crash + resume produces the same records as
    an uninterrupted run.

    Liveness: [?heartbeat:secs] spawns a watcher domain that writes a
    [\[heartbeat\] done/total | rate | elapsed | eta] line to stderr
    every [secs] seconds (through the {!Ucp_obs.Log} sink, so it never
    interleaves mid-line with log output), making a hung worker visible
    long before a per-case deadline fires.

    Observability: when {!Ucp_obs.Trace} is recording, every case runs
    inside a ["case"] span carrying its id, and when {!Ucp_obs.Metrics}
    is enabled each case feeds the [case_duration_seconds] histogram
    and the [gc_*_total] allocation/collection counters.
    @raise Invalid_argument if [?timeout] or [?heartbeat] is not
    positive;
    @raise Failure on a checkpoint fingerprint mismatch. *)
