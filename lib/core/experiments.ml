module Config = Ucp_cache.Config
module Tech = Ucp_energy.Tech
module Stats = Ucp_util.Stats

type record = {
  program_name : string;
  config_id : string;
  config : Config.t;
  tech : Tech.t;
  policy : Ucp_policy.id;
  original : Pipeline.measurement;
  optimized : Pipeline.measurement;
  prefetches : int;
  rejected : int;
  audit : Pipeline.audit;
}

let default_configs = Config.paper_configs

let quick_configs =
  List.filter
    (fun (_, c) ->
      List.mem c.Config.capacity [ 256; 1024; 4096 ] && c.Config.assoc >= 2)
    Config.paper_configs

type case = {
  case_program_name : string;
  case_program : Ucp_isa.Program.t;
  case_config_id : string;
  case_config : Config.t;
  case_tech : Tech.t;
  case_policy : Ucp_policy.id;
}

(* The stable identity of a use case across runs: suite name, Table-2
   config id, technology label and replacement policy.  Checkpoint
   journals and fault injection key on this string. *)
let case_id c =
  Printf.sprintf "%s:%s:%s:%s" c.case_program_name c.case_config_id
    c.case_tech.Tech.label
    (Ucp_policy.to_string c.case_policy)

(* The policy is the innermost axis, so an LRU-only grid enumerates in
   exactly the seed's order. *)
let cases ?(policies = [ Ucp_policy.Lru ]) ~programs ~configs ~techs () =
  Array.of_list
    (List.concat_map
       (fun (case_program_name, case_program) ->
         List.concat_map
           (fun (case_config_id, case_config) ->
             List.concat_map
               (fun case_tech ->
                 List.map
                   (fun case_policy ->
                     {
                       case_program_name;
                       case_program;
                       case_config_id;
                       case_config;
                       case_tech;
                       case_policy;
                     })
                   policies)
               techs)
           configs)
       programs)

let model_table configs techs =
  let tbl = Hashtbl.create 97 in
  List.iter
    (fun (_, config) ->
      List.iter
        (fun tech ->
          if not (Hashtbl.mem tbl (config, tech)) then
            Hashtbl.add tbl (config, tech) (Pipeline.model config tech))
        techs)
    configs;
  tbl

(* The cache-aware analysis of an *original* program depends only on
   (program, configuration, policy) — never on the CACTI timing model —
   so the two technology nodes of the grid share one fixpoint.  The
   memo is a plain mutex-guarded table: a lookup miss computes outside
   the lock (two workers may race to the same key and duplicate one
   fixpoint, but never serialize multi-second analyses behind a
   lock). *)
module Analysis_memo = struct
  type t = {
    mutex : Mutex.t;
    table : (string, Ucp_wcet.Analysis.t) Hashtbl.t;
  }

  let create () = { mutex = Mutex.create (); table = Hashtbl.create 97 }

  let key c =
    Printf.sprintf "%s:%s:%s" c.case_program_name c.case_config_id
      (Ucp_policy.to_string c.case_policy)

  let find memo k =
    Mutex.lock memo.mutex;
    let r = Hashtbl.find_opt memo.table k in
    Mutex.unlock memo.mutex;
    r

  let add memo k a =
    Mutex.lock memo.mutex;
    if not (Hashtbl.mem memo.table k) then Hashtbl.add memo.table k a;
    Mutex.unlock memo.mutex
end

let memoized_analysis ?deadline ?timed memo c =
  let k = Analysis_memo.key c in
  match Analysis_memo.find memo k with
  | Some a -> a
  | None ->
    let t0 = Unix.gettimeofday () in
    let a =
      Ucp_obs.Trace.with_span ~name:"analysis" (fun () ->
          Ucp_wcet.Wcet.analyze ?deadline ~with_may:true ~policy:c.case_policy
            c.case_program c.case_config)
    in
    Option.iter
      (fun tm ->
        tm.Pipeline.analysis_s <-
          tm.Pipeline.analysis_s +. (Unix.gettimeofday () -. t0))
      timed;
    Analysis_memo.add memo k a;
    a

let record_of c (cmp : Pipeline.comparison) =
  {
    program_name = c.case_program_name;
    config_id = c.case_config_id;
    config = c.case_config;
    tech = c.case_tech;
    policy = c.case_policy;
    original = cmp.Pipeline.original;
    optimized = cmp.Pipeline.optimized;
    prefetches = cmp.Pipeline.prefetches;
    rejected = cmp.Pipeline.rejected;
    audit = cmp.Pipeline.audit;
  }

let eval_case ?deadline ?timed ?memo ?audit ?corrupt_cert ?refine
    ?corrupt_refine ~model c =
  let analysis0 =
    Option.map (fun memo -> memoized_analysis ?deadline ?timed memo c) memo
  in
  let cmp, obligation =
    Pipeline.prepare ?deadline ~model ?timed ~policy:c.case_policy ?analysis0
      ?audit ?corrupt_cert ?refine ?corrupt_refine c.case_program c.case_config
      c.case_tech
  in
  (record_of c cmp, obligation)

let run_case ?deadline ?timed ?memo ?audit ?corrupt_cert ?refine ?corrupt_refine
    ~model c =
  let r, obligation =
    eval_case ?deadline ?timed ?memo ?audit ?corrupt_cert ?refine
      ?corrupt_refine ~model c
  in
  match obligation with
  | None -> r
  | Some input -> { r with audit = Pipeline.finish_audit ?deadline ?timed input }

(* Defense in depth for the paper's central claims (Theorem 1,
   Supplement S.2): cross-check each finished record against the
   invariants the analysis promises.  A violation means a bug somewhere
   in the pipeline (or an injected fault) — the sweep demotes the
   record to a structured [Invariant_violation] instead of silently
   reporting unsound numbers. *)
let check_invariants r =
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  if r.optimized.Pipeline.tau > r.original.Pipeline.tau then
    add "Theorem 1 violated: optimized tau %d > original tau %d"
      r.optimized.Pipeline.tau r.original.Pipeline.tau;
  let side label (m : Pipeline.measurement) =
    if m.Pipeline.acet > m.Pipeline.tau then
      add "%s: simulated ACET %d exceeds the WCET bound %d" label m.Pipeline.acet
        m.Pipeline.tau;
    if m.Pipeline.demand_misses > m.Pipeline.wcet_miss_bound then
      add "%s: simulated demand misses %d exceed the analysis bound %d" label
        m.Pipeline.demand_misses m.Pipeline.wcet_miss_bound;
    (* refined bounds are tightenings, never relaxations: they must
       stay above the concrete execution and below the unrefined
       figures (the digest audit catches tampering deterministically;
       these clauses catch it dynamically on un-audited sweeps) *)
    match m.Pipeline.refine with
    | None -> ()
    | Some s ->
      let open Ucp_refine.Explore in
      if s.s_tau > m.Pipeline.tau then
        add "%s: refined tau %d exceeds the unrefined bound %d" label s.s_tau
          m.Pipeline.tau;
      if m.Pipeline.acet > s.s_tau then
        add "%s: simulated ACET %d exceeds the refined WCET bound %d" label
          m.Pipeline.acet s.s_tau;
      if m.Pipeline.demand_misses > s.s_miss_bound then
        add "%s: simulated demand misses %d exceed the refined bound %d" label
          m.Pipeline.demand_misses s.s_miss_bound;
      (match s.s_quant with
      | Some q when m.Pipeline.demand_misses > q ->
        add "%s: simulated demand misses %d exceed the quantitative bound %d"
          label m.Pipeline.demand_misses q
      | _ -> ())
  in
  side "original" r.original;
  side "optimized" r.optimized;
  match List.rev !problems with
  | [] -> Ok ()
  | ps -> Error (String.concat "; " ps)

let sweep ?(programs = Ucp_workloads.Suite.all) ?(configs = default_configs)
    ?(techs = Tech.all) ?policies ?(refine = Ucp_refine.Mode.Nc)
    ?(progress = fun _ -> ()) () =
  let models = model_table configs techs in
  let last = ref None in
  Array.to_list
    (Array.map
       (fun c ->
         if !last <> Some c.case_program_name then begin
           last := Some c.case_program_name;
           progress c.case_program_name
         end;
         run_case ~refine
           ~model:(Hashtbl.find models (c.case_config, c.case_tech))
           c)
       (cases ?policies ~programs ~configs ~techs ()))

let capacities records =
  List.sort_uniq compare (List.map (fun r -> r.config.Config.capacity) records)

let by_capacity records cap =
  List.filter (fun r -> r.config.Config.capacity = cap) records

(* A zero denominator makes the ratio meaningless; returning a neutral
   1.0 would silently fold the degenerate case into the averages, so
   the aggregations drop it from the mean and surface a count instead. *)
let ratio num den = if den = 0 then None else Some (float_of_int num /. float_of_int den)

let fratio num den = if den = 0.0 then None else Some (num /. den)

(* [mean_ratios f rs] averages the defined ratios and counts the
   degenerate (zero-denominator) ones it had to drop. *)
let mean_ratios f rs =
  let defined = List.filter_map f rs in
  let mean = match defined with [] -> 1.0 | xs -> Stats.mean xs in
  (mean, List.length rs - List.length defined)

type size_row = {
  capacity : int;
  acet_improvement : float;
  energy_improvement : float;
  wcet_improvement : float;
  cases : int;
  degenerate : int;
}

let figure3 records =
  List.map
    (fun capacity ->
      let rs = by_capacity records capacity in
      let improvement f =
        let m, deg = mean_ratios f rs in
        (1.0 -. m, deg)
      in
      let acet, deg_a =
        improvement (fun r -> ratio r.optimized.Pipeline.acet r.original.Pipeline.acet)
      in
      let energy, deg_e =
        improvement (fun r ->
            fratio r.optimized.Pipeline.energy_pj r.original.Pipeline.energy_pj)
      in
      let wcet, deg_w =
        improvement (fun r -> ratio r.optimized.Pipeline.tau r.original.Pipeline.tau)
      in
      {
        capacity;
        acet_improvement = acet;
        energy_improvement = energy;
        wcet_improvement = wcet;
        cases = List.length rs;
        degenerate = deg_a + deg_e + deg_w;
      })
    (capacities records)

type miss_row = {
  capacity : int;
  miss_before : float;
  miss_after : float;
  cases : int;
}

let figure4 records =
  List.map
    (fun capacity ->
      let rs = by_capacity records capacity in
      {
        capacity;
        miss_before = Stats.mean (List.map (fun r -> r.original.Pipeline.miss_rate) rs);
        miss_after = Stats.mean (List.map (fun r -> r.optimized.Pipeline.miss_rate) rs);
        cases = List.length rs;
      })
    (capacities records)

type downsize_row = {
  capacity : int;
  factor : int;
  acet_ratio : float;
  energy_ratio : float;
  wcet_ratio : float;
  cases : int;
  degenerate : int;
}

(* Join each record against the sweep record of the same program,
   technology, associativity and block size whose capacity is
   [capacity / factor]: the optimized program built *for the smaller
   cache* runs there, the original runs on the full-size cache.  The
   join is served by a hash index on the full geometry key — the old
   per-record list scan made the figure O(n²) in sweep size. *)
let figure5 records =
  let index = Hashtbl.create 512 in
  List.iter
    (fun r ->
      let key =
        ( r.program_name,
          r.tech.Tech.node,
          r.config.Config.assoc,
          r.config.Config.block_bytes,
          r.config.Config.capacity )
      in
      (* keep the first record per key, like the list scan it replaces *)
      if not (Hashtbl.mem index key) then Hashtbl.add index key r)
    records;
  let find_small r factor =
    if r.config.Config.capacity mod factor <> 0 then None
    else
      Hashtbl.find_opt index
        ( r.program_name,
          r.tech.Tech.node,
          r.config.Config.assoc,
          r.config.Config.block_bytes,
          r.config.Config.capacity / factor )
  in
  List.concat_map
    (fun factor ->
      List.filter_map
        (fun capacity ->
          let rs = by_capacity records capacity in
          let pairs = List.filter_map (fun r -> Option.map (fun s -> (r, s)) (find_small r factor)) rs in
          if pairs = [] then None
          else begin
            let acet, deg_a =
              mean_ratios
                (fun (r, s) -> ratio s.optimized.Pipeline.acet r.original.Pipeline.acet)
                pairs
            in
            let energy, deg_e =
              mean_ratios
                (fun (r, s) ->
                  fratio s.optimized.Pipeline.energy_pj r.original.Pipeline.energy_pj)
                pairs
            in
            let wcet, deg_w =
              mean_ratios
                (fun (r, s) -> ratio s.optimized.Pipeline.tau r.original.Pipeline.tau)
                pairs
            in
            Some
              {
                capacity;
                factor;
                acet_ratio = acet;
                energy_ratio = energy;
                wcet_ratio = wcet;
                cases = List.length pairs;
                degenerate = deg_a + deg_e + deg_w;
              }
          end)
        (capacities records))
    [ 2; 4 ]

type wcet_scatter = {
  ratios : (string * string * float) list;
  summary : Stats.summary;
  all_non_increasing : bool;
  degenerate : int;
}

let figure7 records =
  let at32 = List.filter (fun r -> r.tech.Tech.node = Tech.Nm32) records in
  let ratios =
    List.filter_map
      (fun r ->
        Option.map
          (fun v -> (r.program_name, r.config_id, v))
          (ratio r.optimized.Pipeline.tau r.original.Pipeline.tau))
      at32
  in
  let values = List.map (fun (_, _, v) -> v) ratios in
  {
    ratios;
    summary = Stats.summarize values;
    all_non_increasing = List.for_all (fun v -> v <= 1.0 +. 1e-9) values;
    degenerate = List.length at32 - List.length ratios;
  }

type exec_row = {
  capacity : int;
  exec_ratio : float;
  max_ratio : float;
  cases : int;
  degenerate : int;
}

let figure8 records =
  List.map
    (fun capacity ->
      let rs = by_capacity records capacity in
      let ratios =
        List.filter_map
          (fun r -> ratio r.optimized.Pipeline.executed r.original.Pipeline.executed)
          rs
      in
      {
        capacity;
        exec_ratio = (match ratios with [] -> 1.0 | xs -> Stats.mean xs);
        max_ratio = (match ratios with [] -> 1.0 | xs -> Stats.maximum xs);
        cases = List.length rs;
        degenerate = List.length rs - List.length ratios;
      })
    (capacities records)

type policy_row = {
  row_policy : Ucp_policy.id;
  row_cases : int;
  row_prefetches : int;  (** accepted insertions summed over the cases *)
  row_ah : int;  (** original-program slots classified always-hit *)
  row_am : int;
  row_nc : int;
  row_ah_opt : int;  (** optimized-program counterparts *)
  row_am_opt : int;
  row_nc_opt : int;
}

(* Per-policy classification-precision counters, summed over the static
   slots of every record's expanded graph.  Rows follow
   [Ucp_policy.all] order; policies absent from the records yield no
   row. *)
let policy_precision records =
  List.filter_map
    (fun p ->
      let rs = List.filter (fun r -> r.policy = p) records in
      if rs = [] then None
      else
        let sum f = List.fold_left (fun acc r -> acc + f r) 0 rs in
        Some
          {
            row_policy = p;
            row_cases = List.length rs;
            row_prefetches = sum (fun r -> r.prefetches);
            row_ah = sum (fun r -> r.original.Pipeline.ah);
            row_am = sum (fun r -> r.original.Pipeline.am);
            row_nc = sum (fun r -> r.original.Pipeline.nc);
            row_ah_opt = sum (fun r -> r.optimized.Pipeline.ah);
            row_am_opt = sum (fun r -> r.optimized.Pipeline.am);
            row_nc_opt = sum (fun r -> r.optimized.Pipeline.nc);
          })
    Ucp_policy.all

type refine_row = {
  rr_policy : Ucp_policy.id;
  rr_cases : int;  (** records whose original side carries a summary *)
  rr_nc_before : int;
  rr_nc_after : int;
  rr_ah_gained : int;
  rr_am_gained : int;
  rr_tau : int;  (** sum of unrefined original taus over [rr_cases] *)
  rr_tau_refined : int;  (** sum of refined original taus *)
  rr_quant_cases : int;  (** cases carrying a quantitative miss bound *)
  rr_budget_hits : int;  (** cases where the exploration hit its budget *)
}

(* Per-policy refinement-precision counters, over the original side of
   every record that carries a refine summary (records measured with
   refinement off contribute nothing).  Rows follow [Ucp_policy.all]
   order. *)
let refine_precision records =
  List.filter_map
    (fun p ->
      let rs =
        List.filter_map
          (fun r ->
            if r.policy = p then
              Option.map
                (fun s -> (r.original.Pipeline.tau, s))
                r.original.Pipeline.refine
            else None)
          records
      in
      if rs = [] then None
      else
        let sum f = List.fold_left (fun acc x -> acc + f x) 0 rs in
        let open Ucp_refine.Explore in
        Some
          {
            rr_policy = p;
            rr_cases = List.length rs;
            rr_nc_before = sum (fun (_, s) -> s.s_nc_before);
            rr_nc_after = sum (fun (_, s) -> s.s_nc_after);
            rr_ah_gained = sum (fun (_, s) -> s.s_ah_gained);
            rr_am_gained = sum (fun (_, s) -> s.s_am_gained);
            rr_tau = sum fst;
            rr_tau_refined = sum (fun (_, s) -> s.s_tau);
            rr_quant_cases =
              sum (fun (_, s) -> if s.s_quant <> None then 1 else 0);
            rr_budget_hits = sum (fun (_, s) -> if s.s_budget_hit then 1 else 0);
          })
    Ucp_policy.all

let table1 () =
  List.map
    (fun (name, program) ->
      (Ucp_workloads.Suite.paper_id name, name, Ucp_isa.Program.total_slots program))
    Ucp_workloads.Suite.all

let table2 () = Config.paper_configs
