module Config = Ucp_cache.Config
module Tech = Ucp_energy.Tech
module Stats = Ucp_util.Stats

type record = {
  program_name : string;
  config_id : string;
  config : Config.t;
  tech : Tech.t;
  original : Pipeline.measurement;
  optimized : Pipeline.measurement;
  prefetches : int;
  rejected : int;
}

let default_configs = Config.paper_configs

let quick_configs =
  List.filter
    (fun (_, c) ->
      List.mem c.Config.capacity [ 256; 1024; 4096 ] && c.Config.assoc >= 2)
    Config.paper_configs

type case = {
  case_program_name : string;
  case_program : Ucp_isa.Program.t;
  case_config_id : string;
  case_config : Config.t;
  case_tech : Tech.t;
}

let cases ~programs ~configs ~techs =
  Array.of_list
    (List.concat_map
       (fun (case_program_name, case_program) ->
         List.concat_map
           (fun (case_config_id, case_config) ->
             List.map
               (fun case_tech ->
                 {
                   case_program_name;
                   case_program;
                   case_config_id;
                   case_config;
                   case_tech;
                 })
               techs)
           configs)
       programs)

let model_table configs techs =
  let tbl = Hashtbl.create 97 in
  List.iter
    (fun (_, config) ->
      List.iter
        (fun tech ->
          if not (Hashtbl.mem tbl (config, tech)) then
            Hashtbl.add tbl (config, tech) (Pipeline.model config tech))
        techs)
    configs;
  tbl

let run_case ?timed ~model c =
  let cmp =
    Pipeline.compare_optimized ~model ?timed c.case_program c.case_config c.case_tech
  in
  {
    program_name = c.case_program_name;
    config_id = c.case_config_id;
    config = c.case_config;
    tech = c.case_tech;
    original = cmp.Pipeline.original;
    optimized = cmp.Pipeline.optimized;
    prefetches = cmp.Pipeline.prefetches;
    rejected = cmp.Pipeline.rejected;
  }

let sweep ?(programs = Ucp_workloads.Suite.all) ?(configs = default_configs)
    ?(techs = Tech.all) ?(progress = fun _ -> ()) () =
  let models = model_table configs techs in
  let last = ref None in
  Array.to_list
    (Array.map
       (fun c ->
         if !last <> Some c.case_program_name then begin
           last := Some c.case_program_name;
           progress c.case_program_name
         end;
         run_case ~model:(Hashtbl.find models (c.case_config, c.case_tech)) c)
       (cases ~programs ~configs ~techs))

let capacities records =
  List.sort_uniq compare (List.map (fun r -> r.config.Config.capacity) records)

let by_capacity records cap =
  List.filter (fun r -> r.config.Config.capacity = cap) records

let ratio num den = if den = 0 then 1.0 else float_of_int num /. float_of_int den

let fratio num den = if den = 0.0 then 1.0 else num /. den

type size_row = {
  capacity : int;
  acet_improvement : float;
  energy_improvement : float;
  wcet_improvement : float;
  cases : int;
}

let figure3 records =
  List.map
    (fun capacity ->
      let rs = by_capacity records capacity in
      let improvement f = 1.0 -. Stats.mean (List.map f rs) in
      {
        capacity;
        acet_improvement =
          improvement (fun r -> ratio r.optimized.Pipeline.acet r.original.Pipeline.acet);
        energy_improvement =
          improvement (fun r ->
              fratio r.optimized.Pipeline.energy_pj r.original.Pipeline.energy_pj);
        wcet_improvement =
          improvement (fun r -> ratio r.optimized.Pipeline.tau r.original.Pipeline.tau);
        cases = List.length rs;
      })
    (capacities records)

type miss_row = {
  capacity : int;
  miss_before : float;
  miss_after : float;
  cases : int;
}

let figure4 records =
  List.map
    (fun capacity ->
      let rs = by_capacity records capacity in
      {
        capacity;
        miss_before = Stats.mean (List.map (fun r -> r.original.Pipeline.miss_rate) rs);
        miss_after = Stats.mean (List.map (fun r -> r.optimized.Pipeline.miss_rate) rs);
        cases = List.length rs;
      })
    (capacities records)

type downsize_row = {
  capacity : int;
  factor : int;
  acet_ratio : float;
  energy_ratio : float;
  wcet_ratio : float;
  cases : int;
}

(* Join each record against the sweep record of the same program,
   technology, associativity and block size whose capacity is
   [capacity / factor]: the optimized program built *for the smaller
   cache* runs there, the original runs on the full-size cache. *)
let figure5 records =
  let find_small r factor =
    List.find_opt
      (fun r' ->
        r'.program_name = r.program_name
        && r'.tech.Tech.node = r.tech.Tech.node
        && r'.config.Config.assoc = r.config.Config.assoc
        && r'.config.Config.block_bytes = r.config.Config.block_bytes
        && r'.config.Config.capacity * factor = r.config.Config.capacity)
      records
  in
  List.concat_map
    (fun factor ->
      List.filter_map
        (fun capacity ->
          let rs = by_capacity records capacity in
          let pairs = List.filter_map (fun r -> Option.map (fun s -> (r, s)) (find_small r factor)) rs in
          if pairs = [] then None
          else
            Some
              {
                capacity;
                factor;
                acet_ratio =
                  Stats.mean
                    (List.map
                       (fun (r, s) -> ratio s.optimized.Pipeline.acet r.original.Pipeline.acet)
                       pairs);
                energy_ratio =
                  Stats.mean
                    (List.map
                       (fun (r, s) ->
                         fratio s.optimized.Pipeline.energy_pj r.original.Pipeline.energy_pj)
                       pairs);
                wcet_ratio =
                  Stats.mean
                    (List.map
                       (fun (r, s) -> ratio s.optimized.Pipeline.tau r.original.Pipeline.tau)
                       pairs);
                cases = List.length pairs;
              })
        (capacities records))
    [ 2; 4 ]

type wcet_scatter = {
  ratios : (string * string * float) list;
  summary : Stats.summary;
  all_non_increasing : bool;
}

let figure7 records =
  let at32 = List.filter (fun r -> r.tech.Tech.node = Tech.Nm32) records in
  let ratios =
    List.map
      (fun r ->
        ( r.program_name,
          r.config_id,
          ratio r.optimized.Pipeline.tau r.original.Pipeline.tau ))
      at32
  in
  let values = List.map (fun (_, _, v) -> v) ratios in
  {
    ratios;
    summary = Stats.summarize values;
    all_non_increasing = List.for_all (fun v -> v <= 1.0 +. 1e-9) values;
  }

type exec_row = {
  capacity : int;
  exec_ratio : float;
  max_ratio : float;
  cases : int;
}

let figure8 records =
  List.map
    (fun capacity ->
      let rs = by_capacity records capacity in
      let ratios =
        List.map (fun r -> ratio r.optimized.Pipeline.executed r.original.Pipeline.executed) rs
      in
      {
        capacity;
        exec_ratio = Stats.mean ratios;
        max_ratio = Stats.maximum ratios;
        cases = List.length rs;
      })
    (capacities records)

let table1 () =
  List.map
    (fun (name, program) ->
      (Ucp_workloads.Suite.paper_id name, name, Ucp_isa.Program.total_slots program))
    Ucp_workloads.Suite.all

let table2 () = Config.paper_configs
