(** The public façade: one-call access to the paper's tool flow.

    A {e use case} is a triple (program, cache configuration, process
    technology), as in Supplement S.4.  [measure] evaluates a program
    under a use case — WCET analysis for τ{_w}, trace simulation for
    ACET/miss rate, the mini-CACTI model for energy — and [optimize]
    derives the prefetch-optimized, prefetch-equivalent binary. *)

type measurement = {
  tau : int;  (** memory contribution to the WCET, cycles *)
  acet : int;  (** memory contribution to the ACET, cycles *)
  energy_pj : float;  (** memory-system energy of the simulated run *)
  miss_rate : float;  (** demand miss rate of the simulated run *)
  executed : int;  (** dynamically executed instructions *)
  demand_misses : int;  (** demand misses of the simulated run *)
  wcet_miss_bound : int;  (** the analysis' bound on demand misses *)
  ah : int;  (** instruction slots classified always-hit *)
  am : int;  (** instruction slots classified always-miss *)
  nc : int;
      (** instruction slots left unclassified — with [ah] and [am] the
          per-policy classification-precision counters of the sweep
          (unweighted static slots of the expanded graph) *)
  refine : Ucp_refine.Explore.summary option;
      (** exact-refinement results when [?refine] was not [Off] and the
          analysis was plain.  Strictly additive: [tau],
          [wcet_miss_bound] and the classification counters above are
          always the {e unrefined} figures, so refined and unrefined
          record streams stay field-for-field comparable and the
          optimizer's audited endpoints are untouched — the tightened
          bounds live in the summary ([s_tau], [s_miss_bound], ...). *)
}

(** Per-stage wall-clock accumulators: abstract-interpretation WCET
    analysis, exact classification refinement, the optimizer's
    materialize-and-verify loop, trace simulation, and the
    certification audit.  Mutable so one accumulator can follow a whole
    sweep; not thread-safe — use one per worker and {!add_timings} the
    totals together. *)
type timings = {
  mutable analysis_s : float;
  mutable refine_s : float;
  mutable optimize_s : float;
  mutable simulate_s : float;
  mutable audit_s : float;
}

val fresh_timings : unit -> timings
(** All stages at zero. *)

val add_timings : timings -> timings -> unit
(** [add_timings acc t] accumulates [t] into [acc] stage by stage. *)

val total_timings : timings -> float
(** Sum over the stages. *)

val model :
  Ucp_cache.Config.t -> Ucp_energy.Tech.t -> Ucp_energy.Cacti.t
(** The timing/energy model of a use case.  Pure and deterministic, so
    the sweep computes it once per (configuration, technology) pair and
    passes it back in through [?model] below. *)

val measure :
  ?deadline:Ucp_util.Deadline.t ->
  ?seed:int ->
  ?model:Ucp_energy.Cacti.t ->
  ?wcet:Ucp_wcet.Wcet.t ->
  ?timed:timings ->
  ?policy:Ucp_policy.id ->
  ?refine:Ucp_refine.Mode.t ->
  ?corrupt_refine:bool ->
  Ucp_isa.Program.t ->
  Ucp_cache.Config.t ->
  Ucp_energy.Tech.t ->
  measurement
(** Analyze and simulate one program under one use case.  [?policy]
    selects the replacement policy on both sides — the abstract
    domains of the analysis and the concrete cache of the simulator
    (default LRU).  [?model]
    reuses a precomputed {!model} (it must equal [model config tech]);
    [?wcet] reuses a precomputed analysis of the {e same} program under
    the same configuration, model and policy, skipping the analysis
    stage;
    [?refine] (default [Off]) runs the focused exact classification
    refinement after the fixpoint and attaches its summary to the
    measurement; [?corrupt_refine] injects the [corrupt-refine] fault
    into that stage;
    [?timed] accumulates the per-stage wall-clock cost; [?deadline]
    bounds the analysis stage (the trace simulation does not check it —
    its step count is already bounded by [Simulator.run]'s
    [max_steps]). *)

val optimize :
  ?model:Ucp_energy.Cacti.t ->
  ?policy:Ucp_policy.id ->
  Ucp_isa.Program.t ->
  Ucp_cache.Config.t ->
  Ucp_energy.Tech.t ->
  Ucp_prefetch.Optimizer.result
(** The paper's optimization for this use case. *)

(** Was this use case audited by the {!Ucp_verify} certification layer,
    and at what cost?  A {e failed} audit never produces a value — it
    raises {!Outcome.Invariant} instead (see [compare_optimized]).
    [Audit_skipped] is an audit that could not run (non-plain analysis:
    pinned/locked ways or a hardware prefetcher) — surfaced explicitly
    so such records cannot claim a certification they never had. *)
type audit =
  | Not_audited
  | Audited of { checks : int; seconds : float }
  | Audit_skipped of string

type comparison = {
  original : measurement;
  optimized : measurement;
  prefetches : int;  (** accepted prefetch insertions *)
  rejected : int;  (** candidates rolled back by the safety net *)
  audit : audit;  (** certification verdict for this case *)
}

type audit_input
(** A deferred audit obligation: the two analyses, the optimizer result
    and the fault hook of an evaluated case, detached from the
    evaluation so the sweep can schedule certification as its own work
    item on the domain pool. *)

val prepare :
  ?deadline:Ucp_util.Deadline.t ->
  ?seed:int ->
  ?model:Ucp_energy.Cacti.t ->
  ?timed:timings ->
  ?policy:Ucp_policy.id ->
  ?analysis0:Ucp_wcet.Analysis.t ->
  ?audit:bool ->
  ?corrupt_cert:bool ->
  ?refine:Ucp_refine.Mode.t ->
  ?corrupt_refine:bool ->
  Ucp_isa.Program.t ->
  Ucp_cache.Config.t ->
  Ucp_energy.Tech.t ->
  comparison * audit_input option
(** Evaluate one use case (analysis, optimization, simulation) without
    running its audit: the returned comparison always carries
    [Not_audited], and [~audit:true] returns the pending obligation as
    an {!audit_input} for {!finish_audit} instead of certifying
    inline.  [?analysis0] reuses a memoized cache-aware analysis of the
    {e original} program (same program, configuration and policy, may
    analysis on) — the abstract interpretation never reads the timing
    model, so the sweep shares one analysis across the technology
    axis.  All other parameters as in {!compare_optimized}. *)

val finish_audit :
  ?deadline:Ucp_util.Deadline.t -> ?timed:timings -> audit_input -> audit
(** Discharge a deferred obligation: run {!Ucp_verify.audit_case} and
    return the verdict ([Audited] or [Audit_skipped]).  A failed
    obligation raises [Outcome.Invariant ("audit: " ^ msg)].  The
    [audit_s] accumulated into [?timed] is the verdict's own
    per-obligation cost — the same intervals that feed the
    [audit_seconds_total] metrics fcounter — so traced and untraced
    runs report identical audit numbers. *)

val compare_optimized :
  ?deadline:Ucp_util.Deadline.t ->
  ?seed:int ->
  ?model:Ucp_energy.Cacti.t ->
  ?timed:timings ->
  ?policy:Ucp_policy.id ->
  ?analysis0:Ucp_wcet.Analysis.t ->
  ?audit:bool ->
  ?corrupt_cert:bool ->
  ?refine:Ucp_refine.Mode.t ->
  ?corrupt_refine:bool ->
  Ucp_isa.Program.t ->
  Ucp_cache.Config.t ->
  Ucp_energy.Tech.t ->
  comparison
(** Optimize and evaluate both versions under the same use case, under
    the replacement policy [?policy] (default LRU).  [?refine] (default
    [Off]) additionally runs the exact classification refinement on
    both sides and, when the case is audited, adds the two refine
    obligations (digest-checked recomputation plus refined witness
    replay) to the audit.  [?corrupt_refine] injects the
    [corrupt-refine] fault on the original side.  The
    original program is analyzed exactly once: the optimizer starts
    from that fixpoint and the original measurement reuses it (pass
    [?analysis0] to skip even that — see {!prepare}).
    Theorem 1 materializes as [optimized.tau <= original.tau].
    [?deadline] is threaded into every analysis fixpoint and optimizer
    round; once it passes, the pending stage raises
    [Ucp_util.Deadline.Deadline_exceeded] at its next check.

    [~audit:true] runs the full {!Ucp_verify.audit_case} certification
    (IPET certificates via the flow-certificate fast path, witness
    replay of both programs, optimizer audit trail) on the case's own
    analyses; a failed obligation raises
    [Outcome.Invariant ("audit: " ^ msg)], which the sweep demotes to a
    structured [Invariant_violation].  A case the audit cannot replay
    (non-plain analysis) yields [Audit_skipped].  [~corrupt_cert:true]
    is the [corrupt-cert] fault-injection hook: it perturbs one
    certificate field before checking, so the audit must fail.
    Equivalent to {!prepare} followed by {!finish_audit}. *)
