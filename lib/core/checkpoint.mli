(** Crash-safe checkpoint/resume for the sweep.

    The journal is a JSONL file: a header line carrying a fingerprint
    of the sweep grid, then one line per {e completed} use case with
    the full record (floats serialized losslessly, so a resumed sweep
    reproduces an uninterrupted run bit for bit).  Lines are appended
    and fsynced as cases finish — an acknowledged write survives not
    just a process crash but a power cut; a crash can tear at most the
    final line, which {!start} tolerates and drops.  Failed / timed-out /
    invariant-violating cases are {e not} journaled — a resume retries
    them.

    The fingerprint hashes the suite, the configuration grid, the
    technology list, the replacement-policy list and the refine mode;
    resuming against a journal written for a different grid — including
    an LRU-only journal against a multi-policy grid, or a journal swept
    under a different refine mode — is rejected instead of silently
    mixing records. *)

type t

val fingerprint :
  ?policies:Ucp_policy.id list ->
  ?refine:Ucp_refine.Mode.t ->
  programs:(string * Ucp_isa.Program.t) list ->
  configs:(string * Ucp_cache.Config.t) list ->
  techs:Ucp_energy.Tech.t list ->
  unit ->
  string
(** Hex digest of the sweep grid (program names and sizes, config ids
    and geometries, tech labels, replacement policies — default
    [[Lru]] — and the refine mode — default [Off] — plus the journal
    format version). *)

val start :
  path:string -> fingerprint:string -> resume:bool -> t
(** Open a journal.  With [resume:false] the file is truncated and a
    fresh header written.  With [resume:true] an existing journal is
    replayed first: its header fingerprint must match (otherwise
    [Failure]), complete record lines populate {!completed}, and a torn
    trailing line is dropped; a missing or empty file degrades to a
    fresh start.  The channel is then positioned for appending.
    @raise Failure on a fingerprint mismatch or a corrupt line in the
    middle of the journal;
    @raise Sys_error if the path cannot be opened. *)

val completed : t -> (string, Experiments.record) Hashtbl.t
(** Records replayed from the journal at {!start} time, keyed by
    {!Experiments.case_id}.  Empty unless resuming. *)

val record : t -> id:string -> Experiments.record -> unit
(** Append one finished case, flush {e and fsync} before returning —
    once [record] returns, the line is on the device.  Thread-safe
    (worker domains journal concurrently). *)

val close : t -> unit

(** {2 Serialization} (exposed for tests) *)

val record_line : id:string -> Experiments.record -> string
(** One journal line (no trailing newline). *)

val parse_line : string -> (string * Experiments.record) option
(** Inverse of {!record_line}; [None] on malformed input. *)

val write_atomic : path:string -> string -> unit
(** Write a whole file via temp-file + fsync + rename (followed by a
    best-effort parent-directory fsync), so readers never observe a
    half-written output and a crash — including a power cut — leaves
    either the old file or the complete new one. *)

val synced_writes : unit -> int
(** Process-wide count of fsyncs issued by this module ({!record},
    {!start}, {!write_atomic}).  Exposed so a test can pin that
    acknowledged journal appends really hit the sync path. *)
