module Table = Ucp_util.Table
module Stats = Ucp_util.Stats
module Config = Ucp_cache.Config

let section title body = Printf.sprintf "== %s ==\n%s\n" title body

let table1 () =
  let t = Table.create [ "id"; "program"; "static slots"; "size class" ] in
  List.iter
    (fun (id, name, slots) ->
      Table.add_row t
        [ id; name; string_of_int slots;
          Ucp_workloads.Suite.size_class (Ucp_workloads.Suite.find name) ])
    (Experiments.table1 ());
  section "Table 1: program identification" (Table.render t)

let table2 () =
  let t = Table.create [ "id"; "assoc"; "block (B)"; "capacity (B)"; "sets" ] in
  List.iter
    (fun (id, c) ->
      Table.add_row t
        [
          id;
          string_of_int c.Config.assoc;
          string_of_int c.Config.block_bytes;
          string_of_int c.Config.capacity;
          string_of_int c.Config.sets;
        ])
    (Experiments.table2 ());
  section "Table 2: cache configurations" (Table.render t)

let figure3 records =
  let t =
    Table.create
      [ "cache size"; "ACET impr."; "energy impr."; "WCET impr."; "cases"; "degenerate" ]
  in
  List.iter
    (fun (r : Experiments.size_row) ->
      Table.add_row t
        [
          string_of_int r.capacity;
          Table.cell_pct r.acet_improvement;
          Table.cell_pct r.energy_improvement;
          Table.cell_pct r.wcet_improvement;
          string_of_int r.cases;
          string_of_int r.degenerate;
        ])
    (Experiments.figure3 records);
  section "Figure 3: impact on energy efficiency (averages per cache size)"
    (Table.render t)

let figure4 records =
  let t = Table.create [ "cache size"; "miss rate before"; "miss rate after"; "cases" ] in
  List.iter
    (fun (r : Experiments.miss_row) ->
      Table.add_row t
        [
          string_of_int r.capacity;
          Table.cell_pct r.miss_before;
          Table.cell_pct r.miss_after;
          string_of_int r.cases;
        ])
    (Experiments.figure4 records);
  section "Figure 4: impact on miss rate" (Table.render t)

let figure5 records =
  let t =
    Table.create
      [
        "orig. cache"; "opt. cache"; "ACET ratio"; "energy ratio"; "WCET ratio";
        "cases"; "degenerate";
      ]
  in
  List.iter
    (fun (r : Experiments.downsize_row) ->
      Table.add_row t
        [
          string_of_int r.capacity;
          Printf.sprintf "1/%d" r.factor;
          Table.cell_f r.acet_ratio;
          Table.cell_f r.energy_ratio;
          Table.cell_f r.wcet_ratio;
          string_of_int r.cases;
          string_of_int r.degenerate;
        ])
    (Experiments.figure5 records);
  section "Figure 5: optimized programs on 1/2 and 1/4 of the original cache"
    (Table.render t)

let figure7 records =
  let s = Experiments.figure7 records in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Format.asprintf "WCET ratio distribution (32nm): %a\n" Stats.pp_summary s.summary);
  Buffer.add_string buf
    (Printf.sprintf "Theorem 1 (no use case grew): %b\n"
       s.Experiments.all_non_increasing);
  let improved =
    List.length (List.filter (fun (_, _, v) -> v < 1.0 -. 1e-9) s.Experiments.ratios)
  in
  Buffer.add_string buf
    (Printf.sprintf "use cases improved: %d / %d\n" improved
       (List.length s.Experiments.ratios));
  if s.Experiments.degenerate > 0 then
    Buffer.add_string buf
      (Printf.sprintf "degenerate ratios dropped (zero WCET): %d\n"
         s.Experiments.degenerate);
  section "Figure 7: per-use-case WCET ratios (32nm)" (Buffer.contents buf)

let figure8 records =
  let t =
    Table.create [ "cache size"; "avg executed ratio"; "max ratio"; "cases"; "degenerate" ]
  in
  List.iter
    (fun (r : Experiments.exec_row) ->
      Table.add_row t
        [
          string_of_int r.capacity;
          Table.cell_f r.exec_ratio;
          Table.cell_f r.max_ratio;
          string_of_int r.cases;
          string_of_int r.degenerate;
        ])
    (Experiments.figure8 records);
  section "Figure 8: executed-instruction ratio (optimized / original)"
    (Table.render t)

let policies records =
  let t =
    Table.create
      [
        "policy"; "cases"; "prefetches"; "AH"; "AM"; "NC"; "AH opt"; "AM opt";
        "NC opt";
      ]
  in
  List.iter
    (fun (r : Experiments.policy_row) ->
      Table.add_row t
        [
          Ucp_policy.to_string r.row_policy;
          string_of_int r.row_cases;
          string_of_int r.row_prefetches;
          string_of_int r.row_ah;
          string_of_int r.row_am;
          string_of_int r.row_nc;
          string_of_int r.row_ah_opt;
          string_of_int r.row_am_opt;
          string_of_int r.row_nc_opt;
        ])
    (Experiments.policy_precision records);
  section "Replacement policies: classification precision (summed static slots)"
    (Table.render t)

(* WCET-bound slack reclaimed by refinement, as a percentage of the
   unrefined bound sum *)
let reclaimed rr =
  match rr.Experiments.rr_tau with
  | 0 -> 0.0
  | tau ->
    100.0
    *. float_of_int (tau - rr.Experiments.rr_tau_refined)
    /. float_of_int tau

let refinement records =
  match Experiments.refine_precision records with
  | [] -> ""
  | rows ->
    let t =
      Table.create
        [
          "policy"; "cases"; "NC before"; "NC after"; "+AH"; "+AM";
          "WCET delta %"; "quant"; "budget hits";
        ]
    in
    List.iter
      (fun (r : Experiments.refine_row) ->
        Table.add_row t
          [
            Ucp_policy.to_string r.rr_policy;
            string_of_int r.rr_cases;
            string_of_int r.rr_nc_before;
            string_of_int r.rr_nc_after;
            string_of_int r.rr_ah_gained;
            string_of_int r.rr_am_gained;
            Printf.sprintf "%.2f" (reclaimed r);
            string_of_int r.rr_quant_cases;
            string_of_int r.rr_budget_hits;
          ])
      rows;
    section "Exact refinement: reclaimed NC slack per policy (original programs)"
      (Table.render t)

let headline records =
  let rows = Experiments.figure3 records in
  let avg f = Stats.mean (List.map f rows) in
  Printf.sprintf
    "headline: energy -%.1f%%, ACET -%.1f%%, WCET -%.1f%% (paper: 11.2%%, 10.2%%, 17.4%%)\n"
    (100.0 *. avg (fun (r : Experiments.size_row) -> r.energy_improvement))
    (100.0 *. avg (fun (r : Experiments.size_row) -> r.acet_improvement))
    (100.0 *. avg (fun (r : Experiments.size_row) -> r.wcet_improvement))

(* ------------------------------------------------------------------ *)
(* machine-readable sweep summary (JSON lines) *)

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* appended to record_json: absent entirely for unaudited cases, so an
   audit-off sweep's stream is byte-identical to the seed's *)
let audit_json (a : Pipeline.audit) =
  match a with
  | Pipeline.Not_audited -> ""
  | Pipeline.Audited { checks; seconds } ->
    Printf.sprintf {|,"audit_checks":%d,"audit_s":%.3f|} checks seconds
  | Pipeline.Audit_skipped reason ->
    Printf.sprintf {|,"audit_skipped":%s|} (json_string reason)

(* appended to record_json: absent when the case was measured with
   refinement off, so stripping every [,"refine_*":v] pair — and
   nothing else — restores the unrefined record stream byte for byte
   (ci.sh pins this) *)
let refine_json_side suffix (s : Ucp_refine.Explore.summary option) =
  match s with
  | None -> ""
  | Some s ->
    let open Ucp_refine.Explore in
    let kv k v = Printf.sprintf {|,"%s%s":%s|} k suffix v in
    String.concat ""
      [
        kv "refine_mode" (json_string (Ucp_refine.Mode.to_string s.s_mode));
        kv "refine_nc_before" (string_of_int s.s_nc_before);
        kv "refine_nc" (string_of_int s.s_nc_after);
        kv "refine_ah_gained" (string_of_int s.s_ah_gained);
        kv "refine_am_gained" (string_of_int s.s_am_gained);
        kv "refine_tau" (string_of_int s.s_tau);
        kv "refine_miss_bound" (string_of_int s.s_miss_bound);
        kv "refine_quant"
          (match s.s_quant with None -> "null" | Some q -> string_of_int q);
        kv "refine_states" (string_of_int s.s_states);
        kv "refine_budget_hit" (string_of_bool s.s_budget_hit);
        kv "refine_budget_exhausted" (string_of_int s.s_budget_exhausted);
        kv "refine_digest" (json_string s.s_digest);
      ]

(* generator provenance, recovered from the program name: generated
   programs are named by {!Ucp_workloads.Generate.name}, so any JSONL
   line that identifies its program can carry the full reproducer
   [(seed, shape)] as additive fields — empty for suite programs *)
let gen_json program_name =
  match Ucp_workloads.Generate.parse_name program_name with
  | None -> ""
  | Some (seed, cls) ->
    Printf.sprintf {|,"gen_seed":%d,"gen_shape":%s|} seed (json_string cls)

(* case ids are "<program>:<config>:<tech>:<policy>" *)
let gen_json_of_case_id id =
  match String.index_opt id ':' with
  | None -> gen_json id
  | Some i -> gen_json (String.sub id 0 i)

let record_json (r : Experiments.record) =
  let m = r.Experiments.original and o = r.Experiments.optimized in
  Printf.sprintf
    {|{"program":%s,"config":%s,"tech":%s,"policy":%s,"assoc":%d,"block_bytes":%d,"capacity":%d,"tau":%d,"tau_opt":%d,"acet":%d,"acet_opt":%d,"energy_pj":%.3f,"energy_opt_pj":%.3f,"miss_rate":%.6f,"miss_opt_rate":%.6f,"demand_misses":%d,"demand_misses_opt":%d,"executed":%d,"executed_opt":%d,"ah":%d,"am":%d,"nc":%d,"ah_opt":%d,"am_opt":%d,"nc_opt":%d,"prefetches":%d,"rejected":%d%s%s%s}|}
    (json_string r.Experiments.program_name)
    (json_string r.Experiments.config_id)
    (json_string r.Experiments.tech.Ucp_energy.Tech.label)
    (json_string (Ucp_policy.to_string r.Experiments.policy))
    r.Experiments.config.Config.assoc r.Experiments.config.Config.block_bytes
    r.Experiments.config.Config.capacity m.Pipeline.tau o.Pipeline.tau
    m.Pipeline.acet o.Pipeline.acet m.Pipeline.energy_pj o.Pipeline.energy_pj
    m.Pipeline.miss_rate o.Pipeline.miss_rate m.Pipeline.demand_misses
    o.Pipeline.demand_misses m.Pipeline.executed
    o.Pipeline.executed m.Pipeline.ah m.Pipeline.am m.Pipeline.nc
    o.Pipeline.ah o.Pipeline.am o.Pipeline.nc
    r.Experiments.prefetches r.Experiments.rejected
    (audit_json r.Experiments.audit)
    (refine_json_side "" m.Pipeline.refine)
    (refine_json_side "_opt" o.Pipeline.refine)

let outcome_counts outcomes =
  List.fold_left
    (fun (ok, failed, timed_out, violations) (_, o) ->
      match (o : _ Outcome.t) with
      | Outcome.Ok _ -> (ok + 1, failed, timed_out, violations)
      | Outcome.Failed _ -> (ok, failed + 1, timed_out, violations)
      | Outcome.Timed_out -> (ok, failed, timed_out + 1, violations)
      | Outcome.Invariant_violation _ -> (ok, failed, timed_out, violations + 1))
    (0, 0, 0, 0) outcomes

(* case ids end in ":<policy>" (Experiments.case_id); bucket outcomes by
   that suffix so a multi-policy sweep can report each slice. *)
let policy_outcome_summary ~policies outcomes =
  let suffix p = ":" ^ Ucp_policy.to_string p in
  let buf = Buffer.create 256 in
  List.iter
    (fun p ->
      let slice =
        List.filter
          (fun (id, _) ->
            let s = suffix p in
            let n = String.length s and l = String.length id in
            l >= n && String.sub id (l - n) n = s)
          outcomes
      in
      let ok, failed, timed_out, violations = outcome_counts slice in
      Buffer.add_string buf
        (Printf.sprintf
           "policy %-5s %d ok, %d failed, %d timed out, %d invariant violations\n"
           (Ucp_policy.to_string p) ok failed timed_out violations))
    policies;
  Buffer.contents buf

(* audited-case digest over the [Ok] records of a sweep: certified
   cases with their check/second totals, plus the cases the audit had
   to skip (unsupported analysis modes) *)
let audit_counts outcomes =
  List.fold_left
    (fun (n, checks, secs, skipped) (_, o) ->
      match (o : Experiments.record Outcome.t) with
      | Outcome.Ok { Experiments.audit = Pipeline.Audited { checks = c; seconds }; _ }
        ->
        (n + 1, checks + c, secs +. seconds, skipped)
      | Outcome.Ok { Experiments.audit = Pipeline.Audit_skipped _; _ } ->
        (n, checks, secs, skipped + 1)
      | _ -> (n, checks, secs, skipped))
    (0, 0, 0.0, 0) outcomes

let outcome_summary outcomes =
  let ok, failed, timed_out, violations = outcome_counts outcomes in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "cases: %d ok, %d failed, %d timed out, %d invariant violations\n"
       ok failed timed_out violations);
  (let audited, checks, secs, skipped = audit_counts outcomes in
   if audited > 0 then
     Buffer.add_string buf
       (Printf.sprintf "audited: %d cases certified (%d checks, %.1fs)\n" audited
          checks secs);
   if skipped > 0 then
     Buffer.add_string buf
       (Printf.sprintf "audit skipped: %d cases (unsupported analysis modes)\n"
          skipped));
  List.iter
    (fun (id, o) ->
      if not (Outcome.is_ok o) then
        Buffer.add_string buf (Printf.sprintf "  %s: %s\n" id (Outcome.describe o)))
    outcomes;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* observability: metrics, worker telemetry and per-stage rendering *)

(* one JSON member per instrument, nested under a single "metrics"
   object on the sweep summary line (additive: absent when metrics are
   disabled, so the stream stays v2-compatible byte for byte) *)
let metrics_json metrics =
  let value = function
    | Ucp_obs.Metrics.Counter n -> string_of_int n
    | Ucp_obs.Metrics.Fcounter x | Ucp_obs.Metrics.Gauge x ->
      Printf.sprintf "%.6g" x
    | Ucp_obs.Metrics.Histogram { count; sum; _ } ->
      Printf.sprintf {|{"count":%d,"sum":%.6g}|} count sum
  in
  Printf.sprintf {|,"metrics":{%s}|}
    (String.concat ","
       (List.map (fun (name, v) -> json_string name ^ ":" ^ value v) metrics))

let metrics_table metrics =
  let t = Table.create [ "metric"; "value" ] in
  List.iter
    (fun (name, v) ->
      match (v : Ucp_obs.Metrics.value) with
      | Ucp_obs.Metrics.Counter n -> Table.add_row t [ name; string_of_int n ]
      | Ucp_obs.Metrics.Fcounter x | Ucp_obs.Metrics.Gauge x ->
        Table.add_row t [ name; Printf.sprintf "%.6g" x ]
      | Ucp_obs.Metrics.Histogram { bounds; counts; sum; count } ->
        Table.add_row t
          [
            name;
            Printf.sprintf "count=%d sum=%.3f mean=%.4f" count sum
              (if count = 0 then 0.0 else sum /. float_of_int count);
          ];
        Array.iteri
          (fun i c ->
            if c > 0 then
              let le =
                if i < Array.length bounds then Printf.sprintf "%g" bounds.(i)
                else "+inf"
              in
              Table.add_row t
                [ Printf.sprintf "  %s{le=%s}" name le; string_of_int c ])
          counts)
    metrics;
  section "Metrics" (Table.render t)

let worker_table ~wall_s (stats : Telemetry.worker_stat array) =
  let t = Table.create [ "worker"; "cases"; "tasks"; "busy (s)"; "utilization" ] in
  Array.iteri
    (fun i (w : Telemetry.worker_stat) ->
      Table.add_row t
        [
          string_of_int i;
          string_of_int w.Telemetry.cases;
          string_of_int w.Telemetry.tasks;
          Printf.sprintf "%.2f" w.Telemetry.busy_s;
          (if wall_s > 0.0 then
             Printf.sprintf "%.0f%%" (100.0 *. w.Telemetry.busy_s /. wall_s)
           else "-");
        ])
    stats;
  section "Worker telemetry" (Table.render t)

let stage_table rows =
  let t =
    Table.create
      [
        "slice"; "analysis (s)"; "refine (s)"; "optimize (s)"; "simulate (s)";
        "audit (s)"; "total (s)";
      ]
  in
  List.iter
    (fun (label, tm) ->
      Table.add_row t
        [
          label;
          Printf.sprintf "%.2f" tm.Pipeline.analysis_s;
          Printf.sprintf "%.2f" tm.Pipeline.refine_s;
          Printf.sprintf "%.2f" tm.Pipeline.optimize_s;
          Printf.sprintf "%.2f" tm.Pipeline.simulate_s;
          Printf.sprintf "%.2f" tm.Pipeline.audit_s;
          Printf.sprintf "%.2f" (Pipeline.total_timings tm);
        ])
    rows;
  section "Per-stage wall-clock (summed over workers)" (Table.render t)

let sweep_jsonl ~wall_s ~jobs ~timings ?(outcomes = []) ?metrics records =
  let buf = Buffer.create 4096 in
  List.iter
    (fun r ->
      Buffer.add_string buf (record_json r);
      Buffer.add_char buf '\n')
    records;
  List.iter
    (fun (id, o) ->
      if not (Outcome.is_ok o) then begin
        (* failed / timed-out / invariant-violating cases echo their
           generator provenance, so the failure is replayable from the
           artifact alone *)
        Buffer.add_string buf
          (Printf.sprintf {|{"case":%s,"outcome":%s,"detail":%s%s}|}
             (json_string id)
             (json_string (Outcome.label o))
             (json_string (Outcome.describe o))
             (gen_json_of_case_id id));
        Buffer.add_char buf '\n'
      end)
    outcomes;
  let _, failed, timed_out, violations = outcome_counts outcomes in
  let audited =
    List.length
      (List.filter
         (fun (r : Experiments.record) ->
           r.Experiments.audit <> Pipeline.Not_audited)
         records)
  in
  Buffer.add_string buf
    (Printf.sprintf
       {|{"summary":true,"cases":%d,"failed":%d,"timed_out":%d,"invariant_violations":%d,"audited":%d,"jobs":%d,"wall_s":%.3f,"analysis_s":%.3f,"refine_s":%.3f,"optimize_s":%.3f,"simulate_s":%.3f,"audit_s":%.3f%s}|}
       (List.length records) failed timed_out violations audited jobs wall_s
       timings.Pipeline.analysis_s timings.Pipeline.refine_s
       timings.Pipeline.optimize_s
       timings.Pipeline.simulate_s timings.Pipeline.audit_s
       (match metrics with
       | None | Some [] -> ""
       | Some ms -> metrics_json ms));
  Buffer.add_char buf '\n';
  Buffer.contents buf

let all records =
  String.concat "\n"
    [
      table1 ();
      table2 ();
      figure3 records;
      figure4 records;
      figure5 records;
      figure7 records;
      figure8 records;
      policies records;
      refinement records;
      headline records;
    ]
