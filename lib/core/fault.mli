(** Fault injection for the sweep pipeline — test scaffolding that
    proves the fault-tolerance layer actually works.

    A hook is keyed by the stable {!Experiments.case_id} of a use case
    and makes exactly that case raise, stall, or corrupt its result.
    Hooks are installed programmatically ({!set}) by tests, or from the
    [UCP_FAULT] environment variable ({!load_env}) by the CLI drivers,
    which is how [ci.sh] runs its fault-injected smoke sweep.

    The hook table is written before a sweep starts and only read
    (under its lock) by worker domains afterwards; an empty table costs
    one mutex acquisition per case. *)

type mode =
  | Raise  (** the case raises [Injected] instead of running *)
  | Stall of float
      (** busy-wait (checking the case deadline) for up to the given
          number of seconds before running; with an armed deadline the
          stall is interrupted by [Deadline_exceeded] — this is how the
          timeout path is exercised *)
  | Corrupt_tau of int
      (** run the case normally, then inflate the optimized [tau] by
          the given number of cycles — a synthetic Theorem-1 violation
          for exercising the invariant guard *)
  | Corrupt_cert
      (** run the case with the audit's certificate-corruption hook
          armed ({!Pipeline.compare_optimized}'s [~corrupt_cert]): one
          field of the optimizer's audit trail is perturbed before
          checking, so an audited case must be demoted to
          [Invariant_violation] naming the violated obligation — the
          negative test that the certification layer actually checks
          something *)
  | Corrupt_refine
      (** {e one-shot}: run the case with the refinement's
          fault-injection hook armed ({!Pipeline.prepare}'s
          [~corrupt_refine]): the original side's exact exploration
          claims one not-proven reference [Always_hit], so the ILP
          drops a miss term it must not — an audited case must be
          demoted to [Invariant_violation] naming the [refine-original]
          obligation (the audit recomputes the exploration and the
          digests disagree).  The negative test that unsound
          refinement cannot slip through certification. *)
  | Kill_worker
      (** {e one-shot}: the worker domain evaluating this case raises
          {!Killed_worker}, which escapes task isolation and kills the
          domain — the pool's death detection / respawn path
          ({!Parallel}) and the serve daemon's worker-replacement story
          are exercised by it.  The hook clears itself when it fires,
          so a retry of the same case succeeds. *)
  | Corrupt_store
      (** {e one-shot}, serve mode: after the result store persists
          this case's entry, the entry's bytes are scribbled on disk —
          the next read must detect the checksum mismatch, quarantine
          the entry and transparently recompute. *)
  | Stall_request of float
      (** serve mode, {e one-shot}: the daemon stalls this case's
          request for up to the given seconds before serving it
          (bounded by the request deadline) — exercises queue backlog
          and load shedding. *)

exception Injected of string
(** Raised by a [Raise] hook; the payload is the case id. *)

exception Killed_worker of string
(** Raised by a [Kill_worker] hook.  Deliberately {e not} caught by the
    sweep's per-case isolation: it propagates through the worker loop
    and terminates the domain, simulating a worker death outside task
    isolation. *)

val set : string -> mode -> unit
(** [set case_id mode] installs (or replaces) the hook for a case. *)

val clear : unit -> unit
(** Remove every hook (tests call this in a finalizer). *)

val find : string -> mode option

val load_env : unit -> unit
(** Install hooks from [UCP_FAULT]: a comma-separated list of
    [<case_id>=<mode>] entries where mode is [raise], [stall],
    [stall:<secs>] (default 10s), [corrupt] / [corrupt:<cycles>]
    (default 1000), [corrupt-cert], [corrupt-refine], [kill-worker],
    [corrupt-store] or
    [stall-request] / [stall-request:<secs>] (default 10s).  Example:
    [UCP_FAULT='fft1:k2:45nm=raise,crc:k3:32nm=stall'].  Unset or empty
    means no hooks.
    @raise Invalid_argument on a malformed entry. *)

val corrupt_cert : string -> bool
(** Is a [Corrupt_cert] hook installed for this case?  The sweep passes
    the answer to {!Experiments.run_case} as [~corrupt_cert]. *)

val corrupt_refine : string -> bool
(** Consume a [Corrupt_refine] hook for this case, if armed (one-shot:
    true at most once).  The sweep passes the answer to
    {!Experiments.run_case} as [~corrupt_refine]. *)

val corrupt_store : string -> bool
(** Consume a [Corrupt_store] hook for this case, if armed (one-shot:
    true at most once).  The serve result store calls it after
    persisting the case's entry. *)

val stall_request : string -> float option
(** Consume a [Stall_request] hook for this case, if armed (one-shot):
    the stall duration in seconds. *)

val busy_wait : ?deadline:Ucp_util.Deadline.t -> float -> unit
(** Spin for up to the given seconds, checking the deadline — the stall
    primitive shared by [Stall] and the daemon's [Stall_request]. *)

val apply_pre : ?deadline:Ucp_util.Deadline.t -> string -> unit
(** Run the pre-execution side of the case's hook, if any: [Raise]
    raises {!Injected}, [Stall] spins until its duration elapses or the
    deadline fires, [Kill_worker] consumes its (one-shot) hook and
    raises {!Killed_worker}.  [Corrupt_tau], [Corrupt_cert],
    [Corrupt_refine], [Corrupt_store] and [Stall_request] do nothing
    here. *)

val corrupt : string -> Experiments.record -> Experiments.record
(** Apply the case's [Corrupt_tau] hook to a finished record, if any;
    identity otherwise. *)
