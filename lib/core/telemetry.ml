(* Shared telemetry types.  Lives in its own module so both the pool
   ({!Parallel}) and the renderers ({!Report}) can name them without a
   dependency cycle (Report is already a dependency of Checkpoint,
   which Parallel uses for its journal). *)

(* per-worker telemetry snapshot, indexed by worker *)
type worker_stat = {
  busy_s : float;  (* wall-clock the worker spent inside tasks *)
  tasks : int;  (* tasks (chunks) it executed *)
  cases : int;  (* work items it executed (the sum of task weights) *)
}
