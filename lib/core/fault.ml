module Deadline = Ucp_util.Deadline

type mode =
  | Raise
  | Stall of float
  | Corrupt_tau of int
  | Corrupt_cert

exception Injected of string

let hooks : (string, mode) Hashtbl.t = Hashtbl.create 7
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let set id mode = with_lock (fun () -> Hashtbl.replace hooks id mode)
let clear () = with_lock (fun () -> Hashtbl.reset hooks)
let find id = with_lock (fun () -> Hashtbl.find_opt hooks id)

let parse_entry entry =
  match String.index_opt entry '=' with
  | None ->
    invalid_arg
      (Printf.sprintf "UCP_FAULT: %S: expected <case_id>=<raise|stall|corrupt>" entry)
  | Some i ->
    let id = String.sub entry 0 i in
    let mode = String.sub entry (i + 1) (String.length entry - i - 1) in
    let arg name s default of_string =
      match String.split_on_char ':' s with
      | [ _ ] -> default
      | [ _; v ] -> (
        match of_string v with
        | Some x -> x
        | None -> invalid_arg (Printf.sprintf "UCP_FAULT: bad %s argument %S" name v))
      | _ -> invalid_arg (Printf.sprintf "UCP_FAULT: bad %s mode %S" name s)
    in
    if id = "" then invalid_arg (Printf.sprintf "UCP_FAULT: %S: empty case id" entry);
    let mode =
      if mode = "raise" then Raise
      else if mode = "stall" || String.length mode > 6 && String.sub mode 0 6 = "stall:"
      then Stall (arg "stall" mode 10.0 float_of_string_opt)
      else if
        mode = "corrupt" || (String.length mode > 8 && String.sub mode 0 8 = "corrupt:")
      then Corrupt_tau (arg "corrupt" mode 1000 int_of_string_opt)
      else if mode = "corrupt-cert" then Corrupt_cert
      else invalid_arg (Printf.sprintf "UCP_FAULT: unknown mode %S" mode)
    in
    (id, mode)

let load_env () =
  match Sys.getenv_opt "UCP_FAULT" with
  | None | Some "" -> ()
  | Some spec ->
    List.iter
      (fun entry ->
        if entry <> "" then
          let id, mode = parse_entry (String.trim entry) in
          set id mode)
      (String.split_on_char ',' spec)

let corrupt_cert id = match find id with Some Corrupt_cert -> true | _ -> false

let apply_pre ?deadline id =
  match find id with
  | None | Some (Corrupt_tau _) | Some Corrupt_cert -> ()
  | Some Raise -> raise (Injected id)
  | Some (Stall secs) ->
    let t0 = Unix.gettimeofday () in
    while Unix.gettimeofday () -. t0 < secs do
      Deadline.check deadline;
      Unix.sleepf 0.002
    done

let corrupt id (r : Experiments.record) =
  match find id with
  | Some (Corrupt_tau extra) ->
    {
      r with
      Experiments.optimized =
        { r.Experiments.optimized with Pipeline.tau = r.Experiments.optimized.Pipeline.tau + extra };
    }
  | _ -> r
