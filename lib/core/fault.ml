module Deadline = Ucp_util.Deadline

type mode =
  | Raise
  | Stall of float
  | Corrupt_tau of int
  | Corrupt_cert
  | Corrupt_refine
  | Kill_worker
  | Corrupt_store
  | Stall_request of float

exception Injected of string
exception Killed_worker of string

let hooks : (string, mode) Hashtbl.t = Hashtbl.create 7
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let set id mode = with_lock (fun () -> Hashtbl.replace hooks id mode)
let clear () = with_lock (fun () -> Hashtbl.reset hooks)
let find id = with_lock (fun () -> Hashtbl.find_opt hooks id)

(* one-shot hooks: the serve-mode faults fire exactly once, so the
   client's retry (or the store's recompute) of the same case then
   succeeds — the fault models a transient crash, not a permanent bug *)
let take_if id pred =
  with_lock (fun () ->
      match Hashtbl.find_opt hooks id with
      | Some m when pred m ->
        Hashtbl.remove hooks id;
        Some m
      | Some _ | None -> None)

let parse_entry entry =
  match String.index_opt entry '=' with
  | None ->
    invalid_arg
      (Printf.sprintf
         "UCP_FAULT: %S: expected \
          <case_id>=<raise|stall|corrupt|corrupt-cert|corrupt-refine|kill-worker|corrupt-store|stall-request>"
         entry)
  | Some i ->
    let id = String.sub entry 0 i in
    let mode = String.sub entry (i + 1) (String.length entry - i - 1) in
    let arg name s default of_string =
      match String.split_on_char ':' s with
      | [ _ ] -> default
      | [ _; v ] -> (
        match of_string v with
        | Some x -> x
        | None -> invalid_arg (Printf.sprintf "UCP_FAULT: bad %s argument %S" name v))
      | _ -> invalid_arg (Printf.sprintf "UCP_FAULT: bad %s mode %S" name s)
    in
    if id = "" then invalid_arg (Printf.sprintf "UCP_FAULT: %S: empty case id" entry);
    let prefixed p s = String.length s > String.length p && String.sub s 0 (String.length p) = p in
    let mode =
      if mode = "raise" then Raise
      else if mode = "stall" || prefixed "stall:" mode then
        Stall (arg "stall" mode 10.0 float_of_string_opt)
      else if mode = "stall-request" || prefixed "stall-request:" mode then
        Stall_request (arg "stall-request" mode 10.0 float_of_string_opt)
      else if mode = "corrupt" || prefixed "corrupt:" mode then
        Corrupt_tau (arg "corrupt" mode 1000 int_of_string_opt)
      else if mode = "corrupt-cert" then Corrupt_cert
      else if mode = "corrupt-refine" then Corrupt_refine
      else if mode = "kill-worker" then Kill_worker
      else if mode = "corrupt-store" then Corrupt_store
      else invalid_arg (Printf.sprintf "UCP_FAULT: unknown mode %S" mode)
    in
    (id, mode)

let load_env () =
  match Sys.getenv_opt "UCP_FAULT" with
  | None | Some "" -> ()
  | Some spec ->
    List.iter
      (fun entry ->
        if entry <> "" then
          let id, mode = parse_entry (String.trim entry) in
          set id mode)
      (String.split_on_char ',' spec)

let corrupt_cert id = match find id with Some Corrupt_cert -> true | _ -> false

(* one-shot: the unsound reclassification is injected into a single
   evaluation; once the audit has caught it, a retry of the same case
   refines honestly *)
let corrupt_refine id =
  take_if id (function Corrupt_refine -> true | _ -> false) <> None

let corrupt_store id =
  take_if id (function Corrupt_store -> true | _ -> false) <> None

let stall_request id =
  match take_if id (function Stall_request _ -> true | _ -> false) with
  | Some (Stall_request secs) -> Some secs
  | Some _ | None -> None

let busy_wait ?deadline secs =
  let t0 = Unix.gettimeofday () in
  while Unix.gettimeofday () -. t0 < secs do
    Deadline.check deadline;
    Unix.sleepf 0.002
  done

let apply_pre ?deadline id =
  match find id with
  | None | Some (Corrupt_tau _) | Some Corrupt_cert | Some Corrupt_refine
  | Some Corrupt_store
  | Some (Stall_request _) ->
    ()
  | Some Raise -> raise (Injected id)
  | Some (Stall secs) -> busy_wait ?deadline secs
  | Some Kill_worker ->
    (* one-shot: the domain running this case dies; a retry of the same
       case (pool respawn + client retry) must then succeed *)
    ignore (take_if id (function Kill_worker -> true | _ -> false));
    raise (Killed_worker id)

let corrupt id (r : Experiments.record) =
  match find id with
  | Some (Corrupt_tau extra) ->
    {
      r with
      Experiments.optimized =
        { r.Experiments.optimized with Pipeline.tau = r.Experiments.optimized.Pipeline.tau + extra };
    }
  | _ -> r
