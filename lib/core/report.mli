(** Plain-text rendering of the experiment results — the rows/series the
    paper's tables and figures report. *)

val table1 : unit -> string
(** Table 1: program identification. *)

val table2 : unit -> string
(** Table 2: cache configurations k1..k36. *)

val figure3 : Experiments.record list -> string
(** Figure 3: average ACET / energy / WCET improvement per cache size. *)

val figure4 : Experiments.record list -> string
(** Figure 4: average miss rate before/after per cache size. *)

val figure5 : Experiments.record list -> string
(** Figure 5: optimized on 1/2 and 1/4 capacity vs original. *)

val figure7 : Experiments.record list -> string
(** Figure 7: per-use-case WCET ratio distribution at 32 nm. *)

val figure8 : Experiments.record list -> string
(** Figure 8: executed-instruction ratios. *)

val policies : Experiments.record list -> string
(** Replacement-policy precision table: per policy present in the
    records, the case count, accepted prefetches, and the summed
    always-hit / always-miss / not-classified static-slot counts for
    the original and optimized programs (see
    {!Experiments.policy_precision}). *)

val refinement : Experiments.record list -> string
(** Exact-refinement precision table: per policy, the not-classified
    slot counts before/after refinement, the reclassification split,
    the reclaimed WCET-bound slack in percent, how many cases carry a
    quantitative non-LRU miss bound and how many hit the exploration
    budget (see {!Experiments.refine_precision}).  Empty for a sweep
    run with refinement off. *)

val headline : Experiments.record list -> string
(** The abstract's three numbers for this run: average reductions of
    energy, ACET and WCET. *)

val all : Experiments.record list -> string
(** Every table and figure, concatenated. *)

val json_string : string -> string
(** JSON string literal with the usual escapes (quotes, backslash,
    control characters).  Shared by {!record_json} and the checkpoint
    journal. *)

val gen_json : string -> string
(** Generator-provenance suffix for a program name: when the name is a
    {!Ucp_workloads.Generate.name} (["gen-<class>-<seed>"]), the
    additive [,"gen_seed":..,"gen_shape":..] JSONL fields that make any
    record carrying them replayable from the artifact alone; [""] for
    suite programs.  Appended to sweep failure lines and checkpoint
    journal entries. *)

val record_json : Experiments.record -> string
(** One use case as a single-line JSON object: program/config/tech/policy
    identification, the cache geometry, and both measurements
    ([tau]/[acet]/[energy_pj]/[miss_rate]/[executed] and the
    [ah]/[am]/[nc] classification counters for the original, the same
    fields with [_opt] for the optimized binary), plus the
    accepted/rolled-back prefetch counts.  An audited case additionally
    carries ["audit_checks"] and ["audit_s"] (certificates passed and
    audit wall-clock; see {!Ucp_verify}); unaudited cases omit both, so
    an audit-off sweep's stream is byte-identical to the seed's.  A
    case measured with [--refine] additionally carries the flat
    [refine_*] fields per side ([refine_mode], [refine_nc_before],
    [refine_nc], [refine_ah_gained], [refine_am_gained], [refine_tau],
    [refine_miss_bound], [refine_quant] (int or null),
    [refine_states], [refine_budget_hit], [refine_digest]; [_opt]
    suffix for the optimized side) — appended last, so stripping every
    [,"refine_*":v] pair restores the unrefined stream byte for
    byte. *)

val outcome_summary : (string * Experiments.record Outcome.t) list -> string
(** Human-readable failure digest of a sweep: a counts line, an
    audited-cases line when any case was certified, then one line per
    non-[Ok] case with its id and what went wrong. *)

val policy_outcome_summary :
  policies:Ucp_policy.id list ->
  (string * Experiments.record Outcome.t) list ->
  string
(** Per-policy outcome counts: one line per requested policy, counting
    the outcomes whose case id carries that policy suffix
    ({!Experiments.case_id} ends in [":<policy>"]). *)

val metrics_table : (string * Ucp_obs.Metrics.value) list -> string
(** A {!Ucp_obs.Metrics.dump} snapshot as a two-column table; histogram
    rows are followed by one indented [name{le=bound}] row per
    non-empty bucket. *)

val worker_table : wall_s:float -> Telemetry.worker_stat array -> string
(** Per-worker telemetry table: cases and tasks executed, busy seconds,
    and busy/wall utilization. *)

val stage_table : (string * Pipeline.timings) list -> string
(** Per-stage wall-clock breakdown, one row per labelled slice (e.g.
    one per replacement policy) plus the per-stage totals. *)

val sweep_jsonl :
  wall_s:float ->
  jobs:int ->
  timings:Pipeline.timings ->
  ?outcomes:(string * Experiments.record Outcome.t) list ->
  ?metrics:(string * Ucp_obs.Metrics.value) list ->
  Experiments.record list ->
  string
(** The machine-readable sweep summary the bench harness writes: one
    {!record_json} line per use case, then one
    [{"case":..,"outcome":..,"detail":..}] line per non-[Ok] outcome,
    terminated by a summary line [{"summary":true,"cases":..,
    "failed":..,"timed_out":..,"invariant_violations":..,"audited":..,
    "jobs":..,"wall_s":..,"analysis_s":..,"refine_s":..,"optimize_s":..,
    "simulate_s":..,"audit_s":..}] so perf trajectories can be tracked
    across PRs.  [?metrics] (a {!Ucp_obs.Metrics.dump} snapshot, when
    metrics were enabled) adds one nested ["metrics"] object to the
    summary line; the per-record lines never change, so a
    traced/metered sweep's records stay byte-identical to an untraced
    run's. *)
