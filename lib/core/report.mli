(** Plain-text rendering of the experiment results — the rows/series the
    paper's tables and figures report. *)

val table1 : unit -> string
(** Table 1: program identification. *)

val table2 : unit -> string
(** Table 2: cache configurations k1..k36. *)

val figure3 : Experiments.record list -> string
(** Figure 3: average ACET / energy / WCET improvement per cache size. *)

val figure4 : Experiments.record list -> string
(** Figure 4: average miss rate before/after per cache size. *)

val figure5 : Experiments.record list -> string
(** Figure 5: optimized on 1/2 and 1/4 capacity vs original. *)

val figure7 : Experiments.record list -> string
(** Figure 7: per-use-case WCET ratio distribution at 32 nm. *)

val figure8 : Experiments.record list -> string
(** Figure 8: executed-instruction ratios. *)

val headline : Experiments.record list -> string
(** The abstract's three numbers for this run: average reductions of
    energy, ACET and WCET. *)

val all : Experiments.record list -> string
(** Every table and figure, concatenated. *)

val record_json : Experiments.record -> string
(** One use case as a single-line JSON object: program/config/tech
    identification, the cache geometry, and both measurements
    ([tau]/[acet]/[energy_pj]/[miss_rate]/[executed] for the original,
    the same fields with [_opt] for the optimized binary), plus the
    accepted/rolled-back prefetch counts. *)

val sweep_jsonl :
  wall_s:float ->
  jobs:int ->
  timings:Pipeline.timings ->
  Experiments.record list ->
  string
(** The machine-readable sweep summary the bench harness writes: one
    {!record_json} line per use case, terminated by a summary line
    [{"summary":true,"cases":..,"jobs":..,"wall_s":..,"analysis_s":..,
    "optimize_s":..,"simulate_s":..}] so perf trajectories can be
    tracked across PRs. *)
