module Tech = Ucp_energy.Tech
module Deadline = Ucp_util.Deadline

(* ------------------------------------------------------------------ *)
(* fixed-size domain pool with a chunked work queue *)

(* per-worker telemetry, aggregated under [pool.mutex] when a task
   finishes (the worker holds the lock there anyway); the public
   snapshot type is {!Telemetry.worker_stat} *)
type wstat = { mutable w_busy : float; mutable w_tasks : int; mutable w_cases : int }

type pool = {
  mutex : Mutex.t;
  work : Condition.t;  (* a task was queued, or the pool closed *)
  idle : Condition.t;  (* the last pending task finished *)
  tasks : (int * (unit -> unit)) Queue.t;  (* weight (work items), task *)
  mutable pending : int;  (* queued or running tasks *)
  mutable closed : bool;
  (* first task exception plus the backtrace captured at the raise
     site, re-raised by [wait] with the original trace intact *)
  mutable failure : (exn * Printexc.raw_backtrace) option;
  mutable workers : unit Domain.t list;
  stats : wstat array;
  (* worker-death accounting: an exception that escapes task isolation
     (e.g. a [Fault.Killed_worker], or a fatal error in the pool
     machinery itself) terminates its domain; the pool either respawns
     a replacement ([respawn]) or fails [wait] with a structured
     {!Worker_died} instead of hanging forever *)
  respawn : bool;
  mutable alive : int;
  mutable restarts : int;
}

exception Worker_died of string

(* lazily registered so pools in metrics-off runs never touch the
   registry; fed by the respawn path, surfaced by the serve daemon's
   health query *)
let worker_restarts_total = lazy (Ucp_obs.Metrics.counter "worker_restarts_total")

let default_jobs () =
  match Sys.getenv_opt "UCP_JOBS" with
  | None | Some "" -> Domain.recommended_domain_count ()
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None ->
      invalid_arg (Printf.sprintf "UCP_JOBS=%s: expected a positive integer" s))

let rec worker pool w =
  Mutex.lock pool.mutex;
  let rec next () =
    if not (Queue.is_empty pool.tasks) then Some (Queue.pop pool.tasks)
    else if pool.closed then None
    else begin
      Condition.wait pool.work pool.mutex;
      next ()
    end
  in
  match next () with
  | None -> Mutex.unlock pool.mutex
  | Some (weight, task) ->
    Mutex.unlock pool.mutex;
    let t0 = Unix.gettimeofday () in
    let outcome =
      match task () with
      | () -> None
      (* a kill escapes task isolation by design: the domain dies and
         the pool's death handler takes over the bookkeeping *)
      | exception (Fault.Killed_worker _ as e) -> raise e
      | exception exn -> Some (exn, Printexc.get_raw_backtrace ())
    in
    let busy = Unix.gettimeofday () -. t0 in
    Mutex.lock pool.mutex;
    let st = pool.stats.(w) in
    st.w_busy <- st.w_busy +. busy;
    st.w_tasks <- st.w_tasks + 1;
    st.w_cases <- st.w_cases + weight;
    (match outcome with
    | Some _ when pool.failure = None -> pool.failure <- outcome
    | Some _ | None -> ());
    pool.pending <- pool.pending - 1;
    if pool.pending = 0 then Condition.broadcast pool.idle;
    Mutex.unlock pool.mutex;
    worker pool w

(* runs on the worker domain; any exception reaching it means the
   worker died outside task isolation with its task still counted in
   [pending] — account the loss, wake the waiters, and either spawn a
   replacement domain or poison the pool with a structured error *)
let rec guarded_worker pool w =
  try worker pool w
  with exn ->
    let bt = Printexc.get_raw_backtrace () in
    let died =
      Worker_died
        (Printf.sprintf "worker %d died outside task isolation: %s" w
           (Printexc.to_string exn))
    in
    Mutex.lock pool.mutex;
    pool.alive <- pool.alive - 1;
    (* the in-flight task will never finish; without this decrement
       [wait] would block forever on a count that cannot drain *)
    pool.pending <- pool.pending - 1;
    if pool.respawn && not pool.closed then begin
      pool.restarts <- pool.restarts + 1;
      Ucp_obs.Metrics.incr (Lazy.force worker_restarts_total);
      pool.alive <- pool.alive + 1;
      pool.workers <-
        Domain.spawn (fun () -> guarded_worker pool w) :: pool.workers
    end
    else if pool.failure = None then pool.failure <- Some (died, bt);
    Condition.broadcast pool.idle;
    Mutex.unlock pool.mutex;
    Ucp_obs.Log.warn "%s%s" (Printexc.to_string exn)
      (if pool.respawn then " — worker domain replaced" else "")

let create ?(respawn = false) ~jobs () =
  if jobs < 1 then invalid_arg "Parallel.create: jobs must be positive";
  let pool =
    {
      mutex = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      tasks = Queue.create ();
      pending = 0;
      closed = false;
      failure = None;
      workers = [];
      stats = Array.init jobs (fun _ -> { w_busy = 0.0; w_tasks = 0; w_cases = 0 });
      respawn;
      alive = jobs;
      restarts = 0;
    }
  in
  pool.workers <- List.init jobs (fun w -> Domain.spawn (fun () -> guarded_worker pool w));
  pool

let restarts pool =
  Mutex.lock pool.mutex;
  let r = pool.restarts in
  Mutex.unlock pool.mutex;
  r

let submit ?(weight = 1) pool task =
  (* capture the submitter's ambient trace context so spans the task
     opens on a worker domain carry the originating request's trace id
     (the serve daemon's cold-compute attribution) *)
  let task =
    match Ucp_obs.Ctx.current () with
    | None -> task
    | Some c -> fun () -> Ucp_obs.Ctx.with_ctx c task
  in
  Mutex.lock pool.mutex;
  if pool.closed then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Parallel.submit: pool is shut down"
  end;
  Queue.push (weight, task) pool.tasks;
  pool.pending <- pool.pending + 1;
  Condition.signal pool.work;
  Mutex.unlock pool.mutex

let worker_stats pool =
  Mutex.lock pool.mutex;
  let snap =
    Array.map
      (fun st ->
        {
          Telemetry.busy_s = st.w_busy;
          tasks = st.w_tasks;
          cases = st.w_cases;
        })
      pool.stats
  in
  Mutex.unlock pool.mutex;
  snap

let wait pool =
  Mutex.lock pool.mutex;
  (* a pool whose last worker died can never drain its queue: stop
     waiting and report the death instead of hanging forever *)
  while pool.pending > 0 && pool.alive > 0 do
    Condition.wait pool.idle pool.mutex
  done;
  let failure = pool.failure in
  pool.failure <- None;
  let wedged = pool.pending > 0 && pool.alive = 0 in
  Mutex.unlock pool.mutex;
  match failure with
  | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
  | None ->
    if wedged then
      raise (Worker_died "every worker domain died; queued tasks abandoned")

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.closed <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.mutex;
  (* joining can race a death handler appending a replacement domain,
     so drain the worker list until it stays empty *)
  let rec drain () =
    Mutex.lock pool.mutex;
    let workers = pool.workers in
    pool.workers <- [];
    Mutex.unlock pool.mutex;
    if workers <> [] then begin
      List.iter Domain.join workers;
      drain ()
    end
  in
  drain ()

(* ------------------------------------------------------------------ *)
(* deterministic parallel map *)

let map ?jobs ?chunk ?progress ?telemetry f items =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Parallel.map: jobs must be positive";
  let n = Array.length items in
  if n = 0 then begin
    Option.iter (fun cb -> cb [||]) telemetry;
    [||]
  end
  else begin
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ -> invalid_arg "Parallel.map: chunk must be positive"
      (* small chunks smooth out the order-of-magnitude spread in
         per-case cost across programs; 4 chunks per worker bounds the
         tail wait by ~1/4 of a worker's share *)
      | None -> max 1 (n / (jobs * 4))
    in
    (* results land at their input index, so the output order is the
       input order no matter which worker finishes when *)
    let results = Array.make n None in
    let pmutex = Mutex.create () in
    let completed = ref 0 in
    (* a raising progress callback must not poison the pool and void
       the computed results: the first exception disables further
       callbacks and the map completes normally *)
    let progress_dead = ref false in
    (* per finished element, not per chunk: callbacks are serialized
       under a dedicated lock and observe a strictly increasing count *)
    let note_done () =
      match progress with
      | None -> ()
      | Some cb ->
        Mutex.lock pmutex;
        incr completed;
        let done_ = !completed in
        Fun.protect
          ~finally:(fun () -> Mutex.unlock pmutex)
          (fun () ->
            if not !progress_dead then
              try cb ~done_ ~total:n
              with exn ->
                progress_dead := true;
                Ucp_obs.Log.warn
                  "progress callback raised %s; progress reporting disabled for \
                   the rest of this run"
                  (Printexc.to_string exn))
    in
    let pool = create ~jobs () in
    Fun.protect
      ~finally:(fun () -> shutdown pool)
      (fun () ->
        let lo = ref 0 in
        while !lo < n do
          let l = !lo and h = min n (!lo + chunk) in
          submit ~weight:(h - l) pool (fun () ->
              for k = l to h - 1 do
                results.(k) <- Some (f items.(k));
                note_done ()
              done);
          lo := h
        done;
        wait pool;
        Option.iter (fun cb -> cb (worker_stats pool)) telemetry);
    Array.map (function Some v -> v | None -> assert false) results
  end

let try_map ?jobs ?chunk ?progress ?telemetry f items =
  map ?jobs ?chunk ?progress ?telemetry
    (fun x ->
      match f x with
      | v -> Outcome.Ok v
      | exception Deadline.Deadline_exceeded -> Outcome.Timed_out
      | exception Outcome.Invariant msg -> Outcome.Invariant_violation msg
      | exception (Fault.Killed_worker _ as e) -> raise e
      | exception exn ->
        let bt = Printexc.get_raw_backtrace () in
        Outcome.Failed
          {
            Outcome.exn_text = Printexc.to_string exn;
            backtrace = Printexc.raw_backtrace_to_string bt;
          })
    items

(* ------------------------------------------------------------------ *)
(* the parallel evaluation sweep *)

type sweep = {
  records : Experiments.record list;
  results : (string * Experiments.record Outcome.t) list;
  failures : (string * Experiments.record Outcome.t) list;
  resumed : int;
  wall_s : float;
  timings : Pipeline.timings;
  jobs : int;
  cases : int;
  workers : Telemetry.worker_stat array;
  worker_restarts : int;
}

(* sweep-level instruments (registered on first use, so a sweep with
   metrics disabled never touches the registry) *)
let case_seconds =
  lazy
    (Ucp_obs.Metrics.histogram "case_duration_seconds"
       ~buckets:[| 0.01; 0.03; 0.1; 0.3; 1.0; 3.0; 10.0; 30.0; 100.0 |])

let gc_minor_words_total = lazy (Ucp_obs.Metrics.fcounter "gc_minor_words_total")
let gc_major_words_total = lazy (Ucp_obs.Metrics.fcounter "gc_major_words_total")

let gc_minor_collections_total =
  lazy (Ucp_obs.Metrics.counter "gc_minor_collections_total")

let gc_major_collections_total =
  lazy (Ucp_obs.Metrics.counter "gc_major_collections_total")

(* per-case Gc.quick_stat delta + wall-clock, recorded around the case
   body (including failed cases: a case that dies after allocating for
   ten seconds should still show up in the histograms) *)
let observed_case f =
  if not (Ucp_obs.Metrics.enabled ()) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    let g0 = Gc.quick_stat () in
    Fun.protect
      ~finally:(fun () ->
        let g1 = Gc.quick_stat () in
        Ucp_obs.Metrics.fadd (Lazy.force gc_minor_words_total)
          (g1.Gc.minor_words -. g0.Gc.minor_words);
        Ucp_obs.Metrics.fadd (Lazy.force gc_major_words_total)
          (g1.Gc.major_words -. g0.Gc.major_words);
        Ucp_obs.Metrics.add
          (Lazy.force gc_minor_collections_total)
          (g1.Gc.minor_collections - g0.Gc.minor_collections);
        Ucp_obs.Metrics.add
          (Lazy.force gc_major_collections_total)
          (g1.Gc.major_collections - g0.Gc.major_collections);
        Ucp_obs.Metrics.observe (Lazy.force case_seconds)
          (Unix.gettimeofday () -. t0))
      f
  end

let strip = function
  | Outcome.Ok (r, _) -> Outcome.Ok r
  | Outcome.Failed f -> Outcome.Failed f
  | Outcome.Timed_out -> Outcome.Timed_out
  | Outcome.Invariant_violation m -> Outcome.Invariant_violation m

let sweep ?(programs = Ucp_workloads.Suite.all)
    ?(configs = Experiments.default_configs) ?(techs = Tech.all)
    ?(policies = [ Ucp_policy.Lru ]) ?(audit = Ucp_verify.Off)
    ?(refine = Ucp_refine.Mode.Nc) ?jobs ?chunk
    ?progress ?heartbeat ?timeout ?checkpoint ?(resume = false) () =
  (match timeout with
  | Some t when (not (Float.is_finite t)) || t <= 0.0 ->
    invalid_arg "Parallel.sweep: timeout must be a positive number of seconds"
  | Some _ | None -> ());
  (match heartbeat with
  | Some h when (not (Float.is_finite h)) || h <= 0.0 ->
    invalid_arg "Parallel.sweep: heartbeat must be a positive number of seconds"
  | Some _ | None -> ());
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let cases = Experiments.cases ~policies ~programs ~configs ~techs () in
  let models = Experiments.model_table configs techs in
  let memo = Experiments.Analysis_memo.create () in
  let n = Array.length cases in
  let journal =
    match checkpoint with
    | None -> None
    | Some path ->
      let fingerprint =
        Checkpoint.fingerprint ~policies ~refine ~programs ~configs ~techs ()
      in
      Some (Checkpoint.start ~path ~fingerprint ~resume)
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Checkpoint.close journal)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      (* cases already journaled by an interrupted run are replayed, not
         re-evaluated; [final] collects one outcome per input index *)
      let final :
          (Experiments.record * Pipeline.timings) Outcome.t option array =
        Array.make n None
      in
      let resumed = ref 0 in
      (match journal with
      | None -> ()
      | Some j ->
        let done_ = Checkpoint.completed j in
        Array.iteri
          (fun i c ->
            match Hashtbl.find_opt done_ (Experiments.case_id c) with
            | Some r ->
              incr resumed;
              final.(i) <- Some (Outcome.Ok (r, Pipeline.fresh_timings ()))
            | None -> ())
          cases);
      let todo =
        Array.of_list
          (List.filter (fun i -> Option.is_none final.(i)) (List.init n Fun.id))
      in
      (* grid-level completion count, fed by the finalize path and read
         by the heartbeat domain *)
      let hb_done = Atomic.make !resumed in
      (* per finalized case, serialized under a dedicated lock; a
         raising progress callback must not poison the pool and void
         the computed results, so the first exception disables further
         callbacks and the sweep completes normally *)
      let pmutex = Mutex.create () in
      let completed = ref 0 in
      let progress_dead = ref false in
      let note_done () =
        Mutex.lock pmutex;
        incr completed;
        let done_ = !completed + !resumed in
        Fun.protect
          ~finally:(fun () -> Mutex.unlock pmutex)
          (fun () ->
            Atomic.set hb_done done_;
            match progress with
            | None -> ()
            | Some cb ->
              if not !progress_dead then
                try cb ~done_ ~total:n
                with exn ->
                  progress_dead := true;
                  Ucp_obs.Log.warn
                    "progress callback raised %s; progress reporting disabled \
                     for the rest of this run"
                    (Printexc.to_string exn))
      in
      (* Evaluation and certification are separate work items on one
         pool: a case task analyzes/optimizes/simulates, then queues its
         deferred audit obligation (weight 0, so per-worker case counts
         tally each case once); fault hooks, invariant checks and
         journaling run only after the audit verdict is in — the same
         order the old inline audit observed. *)
      let wrap f =
        match f () with
        | v -> Outcome.Ok v
        | exception Deadline.Deadline_exceeded -> Outcome.Timed_out
        | exception Outcome.Invariant msg -> Outcome.Invariant_violation msg
        | exception (Fault.Killed_worker _ as e) -> raise e
        | exception exn ->
          let bt = Printexc.get_raw_backtrace () in
          Outcome.Failed
            {
              Outcome.exn_text = Printexc.to_string exn;
              backtrace = Printexc.raw_backtrace_to_string bt;
            }
      in
      (* each index is written by exactly one task, so [final] needs no
         lock; [note_done] serializes the user-visible side effects *)
      let set_final i o =
        final.(i) <- Some o;
        note_done ()
      in
      let finalize id (r : Experiments.record) timed =
        let r = Fault.corrupt id r in
        (match Experiments.check_invariants r with
        | Ok () -> ()
        | Error msg -> raise (Outcome.Invariant msg));
        (* journal only sound, complete records; failures are retried
           on resume *)
        Option.iter (fun j -> Checkpoint.record j ~id r) journal;
        (r, timed)
      in
      (* a killed worker domain must not sink the whole sweep: the pool
         replaces dead domains and the lost chunk's cases surface as
         structured failures below *)
      let pool = create ~respawn:true ~jobs () in
      let audit_task i id r input timed () =
        set_final i
          (wrap (fun () ->
               (* the obligation gets its own deadline window: time
                  spent queued behind other cases is not execution *)
               let deadline = Option.map Deadline.after timeout in
               let audit = Pipeline.finish_audit ?deadline ~timed input in
               finalize id { r with Experiments.audit } timed))
      in
      let case_task i =
        let c = cases.(i) in
        let id = Experiments.case_id c in
        let evaluated =
          wrap (fun () ->
              Ucp_obs.Trace.with_span ~name:"case"
                ~args:[ ("id", Ucp_obs.Trace.Str id) ] (fun () ->
                  observed_case (fun () ->
                      (* the deadline clock starts when the case starts
                         executing, not when the sweep was launched *)
                      let deadline = Option.map Deadline.after timeout in
                      Fault.apply_pre ?deadline id;
                      (* one timing accumulator per case: workers never
                         share one, so no synchronization is needed on
                         the hot path *)
                      let timed = Pipeline.fresh_timings () in
                      let model =
                        Hashtbl.find models
                          (c.Experiments.case_config, c.Experiments.case_tech)
                      in
                      let r, obligation =
                        Experiments.eval_case ?deadline ~timed ~memo
                          ~audit:(Ucp_verify.selects audit id)
                          ~corrupt_cert:(Fault.corrupt_cert id) ~refine
                          ~corrupt_refine:(Fault.corrupt_refine id) ~model c
                      in
                      (r, obligation, timed))))
        in
        match evaluated with
        | Outcome.Ok (r, Some input, timed) ->
          submit ~weight:0 pool (audit_task i id r input timed)
        | Outcome.Ok (r, None, timed) ->
          set_final i (wrap (fun () -> finalize id r timed))
        | Outcome.Failed f -> set_final i (Outcome.Failed f)
        | Outcome.Timed_out -> set_final i Outcome.Timed_out
        | Outcome.Invariant_violation m ->
          set_final i (Outcome.Invariant_violation m)
      in
      let stats = ref [||] in
      let pool_restarts = ref 0 in
      (* periodic liveness line on stderr: overall completion, sweep
         throughput and a run-rate ETA, so a hung worker is visible long
         before any per-case deadline fires *)
      let hb_stop = Atomic.make false in
      let hb_domain =
        Option.map
          (fun every ->
            Domain.spawn (fun () ->
                let started = Unix.gettimeofday () in
                let rec loop next =
                  if not (Atomic.get hb_stop) then begin
                    Unix.sleepf 0.05;
                    let now = Unix.gettimeofday () in
                    if now < next then loop next
                    else begin
                      let done_ = Atomic.get hb_done in
                      let elapsed = now -. started in
                      let rate =
                        if elapsed > 0.0 then
                          float_of_int (done_ - !resumed) /. elapsed
                        else 0.0
                      in
                      let eta =
                        if done_ >= n then "0s"
                        else if rate > 0.0 then
                          Printf.sprintf "%.0fs" (float_of_int (n - done_) /. rate)
                        else "?"
                      in
                      Ucp_obs.Log.out
                        (Printf.sprintf
                           "[heartbeat] %d/%d cases | %.2f case/s | elapsed %.0fs \
                            | eta %s"
                           done_ n rate elapsed eta);
                      loop (next +. every)
                    end
                  end
                in
                loop (started +. every)))
          heartbeat
      in
      Fun.protect
        ~finally:(fun () ->
          Atomic.set hb_stop true;
          Option.iter Domain.join hb_domain)
        (fun () ->
          Fun.protect
            ~finally:(fun () -> shutdown pool)
            (fun () ->
              let todo_n = Array.length todo in
              let chunk =
                match chunk with
                | Some c when c >= 1 -> c
                | Some _ ->
                  invalid_arg "Parallel.sweep: chunk must be positive"
                (* small chunks smooth out the order-of-magnitude spread
                   in per-case cost across programs; 4 chunks per worker
                   bounds the tail wait by ~1/4 of a worker's share *)
                | None -> max 1 (todo_n / (jobs * 4))
              in
              let lo = ref 0 in
              while !lo < todo_n do
                let l = !lo and h = min todo_n (!lo + chunk) in
                submit ~weight:(h - l) pool (fun () ->
                    for k = l to h - 1 do
                      case_task todo.(k)
                    done);
                lo := h
              done;
              wait pool;
              stats := worker_stats pool;
              pool_restarts := restarts pool));
      let timings = Pipeline.fresh_timings () in
      Array.iter
        (function
          | Some (Outcome.Ok (_, tm)) -> Pipeline.add_timings timings tm
          | Some _ | None -> ())
        final;
      let results =
        Array.to_list
          (Array.mapi
             (fun i c ->
               match final.(i) with
               | Some o -> (Experiments.case_id c, strip o)
               | None ->
                 (* the chunk task holding this case died with its
                    worker domain before [set_final] ran *)
                 ( Experiments.case_id c,
                   Outcome.Failed
                     {
                       Outcome.exn_text =
                         "case lost: worker domain died mid-task";
                       backtrace = "";
                     } ))
             cases)
      in
      {
        records =
          List.filter_map
            (fun (_, o) ->
              match o with Outcome.Ok r -> Some r | _ -> None)
            results;
        results;
        failures = List.filter (fun (_, o) -> not (Outcome.is_ok o)) results;
        resumed = !resumed;
        wall_s = Unix.gettimeofday () -. t0;
        timings;
        jobs;
        cases = n;
        workers = !stats;
        worker_restarts = !pool_restarts;
      })
