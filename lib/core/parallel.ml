module Tech = Ucp_energy.Tech

(* ------------------------------------------------------------------ *)
(* fixed-size domain pool with a chunked work queue *)

type pool = {
  mutex : Mutex.t;
  work : Condition.t;  (* a task was queued, or the pool closed *)
  idle : Condition.t;  (* the last pending task finished *)
  tasks : (unit -> unit) Queue.t;
  mutable pending : int;  (* queued or running tasks *)
  mutable closed : bool;
  mutable failure : exn option;  (* first task exception, re-raised by wait *)
  mutable workers : unit Domain.t list;
}

let default_jobs () =
  match Sys.getenv_opt "UCP_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None ->
      invalid_arg (Printf.sprintf "UCP_JOBS=%s: expected a positive integer" s))
  | None -> Domain.recommended_domain_count ()

let rec worker pool =
  Mutex.lock pool.mutex;
  let rec next () =
    if not (Queue.is_empty pool.tasks) then Some (Queue.pop pool.tasks)
    else if pool.closed then None
    else begin
      Condition.wait pool.work pool.mutex;
      next ()
    end
  in
  match next () with
  | None -> Mutex.unlock pool.mutex
  | Some task ->
    Mutex.unlock pool.mutex;
    let outcome = match task () with () -> None | exception exn -> Some exn in
    Mutex.lock pool.mutex;
    (match outcome with
    | Some _ when pool.failure = None -> pool.failure <- outcome
    | Some _ | None -> ());
    pool.pending <- pool.pending - 1;
    if pool.pending = 0 then Condition.broadcast pool.idle;
    Mutex.unlock pool.mutex;
    worker pool

let create ~jobs =
  if jobs < 1 then invalid_arg "Parallel.create: jobs must be positive";
  let pool =
    {
      mutex = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      tasks = Queue.create ();
      pending = 0;
      closed = false;
      failure = None;
      workers = [];
    }
  in
  pool.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let submit pool task =
  Mutex.lock pool.mutex;
  if pool.closed then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Parallel.submit: pool is shut down"
  end;
  Queue.push task pool.tasks;
  pool.pending <- pool.pending + 1;
  Condition.signal pool.work;
  Mutex.unlock pool.mutex

let wait pool =
  Mutex.lock pool.mutex;
  while pool.pending > 0 do
    Condition.wait pool.idle pool.mutex
  done;
  let failure = pool.failure in
  pool.failure <- None;
  Mutex.unlock pool.mutex;
  match failure with Some exn -> raise exn | None -> ()

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.closed <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.mutex;
  let workers = pool.workers in
  pool.workers <- [];
  List.iter Domain.join workers

(* ------------------------------------------------------------------ *)
(* deterministic parallel map *)

let map ?jobs ?chunk ?progress f items =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Parallel.map: jobs must be positive";
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ -> invalid_arg "Parallel.map: chunk must be positive"
      (* small chunks smooth out the order-of-magnitude spread in
         per-case cost across programs; 4 chunks per worker bounds the
         tail wait by ~1/4 of a worker's share *)
      | None -> max 1 (n / (jobs * 4))
    in
    (* results land at their input index, so the output order is the
       input order no matter which worker finishes when *)
    let results = Array.make n None in
    let pmutex = Mutex.create () in
    let completed = ref 0 in
    let pool = create ~jobs in
    Fun.protect
      ~finally:(fun () -> shutdown pool)
      (fun () ->
        let lo = ref 0 in
        while !lo < n do
          let l = !lo and h = min n (!lo + chunk) in
          submit pool (fun () ->
              for k = l to h - 1 do
                results.(k) <- Some (f items.(k))
              done;
              match progress with
              | None -> ()
              | Some cb ->
                (* serialized under its own lock: callbacks observe a
                   monotonically increasing done count and never run
                   concurrently *)
                Mutex.lock pmutex;
                completed := !completed + (h - l);
                let done_ = !completed in
                Fun.protect
                  ~finally:(fun () -> Mutex.unlock pmutex)
                  (fun () -> cb ~done_ ~total:n));
          lo := h
        done;
        wait pool);
    Array.map (function Some v -> v | None -> assert false) results
  end

(* ------------------------------------------------------------------ *)
(* the parallel evaluation sweep *)

type sweep = {
  records : Experiments.record list;
  wall_s : float;
  timings : Pipeline.timings;
  jobs : int;
  cases : int;
}

let sweep ?(programs = Ucp_workloads.Suite.all)
    ?(configs = Experiments.default_configs) ?(techs = Tech.all) ?jobs ?chunk
    ?progress () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let cases = Experiments.cases ~programs ~configs ~techs in
  let models = Experiments.model_table configs techs in
  let t0 = Unix.gettimeofday () in
  let out =
    map ~jobs ?chunk ?progress
      (fun (c : Experiments.case) ->
        (* one timing accumulator per case: workers never share one, so
           no synchronization is needed on the hot path *)
        let timed = Pipeline.fresh_timings () in
        let model =
          Hashtbl.find models (c.Experiments.case_config, c.Experiments.case_tech)
        in
        (Experiments.run_case ~timed ~model c, timed))
      cases
  in
  let timings = Pipeline.fresh_timings () in
  Array.iter (fun (_, tm) -> Pipeline.add_timings timings tm) out;
  {
    records = Array.to_list (Array.map fst out);
    wall_s = Unix.gettimeofday () -. t0;
    timings;
    jobs;
    cases = Array.length cases;
  }
