type failure = {
  exn_text : string;
  backtrace : string;
}

type 'a t =
  | Ok of 'a
  | Failed of failure
  | Timed_out
  | Invariant_violation of string

exception Invariant of string

let is_ok = function Ok _ -> true | Failed _ | Timed_out | Invariant_violation _ -> false

let label = function
  | Ok _ -> "ok"
  | Failed _ -> "failed"
  | Timed_out -> "timed_out"
  | Invariant_violation _ -> "invariant_violation"

let describe = function
  | Ok _ -> "ok"
  | Failed { exn_text; _ } -> "failed: " ^ exn_text
  | Timed_out -> "timed out"
  | Invariant_violation msg -> "invariant violation: " ^ msg
