(** Per-use-case outcomes of a fault-tolerant sweep.

    One thrown exception used to abort the whole run and discard every
    completed record; the sweep engine now demotes each failure to a
    structured outcome on its own case and finishes the rest. *)

type failure = {
  exn_text : string;  (** [Printexc.to_string] of the raised exception *)
  backtrace : string;  (** raw backtrace captured at the raise site *)
}

type 'a t =
  | Ok of 'a
  | Failed of failure
  | Timed_out  (** the case's deadline fired ([--timeout]) *)
  | Invariant_violation of string
      (** the case finished but its record violates a soundness
          invariant (see {!Experiments.check_invariants}) *)

exception Invariant of string
(** Internal signal mapped to {!Invariant_violation} by the sweep. *)

val is_ok : 'a t -> bool

val label : 'a t -> string
(** Machine-friendly tag: ["ok"], ["failed"], ["timed_out"],
    ["invariant_violation"]. *)

val describe : 'a t -> string
(** One-line human description (exception text for [Failed], the
    violated invariant for [Invariant_violation]). *)
