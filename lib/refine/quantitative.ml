(* Quantitative competitiveness bounds (Kahlen & Reineke style): turn
   a policy's competitiveness against an LRU reference configuration
   into a per-program miss-count guarantee, computed from the LRU
   must/may analysis the pipeline already knows how to run.

   For a policy with [competitiveness ~assoc = Some (va, ratio, add)]
   and a program whose references partition into cache sets, every
   execution satisfies, per set,

     misses_policy(assoc)  <=  ratio * misses_LRU(va) + add

   starting from cold caches on both sides (FIFO: Sleator-Tarjan
   k-competitiveness of any conservative policy, ratio = add = k;
   PLRU: the log2 k + 1 most recently used distinct blocks are
   resident, so every PLRU miss is an LRU(log2 k + 1) miss — ratio 1,
   additive 0).  Summing over the sets the program actually touches
   and bounding misses_LRU(va) by the LRU analysis' own
   [miss_count_bound] at associativity [va] gives a sound whole-run
   bound on the non-LRU policy's demand misses.

   The phase argument behind both inequalities breaks when prefetch
   fills interleave with demand accesses, so programs containing
   prefetch instructions get no quantitative bound ([None]). *)

module Vivu = Ucp_cfg.Vivu
module Program = Ucp_isa.Program
module Layout = Ucp_isa.Layout
module Config = Ucp_cache.Config
module Analysis = Ucp_wcet.Analysis

(* Distinct cache sets the program's own references map to: the
   per-set additive constant is only paid where the inequality is
   actually applied. *)
let sets_touched layout config =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun mb -> Hashtbl.replace seen (Config.set_of_mem_block config mb) ())
    (Layout.mem_block_ids layout);
  Hashtbl.length seen

let miss_bound ?deadline (a : Analysis.t) =
  let policy = Analysis.policy a in
  let config = Analysis.config a in
  match Ucp_policy.competitiveness policy ~assoc:config.Config.assoc with
  | None -> None
  | Some (va, ratio, add) ->
    let vivu = Analysis.vivu a in
    let program = Vivu.program vivu in
    if (not (Analysis.is_plain a)) || Program.prefetch_count program > 0 then
      None
    else begin
      let layout = Analysis.layout a in
      let ref_config =
        Config.make ~assoc:va ~block_bytes:config.Config.block_bytes
          ~capacity:(va * config.Config.block_bytes * config.Config.sets)
      in
      let lru = Analysis.run ?deadline ~policy:Ucp_policy.Lru vivu layout ref_config in
      let lru_bound = Analysis.miss_count_bound lru in
      Some ((ratio * lru_bound) + (add * sets_touched layout config))
    end
