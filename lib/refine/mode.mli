(** Classification-refinement mode ([--refine off|nc|full]).

    [Off] skips refinement entirely.  [Nc] runs the focused exact
    exploration only for the references the must/may fixpoint left
    [Not_classified] (the default for sweeps).  [Full] explores every
    reference and additionally cross-checks the exploration against
    the abstract classification — a contradiction there means the
    analysis itself is unsound and raises {!Explore.Unsound}. *)

type t = Off | Nc | Full

val all : t list
val to_string : t -> string

val of_string : string -> (t, string) result
(** Case-insensitive; accepts ["off"], ["nc"], ["full"]. *)

val pp : Format.formatter -> t -> unit
