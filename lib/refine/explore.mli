(** Focused exact classification refinement.

    After the must/may fixpoint, every reference left [Not_classified]
    gets a definitive verdict from the per-set product exploration
    ({!Product}); proven outcomes are fed back into the analysis and
    the WCET re-derived so the IPET ILP drops the reclaimed miss
    terms. *)

exception Unsound of string
(** Raised (in {!Mode.Full} only) when the exploration contradicts an
    abstract [Always_hit]/[Always_miss] — the abstract analysis itself
    is unsound for this case. *)

type verdict = Always_hit | Always_miss | Genuinely_unknown
(** Exploration verdict for one (reference, context): hits in every
    reachable product in-state, misses in every one, or both outcomes
    genuinely occur (also the graceful degradation when the state
    budget or an unreachable node instance forbids a conclusion). *)

type summary = {
  s_mode : Mode.t;
  s_nc_before : int;  (** Not_classified slots before refinement *)
  s_nc_after : int;  (** Not_classified slots remaining *)
  s_ah_gained : int;  (** slots newly proven Always_hit *)
  s_am_gained : int;  (** slots newly proven Always_miss *)
  s_tau : int;  (** refined [Wcet.tau_with_residual] *)
  s_miss_bound : int;  (** refined [Analysis.miss_count_bound] *)
  s_quant : int option;
      (** quantitative competitiveness miss bound
          ({!Quantitative.miss_bound}), when the policy has one *)
  s_states : int;  (** product pairs explored, summed over sets *)
  s_budget_hit : bool;
      (** at least one set's exploration hit the state budget and was
          discarded *)
  s_budget_exhausted : int;
      (** focus references demoted to {!Genuinely_unknown} because
          their set's exploration exhausted the budget — distinguishes
          "sound but imprecise" geometries (large counts, no finding)
          from genuinely suspicious ones in fuzz and sweep records *)
  s_digest : string;
      (** MD5 over mode, policy, every reclassification and the derived
          bounds — the audit recomputes the exploration and compares *)
}

val run :
  ?deadline:Ucp_util.Deadline.t ->
  ?budget:int ->
  ?corrupt:bool ->
  mode:Mode.t ->
  Ucp_wcet.Wcet.t ->
  (summary * Ucp_wcet.Wcet.t) option
(** Refine a computed WCET.  [None] for {!Mode.Off} or a non-plain
    analysis (pinned ways / hardware prefetcher: the product would
    model the wrong concrete semantics).  The returned [Wcet.t] is
    re-derived from the refined classifications; the caller's original
    is untouched.  [?budget] caps product pairs per cache set
    ({!Product.default_budget}); exhaustion degrades the whole set to
    [Genuinely_unknown], deterministically.  [?corrupt] injects the
    [corrupt-refine] fault: the first focus reference not proven
    always-hit is claimed [Always_hit] anyway — the audit's digest
    recomputation must catch the lie.
    @raise Unsound on a {!Mode.Full} cross-check contradiction.
    @raise Ucp_util.Deadline.Deadline_exceeded if [?deadline] passes. *)
