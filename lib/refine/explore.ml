(* Focused exact classification refinement (Touzeau-style): for every
   reference the abstract must/may fixpoint left Not_classified, walk
   the per-set product automaton ({!Product}) and give a definitive
   verdict — the reference hits in every reachable in-state
   (Always_hit), misses in every one (Always_miss), or genuinely both
   outcomes occur (Genuinely_unknown).  Reclassifications are fed back
   into the analysis as tightened flow facts via
   [Analysis.override_classif], and the WCET is re-derived so the IPET
   ILP drops the reclaimed miss terms.

   Soundness relies on two facts.  First, the product explores exactly
   the walk set (DAG + iteration edges from a cold entry) that the
   abstract fixpoint over-approximates, so "all reachable in-states
   hit" really covers every execution the WCET bound ranges over.
   Second, the per-slot transfer is shared code with the reachability
   sweep and mirrors the simulator's slot order, so the verdict pass
   cannot drift from either.  The converse containment gives a free
   self-test: an abstract Always_hit (resp. Always_miss) must be an
   exploration all-hit (all-miss) — [Mode.Full] checks this for every
   reference and raises {!Unsound} on contradiction. *)

module Vivu = Ucp_cfg.Vivu
module Program = Ucp_isa.Program
module Config = Ucp_cache.Config
module Analysis = Ucp_wcet.Analysis
module Classification = Ucp_wcet.Classification
module Wcet = Ucp_wcet.Wcet
module Deadline = Ucp_util.Deadline

exception Unsound of string

type verdict = Always_hit | Always_miss | Genuinely_unknown

type summary = {
  s_mode : Mode.t;
  s_nc_before : int;
  s_nc_after : int;
  s_ah_gained : int;
  s_am_gained : int;
  s_tau : int;
  s_miss_bound : int;
  s_quant : int option;
  s_states : int;
  s_budget_hit : bool;
  s_budget_exhausted : int;
  s_digest : string;
}

let refine_refs_total = lazy (Ucp_obs.Metrics.counter "refine_refs_total")

let refine_reclassified_total =
  lazy (Ucp_obs.Metrics.counter "refine_reclassified_total")

let refine_states_total = lazy (Ucp_obs.Metrics.counter "refine_states_total")

let refine_budget_exhausted_total =
  lazy (Ucp_obs.Metrics.counter "refine_budget_exhausted_total")

(* Deterministic digest over everything the refinement changed or
   concluded: the audit recomputes the exploration from the same
   inputs and compares digests, so any tampering with the reclassified
   facts (or the bounds derived from them) is caught byte-for-byte. *)
let digest ~mode ~policy ~overrides ~tau ~miss_bound ~quant ~states ~budget_hit
    ~budget_exhausted =
  let b = Buffer.create 256 in
  Buffer.add_string b "ucp-refine-v2\n";
  Buffer.add_string b (Mode.to_string mode);
  Buffer.add_char b '\n';
  Buffer.add_string b (Ucp_policy.to_string policy);
  Buffer.add_char b '\n';
  List.iter
    (fun (node, pos, cls) ->
      Buffer.add_string b
        (Printf.sprintf "%d:%d:%s\n" node pos (Classification.to_string cls)))
    overrides;
  Buffer.add_string b
    (Printf.sprintf "tau %d\nmiss %d\nquant %s\nstates %d\nbudget %b\ndemoted %d\n"
       tau miss_bound
       (match quant with None -> "-" | Some q -> string_of_int q)
       states budget_hit budget_exhausted);
  Digest.to_hex (Digest.string (Buffer.contents b))

let run_plain ?deadline ?budget ~corrupt ~mode (w : Wcet.t) =
  let analysis = w.Wcet.analysis in
  let vivu = Analysis.vivu analysis in
  let layout = Analysis.layout analysis in
  let config = Analysis.config analysis in
  let policy = Analysis.policy analysis in
  let program = Vivu.program vivu in
  let (module P : Ucp_policy.POLICY) = Ucp_policy.find policy in
  let assoc = config.Config.assoc in
  let n = Vivu.node_count vivu in
  (* Focus references ((node, pos) ascending, hence deterministic),
     grouped by the cache set their memory block maps to. *)
  let by_set : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 16 in
  let focus_all = ref [] in
  for node = n - 1 downto 0 do
    let nd = Vivu.node vivu node in
    for pos = Program.slots program nd.Vivu.block - 1 downto 0 do
      let interesting =
        match Analysis.classif analysis ~node ~pos with
        | Classification.Not_classified -> true
        | Classification.Always_hit | Classification.Always_miss ->
          mode = Mode.Full
      in
      if interesting then begin
        focus_all := (node, pos) :: !focus_all;
        let set =
          Config.set_of_mem_block config
            (Analysis.slot_mem_block analysis ~node ~pos)
        in
        match Hashtbl.find_opt by_set set with
        | Some l -> l := (node, pos) :: !l
        | None -> Hashtbl.add by_set set (ref [ (node, pos) ])
      end
    done
  done;
  let sets = List.sort compare (Hashtbl.fold (fun s _ acc -> s :: acc) by_set []) in
  let states = ref 0 in
  let budget_hit = ref false in
  let budget_exhausted = ref 0 in
  let overrides = ref [] in
  List.iter
    (fun set ->
      Deadline.check deadline;
      let r = Product.reachable ?deadline ?budget ~policy ~set vivu layout config in
      states := !states + r.Product.visited;
      if r.Product.exhausted then begin
        (* partial reachability proves nothing: every focus reference
           of this set degrades gracefully to Genuinely_unknown; count
           the Not_classified refs actually demoted so campaigns can
           tell "sound but imprecise" from "suspicious" geometries *)
        budget_hit := true;
        List.iter
          (fun (node, pos) ->
            if
              Analysis.classif analysis ~node ~pos
              = Classification.Not_classified
            then incr budget_exhausted)
          !(Hashtbl.find by_set set)
      end
      else begin
        (* regroup this set's focus refs per expanded node *)
        let per_node : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
        List.iter
          (fun (node, pos) ->
            match Hashtbl.find_opt per_node node with
            | Some l -> l := pos :: !l
            | None -> Hashtbl.add per_node node (ref [ pos ]))
          !(Hashtbl.find by_set set);
        Hashtbl.iter
          (fun node poss ->
            let poss = List.sort compare !poss in
            let nd = Vivu.node vivu node in
            match r.Product.per_node.(node) with
            | [] ->
              (* node instance unreachable in the product — no walk
                 executes it, nothing to conclude or contradict *)
              ()
            | in_states ->
              let all_hit = Hashtbl.create 8 and all_miss = Hashtbl.create 8 in
              List.iter
                (fun p ->
                  Hashtbl.replace all_hit p true;
                  Hashtbl.replace all_miss p true)
                poss;
              List.iter
                (fun cs ->
                  ignore
                    (Product.transfer (module P) ~assoc ~config ~layout ~program
                       ~set
                       ~on_access:(fun ~pos ~hit ->
                         if Hashtbl.mem all_hit pos then
                           if hit then Hashtbl.replace all_miss pos false
                           else Hashtbl.replace all_hit pos false)
                       ~block:nd.Vivu.block cs))
                in_states;
              List.iter
                (fun pos ->
                  let v =
                    if Hashtbl.find all_hit pos then Always_hit
                    else if Hashtbl.find all_miss pos then Always_miss
                    else Genuinely_unknown
                  in
                  match (Analysis.classif analysis ~node ~pos, v) with
                  | Classification.Not_classified, Always_hit ->
                    overrides :=
                      (node, pos, Classification.Always_hit) :: !overrides
                  | Classification.Not_classified, Always_miss ->
                    overrides :=
                      (node, pos, Classification.Always_miss) :: !overrides
                  | Classification.Not_classified, Genuinely_unknown -> ()
                  | Classification.Always_hit, Always_hit
                  | Classification.Always_miss, Always_miss ->
                    ()
                  | Classification.Always_hit, _ ->
                    raise
                      (Unsound
                         (Printf.sprintf
                            "abstract Always_hit at (%d,%d) under %s is not an \
                             exploration all-hit"
                            node pos
                            (Ucp_policy.to_string policy)))
                  | Classification.Always_miss, _ ->
                    raise
                      (Unsound
                         (Printf.sprintf
                            "abstract Always_miss at (%d,%d) under %s is not \
                             an exploration all-miss"
                            node pos
                            (Ucp_policy.to_string policy))))
                poss)
          per_node
      end)
    sets;
  let overrides = List.sort compare !overrides in
  (* corrupt-refine fault: claim Always_hit for the first focus
     reference that is NOT a proven all-hit — an unsound tightening the
     audit's digest recomputation must catch *)
  let overrides =
    if not corrupt then overrides
    else begin
      let ov = Hashtbl.create 16 in
      List.iter (fun (nd, p, c) -> Hashtbl.replace ov (nd, p) c) overrides;
      let final (nd, p) =
        match Hashtbl.find_opt ov (nd, p) with
        | Some c -> c
        | None -> Analysis.classif analysis ~node:nd ~pos:p
      in
      match
        List.find_opt (fun rp -> final rp <> Classification.Always_hit) !focus_all
      with
      | None -> overrides
      | Some (nd, p) ->
        Hashtbl.replace ov (nd, p) Classification.Always_hit;
        Hashtbl.fold (fun (nd, p) c acc -> (nd, p, c) :: acc) ov []
        |> List.sort compare
    end
  in
  let refined_analysis = Analysis.override_classif analysis overrides in
  let refined_w = Wcet.of_analysis refined_analysis w.Wcet.model in
  let ah0, am0, nc0 = Analysis.classification_counts analysis in
  let ah1, am1, nc1 = Analysis.classification_counts refined_analysis in
  let quant = Quantitative.miss_bound ?deadline analysis in
  let tau = Wcet.tau_with_residual refined_w in
  let miss_bound = Analysis.miss_count_bound refined_analysis in
  let dg =
    digest ~mode ~policy ~overrides ~tau ~miss_bound ~quant ~states:!states
      ~budget_hit:!budget_hit ~budget_exhausted:!budget_exhausted
  in
  Ucp_obs.Metrics.add (Lazy.force refine_refs_total) (List.length !focus_all);
  Ucp_obs.Metrics.add
    (Lazy.force refine_reclassified_total)
    (List.length overrides);
  Ucp_obs.Metrics.add (Lazy.force refine_states_total) !states;
  if !budget_hit then
    Ucp_obs.Metrics.incr (Lazy.force refine_budget_exhausted_total);
  let summary =
    {
      s_mode = mode;
      s_nc_before = nc0;
      s_nc_after = nc1;
      s_ah_gained = ah1 - ah0;
      s_am_gained = am1 - am0;
      s_tau = tau;
      s_miss_bound = miss_bound;
      s_quant = quant;
      s_states = !states;
      s_budget_hit = !budget_hit;
      s_budget_exhausted = !budget_exhausted;
      s_digest = dg;
    }
  in
  (summary, refined_w)

let run ?deadline ?budget ?(corrupt = false) ~mode (w : Wcet.t) =
  match (mode : Mode.t) with
  | Mode.Off -> None
  | Mode.Nc | Mode.Full ->
    if not (Analysis.is_plain w.Wcet.analysis) then
      (* pinned ways / hardware prefetchers change the concrete
         semantics the product models; refinement honestly declines
         rather than silently assuming plain transfer *)
      None
    else
      Ucp_obs.Trace.with_span ~name:"refine"
        ~args:[ ("mode", Ucp_obs.Trace.Str (Mode.to_string mode)) ]
        (fun () -> Some (run_plain ?deadline ?budget ~corrupt ~mode w))
