(** Per-set exact reachability: the product of the VIVU-expanded graph
    with the concrete cache automaton of one cache set (Touzeau-style
    focused collapse — the policies are set-partitioned, so the
    automaton only tracks the focus set's state). *)

type r = {
  per_node : Ucp_policy.cset list array;
      (** reachable in-states per expanded node, in discovery order *)
  visited : int;  (** total (node, state) product pairs discovered *)
  exhausted : bool;
      (** the state budget cut the sweep short — [per_node] is partial
          and must not be used for verdicts *)
}

val default_budget : int
(** Default per-set cap on product pairs (32768). *)

val transfer :
  (module Ucp_policy.POLICY) ->
  assoc:int ->
  config:Ucp_cache.Config.t ->
  layout:Ucp_isa.Layout.t ->
  program:Ucp_isa.Program.t ->
  set:int ->
  ?on_access:(pos:int -> hit:bool -> unit) ->
  block:int ->
  Ucp_policy.cset ->
  Ucp_policy.cset
(** Thread one set's state through a basic block's slots (demand
    access first, then the slot's prefetch fill — the same order as
    [Analysis.transfer] and the simulator).  [on_access] observes the
    hit verdict of every same-set demand access. *)

val reachable :
  ?deadline:Ucp_util.Deadline.t ->
  ?budget:int ->
  policy:Ucp_policy.id ->
  set:int ->
  Ucp_cfg.Vivu.t ->
  Ucp_isa.Layout.t ->
  Ucp_cache.Config.t ->
  r
(** Breadth-first product sweep from a cold entry along DAG and
    iteration edges — exactly the walk set the abstract fixpoint
    over-approximates.  Deterministic, including where the [budget]
    cuts it short.
    @raise Ucp_util.Deadline.Deadline_exceeded if [?deadline] passes
    (checked every 256 expansions). *)
