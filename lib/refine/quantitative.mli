(** Quantitative competitiveness bounds for non-LRU policies (Kahlen &
    Reineke style): a sound whole-run bound on the policy's demand
    misses derived from an LRU reference analysis via
    {!Ucp_policy.competitiveness}. *)

val sets_touched : Ucp_isa.Layout.t -> Ucp_cache.Config.t -> int
(** Number of distinct cache sets the program's references map to. *)

val miss_bound :
  ?deadline:Ucp_util.Deadline.t -> Ucp_wcet.Analysis.t -> int option
(** [miss_bound a] is [Some b] with
    [misses_policy <= b] on {e every} execution, where
    [b = ratio * lru_bound(va) + add * sets_touched] per the policy's
    competitiveness triple — or [None] when the policy has no
    competitiveness bound (LRU), the analysis is non-plain, or the
    program contains prefetch instructions (fills break the phase
    argument behind the inequality). *)
