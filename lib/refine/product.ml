(* Per-set exact reachability over the VIVU-expanded graph: the
   product of the expanded CFG with the concrete cache automaton of a
   single set, collapsed Touzeau-style — all three supported policies
   are set-partitioned, so references mapping to other sets cannot
   touch the tracked state and are simply skipped.  The walk set
   explored here (DAG plus iteration edges from a cold entry) is
   exactly the one the abstract fixpoint over-approximates, which is
   what makes the exploration's verdicts definitive: a reference that
   hits in every reachable in-state hits on every walk the WCET bound
   ranges over. *)

module Vivu = Ucp_cfg.Vivu
module Program = Ucp_isa.Program
module Layout = Ucp_isa.Layout
module Instr = Ucp_isa.Instr
module Config = Ucp_cache.Config
module Deadline = Ucp_util.Deadline

type r = {
  per_node : Ucp_policy.cset list array;
  visited : int;
  exhausted : bool;
}

let default_budget = 32768

(* Thread one set's concrete state through a basic block's slots,
   mirroring [Analysis.transfer] / the simulator slot order exactly:
   demand access first, then the slot's prefetch fill.  [on_access]
   sees the hit verdict of each same-set demand access — the explorer
   replays converged in-states through this very function, so the
   reachability sweep and the verdict pass can never disagree. *)
let transfer (module P : Ucp_policy.POLICY) ~assoc ~config ~layout ~program
    ~set ?on_access ~block cs0 =
  let cs = ref cs0 in
  let n_slots = Program.slots program block in
  for pos = 0 to n_slots - 1 do
    let s = Layout.mem_block layout ~block ~pos in
    if Config.set_of_mem_block config s = set then begin
      let cs', hit, _ = P.cset_access ~assoc !cs s in
      (match on_access with Some f -> f ~pos ~hit | None -> ());
      cs := cs'
    end;
    let instr = Program.slot_instr program ~block ~pos in
    match instr.Instr.kind with
    | Instr.Compute -> ()
    | Instr.Prefetch uid -> (
      match Layout.mem_block_of_uid layout uid with
      | Some tb when Config.set_of_mem_block config tb = set ->
        let cs', _ = P.cset_fill ~assoc !cs tb in
        cs := cs'
      | Some _ | None -> ())
  done;
  !cs

let reachable ?deadline ?(budget = default_budget) ~policy ~set vivu layout
    config =
  let (module P : Ucp_policy.POLICY) = Ucp_policy.find policy in
  let assoc = config.Config.assoc in
  let program = Vivu.program vivu in
  let n = Vivu.node_count vivu in
  let per_node : Ucp_policy.cset list array = Array.make n [] in
  let seen : (int * Ucp_policy.cset, unit) Hashtbl.t = Hashtbl.create 256 in
  let work = Queue.create () in
  let visited = ref 0 in
  let exhausted = ref false in
  let push node cs =
    if (not !exhausted) && not (Hashtbl.mem seen (node, cs)) then begin
      Hashtbl.add seen (node, cs) ();
      per_node.(node) <- cs :: per_node.(node);
      incr visited;
      if !visited > budget then exhausted := true
      else Queue.add (node, cs) work
    end
  in
  push (Vivu.entry vivu) (P.cset_empty ~assoc);
  let steps = ref 0 in
  while (not !exhausted) && not (Queue.is_empty work) do
    incr steps;
    if !steps land 255 = 0 then Deadline.check deadline;
    let node, cs = Queue.pop work in
    let nd = Vivu.node vivu node in
    let out =
      transfer (module P) ~assoc ~config ~layout ~program ~set
        ~block:nd.Vivu.block cs
    in
    List.iter (fun succ -> push succ out) (Vivu.dag_succ vivu node);
    List.iter (fun succ -> push succ out) (Vivu.iter_succ vivu node)
  done;
  (* FIFO worklist + insertion-order state lists keep the result (and
     the budget cutoff point) fully deterministic *)
  Array.iteri (fun i l -> per_node.(i) <- List.rev l) per_node;
  { per_node; visited = !visited; exhausted = !exhausted }
