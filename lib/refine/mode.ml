(* Refinement knob threaded from the CLI down to the explorer.  [Nc]
   focuses the exact exploration on the references the abstract
   analysis left Not_classified — the cheap mode the sweeps default
   to; [Full] also re-derives every already-classified reference and
   cross-checks it against the abstract verdict (a self-test of the
   whole analysis stack, not just a precision pass). *)

type t = Off | Nc | Full

let all = [ Off; Nc; Full ]
let to_string = function Off -> "off" | Nc -> "nc" | Full -> "full"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "off" -> Ok Off
  | "nc" -> Ok Nc
  | "full" -> Ok Full
  | other -> Error (Printf.sprintf "unknown refine mode %S" other)

let pp ppf m = Format.pp_print_string ppf (to_string m)
