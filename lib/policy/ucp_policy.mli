(** Replacement-policy subsystem: the concrete per-set update and a
    sound abstract must/may domain for each supported policy.

    Everything here operates on a {e single cache set} with the
    associativity passed explicitly; set indexing, block mapping and
    whole-cache state belong to [ucp_cache].  The abstract domains are
    Ferdinand-style age-bound sets: a must set maps blocks to an upper
    bound on their replacement age (membership guarantees a hit), a may
    set maps blocks to a lower bound (absence guarantees a miss).  What
    "age" measures is policy-specific:

    - {b LRU}: recency position.  The domains are the seed's Ferdinand
      must/may analyses, bit-identical.
    - {b FIFO}: insertion position.  A hit does not reorder, so aging
      is miss-driven; the transfer branches on the access's own
      classification ({!type:hint}) and is conservative when the
      outcome is unknown (must ages without inserting, may inserts
      without evicting).  Precision comes only from definite outcomes,
      hence {!needs_may} — the analysis co-runs the may domain even
      when the caller only wants always-hit classification.
    - {b PLRU}: tree-based pseudo-LRU, power-of-two associativity
      only.  Must is the LRU must domain at effective associativity
      [log2 assoc + 1] (the [log2 k + 1] most recently accessed
      distinct blocks of a [k]-way tree-PLRU set are guaranteed
      resident); may never evicts, because an unaccessed block can
      survive arbitrarily many PLRU misses — always-miss holds exactly
      for blocks that can never have been inserted. *)

type id = Lru | Fifo | Plru

type kind = Must | May
(** Which abstract domain an operation acts on. *)

type hint = Hit | Miss | Unknown
(** Classification of the access being transferred, fed back into the
    abstract update so policies with outcome-dependent aging (FIFO) can
    use it.  [Unknown] is always sound; LRU and PLRU ignore hints. *)

val all : id list
val to_string : id -> string

val of_string : string -> (id, string) result
(** Case-insensitive; accepts ["lru"], ["fifo"], ["plru"]. *)

val pp : Format.formatter -> id -> unit

type aset = (int * int) list
(** Abstract per-set state: [(block, age bound)] sorted by block. *)

type cset = Order of int list | Tree of { ways : int array; bits : int }
(** Concrete per-set state: a recency/insertion queue (youngest first;
    LRU and FIFO) or the PLRU way array plus packed tree bits. *)

val cset_contains : cset -> int -> bool
val cset_blocks : cset -> int list
val cset_copy : cset -> cset

(** The per-policy operation bundle. *)
module type POLICY = sig
  val id : id
  val name : string

  val needs_may : bool
  (** Whether the must domain only gains information when definite
      misses are known, so the analysis must co-run the may domain even
      when the caller did not ask for always-miss classification. *)

  val check_assoc : assoc:int -> unit
  (** @raise Invalid_argument if the policy cannot handle [assoc]
      (PLRU requires a power of two). *)

  val competitiveness : assoc:int -> (int * int * int) option
  (** Quantitative competitiveness against an LRU reference set
      (Kahlen/Reineke-style): [Some (va, ratio, add)] guarantees
      [misses_policy(assoc) <= ratio * misses_LRU(va) + add] for every
      per-set demand-access sequence from cold caches.  FIFO:
      [(k, k, k)] (Sleator-Tarjan conservativeness); PLRU:
      [(log2 k + 1, 1, 0)] (Reineke/Grund relative competitiveness);
      LRU: [None].  The bound does {e not} hold in the presence of
      prefetch fills — callers must gate on prefetch-free programs. *)

  val cset_empty : assoc:int -> cset

  val cset_access : assoc:int -> cset -> int -> cset * bool * int option
  (** [(state', hit, evicted)] after a demand access. *)

  val cset_fill : assoc:int -> cset -> int -> cset * int option
  (** Prefetch fill: like an access, without a hit/miss verdict. *)

  val cset_age : assoc:int -> cset -> int -> int option
  (** Policy-specific replacement age of a resident block (LRU/FIFO:
      queue position; PLRU: tree levels currently pointing at it). *)

  val aset_update : kind -> assoc:int -> hint:hint -> aset -> int -> aset
  (** Transfer a demand access under the given classification hint. *)

  val aset_fill : kind -> assoc:int -> hint:hint -> aset -> int -> aset
  (** Transfer a prefetch fill; the hint says whether the filled block
      is known resident ([Hit]), known absent ([Miss]) or unknown. *)

  val aset_join : kind -> aset -> aset -> aset
  (** Control-flow join: must = intersection with maximal age bounds,
      may = union with minimal age bounds. *)

  val aset_leq : kind -> aset -> aset -> bool
  (** Domain order with [aset_join] as an upper bound: [leq a b] iff
      every concrete set state described by [a] is described by [b]. *)

  (** {2 Flat age-vector view}

      Cacheaudit-style packed representation of the same domains: one
      [int array] over the whole memory-block universe, [ages.(mb)]
      holding the block's age bound and absence encoded as the
      saturation value {!flat_cap} (the policy/kind eviction
      threshold).  [members] lists the universe blocks mapping to the
      accessed block's cache set.  The transfers mutate [ages] in
      place (the caller copies) and are element-wise equivalent to
      their [aset_*] counterparts — qcheck-tested against them. *)

  val flat_cap : kind -> assoc:int -> int
  (** Age value that encodes "absent" / "evicted": LRU and FIFO use the
      associativity, the PLRU must domain its reduced effective
      associativity {!plru_must_assoc}. *)

  val fset_update :
    kind -> assoc:int -> hint:hint -> ages:int array -> members:int array -> int -> unit
  (** Flat counterpart of [aset_update]. *)

  val fset_fill :
    kind -> assoc:int -> hint:hint -> ages:int array -> members:int array -> int -> unit
  (** Flat counterpart of [aset_fill]. *)
end

val find : id -> (module POLICY)
val needs_may : id -> bool

val check_assoc : id -> assoc:int -> unit
(** @raise Invalid_argument if the policy cannot handle [assoc]. *)

val competitiveness : id -> assoc:int -> (int * int * int) option
(** Per-policy quantitative competitiveness triple [(va, ratio, add)];
    see {!POLICY.competitiveness}. *)

val plru_must_assoc : int -> int
(** Effective LRU associativity of the PLRU must domain:
    [log2 assoc + 1].  Exposed for tests and documentation. *)
