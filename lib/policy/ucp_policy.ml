(* Replacement-policy subsystem: concrete per-set updates and sound
   abstract must/may domains for LRU, FIFO and tree-based PLRU.

   This module sits below ucp_cache: everything here operates on a
   single cache set and takes the associativity explicitly.  Set
   indexing, block mapping and whole-cache state live in ucp_cache. *)

type id = Lru | Fifo | Plru
type kind = Must | May
type hint = Hit | Miss | Unknown

let all = [ Lru; Fifo; Plru ]

let to_string = function Lru -> "lru" | Fifo -> "fifo" | Plru -> "plru"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "lru" -> Ok Lru
  | "fifo" -> Ok Fifo
  | "plru" | "pseudo-lru" -> Ok Plru
  | other -> Error (Printf.sprintf "unknown replacement policy %S" other)

let pp ppf p = Fmt.string ppf (to_string p)

(* Abstract per-set state: an association list [(block, age bound)]
   sorted by block number.  For a must set the age is an upper bound on
   the block's replacement age (smaller = safer); for a may set it is a
   lower bound.  The meaning of "age" is policy-specific: LRU recency
   position, FIFO insertion position, or the PLRU effective-LRU bound. *)
type aset = (int * int) list

(* Concrete per-set state.  [Order] is a recency/insertion queue,
   youngest first, used by LRU and FIFO.  [Tree] is the PLRU way array
   plus the packed tree bits (internal nodes heap-indexed from 1; bit =
   direction the victim search takes: 0 left, 1 right). *)
type cset = Order of int list | Tree of { ways : int array; bits : int }

(* ---------------------------------------------------------------- *)
(* Shared concrete helpers                                          *)
(* ---------------------------------------------------------------- *)

let cset_contains cs mb =
  match cs with
  | Order l -> List.mem mb l
  | Tree t -> Array.exists (fun w -> w = mb) t.ways

let cset_blocks cs =
  match cs with
  | Order l -> l
  | Tree t -> Array.to_list t.ways |> List.filter (fun w -> w >= 0)

let cset_copy cs =
  match cs with
  | Order l -> Order l
  | Tree t -> Tree { ways = Array.copy t.ways; bits = t.bits }

(* Queue access shared by LRU and FIFO: [reorder] is whether a hit
   moves the block to the front (LRU yes, FIFO no). *)
let order_access ~reorder ~assoc lst mb =
  if List.mem mb lst then
    let lst' = if reorder then mb :: List.filter (fun x -> x <> mb) lst else lst in
    (lst', true, None)
  else if List.length lst < assoc then (mb :: lst, false, None)
  else
    let rec split_last acc = function
      | [] -> assert false
      | [ last ] -> (List.rev acc, last)
      | x :: tl -> split_last (x :: acc) tl
    in
    let kept, victim = split_last [] lst in
    (mb :: kept, false, Some victim)

let order_age lst mb =
  let rec go i = function
    | [] -> None
    | x :: tl -> if x = mb then Some i else go (i + 1) tl
  in
  match lst with [] -> None | l -> go 0 l

(* ---------------------------------------------------------------- *)
(* Shared abstract helpers                                          *)
(* ---------------------------------------------------------------- *)

(* Ferdinand-style LRU set update, byte-for-byte the formula the seed
   used in [Abstract.update_set]: the accessed block moves to age 0,
   entries younger than its old age (bound) age by one, entries at or
   beyond [assoc] fall out.  Identical for must and may sets. *)
let lru_update_set ~assoc entries mb =
  let old_age = try List.assoc mb entries with Not_found -> assoc in
  let aged =
    List.filter_map
      (fun (x, a) ->
        if x = mb then None
        else
          let a' = if a < old_age then a + 1 else a in
          if a' >= assoc then None else Some (x, a'))
      entries
  in
  List.sort compare ((mb, 0) :: aged)

(* Must join: intersection, keeping the maximal (weakest) age bound. *)
let join_must ea eb =
  List.filter_map
    (fun (x, a) ->
      match List.assoc_opt x eb with
      | Some b -> Some (x, max a b)
      | None -> None)
    ea

(* May join: union, keeping the minimal (weakest) age lower bound. *)
let join_may ea eb =
  let merged =
    List.fold_left
      (fun acc (x, b) ->
        match List.assoc_opt x acc with
        | Some a -> (x, min a b) :: List.remove_assoc x acc
        | None -> (x, b) :: acc)
      ea eb
  in
  List.sort compare merged

(* ---------------------------------------------------------------- *)
(* Flat age-vector helpers (cacheaudit-style packed domains)        *)
(* ---------------------------------------------------------------- *)

(* [lru_update_set] on the packed representation: ages are stored in a
   whole-universe int array with absence encoded as the saturation
   value [cap]; only the accessed block's set members can change.
   Entries younger than the accessed block's old age grow by one and
   saturate at [cap] (eviction); the accessed block moves to 0. *)
let flat_lru_update ~cap ages members mb =
  let old_age = ages.(mb) in
  Array.iter
    (fun x ->
      if x <> mb && ages.(x) < old_age then begin
        let a' = ages.(x) + 1 in
        ages.(x) <- (if a' >= cap then cap else a')
      end)
    members;
  ages.(mb) <- 0

(* [Fifo_policy.age_others ~drop:true] on the packed representation. *)
let flat_age_others ~cap ages members mb =
  Array.iter
    (fun x ->
      if x <> mb && ages.(x) < cap then begin
        let a' = ages.(x) + 1 in
        ages.(x) <- (if a' >= cap then cap else a')
      end)
    members

(* Domain order with [join] as upper bound: [leq a b] iff every
   concrete set state described by [a] is also described by [b].
   Must: [b]'s guarantees are implied by [a]'s (each entry of [b] is in
   [a] with an age bound no larger).  May: [a]'s possibilities are
   contained in [b]'s (each entry of [a] is in [b] with an age lower
   bound no larger). *)
let aset_leq kind a b =
  match kind with
  | Must ->
      List.for_all
        (fun (x, ab) ->
          match List.assoc_opt x a with Some aa -> aa <= ab | None -> false)
        b
  | May ->
      List.for_all
        (fun (x, aa) ->
          match List.assoc_opt x b with Some ab -> ab <= aa | None -> false)
        a

(* ---------------------------------------------------------------- *)
(* The policy signature                                             *)
(* ---------------------------------------------------------------- *)

module type POLICY = sig
  val id : id
  val name : string

  val needs_may : bool
  (** Whether the must domain only gains information when definite
      misses are known, so the analysis must co-run the may domain even
      when the caller did not ask for always-miss classification. *)

  val check_assoc : assoc:int -> unit
  (** @raise Invalid_argument if the policy cannot handle [assoc]. *)

  val competitiveness : assoc:int -> (int * int * int) option
  (** Quantitative competitiveness against an LRU reference set
      (Kahlen/Reineke-style): [Some (va, ratio, add)] means every
      per-set reference sequence (cold start, demand accesses only)
      satisfies [misses_policy(assoc) <= ratio * misses_LRU(va) + add].
      [None] when no useful bound exists (LRU itself). *)

  (* Concrete per-set machine *)
  val cset_empty : assoc:int -> cset
  val cset_access : assoc:int -> cset -> int -> cset * bool * int option
  (** [(state', hit, evicted)] after a demand access. *)

  val cset_fill : assoc:int -> cset -> int -> cset * int option
  (** Prefetch fill: like an access, without a hit/miss verdict. *)

  val cset_age : assoc:int -> cset -> int -> int option
  (** Policy-specific replacement age of a resident block (LRU/FIFO:
      queue position; PLRU: tree levels currently pointing at it). *)

  (* Abstract must/may domain *)
  val aset_update : kind -> assoc:int -> hint:hint -> aset -> int -> aset
  (** Transfer a demand access.  [hint] is the classification of this
      very access (from the analysis): policies whose aging depends on
      hit/miss (FIFO) exploit it; LRU and PLRU ignore it.  Must be sound
      for [Unknown] regardless. *)

  val aset_fill : kind -> assoc:int -> hint:hint -> aset -> int -> aset
  (** Transfer a prefetch fill; [hint] says whether the filled block is
      known resident ([Hit]), known absent ([Miss]), or unknown. *)

  val aset_join : kind -> aset -> aset -> aset
  val aset_leq : kind -> aset -> aset -> bool

  (* Flat age-vector view: packed whole-universe [ages] array, absence
     encoded as [flat_cap]; [members] = universe blocks of the accessed
     block's set.  Mutates [ages] in place; element-wise equivalent to
     the aset_* transfers. *)
  val flat_cap : kind -> assoc:int -> int

  val fset_update :
    kind -> assoc:int -> hint:hint -> ages:int array -> members:int array -> int -> unit

  val fset_fill :
    kind -> assoc:int -> hint:hint -> ages:int array -> members:int array -> int -> unit
end

(* ---------------------------------------------------------------- *)
(* LRU: the seed's Ferdinand domains behind the interface           *)
(* ---------------------------------------------------------------- *)

module Lru_policy : POLICY = struct
  let id = Lru
  let name = "lru"
  let needs_may = false
  let check_assoc ~assoc:_ = ()

  (* LRU is its own reference policy: a competitiveness bound against
     itself adds nothing over the direct must/may analysis. *)
  let competitiveness ~assoc:_ = None
  let cset_empty ~assoc:_ = Order []

  let cset_access ~assoc cs mb =
    match cs with
    | Order l ->
        let l', hit, v = order_access ~reorder:true ~assoc l mb in
        (Order l', hit, v)
    | Tree _ -> invalid_arg "Lru: PLRU tree state"

  let cset_fill ~assoc cs mb =
    let cs', _, v = cset_access ~assoc cs mb in
    (cs', v)

  let cset_age ~assoc:_ cs mb =
    match cs with
    | Order l -> order_age l mb
    | Tree _ -> invalid_arg "Lru: PLRU tree state"

  let aset_update _kind ~assoc ~hint:_ entries mb = lru_update_set ~assoc entries mb
  let aset_fill = aset_update

  let aset_join kind ea eb =
    match kind with Must -> join_must ea eb | May -> join_may ea eb

  let aset_leq = aset_leq
  let flat_cap _kind ~assoc = assoc

  let fset_update _kind ~assoc ~hint:_ ~ages ~members mb =
    flat_lru_update ~cap:assoc ages members mb

  let fset_fill = fset_update
end

(* ---------------------------------------------------------------- *)
(* FIFO: hits do not reorder; aging is miss-driven                  *)
(* ---------------------------------------------------------------- *)

(* Age bounds track the insertion position.  A concrete FIFO set only
   changes on a miss: the new block enters at position 0, every
   resident block's position grows by one, the block at [assoc - 1] is
   evicted.  A hit changes nothing.  The abstract transfer therefore
   branches on the access classification:

   - must (upper bounds): a definite hit leaves the set unchanged; a
     definite miss ages everything and inserts the block at 0; when the
     outcome is unknown we must take the worst of both branches — age
     every other entry (max of "unchanged" and "+1") and do NOT insert
     the accessed block (it enters only on the miss branch).  A block
     already guaranteed resident is a definite hit even under [Unknown].
   - may (lower bounds): a definite hit leaves the set unchanged; a
     definite miss ages every lower bound (a bound reaching [assoc]
     means definitely evicted) and inserts the block at 0; under an
     unknown outcome the union of the two branches keeps every other
     entry at its old bound (min of "unchanged" and "+1") and inserts
     the accessed block at 0 without evicting anyone.

   This is the standard conservative treatment of FIFO's non-LRU aging
   (cf. Grund & Reineke): precision comes only from definite outcomes,
   which is why [needs_may] forces the may domain on. *)
module Fifo_policy : POLICY = struct
  let id = Fifo
  let name = "fifo"
  let needs_may = true
  let check_assoc ~assoc:_ = ()

  (* FIFO is conservative (never evicts on a hit), so the classic
     Sleator-Tarjan argument makes it k-competitive against OPT(k) with
     additive constant k; OPT's misses are bounded by LRU(k)'s, giving
     misses_FIFO(k) <= k * misses_LRU(k) + k per set from cold. *)
  let competitiveness ~assoc = Some (assoc, assoc, assoc)
  let cset_empty ~assoc:_ = Order []

  let cset_access ~assoc cs mb =
    match cs with
    | Order l ->
        let l', hit, v = order_access ~reorder:false ~assoc l mb in
        (Order l', hit, v)
    | Tree _ -> invalid_arg "Fifo: PLRU tree state"

  let cset_fill ~assoc cs mb =
    let cs', _, v = cset_access ~assoc cs mb in
    (cs', v)

  let cset_age ~assoc:_ cs mb =
    match cs with
    | Order l -> order_age l mb
    | Tree _ -> invalid_arg "Fifo: PLRU tree state"

  let age_others ~assoc ~drop entries mb =
    List.filter_map
      (fun (x, a) ->
        if x = mb then None
        else
          let a' = a + 1 in
          if drop && a' >= assoc then None else Some (x, a'))
      entries

  let aset_update kind ~assoc ~hint entries mb =
    match (kind, hint) with
    | _, Hit -> entries
    | Must, Miss | May, Miss ->
        List.sort compare ((mb, 0) :: age_others ~assoc ~drop:true entries mb)
    | Must, Unknown ->
        if List.mem_assoc mb entries then entries
        else List.sort compare (age_others ~assoc ~drop:true entries mb)
    | May, Unknown ->
        let others = List.filter (fun (x, _) -> x <> mb) entries in
        List.sort compare ((mb, 0) :: others)

  (* A fill of a resident block leaves a FIFO queue unchanged and a
     fill of an absent block inserts it, exactly like an access. *)
  let aset_fill = aset_update

  let aset_join kind ea eb =
    match kind with Must -> join_must ea eb | May -> join_may ea eb

  let aset_leq = aset_leq
  let flat_cap _kind ~assoc = assoc

  let fset_update kind ~assoc ~hint ~ages ~members mb =
    let cap = assoc in
    match (kind, hint) with
    | _, Hit -> ()
    | _, Miss ->
      flat_age_others ~cap ages members mb;
      ages.(mb) <- 0
    | Must, Unknown -> if ages.(mb) >= cap then flat_age_others ~cap ages members mb
    | May, Unknown -> ages.(mb) <- 0

  let fset_fill = fset_update
end

(* ---------------------------------------------------------------- *)
(* PLRU: tree-based pseudo-LRU for power-of-two associativity       *)
(* ---------------------------------------------------------------- *)

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

(* In a [k]-way tree-PLRU set the [log2 k + 1] most recently accessed
   pairwise-distinct blocks are guaranteed resident (Reineke/Grund's
   relative-competitiveness bound, the classic aiT treatment).  The
   must domain is therefore the LRU must domain run at this reduced
   effective associativity. *)
let plru_must_assoc assoc = log2 assoc + 1

module Plru_policy : POLICY = struct
  let id = Plru
  let name = "plru"
  let needs_may = false

  let check_assoc ~assoc =
    if not (is_pow2 assoc) then
      invalid_arg
        (Printf.sprintf "Plru: associativity %d is not a power of two" assoc)

  (* The log2 k + 1 most recently used distinct blocks of a k-way
     tree-PLRU set are resident (Reineke/Grund), so every PLRU miss is
     an LRU(log2 k + 1) miss: 1-competitive, no additive constant. *)
  let competitiveness ~assoc = Some (plru_must_assoc assoc, 1, 0)

  let cset_empty ~assoc = Tree { ways = Array.make assoc (-1); bits = 0 }

  let find_way ways mb =
    let n = Array.length ways in
    let rec go w = if w >= n then None else if ways.(w) = mb then Some w else go (w + 1) in
    go 0

  (* Point every internal node on the path to way [w] away from it. *)
  let touch ~assoc bits w =
    let d = log2 assoc in
    let bits = ref bits and i = ref 1 in
    for j = d - 1 downto 0 do
      let wbit = (w lsr j) land 1 in
      (bits := if wbit = 0 then !bits lor (1 lsl !i) else !bits land lnot (1 lsl !i));
      i := (2 * !i) + wbit
    done;
    !bits

  (* Victim selection: an invalid way first (lowest index), otherwise
     follow the tree bits from the root. *)
  let victim_way ~assoc ways bits =
    let rec invalid w =
      if w >= assoc then None else if ways.(w) < 0 then Some w else invalid (w + 1)
    in
    match invalid 0 with
    | Some w -> w
    | None ->
        let d = log2 assoc in
        let i = ref 1 in
        for _ = 1 to d do
          i := (2 * !i) + ((bits lsr !i) land 1)
        done;
        !i - assoc

  let cset_access ~assoc cs mb =
    match cs with
    | Tree t -> (
        match find_way t.ways mb with
        | Some w -> (Tree { t with bits = touch ~assoc t.bits w }, true, None)
        | None ->
            let v = victim_way ~assoc t.ways t.bits in
            let victim = if t.ways.(v) < 0 then None else Some t.ways.(v) in
            let ways = Array.copy t.ways in
            ways.(v) <- mb;
            (Tree { ways; bits = touch ~assoc t.bits v }, false, victim))
    | Order _ -> invalid_arg "Plru: queue state"

  let cset_fill ~assoc cs mb =
    let cs', _, v = cset_access ~assoc cs mb in
    (cs', v)

  (* "Age" of a resident block: how many tree levels on its path point
     toward it — 0 means fully protected, [log2 assoc] means it is the
     next victim. *)
  let cset_age ~assoc cs mb =
    match cs with
    | Tree t -> (
        match find_way t.ways mb with
        | None -> None
        | Some w ->
            let d = log2 assoc in
            let n = ref 0 and i = ref 1 in
            for j = d - 1 downto 0 do
              let wbit = (w lsr j) land 1 in
              if (t.bits lsr !i) land 1 = wbit then incr n;
              i := (2 * !i) + wbit
            done;
            Some !n)
    | Order _ -> invalid_arg "Plru: queue state"

  (* Must: LRU domain at the reduced effective associativity.  May:
     PLRU gives no useful eviction bound (an unaccessed block can
     survive arbitrarily many misses), so the may domain only records
     which blocks were ever possibly inserted and never evicts —
     always-miss holds exactly for blocks that cannot be resident. *)
  let aset_update kind ~assoc ~hint:_ entries mb =
    match kind with
    | Must -> lru_update_set ~assoc:(plru_must_assoc assoc) entries mb
    | May ->
        let others = List.filter (fun (x, _) -> x <> mb) entries in
        List.sort compare ((mb, 0) :: others)

  let aset_fill = aset_update

  let aset_join kind ea eb =
    match kind with Must -> join_must ea eb | May -> join_may ea eb

  let aset_leq = aset_leq

  let flat_cap kind ~assoc =
    match kind with Must -> plru_must_assoc assoc | May -> assoc

  let fset_update kind ~assoc ~hint:_ ~ages ~members mb =
    match kind with
    | Must -> flat_lru_update ~cap:(plru_must_assoc assoc) ages members mb
    | May -> ages.(mb) <- 0

  let fset_fill = fset_update
end

(* ---------------------------------------------------------------- *)
(* Dispatch                                                         *)
(* ---------------------------------------------------------------- *)

let find : id -> (module POLICY) = function
  | Lru -> (module Lru_policy)
  | Fifo -> (module Fifo_policy)
  | Plru -> (module Plru_policy)

let needs_may p =
  let (module P) = find p in
  P.needs_may

let check_assoc p ~assoc =
  let (module P) = find p in
  P.check_assoc ~assoc

let competitiveness p ~assoc =
  let (module P) = find p in
  P.competitiveness ~assoc
