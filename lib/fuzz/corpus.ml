(* The on-disk reproducer corpus.

   One finding = one single-line JSON file carrying everything needed
   to replay it from scratch: the generator provenance (seed, size
   class), the use-case axes, the oracle and its normalized signature,
   the injected fault (if any) and the *shrunk* DSL term in the
   {!Dsl.to_string} s-expression format.  Files are written atomically
   (temp + rename) and named after the signature plus a content CRC, so
   depositing the same finding twice is idempotent and distinct
   programs tripping the same signature do not clobber each other. *)

module Dsl = Ucp_workloads.Dsl
module Json = Ucp_util.Json
module Crc32 = Ucp_util.Crc32
module Config = Ucp_cache.Config
module Tech = Ucp_energy.Tech
module Experiments = Ucp_core.Experiments
module Mode = Ucp_refine.Mode

type entry = {
  e_seed : int;
  e_cls : string;
  e_policy : Ucp_policy.id;
  e_config_id : string;
  e_tech : string;  (** technology label, e.g. ["45nm"] *)
  e_oracle : string;
  e_signature : string;
  e_detail : string;
  e_fault : Oracle.fault option;
  e_dsl : string;  (** shrunk program, {!Dsl.to_string} format *)
  e_shrink_steps : int;
}

let of_finding ~seed ~cls ~fault ~shrunk ~shrink_steps (t : Oracle.target)
    (f : Oracle.finding) =
  let body, procs = shrunk in
  {
    e_seed = seed;
    e_cls = cls;
    e_policy = t.Oracle.t_policy;
    e_config_id = t.Oracle.t_config_id;
    e_tech = t.Oracle.t_tech.Tech.label;
    e_oracle = f.Oracle.f_oracle;
    e_signature = f.Oracle.f_signature;
    e_detail = f.Oracle.f_detail;
    e_fault = fault;
    e_dsl = Dsl.to_string ~procs body;
    e_shrink_steps = shrink_steps;
  }

let to_json e =
  Json.Obj
    [
      ("seed", Json.Num (float_of_int e.e_seed));
      ("class", Json.Str e.e_cls);
      ("policy", Json.Str (Ucp_policy.to_string e.e_policy));
      ("config", Json.Str e.e_config_id);
      ("tech", Json.Str e.e_tech);
      ("oracle", Json.Str e.e_oracle);
      ("signature", Json.Str e.e_signature);
      ("detail", Json.Str e.e_detail);
      ( "fault",
        match e.e_fault with
        | None -> Json.Null
        | Some f -> Json.Str (Oracle.fault_to_string f) );
      ("dsl", Json.Str e.e_dsl);
      ("shrink_steps", Json.Num (float_of_int e.e_shrink_steps));
    ]

let to_line e = Json.to_string (to_json e)

let of_json j =
  let ( let* ) = Option.bind in
  let str k = Option.bind (Json.member k j) Json.to_str in
  let int k = Option.bind (Json.member k j) Json.to_int in
  let* e_seed = int "seed" in
  let* e_cls = str "class" in
  let* policy = str "policy" in
  let* e_policy = Result.to_option (Ucp_policy.of_string policy) in
  let* e_config_id = str "config" in
  let* e_tech = str "tech" in
  let* e_oracle = str "oracle" in
  let* e_signature = str "signature" in
  let* e_detail = str "detail" in
  let* e_fault =
    match Json.member "fault" j with
    | Some Json.Null | None -> Some None
    | Some (Json.Str s) -> Option.map Option.some (Oracle.fault_of_string s)
    | Some _ -> None
  in
  let* e_dsl = str "dsl" in
  let* e_shrink_steps = int "shrink_steps" in
  Some
    {
      e_seed;
      e_cls;
      e_policy;
      e_config_id;
      e_tech;
      e_oracle;
      e_signature;
      e_detail;
      e_fault;
      e_dsl;
      e_shrink_steps;
    }

let of_line line =
  match Json.parse line with
  | Error msg -> Error msg
  | Ok j -> (
    match of_json j with
    | Some e -> Ok e
    | None -> Error "corpus entry is missing or mistypes a field")

(* ------------------------------------------------------------------ *)
(* files *)

let slug s =
  let b = Bytes.of_string s in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' -> ()
      | _ -> Bytes.set b i '-')
    b;
  let s = Bytes.to_string b in
  if String.length s > 48 then String.sub s 0 48 else s

let filename e =
  let line = to_line e in
  Printf.sprintf "%s-%s.json" (slug e.e_signature) (Crc32.to_hex (Crc32.string line))

let save ~dir e =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (filename e) in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (to_line e);
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp path;
  path

let load path =
  let ic = open_in_bin path in
  let line = try input_line ic with End_of_file -> "" in
  close_in ic;
  of_line line

let list ~dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort String.compare
    |> List.map (Filename.concat dir)

(* ------------------------------------------------------------------ *)
(* replay *)

let find_config id =
  List.assoc_opt id Experiments.default_configs

let find_tech label = List.find_opt (fun t -> t.Tech.label = label) Tech.all

let target_of_entry e =
  match Dsl.parse e.e_dsl with
  | Error msg -> Error (Printf.sprintf "bad dsl: %s" msg)
  | Ok (body, procs) -> (
    match (find_config e.e_config_id, find_tech e.e_tech) with
    | None, _ -> Error (Printf.sprintf "unknown config %S" e.e_config_id)
    | _, None -> Error (Printf.sprintf "unknown tech %S" e.e_tech)
    | Some config, Some tech ->
      Ok
        {
          Oracle.t_name = Ucp_workloads.Generate.name ~seed:e.e_seed ~cls:e.e_cls;
          t_body = body;
          t_procs = procs;
          t_policy = e.e_policy;
          t_config_id = e.e_config_id;
          t_config = config;
          t_tech = tech;
        })

(* A replay succeeds when the stored oracle reproduces the stored
   signature: [Caught] for fault entries (the defence must still
   detect the injected lie), [Finding] for clean entries (the bug is
   still present — expected to *fail* on a fixed tree, which is what
   makes replay a regression pin both ways). *)
let replay ?deadline e =
  match target_of_entry e with
  | Error msg -> Error msg
  | Ok t -> (
    let verdict =
      match e.e_oracle with
      | "classification" -> Oracle.classification ?deadline t
      | "refine-full" -> fst (Oracle.refine_full ?deadline t)
      | _ -> Oracle.endtoend ?deadline ?fault:e.e_fault t
    in
    match (verdict, e.e_fault) with
    | Oracle.Caught f, Some _ when f.Oracle.f_signature = e.e_signature -> Ok ()
    | Oracle.Finding f, None when f.Oracle.f_signature = e.e_signature -> Ok ()
    | Oracle.Caught f, _ | Oracle.Finding f, _ ->
      Error
        (Printf.sprintf "signature mismatch: expected %s, got %s" e.e_signature
           f.Oracle.f_signature)
    | Oracle.Pass, Some _ ->
      Error "injected fault was not detected on replay"
    | Oracle.Pass, None -> Error "finding no longer reproduces")
