(* DSL-level delta debugging.

   A reproducer is only useful small: the generator finds failures in
   40-statement loop nests, the human debugging them wants the 3-
   statement core.  [run] greedily applies single-step reductions —
   drop a statement, hoist a structured body, shrink a constant — as
   long as the caller's predicate still fails, until no single step
   reproduces.  Everything is deterministic: candidates are enumerated
   in a fixed depth-first order and the first reproducing one is taken,
   so the same failing program shrinks to the same minimum on every
   machine.

   Every candidate offered to the predicate is {!Dsl.validate}-clean by
   construction and re-checked before use: reductions preserve
   [1 <= trips <= bound] (trips only ever shrink toward 1, bounds are
   never lowered below trips), never empty a loop body (a loop whose
   body would vanish is itself removed or hoisted instead), and keep
   [Far]/procedure well-formedness (dropping a procedure is only
   offered once no call site remains). *)

module Dsl = Ucp_workloads.Dsl
module Branch_model = Ucp_isa.Branch_model
module Deadline = Ucp_util.Deadline

type prog = Dsl.stmt list * (string * Dsl.stmt list) list

(* ------------------------------------------------------------------ *)
(* single-step reductions of a statement list, innermost last: the
   candidate order prefers big cuts (dropping whole statements) over
   local simplifications, which keeps the greedy loop short *)

(* all lists obtained by replacing the [i]th statement with zero or
   more statements *)
let splice stmts i repl =
  List.concat (List.mapi (fun j s -> if j = i then repl else [ s ]) stmts)

let simpler_model = function
  | Branch_model.Always_taken -> None
  | _ -> Some Branch_model.Always_taken

(* candidates for one statement, in order: structural hoists first,
   then in-place simplifications, then recursive descent *)
let rec stmt_candidates (s : Dsl.stmt) : Dsl.stmt list Seq.t =
  match s with
  | Dsl.Compute n ->
    if n > 1 then Seq.cons [ Dsl.Compute 0 ] (Seq.return [ Dsl.Compute (n / 2) ])
    else if n = 1 then Seq.return [ Dsl.Compute 0 ]
    else Seq.empty
  | Dsl.If (m, then_, else_) ->
    Seq.append
      (* hoist either branch *)
      (Seq.append (Seq.return then_) (Seq.return else_))
      (Seq.append
         (match simpler_model m with
         | Some m' -> Seq.return [ Dsl.If (m', then_, else_) ]
         | None -> Seq.empty)
         (Seq.append
            (Seq.map (fun t -> [ Dsl.If (m, t, else_) ]) (list_candidates then_))
            (Seq.map (fun e -> [ Dsl.If (m, then_, e) ]) (list_candidates else_))))
  | Dsl.Loop { bound; trips; body } ->
    Seq.append
      (Seq.return body) (* hoist: one straight-line iteration *)
      (Seq.append
         (if trips > 1 then
            Seq.cons
              [ Dsl.Loop { bound; trips = 1; body } ]
              (Seq.return [ Dsl.Loop { bound; trips = trips / 2; body } ])
          else Seq.empty)
         (Seq.append
            (if bound > trips then
               Seq.return [ Dsl.Loop { bound = trips; trips; body } ]
             else Seq.empty)
            (* loop bodies must stay nonempty: candidates emptying the
               body are filtered here, the hoist above covers them *)
            (Seq.filter_map
               (fun b -> if b = [] then None else Some [ Dsl.Loop { bound; trips; body = b } ])
               (list_candidates body))))
  | Dsl.Far body ->
    Seq.append (Seq.return body)
      (Seq.map (fun b -> [ Dsl.Far b ]) (list_candidates body))
  | Dsl.Call _ -> Seq.return [ Dsl.Compute 0 ]

(* candidates for a statement list: for each position, first drop the
   statement entirely, then its per-statement reductions *)
and list_candidates (stmts : Dsl.stmt list) : Dsl.stmt list Seq.t =
  let indexed = List.mapi (fun i s -> (i, s)) stmts in
  Seq.concat_map
    (fun (i, s) ->
      Seq.cons (splice stmts i []) (Seq.map (splice stmts i) (stmt_candidates s)))
    (List.to_seq indexed)

let candidates ((body, procs) : prog) : prog Seq.t =
  let calls stmts =
    let rec count acc = function
      | Dsl.Call n -> n :: acc
      | Dsl.Compute _ -> acc
      | Dsl.If (_, t, e) -> List.fold_left count (List.fold_left count acc t) e
      | Dsl.Loop { body; _ } | Dsl.Far body -> List.fold_left count acc body
    in
    List.fold_left count [] stmts
  in
  let body_cands = Seq.map (fun b -> (b, procs)) (list_candidates body) in
  (* drop a procedure no remaining statement calls *)
  let referenced =
    List.concat (calls body :: List.map (fun (_, b) -> calls b) procs)
  in
  let drop_procs =
    Seq.filter_map
      (fun (name, _) ->
        if List.mem name referenced then None
        else Some (body, List.filter (fun (n, _) -> n <> name) procs))
      (List.to_seq procs)
  in
  (* shrink a procedure body (procedures may call earlier ones, so the
     same list reductions apply; empties are fine — an empty procedure
     is just a no-op call target) *)
  let proc_cands =
    Seq.concat_map
      (fun (name, pbody) ->
        Seq.map
          (fun pb ->
            (body, List.map (fun (n, b) -> if n = name then (n, pb) else (n, b)) procs))
          (list_candidates pbody))
      (List.to_seq procs)
  in
  Seq.filter
    (fun (b, ps) -> Result.is_ok (Dsl.validate ~procs:ps b))
    (Seq.append body_cands (Seq.append drop_procs proc_cands))

(* ------------------------------------------------------------------ *)

let size ((body, procs) : prog) =
  let rec stmt acc = function
    | Dsl.Compute _ | Dsl.Call _ -> acc + 1
    | Dsl.If (_, t, e) -> List.fold_left stmt (List.fold_left stmt (acc + 1) t) e
    | Dsl.Loop { body; _ } | Dsl.Far body -> List.fold_left stmt (acc + 1) body
  in
  List.fold_left stmt
    (List.fold_left (fun acc (_, b) -> List.fold_left stmt acc b) 0 procs)
    body

let run ?deadline ?(max_steps = 10_000) ~still_fails (p : prog) : prog * int =
  let steps = ref 0 in
  let cur = ref p in
  (try
     let progress = ref true in
     while !progress && !steps < max_steps do
       progress := false;
       (* first reproducing candidate wins; restart enumeration from
          the reduced program (greedy ddmin) *)
       (match
          Seq.find
            (fun cand ->
              Deadline.check deadline;
              still_fails cand)
            (candidates !cur)
        with
       | Some cand ->
         cur := cand;
         incr steps;
         progress := true
       | None -> ())
     done
   with Deadline.Deadline_exceeded -> ());
  (!cur, !steps)
