(** Differential soundness oracles over generated programs.

    Each oracle checks one end-to-end claim of the reproduction on one
    {!target} and reports a {!verdict} instead of raising, so the
    campaign driver can count, deduplicate (by {!finding} signature)
    and shrink what it finds.  All oracles are deterministic functions
    of the target (simulator seeds are fixed), which is what makes
    record-for-record campaign replay possible. *)

type finding = {
  f_oracle : string;  (** which oracle fired *)
  f_signature : string;
      (** dedup key: oracle name + failure message with digit runs
          collapsed to [#], so the same bug at different slot numbers
          triages once *)
  f_detail : string;  (** the full failure message *)
}

type verdict =
  | Pass
  | Finding of finding  (** a soundness violation on a clean run *)
  | Caught of finding
      (** an injected fault detected by the defence it targets — the
          expected verdict of a chaos case *)

(** The corruption modes the end-to-end oracle can inject (the
    process-level faults — kill-worker, corrupt-store, stall-request —
    are driven by the campaign through {!Ucp_core.Parallel.Fault} and a
    live daemon instead). *)
type fault = Corrupt_cert | Corrupt_refine

val fault_to_string : fault -> string
(** ["corrupt-cert"] / ["corrupt-refine"] — matches the
    {!Ucp_core.Parallel.Fault} spec syntax. *)

val fault_of_string : string -> fault option

val normalize : string -> string
(** The signature normalization: digit runs become [#], output is
    truncated to 160 bytes. *)

val finding : oracle:string -> string -> finding

(** {2 Targets} *)

type target = {
  t_name : string;
  t_body : Ucp_workloads.Dsl.stmt list;
  t_procs : (string * Ucp_workloads.Dsl.stmt list) list;
  t_policy : Ucp_policy.id;
  t_config_id : string;
  t_config : Ucp_cache.Config.t;
  t_tech : Ucp_energy.Tech.t;
}
(** One fuzz case: a DSL program plus the use-case axes it runs
    under. *)

val of_gen :
  seed:int ->
  cls:string ->
  policy:Ucp_policy.id ->
  config_id:string ->
  config:Ucp_cache.Config.t ->
  tech:Ucp_energy.Tech.t ->
  target
(** Draw the target's program from {!Ucp_workloads.Generate}. *)

val with_prog : target -> Shrink.prog -> target
(** Same axes, different program — how the shrinker re-tests
    candidates. *)

val prog : target -> Shrink.prog

val compile : target -> Ucp_isa.Program.t

val case : target -> Ucp_core.Experiments.case

val case_id : target -> string

(** {2 The oracles} *)

val classification :
  ?deadline:Ucp_util.Deadline.t -> ?sim_seed:int -> target -> verdict
(** Abstract-vs-concrete differential: computes the per-slot meet of
    the abstract classification over all VIVU contexts, then replays
    the program through {!Ucp_sim.Simulator} under the same policy and
    fails on any always-hit slot that misses or always-miss slot that
    hits. *)

val endtoend :
  ?deadline:Ucp_util.Deadline.t ->
  ?fault:fault ->
  ?refine:Ucp_refine.Mode.t ->
  target ->
  verdict
(** The full pipeline under audit ({!Ucp_core.Experiments.run_case}
    with [~audit:true]): Theorem 1, the Eq. 5-9 runtime invariants, the
    IPET certificate, witness replay and refine-digest obligations.
    With [?fault], the corresponding corruption is injected and the
    verdict is [Caught] when the audit detects it — a completed run
    under an armed fault is itself a [Finding] (the lie escaped),
    except for a [Corrupt_refine] injection with nothing to corrupt
    (every focus reference already proven always-hit, decided by digest
    comparison), where the clean completion is the correct outcome and
    the verdict is [Pass]. *)

val refine_full :
  ?deadline:Ucp_util.Deadline.t -> target -> verdict * int
(** {!Ucp_refine.Explore.run} in {!Ucp_refine.Mode.Full}: the exact
    product exploration must never contradict an abstract AH/AM
    ({!Ucp_refine.Explore.Unsound} is the finding).  Also returns the
    summary's budget-exhaustion count ([s_budget_exhausted], 0 when
    exploration was skipped). *)

val serve_identity :
  ?deadline:Ucp_util.Deadline.t ->
  ?retries:int ->
  ?refine:Ucp_refine.Mode.t ->
  socket:string ->
  target ->
  verdict
(** Batch-vs-daemon differential: computes the case locally with
    {!Ucp_core.Experiments.run_case}, queries a running [ucp serve]
    daemon for the same case id, and requires the two JSON records to
    be byte-identical.  [?refine] must match the daemon's configured
    mode. *)
