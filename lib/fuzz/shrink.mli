(** Deterministic DSL-level delta debugging.

    Reduces a failing generated program to a minimal reproducer:
    {!run} greedily applies the first single-step reduction whose
    result still fails the caller's predicate, restarting until no
    single step reproduces — so the result is 1-minimal with respect to
    {!candidates}.  Candidate enumeration is a fixed depth-first order
    over the term, making shrinking a pure function of
    [(program, predicate)]: the same failure shrinks to the same
    minimum on every machine. *)

type prog = Ucp_workloads.Dsl.stmt list * (string * Ucp_workloads.Dsl.stmt list) list
(** [(body, procedures)] — the pair {!Ucp_workloads.Generate.gen}
    draws and {!Ucp_workloads.Dsl.compile} consumes. *)

val candidates : prog -> prog Seq.t
(** All single-step reductions, in the deterministic order {!run}
    tries them: per body position, dropping the statement, hoisting a
    structured body ([If] branch / one [Loop] iteration / [Far] body),
    simplifying in place (constants halve toward 0, [trips] toward 1,
    [bound] toward [trips], branch models toward [Always_taken], calls
    to [Compute 0]), then the same inside procedure bodies, plus
    dropping procedures that no remaining statement calls.  Every
    candidate satisfies {!Ucp_workloads.Dsl.validate} ([trips <= bound]
    and [Far]/loop-body well-formedness are preserved by
    construction). *)

val size : prog -> int
(** Statement count over body and procedures (shrinking decreases it
    strictly on every accepted step). *)

val run :
  ?deadline:Ucp_util.Deadline.t ->
  ?max_steps:int ->
  still_fails:(prog -> bool) ->
  prog ->
  prog * int
(** [run ~still_fails p] is [(minimal, accepted_steps)].  [still_fails]
    must return [true] when its argument still reproduces the original
    failure; it is only ever called on validate-clean candidates.  The
    result is the input itself when no candidate reproduces.  An
    expired [?deadline] (or [?max_steps], default 10000, exhausted)
    stops early and returns the best reduction so far — still a valid
    reproducer, just not necessarily 1-minimal. *)
