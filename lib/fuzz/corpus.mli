(** The replayable reproducer corpus: one shrunk finding per
    single-line JSON file.

    An {!entry} is a complete reproducer — generator provenance
    ([seed], size class), use-case axes, oracle, normalized signature,
    injected fault and the shrunk DSL term in the
    {!Ucp_workloads.Dsl.to_string} format — so a checked-in corpus pins
    both directions in CI: fault entries must still be {e caught},
    clean-bug entries must {e stop} reproducing once fixed. *)

type entry = {
  e_seed : int;  (** generator seed of the original (pre-shrink) program *)
  e_cls : string;  (** generator size class *)
  e_policy : Ucp_policy.id;
  e_config_id : string;
  e_tech : string;  (** technology label, e.g. ["45nm"] *)
  e_oracle : string;
  e_signature : string;
  e_detail : string;
  e_fault : Oracle.fault option;
      (** [Some _] for chaos entries whose replay must end in [Caught] *)
  e_dsl : string;  (** shrunk program, [Dsl.to_string] s-expression *)
  e_shrink_steps : int;
}

val of_finding :
  seed:int ->
  cls:string ->
  fault:Oracle.fault option ->
  shrunk:Shrink.prog ->
  shrink_steps:int ->
  Oracle.target ->
  Oracle.finding ->
  entry

val to_line : entry -> string
(** Single-line JSON (no trailing newline). *)

val of_line : string -> (entry, string) result

val filename : entry -> string
(** ["<signature slug>-<crc32 of line>.json"] — stable, content
    addressed, collision-safe across distinct programs with one
    signature. *)

val save : dir:string -> entry -> string
(** Atomic write (temp + rename) into [dir] (created if missing);
    returns the path.  Idempotent for identical entries. *)

val load : string -> (entry, string) result

val list : dir:string -> string list
(** All [.json] entries under [dir], sorted by name ([[]] if the
    directory does not exist). *)

val target_of_entry : entry -> (Oracle.target, string) result
(** Rebuild the oracle target from the {e shrunk} DSL stored in the
    entry (axes resolved against
    {!Ucp_core.Experiments.default_configs} and
    {!Ucp_energy.Tech.all}). *)

val replay : ?deadline:Ucp_util.Deadline.t -> entry -> (unit, string) result
(** Re-run the stored oracle on the stored program.  [Ok] when the
    recorded signature reproduces — [Caught] for fault entries,
    [Finding] for clean ones; anything else ([Pass], a different
    signature, an unparseable entry) is [Error] with the reason. *)
