(** The fuzzing campaign driver behind [ucp fuzz].

    A campaign is a pure function of its {!config}: the plan — which
    generator seeds, size classes and use-case axes each case gets, and
    which oracles run on it — is drawn up front from one SplitMix64
    stream seeded with [c_seed], and per-case JSONL lines carry no
    wall-clock data, so re-running the same configuration is
    record-for-record identical (only the summary line has [wall_s]).

    Cases run on the fault-isolated {!Ucp_core.Parallel.try_map} pool
    under a per-case deadline.  Findings are deduplicated by signature,
    shrunk with {!Shrink}, deposited in the {!Corpus} and emitted as
    their own JSONL lines. *)

type config = {
  c_seed : int;  (** campaign seed — the whole plan derives from it *)
  c_count : int;  (** generated programs to run *)
  c_classes : string list;  (** {!Ucp_workloads.Generate.classes} keys *)
  c_policies : Ucp_policy.id list;
  c_configs : (string * Ucp_cache.Config.t) list;
  c_techs : Ucp_energy.Tech.t list;
  c_refine : Ucp_refine.Mode.t;  (** refine mode of the end-to-end oracle *)
  c_refine_full_every : int;
      (** expected period of the (expensive) Mode.Full cross-check
          oracle; 0 disables it *)
  c_jobs : int option;  (** worker domains (default {!Ucp_core.Parallel.default_jobs}) *)
  c_timeout : float option;  (** per-case deadline, seconds *)
  c_corpus : string option;  (** deposit shrunk reproducers here *)
  c_chaos : int;  (** injected corrupt-cert/corrupt-refine legs to run *)
  c_serve : string option;
      (** when set: scratch directory for the live-daemon chaos leg
          (kill-worker, corrupt-store, stall-request against an
          in-process [ucp serve]) *)
}

val default : config
(** Seed 1, 200 cases, all classes and policies, the quick 12-config
    subset, 45nm, refine [Nc], refine-full every ~4th case, 60 s
    per-case deadline, no corpus, no chaos. *)

type summary = {
  s_cases : int;
  s_pass : int;
  s_findings : int;
      (** soundness findings, occurrences (includes escaped faults) *)
  s_distinct : int;  (** deduplicated signatures *)
  s_caught : int;  (** injected faults detected (chaos legs) *)
  s_escaped : int;  (** injected faults that were NOT detected *)
  s_timeouts : int;
  s_failed : int;  (** cases whose oracles themselves crashed *)
  s_budget_exhausted : int;
      (** summed refine budget-exhaustion demotions across cases *)
  s_corpus : string list;  (** reproducer paths deposited this run *)
  s_chaos_ok : int;  (** daemon chaos legs that healed *)
  s_chaos_total : int;
}

val run :
  ?emit:(string -> unit) ->
  ?progress:(done_:int -> total:int -> unit) ->
  config ->
  summary
(** Execute the campaign.  [?emit] receives each JSONL line (per-case
    records, finding records with shrunk reproducers, chaos records,
    and finally the one summary line carrying [wall_s] and the metrics
    snapshot). *)

val clean : summary -> bool
(** No findings, no escaped faults, no crashed oracles, every daemon
    chaos leg healed — the campaign verdict [ucp fuzz] exits 0 on. *)

val replay_corpus :
  ?emit:(string -> unit) -> dir:string -> unit -> int * (string * string) list
(** Replay every corpus entry under [dir]: [(ok_count, failures)] where
    each failure is [(path, reason)].  The CI pin: checked-in fault
    reproducers must keep being caught with the recorded signature. *)
