(* The differential oracles: every end-to-end soundness claim the
   reproduction makes, phrased as a check over one generated program.

   Each oracle returns a structured {!verdict} instead of raising, so
   the campaign runner can count, deduplicate and shrink findings.  A
   finding's [f_signature] is its deduplication key: the oracle name
   plus the failure message with digit runs collapsed, so two seeds
   tripping the same check on different slot numbers triage as one
   bug. *)

module Dsl = Ucp_workloads.Dsl
module Generate = Ucp_workloads.Generate
module Config = Ucp_cache.Config
module Tech = Ucp_energy.Tech
module Wcet = Ucp_wcet.Wcet
module Analysis = Ucp_wcet.Analysis
module Classification = Ucp_wcet.Classification
module Simulator = Ucp_sim.Simulator
module Vivu = Ucp_cfg.Vivu
module Program = Ucp_isa.Program
module Experiments = Ucp_core.Experiments
module Pipeline = Ucp_core.Pipeline
module Outcome = Ucp_core.Outcome
module Explore = Ucp_refine.Explore
module Mode = Ucp_refine.Mode
module Deadline = Ucp_util.Deadline

type finding = { f_oracle : string; f_signature : string; f_detail : string }

type verdict = Pass | Finding of finding | Caught of finding

type fault = Corrupt_cert | Corrupt_refine

let fault_to_string = function
  | Corrupt_cert -> "corrupt-cert"
  | Corrupt_refine -> "corrupt-refine"

let fault_of_string = function
  | "corrupt-cert" -> Some Corrupt_cert
  | "corrupt-refine" -> Some Corrupt_refine
  | _ -> None

(* digit runs and long hex runs -> '#': "slot (14,3) missed" matches
   "slot (7,1) missed", and two digest-mismatch messages with different
   MD5 fragments are the same bug *)
let normalize msg =
  let n = String.length msg in
  let b = Buffer.create n in
  let is_hex = function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false in
  let is_digit c = c >= '0' && c <= '9' in
  let i = ref 0 in
  while !i < n do
    if is_hex msg.[!i] then begin
      let j = ref !i in
      while !j < n && is_hex msg.[!j] do incr j done;
      let run = String.sub msg !i (!j - !i) in
      if !j - !i >= 8 || String.for_all is_digit run then Buffer.add_char b '#'
      else Buffer.add_string b run;
      i := !j
    end
    else begin
      Buffer.add_char b msg.[!i];
      incr i
    end
  done;
  let s = Buffer.contents b in
  if String.length s > 160 then String.sub s 0 160 else s

let finding ~oracle detail =
  { f_oracle = oracle; f_signature = oracle ^ ":" ^ normalize detail; f_detail = detail }

(* ------------------------------------------------------------------ *)
(* targets *)

type target = {
  t_name : string;
  t_body : Dsl.stmt list;
  t_procs : (string * Dsl.stmt list) list;
  t_policy : Ucp_policy.id;
  t_config_id : string;
  t_config : Config.t;
  t_tech : Tech.t;
}

let of_gen ~seed ~cls ~policy ~config_id ~config ~tech =
  let body, procs = Generate.stmts ~seed ~cls in
  {
    t_name = Generate.name ~seed ~cls;
    t_body = body;
    t_procs = procs;
    t_policy = policy;
    t_config_id = config_id;
    t_config = config;
    t_tech = tech;
  }

let with_prog t ((body, procs) : Shrink.prog) = { t with t_body = body; t_procs = procs }

let prog t = (t.t_body, t.t_procs)

let compile t = Dsl.compile ~procs:t.t_procs ~name:t.t_name t.t_body

let case t =
  {
    Experiments.case_program_name = t.t_name;
    case_program = compile t;
    case_config_id = t.t_config_id;
    case_config = t.t_config;
    case_tech = t.t_tech;
    case_policy = t.t_policy;
  }

let case_id t = Experiments.case_id (case t)

(* an oracle body that raises (other than a deadline) is itself a
   finding: generated programs must never crash the pipeline *)
let guard ~oracle f =
  try f () with
  | Deadline.Deadline_exceeded -> raise Deadline.Deadline_exceeded
  | exn -> Finding (finding ~oracle ("exception: " ^ Printexc.to_string exn))

(* ------------------------------------------------------------------ *)
(* oracle 1: abstract classification vs the concrete simulator *)

(* per static slot, the meet of the classifications over every VIVU
   context: only a slot that is always-hit in *every* context may claim
   "never misses" against a trace that does not know its context *)
let meet_classifications analysis program =
  let vivu = Analysis.vivu analysis in
  let tbl = Hashtbl.create 997 in
  for node = 0 to Vivu.node_count vivu - 1 do
    let nd = Vivu.node vivu node in
    let b = nd.Vivu.block in
    for pos = 0 to Program.slots program b - 1 do
      let c = Analysis.classif analysis ~node ~pos in
      match Hashtbl.find_opt tbl (b, pos) with
      | None -> Hashtbl.replace tbl (b, pos) c
      | Some prev ->
        if prev <> c then Hashtbl.replace tbl (b, pos) Classification.Not_classified
    done
  done;
  tbl

let classification ?deadline ?(sim_seed = 42) t =
  guard ~oracle:"classification" (fun () ->
      let program = compile t in
      let model = Pipeline.model t.t_config t.t_tech in
      let w =
        Wcet.compute ?deadline ~with_may:true ~policy:t.t_policy program t.t_config
          model
      in
      let tbl = meet_classifications w.Wcet.analysis program in
      let violation = ref None in
      let on_fetch ~block ~pos ~hit =
        if !violation = None then
          match Hashtbl.find_opt tbl (block, pos) with
          | Some Classification.Always_hit when not hit ->
            violation := Some (Printf.sprintf "always-hit slot (%d,%d) missed" block pos)
          | Some Classification.Always_miss when hit ->
            violation := Some (Printf.sprintf "always-miss slot (%d,%d) hit" block pos)
          | _ -> ()
      in
      ignore
        (Simulator.run ~seed:sim_seed ~policy:t.t_policy ~on_fetch program t.t_config
           model);
      match !violation with
      | None -> Pass
      | Some msg -> Finding (finding ~oracle:"classification" msg))

(* ------------------------------------------------------------------ *)
(* oracle 2: the full pipeline under audit — Theorem 1, Eq. 5-9, IPET
   certificates, witness replay, refine digests, plus the runtime
   invariant guard (ACET <= tau, misses <= bound) *)

(* did the corrupt-refine hook actually change anything?  The lie only
   lands when some focus reference is not already proven always-hit;
   otherwise the injection is a no-op and a clean run is the correct
   outcome.  Decided by digest comparison of the exploration with and
   without the hook — the same digests the audit itself compares. *)
let refine_fault_applies ?deadline ~refine t =
  let program = compile t in
  let model = Pipeline.model t.t_config t.t_tech in
  let w =
    Wcet.compute ?deadline ~with_may:true ~policy:t.t_policy program t.t_config model
  in
  match
    (Explore.run ?deadline ~mode:refine w, Explore.run ?deadline ~mode:refine ~corrupt:true w)
  with
  | Some (s0, _), Some (s1, _) -> s0.Explore.s_digest <> s1.Explore.s_digest
  | _ -> false

let endtoend ?deadline ?fault ?(refine = Mode.Nc) t =
  let oracle = "audit" in
  guard ~oracle (fun () ->
      let c = case t in
      let model = Pipeline.model t.t_config t.t_tech in
      let corrupt_cert = fault = Some Corrupt_cert in
      let corrupt_refine = fault = Some Corrupt_refine in
      match
        Experiments.run_case ?deadline ~audit:true ~corrupt_cert ~refine
          ~corrupt_refine ~model c
      with
      | r -> (
        match fault with
        | Some Corrupt_refine when not (refine_fault_applies ?deadline ~refine t) ->
          (* nothing to corrupt on this program: the clean completion is
             correct, not an escape *)
          Pass
        | Some f ->
          (* the injected lie survived every obligation: that is the
             finding, and a grave one *)
          Finding
            (finding ~oracle
               (Printf.sprintf "injected %s escaped the audit" (fault_to_string f)))
        | None -> (
          match Experiments.check_invariants r with
          | Ok () -> Pass
          | Error msg -> Finding (finding ~oracle ("invariant: " ^ msg))))
      | exception Outcome.Invariant msg -> (
        match fault with
        | Some _ -> Caught (finding ~oracle msg)
        | None -> Finding (finding ~oracle msg))
      | exception Explore.Unsound msg ->
        Finding (finding ~oracle ("refine-unsound: " ^ msg)))

(* ------------------------------------------------------------------ *)
(* oracle 3: Mode.Full exploration cross-check — the exact product
   automaton must never contradict an abstract AH/AM *)

let refine_full ?deadline t =
  let oracle = "refine-full" in
  let budget_exhausted = ref 0 in
  let v =
    guard ~oracle (fun () ->
        let program = compile t in
        let model = Pipeline.model t.t_config t.t_tech in
        let w =
          Wcet.compute ?deadline ~with_may:true ~policy:t.t_policy program t.t_config
            model
        in
        match Explore.run ?deadline ~mode:Mode.Full w with
        | None -> Pass
        | Some (s, _) ->
          budget_exhausted := s.Explore.s_budget_exhausted;
          Pass
        | exception Explore.Unsound msg -> Finding (finding ~oracle msg))
  in
  (v, !budget_exhausted)

(* ------------------------------------------------------------------ *)
(* oracle 4: the analysis service must answer byte-identically to a
   batch sweep for the same case *)

let serve_identity ?deadline ?(retries = 8) ?(refine = Mode.Nc) ~socket t =
  let oracle = "serve-identity" in
  guard ~oracle (fun () ->
      let c = case t in
      let id = Experiments.case_id c in
      let model = Pipeline.model t.t_config t.t_tech in
      let local = Experiments.run_case ?deadline ~refine ~model c in
      let expected = Ucp_core.Report.record_json local in
      let module P = Ucp_serve.Protocol in
      match Ucp_serve.Client.query ~retries ~socket (P.Case { id; trace_id = None }) with
      | Ok (P.Record { json; _ }) ->
        if String.equal json expected then Pass
        else
          Finding
            (finding ~oracle
               (Printf.sprintf "daemon answer differs from batch record for %s" id))
      | Ok (P.Failed { message; _ }) ->
        Finding (finding ~oracle (Printf.sprintf "daemon failed %s: %s" id message))
      | Ok (P.Retry { reason; _ }) ->
        Finding (finding ~oracle (Printf.sprintf "daemon kept shedding %s: %s" id reason))
      | Ok (P.Health_stats _ | P.Metrics_text _ | P.Bye) ->
        Finding (finding ~oracle "daemon returned an unexpected response kind")
      | Error msg ->
        Finding (finding ~oracle (Printf.sprintf "daemon unreachable for %s: %s" id msg)))
