(* The campaign driver: plan, fan out, shrink, deposit, summarize.

   A campaign is a pure function of its configuration: the plan (which
   seeds, which size classes, which use-case axes, which oracles per
   case) is drawn up front from one SplitMix64 stream, the oracles
   themselves are deterministic, and per-case JSONL lines carry no
   wall-clock data — so re-running the same seed is record-for-record
   identical, which is what CI diffs.  Only the summary line carries
   timings and the metrics snapshot.

   Cases run on the fault-isolated {!Parallel.try_map} pool with a
   per-case deadline; findings are deduplicated by signature and shrunk
   sequentially in the parent (shrinking re-runs the failing oracle, so
   it must not race the pool), then deposited in the corpus.

   Chaos mode appends injected-fault legs: corrupt-cert and
   corrupt-refine through the pipeline's own hooks (the audit must
   catch them — the catch is shrunk and deposited like a finding), and
   kill-worker / corrupt-store / stall-request through {!Fault} against
   a live in-process daemon, whose answers must stay byte-identical to
   batch records throughout. *)

module Dsl = Ucp_workloads.Dsl
module Generate = Ucp_workloads.Generate
module Config = Ucp_cache.Config
module Tech = Ucp_energy.Tech
module Rng = Ucp_util.Rng
module Json = Ucp_util.Json
module Deadline = Ucp_util.Deadline
module Experiments = Ucp_core.Experiments
module Parallel = Ucp_core.Parallel
module Outcome = Ucp_core.Outcome
module Fault = Ucp_core.Fault
module Mode = Ucp_refine.Mode
module Metrics = Ucp_obs.Metrics
module Report = Ucp_core.Report

(* instruments ride the PR-5 registry into the summary line *)
let m_cases = Metrics.counter "fuzz_cases_total"
let m_findings = Metrics.counter "fuzz_findings_total"
let m_caught = Metrics.counter "fuzz_caught_total"
let m_timeouts = Metrics.counter "fuzz_timeouts_total"
let m_shrink_steps = Metrics.counter "fuzz_shrink_steps_total"
let m_budget_exhausted = Metrics.counter "fuzz_budget_exhausted_total"

type config = {
  c_seed : int;
  c_count : int;
  c_classes : string list;
  c_policies : Ucp_policy.id list;
  c_configs : (string * Config.t) list;
  c_techs : Tech.t list;
  c_refine : Mode.t;
  c_refine_full_every : int;
  c_jobs : int option;
  c_timeout : float option;
  c_corpus : string option;
  c_chaos : int;
  c_serve : string option;
}

let default =
  {
    c_seed = 1;
    c_count = 200;
    c_classes = List.map fst Generate.classes;
    c_policies = Ucp_policy.all;
    c_configs = Experiments.quick_configs;
    c_techs = [ Tech.nm45 ];
    c_refine = Mode.Nc;
    c_refine_full_every = 4;
    c_jobs = None;
    c_timeout = Some 60.;
    c_corpus = None;
    c_chaos = 0;
    c_serve = None;
  }

(* ------------------------------------------------------------------ *)
(* planning *)

type planned = {
  p_seed : int;
  p_cls : string;
  p_target : Oracle.target;
  p_refine_full : bool;
}

let pow2 n = n > 0 && n land (n - 1) = 0

let pick rng l =
  match l with
  | [] -> invalid_arg "Campaign.pick: empty axis"
  | l -> List.nth l (Rng.int rng (List.length l))

let plan cfg =
  let rng = Rng.create cfg.c_seed in
  Array.init cfg.c_count (fun _ ->
      let p_seed = Rng.int rng 1_000_000 in
      let p_cls = pick rng cfg.c_classes in
      let config_id, config = pick rng cfg.c_configs in
      let policy = pick rng cfg.c_policies in
      (* PLRU rejects non-power-of-two associativity; redraws would
         shift the stream, so degrade deterministically instead *)
      let policy =
        if policy = Ucp_policy.Plru && not (pow2 config.Config.assoc) then
          Ucp_policy.Lru
        else policy
      in
      let tech = pick rng cfg.c_techs in
      let p_refine_full =
        cfg.c_refine_full_every > 0 && Rng.int rng cfg.c_refine_full_every = 0
      in
      {
        p_seed;
        p_cls;
        p_target =
          Oracle.of_gen ~seed:p_seed ~cls:p_cls ~policy ~config_id ~config ~tech;
        p_refine_full;
      })

(* ------------------------------------------------------------------ *)
(* one case *)

type case_result = {
  r_verdicts : (string * Oracle.verdict) list;
  r_budget_exhausted : int;
}

let run_case cfg p =
  let deadline = Option.map Deadline.after cfg.c_timeout in
  let v_class = Oracle.classification ?deadline p.p_target in
  let v_audit = Oracle.endtoend ?deadline ~refine:cfg.c_refine p.p_target in
  let verdicts = [ ("classification", v_class); ("audit", v_audit) ] in
  if p.p_refine_full then begin
    let v_full, exhausted = Oracle.refine_full ?deadline p.p_target in
    {
      r_verdicts = verdicts @ [ ("refine-full", v_full) ];
      r_budget_exhausted = exhausted;
    }
  end
  else { r_verdicts = verdicts; r_budget_exhausted = 0 }

(* ------------------------------------------------------------------ *)
(* shrinking *)

let rerun_oracle ?deadline ~oracle ~fault t =
  match oracle with
  | "classification" -> Oracle.classification ?deadline t
  | "refine-full" -> fst (Oracle.refine_full ?deadline t)
  | _ -> Oracle.endtoend ?deadline ?fault t

(* the predicate under which a candidate still reproduces: the same
   oracle yields the same signature (Finding on clean runs, Caught on
   fault runs) *)
let still_fails ?deadline ~fault (t : Oracle.target) (f : Oracle.finding) cand =
  let t' = Oracle.with_prog t cand in
  match rerun_oracle ?deadline ~oracle:f.Oracle.f_oracle ~fault t' with
  | Oracle.Finding f' when fault = None ->
    f'.Oracle.f_signature = f.Oracle.f_signature
  | Oracle.Caught f' when fault <> None ->
    f'.Oracle.f_signature = f.Oracle.f_signature
  | _ -> false

let shrink_finding ?(shrink_budget = 60.) ~fault t f =
  let deadline = Deadline.after shrink_budget in
  let case_deadline = Deadline.after 10. in
  Shrink.run ~deadline
    ~still_fails:(fun cand ->
      try still_fails ~deadline:case_deadline ~fault t f cand
      with Deadline.Deadline_exceeded ->
        Deadline.check (Some deadline);
        false)
    (Oracle.prog t)

(* ------------------------------------------------------------------ *)
(* JSONL *)

let verdict_label = function
  | Oracle.Pass -> "pass"
  | Oracle.Finding _ -> "finding"
  | Oracle.Caught _ -> "caught"

let case_line p (outcome : case_result Outcome.t) =
  let base =
    [
      ("fuzz_case", Json.Str (Oracle.case_id p.p_target));
      ("gen_seed", Json.Num (float_of_int p.p_seed));
      ("gen_shape", Json.Str p.p_cls);
    ]
  in
  let rest =
    match outcome with
    | Outcome.Ok r ->
      [
        ( "verdicts",
          Json.Obj
            (List.map (fun (o, v) -> (o, Json.Str (verdict_label v))) r.r_verdicts)
        );
      ]
      @
      if r.r_budget_exhausted > 0 then
        [ ("budget_exhausted", Json.Num (float_of_int r.r_budget_exhausted)) ]
      else []
    | o -> [ ("outcome", Json.Str (Outcome.label o)) ]
  in
  Json.to_string (Json.Obj (base @ rest))

let finding_line ?corpus_path ~fault ~shrunk ~shrink_steps p (f : Oracle.finding) =
  let body, procs = shrunk in
  Json.to_string
    (Json.Obj
       ([
          ("fuzz_finding", Json.Str f.Oracle.f_signature);
          ("oracle", Json.Str f.Oracle.f_oracle);
          ("detail", Json.Str f.Oracle.f_detail);
          ("fuzz_case", Json.Str (Oracle.case_id p.p_target));
          ("gen_seed", Json.Num (float_of_int p.p_seed));
          ("gen_shape", Json.Str p.p_cls);
          ( "fault",
            match fault with
            | None -> Json.Null
            | Some ft -> Json.Str (Oracle.fault_to_string ft) );
          ("shrunk_dsl", Json.Str (Dsl.to_string ~procs body));
          ("shrink_steps", Json.Num (float_of_int shrink_steps));
          ("shrunk_size", Json.Num (float_of_int (Shrink.size shrunk)));
        ]
       @
       match corpus_path with
       | None -> []
       | Some path -> [ ("corpus", Json.Str path) ]))

let metrics_json () =
  Json.Obj
    (List.filter_map
       (fun (name, v) ->
         match v with
         | Metrics.Counter n -> Some (name, Json.Num (float_of_int n))
         | Metrics.Fcounter f | Metrics.Gauge f -> Some (name, Json.Num f)
         | Metrics.Histogram _ -> None)
       (Metrics.dump ()))

(* ------------------------------------------------------------------ *)
(* the batch phase *)

type summary = {
  s_cases : int;
  s_pass : int;
  s_findings : int;  (** soundness findings (post-dedup occurrences count too) *)
  s_distinct : int;  (** deduplicated signatures *)
  s_caught : int;  (** injected faults detected, chaos legs included *)
  s_escaped : int;  (** injected faults NOT detected — always a failure *)
  s_timeouts : int;
  s_failed : int;
  s_budget_exhausted : int;
  s_corpus : string list;  (** corpus paths deposited this run *)
  s_chaos_ok : int;
  s_chaos_total : int;
}

let deposit cfg ~fault ~shrunk ~shrink_steps p (f : Oracle.finding) =
  match cfg.c_corpus with
  | None -> None
  | Some dir ->
    let entry =
      Corpus.of_finding ~seed:p.p_seed ~cls:p.p_cls ~fault ~shrunk ~shrink_steps
        p.p_target f
    in
    Some (Corpus.save ~dir entry)

(* shrink + deposit + emit one deduplicated finding *)
let process_finding cfg ~emit ~fault p f =
  let shrunk, shrink_steps = shrink_finding ~fault p.p_target f in
  Metrics.add m_shrink_steps shrink_steps;
  let corpus_path = deposit cfg ~fault ~shrunk ~shrink_steps p f in
  emit (finding_line ?corpus_path ~fault ~shrunk ~shrink_steps p f);
  corpus_path

let run_batch cfg ~emit ~progress plan =
  let outcomes =
    Parallel.try_map ?jobs:cfg.c_jobs ~progress (run_case cfg) plan
  in
  let pass = ref 0 and findings = ref 0 and caught = ref 0 in
  let timeouts = ref 0 and failed = ref 0 and exhausted = ref 0 in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let corpus_paths = ref [] in
  Array.iteri
    (fun i outcome ->
      let p = plan.(i) in
      Metrics.incr m_cases;
      emit (case_line p outcome);
      match outcome with
      | Outcome.Ok r ->
        Metrics.add m_budget_exhausted r.r_budget_exhausted;
        exhausted := !exhausted + r.r_budget_exhausted;
        let clean = ref true in
        List.iter
          (fun (_, v) ->
            match v with
            | Oracle.Pass -> ()
            | Oracle.Caught _ ->
              (* no fault is armed in the batch phase; a Caught here
                 would mean phantom detection — count it as a finding *)
              clean := false
            | Oracle.Finding f ->
              clean := false;
              incr findings;
              Metrics.incr m_findings;
              if not (Hashtbl.mem seen f.Oracle.f_signature) then begin
                Hashtbl.replace seen f.Oracle.f_signature ();
                match process_finding cfg ~emit ~fault:None p f with
                | Some path -> corpus_paths := path :: !corpus_paths
                | None -> ()
              end)
          r.r_verdicts;
        if !clean then incr pass
      | Outcome.Timed_out ->
        incr timeouts;
        Metrics.incr m_timeouts
      | Outcome.Failed _ | Outcome.Invariant_violation _ -> incr failed)
    outcomes;
  ( !pass,
    !findings,
    !caught,
    !timeouts,
    !failed,
    !exhausted,
    seen,
    corpus_paths )

(* ------------------------------------------------------------------ *)
(* chaos: injected faults that must be caught *)

(* corrupt-cert / corrupt-refine cycle through the pipeline's own
   hooks; each catch is shrunk and deposited so the corpus pins the
   defence, not just the attack *)
let run_chaos_faults cfg ~emit ~seen ~corpus_paths plan =
  let caught = ref 0 and escaped = ref 0 in
  let n = Array.length plan in
  let chaos_line p fault verdict =
    emit
      (Json.to_string
         (Json.Obj
            [
              ("fuzz_chaos", Json.Str (Oracle.fault_to_string fault));
              ("fuzz_case", Json.Str (Oracle.case_id p.p_target));
              ("gen_seed", Json.Num (float_of_int p.p_seed));
              ("gen_shape", Json.Str p.p_cls);
              ("verdict", Json.Str verdict);
            ]))
  in
  if n > 0 then
    for i = 0 to cfg.c_chaos - 1 do
      let p = plan.(i mod n) in
      let fault =
        if i mod 2 = 0 then Oracle.Corrupt_cert else Oracle.Corrupt_refine
      in
      let deadline = Option.map Deadline.after cfg.c_timeout in
      match Oracle.endtoend ?deadline ~fault ~refine:cfg.c_refine p.p_target with
      | Oracle.Caught f ->
        incr caught;
        Metrics.incr m_caught;
        chaos_line p fault ("caught:" ^ f.Oracle.f_signature);
        if not (Hashtbl.mem seen f.Oracle.f_signature) then begin
          Hashtbl.replace seen f.Oracle.f_signature ();
          match process_finding cfg ~emit ~fault:(Some fault) p f with
          | Some path -> corpus_paths := path :: !corpus_paths
          | None -> ()
        end
      | Oracle.Finding f ->
        incr escaped;
        chaos_line p fault ("escaped:" ^ f.Oracle.f_signature);
        emit
          (finding_line ~fault:(Some fault) ~shrunk:(Oracle.prog p.p_target)
             ~shrink_steps:0 p f)
      | Oracle.Pass ->
        (* the fault had nothing to corrupt on this program (see
           {!Oracle.endtoend}); not an escape *)
        chaos_line p fault "noop"
    done;
  (!caught, !escaped)

(* process-level chaos against a live daemon: the answers must stay
   byte-identical to batch records while workers are killed, store
   entries scribbled and requests stalled under the case's feet *)
let run_chaos_serve cfg ~emit ~dir plan =
  let module Server = Ucp_serve.Server in
  let module Client = Ucp_serve.Client in
  let module P = Ucp_serve.Protocol in
  let socket = Filename.concat dir "fuzz.sock" in
  let store_dir = Filename.concat dir "store" in
  (* cache_capacity 0 disables the memory tier: corrupt-store must be
     healed through the store's checksum path, not masked by the cache *)
  let scfg =
    {
      (Server.default_config ~socket ~store_dir) with
      refine = cfg.c_refine;
      cache_capacity = 0;
    }
  in
  let daemon = Thread.create (fun () -> Server.run ~signals:false scfg) () in
  let ok = ref 0 and total = ref 0 in
  let n = Array.length plan in
  let legs =
    [
      ("kill-worker", Fault.Kill_worker);
      ("corrupt-store", Fault.Corrupt_store);
      ("stall-request", Fault.Stall_request 0.2);
    ]
  in
  Fun.protect
    ~finally:(fun () ->
      ignore (Client.query ~retries:4 ~socket P.Shutdown);
      Thread.join daemon;
      Fault.clear ())
    (fun () ->
      if n > 0 then
        List.iteri
          (fun i (label, mode) ->
            let p = plan.(i mod n) in
            let id = Oracle.case_id p.p_target in
            incr total;
            Fault.set id mode;
            (* corrupt-store scribbles *after* persist: prime the store
               with a first query, then check the re-read heals *)
            let deadline = Option.map Deadline.after cfg.c_timeout in
            let verdict =
              match
                Oracle.serve_identity ?deadline ~refine:cfg.c_refine ~socket
                  p.p_target
              with
              | Oracle.Pass when mode = Fault.Corrupt_store ->
                Oracle.serve_identity ?deadline ~refine:cfg.c_refine ~socket
                  p.p_target
              | v -> v
            in
            let healthy =
              match Client.query ~retries:4 ~socket P.Health with
              | Ok (P.Health_stats health) -> (
                let stat k =
                  Option.value ~default:0 (List.assoc_opt k health.P.counters)
                in
                match mode with
                | Fault.Kill_worker -> stat "worker_restarts" >= 1
                | Fault.Corrupt_store -> stat "store_quarantined" >= 1
                | _ -> true)
              | _ -> false
            in
            let passed = verdict = Oracle.Pass && healthy in
            if passed then incr ok;
            emit
              (Json.to_string
                 (Json.Obj
                    [
                      ("fuzz_chaos", Json.Str label);
                      ("fuzz_case", Json.Str id);
                      ("gen_seed", Json.Num (float_of_int p.p_seed));
                      ("gen_shape", Json.Str p.p_cls);
                      ( "verdict",
                        Json.Str
                          (match verdict with
                          | Oracle.Pass when healthy -> "healed"
                          | Oracle.Pass -> "health-mismatch"
                          | Oracle.Finding f -> "finding:" ^ f.Oracle.f_signature
                          | Oracle.Caught f -> "caught:" ^ f.Oracle.f_signature) );
                    ])))
          legs)

(* ------------------------------------------------------------------ *)

let summary_line cfg ~wall_s s =
  Json.to_string
    (Json.Obj
       [
         ("fuzz_summary", Json.Bool true);
         ("seed", Json.Num (float_of_int cfg.c_seed));
         ("count", Json.Num (float_of_int cfg.c_count));
         ("cases", Json.Num (float_of_int s.s_cases));
         ("pass", Json.Num (float_of_int s.s_pass));
         ("findings", Json.Num (float_of_int s.s_findings));
         ("distinct", Json.Num (float_of_int s.s_distinct));
         ("caught", Json.Num (float_of_int s.s_caught));
         ("escaped", Json.Num (float_of_int s.s_escaped));
         ("timeouts", Json.Num (float_of_int s.s_timeouts));
         ("failed", Json.Num (float_of_int s.s_failed));
         ("budget_exhausted", Json.Num (float_of_int s.s_budget_exhausted));
         ("chaos_ok", Json.Num (float_of_int s.s_chaos_ok));
         ("chaos_total", Json.Num (float_of_int s.s_chaos_total));
         ("wall_s", Json.Num wall_s);
         ("metrics", metrics_json ());
       ])

let run ?(emit = fun _ -> ()) ?(progress = fun ~done_:_ ~total:_ -> ()) cfg =
  let t0 = Unix.gettimeofday () in
  let plan = plan cfg in
  let pass, findings, caught0, timeouts, failed, exhausted, seen, corpus_paths =
    run_batch cfg ~emit ~progress plan
  in
  let caught_chaos, escaped =
    if cfg.c_chaos > 0 then run_chaos_faults cfg ~emit ~seen ~corpus_paths plan
    else (0, 0)
  in
  let chaos_ok, chaos_total =
    match cfg.c_serve with
    | Some dir ->
      let ok = ref 0 and total = ref 0 in
      let count_emit line =
        (match Json.parse line with
        | Ok j when Json.member "fuzz_chaos" j <> None ->
          incr total;
          if Json.member "verdict" j |> Fun.flip Option.bind Json.to_str
             = Some "healed"
          then incr ok
        | _ -> ());
        emit line
      in
      run_chaos_serve cfg ~emit:count_emit ~dir plan;
      (!ok, !total)
    | None -> (0, 0)
  in
  let s =
    {
      s_cases = Array.length plan;
      s_pass = pass;
      s_findings = findings + escaped;
      s_distinct = Hashtbl.length seen;
      s_caught = caught0 + caught_chaos;
      s_escaped = escaped;
      s_timeouts = timeouts;
      s_failed = failed;
      s_budget_exhausted = exhausted;
      s_corpus = List.rev !corpus_paths;
      s_chaos_ok = chaos_ok;
      s_chaos_total = chaos_total;
    }
  in
  emit (summary_line cfg ~wall_s:(Unix.gettimeofday () -. t0) s);
  s

let clean s =
  s.s_findings = 0 && s.s_escaped = 0 && s.s_failed = 0
  && s.s_chaos_ok = s.s_chaos_total

(* ------------------------------------------------------------------ *)
(* corpus replay (the CI pin) *)

let replay_corpus ?(emit = fun _ -> ()) ~dir () =
  let paths = Corpus.list ~dir in
  let ok = ref 0 and failedl = ref [] in
  List.iter
    (fun path ->
      let result =
        match Corpus.load path with
        | Error msg -> Error msg
        | Ok e -> Corpus.replay ~deadline:(Deadline.after 120.) e
      in
      (match result with
      | Ok () -> incr ok
      | Error msg -> failedl := (path, msg) :: !failedl);
      emit
        (Json.to_string
           (Json.Obj
              [
                ("fuzz_replay", Json.Str (Filename.basename path));
                ( "result",
                  match result with
                  | Ok () -> Json.Str "ok"
                  | Error msg -> Json.Str ("error: " ^ msg) );
              ])))
    paths;
  (!ok, List.rev !failedl)
