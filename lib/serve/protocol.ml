module Json = Ucp_util.Json

(* ------------------------------------------------------------------ *)
(* wire types *)

type request =
  | Case of { id : string; trace_id : string option }
  | Health
  | Metrics
  | Shutdown

type source = Memory | Store | Computed

type hist_stat = { hs_count : int; hs_sum : float }

type health = {
  counters : (string * int) list;
  gauges : (string * float) list;
  hists : (string * hist_stat) list;
}

type response =
  | Record of { id : string; source : source; json : string; trace_id : string option }
  | Health_stats of health
  | Metrics_text of string
  | Retry of { after_s : float; reason : string; trace_id : string option }
  | Failed of { retryable : bool; message : string; trace_id : string option }
  | Bye

let version = 1

(* trace ids are the textual form of Ucp_obs.Ctx ids: exactly 16
   lowercase hex digits.  Validated strictly on decode — the id ends up
   verbatim in log lines and trace files, so arbitrary bytes are not
   welcome. *)
let valid_trace_id s =
  String.length s = 16
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
       s

(* ------------------------------------------------------------------ *)
(* framing: "<decimal length>\n<payload>\n".  The length line bounds
   the read; the trailing newline is a cheap tear detector and keeps a
   captured stream greppable. *)

let max_frame = 16 * 1024 * 1024

type unframed =
  | Frame of string * string  (** payload, unconsumed rest *)
  | Incomplete
  | Malformed of string

let frame payload =
  if String.length payload > max_frame then
    invalid_arg "Protocol.frame: payload exceeds max_frame";
  Printf.sprintf "%d\n%s\n" (String.length payload) payload

(* the length header of a max_frame payload is 8 digits; anything
   longer without a newline can never become a valid frame *)
let max_header = 9

let unframe buf =
  match String.index_opt buf '\n' with
  | None ->
    if String.length buf > max_header then Malformed "oversized length header"
    else Incomplete
  | Some nl ->
    let header = String.sub buf 0 nl in
    let len =
      if header = "" then None
      else if String.for_all (fun c -> c >= '0' && c <= '9') header then
        int_of_string_opt header
      else None
    in
    (match len with
    | None -> Malformed (Printf.sprintf "bad length header %S" header)
    | Some len when len > max_frame ->
      Malformed (Printf.sprintf "frame of %d bytes exceeds limit" len)
    | Some len ->
      (* header + '\n' + payload + '\n' *)
      let total = nl + 1 + len + 1 in
      if String.length buf < total then Incomplete
      else if buf.[total - 1] <> '\n' then Malformed "missing frame terminator"
      else
        Frame
          ( String.sub buf (nl + 1) len,
            String.sub buf total (String.length buf - total) ))

(* ------------------------------------------------------------------ *)
(* JSON encoding *)

let source_to_string = function
  | Memory -> "memory"
  | Store -> "store"
  | Computed -> "computed"

let source_of_string = function
  | "memory" -> Some Memory
  | "store" -> Some Store
  | "computed" -> Some Computed
  | _ -> None

let v_field = ("v", Json.Num (float_of_int version))

(* additive optional field: absent on the wire when [None], so a
   message without a trace id is byte-identical to what the previous
   protocol revision emitted *)
let trace_field = function
  | None -> []
  | Some t -> [ ("trace_id", Json.Str t) ]

let request_to_string = function
  | Case { id; trace_id } ->
    Json.to_string
      (Json.Obj
         ([ v_field; ("req", Str "case"); ("id", Str id) ] @ trace_field trace_id))
  | Health -> Json.to_string (Json.Obj [ v_field; ("req", Str "health") ])
  | Metrics -> Json.to_string (Json.Obj [ v_field; ("req", Str "metrics") ])
  | Shutdown -> Json.to_string (Json.Obj [ v_field; ("req", Str "shutdown") ])

let str_member key j = Option.bind (Json.member key j) Json.to_str

(* [Ok None] when absent, [Ok (Some t)] when well-formed *)
let trace_member j =
  match str_member "trace_id" j with
  | None -> Ok None
  | Some t when valid_trace_id t -> Ok (Some t)
  | Some t -> Error (Printf.sprintf "malformed trace_id %S" t)

let check_version j =
  match Option.bind (Json.member "v" j) Json.to_int with
  | Some v when v = version -> Ok ()
  | Some v -> Error (Printf.sprintf "unsupported protocol version %d" v)
  | None -> Error "missing protocol version"

let request_of_string s =
  match Json.parse s with
  | Error msg -> Error (Printf.sprintf "malformed request: %s" msg)
  | Ok j -> (
    match check_version j with
    | Error _ as e -> e
    | Ok () -> (
      match str_member "req" j with
      | Some "case" -> (
        match (str_member "id" j, trace_member j) with
        | Some id, Ok trace_id when id <> "" -> Ok (Case { id; trace_id })
        | _, (Error _ as e) -> e
        | (Some _ | None), Ok _ -> Error "case request without an id")
      | Some "health" -> Ok Health
      | Some "metrics" -> Ok Metrics
      | Some "shutdown" -> Ok Shutdown
      | Some other -> Error (Printf.sprintf "unknown request %S" other)
      | None -> Error "request without a req field"))

let health_to_fields { counters; gauges; hists } =
  [
    (* the pre-telemetry field, kept first so old clients that only
       read [stats] keep working against new servers *)
    ( "stats",
      Json.Obj (List.map (fun (k, n) -> (k, Json.Num (float_of_int n))) counters) );
  ]
  @ (match gauges with
    | [] -> []
    | gauges -> [ ("gauges", Json.Obj (List.map (fun (k, x) -> (k, Json.Num x)) gauges)) ])
  @
  match hists with
  | [] -> []
  | hists ->
    [
      ( "hists",
        Json.Obj
          (List.map
             (fun (k, { hs_count; hs_sum }) ->
               ( k,
                 Json.Obj
                   [
                     ("count", Json.Num (float_of_int hs_count));
                     ("sum", Json.Num hs_sum);
                   ] ))
             hists) );
    ]

let response_to_string = function
  | Record { id; source; json; trace_id } ->
    Json.to_string
      (Json.Obj
         ([
            v_field;
            ("resp", Str "record");
            ("id", Str id);
            ("source", Str (source_to_string source));
            ("record", Str json);
          ]
         @ trace_field trace_id))
  | Health_stats health ->
    Json.to_string
      (Json.Obj ((v_field :: [ ("resp", Str "health") ]) @ health_to_fields health))
  | Metrics_text text ->
    Json.to_string (Json.Obj [ v_field; ("resp", Str "metrics"); ("text", Str text) ])
  | Retry { after_s; reason; trace_id } ->
    Json.to_string
      (Json.Obj
         ([
            v_field; ("resp", Str "retry"); ("after_s", Num after_s); ("reason", Str reason);
          ]
         @ trace_field trace_id))
  | Failed { retryable; message; trace_id } ->
    Json.to_string
      (Json.Obj
         ([
            v_field;
            ("resp", Str "error");
            ("retryable", Bool retryable);
            ("message", Str message);
          ]
         @ trace_field trace_id))
  | Bye -> Json.to_string (Json.Obj [ v_field; ("resp", Str "bye") ])

let int_obj_member key j =
  match Json.member key j with
  | Some (Json.Obj kvs) ->
    let ints =
      List.filter_map
        (fun (k, v) -> Option.map (fun n -> (k, n)) (Json.to_int v))
        kvs
    in
    if List.length ints = List.length kvs then Some ints else None
  | Some _ -> None
  | None -> Some []

let float_obj_member key j =
  match Json.member key j with
  | Some (Json.Obj kvs) ->
    let floats =
      List.filter_map
        (fun (k, v) -> Option.map (fun x -> (k, x)) (Json.to_float v))
        kvs
    in
    if List.length floats = List.length kvs then Some floats else None
  | Some _ -> None
  | None -> Some []

let hists_member j =
  match Json.member "hists" j with
  | Some (Json.Obj kvs) ->
    let hists =
      List.filter_map
        (fun (k, v) ->
          match
            ( Option.bind (Json.member "count" v) Json.to_int,
              Option.bind (Json.member "sum" v) Json.to_float )
          with
          | Some hs_count, Some hs_sum -> Some (k, { hs_count; hs_sum })
          | _ -> None)
        kvs
    in
    if List.length hists = List.length kvs then Some hists else None
  | Some _ -> None
  | None -> Some []

let response_of_string s =
  match Json.parse s with
  | Error msg -> Error (Printf.sprintf "malformed response: %s" msg)
  | Ok j -> (
    match check_version j with
    | Error _ as e -> e
    | Ok () -> (
      match str_member "resp" j with
      | Some "record" -> (
        match
          (str_member "id" j, Option.bind (str_member "source" j) source_of_string,
           str_member "record" j, trace_member j)
        with
        | Some id, Some source, Some json, Ok trace_id ->
          Ok (Record { id; source; json; trace_id })
        | _, _, _, (Error _ as e) -> e
        | _ -> Error "record response with missing fields")
      | Some "health" -> (
        (* [stats] is required (it predates telemetry); [gauges] and
           [hists] are additive — absent means empty, so an answer from
           an old server still decodes *)
        match Json.member "stats" j with
        | Some (Json.Obj _) -> (
          match (int_obj_member "stats" j, float_obj_member "gauges" j, hists_member j)
          with
          | Some counters, Some gauges, Some hists ->
            Ok (Health_stats { counters; gauges; hists })
          | None, _, _ -> Error "health response with non-integer stats"
          | _, None, _ -> Error "health response with non-numeric gauges"
          | _, _, None -> Error "health response with malformed hists")
        | Some _ | None -> Error "health response without stats")
      | Some "metrics" -> (
        match str_member "text" j with
        | Some text -> Ok (Metrics_text text)
        | None -> Error "metrics response without text")
      | Some "retry" -> (
        match
          (Option.bind (Json.member "after_s" j) Json.to_float, str_member "reason" j,
           trace_member j)
        with
        | Some after_s, Some reason, Ok trace_id when after_s >= 0.0 ->
          Ok (Retry { after_s; reason; trace_id })
        | _, _, (Error _ as e) -> e
        | _ -> Error "retry response with missing fields")
      | Some "error" -> (
        match (Json.member "retryable" j, str_member "message" j, trace_member j) with
        | Some (Json.Bool retryable), Some message, Ok trace_id ->
          Ok (Failed { retryable; message; trace_id })
        | _, _, (Error _ as e) -> e
        | _ -> Error "error response with missing fields")
      | Some "bye" -> Ok Bye
      | Some other -> Error (Printf.sprintf "unknown response %S" other)
      | None -> Error "response without a resp field"))
