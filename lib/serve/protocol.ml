module Json = Ucp_util.Json

(* ------------------------------------------------------------------ *)
(* wire types *)

type request =
  | Case of string
  | Health
  | Shutdown

type source = Memory | Store | Computed

type response =
  | Record of { id : string; source : source; json : string }
  | Health_stats of (string * int) list
  | Retry of { after_s : float; reason : string }
  | Failed of { retryable : bool; message : string }
  | Bye

let version = 1

(* ------------------------------------------------------------------ *)
(* framing: "<decimal length>\n<payload>\n".  The length line bounds
   the read; the trailing newline is a cheap tear detector and keeps a
   captured stream greppable. *)

let max_frame = 16 * 1024 * 1024

type unframed =
  | Frame of string * string  (** payload, unconsumed rest *)
  | Incomplete
  | Malformed of string

let frame payload =
  if String.length payload > max_frame then
    invalid_arg "Protocol.frame: payload exceeds max_frame";
  Printf.sprintf "%d\n%s\n" (String.length payload) payload

(* the length header of a max_frame payload is 8 digits; anything
   longer without a newline can never become a valid frame *)
let max_header = 9

let unframe buf =
  match String.index_opt buf '\n' with
  | None ->
    if String.length buf > max_header then Malformed "oversized length header"
    else Incomplete
  | Some nl ->
    let header = String.sub buf 0 nl in
    let len =
      if header = "" then None
      else if String.for_all (fun c -> c >= '0' && c <= '9') header then
        int_of_string_opt header
      else None
    in
    (match len with
    | None -> Malformed (Printf.sprintf "bad length header %S" header)
    | Some len when len > max_frame ->
      Malformed (Printf.sprintf "frame of %d bytes exceeds limit" len)
    | Some len ->
      (* header + '\n' + payload + '\n' *)
      let total = nl + 1 + len + 1 in
      if String.length buf < total then Incomplete
      else if buf.[total - 1] <> '\n' then Malformed "missing frame terminator"
      else
        Frame
          ( String.sub buf (nl + 1) len,
            String.sub buf total (String.length buf - total) ))

(* ------------------------------------------------------------------ *)
(* JSON encoding *)

let source_to_string = function
  | Memory -> "memory"
  | Store -> "store"
  | Computed -> "computed"

let source_of_string = function
  | "memory" -> Some Memory
  | "store" -> Some Store
  | "computed" -> Some Computed
  | _ -> None

let v_field = ("v", Json.Num (float_of_int version))

let request_to_string = function
  | Case id -> Json.to_string (Json.Obj [ v_field; ("req", Str "case"); ("id", Str id) ])
  | Health -> Json.to_string (Json.Obj [ v_field; ("req", Str "health") ])
  | Shutdown -> Json.to_string (Json.Obj [ v_field; ("req", Str "shutdown") ])

let str_member key j = Option.bind (Json.member key j) Json.to_str

let check_version j =
  match Option.bind (Json.member "v" j) Json.to_int with
  | Some v when v = version -> Ok ()
  | Some v -> Error (Printf.sprintf "unsupported protocol version %d" v)
  | None -> Error "missing protocol version"

let request_of_string s =
  match Json.parse s with
  | Error msg -> Error (Printf.sprintf "malformed request: %s" msg)
  | Ok j -> (
    match check_version j with
    | Error _ as e -> e
    | Ok () -> (
      match str_member "req" j with
      | Some "case" -> (
        match str_member "id" j with
        | Some id when id <> "" -> Ok (Case id)
        | Some _ | None -> Error "case request without an id")
      | Some "health" -> Ok Health
      | Some "shutdown" -> Ok Shutdown
      | Some other -> Error (Printf.sprintf "unknown request %S" other)
      | None -> Error "request without a req field"))

let response_to_string = function
  | Record { id; source; json } ->
    Json.to_string
      (Json.Obj
         [
           v_field;
           ("resp", Str "record");
           ("id", Str id);
           ("source", Str (source_to_string source));
           ("record", Str json);
         ])
  | Health_stats stats ->
    Json.to_string
      (Json.Obj
         [
           v_field;
           ("resp", Str "health");
           ("stats", Obj (List.map (fun (k, n) -> (k, Json.Num (float_of_int n))) stats));
         ])
  | Retry { after_s; reason } ->
    Json.to_string
      (Json.Obj
         [ v_field; ("resp", Str "retry"); ("after_s", Num after_s); ("reason", Str reason) ])
  | Failed { retryable; message } ->
    Json.to_string
      (Json.Obj
         [
           v_field;
           ("resp", Str "error");
           ("retryable", Bool retryable);
           ("message", Str message);
         ])
  | Bye -> Json.to_string (Json.Obj [ v_field; ("resp", Str "bye") ])

let response_of_string s =
  match Json.parse s with
  | Error msg -> Error (Printf.sprintf "malformed response: %s" msg)
  | Ok j -> (
    match check_version j with
    | Error _ as e -> e
    | Ok () -> (
      match str_member "resp" j with
      | Some "record" -> (
        match
          (str_member "id" j, Option.bind (str_member "source" j) source_of_string,
           str_member "record" j)
        with
        | Some id, Some source, Some json -> Ok (Record { id; source; json })
        | _ -> Error "record response with missing fields")
      | Some "health" -> (
        match Json.member "stats" j with
        | Some (Json.Obj kvs) ->
          let ints =
            List.filter_map
              (fun (k, v) -> Option.map (fun n -> (k, n)) (Json.to_int v))
              kvs
          in
          if List.length ints = List.length kvs then Ok (Health_stats ints)
          else Error "health response with non-integer stats"
        | Some _ | None -> Error "health response without stats")
      | Some "retry" -> (
        match
          (Option.bind (Json.member "after_s" j) Json.to_float, str_member "reason" j)
        with
        | Some after_s, Some reason when after_s >= 0.0 -> Ok (Retry { after_s; reason })
        | _ -> Error "retry response with missing fields")
      | Some "error" -> (
        match (Json.member "retryable" j, str_member "message" j) with
        | Some (Json.Bool retryable), Some message ->
          Ok (Failed { retryable; message })
        | _ -> Error "error response with missing fields")
      | Some "bye" -> Ok Bye
      | Some other -> Error (Printf.sprintf "unknown response %S" other)
      | None -> Error "response without a resp field"))
