module Checkpoint = Ucp_core.Checkpoint
module Experiments = Ucp_core.Experiments
module Crc32 = Ucp_util.Crc32
module Fault = Ucp_core.Fault

type t = {
  dir : string;
  lock : Mutex.t;  (* serializes put/quarantine on one entry dir *)
  mutable quarantined : int;
  mutable corruptions_injected : int;
}

let store_quarantined_total =
  lazy (Ucp_obs.Metrics.counter "store_quarantined_total")

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let contains_substring ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n > 0 && go 0

let open_ ~dir =
  mkdir_p dir;
  (* crash-only startup: a kill -9 can leave half-written temp files
     behind; they are garbage by construction (the rename never
     happened) and are swept here rather than by an offline tool *)
  Array.iter
    (fun name ->
      if contains_substring ~sub:".tmp." name then
        try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
    (Sys.readdir dir);
  { dir; lock = Mutex.create (); quarantined = 0; corruptions_injected = 0 }

let dir t = t.dir

(* content address: the digest covers the case's own singleton-grid
   fingerprint (geometry, program identity, refine mode, journal format
   version) plus its id, so a regenerated workload, a different refine
   mode or a format bump changes the key instead of resurrecting stale
   bytes *)
let key ?refine (c : Experiments.case) =
  let fingerprint =
    Checkpoint.fingerprint
      ~policies:[ c.Experiments.case_policy ]
      ?refine
      ~programs:[ (c.Experiments.case_program_name, c.Experiments.case_program) ]
      ~configs:[ (c.Experiments.case_config_id, c.Experiments.case_config) ]
      ~techs:[ c.Experiments.case_tech ] ()
  in
  Digest.to_hex
    (Digest.string (fingerprint ^ "\x00" ^ Experiments.case_id c))

let path t ~key = Filename.concat t.dir (key ^ ".rec")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* entry layout: "<8-hex crc32 of the rest>\n<record line>\n" *)
let encode line = Crc32.to_hex (Crc32.string (line ^ "\n")) ^ "\n" ^ line ^ "\n"

let decode content =
  match String.index_opt content '\n' with
  | Some 8 ->
    let header = String.sub content 0 8 in
    let rest = String.sub content 9 (String.length content - 9) in
    if
      String.for_all
        (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
        header
      && Crc32.to_hex (Crc32.string rest) = header
      && String.length rest > 0
      && rest.[String.length rest - 1] = '\n'
    then Some (String.sub rest 0 (String.length rest - 1))
    else None
  | Some _ | None -> None

let note_quarantined t =
  t.quarantined <- t.quarantined + 1;
  Ucp_obs.Metrics.incr (Lazy.force store_quarantined_total)

(* a corrupt entry is never deleted: it is moved aside with its bytes
   intact, so a failure that keeps recurring can be examined, and the
   key becomes a clean miss that the caller recomputes *)
let quarantine_locked t ~key reason =
  let p = path t ~key in
  (try Sys.rename p (p ^ ".quarantine") with Sys_error _ -> ());
  note_quarantined t;
  Ucp_obs.Log.warn "store: quarantined entry %s (%s)" key reason

let quarantine t ~key reason =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> quarantine_locked t ~key reason)

let find t ~key =
  let p = path t ~key in
  match read_file p with
  | exception Sys_error _ -> None
  | content -> (
    match decode content with
    | Some line -> Some line
    | None ->
      (* torn write, bit rot, or an injected corruption: self-heal by
         quarantining and reporting a miss — never fatal *)
      Mutex.lock t.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.lock)
        (fun () ->
          (* re-check under the lock: a concurrent reader may have
             already quarantined (and a writer re-put) this key *)
          match read_file p with
          | exception Sys_error _ -> None
          | content -> (
            match decode content with
            | Some line -> Some line
            | None ->
              quarantine_locked t ~key "checksum mismatch";
              None)))

(* deliberately scribble on the persisted payload — models bit rot /
   a torn sector between daemon runs; one-shot per Fault hook *)
let scribble t p =
  match read_file p with
  | exception Sys_error _ -> ()
  | content when String.length content > 9 ->
    let b = Bytes.of_string content in
    let i = 9 + ((Bytes.length b - 9) / 2) in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5a));
    let oc = open_out_bin p in
    output_bytes oc b;
    close_out oc;
    t.corruptions_injected <- t.corruptions_injected + 1
  | _ -> ()

let put t ~id ~key line =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let p = path t ~key in
      Checkpoint.write_atomic ~path:p (encode line);
      if Fault.corrupt_store id then scribble t p)

let quarantined t =
  Mutex.lock t.lock;
  let n = t.quarantined in
  Mutex.unlock t.lock;
  n

let corruptions_injected t =
  Mutex.lock t.lock;
  let n = t.corruptions_injected in
  Mutex.unlock t.lock;
  n
