module Config = Ucp_cache.Config
module Tech = Ucp_energy.Tech
module Suite = Ucp_workloads.Suite
module Experiments = Ucp_core.Experiments
module Checkpoint = Ucp_core.Checkpoint
module Pipeline = Ucp_core.Pipeline
module Report = Ucp_core.Report
module Parallel = Ucp_core.Parallel
module Fault = Ucp_core.Fault
module Deadline = Ucp_util.Deadline
module Lru = Ucp_util.Lru
module Ctx = Ucp_obs.Ctx
module Trace = Ucp_obs.Trace
module Metrics = Ucp_obs.Metrics
module P = Protocol

type config = {
  socket : string;
  store_dir : string;
  jobs : int;
  cache_capacity : int;
  queue_limit : int;
  timeout : float option;
  refine : Ucp_refine.Mode.t;
  access_log : string option;
  slow_log : string option;
  slow_threshold_s : float;
  trace : string option;
  trace_seed : int;
}

let default_config ~socket ~store_dir =
  {
    socket;
    store_dir;
    jobs = 2;
    cache_capacity = 64;
    queue_limit = 32;
    timeout = None;
    refine = Ucp_refine.Mode.Nc;
    access_log = None;
    slow_log = None;
    slow_threshold_s = 1.0;
    trace = None;
    trace_seed = 0;
  }

(* ------------------------------------------------------------------ *)
(* service-level instruments *)

(* sub-ms to 10 s: cache hits land in the first buckets, cold analyses
   in the last few; the +inf bucket catches fault-stalled requests *)
let latency_buckets =
  [| 0.0005; 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0 |]

(* the request tiers; also the exposition label values *)
let tiers = [ "cache"; "store"; "cold"; "shed" ]

let serve_latency tier =
  Metrics.histogram
    (Printf.sprintf "serve_latency_s{tier=%S}" tier)
    ~buckets:latency_buckets

let store_read_s =
  lazy
    (Metrics.histogram "store_read_s"
       ~buckets:[| 0.0001; 0.00025; 0.0005; 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1 |])

let m_requests = lazy (Metrics.counter "serve_requests_total")
let m_cache_hits = lazy (Metrics.counter "serve_cache_hits_total")
let m_cache_misses = lazy (Metrics.counter "serve_cache_misses_total")
let m_store_hits = lazy (Metrics.counter "serve_store_hits_total")
let m_computed = lazy (Metrics.counter "serve_computed_total")
let m_shed = lazy (Metrics.counter "serve_shed_total")
let m_slow = lazy (Metrics.counter "serve_slow_requests_total")
let m_queue_depth = lazy (Metrics.gauge "serve_queue_depth")

(* ------------------------------------------------------------------ *)
(* server state *)

type stats = {
  smutex : Mutex.t;
  mutable requests_total : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable store_hits : int;
  mutable computed_total : int;
  mutable shed_total : int;
  mutable inflight : int;  (* cold computations queued or running *)
}

type t = {
  cfg : config;
  stop : bool Atomic.t;
  pool : Parallel.pool;
  store : Store.t;
  (* case id -> (checkpoint record line, rendered record_json); both
     strings are final bytes, so cache hits are trivially byte-stable *)
  cache : (string, string * string) Lru.t;
  cmutex : Mutex.t;
  memo : Experiments.Analysis_memo.t;
  models : (Config.t * Tech.t, Ucp_energy.Cacti.t) Hashtbl.t;
  mmutex : Mutex.t;
  stats : stats;
  alog : Ucp_obs.Access_log.t option;  (* one line per request *)
  slog : Ucp_obs.Access_log.t option;  (* requests above the slow threshold *)
  (* requests that arrive without a client trace id get one derived
     from (trace_seed, arrival index) — deterministic per daemon run *)
  req_index : int Atomic.t;
}

let tally t f =
  Mutex.lock t.stats.smutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.stats.smutex) (fun () -> f t.stats)

let cache_find t id =
  Mutex.lock t.cmutex;
  let v = Lru.find t.cache id in
  Mutex.unlock t.cmutex;
  v

let cache_add t id v =
  Mutex.lock t.cmutex;
  Lru.add t.cache id v;
  Mutex.unlock t.cmutex

let model t (c : Experiments.case) =
  Mutex.lock t.mmutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mmutex)
    (fun () ->
      let key = (c.Experiments.case_config, c.Experiments.case_tech) in
      match Hashtbl.find_opt t.models key with
      | Some m -> m
      | None ->
        let m =
          Pipeline.model c.Experiments.case_config c.Experiments.case_tech
        in
        Hashtbl.add t.models key m;
        m)

(* ------------------------------------------------------------------ *)
(* case-id resolution *)

(* generated programs ("gen-<class>-<seed>") resolve by regeneration:
   the name is the reproducer, so the daemon can serve fuzz cases no
   suite ships *)
let resolve_program pname =
  match Suite.find pname with
  | program -> Ok program
  | exception Not_found -> (
    match Ucp_workloads.Generate.parse_name pname with
    | Some (seed, cls) -> Ok (Ucp_workloads.Generate.program ~seed ~cls)
    | None -> Error (Printf.sprintf "unknown program %S (try `ucp list')" pname))

let resolve_case id =
  match String.split_on_char ':' id with
  | [ pname; cid; tlabel; pol ] -> (
    match resolve_program pname with
    | Error msg -> Error msg
    | Ok program -> (
      match List.assoc_opt cid Config.paper_configs with
      | None -> Error (Printf.sprintf "unknown configuration %S (k1..k36)" cid)
      | Some config -> (
        let tech =
          match tlabel with
          | "45nm" -> Some Tech.nm45
          | "32nm" -> Some Tech.nm32
          | _ -> None
        in
        match tech with
        | None -> Error (Printf.sprintf "unknown technology %S (45nm | 32nm)" tlabel)
        | Some tech -> (
          match Ucp_policy.of_string pol with
          | Error msg -> Error msg
          | Ok policy ->
            Ok
              {
                Experiments.case_program_name = pname;
                case_program = program;
                case_config_id = cid;
                case_config = config;
                case_tech = tech;
                case_policy = policy;
              }))))
  | _ ->
    Error
      (Printf.sprintf "malformed case id %S: expected <program>:<config>:<tech>:<policy>"
         id)

(* ------------------------------------------------------------------ *)
(* cold evaluation on the worker pool *)

(* one slot per in-flight request: the connection thread blocks on it,
   the pool task (or its death handler) fills it exactly once *)
type slot = {
  sm : Mutex.t;
  sc : Condition.t;
  mutable sres : P.response option;
}

let fill slot r =
  Mutex.lock slot.sm;
  if slot.sres = None then begin
    slot.sres <- Some r;
    Condition.broadcast slot.sc
  end;
  Mutex.unlock slot.sm

let await slot =
  Mutex.lock slot.sm;
  while slot.sres = None do
    Condition.wait slot.sc slot.sm
  done;
  let r = Option.get slot.sres in
  Mutex.unlock slot.sm;
  r

let compute t ~trace id (c : Experiments.case) key =
  let slot = { sm = Mutex.create (); sc = Condition.create (); sres = None } in
  let model = model t c in
  (* [Parallel.submit] captures the connection thread's ambient trace
     context, so the spans the pipeline opens on the pool domain carry
     this request's trace id *)
  Parallel.submit t.pool (fun () ->
      (* if the task dies on an exception that escapes isolation, the
         default below is what keeps the request from hanging: the
         client gets a retryable error while the pool replaces the dead
         domain *)
      let result =
        ref
          (P.Failed
             {
               retryable = true;
               message = "worker domain died mid-request; retry";
               trace_id = trace;
             })
      in
      Fun.protect
        ~finally:(fun () ->
          (* release the admission slot before waking the client: a
             sequential client must observe the queue depth its own
             requests imply, not a race with this task's teardown *)
          tally t (fun s -> s.inflight <- s.inflight - 1);
          fill slot !result)
        (fun () ->
          let resp =
            Trace.with_span ~name:"compute"
              ~args:[ ("id", Trace.Str id) ]
              (fun () ->
                match
                  let deadline = Option.map Deadline.after t.cfg.timeout in
                  (* fault hooks run on the pool domain, so a kill-worker
                     hook kills a worker, not the connection thread *)
                  Fault.apply_pre ?deadline id;
                  let r =
                    Experiments.run_case ?deadline ~memo:t.memo
                      ~refine:t.cfg.refine
                      ~corrupt_refine:(Fault.corrupt_refine id) ~model c
                  in
                  let r = Fault.corrupt id r in
                  match Experiments.check_invariants r with
                  | Error msg -> Error (Printf.sprintf "invariant violation: %s" msg)
                  | Ok () -> Ok r
                with
                | Ok r ->
                  let line = Checkpoint.record_line ~id r in
                  let json = Report.record_json r in
                  Store.put t.store ~id ~key line;
                  cache_add t id (line, json);
                  tally t (fun s -> s.computed_total <- s.computed_total + 1);
                  Metrics.incr (Lazy.force m_computed);
                  P.Record { id; source = P.Computed; json; trace_id = trace }
                | Error msg ->
                  P.Failed { retryable = false; message = msg; trace_id = trace }
                | exception Deadline.Deadline_exceeded ->
                  P.Failed
                    {
                      retryable = false;
                      message = "case deadline exceeded";
                      trace_id = trace;
                    }
                | exception (Fault.Killed_worker _ as e) -> raise e
                | exception exn ->
                  P.Failed
                    {
                      retryable = false;
                      message = Printexc.to_string exn;
                      trace_id = trace;
                    })
          in
          result := resp));
  await slot

(* ------------------------------------------------------------------ *)
(* request handling (runs on the per-connection thread) *)

(* the answer plus which tier settled it: cache | store | cold | shed,
   or "reject" for requests that never reached a tier (bad id, deadline
   during an injected stall) *)
let answer_case t ~trace id =
  tally t (fun s -> s.requests_total <- s.requests_total + 1);
  Metrics.incr (Lazy.force m_requests);
  match resolve_case id with
  | Error msg -> (P.Failed { retryable = false; message = msg; trace_id = trace }, "reject")
  | Ok c -> (
    match
      let deadline = Option.map Deadline.after t.cfg.timeout in
      Option.iter (Fault.busy_wait ?deadline) (Fault.stall_request id)
    with
    | exception Deadline.Deadline_exceeded ->
      ( P.Failed { retryable = false; message = "case deadline exceeded"; trace_id = trace },
        "reject" )
    | () -> (
      match Trace.with_span ~name:"cache_lookup" (fun () -> cache_find t id) with
      | Some (_, json) ->
        tally t (fun s -> s.cache_hits <- s.cache_hits + 1);
        Metrics.incr (Lazy.force m_cache_hits);
        (P.Record { id; source = P.Memory; json; trace_id = trace }, "cache")
      | None -> (
        tally t (fun s -> s.cache_misses <- s.cache_misses + 1);
        Metrics.incr (Lazy.force m_cache_misses);
        let key = Store.key ~refine:t.cfg.refine c in
        let from_store =
          Trace.with_span ~name:"store_lookup" (fun () ->
              let t0 = Unix.gettimeofday () in
              let found = Store.find t.store ~key in
              Metrics.observe (Lazy.force store_read_s) (Unix.gettimeofday () -. t0);
              match found with
              | None -> None
              | Some line -> (
                match Checkpoint.parse_line line with
                | Some (id', r) when id' = id -> Some (line, Report.record_json r)
                | Some _ | None ->
                  (* checksum-clean but semantically wrong: same self-heal
                     path as bit rot *)
                  Store.quarantine t.store ~key "unparseable entry";
                  None))
        in
        match from_store with
        | Some (line, json) ->
          tally t (fun s -> s.store_hits <- s.store_hits + 1);
          Metrics.incr (Lazy.force m_store_hits);
          cache_add t id (line, json);
          (P.Record { id; source = P.Store; json; trace_id = trace }, "store")
        | None ->
          (* cold: bounded admission — cache/store answers above never
             shed, so an overloaded daemon degrades to cache-only *)
          let admitted =
            tally t (fun s ->
                if s.inflight >= t.cfg.queue_limit then begin
                  s.shed_total <- s.shed_total + 1;
                  false
                end
                else begin
                  s.inflight <- s.inflight + 1;
                  true
                end)
          in
          if not admitted then begin
            Metrics.incr (Lazy.force m_shed);
            ( P.Retry
                {
                  after_s = 0.25;
                  reason =
                    Printf.sprintf "admission queue full (%d in flight)"
                      t.cfg.queue_limit;
                  trace_id = trace;
                },
              "shed" )
          end
          else (compute t ~trace id c key, "cold"))))

let health t =
  let s =
    tally t (fun s ->
        [
          ("requests_total", s.requests_total);
          ("cache_hits", s.cache_hits);
          ("cache_misses", s.cache_misses);
          ("store_hits", s.store_hits);
          ("computed_total", s.computed_total);
          ("shed_total", s.shed_total);
          ("queue_depth", s.inflight);
        ])
  in
  (* the full registry rides along: integer counters in the original
     [stats] payload, gauges/fcounters and histogram count+sum in the
     additive fields (full bucket vectors go through [Metrics]) *)
  let dump = Ucp_obs.Metrics.dump () in
  let counters =
    List.filter_map
      (function
        | name, Ucp_obs.Metrics.Counter n -> Some (name, n)
        | _ -> None)
      dump
  in
  let gauges =
    List.filter_map
      (function
        | name, Ucp_obs.Metrics.Gauge x | name, Ucp_obs.Metrics.Fcounter x ->
          Some (name, x)
        | _ -> None)
      dump
  in
  let hists =
    List.filter_map
      (function
        | name, Ucp_obs.Metrics.Histogram { sum; count; _ } ->
          Some (name, { P.hs_count = count; hs_sum = sum })
        | _ -> None)
      dump
  in
  P.Health_stats
    {
      counters =
        s
        @ [
            ("worker_restarts", Parallel.restarts t.pool);
            ("store_quarantined", Store.quarantined t.store);
            ("store_corruptions_injected", Store.corruptions_injected t.store);
            ("cache_evictions",
             (Mutex.lock t.cmutex;
              let e = Lru.evictions t.cache in
              Mutex.unlock t.cmutex;
              e));
          ]
        @ counters;
      gauges;
      hists;
    }

(* ------------------------------------------------------------------ *)
(* per-request accounting: latency histogram, access log, slow log *)

let log_request t ~trace ~id ~tier ~outcome ~latency ~queue_depth =
  if List.mem tier tiers then Metrics.observe (serve_latency tier) latency;
  let fields threshold =
    (* field order is the byte order on disk; [ts] and [latency_s] are
       the only non-deterministic fields, and they sit mid-object so
       the CI can sed-strip them and byte-compare the rest *)
    [
      ("ts", Ucp_util.Json.Num (Unix.gettimeofday ()));
      ("trace_id", Ucp_util.Json.Str trace);
      ("id", Ucp_util.Json.Str id);
      ("tier", Ucp_util.Json.Str tier);
      ("outcome", Ucp_util.Json.Str outcome);
      ("latency_s", Ucp_util.Json.Num latency);
      ("queue_depth", Ucp_util.Json.Num (float_of_int queue_depth));
    ]
    @
    match threshold with
    | None -> []
    | Some th -> [ ("threshold_s", Ucp_util.Json.Num th) ]
  in
  Option.iter (fun l -> Ucp_obs.Access_log.write l (fields None)) t.alog;
  if latency >= t.cfg.slow_threshold_s then begin
    Metrics.incr (Lazy.force m_slow);
    Ucp_obs.Log.warn "[serve] slow request trace=%s id=%s tier=%s %.3fs" trace id
      tier latency;
    Option.iter
      (fun l -> Ucp_obs.Access_log.write l (fields (Some t.cfg.slow_threshold_s)))
      t.slog
  end

let outcome_of_response = function
  | P.Record _ -> "ok"
  | P.Retry _ -> "retry"
  | P.Failed { retryable = true; _ } -> "retryable_error"
  | P.Failed { retryable = false; _ } -> "error"
  | P.Health_stats _ | P.Metrics_text _ | P.Bye -> "ok"

let serve_case t ~trace_id id =
  (* adopt the client's trace id, or derive a deterministic one from
     the arrival index so untraced clients still correlate *)
  let ctx =
    match Option.bind trace_id Ctx.of_hex with
    | Some tid -> Ctx.root tid
    | None ->
      Ctx.derive ~seed:t.cfg.trace_seed
        ~index:(Atomic.fetch_and_add t.req_index 1)
  in
  let trace = Ctx.trace_hex ctx in
  let queue_depth = tally t (fun s -> s.inflight) in
  Metrics.set (Lazy.force m_queue_depth) (float_of_int queue_depth);
  Ctx.with_ctx ctx (fun () ->
      Trace.with_span ~name:"request"
        ~args:[ ("id", Trace.Str id) ]
        (fun () ->
          let t0 = Unix.gettimeofday () in
          let resp, tier = answer_case t ~trace:(Some trace) id in
          let latency = Unix.gettimeofday () -. t0 in
          Trace.set_arg "tier" (Trace.Str tier);
          Ucp_obs.Log.info "[serve] trace=%s id=%s tier=%s outcome=%s %.6fs" trace
            id tier (outcome_of_response resp) latency;
          log_request t ~trace ~id ~tier ~outcome:(outcome_of_response resp)
            ~latency ~queue_depth;
          resp))

(* ------------------------------------------------------------------ *)
(* connection plumbing *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let send fd resp = write_all fd (P.frame (P.response_to_string resp))

(* returns [false] when the connection should close *)
let handle_frame t fd payload =
  match P.request_of_string payload with
  | Error msg ->
    send fd (P.Failed { retryable = false; message = msg; trace_id = None });
    true
  | Ok (P.Case { id; trace_id }) ->
    send fd (serve_case t ~trace_id id);
    true
  | Ok P.Health ->
    send fd (health t);
    true
  | Ok P.Metrics ->
    send fd (P.Metrics_text (Ucp_obs.Expo.render (Ucp_obs.Metrics.dump ())));
    true
  | Ok P.Shutdown ->
    send fd P.Bye;
    Atomic.set t.stop true;
    false

let handle_conn t fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 65536 in
  let rec loop () =
    match P.unframe (Buffer.contents buf) with
    | P.Frame (payload, rest) ->
      Buffer.clear buf;
      Buffer.add_string buf rest;
      if handle_frame t fd payload then loop ()
    | P.Malformed msg ->
      (* never try to resynchronize a broken stream: one structured
         error, then hang up *)
      send fd
        (P.Failed
           { retryable = false; message = "protocol error: " ^ msg; trace_id = None })
    | P.Incomplete -> (
      (* poll so an idle connection notices a draining daemon *)
      match Unix.select [ fd ] [] [] 0.2 with
      | [], _, _ ->
        if Atomic.get t.stop && Buffer.length buf = 0 then () else loop ()
      | _ -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()  (* peer closed *)
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          loop ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ())
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try loop ()
      with
      | Unix.Unix_error _ | Sys_error _ ->
        (* a vanished client is the client's problem, not the daemon's *)
        ())

(* ------------------------------------------------------------------ *)
(* lifecycle *)

let install_signals t =
  let quit _ = Atomic.set t.stop true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle quit);
  Sys.set_signal Sys.sigint (Sys.Signal_handle quit);
  (* a client that disappears mid-answer must not kill the daemon *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let run ?(signals = true) cfg =
  if cfg.jobs < 1 then invalid_arg "Server.run: jobs must be positive";
  if cfg.queue_limit < 1 then invalid_arg "Server.run: queue limit must be positive";
  if not (Float.is_finite cfg.slow_threshold_s) || cfg.slow_threshold_s < 0.0 then
    invalid_arg "Server.run: slow threshold must be a non-negative number";
  (* the health query reads registry counters, so the daemon always
     meters itself *)
  Ucp_obs.Metrics.enable ();
  (* pre-register the per-tier family so the exposition shows all four
     tiers from the first scrape, observed or not *)
  List.iter (fun tier -> ignore (serve_latency tier)) tiers;
  if cfg.trace <> None then Trace.start ();
  let store = Store.open_ ~dir:cfg.store_dir in
  let t =
    {
      cfg;
      stop = Atomic.make false;
      pool = Parallel.create ~respawn:true ~jobs:cfg.jobs ();
      store;
      cache = Lru.create ~capacity:cfg.cache_capacity;
      cmutex = Mutex.create ();
      memo = Experiments.Analysis_memo.create ();
      models = Hashtbl.create 16;
      mmutex = Mutex.create ();
      stats =
        {
          smutex = Mutex.create ();
          requests_total = 0;
          cache_hits = 0;
          cache_misses = 0;
          store_hits = 0;
          computed_total = 0;
          shed_total = 0;
          inflight = 0;
        };
      alog = Option.map Ucp_obs.Access_log.open_ cfg.access_log;
      slog = Option.map Ucp_obs.Access_log.open_ cfg.slow_log;
      req_index = Atomic.make 0;
    }
  in
  if signals then install_signals t;
  (* crash-only restart: a previous kill -9 leaves the socket file
     behind; it is dead weight, not state — remove and rebind *)
  (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket);
     Unix.listen listen_fd 16
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  Ucp_obs.Log.out
    (Printf.sprintf "[serve] listening on %s (store %s, %d workers, cache %d)"
       cfg.socket cfg.store_dir cfg.jobs cfg.cache_capacity);
  let conns = ref [] in
  let cmutex = Mutex.create () in
  let accept_loop () =
    while not (Atomic.get t.stop) do
      match Unix.select [ listen_fd ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ -> (
        match Unix.accept listen_fd with
        | fd, _ ->
          let th = Thread.create (fun () -> handle_conn t fd) () in
          Mutex.lock cmutex;
          conns := th :: !conns;
          Mutex.unlock cmutex
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
      (* drain: every accepted connection finishes its current request
         (in-flight computations included — their connection threads
         block on the pool), then the pool itself is drained *)
      let rec join () =
        Mutex.lock cmutex;
        let ths = !conns in
        conns := [];
        Mutex.unlock cmutex;
        if ths <> [] then begin
          List.iter Thread.join ths;
          join ()
        end
      in
      join ();
      Parallel.shutdown t.pool;
      Option.iter Ucp_obs.Access_log.close t.alog;
      Option.iter Ucp_obs.Access_log.close t.slog;
      (match cfg.trace with
      | Some path ->
        Trace.stop ();
        Trace.export path;
        Ucp_obs.Log.out
          (Printf.sprintf "[serve] trace written to %s (%d spans dropped)" path
             (Trace.dropped ()))
      | None -> ());
      Ucp_obs.Log.out "[serve] drained, shut down")
    accept_loop
