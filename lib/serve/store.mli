(** Content-addressed on-disk result store of the analysis service.

    One file per use case, named by {!key} — a digest of the case's
    singleton-grid {!Ucp_core.Checkpoint.fingerprint} plus its
    {!Ucp_core.Experiments.case_id} — holding the case's checkpoint
    record line (floats serialized losslessly) behind a CRC-32 header.

    Durability and self-healing are the point:

    - {!put} writes via temp file + fsync + rename (reusing
      {!Ucp_core.Checkpoint.write_atomic}), so a crash mid-write leaves
      either no entry or a complete one — never a torn file under the
      final name.
    - {!find} verifies the checksum on every read; a corrupt entry is
      {e quarantined} (renamed to [<entry>.quarantine], bytes kept for
      post-mortem) and reported as a miss, which the daemon answers by
      recomputing and re-persisting.  Corruption is never fatal.
    - {!open_} sweeps temp files left by a [kill -9], so restart
      recovery needs no tooling: the store {e is} the daemon's only
      persistent state (crash-only design).

    A [Fault.Corrupt_store] hook on a case makes {!put} scribble one
    byte of that entry after persisting it — the test harness for the
    quarantine path. *)

type t

val open_ : dir:string -> t
(** Open (creating directories as needed) and sweep stale temp files. *)

val dir : t -> string

val key : ?refine:Ucp_refine.Mode.t -> Ucp_core.Experiments.case -> string
(** Stable content address of a case (hex digest).  [?refine] (default
    [Off]) is hashed into the address via the fingerprint, so entries
    computed under different refine modes never alias. *)

val find : t -> key:string -> string option
(** The stored record line, or [None] on a miss {e or} a corrupt entry
    (which is quarantined as a side effect).  Thread-safe. *)

val put : t -> id:string -> key:string -> string -> unit
(** Persist a record line durably; [id] is the case id (consulted for
    the [Corrupt_store] fault hook).  Thread-safe. *)

val quarantine : t -> key:string -> string -> unit
(** Quarantine an entry explicitly (e.g. the daemon found the bytes
    checksum-clean but semantically unparseable); the string is the
    reason logged. *)

val quarantined : t -> int
(** Entries quarantined since {!open_}. *)

val corruptions_injected : t -> int
(** Entries scribbled by the [Corrupt_store] fault hook since
    {!open_} (test observability). *)
