module Rng = Ucp_util.Rng
module Backoff = Ucp_util.Backoff
module P = Protocol

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* read until one whole frame has arrived (responses are one frame) *)
let read_response fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 65536 in
  let rec loop () =
    match P.unframe (Buffer.contents buf) with
    | P.Frame (payload, _) -> P.response_of_string payload
    | P.Malformed msg -> Error ("malformed frame from daemon: " ^ msg)
    | P.Incomplete -> (
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> Error "connection closed mid-response"
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ())
  in
  loop ()

let once ~socket req =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "socket: %s" (Unix.error_message e))
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        match Unix.connect fd (Unix.ADDR_UNIX socket) with
        | exception Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "connect %s: %s" socket (Unix.error_message e))
        | () -> (
          match write_all fd (P.frame (P.request_to_string req)) with
          | exception Unix.Unix_error (e, _, _) ->
            Error (Printf.sprintf "send: %s" (Unix.error_message e))
          | () -> read_response fd))

let idempotent = function
  | P.Case _ | P.Health | P.Metrics -> true
  | P.Shutdown -> false

(* Every failure mode short of a definitive daemon answer is worth a
   retry for an idempotent request: connection refused (daemon
   restarting), a torn response (daemon killed mid-answer), an explicit
   [Retry] shed, and [Failed {retryable = true}] (a worker domain died
   under the request).  Delays follow the decorrelated-jitter schedule
   seeded by [?seed], so a retry storm cannot synchronize and the test
   suite can pin the exact timing. *)
let query ?(retries = 8) ?(seed = 1) ?base ?cap ~socket req =
  let b = Backoff.create ?base ?cap (Rng.create seed) in
  let sleep hint =
    let d = Backoff.next b in
    Unix.sleepf (Float.max d hint)
  in
  let rec go attempt last_err =
    if attempt > retries then
      Error (Printf.sprintf "giving up after %d attempts: %s" retries last_err)
    else
      match once ~socket req with
      | Ok (P.Retry { after_s; reason; _ }) when idempotent req ->
        sleep after_s;
        go (attempt + 1) (Printf.sprintf "daemon shedding load: %s" reason)
      | Ok (P.Failed { retryable = true; message; _ }) when idempotent req ->
        sleep 0.0;
        go (attempt + 1) message
      | Ok resp -> Ok resp
      | Error msg when idempotent req ->
        sleep 0.0;
        go (attempt + 1) msg
      | Error _ as e -> e
  in
  go 1 "no attempt made"
