(** Client side of the analysis service.

    {!query} retries {e idempotent} requests ([Case], [Health]) through
    every transient failure mode — connection refused while the daemon
    (re)starts, a connection torn mid-response by a daemon crash, an
    explicit load-shedding [Retry], and retryable errors such as a
    worker domain dying under the request.  Delays follow exponential
    backoff with decorrelated jitter ({!Ucp_util.Backoff}), entirely
    driven by the deterministic {!Ucp_util.Rng} seed, so retry timing
    is reproducible.  [Shutdown] is never retried: one attempt, and any
    transport error is returned as-is. *)

val once :
  socket:string -> Protocol.request -> (Protocol.response, string) result
(** One attempt: connect, send, read one response.  No retries. *)

val query :
  ?retries:int ->
  ?seed:int ->
  ?base:float ->
  ?cap:float ->
  socket:string ->
  Protocol.request ->
  (Protocol.response, string) result
(** Retrying query: up to [?retries] (default 8) attempts for
    idempotent requests, sleeping [max backoff retry_after] between
    attempts ([?base]/[?cap] as in {!Ucp_util.Backoff.create}; [?seed]
    default 1 drives the jitter).  Returns the first definitive daemon
    answer — including non-retryable [Failed]s — or [Error] once the
    attempts are exhausted. *)
