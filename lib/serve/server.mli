(** The analysis daemon: answers {!Protocol} requests over a
    Unix-domain socket.

    A [Case] query is answered from, in order:

    + the in-memory LRU result cache ({!Protocol.Memory}),
    + the content-addressed on-disk {!Store} ({!Protocol.Store}) —
      corrupt entries are quarantined and fall through,
    + cold evaluation on a {!Ucp_core.Parallel} worker pool
      ({!Protocol.Computed}), after which the result is persisted and
      cached.

    Whatever the source, the answer's [json] is byte-identical to the
    {!Ucp_core.Report.record_json} line a batch sweep would emit for
    the same case: the store and cache keep the lossless checkpoint
    record line and the JSON is re-rendered from the identical floats.

    Robustness properties (each exercised by a [Fault] hook and the CI
    serve smoke):

    - {e worker death}: the pool runs with [~respawn:true]; a domain
      killed mid-request is replaced, and the dying task's request slot
      is filled with a retryable error so the client retries instead of
      hanging.
    - {e load shedding}: at most [queue_limit] cold evaluations are in
      flight; beyond that, cold queries get a structured
      [Retry {after_s}] while cache and store hits keep being served —
      overload degrades to cache-only answers, it does not stall.
    - {e crash-only}: all persistent state lives in the store.  Startup
      unlinks a stale socket and sweeps temp files, so recovery from
      [kill -9] is just "start it again".
    - {e graceful drain}: SIGTERM/SIGINT (or a [Shutdown] request)
      stops accepting, finishes every in-flight request, drains the
      pool and returns.

    Telemetry: every [Case] request runs under a {!Ucp_obs.Ctx} trace
    context — the client's id if it sent one, else a deterministic
    server-derived one — which is echoed in the response, stamped on
    every span the request opens (admission, cache/store lookup, cold
    compute on the pool), logged on every request log line, and written
    to the access and slow-query logs.  Latency is observed per tier in
    the [serve_latency_s{tier=...}] histograms; the full registry is
    served as Prometheus text by the [Metrics] query. *)

type config = {
  socket : string;  (** Unix-domain socket path *)
  store_dir : string;  (** result store directory (created) *)
  jobs : int;  (** worker domains for cold evaluation *)
  cache_capacity : int;  (** LRU entries; 0 disables the memory cache *)
  queue_limit : int;  (** max in-flight cold evaluations before shedding *)
  timeout : float option;  (** per-case cooperative deadline, seconds *)
  refine : Ucp_refine.Mode.t;
      (** exact-refinement mode for cold evaluations; part of the
          store's content address, so entries computed under different
          modes never alias *)
  access_log : string option;
      (** JSONL access log: one line per [Case] request (trace id, case
          id, tier, outcome, latency, queue depth) — deterministic
          modulo the [ts]/[latency_s] fields *)
  slow_log : string option;
      (** JSONL slow-query log: requests at or above
          [slow_threshold_s], same shape plus the threshold *)
  slow_threshold_s : float;  (** slow-query threshold, seconds *)
  trace : string option;
      (** record spans while serving and export a Chrome trace here on
          drain; each request's spans carry its trace id *)
  trace_seed : int;
      (** seed for the deterministic trace ids assigned to requests
          that arrive without one *)
}

val default_config : socket:string -> store_dir:string -> config
(** 2 workers, 64 cache entries, queue limit 32, no timeout, refine
    [Nc]; no access/slow logs, slow threshold 1 s, no trace. *)

val run : ?signals:bool -> config -> unit
(** Serve until SIGTERM/SIGINT or a [Shutdown] request, then drain and
    return.  [?signals] (default true) installs the TERM/INT handlers
    and ignores SIGPIPE; pass [false] when embedding the server in a
    test thread.  Metrics are enabled unconditionally (the health query
    reads the registry).
    @raise Invalid_argument on a non-positive [jobs]/[queue_limit];
    @raise Unix.Unix_error if the socket cannot be bound. *)
