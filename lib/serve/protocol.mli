(** Wire protocol of the analysis service: length-framed JSON messages
    over a Unix-domain socket.

    Each message is one frame — ["<decimal length>\n<payload>\n"] — and
    each payload is one compact JSON object carrying a protocol
    version.  Framing and JSON are decoded strictly: a torn frame is
    distinguishable from a malformed one ({!Incomplete} vs
    {!Malformed}), and garbage never parses as a message, so a client
    talking to the wrong socket gets a clean error instead of
    undefined behaviour.

    The telemetry revision extends version 1 {e additively}: requests
    may carry an optional [trace_id] (16 lowercase hex digits, see
    {!Ucp_obs.Ctx}) which the daemon echoes in its answer; the health
    reply grew optional [gauges] and [hists] objects next to the
    original integer [stats]; and a [metrics] query returns the full
    registry as Prometheus text.  A message without the new fields is
    byte-identical to the pre-telemetry encoding, so old and new peers
    interoperate both ways. *)

(** {2 Messages} *)

type request =
  | Case of { id : string; trace_id : string option }
      (** evaluate (or recall) one use case by {!Experiments.case_id};
          [trace_id] is the client-assigned request trace id, echoed in
          the reply and stamped on every daemon log line and span *)
  | Health  (** daemon statistics snapshot *)
  | Metrics  (** full metrics registry as Prometheus exposition text *)
  | Shutdown  (** ack with {!Bye}, then drain and exit *)

(** Where the answer came from — surfaced so tests and the CI smoke can
    assert cache behaviour. *)
type source =
  | Memory  (** in-memory LRU result cache *)
  | Store  (** on-disk content-addressed store *)
  | Computed  (** cold: evaluated on the worker pool *)

type hist_stat = { hs_count : int; hs_sum : float }
(** Histogram summary riding the health reply (full bucket vectors go
    through {!Metrics}). *)

type health = {
  counters : (string * int) list;
      (** integer counters — the original health payload *)
  gauges : (string * float) list;
  hists : (string * hist_stat) list;
}

type response =
  | Record of { id : string; source : source; json : string; trace_id : string option }
      (** [json] is the {!Ucp_core.Report.record_json} line of the case
          — byte-identical to what a batch sweep would emit for it *)
  | Health_stats of health
  | Metrics_text of string  (** Prometheus text, see {!Ucp_obs.Expo} *)
  | Retry of { after_s : float; reason : string; trace_id : string option }
      (** load shed: come back after [after_s] seconds *)
  | Failed of { retryable : bool; message : string; trace_id : string option }
  | Bye  (** shutdown acknowledged *)

val version : int

val valid_trace_id : string -> bool
(** Exactly 16 lowercase hex digits — the {!Ucp_obs.Ctx.to_hex} form.
    Anything else is rejected at decode time: the id lands verbatim in
    log lines and trace files. *)

(** {2 Framing} *)

val max_frame : int
(** Upper bound on a payload (16 MiB); larger frames are rejected
    before any allocation proportional to the claimed length. *)

val frame : string -> string
(** Wrap a payload.
    @raise Invalid_argument beyond {!max_frame}. *)

type unframed =
  | Frame of string * string
      (** one complete payload, plus the unconsumed tail of the input *)
  | Incomplete  (** a prefix of a valid frame: read more bytes *)
  | Malformed of string  (** this byte stream can never frame: drop it *)

val unframe : string -> unframed
(** Incremental decoder over whatever has been received so far. *)

(** {2 Serialization} — total inverses: [of_string (to_string m) = Ok m]. *)

val request_to_string : request -> string
val request_of_string : string -> (request, string) result
val response_to_string : response -> string
val response_of_string : string -> (response, string) result
