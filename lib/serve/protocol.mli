(** Wire protocol of the analysis service: length-framed JSON messages
    over a Unix-domain socket.

    Each message is one frame — ["<decimal length>\n<payload>\n"] — and
    each payload is one compact JSON object carrying a protocol
    version.  Framing and JSON are decoded strictly: a torn frame is
    distinguishable from a malformed one ({!Incomplete} vs
    {!Malformed}), and garbage never parses as a message, so a client
    talking to the wrong socket gets a clean error instead of
    undefined behaviour. *)

(** {2 Messages} *)

type request =
  | Case of string
      (** evaluate (or recall) one use case by {!Experiments.case_id} *)
  | Health  (** daemon statistics snapshot *)
  | Shutdown  (** ack with {!Bye}, then drain and exit *)

(** Where the answer came from — surfaced so tests and the CI smoke can
    assert cache behaviour. *)
type source =
  | Memory  (** in-memory LRU result cache *)
  | Store  (** on-disk content-addressed store *)
  | Computed  (** cold: evaluated on the worker pool *)

type response =
  | Record of { id : string; source : source; json : string }
      (** [json] is the {!Ucp_core.Report.record_json} line of the case
          — byte-identical to what a batch sweep would emit for it *)
  | Health_stats of (string * int) list
  | Retry of { after_s : float; reason : string }
      (** load shed: come back after [after_s] seconds *)
  | Failed of { retryable : bool; message : string }
  | Bye  (** shutdown acknowledged *)

val version : int

(** {2 Framing} *)

val max_frame : int
(** Upper bound on a payload (16 MiB); larger frames are rejected
    before any allocation proportional to the claimed length. *)

val frame : string -> string
(** Wrap a payload.
    @raise Invalid_argument beyond {!max_frame}. *)

type unframed =
  | Frame of string * string
      (** one complete payload, plus the unconsumed tail of the input *)
  | Incomplete  (** a prefix of a valid frame: read more bytes *)
  | Malformed of string  (** this byte stream can never frame: drop it *)

val unframe : string -> unframed
(** Incremental decoder over whatever has been received so far. *)

(** {2 Serialization} — total inverses: [of_string (to_string m) = Ok m]. *)

val request_to_string : request -> string
val request_of_string : string -> (request, string) result
val response_to_string : response -> string
val response_of_string : string -> (response, string) result
