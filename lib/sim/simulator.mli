(** Trace-driven execution: the repository's GEM5 substitute.

    Walks the CFG concretely, driving branch decisions from each
    conditional's {!Ucp_isa.Branch_model.t}, and models the timed memory
    system: a set-associative instruction cache under any
    {!Ucp_policy} replacement policy (LRU, FIFO or tree-PLRU), a
    constant-latency DRAM, and a non-blocking prefetch port.  A demand
    fetch of a block whose prefetch is still in flight stalls only for
    the remaining latency.

    Produces the event counts the energy model consumes and the ACET in
    cycles.  Runs are deterministic for a given seed. *)

type stats = {
  counts : Ucp_energy.Account.counts;
  executed : int;  (** dynamically executed instructions (Figure 8) *)
  executed_prefetches : int;  (** executed software-prefetch instructions *)
  hw_issued : int;  (** prefetches issued by a hardware scheme *)
  late_prefetch_stall_cycles : int;
      (** cycles stalled on blocks whose prefetch had not completed *)
  miss_rate : float;  (** demand misses / fetches *)
}

val run :
  ?seed:int ->
  ?max_steps:int ->
  ?policy:Ucp_cache.Concrete.policy ->
  ?hw:Hw_prefetch.t ->
  ?locked:int list ->
  ?pinned:int list ->
  ?cache_config:Ucp_cache.Config.t ->
  ?on_fetch:(block:int -> pos:int -> hit:bool -> unit) ->
  ?branch_oracle:(int -> bool) ->
  Ucp_isa.Program.t ->
  Ucp_cache.Config.t ->
  Ucp_energy.Cacti.t ->
  stats
(** Execute the program to its [Return].  [~policy] selects the
    concrete replacement policy (default LRU); the abstract analyses
    are policy-parametric too ({!Ucp_wcet.Analysis.run}), so pass the
    same policy on both sides when cross-validating.  [~on_fetch] is
    invoked at every demand fetch with the static slot coordinates
    [(block, pos)] (the terminator sits at [pos = body length]) and the
    hit/miss verdict — the hook the per-policy soundness
    cross-validation test uses to compare the simulator against the
    abstract classification.  [~branch_oracle], when given, overrides
    every conditional's branch model: [oracle block] decides whether
    the conditional ending [block] is taken at this dynamic instance —
    the hook witness replay ({!Ucp_verify}) uses to force the
    simulator down the abstract WCET path.  [~locked]
    switches the cache into fully-locked mode: the given memory blocks
    always hit, everything else always misses, no allocation happens,
    and prefetch instructions have no memory effect (the cache-locking
    baseline).  [~pinned] instead locks only {e part} of the cache: the
    given blocks always hit while the rest of the program runs through
    a normal cache of geometry [~cache_config] (the unlocked ways) —
    the hybrid locking+prefetching mode [16, 2].
    @raise Failure if [max_steps] (default 3,000,000) instructions are
    exceeded — a diverging branch model. *)

val acet : stats -> int
(** Memory contribution to the average-case execution time, cycles. *)
