module Program = Ucp_isa.Program
module Layout = Ucp_isa.Layout
module Instr = Ucp_isa.Instr
module Branch_model = Ucp_isa.Branch_model
module Concrete = Ucp_cache.Concrete
module Account = Ucp_energy.Account
module Cacti = Ucp_energy.Cacti
module Rng = Ucp_util.Rng

type stats = {
  counts : Account.counts;
  executed : int;
  executed_prefetches : int;
  hw_issued : int;
  late_prefetch_stall_cycles : int;
  miss_rate : float;
}

type state = {
  program : Program.t;
  layout : Layout.t;
  cache : Concrete.t;
  model : Cacti.t;
  rng : Rng.t;
  in_flight : (int, int) Hashtbl.t;  (* mem block -> ready cycle *)
  branch_counts : (int, int) Hashtbl.t;  (* block id -> cond executions *)
  mutable cycles : int;
  mutable fetches : int;
  mutable hits : int;
  mutable misses : int;
  mutable prefetch_dram_reads : int;
  mutable prefetch_fills : int;
  mutable executed : int;
  mutable executed_prefetches : int;
  mutable hw_issued : int;
  mutable late_stalls : int;
}

(* Launch a prefetch of [mb] unless it is resident.  The cache line is
   allocated immediately (as an MSHR would), so the concrete content
   evolution matches the abstract semantics, which applies the fill at
   the prefetch point; the data only becomes usable Λ cycles later —
   an earlier demand access stalls for the remainder.  Returns true
   when a DRAM read was started. *)
let issue_prefetch st mb =
  if Concrete.contains st.cache mb then begin
    (* resident target: no memory traffic, but the prefetch still
       refreshes the line's recency (matching the abstract fill) *)
    ignore (Concrete.fill st.cache mb);
    false
  end
  else begin
    ignore (Concrete.fill st.cache mb);
    Hashtbl.replace st.in_flight mb (st.cycles + st.model.Cacti.prefetch_latency);
    st.prefetch_dram_reads <- st.prefetch_dram_reads + 1;
    st.prefetch_fills <- st.prefetch_fills + 1;
    true
  end

(* Fetch the instruction at [addr]'s block: accounts time and energy
   events; returns whether it hit without any stall. *)
let fetch_locked st locked mb =
  st.fetches <- st.fetches + 1;
  if Hashtbl.mem locked mb then begin
    st.hits <- st.hits + 1;
    st.cycles <- st.cycles + st.model.Cacti.hit_cycles;
    true
  end
  else begin
    (* locked caches never allocate: every unlocked access pays DRAM *)
    st.misses <- st.misses + 1;
    st.cycles <- st.cycles + st.model.Cacti.hit_cycles + st.model.Cacti.miss_penalty;
    false
  end

let fetch_demand st mb =
  st.fetches <- st.fetches + 1;
  if Concrete.contains st.cache mb then begin
    (* stall if the line's prefetch is still in flight *)
    (match Hashtbl.find_opt st.in_flight mb with
    | Some ready ->
      Hashtbl.remove st.in_flight mb;
      let stall = max 0 (ready - st.cycles) in
      st.cycles <- st.cycles + stall;
      st.late_stalls <- st.late_stalls + stall
    | None -> ());
    ignore (Concrete.access st.cache mb);
    st.hits <- st.hits + 1;
    st.cycles <- st.cycles + st.model.Cacti.hit_cycles;
    true
  end
  else begin
    (* a stale in-flight entry means the line was re-evicted before use *)
    Hashtbl.remove st.in_flight mb;
    ignore (Concrete.access st.cache mb);
    st.misses <- st.misses + 1;
    st.cycles <- st.cycles + st.model.Cacti.hit_cycles + st.model.Cacti.miss_penalty;
    false
  end

let cond_decision st block model =
  let count = try Hashtbl.find st.branch_counts block with Not_found -> 0 in
  Hashtbl.replace st.branch_counts block (count + 1);
  match model with
  | Branch_model.Always_taken -> true
  | Branch_model.Never_taken -> false
  | Branch_model.Every k -> count mod k < k - 1
  | Branch_model.Bernoulli p -> Rng.bernoulli st.rng p

let run ?(seed = 42) ?(max_steps = 3_000_000) ?(policy = Concrete.Lru) ?hw ?locked
    ?(pinned = []) ?cache_config ?on_fetch ?branch_oracle program config model =
  let layout = Layout.make program ~block_bytes:config.Ucp_cache.Config.block_bytes in
  let cache_config = match cache_config with Some c -> c | None -> config in
  let hw = match hw with Some h -> h | None -> Hw_prefetch.none () in
  let locked_tbl =
    match locked with
    | None -> None
    | Some blocks ->
      let tbl = Hashtbl.create 16 in
      List.iter (fun mb -> Hashtbl.replace tbl mb ()) blocks;
      Some tbl
  in
  let pinned_tbl = Hashtbl.create 16 in
  List.iter (fun mb -> Hashtbl.replace pinned_tbl mb ()) pinned;
  let is_pinned mb = Hashtbl.mem pinned_tbl mb in
  let st =
    {
      program;
      layout;
      cache = Concrete.create ~policy cache_config;
      model;
      rng = Rng.create seed;
      in_flight = Hashtbl.create 8;
      branch_counts = Hashtbl.create 16;
      cycles = 0;
      fetches = 0;
      hits = 0;
      misses = 0;
      prefetch_dram_reads = 0;
      prefetch_fills = 0;
      executed = 0;
      executed_prefetches = 0;
      hw_issued = 0;
      late_stalls = 0;
    }
  in
  let fetch st mb =
    match locked_tbl with
    | Some tbl -> fetch_locked st tbl mb
    | None ->
      if is_pinned mb then begin
        (* locked way: unconditional hit, no replacement effect *)
        st.fetches <- st.fetches + 1;
        st.hits <- st.hits + 1;
        st.cycles <- st.cycles + st.model.Cacti.hit_cycles;
        true
      end
      else fetch_demand st mb
  in
  (* Demand fetch of the slot at [(block, pos)], reporting the static
     slot coordinates and the hit/miss verdict to [?on_fetch] (the
     soundness cross-validation probe). *)
  let fetch_at st ~block ~pos mb =
    let hit = fetch st mb in
    (match on_fetch with
    | Some probe -> probe ~block ~pos ~hit
    | None -> ());
    hit
  in
  let hw_observe info =
    List.iter
      (fun mb ->
        if (not (is_pinned mb)) && issue_prefetch st mb then
          st.hw_issued <- st.hw_issued + 1)
      (Hw_prefetch.observe hw info)
  in
  let rec exec_block block =
    if st.executed > max_steps then
      failwith
        (Printf.sprintf "Simulator.run: %s exceeded %d instructions"
           (Program.name program) max_steps);
    let b = Program.block program block in
    let body_len = Array.length b.Program.body in
    (* body slots *)
    for pos = 0 to body_len - 1 do
      let addr = Layout.addr layout ~block ~pos in
      let mb = Layout.mem_block_of_addr layout addr in
      let hit = fetch_at st ~block ~pos mb in
      st.executed <- st.executed + 1;
      let instr = b.Program.body.(pos) in
      (match instr.Instr.kind with
      | Instr.Compute -> ()
      | Instr.Prefetch target_uid -> (
        st.executed_prefetches <- st.executed_prefetches + 1;
        if locked_tbl = None then
          match Layout.mem_block_of_uid layout target_uid with
          | Some target -> if not (is_pinned target) then ignore (issue_prefetch st target)
          | None -> failwith "Simulator.run: dangling prefetch target"));
      hw_observe
        {
          Hw_prefetch.mem_block = mb;
          hit;
          is_branch = false;
          branch_addr = addr;
          target_addr = None;
          taken = None;
        }
    done;
    (* terminator *)
    match b.Program.term with
    | Program.Fallthrough target -> exec_block target
    | Program.Jump { target; _ } ->
      let addr = Layout.addr layout ~block ~pos:body_len in
      let mb = Layout.mem_block_of_addr layout addr in
      let hit = fetch_at st ~block ~pos:body_len mb in
      st.executed <- st.executed + 1;
      hw_observe
        {
          Hw_prefetch.mem_block = mb;
          hit;
          is_branch = false;
          branch_addr = addr;
          target_addr = None;
          taken = None;
        };
      exec_block target
    | Program.Return _ ->
      let addr = Layout.addr layout ~block ~pos:body_len in
      let mb = Layout.mem_block_of_addr layout addr in
      let _hit = fetch_at st ~block ~pos:body_len mb in
      st.executed <- st.executed + 1
    | Program.Cond { taken; fallthrough; model = bm; _ } ->
      let addr = Layout.addr layout ~block ~pos:body_len in
      let mb = Layout.mem_block_of_addr layout addr in
      let hit = fetch_at st ~block ~pos:body_len mb in
      st.executed <- st.executed + 1;
      let decision =
        match branch_oracle with
        | Some oracle -> oracle block
        | None -> cond_decision st block bm
      in
      let target_addr =
        try Some (Layout.addr layout ~block:taken ~pos:0)
        with Invalid_argument _ -> None
      in
      hw_observe
        {
          Hw_prefetch.mem_block = mb;
          hit;
          is_branch = true;
          branch_addr = addr;
          target_addr;
          taken = Some decision;
        };
      exec_block (if decision then taken else fallthrough)
  in
  exec_block (Program.entry program);
  if Ucp_obs.Metrics.enabled () then begin
    (* label value quoted so the registry name is already valid
       Prometheus exposition syntax when Expo renders it *)
    let label = Printf.sprintf "{policy=%S}" (Ucp_policy.to_string policy) in
    Ucp_obs.Metrics.add
      (Ucp_obs.Metrics.counter ("cache_fetches_total" ^ label))
      st.fetches;
    Ucp_obs.Metrics.add
      (Ucp_obs.Metrics.counter ("cache_misses_total" ^ label))
      st.misses
  end;
  let counts =
    {
      Account.fetches = st.fetches;
      hits = st.hits;
      misses = st.misses;
      prefetch_dram_reads = st.prefetch_dram_reads;
      prefetch_fills = st.prefetch_fills;
      cycles = st.cycles;
    }
  in
  {
    counts;
    executed = st.executed;
    executed_prefetches = st.executed_prefetches;
    hw_issued = st.hw_issued;
    late_prefetch_stall_cycles = st.late_stalls;
    miss_rate =
      (if st.fetches = 0 then 0.0
       else float_of_int st.misses /. float_of_int st.fetches);
  }

let acet stats = stats.counts.Account.cycles
