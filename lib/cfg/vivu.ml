module Program = Ucp_isa.Program

type mark = First | Rest

type node = { block : int; ctx : (int * mark) list }

type t = {
  program : Program.t;
  forest : Loops.forest;
  nodes : node array;
  dag_succ : int list array;
  dag_pred : int list array;
  iter_succ : int list array;
  iter_pred : int list array;
  mult : int array;
  entry : int;
  exit_nodes : int list;
  topo : int array;
  index : (int * (int * mark) list, int) Hashtbl.t;
  by_block : int list array;
}

let loop_chain forest b =
  List.map (fun (l : Loops.loop) -> l.Loops.index) (Loops.loops_of_block forest b)

(* Context transition along a CFG edge u -> v given u's context. *)
let transition forest ~ctx_u ~u ~v =
  let is_back = Loops.is_back_edge forest u v in
  if is_back then begin
    (* v is the header of some loop L in u's chain; truncate the context
       at L and flip its mark to Rest.  The edge is a DAG edge when the
       old mark was First, an iteration edge when it was Rest. *)
    let rec cut = function
      | [] ->
        invalid_arg
          (Printf.sprintf "Vivu: back edge %d->%d escapes context" u v)
      | (l, mark) :: tl ->
        if forest.Loops.loops.(l).Loops.header = v then ([ (l, Rest) ], mark)
        else
          let rest, old_mark = cut tl in
          ((l, mark) :: rest, old_mark)
    in
    let ctx_v, old_mark = cut ctx_u in
    (ctx_v, old_mark = Rest)
  end
  else begin
    (* Keep marks of loops still containing v; push First for a loop v
       now heads. *)
    let chain_v = loop_chain forest v in
    let kept = List.filter (fun (l, _) -> List.mem l chain_v) ctx_u in
    let kept_ids = List.map fst kept in
    let entered = List.filter (fun l -> not (List.mem l kept_ids)) chain_v in
    let ctx_v = kept @ List.map (fun l -> (l, First)) entered in
    (ctx_v, false)
  end

let expand program =
  let forest = Loops.analyze program in
  let index = Hashtbl.create 64 in
  let node_of_id = Hashtbl.create 64 in
  let n_nodes = ref 0 in
  let intern block ctx =
    match Hashtbl.find_opt index (block, ctx) with
    | Some id -> (id, false)
    | None ->
      let id = !n_nodes in
      incr n_nodes;
      Hashtbl.add index (block, ctx) id;
      Hashtbl.add node_of_id id { block; ctx };
      (id, true)
  in
  let dag_edges = ref [] and iter_edges = ref [] in
  let entry_block = Program.entry program in
  let entry_ctx = List.map (fun l -> (l, First)) (loop_chain forest entry_block) in
  let entry_id, _ = intern entry_block entry_ctx in
  let worklist = Queue.create () in
  Queue.add entry_id worklist;
  let seen_expanded = Hashtbl.create 64 in
  while not (Queue.is_empty worklist) do
    let u_id = Queue.take worklist in
    if not (Hashtbl.mem seen_expanded u_id) then begin
      Hashtbl.add seen_expanded u_id ();
      let { block = u; ctx = ctx_u } = Hashtbl.find node_of_id u_id in
      List.iter
        (fun v ->
          let ctx_v, is_iter = transition forest ~ctx_u ~u ~v in
          let v_id, fresh = intern v ctx_v in
          if is_iter then iter_edges := (u_id, v_id) :: !iter_edges
          else dag_edges := (u_id, v_id) :: !dag_edges;
          if fresh then Queue.add v_id worklist)
        (Program.successors program u)
    end
  done;
  let count = !n_nodes in
  let nodes = Array.init count (fun id -> Hashtbl.find node_of_id id) in
  let dag_succ = Array.make count [] in
  let dag_pred = Array.make count [] in
  let iter_succ = Array.make count [] in
  let iter_pred = Array.make count [] in
  List.iter
    (fun (a, b) ->
      dag_succ.(a) <- b :: dag_succ.(a);
      dag_pred.(b) <- a :: dag_pred.(b))
    !dag_edges;
  List.iter
    (fun (a, b) ->
      iter_succ.(a) <- b :: iter_succ.(a);
      iter_pred.(b) <- a :: iter_pred.(b))
    !iter_edges;
  let mult =
    Array.map
      (fun nd ->
        List.fold_left
          (fun acc (l, mark) ->
            match mark with
            | First -> acc
            | Rest -> acc * max 0 (forest.Loops.loops.(l).Loops.bound - 1))
          1 nd.ctx)
      nodes
  in
  (* Kahn topological sort over DAG edges. *)
  let indeg = Array.make count 0 in
  Array.iteri (fun _ succs -> List.iter (fun v -> indeg.(v) <- indeg.(v) + 1) succs) dag_succ;
  let q = Queue.create () in
  Array.iteri (fun id d -> if d = 0 then Queue.add id q) indeg;
  let topo = Array.make count (-1) in
  let filled = ref 0 in
  while not (Queue.is_empty q) do
    let id = Queue.take q in
    topo.(!filled) <- id;
    incr filled;
    List.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v q)
      dag_succ.(id)
  done;
  if !filled <> count then
    invalid_arg
      (Printf.sprintf "Vivu: expansion of %s is not acyclic (%d/%d sorted)"
         (Program.name program) !filled count);
  let exit_nodes =
    let acc = ref [] in
    Array.iteri
      (fun id nd ->
        match (Program.block program nd.block).Program.term with
        | Program.Return _ -> acc := id :: !acc
        | Program.Fallthrough _ | Program.Jump _ | Program.Cond _ -> ())
      nodes;
    List.rev !acc
  in
  let by_block = Array.make (Program.block_count program) [] in
  Array.iteri (fun id nd -> by_block.(nd.block) <- id :: by_block.(nd.block)) nodes;
  Array.iteri (fun b lst -> by_block.(b) <- List.rev lst) by_block;
  {
    program;
    forest;
    nodes;
    dag_succ;
    dag_pred;
    iter_succ;
    iter_pred;
    mult;
    entry = entry_id;
    exit_nodes;
    topo;
    index;
    by_block;
  }

let program t = t.program
let forest t = t.forest
let node_count t = Array.length t.nodes
let node t id = t.nodes.(id)
let entry t = t.entry
let exit_nodes t = t.exit_nodes
let dag_succ t id = t.dag_succ.(id)
let dag_pred t id = t.dag_pred.(id)
let iter_succ t id = t.iter_succ.(id)
let iter_pred t id = t.iter_pred.(id)
let all_pred t id = t.dag_pred.(id) @ t.iter_pred.(id)
let mult t id = t.mult.(id)
let topo t = t.topo
let find t ~block ~ctx = Hashtbl.find_opt t.index (block, ctx)
let instances_of_block t b = t.by_block.(b)

let pp_node t ppf id =
  let nd = t.nodes.(id) in
  let pp_mark ppf = function First -> Format.pp_print_char ppf 'F' | Rest -> Format.pp_print_char ppf 'R' in
  Format.fprintf ppf "b%d<%a>" nd.block
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       (fun ppf (l, m) -> Format.fprintf ppf "L%d:%a" l pp_mark m))
    nd.ctx
