(** VIVU virtual loop unrolling (Martin/Alt/Wilhelm style, peel factor
    one) as used by the paper (Section 4.1, Supplement S.3).

    Every basic block is instantiated once per {e context}: the chain of
    loops containing it, each marked [First] (first iteration per entry)
    or [Rest] (all later iterations).  Back edges from a [First] context
    lead to the [Rest] instance; back edges from a [Rest] context close
    a cycle and are kept apart as {e iteration edges} so that

    - the {e DAG edges} form an acyclic graph ("back edges are broken",
      Definition 6) used for topological sweeps, path analysis and the
      reverse optimization, and
    - abstract interpretation can still reach a sound fixpoint by also
      propagating along iteration edges.

    A node's {!mult} is its maximum execution count per program run
    ([First] contributes 1, [Rest] contributes [bound - 1],
    multiplicatively over the context chain). *)

type mark = First | Rest

type node = { block : int; ctx : (int * mark) list }
(** Context entries are [(loop index, mark)], outermost first. *)

type t

val expand : Ucp_isa.Program.t -> t
(** Analyze loops and expand.  @raise Invalid_argument on irreducible
    CFGs or missing loop bounds (see {!Loops.analyze}). *)

val program : t -> Ucp_isa.Program.t
val forest : t -> Loops.forest
val node_count : t -> int
val node : t -> int -> node
val entry : t -> int
(** Id of the entry node. *)

val exit_nodes : t -> int list
(** Nodes whose block returns. *)

val dag_succ : t -> int -> int list
val dag_pred : t -> int -> int list

val iter_succ : t -> int -> int list
(** Successors through iteration (rest back) edges only — the
    wrap-around edges a lap of the loop follows back to its rest
    header. *)

val iter_pred : t -> int -> int list
(** Predecessors through iteration (rest back) edges only. *)

val all_pred : t -> int -> int list
(** DAG plus iteration predecessors — the sound input set for abstract
    interpretation. *)

val mult : t -> int -> int
(** Maximum execution count of the node per program run. *)

val topo : t -> int array
(** Node ids in a topological order of the DAG edges (entry first). *)

val find : t -> block:int -> ctx:(int * mark) list -> int option
(** Node id lookup. *)

val instances_of_block : t -> int -> int list
(** All node ids instantiating a given basic block. *)

val pp_node : t -> Format.formatter -> int -> unit
(** E.g. ["b4<L0:F,L1:R>"]. *)
