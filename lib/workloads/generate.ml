(* Seeded random program generator over the structured DSL — the
   workload side of the fuzzing harness (ROADMAP item 5).

   Everything is a pure function of (seed, size class): the same pair
   regenerates the same program on any machine, so a campaign record
   carrying the two is a complete reproducer.  All randomness flows
   through {!Ucp_util.Rng} (SplitMix64), never [Random].

   The generator only ever emits programs {!Dsl.validate} accepts:
   loops are born nonempty with [1 <= trips <= bound], calls resolve to
   earlier-defined procedures (so the call graph is acyclic by
   construction), and [Far] bodies nest freely.  Nested loop trip
   counts are budgeted multiplicatively so the concrete simulator's
   work stays bounded regardless of shape. *)

module Rng = Ucp_util.Rng
module Branch_model = Ucp_isa.Branch_model

type shape = {
  g_class : string;  (** size-class label, part of generated names *)
  g_stmts : int;  (** statement budget for the whole program *)
  g_depth : int;  (** maximum structural nesting depth *)
  g_procs : int;  (** procedures to define (callable acyclically) *)
  g_max_trips : int;  (** per-loop trip-count cap *)
  g_work : int;  (** cap on the product of nested trip counts *)
}

let classes =
  [
    ("s", { g_class = "s"; g_stmts = 8; g_depth = 2; g_procs = 1; g_max_trips = 4; g_work = 16 });
    ("m", { g_class = "m"; g_stmts = 20; g_depth = 3; g_procs = 2; g_max_trips = 6; g_work = 36 });
    ("l", { g_class = "l"; g_stmts = 40; g_depth = 4; g_procs = 3; g_max_trips = 8; g_work = 64 });
  ]

let find_class c = List.assoc_opt c classes

let models rng =
  match Rng.int rng 6 with
  | 0 -> Branch_model.Always_taken
  | 1 -> Branch_model.Never_taken
  | 2 -> Branch_model.Every (2 + Rng.int rng 3)
  | 3 -> Branch_model.Bernoulli 0.25
  | 4 -> Branch_model.Bernoulli 0.5
  | _ -> Branch_model.Bernoulli 0.75

(* [mult] is the product of enclosing trip counts: a loop may only
   multiply it up to [shape.g_work], which bounds total concrete work
   at roughly [g_stmts * g_work] block executions. *)
let rec gen_stmts rng shape ~depth ~mult ~callable ~budget acc =
  if !budget <= 0 then List.rev acc
  else begin
    decr budget;
    let stmt = gen_stmt rng shape ~depth ~mult ~callable ~budget in
    (* geometric stop: longer sequences at shallow depth *)
    let stop = Rng.int rng (3 + depth) = 0 in
    if stop || !budget <= 0 then List.rev (stmt :: acc)
    else gen_stmts rng shape ~depth ~mult ~callable ~budget (stmt :: acc)
  end

and gen_stmt rng shape ~depth ~mult ~callable ~budget =
  let structural = depth < shape.g_depth && !budget > 0 in
  let loop_ok = structural && mult < shape.g_work in
  match Rng.int rng 10 with
  | 0 | 1 | 2 -> Dsl.Compute (Rng.int rng 13)
  | 3 | 4 when structural ->
    let then_ =
      gen_stmts rng shape ~depth:(depth + 1) ~mult ~callable ~budget []
    in
    let else_ =
      if Rng.bool rng then []
      else gen_stmts rng shape ~depth:(depth + 1) ~mult ~callable ~budget []
    in
    Dsl.If (models rng, then_, else_)
  | 5 | 6 when loop_ok ->
    let cap = max 1 (min shape.g_max_trips (shape.g_work / max 1 mult)) in
    let trips = 1 + Rng.int rng cap in
    let bound = trips + Rng.int rng 3 in
    let body =
      match
        gen_stmts rng shape ~depth:(depth + 1) ~mult:(mult * trips) ~callable
          ~budget []
      with
      | [] -> [ Dsl.Compute (1 + Rng.int rng 4) ]
      | body -> body
    in
    Dsl.Loop { bound; trips; body }
  | 7 when callable <> [] ->
    Dsl.Call (List.nth callable (Rng.int rng (List.length callable)))
  | 8 when structural ->
    let body =
      gen_stmts rng shape ~depth:(depth + 1) ~mult ~callable ~budget []
    in
    Dsl.Far (if body = [] then [ Dsl.Compute (1 + Rng.int rng 4) ] else body)
  | _ -> Dsl.Compute (1 + Rng.int rng 8)

let gen rng shape =
  (* procedures first; proc i may call only procs j < i, so inlining
     terminates by construction *)
  let procs = ref [] in
  for i = 0 to shape.g_procs - 1 do
    let callable = List.map fst !procs in
    let budget = ref (max 2 (shape.g_stmts / 4)) in
    let body =
      match gen_stmts rng shape ~depth:1 ~mult:1 ~callable ~budget [] with
      | [] -> [ Dsl.Compute (1 + Rng.int rng 4) ]
      | body -> body
    in
    procs := !procs @ [ (Printf.sprintf "p%d" i, body) ]
  done;
  let budget = ref shape.g_stmts in
  let callable = List.map fst !procs in
  let body =
    match gen_stmts rng shape ~depth:0 ~mult:1 ~callable ~budget [] with
    | [] -> [ Dsl.Compute 1 ]
    | body -> body
  in
  (body, !procs)

(* Generated names are parseable provenance: any record or journal line
   that carries the program name carries the reproducer.  The format
   contains no ':' (the case-id separator). *)
let name ~seed ~cls = Printf.sprintf "gen-%s-%d" cls seed

let parse_name n =
  match String.split_on_char '-' n with
  | [ "gen"; cls; seed ] -> (
    match (int_of_string_opt seed, find_class cls) with
    | Some seed, Some _ when seed >= 0 -> Some (seed, cls)
    | _ -> None)
  | _ -> None

let stmts ~seed ~cls =
  match find_class cls with
  | None -> invalid_arg (Printf.sprintf "Generate.stmts: unknown class %S" cls)
  | Some shape ->
    let rng = Rng.create (seed * 2 + Hashtbl.hash cls) in
    gen rng shape

let program ~seed ~cls =
  let body, procs = stmts ~seed ~cls in
  Dsl.compile ~procs ~name:(name ~seed ~cls) body
