module Program = Ucp_isa.Program
module Branch_model = Ucp_isa.Branch_model

type stmt =
  | Compute of int
  | If of Branch_model.t * stmt list * stmt list
  | Loop of { bound : int; trips : int; body : stmt list }
  | Call of string
  | Far of stmt list

let compute n = Compute n
let if_ ?(p = 0.5) then_ else_ = If (Branch_model.Bernoulli p, then_, else_)
let if_every k then_ else_ = If (Branch_model.Every k, then_, else_)

let loop ?bound trips body =
  let bound = match bound with Some b -> b | None -> trips in
  Loop { bound; trips; body }

let call name = Call name
let far_call name = Far [ Call name ]

(* The single validity check shared by the compiler, the random
   generator ({!Generate}) and the shrinker ({!Ucp_fuzz}): a validated
   program compiles without raising, and the CFG it compiles to is
   reducible with a bound on every natural loop header (structured
   control flow guarantees reducibility; the checks below guard the
   value-level invariants the structure cannot). *)
let validate ?(procs = []) stmts =
  let exception Invalid of string in
  let fail fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt in
  let rec check stack stmts = List.iter (check_stmt stack) stmts
  and check_stmt stack = function
    | Compute n -> if n < 0 then fail "negative Compute"
    | If (_, then_, else_) ->
      check stack then_;
      check stack else_
    | Loop { bound; trips; body } ->
      if body = [] then fail "empty loop body";
      if trips < 1 then fail "loop needs >= 1 trip";
      if trips > bound then fail "loop trips exceed its bound";
      check stack body
    | Far body -> check stack body
    | Call name -> (
      if List.mem name stack then fail "recursive call of %s" name;
      match List.assoc_opt name procs with
      | Some body -> check (name :: stack) body
      | None -> fail "unknown procedure %s" name)
  in
  match check [] stmts with () -> Ok () | exception Invalid msg -> Error msg

(* ------------------------------------------------------------------ *)
(* serialization: a lossless single-line s-expression round-trip, so a
   fuzzing corpus can store a shrunk program as replayable text *)

let string_of_model = function
  | Branch_model.Always_taken -> "at"
  | Branch_model.Never_taken -> "nt"
  | Branch_model.Every k -> Printf.sprintf "(every %d)" k
  (* %h prints the exact bit pattern as a hex float, so Bernoulli
     probabilities survive the text round-trip bit for bit *)
  | Branch_model.Bernoulli p -> Printf.sprintf "(bern %h)" p

let rec add_stmt buf = function
  | Compute n -> Buffer.add_string buf (Printf.sprintf "(c %d)" n)
  | If (m, then_, else_) ->
    Buffer.add_string buf (Printf.sprintf "(if %s " (string_of_model m));
    add_stmts buf then_;
    Buffer.add_char buf ' ';
    add_stmts buf else_;
    Buffer.add_char buf ')'
  | Loop { bound; trips; body } ->
    Buffer.add_string buf (Printf.sprintf "(loop %d %d " bound trips);
    add_stmts buf body;
    Buffer.add_char buf ')'
  | Call name -> Buffer.add_string buf (Printf.sprintf "(call %s)" name)
  | Far body ->
    Buffer.add_string buf "(far ";
    add_stmts buf body;
    Buffer.add_char buf ')'

and add_stmts buf stmts =
  Buffer.add_char buf '(';
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ' ';
      add_stmt buf s)
    stmts;
  Buffer.add_char buf ')'

let to_string ?(procs = []) stmts =
  let buf = Buffer.create 256 in
  Buffer.add_char buf '(';
  List.iter
    (fun (name, body) ->
      Buffer.add_string buf (Printf.sprintf "(proc %s " name);
      add_stmts buf body;
      Buffer.add_string buf ") ")
    procs;
  Buffer.add_string buf "(body ";
  add_stmts buf stmts;
  Buffer.add_string buf "))";
  Buffer.contents buf

type sexp = Atom of string | Sexp_list of sexp list

exception Bad_dsl of string

let tokenize s =
  let toks = ref [] and i = ref 0 in
  let n = String.length s in
  while !i < n do
    match s.[!i] with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '(' ->
      toks := "(" :: !toks;
      incr i
    | ')' ->
      toks := ")" :: !toks;
      incr i
    | _ ->
      let start = !i in
      while
        !i < n
        && match s.[!i] with ' ' | '\t' | '\n' | '\r' | '(' | ')' -> false | _ -> true
      do
        incr i
      done;
      toks := String.sub s start (!i - start) :: !toks
  done;
  List.rev !toks

let parse_sexp toks =
  let rest = ref toks in
  let rec value () =
    match !rest with
    | [] -> raise (Bad_dsl "unexpected end of input")
    | "(" :: tl ->
      rest := tl;
      let items = ref [] in
      let rec go () =
        match !rest with
        | ")" :: tl ->
          rest := tl;
          Sexp_list (List.rev !items)
        | [] -> raise (Bad_dsl "unclosed (")
        | _ ->
          items := value () :: !items;
          go ()
      in
      go ()
    | ")" :: _ -> raise (Bad_dsl "unexpected )")
    | atom :: tl ->
      rest := tl;
      Atom atom
  in
  let v = value () in
  if !rest <> [] then raise (Bad_dsl "trailing garbage");
  v

let int_atom what = function
  | Atom a -> (
    match int_of_string_opt a with
    | Some i -> i
    | None -> raise (Bad_dsl (what ^ ": not an integer")))
  | Sexp_list _ -> raise (Bad_dsl (what ^ ": expected an integer"))

let model_of_sexp = function
  | Atom "at" -> Branch_model.Always_taken
  | Atom "nt" -> Branch_model.Never_taken
  | Sexp_list [ Atom "every"; k ] -> Branch_model.Every (int_atom "every" k)
  | Sexp_list [ Atom "bern"; Atom p ] -> (
    match float_of_string_opt p with
    | Some p -> Branch_model.Bernoulli p
    | None -> raise (Bad_dsl "bern: not a float"))
  | _ -> raise (Bad_dsl "malformed branch model")

let rec stmt_of_sexp = function
  | Sexp_list [ Atom "c"; n ] -> Compute (int_atom "c" n)
  | Sexp_list [ Atom "if"; m; then_; else_ ] ->
    If (model_of_sexp m, stmts_of_sexp then_, stmts_of_sexp else_)
  | Sexp_list [ Atom "loop"; bound; trips; body ] ->
    Loop
      {
        bound = int_atom "loop bound" bound;
        trips = int_atom "loop trips" trips;
        body = stmts_of_sexp body;
      }
  | Sexp_list [ Atom "call"; Atom name ] -> Call name
  | Sexp_list [ Atom "far"; body ] -> Far (stmts_of_sexp body)
  | _ -> raise (Bad_dsl "malformed statement")

and stmts_of_sexp = function
  | Sexp_list items -> List.map stmt_of_sexp items
  | Atom _ -> raise (Bad_dsl "expected a statement list")

let parse s =
  match
    let procs = ref [] and body = ref None in
    (match parse_sexp (tokenize s) with
    | Sexp_list items ->
      List.iter
        (function
          | Sexp_list [ Atom "proc"; Atom name; b ] ->
            procs := (name, stmts_of_sexp b) :: !procs
          | Sexp_list [ Atom "body"; b ] -> body := Some (stmts_of_sexp b)
          | _ -> raise (Bad_dsl "expected (proc ...) or (body ...)"))
        items
    | Atom _ -> raise (Bad_dsl "expected a program"));
    match !body with
    | None -> raise (Bad_dsl "missing (body ...)")
    | Some b -> (b, List.rev !procs)
  with
  | r -> Ok r
  | exception Bad_dsl msg -> Error msg

(* Block under construction; terminators are patched in as the
   structure unfolds. *)
type bterm =
  | T_fall of int
  | T_jump of int
  | T_cond of { taken : int; fallthrough : int; model : Branch_model.t }
  | T_return

type bblock = {
  mutable body : int;
  mutable term : bterm option;
  mutable bound : int option;
  far : bool;  (* lay this block out after the main region *)
}

type builder = {
  blocks : (int, bblock) Hashtbl.t;
  mutable count : int;
  mutable cur : int;
  mutable far_depth : int;
  procs : (string * stmt list) list;
  name : string;
}

let new_block b =
  let id = b.count in
  b.count <- b.count + 1;
  Hashtbl.replace b.blocks id
    { body = 0; term = None; bound = None; far = b.far_depth > 0 };
  id

let block b id = Hashtbl.find b.blocks id

let emit b n =
  let blk = block b b.cur in
  blk.body <- blk.body + n

let finish b term =
  let blk = block b b.cur in
  assert (blk.term = None);
  blk.term <- Some term

let rec compile_stmts b stack stmts = List.iter (compile_stmt b stack) stmts

and compile_stmt b stack = function
  | Compute n -> emit b n
  | If (model, then_, else_) ->
    let then_b = new_block b in
    let else_b = new_block b in
    finish b (T_cond { taken = then_b; fallthrough = else_b; model });
    b.cur <- then_b;
    compile_stmts b stack then_;
    let then_end = b.cur in
    b.cur <- else_b;
    compile_stmts b stack else_;
    let else_end = b.cur in
    let join_b = new_block b in
    b.cur <- then_end;
    finish b (T_jump join_b);
    b.cur <- else_end;
    finish b (T_fall join_b);
    b.cur <- join_b
  | Loop { bound; trips; body } ->
    let head = new_block b in
    finish b (T_fall head);
    (block b head).bound <- Some bound;
    b.cur <- head;
    compile_stmts b stack body;
    let after = new_block b in
    finish b
      (T_cond { taken = head; fallthrough = after; model = Branch_model.trips trips });
    b.cur <- after
  | Far body ->
    let far_entry =
      (b.far_depth <- b.far_depth + 1;
       let id = new_block b in
       b.far_depth <- b.far_depth - 1;
       id)
    in
    finish b (T_jump far_entry);
    b.cur <- far_entry;
    b.far_depth <- b.far_depth + 1;
    compile_stmts b stack body;
    b.far_depth <- b.far_depth - 1;
    let back = new_block b in
    finish b (T_jump back);
    b.cur <- back
  | Call name ->
    (* validated upfront: the procedure exists and is non-recursive *)
    compile_stmts b (name :: stack) (List.assoc name b.procs)

let compile ?(procs = []) ~name stmts =
  (match validate ~procs stmts with
  | Ok () -> ()
  | Error msg -> invalid_arg (Printf.sprintf "Dsl(%s): %s" name msg));
  let b =
    { blocks = Hashtbl.create 32; count = 0; cur = 0; far_depth = 0; procs; name }
  in
  let entry = new_block b in
  b.cur <- entry;
  compile_stmts b [] stmts;
  finish b T_return;
  (* Block ids determine the address layout, so place far-marked blocks
     after the whole main region: stable permutation + target remap. *)
  let order =
    let near = ref [] and far = ref [] in
    for id = b.count - 1 downto 0 do
      if (block b id).far then far := id :: !far else near := id :: !near
    done;
    Array.of_list (!near @ !far)
  in
  let remap = Array.make b.count 0 in
  Array.iteri (fun new_id old_id -> remap.(old_id) <- new_id) order;
  let specs =
    Array.map
      (fun old_id ->
        let blk = block b old_id in
        let spec_term =
          match blk.term with
          | None -> assert false
          | Some (T_fall target) -> Program.S_fallthrough remap.(target)
          | Some (T_jump target) -> Program.S_jump remap.(target)
          | Some (T_cond { taken; fallthrough; model }) ->
            Program.S_cond
              { taken = remap.(taken); fallthrough = remap.(fallthrough); model }
          | Some T_return -> Program.S_return
        in
        { Program.spec_body = blk.body; spec_term; spec_bound = blk.bound })
      order
  in
  Program.make ~name ~entry:remap.(entry) specs
