(** Structured-program DSL.

    Workloads are written as structured control flow (sequences,
    conditionals, bottom-tested loops, inlined procedure calls) and
    compiled to {!Ucp_isa.Program.t} basic blocks.  Loops carry both the
    WCET {e bound} and the concrete {e trip count} driving the
    simulator, so static analysis and trace simulation stay consistent
    ([trips <= bound] is enforced).

    The CFGs this produces are reducible with a bound on every natural
    loop header — exactly the preconditions of {!Ucp_cfg.Loops} and the
    VIVU transformation. *)

type stmt =
  | Compute of int  (** [n] straight-line instructions *)
  | If of Ucp_isa.Branch_model.t * stmt list * stmt list
      (** conditional: model, then-branch (taken), else-branch *)
  | Loop of { bound : int; trips : int; body : stmt list }
      (** bottom-tested loop executing [trips] iterations per entry at
          run time, at most [bound] for the analysis *)
  | Call of string  (** inline expansion of a named procedure *)
  | Far of stmt list
      (** outlined code: the enclosed statements are compiled into
          blocks placed {e after} the whole main region (jump there,
          jump back).  Models the non-contiguous layout of real
          compiled functions, which is what creates conflict evictions
          at mild cache pressure. *)

val compute : int -> stmt
val if_ : ?p:float -> stmt list -> stmt list -> stmt
(** Conditional with a [Bernoulli p] model (default 0.5). *)

val if_every : int -> stmt list -> stmt list -> stmt
(** Conditional taken on all but every [k]-th execution. *)

val loop : ?bound:int -> int -> stmt list -> stmt
(** [loop n body] runs exactly [n] iterations; [?bound] (default [n])
    loosens the static bound. *)

val call : string -> stmt

val far_call : string -> stmt
(** [far_call name] expands the procedure out of line: [Far [Call name]]. *)

val validate :
  ?procs:(string * stmt list) list -> stmt list -> (unit, string) result
(** The single validity check shared by {!compile}, the random
    generator ({!Generate}) and the fuzzing shrinker: no negative
    [Compute], nonempty loop bodies, [1 <= trips <= bound], and every
    [Call] resolving to a known, non-recursive procedure.  A validated
    program compiles without raising, and — structured control flow
    being reducible by construction — satisfies the preconditions of
    the loop-nest analysis. *)

val compile :
  ?procs:(string * stmt list) list -> name:string -> stmt list -> Ucp_isa.Program.t
(** Compile a program body.  Procedures are inlined at their call sites
    (recursion is rejected).
    @raise Invalid_argument when {!validate} rejects the program. *)

val to_string : ?procs:(string * stmt list) list -> stmt list -> string
(** Lossless single-line s-expression rendering of a program (body plus
    procedures) — the storage format of fuzzing-corpus reproducers.
    Bernoulli probabilities are printed as hex floats, so
    [parse (to_string ~procs b) = Ok (b, procs)] holds bit for bit. *)

val parse : string -> (stmt list * (string * stmt list) list, string) result
(** Inverse of {!to_string}: [(body, procs)], or a parse error. *)
