(** Seeded random program generator over the {!Dsl} — the workload
    frontier of the fuzzing harness.

    Programs are pure functions of a [(seed, size class)] pair through
    {!Ucp_util.Rng} (SplitMix64), so any record carrying the pair is a
    complete reproducer: {!program} regenerates the same
    {!Ucp_isa.Program.t} bit for bit on any machine.  Every emitted
    program passes {!Dsl.validate} by construction — reducible loop
    nests with [1 <= trips <= bound], acyclic procedure calls, [Far]
    outlined layouts — and the product of nested trip counts is
    budgeted, so the concrete simulator always terminates quickly. *)

type shape = {
  g_class : string;  (** size-class label, part of generated names *)
  g_stmts : int;  (** statement budget for the whole program *)
  g_depth : int;  (** maximum structural nesting depth *)
  g_procs : int;  (** procedures defined (callable acyclically) *)
  g_max_trips : int;  (** per-loop trip-count cap *)
  g_work : int;  (** cap on the product of nested trip counts *)
}

val classes : (string * shape) list
(** The size classes: ["s"] (tiny), ["m"], ["l"]. *)

val find_class : string -> shape option

val gen : Ucp_util.Rng.t -> shape -> Dsl.stmt list * (string * Dsl.stmt list) list
(** Draw one program: [(body, procs)].  Always {!Dsl.validate}-clean. *)

val name : seed:int -> cls:string -> string
(** Canonical generated-program name, ["gen-<class>-<seed>"] — free of
    [':'] so it composes with {!Ucp_core.Experiments.case_id}. *)

val parse_name : string -> (int * string) option
(** [(seed, class)] when the name is a well-formed {!name} of a known
    size class — how sweep records and journal entries recover the
    generator provenance from a program name alone. *)

val stmts : seed:int -> cls:string -> Dsl.stmt list * (string * Dsl.stmt list) list
(** Regenerate the DSL term for a [(seed, class)] pair.
    @raise Invalid_argument on an unknown class. *)

val program : seed:int -> cls:string -> Ucp_isa.Program.t
(** {!stmts} compiled under the canonical {!name}.
    @raise Invalid_argument on an unknown class. *)
