(** Trust-but-verify: an independent certification layer for the
    pipeline's three engines.

    Everything else in the repository {e produces} results — the
    exact-rational simplex/ILP, the abstract-interpretation WCET
    analysis and the reverse-sweep optimizer.  This module {e checks}
    them, re-deriving each claim from first principles without reusing
    the producer's arithmetic:

    - {b LP/ILP certificates}: a {!Ucp_lp.Simplex} answer carries its
      dual solution; {!certify_lp} verifies primal feasibility, dual
      sign conditions, dual feasibility and strong duality in exact
      rationals (no tolerances, no pivots — see
      {!Ucp_lp.Simplex.check_certificate}).  {!certify_ilp} checks
      integral answers for feasibility and objective equality.
    - {b IPET certification}: {!certify_ipet} cross-checks the DAG
      longest-path τ{_w} against an independently-coded longest-path DP
      over re-derived per-node costs, then verifies the combinatorial
      flow certificate {!Ucp_wcet.Wcet.flow_certificate} (per-node
      suffix bounds + per-loop lap charges — morally the flow LP's
      dual) by linear passes over the expanded graph's edges.  No
      solver runs on this fast path; any shortfall falls back to the
      historical root-LP solve with direct dual-certificate checking
      and, on an integrality gap, the exact branch & bound.  The
      [audit_ipet_fastpath_total] / [audit_ipet_slowpath_total]
      metrics count the two routes.
    - {b WCET witness replay}: {!replay_witness} checks the WCET path
      is a genuine CFG execution, re-derives τ{_w} from the
      classifications, then forces the concrete simulator down the
      witness (via [~branch_oracle]) and checks every Always-Hit /
      Always-Miss classification against the concrete cache state
      (per replacement policy, via [~on_fetch]), the replayed cost
      against the bound, and prefetch stalls against the residual
      charge (the d ≥ Λ effectiveness obligation).
    - {b optimizer audit}: {!audit_trail} re-derives the endpoints of
      {!Ucp_prefetch.Optimizer.result.trail} from independent analyses
      and checks Theorem 1, the per-round acceptance conditions
      (Eq. 5–9), gain positivity, materialization and
      prefetch-equivalence.

    All checkers return [Error msg] where [msg] names the violated
    obligation first (e.g. ["lp-strong-duality: ..."]); the sweep
    demotes such records to [Invariant_violation]. *)

type mode = Off | Sample of int | Full
(** How much of a sweep to audit: nothing, a deterministic 1-in-N
    selection keyed by case id, or every case. *)

val mode_of_string : string -> (mode, string) result
(** Parse ["off" | "sample:N" | "full"] (as the [--audit] flag). *)

val mode_to_string : mode -> string

val selects : mode -> string -> bool
(** [selects mode case_id]: audit this case?  Deterministic in
    [case_id], so resumed or re-run sweeps audit the same cases. *)

val certify_lp :
  ?minimize:bool ->
  Ucp_lp.Simplex.problem ->
  Ucp_lp.Simplex.solution ->
  (unit, string) result
(** Verify an LP answer against its problem: primal feasibility
    (x ≥ 0, every row), dual sign conditions (y{_i} ≥ 0 for [Le] rows,
    ≤ 0 for [Ge], free for [Eq]), dual feasibility (Aᵀy ≥ c) and
    strong duality (cᵀx = value = bᵀy) — all in exact rationals.
    [~minimize] checks the mirrored conditions {!Ucp_lp.Simplex.minimize}
    produces. *)

val certify_ilp :
  Ucp_lp.Simplex.problem ->
  value:Ucp_lp.Rational.t ->
  assignment:int array ->
  (unit, string) result
(** Verify an integral answer: nonnegativity, every constraint row, and
    objective equality. *)

val certify_ipet :
  ?deadline:Ucp_util.Deadline.t -> Ucp_wcet.Wcet.t -> (unit, string) result
(** Certify the DAG longest-path τ{_w} against the IPET flow model:
    flow-certificate fast path (linear checks, no solver), LP/ILP
    fallback (see module doc).  [?deadline] only guards the fallback —
    the fast path is linear. *)

val replay_witness :
  ?seed:int -> Ucp_wcet.Wcet.t -> (unit, string) result
(** Structurally validate the WCET witness path, re-derive τ{_w} from
    the classifications, then replay the witness on the concrete
    simulator under the analysis' replacement policy and check the
    classifications, the cost bound and the prefetch-effectiveness
    residual.  Only supports plain analyses (no [~pinned]/[~locked]
    modes and no hardware prefetcher); {!audit_case} returns an
    explicit {!Skipped} verdict for non-plain analyses instead of a
    silent pass. *)

val audit_trail :
  original:Ucp_wcet.Wcet.t ->
  optimized:Ucp_wcet.Wcet.t ->
  Ucp_prefetch.Optimizer.result ->
  (unit, string) result
(** Re-derive the optimizer's proof obligations from the two
    independent analyses: endpoint equality, Theorem 1
    (τ after ≤ τ before), the chained per-round Eq. 5–9 acceptance
    conditions, positive admitted gains (mcost − pcost > 0),
    materialization of every recorded prefetch and
    prefetch-equivalence.  [original]/[optimized] must analyze
    [result.original]/[result.program] under the sweep's policy and
    configuration. *)

type verdict =
  | Certified of {
      checks : int;
          (** top-level certificates that passed (5, or 7 when the
              refine obligations ran) *)
      seconds : float;
          (** audit cost: the sum of the per-obligation intervals that
              also feed the [audit_seconds_total] metrics fcounter, so
              traced and untraced runs report identical numbers *)
    }
  | Skipped of { reason : string }
      (** the case could not be audited (non-plain analysis: pinned /
          locked ways or a hardware prefetcher) — surfaced explicitly
          so such records cannot claim a clean audit they never had *)

val verdict_seconds : verdict -> float
(** Audit wall-clock of a verdict ([0.] for [Skipped]). *)

val audit_case :
  ?deadline:Ucp_util.Deadline.t ->
  ?seed:int ->
  ?corrupt:bool ->
  ?refine:
    Ucp_refine.Mode.t
    * Ucp_refine.Explore.summary option
    * Ucp_refine.Explore.summary option ->
  original:Ucp_wcet.Wcet.t ->
  optimized:Ucp_wcet.Wcet.t ->
  Ucp_prefetch.Optimizer.result ->
  (verdict, string) result
(** Run the full per-case audit: IPET certification of both analyses,
    witness replay of both, and the optimizer audit trail.  [~corrupt]
    is the [corrupt-cert] fault-injection hook: it perturbs one
    certificate field (the claimed optimized τ) before checking, so a
    correct checker must fail with the violated obligation named.

    [?refine] is the case's refine mode plus the measured refinement
    summaries of the two sides.  A mode other than [Off] adds two
    obligations ([refine-original], [refine-optimized]): the exact
    exploration is recomputed from the audited side's own analysis and
    its digest — covering every reclassification and the refined
    bounds — must match the recorded one byte-for-byte (this is what
    catches the [corrupt-refine] fault), and the recomputed refined
    WCET goes through the same concrete witness replay as the
    unrefined analyses. *)
