module Q = Ucp_lp.Rational
module Simplex = Ucp_lp.Simplex
module Ilp = Ucp_lp.Ilp
module Wcet = Ucp_wcet.Wcet
module Analysis = Ucp_wcet.Analysis
module Ipet = Ucp_wcet.Ipet
module Classification = Ucp_wcet.Classification
module Vivu = Ucp_cfg.Vivu
module Program = Ucp_isa.Program
module Instr = Ucp_isa.Instr
module Simulator = Ucp_sim.Simulator
module Optimizer = Ucp_prefetch.Optimizer
module Cacti = Ucp_energy.Cacti

let audit_obligations_total = lazy (Ucp_obs.Metrics.counter "audit_obligations_total")
let audit_seconds_total = lazy (Ucp_obs.Metrics.fcounter "audit_seconds_total")
let audit_fastpath_total = lazy (Ucp_obs.Metrics.counter "audit_ipet_fastpath_total")
let audit_slowpath_total = lazy (Ucp_obs.Metrics.counter "audit_ipet_slowpath_total")

(* ------------------------------------------------------------------ *)
(* Audit modes *)

type mode = Off | Sample of int | Full

let mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "off" -> Ok Off
  | "full" -> Ok Full
  | s -> (
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "sample" -> (
      let arg = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt arg with
      | Some n when n >= 1 -> Ok (Sample n)
      | _ -> Error (Printf.sprintf "audit: bad sample rate %S (want sample:N, N >= 1)" arg))
    | _ -> Error (Printf.sprintf "audit: unknown mode %S (want off|sample:N|full)" s))

let mode_to_string = function
  | Off -> "off"
  | Full -> "full"
  | Sample n -> Printf.sprintf "sample:%d" n

(* Deterministic 1-in-N selection keyed by the case id, so a resumed or
   re-run sweep audits the same cases. *)
let selects mode id =
  match mode with
  | Off -> false
  | Full -> true
  | Sample n -> Hashtbl.hash id mod n = 0

(* ------------------------------------------------------------------ *)
(* Helpers: every check returns (unit, string) result where the error
   names the violated obligation first, then the numbers. *)

let ( let* ) = Result.bind

let fail obligation fmt =
  Printf.ksprintf (fun s -> Error (obligation ^ ": " ^ s)) fmt

let q_to_string v = Format.asprintf "%a" Q.pp v

let dot coeffs x =
  let acc = ref Q.zero in
  Array.iteri (fun j c -> acc := Q.add !acc (Q.mul c x.(j))) coeffs;
  !acc

(* ------------------------------------------------------------------ *)
(* LP certificates *)

(* Direct check of the stored primal/dual pair — linear passes over the
   tableau data in exact rationals, no pivots.  The checking itself
   lives next to the solver in {!Ucp_lp.Simplex} (it is generic LP
   machinery, not audit policy); this wrapper just keeps the audit's
   historical entry point. *)
let certify_lp ?minimize problem sol = Simplex.check_certificate ?minimize problem sol

let certify_ilp (problem : Simplex.problem) ~(value : Q.t) ~(assignment : int array) =
  let n = problem.Simplex.num_vars in
  let* () =
    if Array.length assignment <> n then
      fail "ilp-shape" "assignment has %d entries, want %d" (Array.length assignment) n
    else Ok ()
  in
  let* () =
    let bad = ref None in
    Array.iteri (fun j x -> if !bad = None && x < 0 then bad := Some j) assignment;
    match !bad with
    | Some j -> fail "ilp-feasible" "x_%d = %d < 0" j assignment.(j)
    | None -> Ok ()
  in
  let xq = Array.map Q.of_int assignment in
  let* () =
    let bad = ref None in
    List.iteri
      (fun i (coeffs, op, rhs) ->
        if !bad = None then begin
          let lhs = dot coeffs xq in
          let ok =
            match op with
            | Simplex.Le -> Q.compare lhs rhs <= 0
            | Simplex.Ge -> Q.compare lhs rhs >= 0
            | Simplex.Eq -> Q.equal lhs rhs
          in
          if not ok then bad := Some (i, lhs, rhs)
        end)
      problem.Simplex.constraints;
    match !bad with
    | Some (i, lhs, rhs) ->
      fail "ilp-feasible" "row %d violated: lhs %s vs rhs %s" i (q_to_string lhs)
        (q_to_string rhs)
    | None -> Ok ()
  in
  let cx = dot problem.Simplex.objective xq in
  if not (Q.equal cx value) then
    fail "ilp-objective" "c^T x = %s but claimed value = %s" (q_to_string cx)
      (q_to_string value)
  else Ok ()

(* ------------------------------------------------------------------ *)
(* IPET certification: prove that the DAG longest-path tau_w is a sound
   and exact bound for the flow model.

   Fast path (no solver): re-derive the per-node costs from the
   classifications and the timing model, cross-check tau against an
   independently-coded longest-path DP, then verify the combinatorial
   flow certificate {!Wcet.flow_certificate} — per-node suffix bounds
   X plus per-rest-header lap charges Lam, morally the flow LP's dual —
   by linear passes over the expanded graph's edges (conditions C0-C4,
   see {!Wcet.flow_cert}).  Slow path (any fast-path shortfall, e.g. a
   certificate the constructor could not close): the historical
   simplex root solve with direct dual-certificate checking, plus the
   exact ILP on an integrality gap. *)

let cycles_of model cls =
  if Classification.is_wcet_miss cls then
    model.Cacti.hit_cycles + model.Cacti.miss_penalty
  else model.Cacti.hit_cycles

(* Per-node costs re-derived from classifications + model alone,
   without trusting [w.node_cycles]. *)
let derive_node_cycles (w : Wcet.t) =
  let analysis = w.Wcet.analysis in
  let vivu = Analysis.vivu analysis in
  let program = Vivu.program vivu in
  Array.init (Vivu.node_count vivu) (fun id ->
      let nd = Vivu.node vivu id in
      let acc = ref 0 in
      for pos = 0 to Program.slots program nd.Vivu.block - 1 do
        acc := !acc + cycles_of w.Wcet.model (Analysis.classif analysis ~node:id ~pos)
      done;
      !acc)

(* Independent longest-path DP over the expanded DAG with the
   re-derived costs: tau must be exactly the mult-weighted optimum. *)
let check_longest_path (w : Wcet.t) c =
  let vivu = Analysis.vivu w.Wcet.analysis in
  let n = Vivu.node_count vivu in
  let entry = Vivu.entry vivu in
  let dist = Array.make n min_int in
  Array.iter
    (fun id ->
      let weight = c.(id) * Vivu.mult vivu id in
      if id = entry then dist.(id) <- weight
      else begin
        let best = ref min_int in
        List.iter (fun p -> if dist.(p) > !best then best := dist.(p)) (Vivu.dag_pred vivu id);
        if !best > min_int then dist.(id) <- !best + weight
      end)
    (Vivu.topo vivu);
  let best =
    List.fold_left (fun acc e -> max acc dist.(e)) min_int (Vivu.exit_nodes vivu)
  in
  if best = min_int then fail "ipet-longest-path" "no exit reachable from the entry"
  else if best <> w.Wcet.tau then
    fail "ipet-longest-path" "independent longest path re-derives %d, claimed tau_w = %d"
      best w.Wcet.tau
  else Ok ()

(* Check the flow certificate's conditions C0-C4 against independently
   re-derived costs.  Linear in nodes + edges. *)
let check_flow_cert (w : Wcet.t) c (cert : Wcet.flow_cert) =
  let vivu = Analysis.vivu w.Wcet.analysis in
  let n = Vivu.node_count vivu in
  let x = cert.Wcet.fc_x and lam = cert.Wcet.fc_lam in
  let* () =
    if Array.length x <> n || Array.length lam <> n then
      fail "flow-cert-shape" "certificate arrays have %d/%d entries, want %d"
        (Array.length x) (Array.length lam) n
    else Ok ()
  in
  let k = Wcet.rest_budget vivu in
  let entry_charge v = match k.(v) with Some kv -> (kv - 1) * lam.(v) | None -> 0 in
  let err = ref None in
  let report fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
  for v = 0 to n - 1 do
    if !err = None then begin
      (* C0: lap charges are nonnegative at rest headers *)
      (match k.(v) with
      | Some _ when lam.(v) < 0 -> report "C0: Lam_%d = %d < 0" v lam.(v)
      | _ -> ());
      (* C3: a walk may stop anywhere, X covers at least the node itself *)
      if !err = None && x.(v) < c.(v) then
        report "C3: X_%d = %d < c_%d = %d" v x.(v) v c.(v);
      (* C1 over DAG edges; edges into zero-budget rest headers are
         exempt — the execution model cannot enter them at all *)
      if !err = None then
        List.iter
          (fun s ->
            if !err = None && k.(s) <> Some 0 && x.(v) < c.(v) + x.(s) + entry_charge s
            then
              report "C1: X_%d = %d < c_%d + X_%d + charge = %d on DAG edge %d->%d" v
                x.(v) v s
                (c.(v) + x.(s) + entry_charge s)
                v s)
          (Vivu.dag_succ vivu v);
      (* C2 over iteration edges: each lap refunds one Lam *)
      if !err = None then
        List.iter
          (fun h ->
            if !err = None then
              if k.(h) = None then
                report "C2: iteration edge %d->%d targets a non-rest-header" v h
              else if x.(v) < c.(v) + x.(h) - lam.(h) then
                report "C2: X_%d = %d < c_%d + X_%d - Lam_%d = %d on iteration edge"
                  v x.(v) v h h
                  (c.(v) + x.(h) - lam.(h)))
          (Vivu.iter_succ vivu v)
    end
  done;
  match !err with
  | Some msg -> fail "flow-cert" "%s" msg
  | None ->
    (* C4: the entry bound is exactly the claimed tau *)
    let entry = Vivu.entry vivu in
    if x.(entry) <> w.Wcet.tau then
      fail "flow-cert" "C4: X_entry = %d, claimed tau_w = %d" x.(entry) w.Wcet.tau
    else Ok ()

(* The historical solver-based path, kept as the authoritative fallback:
   root LP solve with direct dual-certificate checking, exact ILP plus
   agreement on an integrality gap. *)
let certify_ipet_solver ?deadline (w : Wcet.t) =
  let problem, _n = Ipet.build w in
  let tau_q = Q.of_int w.Wcet.tau in
  match Simplex.maximize ?deadline problem with
  | Simplex.Infeasible -> fail "ipet-lp" "flow relaxation infeasible"
  | Simplex.Unbounded -> fail "ipet-lp" "flow relaxation unbounded"
  | Simplex.Optimal sol ->
    let* () = certify_lp problem sol in
    if Q.compare tau_q sol.Simplex.value > 0 then
      fail "ipet-upper-bound" "tau_w = %d exceeds the certified LP optimum %s"
        w.Wcet.tau
        (q_to_string sol.Simplex.value)
    else if Q.equal sol.Simplex.value tau_q then Ok ()
    else begin
      (* Integrality gap at the root: fall back to the exact ILP and
         require agreement (two independent algorithms, one answer). *)
      match Ilp.maximize ?deadline problem with
      | Ilp.Infeasible -> fail "ipet-ilp" "flow model infeasible"
      | Ilp.Unbounded -> fail "ipet-ilp" "flow model unbounded"
      | Ilp.Optimal { value; assignment } ->
        let* () = certify_ilp problem ~value ~assignment in
        if Q.equal value tau_q then Ok ()
        else
          fail "ipet-ilp-agreement" "tau_w = %d but the ILP optimum is %s" w.Wcet.tau
            (q_to_string value)
    end

let certify_ipet ?deadline (w : Wcet.t) =
  let c = derive_node_cycles w in
  (* The cross-check runs on both paths: tau must equal an
     independently-coded longest path over the re-derived costs. *)
  let* () = check_longest_path w c in
  let fast =
    match Wcet.flow_certificate w with
    | None -> Error "flow-cert: constructor did not converge"
    | Some cert -> check_flow_cert w c cert
  in
  match fast with
  | Ok () ->
    Ucp_obs.Metrics.incr (Lazy.force audit_fastpath_total);
    Ok ()
  | Error reason ->
    (* Any fast-path shortfall — an unclosable certificate, a genuine
       violation — defers to the solver, which is authoritative. *)
    Ucp_obs.Metrics.incr (Lazy.force audit_slowpath_total);
    Ucp_obs.Log.debug "audit: ipet fast path failed (%s), falling back to the LP" reason;
    certify_ipet_solver ?deadline w

(* ------------------------------------------------------------------ *)
(* WCET witness replay *)

exception Replay_abort

let replay_witness ?(seed = 42) (w : Wcet.t) =
  let analysis = w.Wcet.analysis in
  let vivu = Analysis.vivu analysis in
  let program = Vivu.program vivu in
  let config = Analysis.config analysis in
  let policy = Analysis.policy analysis in
  let model = w.Wcet.model in
  let path = w.Wcet.path in
  let len = Array.length path in
  let block_of id = (Vivu.node vivu id).Vivu.block in
  (* Structural validity: the witness must be a real walk of the
     expanded DAG, which by VIVU construction projects to a real CFG
     execution — entry first, DAG edges between steps, terminators
     agreeing with the projected block sequence, a reachable exit
     last. *)
  let* () =
    if len = 0 then fail "witness-path" "empty path"
    else if path.(0) <> Vivu.entry vivu then
      fail "witness-path" "does not start at the entry node"
    else Ok ()
  in
  let* () =
    let bad = ref None in
    for i = 0 to len - 2 do
      if !bad = None then begin
        let u = path.(i) and v = path.(i + 1) in
        if not (List.mem v (Vivu.dag_succ vivu u)) then
          bad := Some (Printf.sprintf "step %d: no DAG edge %d -> %d" i u v)
        else begin
          let b = Program.block program (block_of u) in
          let ok =
            match b.Program.term with
            | Program.Fallthrough t | Program.Jump { target = t; _ } ->
              block_of v = t
            | Program.Cond { taken; fallthrough; _ } ->
              block_of v = taken || block_of v = fallthrough
            | Program.Return _ -> false
          in
          if not ok then
            bad :=
              Some
                (Printf.sprintf "step %d: block %d cannot fall to block %d" i
                   (block_of u) (block_of v))
        end
      end
    done;
    match !bad with Some msg -> fail "witness-path" "%s" msg | None -> Ok ()
  in
  let* () =
    if not (List.mem path.(len - 1) (Vivu.exit_nodes vivu)) then
      fail "witness-path" "does not end at an exit node"
    else Ok ()
  in
  (* n_w / on_path bookkeeping the optimizer and reports rely on. *)
  let* () =
    let on = Array.make (Vivu.node_count vivu) false in
    Array.iter (fun id -> on.(id) <- true) path;
    let bad = ref None in
    for id = 0 to Vivu.node_count vivu - 1 do
      if !bad = None then begin
        if w.Wcet.on_path.(id) <> on.(id) then
          bad := Some (Printf.sprintf "on_path.(%d) disagrees with the path" id)
        else begin
          let want = if on.(id) then Vivu.mult vivu id else 0 in
          if w.Wcet.n_w.(id) <> want then
            bad := Some (Printf.sprintf "n_w.(%d) = %d, want %d" id w.Wcet.n_w.(id) want)
        end
      end
    done;
    match !bad with Some msg -> fail "witness-counts" "%s" msg | None -> Ok ()
  in
  (* Abstract re-derivation of tau_w: sum the per-slot WCET charges
     along the witness from the classifications and the timing model
     alone, without trusting slot_cycles/node_cycles. *)
  let* () =
    let tau' = ref 0 in
    Array.iter
      (fun id ->
        let mult = Vivu.mult vivu id in
        for pos = 0 to Program.slots program (block_of id) - 1 do
          tau' := !tau' + (mult * cycles_of model (Analysis.classif analysis ~node:id ~pos))
        done)
      path;
    if !tau' <> w.Wcet.tau then
      fail "witness-tau" "path charges re-derive to %d, claimed tau_w = %d" !tau'
        w.Wcet.tau
    else Ok ()
  in
  (* Concrete replay: force the simulator down the witness and check
     every Always-Hit (resp. Always-Miss) classification against the
     concrete cache state, per policy. *)
  let refs = Wcet.path_refs w in
  let n_refs = Array.length refs in
  let decisions = Queue.create () in
  for i = 0 to len - 2 do
    match (Program.block program (block_of path.(i))).Program.term with
    | Program.Cond { taken; _ } ->
      Queue.add (block_of path.(i), block_of path.(i + 1) = taken) decisions
    | _ -> ()
  done;
  let err = ref None in
  let abort msg =
    if !err = None then err := Some msg;
    raise Replay_abort
  in
  let idx = ref 0 in
  let on_fetch ~block ~pos ~hit =
    if !idx >= n_refs then
      abort
        (Printf.sprintf "witness-refs: fetch %d of (%d,%d) beyond the %d witness refs"
           !idx block pos n_refs);
    let node, wpos = refs.(!idx) in
    if block_of node <> block || wpos <> pos then
      abort
        (Printf.sprintf
           "witness-refs: fetch %d at (%d,%d) but the witness expects (%d,%d)" !idx
           block pos (block_of node) wpos);
    (match Analysis.classif analysis ~node ~pos with
    | Classification.Always_hit ->
      if not hit then
        abort
          (Printf.sprintf
             "always-hit: slot (%d,%d) classified Always_hit missed concretely under %s"
             block pos
             (Ucp_policy.to_string policy))
    | Classification.Always_miss ->
      if hit then
        abort
          (Printf.sprintf
             "always-miss: slot (%d,%d) classified Always_miss hit concretely under %s"
             block pos
             (Ucp_policy.to_string policy))
    | Classification.Not_classified -> ());
    incr idx
  in
  let branch_oracle block =
    if Queue.is_empty decisions then
      abort (Printf.sprintf "witness-branches: block %d branches beyond the witness" block);
    let b, d = Queue.pop decisions in
    if b <> block then
      abort
        (Printf.sprintf "witness-branches: conditional at block %d, witness expects %d"
           block b);
    d
  in
  let stats =
    try Ok (Simulator.run ~seed ~policy ~on_fetch ~branch_oracle program config model)
    with
    | Replay_abort ->
      Error (match !err with Some m -> m | None -> "witness-replay: aborted")
    | Failure msg -> Error ("witness-replay: " ^ msg)
  in
  let* stats = stats in
  let* () = match !err with Some msg -> Error msg | None -> Ok () in
  let* () =
    if !idx <> n_refs then
      fail "witness-refs" "replay fetched %d of %d witness references" !idx n_refs
    else if not (Queue.is_empty decisions) then
      fail "witness-branches" "%d witness branch decisions left unconsumed"
        (Queue.length decisions)
    else Ok ()
  in
  (* Bound direction: the concrete cost of the witness execution may
     not exceed the abstract bound, and late-prefetch stalls may not
     exceed the residual charge (the d >= Lambda effectiveness
     obligation; exact when the residual is zero). *)
  let bound = Wcet.tau_with_residual w in
  let residual = Wcet.residual_prefetch_stall w in
  if stats.Simulator.counts.Ucp_energy.Account.cycles > bound then
    fail "witness-tau-bound" "replayed witness cost %d cycles, bound is %d"
      stats.Simulator.counts.Ucp_energy.Account.cycles bound
  else if stats.Simulator.late_prefetch_stall_cycles > residual then
    fail "prefetch-effectiveness" "witness stalled %d cycles on prefetches, residual charge is %d"
      stats.Simulator.late_prefetch_stall_cycles residual
  else Ok ()

(* ------------------------------------------------------------------ *)
(* Optimizer audit trail *)

let audit_trail ~(original : Wcet.t) ~(optimized : Wcet.t)
    (r : Optimizer.result) =
  (* Endpoints re-derived from independent analyses: the optimizer's
     claimed before/after figures must match without trusting its
     arithmetic.  tau_with_residual and miss_count_bound are invariant
     under with_may, so the pipeline's may-enabled analyses re-derive
     the optimizer's may-free inner figures exactly. *)
  let tau0 = Wcet.tau_with_residual original in
  let tau1 = Wcet.tau_with_residual optimized in
  let m0 = Analysis.miss_count_bound original.Wcet.analysis in
  let m1 = Analysis.miss_count_bound optimized.Wcet.analysis in
  let* () =
    if r.Optimizer.tau_before <> tau0 then
      fail "optimizer-tau-before" "claimed %d, independent analysis derives %d"
        r.Optimizer.tau_before tau0
    else Ok ()
  in
  let* () =
    if r.Optimizer.tau_after <> tau1 then
      fail "optimizer-tau-after" "claimed %d, independent analysis derives %d"
        r.Optimizer.tau_after tau1
    else Ok ()
  in
  let* () =
    if tau1 > tau0 then
      fail "theorem-1" "tau_w grew from %d to %d" tau0 tau1
    else Ok ()
  in
  (* Equation 5-9 / Theorem 1 per accepted round, chained so the claims
     connect the independent endpoints without gaps. *)
  let trail = r.Optimizer.trail in
  let* () =
    match trail with
    | [] ->
      if r.Optimizer.insertions <> [] then
        fail "optimizer-trail" "%d insertions but an empty audit trail"
          (List.length r.Optimizer.insertions)
      else if tau1 <> tau0 then
        fail "optimizer-trail" "no accepted round but tau changed %d -> %d" tau0 tau1
      else Ok ()
    | first :: _ ->
      let rec chain i prev = function
        | [] -> Ok ()
        | (rd : Optimizer.round) :: tl ->
          let* () =
            match prev with
            | Some (pt, pm) ->
              if rd.Optimizer.round_tau_before <> pt then
                fail "optimizer-trail" "round %d tau_before %d breaks the chain (prev after %d)"
                  i rd.Optimizer.round_tau_before pt
              else if rd.Optimizer.round_misses_before <> pm then
                fail "optimizer-trail" "round %d misses_before %d breaks the chain (prev after %d)"
                  i rd.Optimizer.round_misses_before pm
              else Ok ()
            | None -> Ok ()
          in
          let* () =
            if rd.Optimizer.round_tau_after > rd.Optimizer.round_tau_before then
              fail "eq5-9-acceptance" "round %d grew tau %d -> %d" i
                rd.Optimizer.round_tau_before rd.Optimizer.round_tau_after
            else if
              rd.Optimizer.round_misses_after >= rd.Optimizer.round_misses_before
              && rd.Optimizer.round_tau_after >= rd.Optimizer.round_tau_before
            then
              fail "eq5-9-acceptance"
                "round %d improves neither the miss bound (%d -> %d) nor tau (%d -> %d)"
                i rd.Optimizer.round_misses_before rd.Optimizer.round_misses_after
                rd.Optimizer.round_tau_before rd.Optimizer.round_tau_after
            else if rd.Optimizer.round_insertions = [] then
              fail "optimizer-trail" "round %d accepted no insertion" i
            else Ok ()
          in
          chain (i + 1)
            (Some (rd.Optimizer.round_tau_after, rd.Optimizer.round_misses_after))
            tl
      in
      let* () =
        if first.Optimizer.round_tau_before <> tau0 then
          fail "optimizer-trail" "first round tau_before %d, independent analysis derives %d"
            first.Optimizer.round_tau_before tau0
        else if first.Optimizer.round_misses_before <> m0 then
          fail "optimizer-trail" "first round misses_before %d, independent analysis derives %d"
            first.Optimizer.round_misses_before m0
        else Ok ()
      in
      let* () = chain 0 None trail in
      let last = List.nth trail (List.length trail - 1) in
      if last.Optimizer.round_tau_after <> tau1 then
        fail "optimizer-trail" "last round tau_after %d, independent analysis derives %d"
          last.Optimizer.round_tau_after tau1
      else if last.Optimizer.round_misses_after <> m1 then
        fail "optimizer-trail" "last round misses_after %d, independent analysis derives %d"
          last.Optimizer.round_misses_after m1
      else Ok ()
  in
  (* Every accepted prefetch must be materialized in the final program
     exactly as recorded (mcost - pcost > 0 admitted it, Equation 9). *)
  let* () =
    let bad = ref None in
    List.iter
      (fun (ins : Optimizer.insertion) ->
        if !bad = None && ins.Optimizer.est_gain <= 0 then
          bad :=
            Some
              (Printf.sprintf "prefetch %d admitted with nonpositive gain %d"
                 ins.Optimizer.prefetch_uid ins.Optimizer.est_gain))
      r.Optimizer.insertions;
    match !bad with Some msg -> fail "mcost-pcost" "%s" msg | None -> Ok ()
  in
  let* () =
    let bad = ref None in
    List.iter
      (fun (rd : Optimizer.round) ->
        List.iter
          (fun (pf_uid, target_uid) ->
            if !bad = None then
              match Program.find_uid r.Optimizer.program pf_uid with
              | None ->
                bad := Some (Printf.sprintf "prefetch uid %d absent from the program" pf_uid)
              | Some (block, pos) -> (
                let instr = Program.slot_instr r.Optimizer.program ~block ~pos in
                match instr.Instr.kind with
                | Instr.Prefetch t when t = target_uid -> ()
                | Instr.Prefetch t ->
                  bad :=
                    Some
                      (Printf.sprintf "prefetch uid %d targets %d, trail says %d" pf_uid
                         t target_uid)
                | Instr.Compute ->
                  bad :=
                    Some (Printf.sprintf "uid %d is not a prefetch instruction" pf_uid)))
          rd.Optimizer.round_insertions)
      trail;
    match !bad with Some msg -> fail "optimizer-materialized" "%s" msg | None -> Ok ()
  in
  let trail_count =
    List.fold_left (fun acc (rd : Optimizer.round) ->
        acc + List.length rd.Optimizer.round_insertions)
      0 trail
  in
  let* () =
    if trail_count <> List.length r.Optimizer.insertions then
      fail "optimizer-trail" "trail records %d insertions, result lists %d" trail_count
        (List.length r.Optimizer.insertions)
    else Ok ()
  in
  if not (Program.prefetch_equivalent r.Optimizer.original r.Optimizer.program) then
    fail "prefetch-equivalent" "optimized program is not prefetch-equivalent to the original"
  else Ok ()

(* ------------------------------------------------------------------ *)
(* One-case orchestration *)

type verdict =
  | Certified of { checks : int; seconds : float }
  | Skipped of { reason : string }

let verdict_seconds = function Certified { seconds; _ } -> seconds | Skipped _ -> 0.0

(* Re-run the exact classification refinement from the audited side's
   own analysis and require byte-identical digests: the digest covers
   every reclassification and the bounds derived from them, so any
   tampering between measurement and record (the corrupt-refine fault,
   a stale cache, a bug) surfaces deterministically.  The recomputed
   refined WCET then goes through the same concrete witness replay as
   the unrefined ones — an unsound exploration verdict on the witness
   path fails there even if the digests agree. *)
let check_refine ?deadline ?seed ~mode side (w : Wcet.t)
    (measured : Ucp_refine.Explore.summary option) =
  match Ucp_refine.Explore.run ?deadline ~mode w with
  | exception Ucp_refine.Explore.Unsound msg ->
    fail ("refine-" ^ side) "exploration contradicts the abstract analysis: %s" msg
  | None -> (
    match measured with
    | None -> Ok ()
    | Some s ->
      fail ("refine-" ^ side)
        "record carries a refinement (digest %s) but recomputation declines"
        s.Ucp_refine.Explore.s_digest)
  | Some (s', refined_w) -> (
    match measured with
    | None ->
      fail ("refine-" ^ side) "recomputation refines (digest %s) but the record has none"
        s'.Ucp_refine.Explore.s_digest
    | Some s ->
      let* () =
        if s.Ucp_refine.Explore.s_digest <> s'.Ucp_refine.Explore.s_digest then
          fail ("refine-" ^ side) "digest mismatch: recorded %s, recomputed %s"
            s.Ucp_refine.Explore.s_digest s'.Ucp_refine.Explore.s_digest
        else Ok ()
      in
      replay_witness ?seed refined_w)

let audit_case ?deadline ?seed ?(corrupt = false)
    ?(refine = (Ucp_refine.Mode.Off, None, None)) ~(original : Wcet.t)
    ~(optimized : Wcet.t) (r : Optimizer.result) =
  if
    not
      (Analysis.is_plain original.Wcet.analysis
      && Analysis.is_plain optimized.Wcet.analysis)
  then
    (* The witness replay cannot drive the simulator through pinned
       (locked-way) or hardware-prefetching semantics; an honest
       Skipped verdict beats a silent pass. *)
    Ok
      (Skipped
         {
           reason =
             "non-plain analysis (pinned/locked ways or hardware prefetcher): \
              witness replay unsupported";
         })
  else begin
    (* Fault-injection hook: perturb one certificate field (the claimed
       optimized tau) so the audit must catch the corruption. *)
    let r =
      if corrupt then { r with Optimizer.tau_after = r.Optimizer.tau_after + 1 } else r
    in
    (* One measured interval per obligation feeds the metrics registry
       AND the verdict's seconds, so the traced and untraced audit
       report identical numbers on the JSONL summary line. *)
    let elapsed = ref 0.0 in
    let obligation name check =
      Ucp_obs.Trace.with_span ~name:"audit-obligation"
        ~args:[ ("obligation", Ucp_obs.Trace.Str name) ] (fun () ->
          Ucp_obs.Metrics.incr (Lazy.force audit_obligations_total);
          let t0 = Unix.gettimeofday () in
          let res = check () in
          let d = Unix.gettimeofday () -. t0 in
          elapsed := !elapsed +. d;
          Ucp_obs.Metrics.fadd (Lazy.force audit_seconds_total) d;
          res)
    in
    let refine_mode, refine_original, refine_optimized = refine in
    let with_refine = refine_mode <> Ucp_refine.Mode.Off in
    let result =
      let* () = obligation "ipet-original" (fun () -> certify_ipet ?deadline original) in
      let* () = obligation "ipet-optimized" (fun () -> certify_ipet ?deadline optimized) in
      let* () = obligation "witness-original" (fun () -> replay_witness ?seed original) in
      let* () = obligation "witness-optimized" (fun () -> replay_witness ?seed optimized) in
      let* () = obligation "trail" (fun () -> audit_trail ~original ~optimized r) in
      if not with_refine then Ok ()
      else
        let* () =
          obligation "refine-original" (fun () ->
              check_refine ?deadline ?seed ~mode:refine_mode "original" original
                refine_original)
        in
        obligation "refine-optimized" (fun () ->
            check_refine ?deadline ?seed ~mode:refine_mode "optimized" optimized
              refine_optimized)
    in
    match result with
    | Ok () ->
      Ok (Certified { checks = (if with_refine then 7 else 5); seconds = !elapsed })
    | Error msg -> Error msg
  end
