(** The paper's contribution: WCET-safe, energy-oriented software
    prefetch insertion for unlocked instruction caches (Section 4,
    Algorithms 1–3 of Supplement S.1).

    Pipeline per accepted prefetch:

    + run cache-aware WCET analysis and extract the WCET path;
    + propagate cache states {e along the WCET path} (the path-focused
      join J{_SE} of Algorithm 2 reduces joins at confluences to "take
      the WCET-path predecessor", so the walk is a chain);
    + sweep the path in {e reverse} execution order; at each reference,
      Property 3 exposes the memory blocks the access replaces;
    + for each victim whose next path reference misses, evaluate the
      joint improvement criterion (Equation 9): the prefetch must be
      {e effective} (Λ fits in the WCET time between insertion point and
      use, Definition 10) and its gain [mcost - pcost] must be positive;
    + materialize the prefetch (end-anchored relocation, so only
      addresses before the insertion point shift), re-run the full
      analysis, and {e accept} only if τ{_w} did not increase and the
      analysis' miss bound decreased — the constructive enforcement of
      Theorem 1 and Condition 2; otherwise roll back and ban the
      candidate.

    Iterates until no candidate is accepted (iterative improvement,
    Section 4's premise for ACET/energy correlation). *)

type insertion = {
  target_uid : int;  (** instruction whose block the prefetch loads *)
  prefetch_uid : int;  (** uid of the materialized prefetch *)
  tau_before : int;
  tau_after : int;
  misses_before : int;  (** analysis miss bound before *)
  misses_after : int;
  est_gain : int;  (** mcost - pcost estimate that admitted it *)
}

type round = {
  round_insertions : (int * int) list;
      (** materialized [(prefetch_uid, target_uid)] pairs of the round *)
  round_tau_before : int;  (** τ_w + residual claimed before the round *)
  round_tau_after : int;
  round_misses_before : int;  (** analysis miss bound claimed before *)
  round_misses_after : int;
}
(** Proof obligations of one {e accepted} batch: the acceptance test
    (Equations 5–9 / Theorem 1) claims
    [round_tau_after <= round_tau_before] and
    ([round_misses_after < round_misses_before] or
    [round_tau_after < round_tau_before]).  {!Ucp_verify.audit_trail}
    re-derives the endpoints from independent analyses and checks the
    chain without trusting the optimizer's arithmetic. *)

type result = {
  program : Ucp_isa.Program.t;  (** the optimized, prefetch-equivalent program *)
  original : Ucp_isa.Program.t;
  insertions : insertion list;  (** in acceptance order *)
  rejected : int;  (** candidates rolled back by the safety net *)
  rejected_tau : int;  (** rollbacks where τ_w would have grown *)
  rejected_miss : int;  (** rollbacks where the miss bound did not shrink *)
  rounds : int;  (** analysis recomputations *)
  tau_before : int;
  tau_after : int;
  trail : round list;  (** audit trail, one entry per accepted round *)
}

type placement =
  | At_eviction
      (** the paper's discipline: the prefetch lands immediately after
          the reference that replaced the block (program point
          (r{_i}, r{_i+1}) of Algorithm 1) *)
  | Latest_effective
      (** extension (ablation): the latest point that still hides Λ,
          preferring blocks that dominate the use — an aggressive
          streaming placement that converts far more misses at a much
          higher instruction overhead *)

val optimize :
  ?deadline:Ucp_util.Deadline.t ->
  ?placement:placement ->
  ?max_insertions:int ->
  ?overhead_budget:float ->
  ?pinned:(int -> bool) ->
  ?initial:Ucp_wcet.Wcet.t ->
  ?policy:Ucp_policy.id ->
  Ucp_isa.Program.t ->
  Ucp_cache.Config.t ->
  Ucp_energy.Cacti.t ->
  result
(** Run the optimization to its fixpoint (or until [max_insertions] or
    the overhead budget is exhausted).  [~deadline] bounds the wall
    clock: it is checked before every verification analysis and inside
    each analysis fixpoint, raising
    [Ucp_util.Deadline.Deadline_exceeded] once passed.  [~policy]
    selects the replacement policy (default LRU): the Property-3 victim
    detection asks that policy's must domain who can be evicted, and
    every verification analysis runs its domains, so Theorem 1 holds
    per policy.  [~initial] supplies the
    already-computed analysis of [program] under the same [?pinned],
    configuration and model — a result of
    [Wcet.compute ?pinned ?policy program config model] (with or
    without the may analysis) — so a
    caller that has measured the original program does not pay for that
    fixpoint twice; its policy then overrides [?policy]; passing
    anything else is unspecified.
    [~pinned] marks blocks held in
    locked ways (see {!Ucp_wcet.Analysis.run}); pass the configuration
    of the unlocked ways — this is the hybrid mode used by
    {!Baselines.lock_hybrid}.  [overhead_budget] (default
    0.05) bounds the dynamic instruction overhead: accepted prefetches
    may add at most that share of the WCET scenario's executed
    instructions; candidates are ranked by their Equation-9 gain so the
    budget keeps the most profitable ones (the paper reports a 1.32%
    maximum average increase, Figure 8).  The result's program
    satisfies [Program.prefetch_equivalent original program] and
    [tau_after <= tau_before]. *)

type candidate = {
  cand_insert_node : int;  (** expanded node of the insertion point *)
  cand_insert_block : int;  (** concrete block receiving the prefetch *)
  cand_insert_pos : int;  (** body position of the insertion *)
  cand_before_uid : int;  (** uid of the reference the prefetch precedes *)
  cand_target_uid : int;
  cand_target_block : int;  (** S(r_j) at discovery time *)
  cand_use_position : int;  (** index of r_j in the path reference array *)
  cand_gain : int;  (** mcost - pcost (WCET-scenario cycles) *)
  cand_cost : int;  (** WCET-scenario executions of the inserted slot *)
}

val discover : ?placement:placement -> Ucp_wcet.Wcet.t -> candidate list
(** The reverse-sweep candidate discovery alone (effectiveness and
    profitability already filtered), latest candidates first — exposed
    for tests and the worked examples of Figures 1 and 2. *)
