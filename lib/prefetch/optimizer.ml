module Program = Ucp_isa.Program
module Instr = Ucp_isa.Instr
module Vivu = Ucp_cfg.Vivu
module Abstract = Ucp_cache.Abstract
module Analysis = Ucp_wcet.Analysis
module Wcet = Ucp_wcet.Wcet
module Classification = Ucp_wcet.Classification
module Cacti = Ucp_energy.Cacti

let optimizer_rounds_total = lazy (Ucp_obs.Metrics.counter "optimizer_rounds_total")

type insertion = {
  target_uid : int;
  prefetch_uid : int;
  tau_before : int;
  tau_after : int;
  misses_before : int;
  misses_after : int;
  est_gain : int;
}

type round = {
  round_insertions : (int * int) list;
  round_tau_before : int;
  round_tau_after : int;
  round_misses_before : int;
  round_misses_after : int;
}

type result = {
  program : Program.t;
  original : Program.t;
  insertions : insertion list;
  rejected : int;
  rejected_tau : int;
  rejected_miss : int;
  rounds : int;
  tau_before : int;
  tau_after : int;
  trail : round list;
}

type candidate = {
  cand_insert_node : int;
  cand_insert_block : int;
  cand_insert_pos : int;
  cand_before_uid : int;
  cand_target_uid : int;
  cand_target_block : int;
  cand_use_position : int;
  cand_gain : int;
  cand_cost : int;
}

(* Flatten the WCET path into per-reference arrays: the ACFG view the
   reverse sweep operates on. *)
type path_view = {
  len : int;
  node : int array;
  pos : int array;
  mem_block : int array;
  uid : int array;
  is_pf : bool array;
  pf_target : int array;  (* target mem block of prefetch slots, else -1 *)
  cycles : int array;  (* per-execution WCET time of the reference *)
  cum : int array;  (* cum.(k) = sum of cycles.(0..k-1) *)
  wcet_miss : bool array;
  n_w : int array;  (* per reference: executions in the WCET scenario *)
}

let view_of_path (w : Wcet.t) =
  let analysis = w.Wcet.analysis in
  let vivu = Analysis.vivu analysis in
  let program = Vivu.program vivu in
  let refs = Wcet.path_refs w in
  let len = Array.length refs in
  let node = Array.make len 0
  and pos = Array.make len 0
  and mem_block = Array.make len 0
  and uid = Array.make len 0
  and is_pf = Array.make len false
  and pf_target = Array.make len (-1)
  and cycles = Array.make len 0
  and wcet_miss = Array.make len false
  and n_w = Array.make len 0 in
  Array.iteri
    (fun i (nid, p) ->
      node.(i) <- nid;
      pos.(i) <- p;
      let nd = Vivu.node vivu nid in
      mem_block.(i) <- Analysis.slot_mem_block analysis ~node:nid ~pos:p;
      let instr = Program.slot_instr program ~block:nd.Vivu.block ~pos:p in
      uid.(i) <- instr.Instr.uid;
      (match Analysis.prefetch_target_block analysis ~node:nid ~pos:p with
      | Some tb ->
        is_pf.(i) <- true;
        pf_target.(i) <- tb
      | None -> ());
      cycles.(i) <- w.Wcet.slot_cycles.(nid).(p);
      wcet_miss.(i) <-
        Classification.is_wcet_miss (Analysis.classif analysis ~node:nid ~pos:p);
      n_w.(i) <- w.Wcet.n_w.(nid))
    refs;
  let cum = Array.make (len + 1) 0 in
  for i = 0 to len - 1 do
    cum.(i + 1) <- cum.(i) + cycles.(i)
  done;
  { len; node; pos; mem_block; uid; is_pf; pf_target; cycles; cum; wcet_miss; n_w }

(* Occurrence index: memory block -> sorted array of path positions. *)
let occurrences view =
  let tbl = Hashtbl.create 64 in
  for i = view.len - 1 downto 0 do
    let prev = try Hashtbl.find tbl view.mem_block.(i) with Not_found -> [] in
    Hashtbl.replace tbl view.mem_block.(i) (i :: prev)
  done;
  Hashtbl.fold (fun mb lst acc -> (mb, Array.of_list lst) :: acc) tbl []
  |> List.to_seq
  |> Hashtbl.of_seq

let next_occurrence occs mb ~after =
  match Hashtbl.find_opt occs mb with
  | None -> None
  | Some arr ->
    (* first element strictly greater than [after] *)
    let lo = ref 0 and hi = ref (Array.length arr) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if arr.(mid) <= after then lo := mid + 1 else hi := mid
    done;
    if !lo < Array.length arr then Some arr.(!lo) else None

(* Sum over on-path instances of a concrete block of their WCET counts:
   the execution count a prefetch materialized in that block gets. *)
let path_count_per_block (w : Wcet.t) =
  let vivu = Analysis.vivu w.Wcet.analysis in
  let tbl = Hashtbl.create 32 in
  Array.iter
    (fun nid ->
      let b = (Vivu.node vivu nid).Vivu.block in
      let prev = try Hashtbl.find tbl b with Not_found -> 0 in
      Hashtbl.replace tbl b (prev + Vivu.mult vivu nid))
    w.Wcet.path;
  fun block -> try Hashtbl.find tbl block with Not_found -> 0

type placement = At_eviction | Latest_effective

let discover ?(placement = At_eviction) (w : Wcet.t) =
  let analysis = w.Wcet.analysis in
  let vivu = Analysis.vivu analysis in
  let program = Vivu.program vivu in
  let config = Analysis.config analysis in
  let lambda = w.Wcet.model.Cacti.prefetch_latency in
  let view = view_of_path w in
  let occs = occurrences view in
  let count_of_block = path_count_per_block w in
  let dom = Ucp_cfg.Dominators.compute program in
  (* Chain-walk must states along the path (the J_SE join of Algorithm 2
     reduces confluences to the WCET-path predecessor, so the walk is a
     chain); Property 3 exposes each reference's replacement victims. *)
  let victims = Array.make view.len [] in
  let policy = Analysis.policy analysis in
  let st = ref (Abstract.empty ~policy config Abstract.Must) in
  (* Classification hints for the chain-walked updates: the chain must
     state itself proves hits; otherwise fall back on the fixpoint
     analysis' per-slot classification.  LRU ignores hints (the walk is
     bit-identical to the seed); FIFO needs them to age soundly. *)
  let demand_hint i =
    if Abstract.contains !st view.mem_block.(i) then Ucp_policy.Hit
    else
      match Analysis.classif analysis ~node:view.node.(i) ~pos:view.pos.(i) with
      | Classification.Always_hit -> Ucp_policy.Hit
      | Classification.Always_miss -> Ucp_policy.Miss
      | Classification.Not_classified -> Ucp_policy.Unknown
  in
  let fill_hint tb =
    if Abstract.contains !st tb then Ucp_policy.Hit else Ucp_policy.Unknown
  in
  for i = 0 to view.len - 1 do
    let hint = demand_hint i in
    let demand_victims = Abstract.victims ~hint !st view.mem_block.(i) in
    st := Abstract.update ~hint !st view.mem_block.(i);
    let fill_victims =
      if view.is_pf.(i) then begin
        let hint = fill_hint view.pf_target.(i) in
        let v = Abstract.victims ~hint !st view.pf_target.(i) in
        st := Abstract.fill ~hint !st view.pf_target.(i);
        v
      end
      else []
    in
    victims.(i) <- demand_victims @ fill_victims
  done;
  (* Insertion-point selection for a victim s' replaced at [i] and next
     missing at [j].  Any point between them satisfies the paper's
     equations; we take the latest one that still hides Λ (Definition
     10), because a later point both minimizes the window in which the
     prefetched block can be replaced again and tends to sit in a block
     dominating the use (so the sound must-join keeps the block).  The
     downward scan stops as soon as the conflict count in the window
     reaches the associativity — from there on the prefetched block
     cannot survive to [j] even on the path itself. *)
  let pick_insertion ~i ~j ~victim =
    let set_of mb = Ucp_cache.Config.set_of_mem_block config mb in
    let victim_set = set_of victim in
    let assoc = config.Ucp_cache.Config.assoc in
    (* latest k with cum.(j) - cum.(k) >= lambda *)
    let lo = ref (i + 1) and hi = ref j in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if view.cum.(j) - view.cum.(mid) >= lambda then lo := mid else hi := mid - 1
    done;
    let k_max = !lo in
    if view.cum.(j) - view.cum.(k_max) < lambda then None
    else begin
      let block_j = (Vivu.node vivu view.node.(j)).Vivu.block in
      let conflicts = Hashtbl.create 8 in
      let conflict_count = ref 0 in
      let note mb =
        if mb <> victim && set_of mb = victim_set && not (Hashtbl.mem conflicts mb)
        then begin
          Hashtbl.replace conflicts mb ();
          incr conflict_count
        end
      in
      (* conflicts already inside the window [k_max, j) *)
      for t = k_max to j - 1 do
        note view.mem_block.(t);
        if view.is_pf.(t) then note view.pf_target.(t)
      done;
      let block_of k = (Vivu.node vivu view.node.(k)).Vivu.block in
      (* Walk backwards through the survivable window and keep the
         earliest dominating position: issuing as early as possible
         maximizes the real (average-case) slack, not just the
         WCET-scenario slack of Definition 10.  Once the window holds
         2Λ slots the real slack already covers the latency on any
         execution (every slot costs at least a cycle), so the scan is
         capped there — this also bounds the work per candidate. *)
      let rec scan k best =
        if k < i + 1 || !conflict_count >= assoc || j - k >= 2 * lambda then best
        else begin
          let best =
            if Ucp_cfg.Dominators.dominates dom (block_of k) block_j then Some k
            else best
          in
          if k = i + 1 then best
          else begin
            note view.mem_block.(k - 1);
            if view.is_pf.(k - 1) then note view.pf_target.(k - 1);
            if !conflict_count >= assoc then best else scan (k - 1) best
          end
        end
      in
      match placement with
      | At_eviction -> (
        (* The paper's discipline: insert right after the replacement
           (program point (r_i, r_{i+1})).  When that point does not
           dominate the use (the replacement happened inside a branch
           arm) the conservative must-join would discard the prefetched
           block at the confluence, so hoist to the latest dominating
           point that still hides Λ. *)
        let block_i1 = (Vivu.node vivu view.node.(i + 1)).Vivu.block in
        let at_eviction_ok =
          Ucp_cfg.Dominators.dominates dom block_i1 block_j
          &&
          (let saved = Hashtbl.copy conflicts and saved_count = !conflict_count in
           let rec widen k =
             if k >= i + 1 then begin
               note view.mem_block.(k);
               if view.is_pf.(k) then note view.pf_target.(k);
               widen (k - 1)
             end
           in
           widen (k_max - 1);
           let ok = !conflict_count < assoc in
           if not ok then begin
             (* restore the [k_max, j) window for the fallback scan *)
             Hashtbl.reset conflicts;
             Hashtbl.iter (fun k v -> Hashtbl.replace conflicts k v) saved;
             conflict_count := saved_count
           end;
           ok)
        in
        if at_eviction_ok then Some (i + 1) else scan k_max None)
      | Latest_effective -> (
        match scan k_max None with
        | Some k -> Some k
        | None -> if !conflict_count < assoc then Some k_max else None)
    end
  in
  let candidates = ref [] in
  let seen_use = Hashtbl.create 32 in
  (* Reverse sweep: in the accumulating list, earlier path positions end
     up later, so the final list is ordered latest-first. *)
  for i = 0 to view.len - 2 do
    List.iter
      (fun s' ->
        match next_occurrence occs s' ~after:i with
        | None -> ()
        | Some j ->
          if
            view.wcet_miss.(j) && view.n_w.(j) > 0
            && (not view.is_pf.(j)) (* Equation 9: never prefetch for a prefetch *)
            && not (Hashtbl.mem seen_use (s', j))
          then begin
            Hashtbl.replace seen_use (s', j) ();
            match pick_insertion ~i ~j ~victim:s' with
            | None -> ()
            | Some k ->
              let insert_node = view.node.(k) in
              let insert_block = (Vivu.node vivu insert_node).Vivu.block in
              let n_w_pf = count_of_block insert_block in
              (* mcost - pcost, Equations 6-7: suppressing the miss saves
                 the penalty on every WCET execution of r_j; the prefetch
                 instruction costs one issue cycle per execution of its
                 host block. *)
              let gain = (lambda * view.n_w.(j)) - n_w_pf in
              if gain > 0 then
                candidates :=
                  {
                    cand_insert_node = insert_node;
                    cand_insert_block = insert_block;
                    cand_insert_pos = view.pos.(k);
                    cand_before_uid = view.uid.(k);
                    cand_target_uid = view.uid.(j);
                    cand_target_block = s';
                    cand_use_position = j;
                    cand_gain = gain;
                    cand_cost = n_w_pf;
                  }
                  :: !candidates
          end)
      victims.(i)
  done;
  !candidates

let miss_bound w = Analysis.miss_count_bound w.Wcet.analysis

(* The bound the acceptance check protects: τ_w plus the conservative
   residual-stall charge for prefetches whose effectiveness window was
   eroded by other insertions (hits where the discovery-time analysis
   still saw misses). *)
let tau_eff w = Wcet.tau_with_residual w

let optimize ?deadline ?(placement = At_eviction) ?(max_insertions = 2000)
    ?(overhead_budget = 0.05) ?pinned ?initial ?(policy = Ucp_policy.Lru) program
    config model =
  (* When the caller supplies [?initial], its policy wins — re-analyses
     must run the same domains the initial analysis did. *)
  let policy =
    match initial with
    | Some w -> Analysis.policy w.Wcet.analysis
    | None -> policy
  in
  let analyze_calls = ref 0 in
  let analyze p =
    Ucp_util.Deadline.check deadline;
    incr analyze_calls;
    Ucp_obs.Trace.with_span ~name:"optimizer-round"
      ~args:[ ("round", Ucp_obs.Trace.Int !analyze_calls) ] (fun () ->
        Wcet.compute ?deadline ~with_may:false ?pinned ~policy p config model)
  in
  let w0 = match initial with Some w -> w | None -> analyze program in
  (* Dynamic-overhead budget: inserted prefetches may add at most this
     share of the WCET scenario's executed instructions (the paper
     reports a 1.32% maximum average increase, Figure 8).  Candidates
     are ranked by their Equation-9 gain, so the budget keeps "the most
     profitable prefetches". *)
  let total_weight =
    let vivu = Analysis.vivu w0.Wcet.analysis in
    let program0 = Vivu.program vivu in
    Array.fold_left
      (fun acc nid ->
        let nd = Vivu.node vivu nid in
        acc + (w0.Wcet.n_w.(nid) * Program.slots program0 nd.Vivu.block))
      0 w0.Wcet.path
  in
  let budget =
    ref (max 16 (int_of_float (overhead_budget *. float_of_int total_weight)))
  in
  let banned = Hashtbl.create 64 in
  let rej_tau = ref 0 and rej_miss = ref 0 in
  let accepts w w' misses_p misses' =
    tau_eff w' <= tau_eff w && (misses' < misses_p || tau_eff w' < tau_eff w)
  in
  let rec take n = function
    | [] -> []
    | c :: tl -> if n = 0 then [] else c :: take (n - 1) tl
  in
  (* Candidates are applied in descending (block, position) order so
     earlier insertions do not shift the coordinates of later ones. *)
  let materialize p prefix =
    let ordered =
      List.sort
        (fun a b ->
          compare
            (b.cand_insert_block, b.cand_insert_pos)
            (a.cand_insert_block, a.cand_insert_pos))
        prefix
    in
    List.fold_left
      (fun (p, uids) c ->
        let p, uid =
          Program.insert_prefetch p ~block:c.cand_insert_block ~pos:c.cand_insert_pos
            ~target_uid:c.cand_target_uid
        in
        (p, (c, uid) :: uids))
      (p, []) ordered
  in
  let rounds = ref 1 in
  (* Prefix bisection over the gain-ranked candidate list: a whole
     batch of prefetches often clears the Theorem-1 check where single
     insertions do not (each insertion relocates earlier code and can
     shift one block boundary; in bulk the gains dominate that noise).
     Try the full affordable batch, halve on failure, and ban the top
     candidate when even a single insertion fails. *)
  let rec descend p w misses_p cands size =
    if size = 0 then None
    else begin
      let prefix = take size cands in
      let p', uids = materialize p prefix in
      let w' = analyze p' in
      let misses' = miss_bound w' in
      incr rounds;
      if accepts w w' misses_p misses' then Some (p', w', misses', uids)
      else begin
        if tau_eff w' > tau_eff w then incr rej_tau;
        if misses' >= misses_p then incr rej_miss;
        descend p w misses_p cands (size / 2)
      end
    end
  in
  (* Walk the (gain-ranked) candidates one at a time, banning each
     failure, until one acceptance or exhaustion — used after a prefix
     bisection has already failed at size one, so re-descending per ban
     would waste log-many analyses. *)
  let rec walk_singles p w misses_p strikes = function
    | [] -> None
    | c :: rest ->
      (* the list is gain-ranked: a long run of failures predicts the
         tail will fail too, so give up after a fixed strike count *)
      if !rounds > 4000 || strikes = 0 then None
      else begin
        let p', uids = materialize p [ c ] in
        let w' = analyze p' in
        let misses' = miss_bound w' in
        incr rounds;
        if accepts w w' misses_p misses' then Some (p', w', misses', uids)
        else begin
          if tau_eff w' > tau_eff w then incr rej_tau;
          if misses' >= misses_p then incr rej_miss;
          Hashtbl.add banned (c.cand_before_uid, c.cand_target_uid) ();
          walk_singles p w misses_p (strikes - 1) rest
        end
      end
  in
  let rec go p w misses_p insertions rejected trail ~cached =
    if List.length insertions >= max_insertions || !rounds > 4000 then
      (p, w, insertions, rejected, trail)
    else begin
      (* discovery only depends on the current program, so it is reused
         across rounds that merely banned candidates *)
      let all = match cached with Some c -> c | None -> discover ~placement w in
      let cands =
        List.filter
          (fun c ->
            c.cand_cost <= !budget
            && not (Hashtbl.mem banned (c.cand_before_uid, c.cand_target_uid)))
          all
        |> List.stable_sort (fun a b -> compare b.cand_gain a.cand_gain)
      in
      (* keep the affordable prefix of the gain-ranked candidates *)
      let cands =
        let rec affordable remaining = function
          | [] -> []
          | c :: tl ->
            if c.cand_cost <= remaining then c :: affordable (remaining - c.cand_cost) tl
            else affordable remaining tl
        in
        affordable !budget cands
      in
      let accept (p', w', misses', uids) rejected =
        List.iter (fun (c, _) -> budget := !budget - c.cand_cost) uids;
        let accepted =
          List.map
            (fun (c, uid) ->
              {
                target_uid = c.cand_target_uid;
                prefetch_uid = uid;
                tau_before = tau_eff w;
                tau_after = tau_eff w';
                misses_before = misses_p;
                misses_after = misses';
                est_gain = c.cand_gain;
              })
            uids
        in
        (* Proof obligation record for this accepted round: the audit
           layer re-derives these claims from its own analyses. *)
        let round =
          {
            round_insertions =
              List.map (fun (c, uid) -> (uid, c.cand_target_uid)) uids;
            round_tau_before = tau_eff w;
            round_tau_after = tau_eff w';
            round_misses_before = misses_p;
            round_misses_after = misses';
          }
        in
        go p' w' misses' (accepted @ insertions) rejected (round :: trail)
          ~cached:None
      in
      match cands with
      | [] -> (p, w, insertions, rejected, trail)
      | top :: rest -> (
        match descend p w misses_p cands (List.length cands) with
        | Some result -> accept result rejected
        | None -> (
          (* the descent already tried (and rejected) the top candidate
             alone; ban it and walk the rest one by one *)
          Hashtbl.add banned (top.cand_before_uid, top.cand_target_uid) ();
          match walk_singles p w misses_p 30 rest with
          | Some result -> accept result (rejected + 1)
          | None -> (p, w, insertions, rejected + 1 + List.length rest, trail)))
    end
  in
  let p, w, insertions, rejected, trail =
    go program w0 (miss_bound w0) [] 0 [] ~cached:None
  in
  assert (tau_eff w <= tau_eff w0);
  assert (Program.prefetch_equivalent program p);
  Ucp_obs.Metrics.add (Lazy.force optimizer_rounds_total) !rounds;
  {
    program = p;
    original = program;
    insertions = List.rev insertions;
    rejected;
    rejected_tau = !rej_tau;
    rejected_miss = !rej_miss;
    rounds = !rounds;
    tau_before = tau_eff w0;
    tau_after = tau_eff w;
    trail = List.rev trail;
  }
