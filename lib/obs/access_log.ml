(* Structured JSONL sink: one JSON object per line, field order
   exactly as given by the caller, flushed per line so a crash loses at
   most the line being written (crash-only discipline, same as the
   serve store).  A single mutex serializes writers — the daemon logs
   one line per request from whichever connection thread finished it,
   and interleaved half-lines would break the CI byte-comparison. *)

type t = { oc : out_channel; mutex : Mutex.t; mutable closed : bool }

let open_ path =
  let oc =
    open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path
  in
  { oc; mutex = Mutex.create (); closed = false }

let write t fields =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      if not t.closed then begin
        output_string t.oc (Ucp_util.Json.to_string (Ucp_util.Json.Obj fields));
        output_char t.oc '\n';
        flush t.oc
      end)

let close t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      if not t.closed then begin
        t.closed <- true;
        close_out t.oc
      end)
