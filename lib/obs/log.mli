(** Leveled, domain-safe logging: every diagnostic of the tool flows
    through one stderr sink whose lines never interleave mid-line, even
    when emitted from concurrent worker domains.

    The threshold defaults to [Warn] and is taken from the [UCP_LOG]
    environment variable at startup ([debug|info|warn|error|quiet]); a
    malformed value falls back to [Warn] and is reported once on the
    first emission rather than crashing module initialization. *)

type level = Debug | Info | Warn | Error | Quiet

val level_of_string : string -> (level, string) result
val level_to_string : level -> string

val set_level : level -> unit
val level : unit -> level

val enabled : level -> bool
(** Would a message at this level be emitted right now? *)

val debug : ('a, unit, string, unit) format4 -> 'a
val info : ('a, unit, string, unit) format4 -> 'a
val warn : ('a, unit, string, unit) format4 -> 'a
val error : ('a, unit, string, unit) format4 -> 'a

val out : string -> unit
(** Write one line to the sink unconditionally (no level filter, no
    prefix) — for output the user explicitly asked for, like the
    [--heartbeat] line, that must still interleave cleanly with
    concurrent log messages. *)
