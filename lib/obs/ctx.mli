(** Request-scoped trace context.

    A context carries a 64-bit trace id (shared by every span and log
    line of one request) and a span id (one hop within it).  Ids are
    {e deterministic}: {!derive} maps a (seed, index) pair to the same
    id on every run, so two identically seeded client runs assign
    identical trace ids — which is what lets the CI byte-compare
    access-log streams.

    The ambient binding installed by {!with_ctx} is keyed by the
    executing (domain, thread) pair — safe both for Domain-pool workers
    and for the daemon's systhread connection handlers, which share one
    domain's DLS. *)

type t = { trace_id : int64; span_id : int64 }

val derive : seed:int -> index:int -> t
(** Deterministic root context for the [index]-th request of a client
    seeded with [seed] (SplitMix64; trace id never 0). *)

val root : int64 -> t
(** Context adopting an externally assigned trace id (span id derived
    from it). *)

val child : t -> t
(** Same trace, fresh deterministic span id (derived from the parent's
    trace and span ids — no global state). *)

val to_hex : int64 -> string
(** Fixed-width 16-char lowercase hex. *)

val of_hex : string -> int64 option
(** Strict inverse of {!to_hex}: exactly 16 lowercase hex digits. *)

val trace_hex : t -> string
val span_hex : t -> string

val with_ctx : t -> (unit -> 'a) -> 'a
(** Run [f] with [t] as the ambient context of the calling (domain,
    thread); restores the previous binding on exit, even on raise. *)

val with_ctx_opt : t option -> (unit -> 'a) -> 'a
(** [with_ctx] when [Some], plain call when [None]. *)

val current : unit -> t option
(** The ambient context of the calling (domain, thread), if any. *)
