(* Prometheus text exposition over the metrics registry.

   Instrument names in the registry may carry a literal label set —
   e.g. [serve_latency_s{tier="cache"}] — which this module splits into
   a base name and labels so that one [# TYPE] line covers the whole
   family and histogram suffixes ([_bucket]/[_sum]/[_count]) compose
   with the labels.  [render] is pure: it formats whatever dump it is
   given, so the golden test pins the byte-exact output of a synthetic
   registry. *)

type sample = {
  s_base : string;
  s_labels : (string * string) list;  (* in exposition order *)
  s_value : float;
}

type hist = {
  h_base : string;
  h_labels : (string * string) list;  (* without [le] *)
  h_bounds : float array;  (* finite upper bounds, increasing *)
  h_counts : int array;  (* per-bucket (de-cumulated), length bounds+1 *)
  h_sum : float;
  h_count : int;
}

(* ------------------------------------------------------------------ *)
(* rendering *)

(* shortest stable decimal form; integers without an exponent so
   bucket bounds like 0.005 and counts read naturally *)
let fmt_float x =
  if Float.is_nan x then "NaN"
  else if x = Float.infinity then "+Inf"
  else if x = Float.neg_infinity then "-Inf"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.12g" x

let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun ch ->
      match ch with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | ch -> Buffer.add_char buf ch)
    v;
  Buffer.contents buf

let split_name name =
  match String.index_opt name '{' with
  | None -> (name, None)
  | Some i ->
    if String.length name = 0 || name.[String.length name - 1] <> '}' then
      (name, None)
    else
      (String.sub name 0 i, Some (String.sub name (i + 1) (String.length name - i - 2)))

let labels_text labels =
  String.concat ","
    (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v)) labels)

let sample_name base labels =
  match labels with
  | [] -> base
  | labels -> Printf.sprintf "%s{%s}" base (labels_text labels)

(* raw label text from a registry name is emitted verbatim (it is
   already in exposition syntax); extra labels are appended *)
let raw_name base raw extra =
  match (raw, extra) with
  | None, [] -> base
  | None, extra -> sample_name base extra
  | Some raw, [] -> Printf.sprintf "%s{%s}" base raw
  | Some raw, extra -> Printf.sprintf "%s{%s,%s}" base raw (labels_text extra)

let type_of_value = function
  | Metrics.Counter _ | Metrics.Fcounter _ -> "counter"
  | Metrics.Gauge _ -> "gauge"
  | Metrics.Histogram _ -> "histogram"

let render dump =
  let buf = Buffer.create 4096 in
  let typed = Hashtbl.create 16 in
  List.iter
    (fun (name, value) ->
      let base, raw = split_name name in
      (* one TYPE line per family; the dump is name-sorted, so the
         labeled variants of one base arrive adjacent *)
      if not (Hashtbl.mem typed base) then begin
        Hashtbl.add typed base ();
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" base (type_of_value value))
      end;
      match value with
      | Metrics.Counter n ->
        Buffer.add_string buf
          (Printf.sprintf "%s %d\n" (raw_name base raw []) n)
      | Metrics.Fcounter x | Metrics.Gauge x ->
        Buffer.add_string buf
          (Printf.sprintf "%s %s\n" (raw_name base raw []) (fmt_float x))
      | Metrics.Histogram { bounds; counts; sum; count } ->
        let cum = ref 0 in
        Array.iteri
          (fun i bound ->
            cum := !cum + counts.(i);
            Buffer.add_string buf
              (Printf.sprintf "%s %d\n"
                 (raw_name (base ^ "_bucket") raw [ ("le", fmt_float bound) ])
                 !cum))
          bounds;
        let n = Array.length counts in
        cum := !cum + counts.(n - 1);
        Buffer.add_string buf
          (Printf.sprintf "%s %d\n"
             (raw_name (base ^ "_bucket") raw [ ("le", "+Inf") ])
             !cum);
        Buffer.add_string buf
          (Printf.sprintf "%s %s\n" (raw_name (base ^ "_sum") raw []) (fmt_float sum));
        Buffer.add_string buf
          (Printf.sprintf "%s %d\n" (raw_name (base ^ "_count") raw []) count))
    dump;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* parsing (ucp top, CI validation, round-trip tests) *)

let parse_labels s =
  (* key=<quoted value> pairs separated by commas; values may contain
     backslash escapes for quote, backslash and newline *)
  let n = String.length s in
  let rec skip_ws i = if i < n && s.[i] = ' ' then skip_ws (i + 1) else i in
  let rec ident i = if i < n && s.[i] <> '=' && s.[i] <> ' ' then ident (i + 1) else i in
  let rec pairs acc i =
    let i = skip_ws i in
    if i >= n then Ok (List.rev acc)
    else
      let j = ident i in
      if j >= n || s.[j] <> '=' || j + 1 >= n || s.[j + 1] <> '"' then
        Error (Printf.sprintf "malformed label pair at %d in %S" i s)
      else begin
        let key = String.sub s i (j - i) in
        let buf = Buffer.create 16 in
        let rec value k =
          if k >= n then Error (Printf.sprintf "unterminated label value in %S" s)
          else
            match s.[k] with
            | '"' -> Ok (k + 1)
            | '\\' when k + 1 < n ->
              (match s.[k + 1] with
              | 'n' -> Buffer.add_char buf '\n'
              | ch -> Buffer.add_char buf ch);
              value (k + 2)
            | ch ->
              Buffer.add_char buf ch;
              value (k + 1)
        in
        match value (j + 2) with
        | Error _ as e -> e
        | Ok k ->
          let acc = (key, Buffer.contents buf) :: acc in
          if k < n && s.[k] = ',' then pairs acc (k + 1)
          else if k >= n then Ok (List.rev acc)
          else Error (Printf.sprintf "junk after label value at %d in %S" k s)
      end
  in
  pairs [] 0

let parse_value v =
  match v with
  | "+Inf" -> Some Float.infinity
  | "-Inf" -> Some Float.neg_infinity
  | "NaN" -> Some Float.nan
  | v -> float_of_string_opt v

let parse_line line =
  (* <name>[{labels}] <value> *)
  match String.index_opt line ' ' with
  | None -> Error (Printf.sprintf "no value on line %S" line)
  | Some _ ->
    let name_end =
      match String.index_opt line '{' with
      | Some b -> (
        match String.index_from_opt line b '}' with
        | Some e -> e + 1
        | None -> String.length line)
      | None -> ( match String.index_opt line ' ' with Some i -> i | None -> 0)
    in
    if name_end >= String.length line || line.[name_end] <> ' ' then
      Error (Printf.sprintf "malformed sample line %S" line)
    else
      let name = String.sub line 0 name_end in
      let vtext =
        String.trim (String.sub line name_end (String.length line - name_end))
      in
      let base, raw = split_name name in
      let labels =
        match raw with None -> Ok [] | Some raw -> parse_labels raw
      in
      (match (labels, parse_value vtext) with
      | Ok s_labels, Some s_value -> Ok { s_base = base; s_labels; s_value }
      | (Error _ as e), _ -> e
      | Ok _, None -> Error (Printf.sprintf "bad value %S on line %S" vtext line))

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then go acc rest
      else (
        match parse_line line with
        | Ok s -> go (s :: acc) rest
        | Error _ as e -> e)
  in
  go [] lines

(* ------------------------------------------------------------------ *)
(* reassembling histograms from parsed samples *)

let strip_suffix name suffix =
  let nl = String.length name and sl = String.length suffix in
  if nl > sl && String.sub name (nl - sl) sl = suffix then
    Some (String.sub name 0 (nl - sl))
  else None

let histograms samples =
  let tbl = Hashtbl.create 16 in
  (* key: (base, labels-without-le); payload: buckets / sum / count *)
  let slot base labels =
    let key = (base, List.filter (fun (k, _) -> k <> "le") labels) in
    match Hashtbl.find_opt tbl key with
    | Some v -> v
    | None ->
      let v = (ref [], ref Float.nan, ref 0, ref false) in
      Hashtbl.add tbl key v;
      v
  in
  List.iter
    (fun s ->
      match strip_suffix s.s_base "_bucket" with
      | Some base -> (
        match List.assoc_opt "le" s.s_labels with
        | Some le -> (
          match parse_value le with
          | Some bound ->
            let buckets, _, _, seen = slot base s.s_labels in
            buckets := (bound, int_of_float s.s_value) :: !buckets;
            seen := true
          | None -> ())
        | None -> ())
      | None -> (
        match strip_suffix s.s_base "_sum" with
        | Some base ->
          let _, sum, _, _ = slot base s.s_labels in
          sum := s.s_value
        | None -> (
          match strip_suffix s.s_base "_count" with
          | Some base ->
            let _, _, count, _ = slot base s.s_labels in
            count := int_of_float s.s_value
          | None -> ())))
    samples;
  Hashtbl.fold
    (fun (h_base, h_labels) (buckets, sum, count, seen) acc ->
      if not !seen then acc
      else begin
        let sorted = List.sort (fun (a, _) (b, _) -> compare a b) !buckets in
        let finite = List.filter (fun (b, _) -> Float.is_finite b) sorted in
        let h_bounds = Array.of_list (List.map fst finite) in
        let cums = Array.of_list (List.map snd sorted) in
        (* de-cumulate; a missing +Inf row degrades to the finite total *)
        let n = Array.length cums in
        let h_counts = Array.make (max 1 n) 0 in
        for i = n - 1 downto 1 do
          h_counts.(i) <- cums.(i) - cums.(i - 1)
        done;
        if n > 0 then h_counts.(0) <- cums.(0);
        let h_counts =
          if n = Array.length h_bounds then Array.append h_counts [| 0 |]
          else h_counts
        in
        { h_base; h_labels; h_bounds; h_counts; h_sum = !sum; h_count = !count }
        :: acc
      end)
    tbl []
  |> List.sort (fun a b -> compare (a.h_base, a.h_labels) (b.h_base, b.h_labels))

(* ------------------------------------------------------------------ *)
(* quantiles over bucketed counts (nearest-rank on the cumulative
   distribution; the answer is the inclusive upper bound of the bucket
   holding the rank, +inf if it lands in the overflow bucket) *)

let quantile ~bounds ~counts q =
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then Float.nan
  else begin
    let rank =
      let r = int_of_float (Float.round (q *. float_of_int total)) in
      max 1 (min total r)
    in
    let n = Array.length counts in
    let rec go i cum =
      if i >= n then Float.infinity
      else
        let cum = cum + counts.(i) in
        if cum >= rank then
          if i < Array.length bounds then bounds.(i) else Float.infinity
        else go (i + 1) cum
    in
    go 0 0
  end
