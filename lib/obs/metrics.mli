(** Thread-safe metrics registry: named monotone counters (int and
    float), gauges, and fixed-bucket histograms.

    Instruments are created (idempotently) by name under a registry
    lock; the hot-path operations — {!add}, {!fadd}, {!set},
    {!observe} — are lock-free atomics.  The whole registry is gated by
    one flag: while {e disabled} (the default) every operation is a
    no-op after a single [Atomic.get], so instrumented code costs
    nothing measurable in an untraced run and records nothing at all.

    Counter adds use [Atomic.fetch_and_add] and histogram buckets are
    individual atomics, so counts are exact under any number of
    concurrently updating domains — no torn or lost increments. *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

type counter
type fcounter
type gauge
type histogram

val counter : string -> counter
(** Find-or-create the named int counter.
    @raise Invalid_argument if the name is registered as another kind. *)

val fcounter : string -> fcounter
val gauge : string -> gauge

val histogram : string -> buckets:float array -> histogram
(** [buckets] are inclusive upper bounds, strictly increasing; an
    implicit overflow bucket catches larger observations.
    @raise Invalid_argument on empty/unsorted buckets, or if the name
    is already registered with different buckets. *)

val add : counter -> int -> unit
val incr : counter -> unit
val fadd : fcounter -> float -> unit
val set : gauge -> float -> unit
val observe : histogram -> float -> unit

(** {2 Reading} *)

type value =
  | Counter of int
  | Fcounter of float
  | Gauge of float
  | Histogram of {
      bounds : float array;
      counts : int array;  (** per bucket; one longer than [bounds] *)
      sum : float;
      count : int;
    }

val dump : unit -> (string * value) list
(** Snapshot of every registered instrument, sorted by name. *)

val find : string -> value option

val reset : unit -> unit
(** Zero every registered instrument (registration survives). *)
