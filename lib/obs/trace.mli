(** Structured tracing: lightweight nested spans recorded into
    per-domain buffers, exported as Chrome [trace_event] JSON (open the
    file in Perfetto or [chrome://tracing]).

    Recording is {e zero-cost when disabled}: [with_span] runs its body
    directly after one [Atomic.get], allocates nothing and records
    nothing.  When enabled, each domain appends completed spans to its
    own buffer — the hot path takes no lock and writes no shared
    memory, so tracing a parallel sweep perturbs its timing by well
    under the 5%% overhead budget.

    {!spans}, {!to_json} and {!export} read the domain buffers without
    locking them; call them only after the recording domains have been
    joined (the sweep engine shuts its pool down before returning). *)

type arg = Int of int | Float of float | Str of string

type span = {
  span_name : string;
  ts_us : float;  (** start time, µs since {!start} *)
  dur_us : float;  (** duration, µs *)
  tid : int;  (** numeric id of the recording domain *)
  depth : int;  (** nesting depth within its domain, 0 = top level *)
  args : (string * arg) list;
}

val start : unit -> unit
(** Clear every buffer, restart the clock, enable recording. *)

val stop : unit -> unit
val enabled : unit -> bool

val with_span : name:string -> ?args:(string * arg) list -> (unit -> 'a) -> 'a
(** Run the body inside a span.  The span is recorded (with the time
    actually spent) even if the body raises.  Nested calls on the same
    domain record increasing [depth]; spans on different domains carry
    different [tid]s. *)

val set_arg : string -> arg -> unit
(** Attach (or overwrite) an argument on the innermost open span of the
    calling domain — for values only known at the end of the work, like
    a pivot count.  No-op when disabled or outside any span. *)

val spans : unit -> span list
(** Completed spans of all domains, oldest first. *)

val to_json : unit -> Ucp_util.Json.t
(** The whole trace as a Chrome [trace_event] object
    ([{"traceEvents": [...]}] with ["ph":"X"] complete events). *)

val export : string -> unit
(** Write {!to_json} to a file, atomically (temp + rename). *)

val parse_file : string -> (span list, string) result
(** Strictly parse a trace file written by {!export} back into spans
    ([depth] is not persisted and reads back as 0). *)
