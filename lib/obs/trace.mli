(** Structured tracing: lightweight nested spans recorded into
    per-domain buffers, exported as Chrome [trace_event] JSON (open the
    file in Perfetto or [chrome://tracing]).

    Recording is {e zero-cost when disabled}: [with_span] runs its body
    directly after one [Atomic.get], allocates nothing and records
    nothing.  When enabled, each domain appends completed spans to its
    own {e bounded ring} (default {!default_capacity} spans, see
    {!set_capacity}): once full, each append overwrites the oldest span
    and bumps {!dropped} plus the [trace_spans_dropped_total] metrics
    counter, so a long-running traced daemon keeps a recent window
    instead of growing without bound.

    Spans opened while a {!Ctx} ambient context is installed
    automatically carry a ["trace_id"] argument, which is what connects
    the per-tier spans of one daemon request into a single tree.

    Each ring carries its own mutex (the daemon's connection handlers
    are systhreads sharing one domain's state), so {!spans},
    {!to_json} and {!export} are safe to call while recording
    continues; they snapshot each ring in turn. *)

type arg = Int of int | Float of float | Str of string

type span = {
  span_name : string;
  ts_us : float;  (** start time, µs since {!start} *)
  dur_us : float;  (** duration, µs *)
  tid : int;  (** numeric id of the recording domain *)
  depth : int;  (** nesting depth within its domain, 0 = top level *)
  args : (string * arg) list;
}

val start : unit -> unit
(** Clear every buffer, restart the clock, enable recording. *)

val stop : unit -> unit
val enabled : unit -> bool

val default_capacity : int
(** Per-domain ring capacity unless overridden: 65536 spans. *)

val set_capacity : int -> unit
(** Set the per-domain ring capacity.  Applies to domains that record
    their first span afterwards immediately, and to existing rings at
    the next {!start} (which reallocates them).  Raises [Invalid_arg]
    unless positive. *)

val capacity : unit -> int
(** The currently requested per-domain ring capacity. *)

val dropped : unit -> int
(** Spans overwritten before export since the last {!start}, summed
    over all rings.  Also surfaced as the [trace_spans_dropped_total]
    metrics counter when the registry is enabled. *)

val with_span : name:string -> ?args:(string * arg) list -> (unit -> 'a) -> 'a
(** Run the body inside a span.  The span is recorded (with the time
    actually spent) even if the body raises.  Nested calls on the same
    domain record increasing [depth]; spans on different domains carry
    different [tid]s. *)

val set_arg : string -> arg -> unit
(** Attach (or overwrite) an argument on the innermost open span of the
    calling domain — for values only known at the end of the work, like
    a pivot count.  No-op when disabled or outside any span. *)

val spans : unit -> span list
(** Completed spans of all domains, oldest first. *)

val to_json : unit -> Ucp_util.Json.t
(** The whole trace as a Chrome [trace_event] object
    ([{"traceEvents": [...]}] with ["ph":"X"] complete events). *)

val export : string -> unit
(** Write {!to_json} to a file, atomically (temp + rename). *)

val parse_file : string -> (span list, string) result
(** Strictly parse a trace file written by {!export} back into spans
    ([depth] is not persisted and reads back as 0). *)
